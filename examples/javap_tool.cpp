//===- examples/javap_tool.cpp - A javap over the toolchain -------------===//
//
// A host-side disassembler built from the same pieces the classdump
// workload exercises in bytecode: it assembles a demonstration class (or
// reads a .class file given on the command line), verifies it, and prints
// the javap-style listing.
//
// Usage:
//   ./build/examples/javap_tool              # disassemble a demo class
//   ./build/examples/javap_tool Foo.class    # disassemble a real file
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/builder.h"
#include "jvm/classfile/disasm.h"
#include "jvm/classfile/verifier.h"

#include <cstdio>
#include <fstream>

using namespace doppio;
using namespace doppio::jvm;

static ClassFile demoClass() {
  ClassBuilder B("demo/Fizz");
  B.addField(AccPrivate | AccStatic, "counter", "I");
  B.addDefaultConstructor();
  MethodBuilder &M = B.method(AccPublic | AccStatic, "fizz", "(I)I");
  MethodBuilder::Label Div3 = M.newLabel(), Done = M.newLabel();
  M.iload(0)
      .iconst(3)
      .op(Op::Irem)
      .branch(Op::Ifeq, Div3)
      .iload(0)
      .op(Op::Ireturn)
      .bind(Div3)
      .getstatic("demo/Fizz", "counter", "I")
      .iconst(1)
      .op(Op::Iadd)
      .putstatic("demo/Fizz", "counter", "I")
      .iconst(-1)
      .bind(Done)
      .op(Op::Ireturn);
  return B.build();
}

int main(int argc, char **argv) {
  ClassFile Cf;
  if (argc > 1) {
    std::ifstream In(argv[1], std::ios::binary);
    if (!In) {
      fprintf(stderr, "error: cannot open %s\n", argv[1]);
      return 1;
    }
    std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                               std::istreambuf_iterator<char>());
    auto Parsed = readClassFile(Bytes);
    if (!Parsed) {
      fprintf(stderr, "error: %s: %s\n", argv[1],
              Parsed.error().message().c_str());
      return 1;
    }
    Cf = std::move(*Parsed);
  } else {
    Cf = demoClass();
  }

  std::vector<VerifyError> Errors = verifyClass(Cf);
  for (const VerifyError &E : Errors)
    fprintf(stderr, "verify: %s\n", E.str().c_str());
  printf("%s", disassembleClass(Cf).c_str());
  return Errors.empty() ? 0 : 1;
}
