//===- examples/doppio_analyze.cpp - Suspend-placement analyzer ---------===//
//
// Runs the CFG/loop/placement analysis (jvm/classfile/analysis.h,
// DESIGN.md §17) over class files: per method it dumps the basic-block
// graph, the natural-loop nest, the placement verdict (proved bound K,
// kept/elided branch sites), and a disassembly annotated with the
// kept/elided decision at every check-relevant instruction.
//
// The lint summary counts everything the proof could not cover —
// irreducible loops, jsr/ret subroutines, exception- or fall-through-
// carried cycles, unverified methods — plus unreachable basic blocks,
// so regressions in corpus eligibility are visible in CI.
//
// Usage:
//   ./build/examples/doppio-analyze Foo.class ...  # files or directories
//   ./build/examples/doppio-analyze --builtin      # every workload class
//   ./build/examples/doppio-analyze -q --builtin   # summaries only
//   ./build/examples/doppio-analyze --lint ...     # lint summary only
//
// Exit status: 0 when every input parsed (degraded methods are reported,
// not errors — the interpreter runs them checks-everywhere), 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/analysis.h"
#include "jvm/classfile/disasm.h"
#include "workloads/workloads.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace doppio;
using namespace doppio::jvm;

namespace {

bool Quiet = false;
bool LintOnly = false;

/// Corpus-wide lint accounting, printed as the final summary.
struct LintTotals {
  uint64_t Methods = 0;
  uint64_t ByStatus[16] = {};
  uint64_t UnreachableBlocks = 0;
  uint64_t KeptSites = 0;
  uint64_t ElidedSites = 0;
  uint64_t CallSites = 0;
  /// "Class.method: reason (detail)" for every non-proved method.
  std::vector<std::string> Ineligible;
};

void dumpCfg(const MethodAnalysis &A) {
  for (size_t I = 0; I != A.Blocks.size(); ++I) {
    const BasicBlock &B = A.Blocks[I];
    printf("    block %zu [%u, %u)", I, B.StartPc, B.EndPc);
    if (!B.Reachable)
      printf(" <unreachable>");
    if (B.LoopDepth)
      printf(" depth=%u", B.LoopDepth);
    if (!B.Succs.empty()) {
      printf(" ->");
      for (uint32_t S : B.Succs)
        printf(" %u", S);
    }
    if (!B.ExSuccs.empty()) {
      printf(" ~>");
      for (uint32_t S : B.ExSuccs)
        printf(" %u", S);
    }
    printf("\n");
  }
  for (const LoopInfo &L : A.Loops) {
    printf("    loop header=block %u (pc %u) depth=%u body=%zu back-edges:",
           L.HeaderBlock, A.Blocks[L.HeaderBlock].StartPc, L.Depth,
           L.BodyBlocks.size());
    for (uint32_t S : L.BackEdgeSrcBlocks)
      printf(" %u", S);
    printf("\n");
  }
}

void analyzeOne(const std::string &Label, const ClassFile &Cf,
                LintTotals &T) {
  for (const MemberInfo &M : Cf.Methods) {
    if (!M.Code)
      continue;
    ++T.Methods;
    MethodAnalysis A = analyzeMethod(Cf, M);
    T.ByStatus[static_cast<size_t>(A.Status)] += 1;
    T.UnreachableBlocks += A.UnreachableBlocks;
    std::string Name = Label + "." + M.Name + M.Descriptor;
    if (A.ok()) {
      T.KeptSites += A.KeptBranchSites;
      T.ElidedSites += A.ElidedBranchSites;
      T.CallSites += A.CallSites;
      if (!LintOnly)
        printf("%s: proved K=%u blocks=%zu loops=%zu kept=%u elided=%u "
               "calls=%u\n",
               Name.c_str(), A.BoundK, A.Blocks.size(), A.Loops.size(),
               A.KeptBranchSites, A.ElidedBranchSites, A.CallSites);
    } else {
      T.Ineligible.push_back(Name + ": " +
                             analysisStatusName(A.Status) +
                             (A.Detail.empty() ? "" : " (" + A.Detail + ")"));
      if (!LintOnly)
        printf("%s: %s%s\n", Name.c_str(), analysisStatusName(A.Status),
               A.Detail.empty() ? "" : (" (" + A.Detail + ")").c_str());
    }
    if (!LintOnly && !Quiet) {
      dumpCfg(A);
      printf("%s", disassembleMethod(Cf, M, nullptr, &A).c_str());
    }
  }
}

bool analyzeBytes(const std::string &Label,
                  const std::vector<uint8_t> &Bytes, LintTotals &T) {
  auto Parsed = readClassFile(Bytes);
  if (!Parsed) {
    fprintf(stderr, "%s: parse error: %s\n", Label.c_str(),
            Parsed.error().message().c_str());
    return false;
  }
  analyzeOne(Label, *Parsed, T);
  return true;
}

bool analyzePath(const std::filesystem::path &P, LintTotals &T) {
  std::error_code Ec;
  if (std::filesystem::is_directory(P, Ec)) {
    bool Ok = true;
    for (const auto &Entry :
         std::filesystem::recursive_directory_iterator(P, Ec))
      if (Entry.is_regular_file() && Entry.path().extension() == ".class")
        Ok &= analyzePath(Entry.path(), T);
    return Ok;
  }
  std::ifstream In(P, std::ios::binary);
  if (!In) {
    fprintf(stderr, "error: cannot open %s\n", P.string().c_str());
    return false;
  }
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  return analyzeBytes(P.string(), Bytes, T);
}

/// Every class of every workload program — the corpus the benchmarks and
/// the fig4 placement ablation execute.
bool analyzeBuiltins(LintTotals &T) {
  using namespace doppio::workloads;
  bool Ok = true;
  std::vector<Workload> All = figure3Workloads();
  All.push_back(makeDeltaBlue()); // The Figure 4 micros.
  All.push_back(makePiDigits());
  for (const Workload &W : All)
    for (const auto &[Name, Bytes] : W.Classes)
      Ok &= analyzeBytes(W.Name + "/" + Name, Bytes, T);
  return Ok;
}

void printLint(const LintTotals &T) {
  printf("---- placement lint ----\n");
  printf("methods analyzed: %llu\n",
         static_cast<unsigned long long>(T.Methods));
  for (size_t S = 0; S != 16; ++S)
    if (T.ByStatus[S])
      printf("  %-20s %llu\n",
             analysisStatusName(static_cast<AnalysisStatus>(S)),
             static_cast<unsigned long long>(T.ByStatus[S]));
  printf("branch sites kept:   %llu\n",
         static_cast<unsigned long long>(T.KeptSites));
  printf("branch sites elided: %llu\n",
         static_cast<unsigned long long>(T.ElidedSites));
  printf("call-boundary sites: %llu\n",
         static_cast<unsigned long long>(T.CallSites));
  printf("unreachable blocks:  %llu\n",
         static_cast<unsigned long long>(T.UnreachableBlocks));
  if (!T.Ineligible.empty()) {
    printf("ineligible methods (%zu):\n", T.Ineligible.size());
    for (const std::string &S : T.Ineligible)
      printf("  %s\n", S.c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  bool Builtin = false;
  std::vector<std::filesystem::path> Paths;
  for (int I = 1; I < argc; ++I) {
    if (!strcmp(argv[I], "--builtin"))
      Builtin = true;
    else if (!strcmp(argv[I], "-q") || !strcmp(argv[I], "--quiet"))
      Quiet = true;
    else if (!strcmp(argv[I], "--lint"))
      LintOnly = true;
    else if (!strcmp(argv[I], "--help")) {
      printf("usage: doppio-analyze [-q] [--lint] [--builtin] "
             "[file.class|dir]...\n");
      return 0;
    } else
      Paths.emplace_back(argv[I]);
  }
  if (!Builtin && Paths.empty()) {
    fprintf(stderr, "usage: doppio-analyze [-q] [--lint] [--builtin] "
                    "[file.class|dir]...\n");
    return 1;
  }
  LintTotals T;
  bool Ok = true;
  if (Builtin)
    Ok &= analyzeBuiltins(T);
  for (const std::filesystem::path &P : Paths)
    Ok &= analyzePath(P, T);
  printLint(T);
  return Ok ? 0 : 1;
}
