//===- examples/doppio_verify.cpp - Standalone bytecode verifier --------===//
//
// Runs the full verification pipeline (structural checks + the dataflow
// fixpoint of dataflow.h) over class files and prints each method's
// disassembly annotated with the abstract state the analysis inferred at
// every instruction — the state a check-elided frame relies on at run
// time (DESIGN.md §12).
//
// Usage:
//   ./build/examples/doppio-verify Foo.class ...   # files or directories
//   ./build/examples/doppio-verify --builtin       # every workload class
//   ./build/examples/doppio-verify -q --builtin    # diagnostics only
//
// Exit status: 0 when every class verifies (MonitorOnly diagnostics are
// reported but do not reject, matching the class loader), 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/dataflow.h"
#include "jvm/classfile/disasm.h"
#include "jvm/classfile/verifier.h"
#include "workloads/workloads.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace doppio;
using namespace doppio::jvm;

namespace {

bool Quiet = false;

/// Verifies one parsed class; prints the annotated listing and any
/// diagnostics. Returns false when the class would be rejected.
bool verifyOne(const std::string &Label, const ClassFile &Cf) {
  std::vector<VerifyError> Errors = verifyClass(Cf);
  printf("%s: %s\n", Label.c_str(),
         Errors.empty()          ? "verified"
         : rejectsClass(Errors)  ? "REJECTED"
                                 : "verified (monitor diagnostics)");
  if (!Quiet) {
    for (const MemberInfo &M : Cf.Methods) {
      if (!M.Code)
        continue;
      MethodDataflow Flow = analyzeMethodDataflow(Cf, M);
      printf("%s", disassembleMethod(Cf, M, &Flow).c_str());
    }
  }
  for (const VerifyError &E : Errors)
    fprintf(stderr, "%s: %s%s\n", Label.c_str(), E.str().c_str(),
            E.MonitorOnly ? " [monitor-only]" : "");
  return !rejectsClass(Errors);
}

bool verifyBytes(const std::string &Label,
                 const std::vector<uint8_t> &Bytes) {
  auto Parsed = readClassFile(Bytes);
  if (!Parsed) {
    fprintf(stderr, "%s: parse error: %s\n", Label.c_str(),
            Parsed.error().message().c_str());
    return false;
  }
  return verifyOne(Label, *Parsed);
}

bool verifyPath(const std::filesystem::path &P) {
  std::error_code Ec;
  if (std::filesystem::is_directory(P, Ec)) {
    bool Ok = true;
    for (const auto &Entry :
         std::filesystem::recursive_directory_iterator(P, Ec))
      if (Entry.is_regular_file() && Entry.path().extension() == ".class")
        Ok &= verifyPath(Entry.path());
    return Ok;
  }
  std::ifstream In(P, std::ios::binary);
  if (!In) {
    fprintf(stderr, "error: cannot open %s\n", P.string().c_str());
    return false;
  }
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  return verifyBytes(P.string(), Bytes);
}

/// Every class of every workload program — the same bytes the JVM tests
/// and benchmarks execute, so CI proves the whole built-in corpus runs
/// check-elided.
bool verifyBuiltins() {
  using namespace doppio::workloads;
  bool Ok = true;
  int Classes = 0;
  std::vector<Workload> All = figure3Workloads();
  All.push_back(makeDeltaBlue()); // The Figure 4 micros.
  All.push_back(makePiDigits());
  for (const Workload &W : All) {
    for (const auto &[Name, Bytes] : W.Classes) {
      Ok &= verifyBytes(W.Name + "/" + Name, Bytes);
      ++Classes;
    }
  }
  printf("%d built-in classes checked\n", Classes);
  return Ok;
}

} // namespace

int main(int argc, char **argv) {
  bool Builtin = false;
  std::vector<std::filesystem::path> Paths;
  for (int I = 1; I < argc; ++I) {
    if (!strcmp(argv[I], "--builtin"))
      Builtin = true;
    else if (!strcmp(argv[I], "-q") || !strcmp(argv[I], "--quiet"))
      Quiet = true;
    else if (!strcmp(argv[I], "--help")) {
      printf("usage: doppio-verify [-q] [--builtin] [file.class|dir]...\n");
      return 0;
    } else
      Paths.emplace_back(argv[I]);
  }
  if (!Builtin && Paths.empty()) {
    fprintf(stderr,
            "usage: doppio-verify [-q] [--builtin] [file.class|dir]...\n");
    return 1;
  }
  bool Ok = true;
  if (Builtin)
    Ok &= verifyBuiltins();
  for (const std::filesystem::path &P : Paths)
    Ok &= verifyPath(P);
  return Ok ? 0 : 1;
}
