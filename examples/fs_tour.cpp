//===- examples/fs_tour.cpp - A tour of the Doppio file system ----------===//
//
// Walks through §5.1's architecture directly against the public API:
// mounting heterogeneous backends into one Unix-style tree, writing
// through localStorage (watching the packed binary-string amplification),
// asynchronous IndexedDB and cloud backends behind the same nine-method
// interface, lazy XHR downloads, moving files across mounts, and quota
// errors surfacing as ENOSPC.
//
// Build and run:  ./build/examples/fs_tour
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/backends/kv_backend.h"
#include "doppio/backends/mountable.h"
#include "doppio/backends/xhr_fs.h"
#include "doppio/fs.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;

static std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

int main() {
  browser::BrowserEnv Env(browser::chromeProfile());
  Env.server().addFile("/srv/readme.txt",
                       bytesOf("served by the web origin"));

  Process Proc;
  auto Root = std::make_unique<InMemoryBackend>(Env);
  auto Mounted = std::make_unique<MountableFileSystem>(std::move(Root));
  // /local -> localStorage, /db -> IndexedDB, /cloud -> Dropbox-style,
  // /srv -> read-only XHR. One API over all of them (§5.1).
  auto Local = std::make_unique<KeyValueBackend>(
      Env, std::make_unique<LocalStorageKv>(Env));
  Local->initialize([](std::optional<ApiError>) {});
  Mounted->mount("/local", std::move(Local));
  auto Db = std::make_unique<KeyValueBackend>(
      Env, std::make_unique<IndexedDbKv>(Env));
  Db->initialize([](std::optional<ApiError>) {});
  Mounted->mount("/db", std::move(Db));
  auto Cloud = std::make_unique<KeyValueBackend>(
      Env, std::make_unique<CloudKv>(Env));
  Cloud->initialize([](std::optional<ApiError>) {});
  Mounted->mount("/cloud", std::move(Cloud));
  Mounted->mount("/srv", std::make_unique<XhrBackend>(Env, "/srv"));
  FileSystem Fs(Env, Proc, std::move(Mounted));
  Env.loop().run();

  auto check = [](const char *What, std::optional<ApiError> E) {
    printf("%-46s %s\n", What, E ? E->message().c_str() : "ok");
  };

  // Write the same file to three persistence mechanisms.
  std::string Note = "state that must survive the page";
  for (const char *Dir : {"/local", "/db", "/cloud"}) {
    std::optional<ApiError> Result;
    Fs.writeFile(std::string(Dir) + "/note.txt", bytesOf(Note),
                 [&](std::optional<ApiError> E) { Result = E; });
    Env.loop().run();
    check((std::string("write ") + Dir + "/note.txt").c_str(), Result);
  }

  // localStorage stores strings: binary data rides the packed
  // binary-string codec at ~2 bytes of payload per UTF-16 code unit.
  printf("localStorage used: %llu bytes for %zu payload bytes "
         "(packed codec, §5.1)\n",
         static_cast<unsigned long long>(Env.localStorage().usedBytes()),
         Note.size());

  // Read back through the uniform API.
  std::string Got;
  Fs.readFile("/cloud/note.txt", [&](ErrorOr<std::vector<uint8_t>> R) {
    if (R)
      Got.assign(R->begin(), R->end());
  });
  Env.loop().run();
  printf("read /cloud/note.txt: \"%s\"\n", Got.c_str());

  // The read-only server mount.
  Fs.readFile("/srv/readme.txt", [&](ErrorOr<std::vector<uint8_t>> R) {
    if (R)
      printf("read /srv/readme.txt: \"%s\"\n",
             std::string(R->begin(), R->end()).c_str());
  });
  Env.loop().run();
  std::optional<ApiError> Denied;
  Fs.unlink("/srv/readme.txt",
            [&](std::optional<ApiError> E) { Denied = E; });
  Env.loop().run();
  check("unlink on the read-only /srv mount", Denied);

  // Cross-mount move: rename returns EXDEV, fs.move copies + deletes.
  std::optional<ApiError> MoveResult;
  Fs.rename("/local/note.txt", "/db/moved.txt",
            [&](std::optional<ApiError> E) { MoveResult = E; });
  Env.loop().run();
  check("rename across mounts (expected EXDEV)", MoveResult);
  Fs.move("/local/note.txt", "/db/moved.txt",
          [&](std::optional<ApiError> E) { MoveResult = E; });
  Env.loop().run();
  check("fs.move across mounts (copy + delete)", MoveResult);

  // Quotas: localStorage holds 5 MB of UTF-16; this write cannot fit.
  std::optional<ApiError> Quota;
  Fs.writeFile("/local/huge.bin", std::vector<uint8_t>(6u << 20, 7),
               [&](std::optional<ApiError> E) { Quota = E; });
  Env.loop().run();
  check("6 MB write into localStorage (expected ENOSPC)", Quota);

  // Directory listing merges mount points into the tree.
  Fs.readdir("/", [&](ErrorOr<std::vector<std::string>> R) {
    if (!R)
      return;
    printf("ls / ->");
    for (const std::string &Name : *R)
      printf(" %s", Name.c_str());
    printf("\n");
  });
  Env.loop().run();
  printf("virtual browser time consumed: %.2f ms\n",
         static_cast<double>(Env.clock().nowNs()) / 1e6);
  return 0;
}
