//===- examples/multithreaded_console.cpp - Threads, stdin, JS eval -----===//
//
// Demonstrates the execution-support features of Table 1 working together
// in one JVM program:
//
//  - multithreading (§4.3/§6.2): a producer thread hands values to the
//    main thread through a synchronized, wait/notify-coordinated box;
//  - synchronous console input (§3.2/§4.2): the program blocks on
//    doppio/Stdin.readLine while the "keyboard event" arrives
//    asynchronously;
//  - JavaScript interop (§6.8): the program evaluates a JS snippet.
//
// Build and run:  ./build/examples/multithreaded_console
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/backends/mountable.h"
#include "doppio/backends/xhr_fs.h"
#include "jvm/jvm.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::jvm;

/// class demo/Box { synchronized put/take with wait/notify }.
static ClassBuilder buildBox() {
  ClassBuilder Box("demo/Box");
  Box.addField(AccPrivate, "value", "I");
  Box.addField(AccPrivate, "full", "I");
  Box.addDefaultConstructor();
  {
    MethodBuilder &Put =
        Box.method(AccPublic | AccSynchronized, "put", "(I)V");
    MethodBuilder::Label Check = Put.newLabel(), Ready = Put.newLabel();
    Put.bind(Check)
        .aload(0)
        .getfield("demo/Box", "full", "I")
        .branch(Op::Ifeq, Ready)
        .aload(0)
        .invokevirtual("java/lang/Object", "wait", "()V")
        .branch(Op::Goto, Check)
        .bind(Ready)
        .aload(0)
        .iload(1)
        .putfield("demo/Box", "value", "I")
        .aload(0)
        .iconst(1)
        .putfield("demo/Box", "full", "I")
        .aload(0)
        .invokevirtual("java/lang/Object", "notifyAll", "()V")
        .op(Op::Return);
  }
  {
    MethodBuilder &Take =
        Box.method(AccPublic | AccSynchronized, "take", "()I");
    MethodBuilder::Label Check = Take.newLabel(), Ready = Take.newLabel();
    Take.bind(Check)
        .aload(0)
        .getfield("demo/Box", "full", "I")
        .branch(Op::Ifne, Ready)
        .aload(0)
        .invokevirtual("java/lang/Object", "wait", "()V")
        .branch(Op::Goto, Check)
        .bind(Ready)
        .aload(0)
        .iconst(0)
        .putfield("demo/Box", "full", "I")
        .aload(0)
        .invokevirtual("java/lang/Object", "notifyAll", "()V")
        .aload(0)
        .getfield("demo/Box", "value", "I")
        .op(Op::Ireturn);
  }
  return Box;
}

/// class demo/Producer extends Thread: puts squares 1..4 into the box.
static ClassBuilder buildProducer() {
  ClassBuilder P("demo/Producer", "java/lang/Thread");
  P.addField(AccPublic, "box", "Ldemo/Box;");
  P.addDefaultConstructor();
  MethodBuilder &Run = P.method(AccPublic, "run", "()V");
  MethodBuilder::Label Loop = Run.newLabel(), Done = Run.newLabel();
  Run.iconst(1)
      .istore(1)
      .bind(Loop)
      .iload(1)
      .iconst(4)
      .branch(Op::IfIcmpgt, Done)
      .aload(0)
      .getfield("demo/Producer", "box", "Ldemo/Box;")
      .iload(1)
      .iload(1)
      .op(Op::Imul)
      .invokevirtual("demo/Box", "put", "(I)V")
      .iinc(1, 1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .op(Op::Return);
  return P;
}

static ClassBuilder buildMain() {
  ClassBuilder B("demo/Main");
  MethodBuilder &M =
      B.method(AccPublic | AccStatic, "main", "([Ljava/lang/String;)V");
  const char *Out = "Ljava/io/PrintStream;";
  // Ask for the user's name: the §3.2 example, synchronous in the source
  // language over the asynchronous keyboard.
  M.getstatic("java/lang/System", "out", Out)
      .ldcString("Please enter your name: ")
      .invokevirtual("java/io/PrintStream", "print",
                     "(Ljava/lang/String;)V")
      .invokestatic("doppio/Stdin", "readLine", "()Ljava/lang/String;")
      .astore(1)
      .getstatic("java/lang/System", "out", Out)
      .ldcString("Your name is ")
      .aload(1)
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V");
  // Spin up the producer and consume four values.
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.anew("demo/Box")
      .op(Op::Dup)
      .invokespecial("demo/Box", "<init>", "()V")
      .astore(2)
      .anew("demo/Producer")
      .op(Op::Dup)
      .invokespecial("demo/Producer", "<init>", "()V")
      .astore(3)
      .aload(3)
      .aload(2)
      .putfield("demo/Producer", "box", "Ldemo/Box;")
      .aload(3)
      .invokevirtual("java/lang/Thread", "start", "()V")
      .iconst(0)
      .istore(4)
      .bind(Loop)
      .iload(4)
      .iconst(4)
      .branch(Op::IfIcmpge, Done)
      .getstatic("java/lang/System", "out", Out)
      .ldcString("took ")
      .aload(2)
      .invokevirtual("demo/Box", "take", "()I")
      .invokestatic("java/lang/Integer", "toString",
                    "(I)Ljava/lang/String;")
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .iinc(4, 1)
      .branch(Op::Goto, Loop)
      .bind(Done);
  // JS interop (§6.8).
  M.getstatic("java/lang/System", "out", Out)
      .ldcString("JS says 6*7 = ")
      .ldcString("6*7")
      .invokestatic("doppio/JS", "eval",
                    "(Ljava/lang/String;)Ljava/lang/String;")
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .op(Op::Return);
  return B;
}

int main() {
  browser::BrowserEnv Env(browser::chromeProfile());
  ClassBuilder Box = buildBox(), Producer = buildProducer(),
               Main = buildMain();
  Env.server().addFile("/classes/demo/Box.class", Box.bytes());
  Env.server().addFile("/classes/demo/Producer.class", Producer.bytes());
  Env.server().addFile("/classes/demo/Main.class", Main.bytes());

  rt::Process Proc;
  Proc.pushStdin("Grace Hopper"); // The pending keyboard input.
  auto Root = std::make_unique<rt::fs::InMemoryBackend>(Env);
  auto Mounted =
      std::make_unique<rt::fs::MountableFileSystem>(std::move(Root));
  Mounted->mount("/classes",
                 std::make_unique<rt::fs::XhrBackend>(Env, "/classes"));
  rt::fs::FileSystem Fs(Env, Proc, std::move(Mounted));

  Jvm Vm(Env, Fs, Proc);
  // A toy "JavaScript engine" for the eval hook.
  Vm.setJsEval([](const std::string &Src) {
    return Src == "6*7" ? std::string("42") : std::string("undefined");
  });
  int Exit = Vm.runMainToCompletion("demo/Main", {});

  printf("--- program stdout ---\n%s", Proc.capturedStdout().c_str());
  printf("--- exit code %d; context switches: %llu; threads spawned "
         "cooperatively on one JavaScript thread ---\n",
         Exit,
         static_cast<unsigned long long>(Vm.pool().contextSwitches()));
  return Exit == 0 ? 0 : 1;
}
