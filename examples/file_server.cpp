//===- examples/file_server.cpp - doppiod in five minutes ----------------===//
//
// A tour of the doppiod server subsystem (src/doppio/server/): stand up a
// Server backed by the Doppio file system, register the stock echo / stat /
// file handlers plus a custom one, and talk to it with a handful of
// FrameClients — all inside one deterministic event-loop run. Finishes
// with a graceful shutdown: the listener closes, in-flight requests drain,
// and the drain callback confirms every connection is gone.
//
// This is the part of Unix that §5.3 leaves to an external websockify
// process; doppiod brings the server half into the runtime (cf. Browsix).
//
// Build and run:  ./build/examples/file_server
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/fs.h"
#include "doppio/server/client.h"
#include "doppio/server/handlers.h"
#include "doppio/server/server.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::rt;

static std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

int main() {
  browser::BrowserEnv Env(browser::chromeProfile());
  Process Proc;

  // A tiny site to serve.
  auto Root = std::make_unique<fs::InMemoryBackend>(Env);
  Root->seedFile("/site/index.html", bytesOf("<h1>doppiod</h1>"));
  Root->seedFile("/site/data.bin", std::vector<uint8_t>(4096, 0x2a));
  fs::FileSystem Fs(Env, Proc, std::move(Root));

  // The server: echo/stat/file come stock; "version" shows a custom
  // handler registered through the router.
  server::Server::Config Cfg;
  Cfg.Port = 8080;
  Cfg.MaxConnections = 8;
  server::Server Srv(Env, Cfg);
  server::installDefaultHandlers(Srv.router(), Fs, &Env.metrics());
  Srv.router().handle("version",
                      [](const server::frame::Request &,
                         server::Router::RespondFn Respond) {
                        Respond(server::frame::Status::Ok,
                                bytesOf("doppiod/0.1"));
                      });
  if (!Srv.start()) {
    printf("could not listen on %u\n", Cfg.Port);
    return 1;
  }
  printf("listening on simulated port %u with handlers:", Cfg.Port);
  for (const std::string &Name : Srv.router().names())
    printf(" %s", Name.c_str());
  printf("\n\n");

  auto show = [](const char *What, server::frame::Response R) {
    printf("%-28s [%s] %zu bytes: %.48s\n", What,
           server::frame::statusName(R.S), R.Body.size(),
           R.text().c_str());
  };

  // Three clients, talking concurrently over SimNet.
  server::FrameClient A(Env.net()), B(Env.net()), C(Env.net());
  A.connect(Cfg.Port, [&](bool Ok) {
    if (!Ok)
      return;
    A.request("version", {}, [&](auto R) { show("A: version", R); });
    A.request("echo", bytesOf("hello, server"),
              [&](auto R) { show("A: echo", R); });
  });
  B.connect(Cfg.Port, [&](bool Ok) {
    if (!Ok)
      return;
    B.request("stat", bytesOf("/site/data.bin"),
              [&](auto R) { show("B: stat /site/data.bin", R); });
    B.request("file", bytesOf("/site/index.html"),
              [&](auto R) { show("B: file /site/index.html", R); });
    B.request("file", bytesOf("/site/missing"),
              [&](auto R) { show("B: file /site/missing", R); });
  });
  C.connect(Cfg.Port, [&](bool Ok) {
    if (!Ok)
      return;
    // No such handler: the router answers NoHandler, connection stays up.
    C.request("rm -rf", {}, [&](auto R) { show("C: rm -rf", R); });
  });

  // Let the traffic complete, then drain.
  Env.loop().scheduleAfter(
      [&] {
        printf("\nshutting down (drain)...\n");
        Srv.shutdown([&] {
          server::ServerStats S = Srv.stats();
          printf("drained: accepted=%llu served=%llu errors=%llu "
                 "active=%llu bytes_out=%llu\n",
                 (unsigned long long)S.Accepted,
                 (unsigned long long)S.RequestsServed,
                 (unsigned long long)S.RequestErrors,
                 (unsigned long long)S.Active,
                 (unsigned long long)S.BytesOut);
        });
      },
      browser::msToNs(50));

  Env.loop().run();
  return 0;
}
