//===- examples/cluster_demo.cpp - sharded doppiod in five minutes -------===//
//
// A tour of the cluster subsystem (src/doppio/cluster/): stand up a
// consistent-hash balancer tab in front of four doppiod shard tabs, pump
// a fleet of front-door clients through it on the deterministic lockstep
// driver, read the aggregated metrics through the same front door, then
// live-spawn a fifth shard and gracefully drain the busiest one — all
// while requests keep flowing and none are lost.
//
// Each shard is a full tab: its own kernel, virtual clock, file system,
// process table, and doppiod server stack. The balancer routes client
// connections with a consistent-hash ring, so adding or draining one
// shard remaps only ~1/N of them — the way a browser would fan work out
// across SharedWorker-connected tabs.
//
// Build and run:  ./build/examples/cluster_demo
//
//===----------------------------------------------------------------------===//

#include "doppio/cluster/cluster.h"

#include "browser/profile.h"
#include "doppio/server/client.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace doppio;
using namespace doppio::cluster;
using doppio::rt::server::FrameClient;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

/// Connects \p N clients to the front door; each issues \p Requests
/// pipelined "work" requests (100us of spin plus one file read in the
/// owning shard) and closes. Returns Ok count after the driver run.
uint64_t pumpClients(Cluster &Cl, LockstepDriver &Drv, size_t N,
                     size_t Requests) {
  std::vector<std::unique_ptr<FrameClient>> Fleet;
  uint64_t Ok = 0;
  for (size_t I = 0; I < N; ++I) {
    auto C = std::make_unique<FrameClient>(Cl.balancer().env().net());
    FrameClient *P = C.get();
    std::string Body = "100 /srv/f" + std::to_string(I % 8) + ".bin";
    P->connect(Cl.balancer().port(), [P, Body, Requests, &Ok](bool Up) {
      if (!Up)
        return;
      for (size_t R = 0; R < Requests; ++R)
        P->request("work", bytesOf(Body),
                   [P, R, Requests, &Ok](rt::server::frame::Response Re) {
                     if (Re.S == rt::server::frame::Status::Ok)
                       ++Ok;
                     if (R + 1 == Requests)
                       P->close();
                   });
    });
    Fleet.push_back(std::move(C));
  }
  Drv.run(1000000);
  return Ok;
}

void printShardTable(Cluster &Cl, const std::vector<uint32_t> &Ids) {
  printf("  %-6s %9s %9s %9s %12s\n", "shard", "accepted", "served",
         "active", "clock-ms");
  for (uint32_t Id : Ids) {
    if (!Cl.shard(Id))
      continue;
    rt::server::ServerStats S = Cl.shard(Id)->server().stats();
    printf("  %-6u %9llu %9llu %9llu %12.2f\n", Id,
           static_cast<unsigned long long>(S.Accepted),
           static_cast<unsigned long long>(S.RequestsServed),
           static_cast<unsigned long long>(S.Active),
           static_cast<double>(Cl.shard(Id)->env().clock().nowNs()) / 1e6);
  }
}

} // namespace

int main() {
  printf("== doppio cluster demo: 1 balancer tab + 4 doppiod shard tabs ==\n\n");

  Cluster::Config Cfg;
  Cfg.Shards = 4;
  Cluster Cl(browser::chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());

  // --- Phase 1: load through the front door --------------------------------
  uint64_t Ok = pumpClients(Cl, Drv, 32, 8);
  printf("phase 1: 32 clients x 8 requests -> %llu ok, %llu forwarded\n",
         static_cast<unsigned long long>(Ok),
         static_cast<unsigned long long>(
             Cl.balancer().stats().RequestsForwarded));
  printShardTable(Cl, {0, 1, 2, 3});

  // --- Phase 2: aggregated metrics through the same port -------------------
  // "metrics" never reaches a shard: the balancer answers from its own
  // registry, which mirrors every shard snapshot under a "shard" prefix.
  for (uint32_t S = 0; S < 4; ++S)
    Cl.shard(S)->pushStats(Cl.balancer().tab());
  FrameClient Mc(Cl.balancer().env().net());
  std::string Metrics;
  Mc.connect(Cl.balancer().port(), [&](bool Up) {
    if (!Up)
      return;
    Mc.request("metrics", bytesOf("json"),
               [&](rt::server::frame::Response Re) {
                 Metrics = Re.text();
                 Mc.close();
               });
  });
  Drv.run(1000000);
  printf("\nphase 2: metrics through the front door: %zu bytes, %zu shard"
         " snapshots aggregated\n",
         Metrics.size(), Cl.balancer().snapshots().size());

  // --- Phase 3: live-spawn a shard, then drain the busiest one -------------
  uint32_t NewId = Cl.spawnShard();
  printf("\nphase 3: spawned shard %u (live shards: %zu)\n", NewId,
         Cl.balancer().liveShards());

  uint32_t Victim = 0;
  uint64_t Best = 0;
  for (uint32_t S = 0; S < 4; ++S) {
    uint64_t Served = Cl.shard(S)->server().stats().RequestsServed;
    if (Served >= Best) {
      Best = Served;
      Victim = S;
    }
  }
  bool Drained = false;
  Cl.drainShard(Victim, [&](const ShardSnapshot &S) {
    Drained = true;
    printf("  drained shard %u: served %llu requests in its lifetime,"
           " final active=%llu\n",
           S.ShardId, static_cast<unsigned long long>(S.RequestsServed),
           static_cast<unsigned long long>(S.Active));
  });
  Ok = pumpClients(Cl, Drv, 32, 8);
  printf("  under drain: 32 more clients x 8 requests -> %llu ok\n",
         static_cast<unsigned long long>(Ok));
  printf("  drain complete: %s; victim pending kernel work: %s\n",
         Drained ? "yes" : "no",
         Cl.shardPendingWorkNs(Victim) ? "SOME (bug!)" : "none");
  printShardTable(Cl, {0, 1, 2, 3, NewId});

  printf("\nlive shards at exit: %zu; fabric crossings: %llu\n",
         Cl.balancer().liveShards(),
         static_cast<unsigned long long>(Cl.fabric().crossings()));
  return Drained ? 0 : 1;
}
