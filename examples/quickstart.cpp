//===- examples/quickstart.cpp - Hello, Doppio --------------------------===//
//
// The smallest end-to-end deployment of the Doppio reproduction:
//
//   1. Create a simulated browser tab (Chrome profile).
//   2. Assemble a Java program with the bytecode assembler and publish its
//      class file on the simulated web server.
//   3. Mount a Doppio file system: lazy XHR downloads for /classes, a
//      writable in-memory root.
//   4. Boot DoppioJVM, run main() — the interpreter executes as a series
//      of short browser events, so the page never freezes — and print
//      what the program wrote, plus a few runtime statistics.
//
// Build and run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/backends/mountable.h"
#include "doppio/backends/xhr_fs.h"
#include "jvm/jvm.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::jvm;

int main() {
  // 1. One simulated browser tab.
  browser::BrowserEnv Env(browser::chromeProfile());

  // 2. A small Java program: greet, then sum the squares 1..10.
  ClassBuilder Hello("demo/Hello");
  MethodBuilder &M =
      Hello.method(AccPublic | AccStatic, "main", "([Ljava/lang/String;)V");
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
      .ldcString("Hello from DoppioJVM inside the browser!")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V");
  M.iconst(0).istore(1); // sum
  M.iconst(1).istore(2); // i
  M.bind(Loop)
      .iload(2)
      .iconst(10)
      .branch(Op::IfIcmpgt, Done)
      .iload(1)
      .iload(2)
      .iload(2)
      .op(Op::Imul)
      .op(Op::Iadd)
      .istore(1)
      .iinc(2, 1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
      .ldcString("sum of squares 1..10 = ")
      .iload(1)
      .invokestatic("java/lang/Integer", "toString",
                    "(I)Ljava/lang/String;")
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .op(Op::Return);
  Env.server().addFile("/classes/demo/Hello.class", Hello.bytes());

  // 3. The Doppio file system: XHR mount for class files, writable root.
  rt::Process Proc;
  auto Root = std::make_unique<rt::fs::InMemoryBackend>(Env);
  auto Mounted =
      std::make_unique<rt::fs::MountableFileSystem>(std::move(Root));
  Mounted->mount("/classes",
                 std::make_unique<rt::fs::XhrBackend>(Env, "/classes"));
  rt::fs::FileSystem Fs(Env, Proc, std::move(Mounted));

  // 4. Boot the JVM and run to completion.
  Jvm Vm(Env, Fs, Proc);
  int Exit = Vm.runMainToCompletion("demo/Hello", {});

  printf("--- program stdout ---\n%s", Proc.capturedStdout().c_str());
  printf("--- exit code: %d ---\n", Exit);
  printf("bytecodes executed : %llu\n",
         static_cast<unsigned long long>(Vm.stats().OpsExecuted));
  printf("suspend yields     : %llu (events stayed short; page responsive)\n",
         static_cast<unsigned long long>(Vm.stats().SuspendYields));
  printf("classes downloaded : %llu (lazily, on first reference)\n",
         static_cast<unsigned long long>(Vm.loader().fileLoads()));
  printf("browser time       : %.2f ms virtual\n",
         static_cast<double>(Env.clock().nowNs()) / 1e6);
  return Exit == 0 ? 0 : 1;
}
