//===- examples/shadow_game.cpp - The §7.2 case study -------------------===//
//
// Runs the "Me and My Shadow" analog twice — once hosted the way plain
// Emscripten output runs in a browser, once on the Doppio runtime — and
// prints the comparison the paper's §7.2 makes: preloading vs lazy asset
// loading, lost vs persistent saves, and a frozen vs responsive page.
//
// Build and run:  ./build/examples/shadow_game
//
//===----------------------------------------------------------------------===//

#include "vm32/game.h"

#include "doppio/backends/in_memory.h"
#include "doppio/backends/kv_backend.h"
#include "doppio/backends/mountable.h"
#include "doppio/backends/xhr_fs.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::vm32;

namespace {

struct Deployment {
  explicit Deployment(const GameConfig &Config)
      : Env(browser::chromeProfile()) {
    for (auto &[Path, Bytes] : makeGameAssets(Config))
      Env.server().addFile(Path, Bytes);
    auto Root = std::make_unique<rt::fs::InMemoryBackend>(Env);
    auto Mounted =
        std::make_unique<rt::fs::MountableFileSystem>(std::move(Root));
    Mounted->mount("/srv",
                   std::make_unique<rt::fs::XhrBackend>(Env, "/srv"));
    auto Saves = std::make_unique<rt::fs::KeyValueBackend>(
        Env, std::make_unique<rt::fs::LocalStorageKv>(Env));
    Saves->initialize([](std::optional<rt::ApiError>) {});
    Mounted->mount("/save", std::move(Saves));
    Fs = std::make_unique<rt::fs::FileSystem>(Env, Proc,
                                              std::move(Mounted));
    // A user clicks every 250 ms of virtual time while the game runs.
    for (int I = 1; I <= 60; ++I)
      Env.loop().setTimeout([] {}, browser::msToNs(250) * I,
                            browser::EventKind::Input);
  }

  browser::BrowserEnv Env;
  rt::Process Proc;
  std::unique_ptr<rt::fs::FileSystem> Fs;
};

void report(const char *Title, const MiniVm &Vm,
            browser::BrowserEnv &Env) {
  const MiniVm::Stats &S = Vm.stats();
  printf("%s\n", Title);
  printf("  status               : %s\n", vm32StatusName(Vm.status()));
  if (!Vm.faultReason().empty())
    printf("  reason               : %s\n", Vm.faultReason().c_str());
  printf("  frames simulated     : %llu\n",
         static_cast<unsigned long long>(S.Frames));
  printf("  asset bytes preloaded: %llu\n",
         static_cast<unsigned long long>(S.AssetBytesPreloaded));
  printf("  assets loaded lazily : %llu\n",
         static_cast<unsigned long long>(
             S.AssetBytesPreloaded ? 0 : S.AssetsLoaded));
  printf("  saves: %llu attempted, %llu persisted\n",
         static_cast<unsigned long long>(S.SavesAttempted),
         static_cast<unsigned long long>(S.SavesSucceeded));
  printf("  watchdog kills       : %llu\n",
         static_cast<unsigned long long>(
             Env.loop().stats().WatchdogKills));
  printf("  worst input latency  : %.1f ms\n",
         static_cast<double>(Env.loop().stats().MaxInputLatencyNs) / 1e6);
  printf("\n");
}

} // namespace

int main() {
  GameConfig Config;
  Config.Levels = 3;
  Config.FramesPerLevel = 30000; // ~4.5 s of virtual frame time a level.

  printf("=== Case study (paper §7.2): the same compiled game, two "
         "hostings ===\n\n");

  {
    Deployment D(Config);
    MiniVm Vm(D.Env, *D.Fs, buildShadowGame(Config), HostMode::Emscripten);
    Vm.preloadAndRun(gameAssetPaths(Config));
    D.Env.loop().run();
    report("[plain Emscripten hosting]", Vm, D.Env);
  }
  {
    Deployment D(Config);
    MiniVm Vm(D.Env, *D.Fs, buildShadowGame(Config), HostMode::DoppioRt);
    Vm.start();
    D.Env.loop().run();
    report("[Emscripten + Doppio hosting]", Vm, D.Env);
    printf("Doppio's runtime segments the game loop into short events,\n"
           "downloads each level's assets on demand through the file\n"
           "system, and backs /save with localStorage — so the page stays\n"
           "responsive, nothing is preloaded, and progress persists.\n");
  }
  return 0;
}
