//===- examples/doppio_top.cpp - top(1) for a simulated tab --------------===//
//
// A tour of the observability subsystem (src/doppio/obs/): stand up a
// doppiod under client load, and render the tab's metrics registry as
// periodic `top`-style snapshots on the virtual clock — kernel lane
// counters, fs and server instruments, latency histogram percentiles, and
// the most recent causal spans showing one request's journey
// client.req -> server.req.file -> fs.readFile with its queue delay.
//
// The served tree lives on the storage hierarchy (DESIGN.md §19): a
// write-back block cache + journal over cloud storage, so each snapshot
// also renders a live cache panel (hit ratio, dirty bytes, evictions,
// journal depth) straight from the storage.* registry cells.
//
// Also demonstrates the typed timer API: the refresh tick is a
// browser::TimerHandle re-armed from its own callback and cancelled when
// the load completes.
//
// Build and run:  ./build/examples/doppio_top
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/kv_backend.h"
#include "doppio/backends/kv_store.h"
#include "doppio/fs.h"
#include "doppio/obs/exposition.h"
#include "doppio/server/handlers.h"
#include "doppio/server/server.h"
#include "doppio/storage/cached_store.h"
#include "workloads/traffic.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::rt;

namespace {

/// The live cache panel, assembled from the storage.* registry cells the
/// CachedKvStore publishes (the same cells a FrameClient scrape sees).
std::string renderCachePanel(obs::Registry &Reg) {
  auto C = [&](const char *Suffix) {
    return (unsigned long long)Reg.counter(std::string("storage.") + Suffix)
        .value();
  };
  auto G = [&](const char *Suffix) {
    return (long long)Reg.gauge(std::string("storage.") + Suffix).value();
  };
  unsigned long long Hits = C("cache.hits"), Misses = C("cache.misses");
  double Ratio = Hits + Misses
                     ? 100.0 * static_cast<double>(Hits) /
                           static_cast<double>(Hits + Misses)
                     : 0.0;
  char Buf[512];
  snprintf(Buf, sizeof(Buf),
           "storage: hit %5.1f%% (%llu/%llu)  dirty %lld B  cached %lld B "
           "in %lld entries\n"
           "         evict %llu  flush %llu (%llu blocks)  journal %lld B "
           "depth, %llu commits, %llu ckpt\n",
           Ratio, Hits, Hits + Misses, G("cache.dirty_bytes"),
           G("cache.bytes"), G("cache.entries"), C("cache.evictions"),
           C("flush.flushes"), C("flush.blocks"), G("journal.depth_bytes"),
           C("journal.commits"), C("journal.checkpoints"));
  return Buf;
}

} // namespace

int main() {
  browser::BrowserEnv Env(browser::chromeProfile());
  Process Proc;

  // Content to serve, on the cached-cloud storage hierarchy: the first
  // request for a file faults its blocks in over the WAN; repeats hit.
  auto Cached = std::make_unique<storage::CachedKvStore>(
      Env, std::make_unique<fs::CloudKv>(Env));
  auto Kv = std::make_unique<fs::KeyValueBackend>(Env, std::move(Cached));
  Kv->initialize([](std::optional<ApiError>) {});
  fs::FileSystem Fs(Env, Proc, std::move(Kv));
  Fs.mkdirp("/srv", [](std::optional<ApiError>) {});
  for (int I = 0; I < 8; ++I)
    Fs.writeFile("/srv/f" + std::to_string(I) + ".bin",
                 std::vector<uint8_t>(256 + 128 * I, 0x2a),
                 [](std::optional<ApiError>) {});
  Env.loop().run(); // Seed (and let the write-back cache flush it).

  // The server, with the metrics handler installed so a FrameClient could
  // scrape the same registry this example prints.
  server::Server::Config Cfg;
  Cfg.Port = 9090;
  server::Server Srv(Env, Cfg);
  server::installDefaultHandlers(Srv.router(), Fs, &Env.metrics());
  if (!Srv.start()) {
    printf("could not listen on %u\n", Cfg.Port);
    return 1;
  }

  // Client load: 8 clients x 16 file requests.
  workloads::TrafficConfig TCfg;
  TCfg.Port = Cfg.Port;
  TCfg.Clients = 8;
  TCfg.RequestsPerClient = 16;
  TCfg.Handler = "file";
  for (int I = 0; I < 8; ++I) {
    std::string P = "/srv/f" + std::to_string(I) + ".bin";
    TCfg.Bodies.emplace_back(P.begin(), P.end());
  }
  workloads::TrafficGen Gen(Env, TCfg);

  // The refresh tick: every 2 virtual ms, print a snapshot and re-arm.
  bool LoadDone = false;
  browser::TimerHandle Tick;
  std::function<void()> Refresh = [&] {
    printf("--- doppio_top @ %llu us (virtual) ---\n",
           (unsigned long long)(Env.clock().nowNs() / 1000));
    printf("%s", renderCachePanel(Env.metrics()).c_str());
    printf("%s\n", obs::renderTop(Env.metrics(), /*MaxSpans=*/6).c_str());
    if (!LoadDone)
      Tick = Env.loop().postTimer(kernel::Lane::Timer, Refresh,
                                  browser::msToNs(2));
  };
  Tick = Env.loop().postTimer(kernel::Lane::Timer, Refresh,
                              browser::msToNs(2));

  Gen.start([&] {
    LoadDone = true;
    if (Tick.cancel())
      printf("[refresh tick cancelled via TimerHandle]\n");
    Srv.shutdown([&] {
      printf("=== final snapshot (server drained) ===\n");
      printf("%s", renderCachePanel(Env.metrics()).c_str());
      printf("%s\n", obs::renderTop(Env.metrics()).c_str());
    });
  });

  Env.loop().run();

  const workloads::TrafficReport &R = Gen.report();
  printf("load: %llu ok, %llu errors, p50 %.1f us, p99 %.1f us\n",
         (unsigned long long)R.Completed, (unsigned long long)R.Errors,
         static_cast<double>(R.p50Ns()) / 1e3,
         static_cast<double>(R.p99Ns()) / 1e3);
  return 0;
}
