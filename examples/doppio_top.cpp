//===- examples/doppio_top.cpp - top(1) for a simulated tab --------------===//
//
// A tour of the observability subsystem (src/doppio/obs/): stand up a
// doppiod under client load, and render the tab's metrics registry as
// periodic `top`-style snapshots on the virtual clock — kernel lane
// counters, fs and server instruments, latency histogram percentiles, and
// the most recent causal spans showing one request's journey
// client.req -> server.req.file -> fs.readFile with its queue delay.
//
// Also demonstrates the typed timer API: the refresh tick is a
// browser::TimerHandle re-armed from its own callback and cancelled when
// the load completes.
//
// Build and run:  ./build/examples/doppio_top
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/fs.h"
#include "doppio/obs/exposition.h"
#include "doppio/server/handlers.h"
#include "doppio/server/server.h"
#include "workloads/traffic.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::rt;

int main() {
  browser::BrowserEnv Env(browser::chromeProfile());
  Process Proc;

  // Content to serve.
  auto Root = std::make_unique<fs::InMemoryBackend>(Env);
  for (int I = 0; I < 8; ++I)
    Root->seedFile("/srv/f" + std::to_string(I) + ".bin",
                   std::vector<uint8_t>(256 + 128 * I, 0x2a));
  fs::FileSystem Fs(Env, Proc, std::move(Root));

  // The server, with the metrics handler installed so a FrameClient could
  // scrape the same registry this example prints.
  server::Server::Config Cfg;
  Cfg.Port = 9090;
  server::Server Srv(Env, Cfg);
  server::installDefaultHandlers(Srv.router(), Fs, &Env.metrics());
  if (!Srv.start()) {
    printf("could not listen on %u\n", Cfg.Port);
    return 1;
  }

  // Client load: 8 clients x 16 file requests.
  workloads::TrafficConfig TCfg;
  TCfg.Port = Cfg.Port;
  TCfg.Clients = 8;
  TCfg.RequestsPerClient = 16;
  TCfg.Handler = "file";
  for (int I = 0; I < 8; ++I) {
    std::string P = "/srv/f" + std::to_string(I) + ".bin";
    TCfg.Bodies.emplace_back(P.begin(), P.end());
  }
  workloads::TrafficGen Gen(Env, TCfg);

  // The refresh tick: every 2 virtual ms, print a snapshot and re-arm.
  bool LoadDone = false;
  browser::TimerHandle Tick;
  std::function<void()> Refresh = [&] {
    printf("--- doppio_top @ %llu us (virtual) ---\n",
           (unsigned long long)(Env.clock().nowNs() / 1000));
    printf("%s\n", obs::renderTop(Env.metrics(), /*MaxSpans=*/6).c_str());
    if (!LoadDone)
      Tick = Env.loop().postTimer(kernel::Lane::Timer, Refresh,
                                  browser::msToNs(2));
  };
  Tick = Env.loop().postTimer(kernel::Lane::Timer, Refresh,
                              browser::msToNs(2));

  Gen.start([&] {
    LoadDone = true;
    if (Tick.cancel())
      printf("[refresh tick cancelled via TimerHandle]\n");
    Srv.shutdown([&] {
      printf("=== final snapshot (server drained) ===\n");
      printf("%s\n", obs::renderTop(Env.metrics()).c_str());
    });
  });

  Env.loop().run();

  const workloads::TrafficReport &R = Gen.report();
  printf("load: %llu ok, %llu errors, p50 %.1f us, p99 %.1f us\n",
         (unsigned long long)R.Completed, (unsigned long long)R.Errors,
         static_cast<double>(R.p50Ns()) / 1e3,
         static_cast<double>(R.p99Ns()) / 1e3);
  return 0;
}
