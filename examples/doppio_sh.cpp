//===- examples/doppio_sh.cpp - A tiny shell over the process table ------===//
//
// The process subsystem (src/doppio/proc/, DESIGN.md §14) demonstrated as
// a scripted Unix shell running inside a simulated browser tab: programs
// spawn out of a ProgramRegistry, pipelines wire bounded in-kernel pipes
// between stages, `cd` is validated against the Doppio file system
// (ENOENT/ENOTDIR instead of blind normalization), `&` backgrounds a job,
// `kill %N` delivers SIGTERM, and `wait` reaps children while reporting
// their exit codes.
//
// On top of that, the continuation substrate (DESIGN.md §16) shows up as
// two more builtins: `checkpoint <pid|%N> <file>` freezes a running JVM
// guest into a self-describing blob on the Doppio fs (killing the live
// copy at the freeze point — the blob is the process now), and
// `restore <file>` revives it as a fresh child that finishes the
// remaining work, output stream intact.
//
// Build and run:  ./build/examples/doppio_sh
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/fs.h"
#include "doppio/proc/checkpoint.h"
#include "doppio/proc/programs.h"
#include "jvm/classfile/builder.h"
#include "jvm/proc_program.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::proc;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

/// class Ticker { public static void main(String[] a) {
///   long s = 1;
///   for (int i = 0; i < 3000; i++) {
///     s = s * 1103515245L + i;
///     int t = 0;
///     for (int k = 0; k < 200; k++) t = t * 31 + k;
///     if (i % 500 == 0) System.out.println((int)(s % 1000000L) ^ t);
///   } } }
///
/// Long enough to span several scheduler slices (so `checkpoint` finds a
/// mid-run quiescent point), quiet enough for a terminal demo.
std::vector<uint8_t> tickerClassBytes() {
  jvm::ClassBuilder B("Ticker");
  jvm::MethodBuilder &M = B.method(jvm::AccPublic | jvm::AccStatic, "main",
                                   "([Ljava/lang/String;)V");
  jvm::MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  jvm::MethodBuilder::Label KLoop = M.newLabel(), KDone = M.newLabel();
  jvm::MethodBuilder::Label Skip = M.newLabel();
  M.lconst(1).lstore(1);
  M.iconst(0).istore(3);
  M.bind(Loop).iload(3).iconst(3000).branch(jvm::Op::IfIcmpge, Done);
  M.lload(1)
      .lconst(1103515245)
      .op(jvm::Op::Lmul)
      .iload(3)
      .op(jvm::Op::I2l)
      .op(jvm::Op::Ladd)
      .lstore(1);
  M.iconst(0).istore(4);
  M.iconst(0).istore(5);
  M.bind(KLoop).iload(5).iconst(200).branch(jvm::Op::IfIcmpge, KDone);
  M.iload(4)
      .iconst(31)
      .op(jvm::Op::Imul)
      .iload(5)
      .op(jvm::Op::Iadd)
      .istore(4);
  M.iinc(5, 1).branch(jvm::Op::Goto, KLoop).bind(KDone);
  M.iload(3).iconst(500).op(jvm::Op::Irem).iconst(0).branch(
      jvm::Op::IfIcmpne, Skip);
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  M.lload(1)
      .lconst(1000000)
      .op(jvm::Op::Lrem)
      .op(jvm::Op::L2i)
      .iload(4)
      .op(jvm::Op::Ixor)
      .invokevirtual("java/io/PrintStream", "println", "(I)V");
  M.bind(Skip);
  M.iinc(3, 1).branch(jvm::Op::Goto, Loop);
  M.bind(Done).op(jvm::Op::Return);
  return B.bytes();
}

/// Runs a fixed script one command at a time: the next command only
/// starts after the previous one finished (or was backgrounded), like a
/// terminal session being typed.
class Shell {
public:
  Shell(browser::BrowserEnv &Env, ProcessTable &Procs,
        const ProgramRegistry &Progs, const CheckpointRegistry &Ckpts,
        std::vector<std::string> Script)
      : Env(Env), Procs(Procs), Progs(Progs), Ckpts(Ckpts),
        Script(std::move(Script)) {
    // The shell itself is a process (a bare context, no program): its cwd
    // is what `cd` changes, and its children are what `wait` reaps.
    ProcessTable::SpawnSpec S;
    S.Name = "sh";
    Self = Procs.spawn(std::move(S));
  }

  void run(std::function<void()> Done) {
    OnDone = std::move(Done);
    next();
  }

private:
  proc::Process &self() { return *Procs.find(Self); }

  void next() {
    if (Cursor >= Script.size()) {
      if (OnDone)
        OnDone();
      return;
    }
    std::string Line = Script[Cursor++];
    printf("doppio$ %s\n", Line.c_str());
    execLine(std::move(Line));
  }

  void execLine(std::string Line) {
    bool Background = false;
    size_t Amp = Line.find_last_of('&');
    if (Amp != std::string::npos &&
        Line.find_first_not_of(" \t", Amp + 1) == std::string::npos) {
      Background = true;
      Line.erase(Amp);
    }

    std::vector<std::string> First = tokenize(Line);
    if (First.empty()) {
      next();
      return;
    }
    if (First[0] == "cd") {
      builtinCd(First.size() > 1 ? First[1] : "/");
      return;
    }
    if (First[0] == "wait") {
      builtinWait();
      return;
    }
    if (First[0] == "kill") {
      builtinKill(First.size() > 1 ? First[1] : "");
      return;
    }
    if (First[0] == "checkpoint") {
      builtinCheckpoint(First.size() > 1 ? First[1] : "",
                        First.size() > 2 ? First[2] : "");
      return;
    }
    if (First[0] == "restore") {
      builtinRestore(First.size() > 1 ? First[1] : "");
      return;
    }
    runPipeline(Line, Background);
  }

  void builtinCd(const std::string &Path) {
    self().state().chdir(Path, [this](std::optional<ApiError> Err) {
      if (Err)
        printf("cd: %s\n", Err->message().c_str());
      else
        printf("(cwd is now %s)\n", self().state().cwd().c_str());
      next();
    });
  }

  /// Reaps children until ECHILD, reporting how each ended.
  void builtinWait() {
    Procs.waitpid(Self, -1, [this](ErrorOr<WaitResult> W) {
      if (!W.ok()) {
        printf("wait: all children reaped\n");
        next();
        return;
      }
      reportExit(*W);
      builtinWait();
    });
  }

  void builtinKill(const std::string &JobRef) {
    if (JobRef.size() < 2 || JobRef[0] != '%') {
      printf("kill: expected %%N job reference\n");
      next();
      return;
    }
    size_t Job = std::strtoul(JobRef.c_str() + 1, nullptr, 10);
    if (Job == 0 || Job > Jobs.size()) {
      printf("kill: no such job %s\n", JobRef.c_str());
      next();
      return;
    }
    Pid Target = Jobs[Job - 1];
    if (!Procs.kill(Target, Signal::Term))
      printf("kill: (%d) ESRCH\n", Target);
    next();
  }

  /// A %N job reference or a bare pid; 0 when it resolves to nothing.
  Pid resolvePid(const std::string &Ref) {
    if (Ref.empty())
      return 0;
    if (Ref[0] == '%') {
      size_t Job = std::strtoul(Ref.c_str() + 1, nullptr, 10);
      return Job >= 1 && Job <= Jobs.size() ? Jobs[Job - 1] : 0;
    }
    return static_cast<Pid>(std::strtoul(Ref.c_str(), nullptr, 10));
  }

  void builtinCheckpoint(const std::string &PidRef, const std::string &Path) {
    Pid Target = resolvePid(PidRef);
    if (Target == 0 || Path.empty()) {
      printf("checkpoint: usage: checkpoint <pid|%%N> <file>\n");
      next();
      return;
    }
    attemptCheckpoint(Target, Path);
  }

  void attemptCheckpoint(Pid Target, std::string Path) {
    ErrorOr<std::vector<uint8_t>> Blob =
        proc::checkpointProcess(Procs, Target);
    if (!Blob.ok()) {
      if (Blob.error().Code == Errno::Again) {
        // Not quiescent yet: retry on the Resume lane — guest slices run
        // there, and Resume outranks Timer, so a Timer-lane retry would
        // starve behind a compute-bound guest until it exits.
        browser::TimerHandle H = Env.loop().postTimer(
            kernel::Lane::Resume,
            [this, Target, Path = std::move(Path)] {
              attemptCheckpoint(Target, Path);
            },
            browser::usToNs(100));
        (void)H; // Destruction does not cancel.
        return;
      }
      printf("checkpoint: %s\n", Blob.error().message().c_str());
      next();
      return;
    }
    // The blob is the process now: kill the live copy at the freeze point
    // (killNow — an already-queued slice running past the checkpoint
    // would make the revived copy replay the overlap).
    size_t Size = Blob->size();
    Procs.killNow(Target, Signal::Kill);
    Procs.fs().writeFile(
        Path, std::move(*Blob),
        [this, Target, Path, Size](std::optional<ApiError> Err) {
          if (Err)
            printf("checkpoint: %s: %s\n", Path.c_str(),
                   Err->message().c_str());
          else
            printf("(%d) frozen to %s (%zu bytes)\n", Target, Path.c_str(),
                   Size);
          next();
        });
  }

  void builtinRestore(const std::string &Path) {
    if (Path.empty()) {
      printf("restore: usage: restore <file>\n");
      next();
      return;
    }
    Procs.fs().readFile(
        Path, [this, Path](ErrorOr<std::vector<uint8_t>> Blob) {
          if (!Blob.ok()) {
            printf("restore: %s\n", Blob.error().message().c_str());
            next();
            return;
          }
          ErrorOr<Pid> P = proc::restoreProcess(Procs, *Blob, Ckpts, Self);
          if (!P.ok()) {
            printf("restore: %s\n", P.error().message().c_str());
            next();
            return;
          }
          proc::Process &Pr = *Procs.find(*P);
          Pr.state().setStdout(
              [](const std::string &T) { fputs(T.c_str(), stdout); });
          Pr.state().setStderr(
              [](const std::string &T) { fputs(T.c_str(), stderr); });
          Jobs.push_back(*P);
          printf("[%zu] %d revived from %s\n", Jobs.size(), *P,
                 Path.c_str());
          next();
        });
  }

  void runPipeline(const std::string &Line, bool Background) {
    std::vector<ProcessTable::SpawnSpec> Stages;
    size_t Start = 0;
    while (Start <= Line.size()) {
      size_t Bar = Line.find('|', Start);
      std::vector<std::string> Argv = tokenize(Line.substr(
          Start, Bar == std::string::npos ? std::string::npos : Bar - Start));
      if (Argv.empty()) {
        printf("sh: empty pipeline stage\n");
        next();
        return;
      }
      ProcessTable::SpawnSpec S;
      S.Name = Argv[0];
      S.Parent = Self;
      S.Prog = Progs.create(Argv);
      if (!S.Prog) {
        printf("sh: %s: command not found\n", Argv[0].c_str());
        next();
        return;
      }
      Stages.push_back(std::move(S));
      if (Bar == std::string::npos)
        break;
      Start = Bar + 1;
    }

    std::vector<Pid> Pids = Procs.spawnPipeline(std::move(Stages));
    // Stream the last stage's stdout (and every stage's stderr) straight
    // to the terminal. Programs start on a later dispatch, so the sinks
    // land before any output does.
    for (Pid P : Pids)
      Procs.find(P)->state().setStderr(
          [](const std::string &T) { fputs(T.c_str(), stderr); });
    Procs.find(Pids.back())->state().setStdout(
        [](const std::string &T) { fputs(T.c_str(), stdout); });

    if (Background) {
      Jobs.push_back(Pids.back());
      printf("[%zu] %d\n", Jobs.size(), Pids.back());
      next();
      return;
    }
    waitForeground(Pids, 0);
  }

  void waitForeground(std::vector<Pid> Pids, size_t Index) {
    if (Index >= Pids.size()) {
      next();
      return;
    }
    Pid Target = Pids[Index];
    Procs.waitpid(Self, Target,
                  [this, Pids = std::move(Pids),
                   Index](ErrorOr<WaitResult> W) mutable {
                    // Only the pipeline's last stage reports its status,
                    // like $? after a shell pipeline.
                    if (W.ok() && Index + 1 == Pids.size())
                      reportExit(*W);
                    waitForeground(std::move(Pids), Index + 1);
                  });
  }

  void reportExit(const WaitResult &W) {
    if (W.Signaled)
      printf("(%d) terminated by %s\n", W.P, signalName(W.Sig));
    else if (W.ExitCode != 0)
      printf("(%d) exit %d\n", W.P, W.ExitCode);
  }

  browser::BrowserEnv &Env;
  ProcessTable &Procs;
  const ProgramRegistry &Progs;
  const CheckpointRegistry &Ckpts;
  std::vector<std::string> Script;
  size_t Cursor = 0;
  Pid Self = 0;
  std::vector<Pid> Jobs;
  std::function<void()> OnDone;
};

} // namespace

int main() {
  browser::BrowserEnv Env(browser::chromeProfile());
  rt::Process Proc;
  auto Root = std::make_unique<fs::InMemoryBackend>(Env);
  Root->seedFile("/etc/motd", bytesOf("welcome to doppio\n"));
  Root->seedFile("/data/fstrace.log",
                 bytesOf("open /data/a.txt\n"
                         "read /data/a.txt 4096\n"
                         "close /data/a.txt\n"
                         "open /data/b.txt\n"
                         "close /data/b.txt\n"));
  Root->seedFile("/data/readme.txt", bytesOf("pipelines compose here\n"));
  Root->seedFile("/classes/Ticker.class", tickerClassBytes());
  fs::FileSystem Fs(Env, Proc, std::move(Root));

  proc::ProcessTable Procs(Env, Fs);
  proc::ProgramRegistry Progs;
  proc::installCorePrograms(Progs);
  // `java [-p profile] Main args...`: a DoppioJVM guest as just another
  // program. -p takes an ExecProfile spec ("quick", "placed,trust=0",
  // ...) through the same parser the env override uses.
  Progs.add("java", [](std::vector<std::string> Args) {
    jvm::JvmProgramSpec Spec;
    if (Args.size() >= 2 && Args[0] == "-p") {
      std::string Err;
      if (!jvm::ExecProfile::parse(Args[1], Spec.Options.Exec, &Err))
        fprintf(stderr, "java: bad profile: %s\n", Err.c_str());
      Args.erase(Args.begin(), Args.begin() + 2);
    }
    Spec.MainClass = Args.empty() ? "Main" : Args[0];
    Spec.Args.assign(Args.empty() ? Args.begin() : Args.begin() + 1,
                     Args.end());
    return jvm::makeJvmProgram(std::move(Spec));
  });
  proc::CheckpointRegistry Ckpts;
  jvm::registerJvmRestore(Ckpts);

  Shell Sh(Env, Procs, Progs, Ckpts,
           {
               "echo hello from a spawned process",
               "cat /etc/motd",
               "cd /missing",          // ENOENT out of the validator.
               "cd /etc/motd",         // ENOTDIR: it's a file.
               "cd /data",             // Validated; children inherit it.
               "cat readme.txt",       // Relative to the new cwd.
               "cat fstrace.log | grep open | wc",
               "cat fstrace.log | grep fsync", // grep's exit 1.
               "upper nonsense-arg | wc &",    // Backgrounded...
               "pause &",                      // ...and a blocked job.
               "kill %2",                      // SIGTERM the blocked job.
               "wait",                         // Reap both, report codes.
               "java Ticker &",                // A JVM guest in the bg.
               "checkpoint %3 /data/ticker.ckpt", // Freeze it mid-run...
               "restore /data/ticker.ckpt",    // ...revive; it finishes.
               "wait",
           });

  bool Finished = false;
  Sh.run([&] { Finished = true; });
  Env.loop().run();

  printf("---\nshell script %s; %llu spawned, %llu reaped, %llu zombies\n",
         Finished ? "completed" : "DID NOT FINISH",
         static_cast<unsigned long long>(Procs.spawned()),
         static_cast<unsigned long long>(Procs.reaped()),
         static_cast<unsigned long long>(Procs.zombies()));
  return Finished && Procs.zombies() == 0 ? 0 : 1;
}
