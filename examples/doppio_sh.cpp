//===- examples/doppio_sh.cpp - A tiny shell over the process table ------===//
//
// The process subsystem (src/doppio/proc/, DESIGN.md §14) demonstrated as
// a scripted Unix shell running inside a simulated browser tab: programs
// spawn out of a ProgramRegistry, pipelines wire bounded in-kernel pipes
// between stages, `cd` is validated against the Doppio file system
// (ENOENT/ENOTDIR instead of blind normalization), `&` backgrounds a job,
// `kill %N` delivers SIGTERM, and `wait` reaps children while reporting
// their exit codes.
//
// Build and run:  ./build/examples/doppio_sh
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/fs.h"
#include "doppio/proc/programs.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::proc;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

/// Runs a fixed script one command at a time: the next command only
/// starts after the previous one finished (or was backgrounded), like a
/// terminal session being typed.
class Shell {
public:
  Shell(ProcessTable &Procs, const ProgramRegistry &Progs,
        std::vector<std::string> Script)
      : Procs(Procs), Progs(Progs), Script(std::move(Script)) {
    // The shell itself is a process (a bare context, no program): its cwd
    // is what `cd` changes, and its children are what `wait` reaps.
    ProcessTable::SpawnSpec S;
    S.Name = "sh";
    Self = Procs.spawn(std::move(S));
  }

  void run(std::function<void()> Done) {
    OnDone = std::move(Done);
    next();
  }

private:
  proc::Process &self() { return *Procs.find(Self); }

  void next() {
    if (Cursor >= Script.size()) {
      if (OnDone)
        OnDone();
      return;
    }
    std::string Line = Script[Cursor++];
    printf("doppio$ %s\n", Line.c_str());
    execLine(std::move(Line));
  }

  void execLine(std::string Line) {
    bool Background = false;
    size_t Amp = Line.find_last_of('&');
    if (Amp != std::string::npos &&
        Line.find_first_not_of(" \t", Amp + 1) == std::string::npos) {
      Background = true;
      Line.erase(Amp);
    }

    std::vector<std::string> First = tokenize(Line);
    if (First.empty()) {
      next();
      return;
    }
    if (First[0] == "cd") {
      builtinCd(First.size() > 1 ? First[1] : "/");
      return;
    }
    if (First[0] == "wait") {
      builtinWait();
      return;
    }
    if (First[0] == "kill") {
      builtinKill(First.size() > 1 ? First[1] : "");
      return;
    }
    runPipeline(Line, Background);
  }

  void builtinCd(const std::string &Path) {
    self().state().chdir(Path, [this](std::optional<ApiError> Err) {
      if (Err)
        printf("cd: %s\n", Err->message().c_str());
      else
        printf("(cwd is now %s)\n", self().state().cwd().c_str());
      next();
    });
  }

  /// Reaps children until ECHILD, reporting how each ended.
  void builtinWait() {
    Procs.waitpid(Self, -1, [this](ErrorOr<WaitResult> W) {
      if (!W.ok()) {
        printf("wait: all children reaped\n");
        next();
        return;
      }
      reportExit(*W);
      builtinWait();
    });
  }

  void builtinKill(const std::string &JobRef) {
    if (JobRef.size() < 2 || JobRef[0] != '%') {
      printf("kill: expected %%N job reference\n");
      next();
      return;
    }
    size_t Job = std::strtoul(JobRef.c_str() + 1, nullptr, 10);
    if (Job == 0 || Job > Jobs.size()) {
      printf("kill: no such job %s\n", JobRef.c_str());
      next();
      return;
    }
    Pid Target = Jobs[Job - 1];
    if (!Procs.kill(Target, Signal::Term))
      printf("kill: (%d) ESRCH\n", Target);
    next();
  }

  void runPipeline(const std::string &Line, bool Background) {
    std::vector<ProcessTable::SpawnSpec> Stages;
    size_t Start = 0;
    while (Start <= Line.size()) {
      size_t Bar = Line.find('|', Start);
      std::vector<std::string> Argv = tokenize(Line.substr(
          Start, Bar == std::string::npos ? std::string::npos : Bar - Start));
      if (Argv.empty()) {
        printf("sh: empty pipeline stage\n");
        next();
        return;
      }
      ProcessTable::SpawnSpec S;
      S.Name = Argv[0];
      S.Parent = Self;
      S.Prog = Progs.create(Argv);
      if (!S.Prog) {
        printf("sh: %s: command not found\n", Argv[0].c_str());
        next();
        return;
      }
      Stages.push_back(std::move(S));
      if (Bar == std::string::npos)
        break;
      Start = Bar + 1;
    }

    std::vector<Pid> Pids = Procs.spawnPipeline(std::move(Stages));
    // Stream the last stage's stdout (and every stage's stderr) straight
    // to the terminal. Programs start on a later dispatch, so the sinks
    // land before any output does.
    for (Pid P : Pids)
      Procs.find(P)->state().setStderr(
          [](const std::string &T) { fputs(T.c_str(), stderr); });
    Procs.find(Pids.back())->state().setStdout(
        [](const std::string &T) { fputs(T.c_str(), stdout); });

    if (Background) {
      Jobs.push_back(Pids.back());
      printf("[%zu] %d\n", Jobs.size(), Pids.back());
      next();
      return;
    }
    waitForeground(Pids, 0);
  }

  void waitForeground(std::vector<Pid> Pids, size_t Index) {
    if (Index >= Pids.size()) {
      next();
      return;
    }
    Pid Target = Pids[Index];
    Procs.waitpid(Self, Target,
                  [this, Pids = std::move(Pids),
                   Index](ErrorOr<WaitResult> W) mutable {
                    // Only the pipeline's last stage reports its status,
                    // like $? after a shell pipeline.
                    if (W.ok() && Index + 1 == Pids.size())
                      reportExit(*W);
                    waitForeground(std::move(Pids), Index + 1);
                  });
  }

  void reportExit(const WaitResult &W) {
    if (W.Signaled)
      printf("(%d) terminated by %s\n", W.P, signalName(W.Sig));
    else if (W.ExitCode != 0)
      printf("(%d) exit %d\n", W.P, W.ExitCode);
  }

  ProcessTable &Procs;
  const ProgramRegistry &Progs;
  std::vector<std::string> Script;
  size_t Cursor = 0;
  Pid Self = 0;
  std::vector<Pid> Jobs;
  std::function<void()> OnDone;
};

} // namespace

int main() {
  browser::BrowserEnv Env(browser::chromeProfile());
  rt::Process Proc;
  auto Root = std::make_unique<fs::InMemoryBackend>(Env);
  Root->seedFile("/etc/motd", bytesOf("welcome to doppio\n"));
  Root->seedFile("/data/fstrace.log",
                 bytesOf("open /data/a.txt\n"
                         "read /data/a.txt 4096\n"
                         "close /data/a.txt\n"
                         "open /data/b.txt\n"
                         "close /data/b.txt\n"));
  Root->seedFile("/data/readme.txt", bytesOf("pipelines compose here\n"));
  fs::FileSystem Fs(Env, Proc, std::move(Root));

  proc::ProcessTable Procs(Env, Fs);
  proc::ProgramRegistry Progs;
  proc::installCorePrograms(Progs);

  Shell Sh(Procs, Progs,
           {
               "echo hello from a spawned process",
               "cat /etc/motd",
               "cd /missing",          // ENOENT out of the validator.
               "cd /etc/motd",         // ENOTDIR: it's a file.
               "cd /data",             // Validated; children inherit it.
               "cat readme.txt",       // Relative to the new cwd.
               "cat fstrace.log | grep open | wc",
               "cat fstrace.log | grep fsync", // grep's exit 1.
               "upper nonsense-arg | wc &",    // Backgrounded...
               "pause &",                      // ...and a blocked job.
               "kill %2",                      // SIGTERM the blocked job.
               "wait",                         // Reap both, report codes.
           });

  bool Finished = false;
  Sh.run([&] { Finished = true; });
  Env.loop().run();

  printf("---\nshell script %s; %llu spawned, %llu reaped, %llu zombies\n",
         Finished ? "completed" : "DID NOT FINISH",
         static_cast<unsigned long long>(Procs.spawned()),
         static_cast<unsigned long long>(Procs.reaped()),
         static_cast<unsigned long long>(Procs.zombies()));
  return Finished && Procs.zombies() == 0 ? 0 : 1;
}
