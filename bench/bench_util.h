//===- bench/bench_util.h - Shared evaluation harness -------------*- C++ -*-==//
//
// Deployment and measurement helpers shared by the per-figure benchmark
// binaries. Every harness reports two dimensions (DESIGN.md):
//
//  - virtual browser time from the deterministic clock (drives the
//    per-browser series, exactly reproducible), and
//  - real host time of the C++ interpreter (via google-benchmark), which
//    gives the honest DoppioJS-vs-native-interpreter factor on this
//    machine.
//
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BENCH_BENCH_UTIL_H
#define DOPPIO_BENCH_BENCH_UTIL_H

#include "doppio/backends/in_memory.h"
#include "doppio/backends/mountable.h"
#include "doppio/backends/xhr_fs.h"
#include "jvm/jvm.h"
#include "workloads/workloads.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace doppio {
namespace bench {

/// A complete browser + Doppio-fs + DoppioJVM deployment for one run.
struct Deployment {
  Deployment(const workloads::Workload &W, jvm::ExecutionMode Mode,
             const browser::Profile &P,
             jvm::JvmOptions Options = jvm::JvmOptions())
      : Env(P) {
    workloads::publish(W, Env.server());
    auto Root = std::make_unique<rt::fs::InMemoryBackend>(Env);
    auto Mounted =
        std::make_unique<rt::fs::MountableFileSystem>(std::move(Root));
    Mounted->mount("/classes",
                   std::make_unique<rt::fs::XhrBackend>(Env, "/classes"));
    Mounted->mount("/srv",
                   std::make_unique<rt::fs::XhrBackend>(Env, "/srv"));
    Fs = std::make_unique<rt::fs::FileSystem>(Env, Proc,
                                              std::move(Mounted));
    Options.Mode = Mode;
    Vm = std::make_unique<jvm::Jvm>(Env, *Fs, Proc, Options);
  }

  browser::BrowserEnv Env;
  rt::Process Proc;
  std::unique_ptr<rt::fs::FileSystem> Fs;
  std::unique_ptr<jvm::Jvm> Vm;
};

/// Everything the figure harnesses report about one run.
struct RunMetrics {
  int Exit = -1;
  uint64_t VirtualWallNs = 0;
  uint64_t SuspendedNs = 0;
  uint64_t Resumptions = 0;
  uint64_t Ops = 0;
  uint64_t SuspendYields = 0;
  double RealSeconds = 0;
  std::string Output;
  uint64_t FsOperations = 0;
  uint64_t FsBytes = 0;
  // Suspend-check placement accounting (DESIGN.md §17).
  uint64_t SuspendChecksExecuted = 0;
  uint64_t SuspendChecksElided = 0;
  uint64_t MaxOpsBetweenChecks = 0;
  uint64_t ProvenBoundMax = 0;
  // Quickening and inline-cache accounting (DESIGN.md §18).
  uint64_t QuickenedSites = 0;
  uint64_t IcHits = 0;
  uint64_t IcMisses = 0;

  uint64_t cpuNs() const { return VirtualWallNs - SuspendedNs; }
};

inline RunMetrics runJvmWorkload(const workloads::Workload &W,
                                 jvm::ExecutionMode Mode,
                                 const browser::Profile &P,
                                 jvm::JvmOptions Options = jvm::JvmOptions()) {
  Deployment D(W, Mode, P, Options);
  auto Start = std::chrono::steady_clock::now();
  RunMetrics M;
  M.Exit = D.Vm->runMainToCompletion(W.MainClass, W.Args);
  M.RealSeconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  M.VirtualWallNs = D.Env.clock().nowNs();
  M.SuspendedNs = D.Vm->suspender().totalSuspendedNs();
  M.Resumptions = D.Vm->suspender().resumptionCount();
  M.Ops = D.Vm->stats().OpsExecuted;
  M.SuspendYields = D.Vm->stats().SuspendYields;
  M.Output = D.Proc.capturedStdout();
  M.FsOperations = D.Fs->stats().Operations;
  M.FsBytes = D.Fs->stats().BytesRead + D.Fs->stats().BytesWritten;
  M.SuspendChecksExecuted = D.Vm->suspendChecksExecuted();
  M.SuspendChecksElided = D.Vm->suspendChecksElided();
  M.MaxOpsBetweenChecks = D.Vm->stats().MaxOpsBetweenChecks;
  M.ProvenBoundMax = D.Vm->loader().provenBoundMax();
  M.QuickenedSites = D.Vm->stats().QuickenedSites;
  M.IcHits = D.Vm->icHits();
  M.IcMisses = D.Vm->icMisses();
  return M;
}

/// Nominal HotSpot-interpreter time for the same work (DESIGN.md's
/// calibrated baseline): bytecodes executed by the native-mode run times
/// the per-op cost.
inline uint64_t nativeNominalNs(const RunMetrics &NativeRun,
                                const jvm::JvmOptions &Options = {}) {
  // Interpreter work plus native file system work: the paper's baseline is
  // HotSpot on a real OS (javap/javac do real I/O there too). Native fs
  // cost model matches fstrace.cpp: ~25 us per call + page-cache copies.
  return NativeRun.Ops * Options.NativeOpCostNs +
         NativeRun.FsOperations * 25000 + NativeRun.FsBytes * 4 / 10;
}

inline double geomean(const std::vector<double> &Xs) {
  double LogSum = 0;
  for (double X : Xs)
    LogSum += std::log(X);
  return Xs.empty() ? 0 : std::exp(LogSum / static_cast<double>(Xs.size()));
}

/// Prints a figure-style table row of slowdown factors.
inline void printRow(const char *Label, const std::vector<double> &Cells) {
  printf("%-14s", Label);
  for (double C : Cells)
    printf(" %9.1fx", C);
  printf("\n");
}

inline void printBrowserHeader(const char *FirstColumn) {
  printf("%-14s", FirstColumn);
  for (const browser::Profile &P : browser::allProfiles())
    printf(" %10s", P.Name.c_str());
  printf("\n");
}

/// Machine-readable result emission: every harness writes a
/// `BENCH_<name>.json` next to its table so the repo accumulates a perf
/// trajectory that scripts can diff across commits. The file holds the
/// deterministic virtual-clock series (one row per browser/configuration)
/// plus the host-time factor of generating them on this machine.
///
///   BenchJson J("fig7_server");
///   J.row("chrome").metric("req_per_s", 144200).metric("p99_us", 727.1);
///   J.hostMetric("slowdown_factor", 38.2);   // optional
///   J.write();                               // -> BENCH_fig7_server.json
class BenchJson {
public:
  explicit BenchJson(std::string Name)
      : Name(std::move(Name)), Started(std::chrono::steady_clock::now()) {}

  class Row {
  public:
    explicit Row(std::string Label) : Label(std::move(Label)) {}
    Row &metric(const std::string &Key, double Value) {
      Metrics.emplace_back(Key, Value);
      return *this;
    }

  private:
    friend class BenchJson;
    std::string Label;
    std::vector<std::pair<std::string, double>> Metrics;
  };

  /// Appends (or retrieves) the virtual-clock series row for \p Label —
  /// typically a browser profile name.
  Row &row(const std::string &Label) {
    for (Row &R : Rows)
      if (R.Label == Label)
        return R;
    Rows.emplace_back(Label);
    return Rows.back();
  }

  /// Adds a host-time metric (real-machine measurement, not virtual).
  void hostMetric(const std::string &Key, double Value) {
    HostMetrics.emplace_back(Key, Value);
  }

  /// Writes BENCH_<name>.json into the working directory. Returns false
  /// (and warns) on I/O failure; benches keep running either way.
  bool write() {
    double HostSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - Started)
                             .count();
    std::string Path = "BENCH_" + Name + ".json";
    FILE *F = fopen(Path.c_str(), "w");
    if (!F) {
      fprintf(stderr, "bench: cannot write %s\n", Path.c_str());
      return false;
    }
    fprintf(F, "{\n  \"bench\": \"%s\",\n", Name.c_str());
    fprintf(F, "  \"schema\": \"doppio-bench-v1\",\n");
    fprintf(F, "  \"clock\": \"virtual\",\n");
    fprintf(F, "  \"series\": [\n");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &R = Rows[I];
      fprintf(F, "    {\"label\": \"%s\"", R.Label.c_str());
      for (const auto &[K, V] : R.Metrics)
        fprintf(F, ", \"%s\": %s", K.c_str(), num(V).c_str());
      fprintf(F, "}%s\n", I + 1 < Rows.size() ? "," : "");
    }
    fprintf(F, "  ],\n");
    fprintf(F, "  \"host\": {\"table_seconds\": %s", num(HostSeconds).c_str());
    for (const auto &[K, V] : HostMetrics)
      fprintf(F, ", \"%s\": %s", K.c_str(), num(V).c_str());
    fprintf(F, "}\n}\n");
    fclose(F);
    printf("[wrote %s]\n", Path.c_str());
    return true;
  }

private:
  /// JSON has no NaN/Inf; clamp them to null.
  static std::string num(double V) {
    if (!std::isfinite(V))
      return "null";
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%.6g", V);
    return Buf;
  }

  std::string Name;
  std::chrono::steady_clock::time_point Started;
  std::vector<Row> Rows;
  std::vector<std::pair<std::string, double>> HostMetrics;
};

} // namespace bench
} // namespace doppio

#endif // DOPPIO_BENCH_BENCH_UTIL_H
