//===- bench/bench_util.h - Shared evaluation harness -------------*- C++ -*-==//
//
// Deployment and measurement helpers shared by the per-figure benchmark
// binaries. Every harness reports two dimensions (DESIGN.md):
//
//  - virtual browser time from the deterministic clock (drives the
//    per-browser series, exactly reproducible), and
//  - real host time of the C++ interpreter (via google-benchmark), which
//    gives the honest DoppioJS-vs-native-interpreter factor on this
//    machine.
//
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BENCH_BENCH_UTIL_H
#define DOPPIO_BENCH_BENCH_UTIL_H

#include "doppio/backends/in_memory.h"
#include "doppio/backends/mountable.h"
#include "doppio/backends/xhr_fs.h"
#include "jvm/jvm.h"
#include "workloads/workloads.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace doppio {
namespace bench {

/// A complete browser + Doppio-fs + DoppioJVM deployment for one run.
struct Deployment {
  Deployment(const workloads::Workload &W, jvm::ExecutionMode Mode,
             const browser::Profile &P,
             jvm::JvmOptions Options = jvm::JvmOptions())
      : Env(P) {
    workloads::publish(W, Env.server());
    auto Root = std::make_unique<rt::fs::InMemoryBackend>(Env);
    auto Mounted =
        std::make_unique<rt::fs::MountableFileSystem>(std::move(Root));
    Mounted->mount("/classes",
                   std::make_unique<rt::fs::XhrBackend>(Env, "/classes"));
    Mounted->mount("/srv",
                   std::make_unique<rt::fs::XhrBackend>(Env, "/srv"));
    Fs = std::make_unique<rt::fs::FileSystem>(Env, Proc,
                                              std::move(Mounted));
    Options.Mode = Mode;
    Vm = std::make_unique<jvm::Jvm>(Env, *Fs, Proc, Options);
  }

  browser::BrowserEnv Env;
  rt::Process Proc;
  std::unique_ptr<rt::fs::FileSystem> Fs;
  std::unique_ptr<jvm::Jvm> Vm;
};

/// Everything the figure harnesses report about one run.
struct RunMetrics {
  int Exit = -1;
  uint64_t VirtualWallNs = 0;
  uint64_t SuspendedNs = 0;
  uint64_t Resumptions = 0;
  uint64_t Ops = 0;
  uint64_t SuspendYields = 0;
  double RealSeconds = 0;
  std::string Output;
  uint64_t FsOperations = 0;
  uint64_t FsBytes = 0;

  uint64_t cpuNs() const { return VirtualWallNs - SuspendedNs; }
};

inline RunMetrics runJvmWorkload(const workloads::Workload &W,
                                 jvm::ExecutionMode Mode,
                                 const browser::Profile &P,
                                 jvm::JvmOptions Options = jvm::JvmOptions()) {
  Deployment D(W, Mode, P, Options);
  auto Start = std::chrono::steady_clock::now();
  RunMetrics M;
  M.Exit = D.Vm->runMainToCompletion(W.MainClass, W.Args);
  M.RealSeconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  M.VirtualWallNs = D.Env.clock().nowNs();
  M.SuspendedNs = D.Vm->suspender().totalSuspendedNs();
  M.Resumptions = D.Vm->suspender().resumptionCount();
  M.Ops = D.Vm->stats().OpsExecuted;
  M.SuspendYields = D.Vm->stats().SuspendYields;
  M.Output = D.Proc.capturedStdout();
  M.FsOperations = D.Fs->stats().Operations;
  M.FsBytes = D.Fs->stats().BytesRead + D.Fs->stats().BytesWritten;
  return M;
}

/// Nominal HotSpot-interpreter time for the same work (DESIGN.md's
/// calibrated baseline): bytecodes executed by the native-mode run times
/// the per-op cost.
inline uint64_t nativeNominalNs(const RunMetrics &NativeRun,
                                const jvm::JvmOptions &Options = {}) {
  // Interpreter work plus native file system work: the paper's baseline is
  // HotSpot on a real OS (javap/javac do real I/O there too). Native fs
  // cost model matches fstrace.cpp: ~25 us per call + page-cache copies.
  return NativeRun.Ops * Options.NativeOpCostNs +
         NativeRun.FsOperations * 25000 + NativeRun.FsBytes * 4 / 10;
}

inline double geomean(const std::vector<double> &Xs) {
  double LogSum = 0;
  for (double X : Xs)
    LogSum += std::log(X);
  return Xs.empty() ? 0 : std::exp(LogSum / static_cast<double>(Xs.size()));
}

/// Prints a figure-style table row of slowdown factors.
inline void printRow(const char *Label, const std::vector<double> &Cells) {
  printf("%-14s", Label);
  for (double C : Cells)
    printf(" %9.1fx", C);
  printf("\n");
}

inline void printBrowserHeader(const char *FirstColumn) {
  printf("%-14s", FirstColumn);
  for (const browser::Profile &P : browser::allProfiles())
    printf(" %10s", P.Name.c_str());
  printf("\n");
}

} // namespace bench
} // namespace doppio

#endif // DOPPIO_BENCH_BENCH_UTIL_H
