//===- bench/fig7_cluster.cpp - Figure 7b: sharded doppiod scaling --------===//
//
// Extension beyond the paper: §5.3 measures one runtime in one tab. The
// cluster subsystem (src/doppio/cluster/) shards doppiod across tabs the
// way a browser fans work out over SharedWorker-connected tabs: a
// consistent-hash balancer tab in front, N full doppiod shard tabs behind
// it, all joined by the cross-tab fabric. This harness measures how
// aggregate throughput scales at 1/2/4/8 shards per browser profile, on
// the deterministic lockstep driver, plus:
//
//  - a drain-under-load scenario at 4 shards per profile (drain_clean=1
//    means zero lost requests, shard off the ring, zero pending kernel
//    work in the drained tab), and
//  - one real-parallelism row (chrome, 4 shards) on the ThreadedDriver,
//    reported as host-time throughput.
//
// Acceptance (exit 1 on failure): chrome aggregate req/s at 4 shards is
// >= 3x the 1-shard figure, and every profile's drain scenario is clean.
//
//===----------------------------------------------------------------------===//

#include "doppio/cluster/cluster.h"

#include "bench_util.h"
#include "browser/profile.h"
#include "doppio/server/client.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::cluster;
using doppio::rt::server::FrameClient;

namespace {

constexpr size_t NumClients = 128;
constexpr size_t RequestsPerClient = 16;
constexpr uint64_t SpinUsPerRequest = 150;

/// A fleet of pipelined front-door clients, all living in the balancer
/// tab. Each connects, issues its requests back-to-back, and closes on
/// the last response.
struct Fleet {
  explicit Fleet(Cluster &Cl) : Cl(Cl) {}

  void start(size_t Clients, size_t Requests,
             std::function<void()> AllDone = nullptr) {
    Expected += Clients * Requests;
    Done = std::move(AllDone);
    for (size_t I = 0; I < Clients; ++I) {
      auto C = std::make_unique<FrameClient>(Cl.balancer().env().net());
      FrameClient *P = C.get();
      std::string Body = std::to_string(SpinUsPerRequest) + " /srv/f" +
                         std::to_string(I % 32) + ".bin";
      P->connect(Cl.balancer().port(), [this, P, Requests, Body](bool Up) {
        if (!Up) {
          ++ConnFailures;
          noteDone(Requests);
          return;
        }
        for (size_t R = 0; R < Requests; ++R)
          P->request("work",
                     std::vector<uint8_t>(Body.begin(), Body.end()),
                     [this, P, R, Requests](rt::server::frame::Response Re) {
                       Re.S == rt::server::frame::Status::Ok ? ++Ok : ++Err;
                       LastResponseNs = Cl.balancer().env().clock().nowNs();
                       if (R + 1 == Requests)
                         P->close();
                       noteDone(1);
                     });
      });
      Pool.push_back(std::move(C));
    }
  }

  void noteDone(size_t N) {
    Completed += N;
    if (Completed == Expected && Done)
      Done();
  }

  Cluster &Cl;
  std::vector<std::unique_ptr<FrameClient>> Pool;
  std::function<void()> Done;
  uint64_t Expected = 0, Completed = 0;
  uint64_t Ok = 0, Err = 0, ConnFailures = 0;
  uint64_t LastResponseNs = 0;
};

double percentileUs(std::vector<uint64_t> Xs, double P) {
  if (Xs.empty())
    return 0;
  std::sort(Xs.begin(), Xs.end());
  size_t I = std::min(Xs.size() - 1,
                      static_cast<size_t>(P * static_cast<double>(Xs.size())));
  return static_cast<double>(Xs[I]) / 1e3;
}

struct ScaleResult {
  double ReqPerS = 0;
  double RouteP50Us = 0, RouteP99Us = 0;
  double RttP50Us = 0, RttP99Us = 0;
  uint64_t Ok = 0, Err = 0;
  uint64_t Refused = 0;
  uint64_t ServedMaxShard = 0, ServedTotal = 0;
  uint64_t Snapshots = 0;
  bool WorkersOk = true;
  uint64_t Zombies = 0;
  bool Quiesced = false;
};

/// One scaling row: N shards, full client load, run to quiescence on the
/// lockstep driver, then pull every shard's snapshot over the control
/// plane so the aggregation path is exercised per row.
ScaleResult runScale(const browser::Profile &P, size_t Shards) {
  Cluster::Config Cfg;
  Cfg.Shards = Shards;
  Cluster Cl(P, Cfg);
  LockstepDriver Drv(Cl.fabric());

  Fleet F(Cl);
  F.start(NumClients, RequestsPerClient);
  auto Rep = Drv.run(10000000);

  ScaleResult Out;
  Out.Quiesced = Rep.Rounds < 10000000;
  Out.Ok = F.Ok;
  Out.Err = F.Err;
  uint64_t ElapsedNs = F.LastResponseNs;
  Out.ReqPerS = ElapsedNs
                    ? static_cast<double>(F.Ok) * 1e9 /
                          static_cast<double>(ElapsedNs)
                    : 0;

  Balancer::Stats St = Cl.balancer().stats();
  Out.Refused = St.ConnsRefused + St.RefusedSaturated;
  Out.RouteP50Us = percentileUs(St.RouteNs, 0.50);
  Out.RouteP99Us = percentileUs(St.RouteNs, 0.99);
  Out.RttP50Us = percentileUs(St.UpstreamRttNs, 0.50);
  Out.RttP99Us = percentileUs(St.UpstreamRttNs, 0.99);

  for (uint32_t S = 0; S < Shards; ++S) {
    rt::server::ServerStats SS = Cl.shard(S)->server().stats();
    Out.ServedTotal += SS.RequestsServed;
    Out.ServedMaxShard = std::max(Out.ServedMaxShard, SS.RequestsServed);
    Out.WorkersOk = Out.WorkersOk && Cl.shard(S)->workersDone() ==
                                         Cl.shard(S)->config().WorkerPipelines;
    Out.Zombies += Cl.shard(S)->procs().zombies();
    Cl.shard(S)->pushStats(Cl.balancer().tab());
  }
  Drv.run(10000000);
  Out.Snapshots = Cl.balancer().snapshots().size();
  return Out;
}

struct DrainResult {
  bool Clean = false;
  uint64_t Ok = 0, Err = 0, Rerouted = 0;
  bool PendingWork = true;
};

/// Drain-under-load at 4 shards: at 3ms virtual (mid-workload) the
/// busiest shard drains; clean means every request still came back Ok,
/// the drain finished with a final snapshot, and the drained tab holds
/// zero pending kernel work.
DrainResult runDrain(const browser::Profile &P) {
  Cluster::Config Cfg;
  Cfg.Shards = 4;
  Cluster Cl(P, Cfg);
  LockstepDriver Drv(Cl.fabric());

  Fleet F(Cl);
  F.start(NumClients, RequestsPerClient);

  uint32_t Victim = 0;
  bool DrainDone = false;
  browser::TimerHandle T = Cl.balancer().env().loop().postTimer(
      kernel::Lane::Timer,
      [&] {
        uint64_t Best = 0;
        for (uint32_t S = 0; S < 4; ++S) {
          uint64_t A = Cl.shard(S)->server().stats().Active;
          if (A >= Best) {
            Best = A;
            Victim = S;
          }
        }
        Cl.drainShard(Victim, [&](const ShardSnapshot &) { DrainDone = true; });
      },
      browser::msToNs(3));

  auto Rep = Drv.run(10000000);

  DrainResult Out;
  Out.Ok = F.Ok;
  Out.Err = F.Err;
  Out.Rerouted = Cl.balancer().stats().Rerouted;
  Out.PendingWork = Cl.shardPendingWorkNs(Victim).has_value();
  Out.Clean = Rep.Rounds < 10000000 && DrainDone &&
              F.Ok == NumClients * RequestsPerClient && F.Err == 0 &&
              F.ConnFailures == 0 && Cl.shardDrained(Victim) &&
              !Out.PendingWork && Cl.balancer().liveShards() == 3 &&
              Cl.balancer().stats().ErrorsSynthesized == 0;
  return Out;
}

/// Real-parallelism row: chrome at 4 shards on the ThreadedDriver (one
/// host thread per tab). Virtual timelines are causally consistent but
/// not bit-identical; the interesting number is host throughput.
double runThreaded(double *HostSeconds) {
  Cluster::Config Cfg;
  Cfg.Shards = 4;
  Cluster Cl(browser::chromeProfile(), Cfg);
  ThreadedDriver Drv(Cl.fabric());

  Fleet F(Cl);
  F.start(NumClients, RequestsPerClient, [&] { Drv.requestStop(); });

  auto Start = std::chrono::steady_clock::now();
  Drv.start();
  Drv.join();
  *HostSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  // Undelivered fabric mail (closes, control traffic) finishes on a
  // deterministic lockstep pass.
  LockstepDriver(Cl.fabric()).run(10000000);

  uint64_t ElapsedNs = F.LastResponseNs;
  return ElapsedNs ? static_cast<double>(F.Ok) * 1e9 /
                         static_cast<double>(ElapsedNs)
                   : 0;
}

void printFigure7Cluster() {
  printf("==========================================================\n");
  printf("Figure 7b (extension): sharded doppiod cluster scaling\n");
  printf("%zu clients x %zu pipelined 'work' requests (%llu us spin),\n",
         NumClients, RequestsPerClient,
         static_cast<unsigned long long>(SpinUsPerRequest));
  printf("consistent-hash balancer tab -> N doppiod shard tabs over the\n");
  printf("cross-tab fabric, deterministic lockstep driver\n");
  printf("==========================================================\n");
  printf("%-10s %3s %10s %8s %9s %9s %7s %6s\n", "browser", "sh", "req/s",
         "speedup", "route-p99", "rtt-p99", "refuse", "ok");
  bool AllOk = true;
  double Chrome1 = 0, Chrome4 = 0;
  BenchJson Json("fig7_cluster");
  for (const browser::Profile &P : browser::allProfiles()) {
    double Base = 0;
    for (size_t Shards : {1u, 2u, 4u, 8u}) {
      ScaleResult R = runScale(P, Shards);
      if (Shards == 1)
        Base = R.ReqPerS;
      double Speedup = Base > 0 ? R.ReqPerS / Base : 0;
      if (P.Name == "chrome") {
        if (Shards == 1)
          Chrome1 = R.ReqPerS;
        if (Shards == 4)
          Chrome4 = R.ReqPerS;
      }
      bool Ok = R.Quiesced && R.Ok == NumClients * RequestsPerClient &&
                R.Err == 0 && R.ServedTotal == R.Ok && R.WorkersOk &&
                R.Zombies == 0 && R.Snapshots == Shards;
      AllOk = AllOk && Ok;
      printf("%-10s %3zu %10.0f %7.2fx %9.1f %9.1f %7llu %6s\n",
             P.Name.c_str(), Shards, R.ReqPerS, Speedup, R.RouteP99Us,
             R.RttP99Us, static_cast<unsigned long long>(R.Refused),
             Ok ? "yes" : "FAIL");
      Json.row(P.Name + "/" + std::to_string(Shards) + "sh")
          .metric("shards", static_cast<double>(Shards))
          .metric("req_per_s", R.ReqPerS)
          .metric("speedup_vs_1", Speedup)
          .metric("route_p50_us", R.RouteP50Us)
          .metric("route_p99_us", R.RouteP99Us)
          .metric("rtt_p50_us", R.RttP50Us)
          .metric("rtt_p99_us", R.RttP99Us)
          .metric("refused", static_cast<double>(R.Refused))
          .metric("served_total", static_cast<double>(R.ServedTotal))
          .metric("served_max_shard", static_cast<double>(R.ServedMaxShard))
          .metric("snapshots", static_cast<double>(R.Snapshots))
          .metric("workers_ok", R.WorkersOk ? 1 : 0)
          .metric("zombies", static_cast<double>(R.Zombies))
          .metric("row_ok", Ok ? 1 : 0);
    }
    DrainResult D = runDrain(P);
    AllOk = AllOk && D.Clean;
    printf("%-10s %3s %10s %8s %9s %9s %7llu %6s\n", P.Name.c_str(), "dr4",
           "-", "-", "-", "-", static_cast<unsigned long long>(D.Rerouted),
           D.Clean ? "clean" : "FAIL");
    Json.row(P.Name + "/drain4")
        .metric("drain_clean", D.Clean ? 1 : 0)
        .metric("ok", static_cast<double>(D.Ok))
        .metric("errors", static_cast<double>(D.Err))
        .metric("rerouted", static_cast<double>(D.Rerouted))
        .metric("pending_work_after", D.PendingWork ? 1 : 0);
  }

  double HostSeconds = 0;
  double ThreadedReqPerS = runThreaded(&HostSeconds);
  printf("%-10s %3s %10.0f %8s %9s %9s %7s %6s  (threaded, %.3fs host)\n",
         "chrome", "4t", ThreadedReqPerS, "-", "-", "-", "-", "-",
         HostSeconds);
  Json.hostMetric("threaded_chrome4_req_per_s", ThreadedReqPerS);
  Json.hostMetric("threaded_chrome4_host_seconds", HostSeconds);

  double ChromeSpeedup4 = Chrome1 > 0 ? Chrome4 / Chrome1 : 0;
  Json.hostMetric("chrome_speedup_4sh", ChromeSpeedup4);
  Json.write();
  printf("(req/s on the virtual clock at the balancer front door; speedup\n"
         " is vs the same profile's 1-shard row; route-p99 is accept ->\n"
         " upstream-bound; rtt-p99 is forward -> shard response; dr4 rows\n"
         " drain the busiest of 4 shards mid-load.)\n\n");
  if (ChromeSpeedup4 < 3.0) {
    fprintf(stderr, "fig7_cluster: chrome 4-shard speedup %.2fx < 3x\n",
            ChromeSpeedup4);
    exit(1);
  }
  if (!AllOk) {
    fprintf(stderr, "fig7_cluster: acceptance check failed\n");
    exit(1);
  }
}

void BM_ClusterScale_Chrome4(benchmark::State &State) {
  for (auto _ : State) {
    ScaleResult R = runScale(browser::chromeProfile(), 4);
    State.counters["req_per_s_virtual"] = R.ReqPerS;
    State.counters["served"] = static_cast<double>(R.ServedTotal);
  }
}

} // namespace

BENCHMARK(BM_ClusterScale_Chrome4)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

int main(int argc, char **argv) {
  printFigure7Cluster();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
