//===- bench/table2_storage.cpp - Table 2: storage mechanisms ------------===//
//
// Regenerates Table 2: the persistent storage mechanisms available to web
// pages, probed live across the six simulated browsers: storage format,
// synchrony, maximum size (measured by writing until the quota rejects),
// and compatibility weighted by 2013 desktop market share.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include <benchmark/benchmark.h>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::browser;

namespace {

/// Early-2013 desktop market-share weights (DESIGN.md calibration). The
/// remaining ~11.5% of the market runs browsers outside the six profiles;
/// they are assumed to have cookies but neither localStorage nor
/// IndexedDB (old IE and long-tail browsers dominated that remainder).
double marketShare(const std::string &Name) {
  if (Name == "chrome")
    return 0.27;
  if (Name == "firefox")
    return 0.18;
  if (Name == "safari")
    return 0.085;
  if (Name == "opera")
    return 0.015;
  if (Name == "ie10")
    return 0.045;
  if (Name == "ie8")
    return 0.29; // IE8+IE9-era installs.
  return 0;
}

/// Share of the market outside the modeled profiles.
constexpr double OtherShare = 0.115;

/// Measured capacity of a sync string store: writes 64 KB values until
/// the quota rejects.
uint64_t measureQuota(SyncKeyValueStore &Store) {
  // Chunk well below the quota so the measurement resolves small jars.
  size_t Units = std::max<uint64_t>(Store.quotaBytes() / 8, 64) / 2;
  js::String Chunk(Units, u'x');
  int Key = 0;
  while (Store.setItem("k" + std::to_string(Key), Chunk) ==
         StoreResult::Ok)
    ++Key;
  return Store.usedBytes();
}

void printTable2() {
  printf("==================================================================\n");
  printf("Table 2: persistent storage mechanisms (probed per browser)\n");
  printf("==================================================================\n");
  printf("%-14s %-22s %-5s %-12s %s\n", "mechanism", "format", "sync",
         "measured max", "compatibility");

  double CookieShare = OtherShare, LocalShare = 0, IdbShare = 0;
  double Total = OtherShare;
  for (const Profile &P : allProfiles()) {
    double Share = marketShare(P.Name);
    Total += Share;
    if (P.HasCookies)
      CookieShare += Share;
    if (P.HasLocalStorage)
      LocalShare += Share;
    if (P.HasIndexedDB)
      IdbShare += Share;
  }
  // Cookies predate all six profiles: over 99% compatible (Table 2).
  BrowserEnv Chrome(chromeProfile());
  uint64_t CookieMax = measureQuota(Chrome.cookies());
  uint64_t LocalMax = measureQuota(Chrome.localStorage());
  BenchJson Json("table2_storage");
  Json.row("cookies")
      .metric("max_kb", static_cast<double>(CookieMax) / 1024.0)
      .metric("sync", 1)
      .metric("compat_pct", 100.0 * CookieShare / Total);
  Json.row("localStorage")
      .metric("max_kb", static_cast<double>(LocalMax) / 1024.0)
      .metric("sync", 1)
      .metric("compat_pct", 100.0 * LocalShare / Total);
  Json.row("IndexedDB")
      .metric("sync", 0)
      .metric("compat_pct", 100.0 * IdbShare / Total);
  Json.write();
  printf("%-14s %-22s %-5s %9.0f KB %9.0f%%  (paper: >99%%)\n", "cookies",
         "string key/value", "yes",
         static_cast<double>(CookieMax) / 1024.0,
         100.0 * CookieShare / Total);
  printf("%-14s %-22s %-5s %9.0f KB %9.0f%%  (paper: ~90%%)\n",
         "localStorage", "string key/value", "yes",
         static_cast<double>(LocalMax) / 1024.0,
         100.0 * LocalShare / Total);
  printf("%-14s %-22s %-5s %12s %9.0f%%  (paper: <50%%)\n", "IndexedDB",
         "object database", "no", "user quota",
         100.0 * IdbShare / Total);

  printf("\nper-browser availability:\n%-14s", "");
  for (const Profile &P : allProfiles())
    printf(" %8s", P.Name.c_str());
  printf("\n%-14s", "cookies");
  for (const Profile &P : allProfiles())
    printf(" %8s", P.HasCookies ? "yes" : "-");
  printf("\n%-14s", "localStorage");
  for (const Profile &P : allProfiles())
    printf(" %8s", P.HasLocalStorage ? "yes" : "-");
  printf("\n%-14s", "IndexedDB");
  for (const Profile &P : allProfiles())
    printf(" %8s", P.HasIndexedDB ? "yes" : "-");
  printf("\n\nIndexedDB is asynchronous: a blocking file system cannot be"
         "\nbuilt on it directly — Doppio's suspend-and-resume is what"
         "\nrestores synchronous semantics (§5.1/§4.2).\n\n");
}

void BM_LocalStorageWrite64K(benchmark::State &State) {
  BrowserEnv Env(chromeProfile());
  js::String Chunk(32 * 1024, u'x');
  int Key = 0;
  for (auto _ : State) {
    if (Env.localStorage().setItem("k" + std::to_string(Key++), Chunk) !=
        StoreResult::Ok) {
      Env.localStorage().clear();
      Key = 0;
    }
  }
}

void BM_IndexedDbWrite64K(benchmark::State &State) {
  BrowserEnv Env(chromeProfile());
  std::vector<uint8_t> Chunk(64 * 1024, 7);
  int Key = 0;
  for (auto _ : State) {
    Env.indexedDB()->put("k" + std::to_string(Key++), Chunk,
                         [](bool) {});
    Env.loop().run();
  }
}

} // namespace

BENCHMARK(BM_LocalStorageWrite64K)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IndexedDbWrite64K)->Unit(benchmark::kMicrosecond);

int main(int argc, char **argv) {
  printTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
