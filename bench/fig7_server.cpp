//===- bench/fig7_server.cpp - Figure 7: doppiod server throughput -------===//
//
// Extension beyond the paper: §5.3 stops at client-side sockets (the
// server half of every connection lives in an external websockify
// process), so the paper has no server-throughput figure. With doppiod
// (src/doppio/server/) the runtime hosts real listen/accept sockets, and
// this harness measures them: 100 concurrent clients each issuing 100
// sequential file requests against the Doppio FS-backed file handler, per
// browser profile.
//
// Reported per browser: requests/s on the virtual clock, client-side p50
// and p99 round-trip latency, and the server's own service-time tails.
// After the run the server drains gracefully; the harness asserts that
// every request completed and ServerStats.Active reached zero.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "doppio/obs/registry.h"
#include "doppio/server/server.h"
#include "doppio/server/handlers.h"
#include "workloads/traffic.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::rt;
using namespace doppio::workloads;

namespace {

constexpr size_t NumClients = 100;
constexpr size_t RequestsPerClient = 100;
constexpr size_t NumFiles = 32;

struct Fig7Result {
  TrafficReport Client;
  server::ServerStats Stats;
  bool Drained = false;
  // Registry-sourced observability figures (src/doppio/obs/): end-to-end
  // span accounting and kernel dispatch volume for the same run.
  uint64_t SpansFinished = 0;
  uint64_t SpanQueueDelayNsMax = 0;
  uint64_t KernelEventsRun = 0;
  // Process subsystem (src/doppio/proc/): piped multi-process workloads
  // run alongside the client load, plus one spawn-handler round trip.
  PipelineReport Pipes;
  uint64_t ZombiesAfterDrain = 0;
  bool SpawnRoundTripOk = false;
};

/// One full load test in one browser: seed the FS, serve it, hammer it
/// with NumClients concurrent clients, drain, report.
Fig7Result runServerLoad(const browser::Profile &P) {
  browser::BrowserEnv Env(P);
  Process Proc;
  auto Root = std::make_unique<fs::InMemoryBackend>(Env);
  std::vector<std::vector<uint8_t>> Paths;
  for (size_t I = 0; I < NumFiles; ++I) {
    std::string Path = "/srv/f" + std::to_string(I) + ".bin";
    // 64 B .. ~8 KB, deterministic contents.
    std::vector<uint8_t> Contents(64 + 251 * I,
                                  static_cast<uint8_t>('a' + I % 26));
    bool Seeded = Root->seedFile(Path, std::move(Contents));
    assert(Seeded);
    (void)Seeded;
    Paths.emplace_back(Path.begin(), Path.end());
  }
  fs::FileSystem Fs(Env, Proc, std::move(Root));

  server::Server::Config Cfg;
  Cfg.Port = 7000;
  Cfg.Backlog = 64;
  Cfg.MaxConnections = 128;
  // Generous: the slowest profile (safari) sees ~266ms p99 round trips
  // under this load, and an idle-reap races the next request otherwise.
  Cfg.IdleTimeoutNs = browser::msToNs(2000);
  proc::ProcessTable Procs(Env, Fs);
  proc::ProgramRegistry Progs;
  proc::installCorePrograms(Progs);

  server::Server Srv(Env, Cfg);
  server::installDefaultHandlers(Srv.router(), Fs, &Env.metrics(), &Procs,
                                 &Progs);
  bool Started = Srv.start();
  assert(Started);
  (void)Started;

  TrafficConfig TCfg;
  TCfg.Port = Cfg.Port;
  TCfg.Clients = NumClients;
  TCfg.RequestsPerClient = RequestsPerClient;
  TCfg.Handler = "file";
  TCfg.Bodies = std::move(Paths);
  TrafficGen Gen(Env, TCfg);
  PipelineScenario Pipes(Env, Procs);
  server::FrameClient SpawnClient(Env.net());

  Fig7Result Out;
  // The client load, the piped process workloads, and one spawn-handler
  // round trip all share the run; drain once the three finish.
  auto Outstanding = std::make_shared<int>(3);
  std::function<void()> MaybeDrain = [&Srv, &Out, Outstanding] {
    if (--*Outstanding == 0)
      Srv.shutdown([&Out] { Out.Drained = true; });
  };
  Gen.start(MaybeDrain);
  Pipes.start(MaybeDrain);
  SpawnClient.connect(Cfg.Port, [&](bool Ok) {
    if (!Ok) {
      MaybeDrain();
      return;
    }
    std::string Cmd = "echo fig7";
    SpawnClient.request(
        "spawn", std::vector<uint8_t>(Cmd.begin(), Cmd.end()),
        [&](server::frame::Response R) {
          Out.SpawnRoundTripOk =
              R.S == server::frame::Status::Ok &&
              std::string(R.Body.begin(), R.Body.end()) == "fig7\n";
          SpawnClient.close();
          MaybeDrain();
        });
  });
  Env.loop().run();

  Out.Client = Gen.report();
  Out.Stats = Srv.stats();
  Out.Pipes = Pipes.report();
  Out.ZombiesAfterDrain = Procs.zombies();
  obs::Registry &Reg = Env.metrics();
  Out.SpansFinished = Reg.spans().finished();
  for (const obs::Span &Sp : Reg.spans().recent())
    Out.SpanQueueDelayNsMax =
        std::max(Out.SpanQueueDelayNsMax, Sp.QueueDelayNs);
  Out.KernelEventsRun = Reg.counter("loop.events_run").value();
  return Out;
}

void printFigure7() {
  printf("==========================================================\n");
  printf("Figure 7 (extension): doppiod in-runtime server throughput\n");
  printf("%zu clients x %zu sequential 'file' requests over SimNet,\n",
         NumClients, RequestsPerClient);
  printf("FS-backed file handler, graceful drain at end of load\n");
  printf("(the paper's §5.3 has no server half to measure; cf. Browsix)\n");
  printf("==========================================================\n");
  printf("%-10s %10s %9s %9s %9s %7s %7s\n", "browser", "req/s", "p50us",
         "p99us", "srv-p99", "refuse", "drain");
  bool AllOk = true;
  BenchJson Json("fig7_server");
  for (const browser::Profile &P : browser::allProfiles()) {
    Fig7Result R = runServerLoad(P);
    uint64_t Expected = NumClients * RequestsPerClient;
    bool Ok = R.Drained && R.Stats.Active == 0 &&
              R.Client.Completed + R.Client.Errors +
                      R.Client.ConnectFailures * RequestsPerClient ==
                  Expected &&
              R.Client.Errors == 0 && R.Pipes.AllExitsZero &&
              R.Pipes.OutputsMatch && R.ZombiesAfterDrain == 0 &&
              R.SpawnRoundTripOk;
    AllOk = AllOk && Ok;
    printf("%-10s %10.0f %9.1f %9.1f %9.1f %7llu %7s\n", P.Name.c_str(),
           R.Client.requestsPerSecond(),
           static_cast<double>(R.Client.p50Ns()) / 1e3,
           static_cast<double>(R.Client.p99Ns()) / 1e3,
           static_cast<double>(R.Stats.p99Ns()) / 1e3,
           static_cast<unsigned long long>(R.Stats.Refused),
           Ok ? "clean" : "FAIL");
    Json.row(P.Name)
        .metric("req_per_s", R.Client.requestsPerSecond())
        .metric("p50_us", static_cast<double>(R.Client.p50Ns()) / 1e3)
        .metric("p99_us", static_cast<double>(R.Client.p99Ns()) / 1e3)
        .metric("srv_p99_us", static_cast<double>(R.Stats.p99Ns()) / 1e3)
        .metric("refused", static_cast<double>(R.Stats.Refused))
        .metric("drain_clean", Ok ? 1 : 0)
        .metric("spans_finished", static_cast<double>(R.SpansFinished))
        .metric("span_queue_delay_us_max",
                static_cast<double>(R.SpanQueueDelayNsMax) / 1e3)
        .metric("loop_events_run", static_cast<double>(R.KernelEventsRun))
        .metric("processes_spawned",
                static_cast<double>(R.Pipes.ProcessesSpawned))
        .metric("pipe_bytes", static_cast<double>(R.Pipes.PipeBytes))
        .metric("pipe_writer_suspends",
                static_cast<double>(R.Pipes.PipeWriterSuspends))
        .metric("zombies_after_drain",
                static_cast<double>(R.ZombiesAfterDrain))
        .metric("spawn_roundtrip_ok", R.SpawnRoundTripOk ? 1 : 0);
  }
  Json.write();
  printf("(req/s is virtual time; srv-p99 is server-side service time;\n"
         " refuse counts backlog overflows absorbed by client retry-free\n"
         " accounting; drain=clean means every response was delivered and\n"
         " ServerStats.Active hit zero after graceful shutdown.)\n\n");
  if (!AllOk) {
    fprintf(stderr, "fig7: acceptance check failed\n");
    exit(1);
  }
}

void BM_ServerLoad_Chrome(benchmark::State &State) {
  for (auto _ : State) {
    Fig7Result R = runServerLoad(browser::chromeProfile());
    State.counters["served"] =
        static_cast<double>(R.Stats.RequestsServed);
    State.counters["active_after"] = static_cast<double>(R.Stats.Active);
  }
}

} // namespace

BENCHMARK(BM_ServerLoad_Chrome)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

int main(int argc, char **argv) {
  printFigure7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
