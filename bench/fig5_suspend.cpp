//===- bench/fig5_suspend.cpp - Figure 5: suspension overhead ------------===//
//
// Regenerates Figure 5: time spent suspended (between scheduling a
// resumption callback and it running) as a percentage of total runtime,
// per browser, on the two microbenchmarks. Paper shape: under 2% in
// Chrome/Safari for DeltaBlue and under 1% for pidigits; browsers whose
// only mechanism is the 4 ms-clamped setTimeout (IE8) fare far worse.
//
// Plus the §4.4/§4.1 ablations DESIGN.md calls out:
//  - forcing each resumption mechanism on one browser, and
//  - replacing the adaptive suspend counter with fixed counters.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include <benchmark/benchmark.h>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::jvm;
using namespace doppio::workloads;

namespace {

double suspendedPercent(const RunMetrics &M) {
  return 100.0 * static_cast<double>(M.SuspendedNs) /
         static_cast<double>(M.VirtualWallNs);
}

void printFigure5() {
  printf("==========================================================\n");
  printf("Figure 5: suspension time as %% of total runtime\n");
  printf("(paper: <2%% on Chrome/Safari for DeltaBlue, <1%% pidigits)\n");
  printf("==========================================================\n");
  printBrowserHeader("benchmark");
  struct Micro {
    const char *Label;
    Workload W;
  };
  std::vector<Micro> Micros;
  Micros.push_back({"deltablue", makeDeltaBlue(60, 400)});
  Micros.push_back({"pidigits", makePiDigits(200)});
  BenchJson Json("fig5_suspend");
  for (Micro &M : Micros) {
    printf("%-14s", M.Label);
    for (const browser::Profile &P : browser::allProfiles()) {
      RunMetrics Js = runJvmWorkload(M.W, ExecutionMode::DoppioJS, P);
      printf(" %9.2f%%", suspendedPercent(Js));
      Json.row(std::string(M.Label) + "/" + P.Name)
          .metric("suspended_pct", suspendedPercent(Js))
          .metric("resumptions", static_cast<double>(Js.Resumptions))
          .metric("host_seconds", Js.RealSeconds);
    }
    printf("\n");
  }
  Json.write();
  printf("\n");
}

/// §4.4 ablation: the same workload on one browser under each forced
/// resumption mechanism.
void printMechanismAblation() {
  printf("Ablation (§4.4): resumption mechanism, deltablue on ie10\n");
  printf("(ie10 exposes all three mechanisms)\n");
  Workload W = makeDeltaBlue(60, 400);
  for (rt::ResumeMechanism Mech :
       {rt::ResumeMechanism::SetImmediate, rt::ResumeMechanism::SendMessage,
        rt::ResumeMechanism::SetTimeout}) {
    Deployment D(W, ExecutionMode::DoppioJS, browser::ie10Profile());
    D.Vm->suspender().forceMechanism(Mech);
    D.Vm->runMainToCompletion(W.MainClass, W.Args);
    uint64_t Wall = D.Env.clock().nowNs();
    uint64_t Susp = D.Vm->suspender().totalSuspendedNs();
    printf("  %-12s suspended %6.2f%%  (%llu resumptions)\n",
           rt::resumeMechanismName(Mech),
           100.0 * static_cast<double>(Susp) / static_cast<double>(Wall),
           static_cast<unsigned long long>(
               D.Vm->suspender().resumptionCount()));
  }
  printf("\n");
}

/// §4.1 ablation: adaptive counter vs fixed counters.
void printCounterAblation() {
  printf("Ablation (§4.1): adaptive suspend counter vs fixed counters,\n");
  printf("deltablue on chrome (time slice 10 ms)\n");
  Workload W = makeDeltaBlue(60, 400);
  struct Config {
    const char *Label;
    uint64_t Fixed;
  };
  for (Config C : {Config{"adaptive", 0}, Config{"fixed 1k", 1000},
                   Config{"fixed 100k", 100000},
                   Config{"fixed 10M", 10000000}}) {
    Deployment D(W, ExecutionMode::DoppioJS, browser::chromeProfile());
    if (C.Fixed)
      D.Vm->suspender().forceFixedCounter(C.Fixed);
    D.Vm->runMainToCompletion(W.MainClass, W.Args);
    uint64_t Wall = D.Env.clock().nowNs();
    uint64_t Susp = D.Vm->suspender().totalSuspendedNs();
    printf("  %-12s suspended %6.2f%%, max event %6.2f ms "
           "(watchdog limit 5000 ms)\n",
           C.Label,
           100.0 * static_cast<double>(Susp) / static_cast<double>(Wall),
           static_cast<double>(D.Env.loop().stats().MaxEventNs) / 1e6);
  }
  printf("  (too-small counters waste time suspended; too-large ones\n"
         "   stretch events toward the watchdog limit — the adaptive\n"
         "   counter holds the configured slice)\n\n");
}

void BM_SuspendCheckOverhead(benchmark::State &State, bool Segmented) {
  // Real-host cost of the suspend checks themselves: the same workload
  // with segmentation (DoppioJS) vs without (native mode).
  Workload W = makeDeltaBlue(60, 400);
  ExecutionMode Mode =
      Segmented ? ExecutionMode::DoppioJS : ExecutionMode::NativeHotspot;
  for (auto _ : State)
    runJvmWorkload(W, Mode, browser::chromeProfile());
}

} // namespace

BENCHMARK_CAPTURE(BM_SuspendCheckOverhead, segmented, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_SuspendCheckOverhead, unsegmented, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

int main(int argc, char **argv) {
  printFigure5();
  printMechanismAblation();
  printCounterAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
