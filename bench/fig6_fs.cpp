//===- bench/fig6_fs.cpp - Figure 6: file system performance -------------===//
//
// Regenerates Figure 6: the Doppio file system replaying the recorded
// javac trace (3185 ops, 1560 files, 10.5 MB read, 97 KB written) per
// browser, relative to Node JS on the native OS file system.
//
// Paper shape: IE10 is nearly native (~1.18x) — its setImmediate makes
// each blocking call's resumption nearly free — while Chrome is ~2.5x
// (sendMessage resumption per call); Safari suffers the typed-array leak.
//
// Extension beyond the paper: the same trace against each storage
// backend, showing what localStorage serialization and cloud latency
// cost — and the storage hierarchy (DESIGN.md §19) recovering it. The
// cached rows put the write-back block cache + journal in front of the
// slow stores; the warm cached-cloud pass is the acceptance gate: it must
// land within 2x of the inmemory backend on Chrome (exit code 1
// otherwise), versus the WAN-round-trip-per-operation cliff of raw cloud
// storage.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "doppio/backends/kv_backend.h"
#include "doppio/backends/kv_store.h"
#include "doppio/storage/cached_store.h"
#include "workloads/fstrace.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::rt;
using namespace doppio::workloads;

namespace {

/// Builds the root backend named by \p Backend ("inmemory", "indexeddb",
/// "cloud", "cached-cloud", "journal-idb"). Returns null when the browser
/// lacks the mechanism (no IndexedDB).
std::unique_ptr<fs::FileSystemBackend> makeRoot(browser::BrowserEnv &Env,
                                                const std::string &Backend) {
  if (Backend == "inmemory")
    return std::make_unique<fs::InMemoryBackend>(Env);

  std::unique_ptr<fs::AsyncKvStore> Store;
  if (Backend == "indexeddb" || Backend == "journal-idb") {
    if (!Env.indexedDB())
      return nullptr;
    Env.indexedDB()->setQuotaBytes(256u << 20);
    Store = std::make_unique<fs::IndexedDbKv>(Env);
  } else {
    Store = std::make_unique<fs::CloudKv>(Env);
  }
  if (Backend == "cached-cloud" || Backend == "journal-idb")
    Store = std::make_unique<storage::CachedKvStore>(Env, std::move(Store));

  auto Kv = std::make_unique<fs::KeyValueBackend>(Env, std::move(Store));
  Kv->initialize([](std::optional<ApiError>) {});
  return Kv;
}

/// Replays the trace \p Passes times over one backend instance in one
/// browser; returns per-pass stats (pass 0 is cold, later passes run with
/// the cache warm). An empty vector means the backend is unavailable.
std::vector<ReplayStats> replayOn(const browser::Profile &P,
                                  const std::string &Backend,
                                  unsigned Passes) {
  browser::BrowserEnv Env(P);
  Process Proc;
  std::unique_ptr<fs::FileSystemBackend> Root = makeRoot(Env, Backend);
  if (!Root)
    return {};
  fs::FileSystem Fs(Env, Proc, std::move(Root));
  Suspender Susp(Env);
  FsTrace Trace = makeJavacTrace();
  std::vector<ReplayStats> Out;
  for (unsigned I = 0; I != Passes; ++I) {
    ReplayStats S;
    replayTrace(Trace, Fs, Env, Susp, [&S](ReplayStats R) { S = R; });
    Out.push_back(S);
  }
  return Out;
}

/// Prints one table row and records it in \p Json; fills \p Factors with
/// the per-profile slowdown factor (-1 for n/a).
void emitRow(BenchJson &Json, const std::string &Label, uint64_t BaselineNs,
             std::function<ReplayStats(const browser::Profile &)> Run,
             std::map<std::string, double> &Factors) {
  printf("%-17s", Label.c_str());
  BenchJson::Row &R = Json.row(Label);
  for (const browser::Profile &P : browser::allProfiles()) {
    ReplayStats S = Run(P);
    if (S.Operations == 0) {
      printf(" %10s", "n/a");
      R.metric(P.Name, -1);
      Factors[P.Name] = -1;
      continue;
    }
    double Factor =
        static_cast<double>(S.VirtualNs) / static_cast<double>(BaselineNs);
    printf(" %9.2fx", Factor);
    R.metric(P.Name, Factor);
    Factors[P.Name] = Factor;
  }
  printf("\n");
}

/// Returns true iff the cached-storage acceptance gate holds.
bool printFigure6() {
  FsTrace Trace = makeJavacTrace();
  printf("==========================================================\n");
  printf("Figure 6: Doppio FS replaying the javac trace, relative to\n");
  printf("Node JS on the native file system\n");
  printf("trace: %zu ops, %zu unique files, %.1f MB read, %llu KB "
         "written\n",
         Trace.Ops.size(), Trace.uniqueFiles(),
         static_cast<double>(Trace.ExpectedReadBytes) / (1024.0 * 1024.0),
         static_cast<unsigned long long>(Trace.ExpectedWriteBytes / 1024));
  printf("(paper: 3185 ops, 1560 files, 10.5 MB read, 97 KB written;\n");
  printf(" IE10 ~1.18x, Chrome ~2.5x)\n");
  printf("==========================================================\n");
  uint64_t BaselineNs = nativeBaselineNs(Trace);
  printf("native baseline (Node on OS fs, modeled): %.1f ms\n\n",
         static_cast<double>(BaselineNs) / 1e6);
  printf("%-17s", "backend");
  for (const browser::Profile &P : browser::allProfiles())
    printf(" %10s", P.Name.c_str());
  printf("\n");
  BenchJson Json("fig6_fs");
  std::map<std::string, std::map<std::string, double>> Factors;

  for (const char *Backend : {"inmemory", "indexeddb", "cloud"})
    emitRow(Json, Backend, BaselineNs,
            [&](const browser::Profile &P) {
              auto V = replayOn(P, Backend, 1);
              return V.empty() ? ReplayStats() : V[0];
            },
            Factors[Backend]);

  // Cached rows: one run per profile per backend, two passes over the
  // same cache. The untimed seeding writes the 10.5 MB working set
  // through the write-back cache, so pass 0 reads from memory wherever
  // the per-profile capacity holds the set (chrome: 64 MB) and thrashes
  // over the slow store where it does not (safari: 1 MB); pass 1 is the
  // steady warm state the 2x acceptance gate measures.
  for (const char *Backend : {"cached-cloud", "journal-idb"}) {
    std::map<std::string, std::vector<ReplayStats>> Runs;
    for (const browser::Profile &P : browser::allProfiles())
      Runs[P.Name] = replayOn(P, Backend, 2);
    emitRow(Json, Backend, BaselineNs,
            [&](const browser::Profile &P) {
              auto &V = Runs[P.Name];
              return V.empty() ? ReplayStats() : V[0];
            },
            Factors[Backend]);
    std::string WarmLabel = std::string(Backend) + "+warm";
    emitRow(Json, WarmLabel, BaselineNs,
            [&](const browser::Profile &P) {
              auto &V = Runs[P.Name];
              return V.size() < 2 ? ReplayStats() : V[1];
            },
            Factors[WarmLabel]);
  }

  // The DESIGN.md §19 acceptance gate: warm cached-cloud within 2x of
  // inmemory on Chrome. Raw cloud pays a WAN round trip per operation;
  // warm, the cache must absorb nearly all of them.
  double Inmem = Factors["inmemory"]["chrome"];
  double Warm = Factors["cached-cloud+warm"]["chrome"];
  bool GateOk = Inmem > 0 && Warm > 0 && Warm <= 2.0 * Inmem;
  Json.hostMetric("gate_warm_over_inmemory_chrome",
                  Inmem > 0 ? Warm / Inmem : -1);
  Json.hostMetric("gate_ok", GateOk ? 1 : 0);
  Json.write();
  printf("\ngate: warm cached-cloud %.2fx vs inmemory %.2fx on chrome "
         "(ratio %.2f, limit 2.00) -> %s\n",
         Warm, Inmem, Inmem > 0 ? Warm / Inmem : -1.0,
         GateOk ? "OK" : "FAIL");
  printf("(inmemory is the paper's configuration; the per-browser\n"
         " differences come from each browser's resumption mechanism —\n"
         " IE10's setImmediate is why it is near-native, §4.4. Safari\n"
         " pays the typed-array leak: 10.5 MB of file buffers leak and\n"
         " page. The cached rows are the DESIGN.md §19 storage hierarchy:\n"
         " a write-back block cache + log-structured journal in front of\n"
         " the slow store. journal-idb is the same cache over IndexedDB,\n"
         " group-committing the journal instead of writing through.)\n\n");
  return GateOk;
}

void BM_TraceReplay_Chrome(benchmark::State &State) {
  for (auto _ : State) {
    auto V = replayOn(browser::chromeProfile(), "inmemory", 1);
    ReplayStats S = V.empty() ? ReplayStats() : V[0];
    State.counters["fs_ops"] = static_cast<double>(S.Operations);
    State.counters["errors"] = static_cast<double>(S.Errors);
  }
}

void BM_TraceReplay_CachedCloudWarm(benchmark::State &State) {
  for (auto _ : State) {
    auto V = replayOn(browser::chromeProfile(), "cached-cloud", 2);
    ReplayStats S = V.size() < 2 ? ReplayStats() : V[1];
    State.counters["fs_ops"] = static_cast<double>(S.Operations);
    State.counters["errors"] = static_cast<double>(S.Errors);
  }
}

} // namespace

BENCHMARK(BM_TraceReplay_Chrome)->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_TraceReplay_CachedCloudWarm)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

int main(int argc, char **argv) {
  bool GateOk = printFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return GateOk ? 0 : 1;
}
