//===- bench/fig6_fs.cpp - Figure 6: file system performance -------------===//
//
// Regenerates Figure 6: the Doppio file system replaying the recorded
// javac trace (3185 ops, 1560 files, 10.5 MB read, 97 KB written) per
// browser, relative to Node JS on the native OS file system.
//
// Paper shape: IE10 is nearly native (~1.18x) — its setImmediate makes
// each blocking call's resumption nearly free — while Chrome is ~2.5x
// (sendMessage resumption per call); Safari suffers the typed-array leak.
//
// Extension beyond the paper: the same trace against each storage
// backend, showing what localStorage serialization and cloud latency cost.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "doppio/backends/kv_backend.h"
#include "workloads/fstrace.h"

#include <benchmark/benchmark.h>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::rt;
using namespace doppio::workloads;

namespace {

/// Replays the trace against a root backend in one browser; returns the
/// replay stats.
ReplayStats replayOn(const browser::Profile &P,
                     const std::string &Backend) {
  browser::BrowserEnv Env(P);
  Process Proc;
  std::unique_ptr<fs::FileSystemBackend> Root;
  if (Backend == "inmemory") {
    Root = std::make_unique<fs::InMemoryBackend>(Env);
  } else {
    std::unique_ptr<fs::AsyncKvStore> Store;
    if (Backend == "indexeddb") {
      if (!Env.indexedDB())
        return {};
      Env.indexedDB()->setQuotaBytes(256u << 20);
      Store = std::make_unique<fs::IndexedDbKv>(Env);
    } else if (Backend == "cloud") {
      Store = std::make_unique<fs::CloudKv>(Env);
    }
    auto Kv = std::make_unique<fs::KeyValueBackend>(Env, std::move(Store));
    Kv->initialize([](std::optional<ApiError>) {});
    Root = std::move(Kv);
  }
  fs::FileSystem Fs(Env, Proc, std::move(Root));
  Suspender Susp(Env);
  FsTrace Trace = makeJavacTrace();
  ReplayStats Out;
  replayTrace(Trace, Fs, Env, Susp, [&Out](ReplayStats S) { Out = S; });
  return Out;
}

void printFigure6() {
  FsTrace Trace = makeJavacTrace();
  printf("==========================================================\n");
  printf("Figure 6: Doppio FS replaying the javac trace, relative to\n");
  printf("Node JS on the native file system\n");
  printf("trace: %zu ops, %zu unique files, %.1f MB read, %llu KB "
         "written\n",
         Trace.Ops.size(), Trace.uniqueFiles(),
         static_cast<double>(Trace.ExpectedReadBytes) / (1024.0 * 1024.0),
         static_cast<unsigned long long>(Trace.ExpectedWriteBytes / 1024));
  printf("(paper: 3185 ops, 1560 files, 10.5 MB read, 97 KB written;\n");
  printf(" IE10 ~1.18x, Chrome ~2.5x)\n");
  printf("==========================================================\n");
  uint64_t BaselineNs = nativeBaselineNs(Trace);
  printf("native baseline (Node on OS fs, modeled): %.1f ms\n\n",
         static_cast<double>(BaselineNs) / 1e6);
  printBrowserHeader("backend");
  BenchJson Json("fig6_fs");
  for (const char *Backend : {"inmemory", "indexeddb", "cloud"}) {
    printf("%-14s", Backend);
    BenchJson::Row &R = Json.row(Backend);
    for (const browser::Profile &P : browser::allProfiles()) {
      ReplayStats S = replayOn(P, Backend);
      if (S.Operations == 0) {
        printf(" %10s", "n/a");
        R.metric(P.Name, -1);
        continue;
      }
      double Factor = static_cast<double>(S.VirtualNs) /
                      static_cast<double>(BaselineNs);
      printf(" %9.2fx", Factor);
      R.metric(P.Name, Factor);
    }
    printf("\n");
  }
  Json.write();
  printf("(inmemory is the paper's configuration; the per-browser\n"
         " differences come from each browser's resumption mechanism —\n"
         " IE10's setImmediate is why it is near-native, §4.4. Safari\n"
         " pays the typed-array leak: 10.5 MB of file buffers leak and\n"
         " page. indexeddb/cloud rows are an extension.)\n\n");
}

void BM_TraceReplay_Chrome(benchmark::State &State) {
  for (auto _ : State) {
    ReplayStats S = replayOn(browser::chromeProfile(), "inmemory");
    State.counters["fs_ops"] = static_cast<double>(S.Operations);
    State.counters["errors"] = static_cast<double>(S.Errors);
  }
}

} // namespace

BENCHMARK(BM_TraceReplay_Chrome)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

int main(int argc, char **argv) {
  printFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
