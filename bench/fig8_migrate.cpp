//===- bench/fig8_migrate.cpp - Figure 8: live guest migration ------------===//
//
// Extension beyond the paper: the continuation substrate (DESIGN.md §16)
// makes a running JVM guest a value — checkpointProcess freezes it into a
// self-describing blob, restoreProcess revives it — and the cluster's
// control plane ships that value between shard tabs. This harness
// measures what that buys and what it costs, per browser profile:
//
//  - a baseline run: java Ticker executes start-to-finish on shard 0;
//  - a migrated run: the same guest starts on shard 0, and once it has
//    produced some output the balancer live-migrates it to shard 1
//    (checkpoint at the next inter-slice quiescent point, kill the local
//    copy, ship the blob over the fabric, revive on the destination).
//
// Reported per profile: capture cost, blob size, restore cost, and the
// guest-observed downtime (capture + fabric hop + restore, on the two
// tabs' virtual clocks). The headline correctness number is
// output_identical: the source prefix concatenated with the destination
// tail must be bit-identical to the uninterrupted baseline.
//
// Acceptance (exit 1 on failure): every profile migrates exactly once,
// output is identical, and the migrated guest exits 0 on the destination.
//
//===----------------------------------------------------------------------===//

#include "doppio/cluster/cluster.h"

#include "bench_util.h"
#include "browser/profile.h"
#include "jvm/classfile/builder.h"
#include "jvm/proc_program.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::cluster;

namespace {

/// Outer iterations of the Ticker guest. Sized to span many 10 ms
/// scheduler slices: inter-slice boundaries are the only mid-run
/// quiescent points, so a guest that fits in one slice could never be
/// captured mid-stream.
constexpr int TickerN = 3000;

/// Migrate once the source has produced this much stdout (~4% of the
/// run), so the blob carries a genuinely mid-stream guest.
constexpr size_t MigrateAfterBytes = 1000;

/// Iterations between the guest's 2 ms naps. The naps matter for the
/// cluster, not the guest: the LockstepDriver pumps fabric mail between
/// rounds, and a round only ends when a tab needs an idle clock jump — a
/// guest that never sleeps monopolizes its shard's round, so the
/// balancer's Migrate frame could only arrive after it exited. A guest
/// with periodic timed waits (i.e. any service-shaped guest) keeps
/// rounds short and can be reached mid-run.
constexpr int NapEvery = 500;

/// class Ticker — one deterministic println per outer iteration (same
/// shape as tests/doppio/cont_test.cpp) plus a 2 ms nap every NapEvery
/// iterations: a mid-run checkpoint genuinely splits the output stream,
/// and the long arithmetic exercises the software-long Value round trip
/// through the image. Output is time-independent, so the migrated and
/// baseline streams must match bit-for-bit.
std::vector<uint8_t> tickerClassBytes(int N) {
  jvm::ClassBuilder B("Ticker");
  jvm::MethodBuilder &M = B.method(jvm::AccPublic | jvm::AccStatic, "main",
                                   "([Ljava/lang/String;)V");
  jvm::MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  jvm::MethodBuilder::Label KLoop = M.newLabel(), KDone = M.newLabel();
  M.lconst(1).lstore(1);
  M.iconst(0).istore(3);
  M.bind(Loop).iload(3).iconst(N).branch(jvm::Op::IfIcmpge, Done);
  M.lload(1)
      .lconst(1103515245)
      .op(jvm::Op::Lmul)
      .iload(3)
      .op(jvm::Op::I2l)
      .op(jvm::Op::Ladd)
      .lstore(1);
  M.iconst(0).istore(4);
  M.iconst(0).istore(5);
  M.bind(KLoop).iload(5).iconst(200).branch(jvm::Op::IfIcmpge, KDone);
  M.iload(4)
      .iconst(31)
      .op(jvm::Op::Imul)
      .iload(5)
      .op(jvm::Op::Iadd)
      .istore(4);
  M.iinc(5, 1).branch(jvm::Op::Goto, KLoop).bind(KDone);
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  M.lload(1)
      .lconst(1000000)
      .op(jvm::Op::Lrem)
      .op(jvm::Op::L2i)
      .iload(4)
      .op(jvm::Op::Ixor)
      .invokevirtual("java/io/PrintStream", "println", "(I)V");
  jvm::MethodBuilder::Label NoNap = M.newLabel();
  M.iload(3)
      .iconst(NapEvery)
      .op(jvm::Op::Irem)
      .iconst(NapEvery - 1)
      .branch(jvm::Op::IfIcmpne, NoNap);
  M.lconst(2).invokestatic("java/lang/Thread", "sleep", "(J)V");
  M.bind(NoNap);
  M.iinc(3, 1).branch(jvm::Op::Goto, Loop);
  M.bind(Done).op(jvm::Op::Return);
  return B.bytes();
}

struct MigrateRun {
  std::string Output;       ///< Source prefix + destination tail.
  bool Quiesced = false;
  bool MigrationOk = false;
  int DstExit = -1;
  uint64_t CaptureUs = 0, RestoreUs = 0, BlobBytes = 0;
  uint64_t DowntimeUs = 0;  ///< Capture + fabric hop + restore.
  uint64_t Migrations = 0;  ///< balancer.migrations after the run.
};

/// One run: 2 shards, java Ticker on shard 0; when \p DoMigrate, the
/// balancer moves it to shard 1 mid-stream. Deterministic lockstep.
MigrateRun runOnce(const browser::Profile &P,
                   const std::vector<uint8_t> &Klass, bool DoMigrate) {
  Cluster::Config Cfg;
  Cfg.Shards = 2;
  // Both shards serve the same classpath and can revive "jvm" images: a
  // content-replicated fleet, so any shard is a valid migration target.
  Cfg.ShardTemplate.Setup = [&Klass](Shard &S) {
    S.fs().mkdirp("/classes", [](std::optional<rt::ApiError> E) {
      assert(!E && "mkdirp /classes");
      (void)E;
    });
    S.fs().writeFile("/classes/Ticker.class", Klass,
                     [](std::optional<rt::ApiError> E) {
                       assert(!E && "seed Ticker.class");
                       (void)E;
                     });
    jvm::registerJvmRestore(S.checkpoints());
  };
  Cluster Cl(P, Cfg);
  LockstepDriver Drv(Cl.fabric());
  // Settle startup: worker pipelines, the Setup hook's fs writes.
  Drv.run(10000000);

  Shard *Src = Cl.shard(0);
  rt::proc::ProcessTable::SpawnSpec Spec;
  Spec.Name = "java";
  // The guest runs under the `quick` profile: migration must hold with
  // in-place quickened bytecode and live inline caches (DESIGN.md §18 —
  // the checkpoint reloads classes fresh, so _quick ops never cross).
  jvm::JvmOptions GuestOptions;
  GuestOptions.Exec = jvm::ExecProfile::quick();
  Spec.Prog = jvm::makeJvmProgram({"Ticker", {}, GuestOptions});
  rt::proc::Pid Pid = Src->procs().spawn(std::move(Spec));

  MigrateRun Out;
  bool Requested = false;
  Balancer::MigrationResult MR;
  bool HaveResult = false;
  std::function<void()> Probe = [&] {
    if (Requested)
      return;
    rt::proc::Process *Pr = Src->procs().find(Pid);
    if (!Pr || !Pr->alive())
      return; // Finished before the threshold: the check below fails.
    if (Pr->state().capturedStdout().size() >= MigrateAfterBytes) {
      Requested = true;
      bool Sent = Cl.migrateProcess(0, 1, Pid,
                                    [&](const Balancer::MigrationResult &R) {
                                      MR = R;
                                      HaveResult = true;
                                    });
      assert(Sent && "both shards are live");
      (void)Sent;
      return;
    }
    // Resume lane, same reasoning as the cluster's checkpoint retry: the
    // guest's slices run there, and Resume outranks Timer, so a Timer-
    // lane probe would starve until the guest exits.
    browser::TimerHandle H = Src->env().loop().postTimer(
        kernel::Lane::Resume, [&Probe] { Probe(); }, browser::usToNs(50));
    (void)H; // Destruction does not cancel; the next fire re-arms.
  };
  if (DoMigrate)
    Probe();

  auto Rep = Drv.run(10000000);
  Out.Quiesced = Rep.Rounds < 10000000;
  Out.Migrations = Cl.balancer().migrationsDone();

  // Reaped records stay addressable, so the source's captured stdout —
  // frozen at the checkpoint/kill instant — survives the migration.
  rt::proc::Process *SrcPr = Src->procs().find(Pid);
  std::string SrcOut = SrcPr ? SrcPr->state().capturedStdout() : "";
  if (!DoMigrate) {
    Out.Output = std::move(SrcOut);
    return Out;
  }
  if (!HaveResult || !MR.Ok)
    return Out;
  Out.MigrationOk = true;
  Out.CaptureUs = MR.CaptureUs;
  Out.RestoreUs = MR.RestoreUs;
  Out.BlobBytes = MR.BlobBytes;
  Out.DowntimeUs =
      MR.CaptureUs + Cfg.Costs.HopLatencyNs / 1000 + MR.RestoreUs;
  rt::proc::Process *DstPr = Cl.shard(1)->procs().find(MR.NewPid);
  if (DstPr) {
    Out.DstExit = DstPr->exitCode();
    Out.Output = SrcOut + DstPr->state().capturedStdout();
  }
  return Out;
}

void printFigure8() {
  std::vector<uint8_t> Klass = tickerClassBytes(TickerN);
  printf("==========================================================\n");
  printf("Figure 8 (extension): live JVM guest migration across shards\n");
  printf("java Ticker(%d) starts on shard 0; after %zu B of stdout the\n",
         TickerN, MigrateAfterBytes);
  printf("balancer freezes it into a blob and revives it on shard 1.\n");
  printf("identical = source prefix + destination tail == baseline\n");
  printf("==========================================================\n");
  printf("%-10s %10s %10s %10s %12s %9s\n", "browser", "capture-us",
         "blob-B", "restore-us", "downtime-us", "identical");
  bool AllOk = true;
  uint64_t DowntimeUsMax = 0;
  BenchJson Json("fig8_migrate");
  for (const browser::Profile &P : browser::allProfiles()) {
    MigrateRun Base = runOnce(P, Klass, /*DoMigrate=*/false);
    MigrateRun Mig = runOnce(P, Klass, /*DoMigrate=*/true);
    bool Identical = !Base.Output.empty() && Mig.Output == Base.Output;
    bool Ok = Base.Quiesced && Mig.Quiesced && Mig.MigrationOk &&
              Mig.Migrations == 1 && Mig.DstExit == 0 && Identical;
    AllOk = AllOk && Ok;
    DowntimeUsMax = std::max(DowntimeUsMax, Mig.DowntimeUs);
    printf("%-10s %10llu %10llu %10llu %12llu %9s\n", P.Name.c_str(),
           static_cast<unsigned long long>(Mig.CaptureUs),
           static_cast<unsigned long long>(Mig.BlobBytes),
           static_cast<unsigned long long>(Mig.RestoreUs),
           static_cast<unsigned long long>(Mig.DowntimeUs),
           Ok ? "yes" : "FAIL");
    Json.row(P.Name)
        .metric("capture_us", static_cast<double>(Mig.CaptureUs))
        .metric("blob_bytes", static_cast<double>(Mig.BlobBytes))
        .metric("restore_us", static_cast<double>(Mig.RestoreUs))
        .metric("downtime_us", static_cast<double>(Mig.DowntimeUs))
        .metric("migrations", static_cast<double>(Mig.Migrations))
        .metric("baseline_bytes", static_cast<double>(Base.Output.size()))
        .metric("output_identical", Identical ? 1 : 0)
        .metric("dst_exit", static_cast<double>(Mig.DstExit))
        .metric("row_ok", Ok ? 1 : 0);
  }
  Json.hostMetric("downtime_us_max", static_cast<double>(DowntimeUsMax));
  Json.hostMetric("output_identical_all", AllOk ? 1 : 0);
  Json.write();
  printf("(capture/restore on the source/destination virtual clocks;\n"
         " downtime adds the fabric hop. The blob is the whole guest:\n"
         " heap, threads, frames, monitors, strings, class graph.)\n\n");
  if (!AllOk) {
    fprintf(stderr, "fig8_migrate: acceptance check failed\n");
    exit(1);
  }
}

void BM_Migrate_Chrome(benchmark::State &State) {
  std::vector<uint8_t> Klass = tickerClassBytes(TickerN);
  for (auto _ : State) {
    MigrateRun Mig = runOnce(browser::chromeProfile(), Klass, true);
    State.counters["capture_us_virtual"] =
        static_cast<double>(Mig.CaptureUs);
    State.counters["blob_bytes"] = static_cast<double>(Mig.BlobBytes);
    State.counters["downtime_us_virtual"] =
        static_cast<double>(Mig.DowntimeUs);
  }
}

} // namespace

BENCHMARK(BM_Migrate_Chrome)->Unit(benchmark::kMillisecond)->Iterations(2);

int main(int argc, char **argv) {
  printFigure8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
