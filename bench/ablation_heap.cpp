//===- bench/ablation_heap.cpp - §5.2 ablation: heap backing store -------===//
//
// DESIGN.md ablation #3: the unmanaged heap over a typed array
// (ArrayBuffer) versus a plain JavaScript number array. Reports the
// virtual-time cost per browser and real-host throughput of the allocator
// and the copy-in/copy-out accessors.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "doppio/heap.h"

#include <benchmark/benchmark.h>

using namespace doppio;
using namespace doppio::rt;

namespace {

/// A fixed workload over one heap: allocate, fill, read back, free.
uint64_t heapSweep(browser::BrowserEnv &Env, int Blocks) {
  UnmanagedHeap Heap(Env, 1u << 20);
  uint64_t Start = Env.clock().nowNs();
  std::vector<UnmanagedHeap::Addr> Live;
  std::vector<uint8_t> Payload(512, 0x5A);
  uint64_t Checksum = 0;
  for (int I = 0; I != Blocks; ++I) {
    UnmanagedHeap::Addr A = Heap.malloc(512);
    if (!A)
      break;
    Heap.writeBytes(A, Payload.data(), Payload.size());
    Checksum += static_cast<uint64_t>(Heap.readInt32(A + 256));
    Live.push_back(A);
    if (Live.size() > 64) {
      Heap.free(Live.front());
      Live.erase(Live.begin());
    }
  }
  for (UnmanagedHeap::Addr A : Live)
    Heap.free(A);
  benchmark::DoNotOptimize(Checksum);
  return Env.clock().nowNs() - Start;
}

void printAblation() {
  printf("==========================================================\n");
  printf("Ablation (§5.2): typed-array heap vs number-array heap\n");
  printf("(virtual time of 4000 alloc/fill/read/free rounds)\n");
  printf("==========================================================\n");
  printf("%-10s %-14s %12s\n", "browser", "backing", "virtual ms");
  bench::BenchJson Json("ablation_heap");
  for (const browser::Profile &P : browser::allProfiles()) {
    browser::BrowserEnv Env(P);
    UnmanagedHeap Probe(Env, 4096);
    uint64_t Ns = heapSweep(Env, 4000);
    printf("%-10s %-14s %12.2f\n", P.Name.c_str(),
           Probe.usesTypedArray() ? "typed array" : "number array",
           static_cast<double>(Ns) / 1e6);
    Json.row(P.Name)
        .metric("typed_array", Probe.usesTypedArray() ? 1 : 0)
        .metric("virtual_ms", static_cast<double>(Ns) / 1e6);
  }
  Json.write();
  printf("(ie8 lacks typed arrays: every access decodes boxed doubles,\n"
         " §5.2 — the same mechanism that slows its Buffer in Figure 6)\n\n");
}

void BM_HeapSweep(benchmark::State &State) {
  browser::BrowserEnv Env(browser::chromeProfile());
  for (auto _ : State)
    benchmark::DoNotOptimize(heapSweep(Env, 1000));
}

void BM_HeapMallocFree(benchmark::State &State) {
  browser::BrowserEnv Env(browser::chromeProfile());
  UnmanagedHeap Heap(Env, 1u << 20);
  for (auto _ : State) {
    UnmanagedHeap::Addr A = Heap.malloc(64);
    Heap.free(A);
  }
}

void BM_HeapInt64RoundTrip(benchmark::State &State) {
  browser::BrowserEnv Env(browser::chromeProfile());
  UnmanagedHeap Heap(Env, 4096);
  UnmanagedHeap::Addr A = Heap.malloc(8);
  int64_t V = 0x1122334455667788ll;
  for (auto _ : State) {
    Heap.writeInt64(A, V);
    benchmark::DoNotOptimize(Heap.readInt64(A));
  }
}

} // namespace

BENCHMARK(BM_HeapSweep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HeapMallocFree);
BENCHMARK(BM_HeapInt64RoundTrip);

int main(int argc, char **argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
