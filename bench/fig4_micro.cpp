//===- bench/fig4_micro.cpp - Figure 4: microbenchmarks ------------------===//
//
// Regenerates Figure 4: DeltaBlue (100 iterations) and pidigits (200
// digits) relative to the HotSpot interpreter, per browser, split into
// *CPU time* (execution only) and *wall-clock time* (including time spent
// suspended between events) — the distinction §7.1 uses to show that
// suspend-and-resume overhead is small.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include <benchmark/benchmark.h>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::jvm;
using namespace doppio::workloads;

namespace {

bool printFigure4() {
  printf("==========================================================\n");
  printf("Figure 4: microbenchmark slowdown vs HotSpot interpreter\n");
  printf("(CPU = execution only; wall = including suspension time;\n");
  printf(" the two nearly coincide — Figure 5 quantifies the gap)\n");
  printf("==========================================================\n");
  struct Micro {
    const char *Label;
    Workload W;
  };
  std::vector<Micro> Micros;
  Micros.push_back({"deltablue", makeDeltaBlue(60, 400)});
  Micros.push_back({"pidigits", makePiDigits(200)});
  printBrowserHeader("benchmark");
  BenchJson Json("fig4_micro");
  // The main series runs the shipped interpreter configuration: the
  // `quick` profile (threaded dispatch + quickening + inline caches,
  // DESIGN.md §18). Output identity against the native run is a hard
  // gate for every row.
  bool MainOk = true;
  JvmOptions QuickMain;
  QuickMain.Exec = ExecProfile::quick();
  for (Micro &M : Micros) {
    RunMetrics Native = runJvmWorkload(M.W, ExecutionMode::NativeHotspot,
                                       browser::chromeProfile());
    uint64_t BaselineNs = nativeNominalNs(Native);
    std::vector<double> Cpu, Wall;
    for (const browser::Profile &P : browser::allProfiles()) {
      RunMetrics Js =
          runJvmWorkload(M.W, ExecutionMode::DoppioJS, P, QuickMain);
      bool Identical = Js.Exit == 0 && Js.Output == Native.Output;
      if (!Identical) {
        MainOk = false;
        Cpu.push_back(-1);
        Wall.push_back(-1);
        Json.row(std::string(M.Label) + "/" + P.Name)
            .metric("output_identical", 0);
        continue;
      }
      Cpu.push_back(static_cast<double>(Js.cpuNs()) /
                    static_cast<double>(BaselineNs));
      Wall.push_back(static_cast<double>(Js.VirtualWallNs) /
                     static_cast<double>(BaselineNs));
      Json.row(std::string(M.Label) + "/" + P.Name)
          .metric("cpu_factor", Cpu.back())
          .metric("wall_factor", Wall.back())
          .metric("host_factor", Native.RealSeconds > 0
                                     ? Js.RealSeconds / Native.RealSeconds
                                     : -1)
          .metric("output_identical", 1);
    }
    printRow((std::string(M.Label) + " cpu").c_str(), Cpu);
    printRow((std::string(M.Label) + " wall").c_str(), Wall);
  }
  // Check-elision ablation (DESIGN.md §12): the same workloads with the
  // verifier trusted (per-instruction guards elided) and distrusted
  // (guarded execution for every frame). The virtual clock charges both
  // identically, so the win is host time; outputs must be bit-identical.
  printf("\nCheck-elision ablation (host time, chrome profile):\n");
  printf("%-14s %11s %11s %8s\n", "benchmark", "guarded_s", "elided_s",
         "speedup");
  for (Micro &M : Micros) {
    JvmOptions Guarded, Elided;
    Guarded.Exec.TrustVerifier = false;
    Elided.Exec.TrustVerifier = true;
    // Best of 3: one-shot host timings are noisy at this scale.
    RunMetrics G, E;
    for (int Rep = 0; Rep != 3; ++Rep) {
      RunMetrics G1 = runJvmWorkload(M.W, ExecutionMode::DoppioJS,
                                     browser::chromeProfile(), Guarded);
      RunMetrics E1 = runJvmWorkload(M.W, ExecutionMode::DoppioJS,
                                     browser::chromeProfile(), Elided);
      if (Rep == 0 || G1.RealSeconds < G.RealSeconds)
        G = G1;
      if (Rep == 0 || E1.RealSeconds < E.RealSeconds)
        E = E1;
    }
    if (G.Exit != E.Exit || G.Output != E.Output) {
      printf("%-14s  OUTPUT MISMATCH between guarded and elided runs\n",
             M.Label);
      Json.row(std::string(M.Label) + "/elision").metric("speedup", -1);
      continue;
    }
    double Speedup =
        E.RealSeconds > 0 ? G.RealSeconds / E.RealSeconds : -1;
    printf("%-14s %11.4f %11.4f %7.2fx\n", M.Label, G.RealSeconds,
           E.RealSeconds, Speedup);
    Json.row(std::string(M.Label) + "/elision")
        .metric("guarded_s", G.RealSeconds)
        .metric("elided_s", E.RealSeconds)
        .metric("speedup", Speedup);
  }
  // Suspend-placement ablation (DESIGN.md §17): a check before every
  // bytecode dispatch (the naive Everywhere baseline) vs analysis-driven
  // placement (call boundaries + kept loop back edges only). The virtual
  // clock charges both identically; the win is dynamic check count.
  // Output must be bit-identical, the placed run must execute at least
  // 5x fewer checks, and no dynamic span may exceed the proven bound K.
  bool PlacementOk = true;
  printf("\nSuspend-placement ablation (chrome profile):\n");
  printf("%-14s %13s %13s %9s %7s\n", "benchmark", "checks_every",
         "checks_placed", "elided", "ratio");
  for (Micro &M : Micros) {
    JvmOptions Everywhere, Placed;
    Everywhere.Exec.SuspendChecks = SuspendCheckMode::Everywhere;
    Placed.Exec.SuspendChecks = SuspendCheckMode::Placed;
    RunMetrics Ev = runJvmWorkload(M.W, ExecutionMode::DoppioJS,
                                   browser::chromeProfile(), Everywhere);
    RunMetrics Pl = runJvmWorkload(M.W, ExecutionMode::DoppioJS,
                                   browser::chromeProfile(), Placed);
    bool Identical = Ev.Exit == 0 && Pl.Exit == Ev.Exit &&
                     Pl.Output == Ev.Output;
    bool BoundOk = Pl.ProvenBoundMax == 0 ||
                   Pl.MaxOpsBetweenChecks <= Pl.ProvenBoundMax;
    double Ratio =
        Pl.SuspendChecksExecuted
            ? static_cast<double>(Ev.SuspendChecksExecuted) /
                  static_cast<double>(Pl.SuspendChecksExecuted)
            : -1;
    if (!Identical)
      printf("%-14s  OUTPUT MISMATCH between everywhere and placed runs\n",
             M.Label);
    else
      printf("%-14s %13llu %13llu %9llu %6.1fx%s\n", M.Label,
             static_cast<unsigned long long>(Ev.SuspendChecksExecuted),
             static_cast<unsigned long long>(Pl.SuspendChecksExecuted),
             static_cast<unsigned long long>(Pl.SuspendChecksElided),
             Ratio, BoundOk ? "" : "  BOUND EXCEEDED");
    Json.row(std::string(M.Label) + "/placement")
        .metric("checks_everywhere",
                static_cast<double>(Ev.SuspendChecksExecuted))
        .metric("checks_placed",
                static_cast<double>(Pl.SuspendChecksExecuted))
        .metric("suspend_checks_elided",
                static_cast<double>(Pl.SuspendChecksElided))
        .metric("check_reduction", Ratio)
        .metric("output_identical", Identical ? 1 : 0)
        .metric("max_span_placed",
                static_cast<double>(Pl.MaxOpsBetweenChecks))
        .metric("proven_bound_k", static_cast<double>(Pl.ProvenBoundMax))
        .metric("bound_ok", BoundOk ? 1 : 0);
    if (!Identical || !BoundOk || Ratio < 5)
      PlacementOk = false;
  }
  // Quickening ablation (DESIGN.md §18): the `baseline` profile (every
  // optimization off) vs the `quick` profile (threaded dispatch +
  // quickening + inline caches). The modeled engine charges quickened
  // dispatch at QuickOpCostNs instead of OpCostNs, so the win shows up
  // in the virtual cpu factor. Hard gates: bit-identical output for
  // every workload, and a quick cpu factor at most half the baseline's
  // for deltablue (the ROADMAP target). pidigits is dominated by the
  // software Long64 surcharges, which deliberately do not quicken (§8),
  // so it only has to improve, not halve.
  bool QuickOk = true;
  printf("\nQuickening ablation (cpu factor vs HotSpot, chrome profile):\n");
  printf("%-14s %10s %10s %7s %10s %9s %9s\n", "benchmark", "base_cpu",
         "quick_cpu", "ratio", "quickened", "ic_hits", "ic_misses");
  for (Micro &M : Micros) {
    RunMetrics Native = runJvmWorkload(M.W, ExecutionMode::NativeHotspot,
                                       browser::chromeProfile());
    uint64_t BaselineNs = nativeNominalNs(Native);
    JvmOptions Base, Quick;
    Base.Exec = ExecProfile::baseline();
    Quick.Exec = ExecProfile::quick();
    RunMetrics B = runJvmWorkload(M.W, ExecutionMode::DoppioJS,
                                  browser::chromeProfile(), Base);
    RunMetrics Q = runJvmWorkload(M.W, ExecutionMode::DoppioJS,
                                  browser::chromeProfile(), Quick);
    bool Identical = B.Exit == 0 && Q.Exit == B.Exit &&
                     Q.Output == B.Output && Q.Output == Native.Output;
    double BaseCpu = static_cast<double>(B.cpuNs()) /
                     static_cast<double>(BaselineNs);
    double QuickCpu = static_cast<double>(Q.cpuNs()) /
                      static_cast<double>(BaselineNs);
    double Ratio = BaseCpu > 0 ? QuickCpu / BaseCpu : -1;
    if (!Identical)
      printf("%-14s  OUTPUT MISMATCH between baseline and quick runs\n",
             M.Label);
    else
      printf("%-14s %9.1fx %9.1fx %6.2fx %10llu %9llu %9llu\n", M.Label,
             BaseCpu, QuickCpu, Ratio,
             static_cast<unsigned long long>(Q.QuickenedSites),
             static_cast<unsigned long long>(Q.IcHits),
             static_cast<unsigned long long>(Q.IcMisses));
    Json.row(std::string(M.Label) + "/quickening")
        .metric("cpu_factor_baseline", BaseCpu)
        .metric("cpu_factor_quick", QuickCpu)
        .metric("cpu_ratio", Ratio)
        .metric("quickened_sites", static_cast<double>(Q.QuickenedSites))
        .metric("ic_hits", static_cast<double>(Q.IcHits))
        .metric("ic_misses", static_cast<double>(Q.IcMisses))
        .metric("output_identical", Identical ? 1 : 0);
    double Gate = std::string(M.Label) == "deltablue" ? 0.5 : 1.0;
    if (!Identical || Ratio <= 0 || Ratio >= Gate)
      QuickOk = false;
  }
  Json.write();
  printf("\npidigits note: its long arithmetic runs on the software\n");
  printf("Long64 halves in DoppioJS mode (§8), which is why its factors\n");
  printf("exceed deltablue's.\n\n");
  return MainOk && PlacementOk && QuickOk;
}

void BM_Micro(benchmark::State &State, Workload (*Make)(),
              ExecutionMode Mode) {
  Workload W = Make();
  for (auto _ : State) {
    RunMetrics M = runJvmWorkload(W, Mode, browser::chromeProfile());
    if (M.Exit != 0)
      State.SkipWithError("workload failed");
    State.counters["bytecodes"] = static_cast<double>(M.Ops);
  }
}

Workload makeDb() { return makeDeltaBlue(60, 400); }
Workload makePi() { return makePiDigits(200); }

} // namespace

BENCHMARK_CAPTURE(BM_Micro, deltablue_doppiojs, makeDb,
                  ExecutionMode::DoppioJS)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Micro, deltablue_native, makeDb,
                  ExecutionMode::NativeHotspot)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Micro, pidigits_doppiojs, makePi,
                  ExecutionMode::DoppioJS)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Micro, pidigits_native, makePi,
                  ExecutionMode::NativeHotspot)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

int main(int argc, char **argv) {
  bool Ok = printFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // The ablations are hard gates: non-identical output anywhere, a span
  // above the proven bound, a check reduction under 5x, or a quickened
  // cpu factor above half the baseline's fails the run.
  return Ok ? 0 : 1;
}
