//===- bench/fig4_micro.cpp - Figure 4: microbenchmarks ------------------===//
//
// Regenerates Figure 4: DeltaBlue (100 iterations) and pidigits (200
// digits) relative to the HotSpot interpreter, per browser, split into
// *CPU time* (execution only) and *wall-clock time* (including time spent
// suspended between events) — the distinction §7.1 uses to show that
// suspend-and-resume overhead is small.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include <benchmark/benchmark.h>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::jvm;
using namespace doppio::workloads;

namespace {

void printFigure4() {
  printf("==========================================================\n");
  printf("Figure 4: microbenchmark slowdown vs HotSpot interpreter\n");
  printf("(CPU = execution only; wall = including suspension time;\n");
  printf(" the two nearly coincide — Figure 5 quantifies the gap)\n");
  printf("==========================================================\n");
  struct Micro {
    const char *Label;
    Workload W;
  };
  std::vector<Micro> Micros;
  Micros.push_back({"deltablue", makeDeltaBlue(60, 400)});
  Micros.push_back({"pidigits", makePiDigits(200)});
  printBrowserHeader("benchmark");
  BenchJson Json("fig4_micro");
  for (Micro &M : Micros) {
    RunMetrics Native = runJvmWorkload(M.W, ExecutionMode::NativeHotspot,
                                       browser::chromeProfile());
    uint64_t BaselineNs = nativeNominalNs(Native);
    std::vector<double> Cpu, Wall;
    for (const browser::Profile &P : browser::allProfiles()) {
      RunMetrics Js = runJvmWorkload(M.W, ExecutionMode::DoppioJS, P);
      if (Js.Exit != 0 || Js.Output != Native.Output) {
        Cpu.push_back(-1);
        Wall.push_back(-1);
        continue;
      }
      Cpu.push_back(static_cast<double>(Js.cpuNs()) /
                    static_cast<double>(BaselineNs));
      Wall.push_back(static_cast<double>(Js.VirtualWallNs) /
                     static_cast<double>(BaselineNs));
      Json.row(std::string(M.Label) + "/" + P.Name)
          .metric("cpu_factor", Cpu.back())
          .metric("wall_factor", Wall.back())
          .metric("host_factor", Native.RealSeconds > 0
                                     ? Js.RealSeconds / Native.RealSeconds
                                     : -1);
    }
    printRow((std::string(M.Label) + " cpu").c_str(), Cpu);
    printRow((std::string(M.Label) + " wall").c_str(), Wall);
  }
  Json.write();
  printf("\npidigits note: its long arithmetic runs on the software\n");
  printf("Long64 halves in DoppioJS mode (§8), which is why its factors\n");
  printf("exceed deltablue's.\n\n");
}

void BM_Micro(benchmark::State &State, Workload (*Make)(),
              ExecutionMode Mode) {
  Workload W = Make();
  for (auto _ : State) {
    RunMetrics M = runJvmWorkload(W, Mode, browser::chromeProfile());
    if (M.Exit != 0)
      State.SkipWithError("workload failed");
    State.counters["bytecodes"] = static_cast<double>(M.Ops);
  }
}

Workload makeDb() { return makeDeltaBlue(60, 400); }
Workload makePi() { return makePiDigits(200); }

} // namespace

BENCHMARK_CAPTURE(BM_Micro, deltablue_doppiojs, makeDb,
                  ExecutionMode::DoppioJS)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Micro, deltablue_native, makeDb,
                  ExecutionMode::NativeHotspot)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Micro, pidigits_doppiojs, makePi,
                  ExecutionMode::DoppioJS)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Micro, pidigits_native, makePi,
                  ExecutionMode::NativeHotspot)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

int main(int argc, char **argv) {
  printFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
