//===- bench/table1_features.cpp - Table 1: feature comparison -----------===//
//
// Regenerates Table 1: which in-browser execution systems provide the OS
// services, execution support, and language services that unmodified
// programs need. The Doppio/DoppioJVM column and the Emscripten column are
// *probed live* against this repository's implementations; the remaining
// systems (GWT, ASM.js, IL2JS, WeScheme) cannot be run here and their rows
// are reproduced from the paper's Table 1, marked as reported.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "doppio/backends/kv_backend.h"
#include "doppio/sockets.h"
#include "vm32/game.h"

#include <benchmark/benchmark.h>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::jvm;

namespace {

/// One probed feature row result.
struct Probe {
  const char *Feature;
  bool Doppio;
  bool Emscripten;
};

/// Runs a tiny JVM program and reports whether it printed "ok".
bool runsOk(const std::function<void(ClassBuilder &)> &BuildMain) {
  workloads::Workload W;
  W.Name = "probe";
  W.MainClass = "probe/Main";
  ClassBuilder B("probe/Main");
  BuildMain(B);
  W.Classes.emplace_back("probe/Main", B.bytes());
  Deployment D(W, ExecutionMode::DoppioJS, browser::chromeProfile());
  int Exit = D.Vm->runMainToCompletion("probe/Main", {});
  return Exit == 0 &&
         D.Proc.capturedStdout().find("ok") != std::string::npos;
}

void emitOk(MethodBuilder &M) {
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
      .ldcString("ok")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .op(Op::Return);
}

bool probeFileSystem() {
  return runsOk([](ClassBuilder &B) {
    MethodBuilder &M = B.method(AccPublic | AccStatic, "main",
                                "([Ljava/lang/String;)V");
    MethodBuilder::Label Bad = M.newLabel();
    M.ldcString("/probe.txt")
        .ldcString("persisted")
        .invokestatic("doppio/io/Files", "writeString",
                      "(Ljava/lang/String;Ljava/lang/String;)V")
        .ldcString("/probe.txt")
        .invokestatic("doppio/io/Files", "readString",
                      "(Ljava/lang/String;)Ljava/lang/String;")
        .ldcString("persisted")
        .invokevirtual("java/lang/String", "equals",
                       "(Ljava/lang/Object;)Z")
        .branch(Op::Ifeq, Bad);
    emitOk(M);
    M.bind(Bad).op(Op::Return);
  });
}

bool probeHeap() {
  return runsOk([](ClassBuilder &B) {
    MethodBuilder &M = B.method(AccPublic | AccStatic, "main",
                                "([Ljava/lang/String;)V");
    MethodBuilder::Label Bad = M.newLabel();
    M.getstatic("sun/misc/Unsafe", "theUnsafe", "Lsun/misc/Unsafe;")
        .astore(1)
        .aload(1)
        .lconst(8)
        .invokevirtual("sun/misc/Unsafe", "allocateMemory", "(J)J")
        .lstore(2)
        .aload(1)
        .lload(2)
        .iconst(99)
        .invokevirtual("sun/misc/Unsafe", "putInt", "(JI)V")
        .aload(1)
        .lload(2)
        .invokevirtual("sun/misc/Unsafe", "getInt", "(J)I")
        .iconst(99)
        .branch(Op::IfIcmpne, Bad);
    emitOk(M);
    M.bind(Bad).op(Op::Return);
  });
}

bool probeSyncApi() {
  return runsOk([](ClassBuilder &B) {
    // Blocking console input over async keyboard events (§4.2).
    MethodBuilder &M = B.method(AccPublic | AccStatic, "main",
                                "([Ljava/lang/String;)V");
    M.invokestatic("doppio/Stdin", "readLine", "()Ljava/lang/String;")
        .op(Op::Pop);
    emitOk(M);
  });
}

bool probeThreads() {
  return runsOk([](ClassBuilder &B) {
    MethodBuilder &M = B.method(AccPublic | AccStatic, "main",
                                "([Ljava/lang/String;)V");
    M.anew("java/lang/Thread")
        .op(Op::Dup)
        .invokespecial("java/lang/Thread", "<init>", "()V")
        .astore(1)
        .aload(1)
        .invokevirtual("java/lang/Thread", "start", "()V")
        .aload(1)
        .invokevirtual("java/lang/Thread", "join", "()V");
    emitOk(M);
  });
}

bool probeExceptions() {
  return runsOk([](ClassBuilder &B) {
    MethodBuilder &M = B.method(AccPublic | AccStatic, "main",
                                "([Ljava/lang/String;)V");
    MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                         H = M.newLabel();
    M.bind(Start)
        .iconst(1)
        .iconst(0)
        .op(Op::Idiv)
        .op(Op::Pop)
        .bind(End)
        .op(Op::Return)
        .bind(H)
        .op(Op::Pop);
    emitOk(M);
    M.handler(Start, End, H, "java/lang/ArithmeticException");
  });
}

bool probeReflection() {
  return runsOk([](ClassBuilder &B) {
    MethodBuilder &M = B.method(AccPublic | AccStatic, "main",
                                "([Ljava/lang/String;)V");
    MethodBuilder::Label Bad = M.newLabel();
    M.ldcString("x")
        .invokevirtual("java/lang/Object", "getClass",
                       "()Ljava/lang/Class;")
        .invokevirtual("java/lang/Class", "getName",
                       "()Ljava/lang/String;")
        .ldcString("java.lang.String")
        .invokevirtual("java/lang/String", "equals",
                       "(Ljava/lang/Object;)Z")
        .branch(Op::Ifeq, Bad);
    emitOk(M);
    M.bind(Bad).op(Op::Return);
  });
}

bool probeSegmentation() {
  // A ~10 s computation must finish without tripping the watchdog.
  workloads::Workload W = workloads::makeRecursive(24, 6);
  Deployment D(W, ExecutionMode::DoppioJS, browser::chromeProfile());
  int Exit = D.Vm->runMainToCompletion(W.MainClass, {});
  return Exit == 0 && !D.Env.loop().watchdogFired();
}

bool probeSockets() {
  // JVM socket natives through websockify to a TCP echo service (§5.3).
  workloads::Workload W;
  W.MainClass = "probe/Sock";
  ClassBuilder B("probe/Sock");
  MethodBuilder &M =
      B.method(AccPublic | AccStatic, "main", "([Ljava/lang/String;)V");
  MethodBuilder::Label Bad = M.newLabel();
  M.iconst(1000)
      .invokestatic("doppio/net/Socket", "connect", "(I)I")
      .istore(1)
      .iload(1)
      .iconst(2)
      .newarray(ArrayType::Byte)
      .op(Op::Dup)
      .iconst(0)
      .iconst(7)
      .op(Op::Bastore)
      .invokestatic("doppio/net/Socket", "send", "(I[B)V")
      .iload(1)
      .invokestatic("doppio/net/Socket", "recv", "(I)[B")
      .op(Op::Arraylength)
      .iconst(2)
      .branch(Op::IfIcmpne, Bad);
  emitOk(M);
  M.bind(Bad).op(Op::Return);
  W.Classes.emplace_back("probe/Sock", B.bytes());
  Deployment D(W, ExecutionMode::DoppioJS, browser::chromeProfile());
  D.Env.net().listen(2000, [](browser::TcpConnection &C) {
    C.setOnData([Conn = &C](const std::vector<uint8_t> &Data) {
      Conn->send(Data);
    });
  });
  static browser::WebsockifyProxy *Proxy = nullptr;
  Proxy = new browser::WebsockifyProxy(D.Env.net(), 1000, 2000);
  int Exit = D.Vm->runMainToCompletion("probe/Sock", {});
  bool Ok = Exit == 0 &&
            D.Proc.capturedStdout().find("ok") != std::string::npos;
  delete Proxy;
  Proxy = nullptr;
  return Ok;
}

// Emscripten-column probes, against the vm32 case-study host.
struct EmscriptenProbes {
  bool Segmentation;
  bool SyncDynamicLoad;
  bool PersistentFs;
};

EmscriptenProbes probeEmscripten() {
  using namespace doppio::vm32;
  EmscriptenProbes Out{};
  GameConfig Long;
  Long.Levels = 1;
  Long.FramesPerLevel = 60000;
  {
    browser::BrowserEnv Env(browser::chromeProfile());
    for (auto &[Path, Bytes] : makeGameAssets(Long))
      Env.server().addFile(Path, Bytes);
    rt::Process Proc;
    auto Root = std::make_unique<rt::fs::InMemoryBackend>(Env);
    auto Mounted =
        std::make_unique<rt::fs::MountableFileSystem>(std::move(Root));
    Mounted->mount("/srv",
                   std::make_unique<rt::fs::XhrBackend>(Env, "/srv"));
    rt::fs::FileSystem Fs(Env, Proc, std::move(Mounted));
    MiniVm Vm(Env, Fs, buildShadowGame(Long), HostMode::Emscripten);
    Vm.preloadAndRun(gameAssetPaths(Long));
    Env.loop().run();
    Out.Segmentation = Vm.status() == Vm32Status::Finished;
    Out.SyncDynamicLoad = Vm.stats().AssetBytesPreloaded == 0;
    Out.PersistentFs = Vm.stats().SavesSucceeded > 0;
  }
  return Out;
}

const char *mark(bool B) { return B ? "yes" : "-"; }

void printTable1() {
  printf("=================================================================\n");
  printf("Table 1: feature comparison of in-browser execution systems\n");
  printf("(Doppio/DoppioJVM and Emscripten columns probed live; the other\n");
  printf(" systems' cells are reproduced from the paper, marked '(r)')\n");
  printf("=================================================================\n");
  EmscriptenProbes Em = probeEmscripten();
  struct Row {
    const char *Feature;
    bool Doppio;
    bool Emscripten;
    const char *Gwt, *Asmjs, *Il2js, *WeScheme;
  };
  Row Rows[] = {
      {"file system (browser)", probeFileSystem(), Em.PersistentFs, "-",
       "*(r)", "-", "-"},
      {"unmanaged heap", probeHeap(), true, "-", "*(r)", "+(r)", "-"},
      {"sockets", probeSockets(), true, "-", "yes(r)", "-", "-"},
      {"auto event segmentation", probeSegmentation(), Em.Segmentation,
       "-", "-", "-", "yes(r)"},
      {"synchronous API support", probeSyncApi(), Em.SyncDynamicLoad, "-",
       "-", "-", "yes(r)"},
      {"multithreading", probeThreads(), false, "-", "-", "-", "yes(r)"},
      {"exceptions", probeExceptions(), true, "yes(r)", "yes(r)",
       "yes(r)", "yes(r)"},
      {"reflection", probeReflection(), false, "-", "-", "-", "-"},
  };
  printf("%-26s %-10s %-11s %-6s %-7s %-7s %s\n", "feature",
         "DoppioJVM", "Emscripten", "GWT", "ASM.js", "IL2JS", "WeScheme");
  BenchJson Json("table1_features");
  for (const Row &R : Rows) {
    printf("%-26s %-10s %-11s %-6s %-7s %-7s %s\n", R.Feature,
           mark(R.Doppio), mark(R.Emscripten), R.Gwt, R.Asmjs, R.Il2js,
           R.WeScheme);
    Json.row(R.Feature)
        .metric("doppio", R.Doppio ? 1 : 0)
        .metric("emscripten", R.Emscripten ? 1 : 0);
  }
  Json.write();
  printf("('*' / '+': limited support per the paper's footnotes)\n\n");
}

void BM_FeatureProbeSuite(benchmark::State &State) {
  for (auto _ : State) {
    benchmark::DoNotOptimize(probeFileSystem());
    benchmark::DoNotOptimize(probeHeap());
    benchmark::DoNotOptimize(probeExceptions());
  }
}

} // namespace

BENCHMARK(BM_FeatureProbeSuite)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

int main(int argc, char **argv) {
  printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
