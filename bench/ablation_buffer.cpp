//===- bench/ablation_buffer.cpp - §5.1 ablation: binary strings ---------===//
//
// DESIGN.md ablation #4: Buffer's packed binary-string codec (2 bytes per
// UTF-16 code unit on non-validating engines) versus the 1-byte-per-char
// fallback forced by validating engines. Reports storage amplification
// against the localStorage quota per browser, plus real-host codec
// throughput for every encoding.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include "doppio/buffer.h"

#include <benchmark/benchmark.h>

using namespace doppio;
using namespace doppio::rt;

namespace {

void printAblation() {
  printf("==========================================================\n");
  printf("Ablation (§5.1): packed binary strings vs 1-byte fallback\n");
  printf("==========================================================\n");
  printf("%-10s %-8s %16s %22s\n", "browser", "packed?",
         "string units/KB", "5MB quota holds (KB)");
  std::vector<uint8_t> Payload(1024);
  for (size_t I = 0; I != Payload.size(); ++I)
    Payload[I] = static_cast<uint8_t>(I * 131);
  bench::BenchJson Json("ablation_buffer");
  for (const browser::Profile &P : browser::allProfiles()) {
    browser::BrowserEnv Env(P);
    Buffer B(Env, Payload);
    js::String Encoded = B.toString(Encoding::BinaryString);
    bool Packed = Buffer::packsTwoBytesPerChar(P);
    // localStorage stores 2 bytes per code unit; capacity in payload KB:
    double UnitsPerKb = static_cast<double>(Encoded.size());
    double PayloadPerQuota =
        1024.0 * (static_cast<double>(P.LocalStorageQuotaBytes) /
                  (2.0 * UnitsPerKb)) /
        1024.0;
    printf("%-10s %-8s %16.0f %20.0f\n", P.Name.c_str(),
           Packed ? "yes" : "no", UnitsPerKb, PayloadPerQuota);
    Json.row(P.Name)
        .metric("packed", Packed ? 1 : 0)
        .metric("units_per_kb", UnitsPerKb)
        .metric("quota_holds_kb", PayloadPerQuota);
  }
  Json.write();
  printf("(validating engines — opera, ie8 — halve effective\n"
         " localStorage capacity for binary data, §5.1)\n\n");
}

template <Encoding E> void BM_Encode(benchmark::State &State) {
  browser::BrowserEnv Env(browser::chromeProfile());
  std::vector<uint8_t> Payload(State.range(0));
  for (size_t I = 0; I != Payload.size(); ++I)
    Payload[I] = static_cast<uint8_t>(I * 31);
  Buffer B(Env, Payload);
  for (auto _ : State)
    benchmark::DoNotOptimize(B.toString(E));
  State.SetBytesProcessed(State.iterations() * State.range(0));
}

template <Encoding E> void BM_Decode(benchmark::State &State) {
  browser::BrowserEnv Env(browser::chromeProfile());
  std::vector<uint8_t> Payload(State.range(0));
  Buffer B(Env, Payload);
  js::String Text = B.toString(E);
  for (auto _ : State)
    benchmark::DoNotOptimize(Buffer::fromString(Env, Text, E));
  State.SetBytesProcessed(State.iterations() * State.range(0));
}

} // namespace

BENCHMARK(BM_Encode<Encoding::BinaryString>)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Decode<Encoding::BinaryString>)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Encode<Encoding::Base64>)->Arg(4096);
BENCHMARK(BM_Decode<Encoding::Base64>)->Arg(4096);
BENCHMARK(BM_Encode<Encoding::Hex>)->Arg(4096);
BENCHMARK(BM_Encode<Encoding::Utf8>)->Arg(4096);

int main(int argc, char **argv) {
  printAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
