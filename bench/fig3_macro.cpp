//===- bench/fig3_macro.cpp - Figure 3: macro benchmark slowdowns --------===//
//
// Regenerates Figure 3: DoppioJVM's slowdown on the macro benchmarks
// (javap/classdump, javac/minicompile, Rhino recursive + binary-trees,
// Kawa nqueens) relative to the HotSpot interpreter, per browser.
//
// Paper shape to match: Chrome is the fastest browser at 24-42x slower
// than HotSpot (geometric mean 32x); the other browsers are worse in
// proportion to their 2013 engines; and javap on Safari blows up because
// Safari never collects typed arrays, so the file-heavy workload drives
// the machine into paging (§7.1).
//
// Two dimensions are reported: the deterministic virtual-clock table
// (browser series), and google-benchmark real-time runs of the DoppioJS
// interpreter vs the native-mode interpreter on this host.
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include <benchmark/benchmark.h>

using namespace doppio;
using namespace doppio::bench;
using namespace doppio::jvm;
using namespace doppio::workloads;

namespace {

std::vector<Workload> macroWorkloads() {
  std::vector<Workload> Out;
  Out.push_back(makeClassDump(491)); // javap on javac's 491 class files.
  Out.push_back(makeMiniCompile(19)); // javac on javap's 19 sources.
  Out.push_back(makeRecursive(20, 6));
  Out.push_back(makeBinaryTrees(9));
  Out.push_back(makeNQueens(8));
  return Out;
}

const char *paperLabel(const std::string &Name) {
  if (Name == "classdump")
    return "javap*";
  if (Name == "minicompile")
    return "javac*";
  return nullptr;
}

void printFigure3() {
  printf("==========================================================\n");
  printf("Figure 3: slowdown vs the HotSpot interpreter (virtual)\n");
  printf("(paper: Chrome between 24x and 42x, geomean 32x; Safari\n");
  printf(" degrades on javap due to the typed-array leak)\n");
  printf("==========================================================\n");
  printBrowserHeader("benchmark");
  std::vector<double> ChromeFactors;
  BenchJson Json("fig3_macro");
  for (Workload &W : macroWorkloads()) {
    RunMetrics Native =
        runJvmWorkload(W, ExecutionMode::NativeHotspot,
                       browser::chromeProfile());
    if (Native.Exit != 0) {
      printf("%-14s FAILED (exit %d)\n", W.Name.c_str(), Native.Exit);
      continue;
    }
    uint64_t BaselineNs = nativeNominalNs(Native);
    std::vector<double> Cells;
    BenchJson::Row &R = Json.row(W.Name);
    for (const browser::Profile &P : browser::allProfiles()) {
      RunMetrics Js = runJvmWorkload(W, ExecutionMode::DoppioJS, P);
      if (Js.Exit != 0 || Js.Output != Native.Output) {
        Cells.push_back(-1);
        R.metric(P.Name, -1);
        continue;
      }
      double Factor = static_cast<double>(Js.VirtualWallNs) /
                      static_cast<double>(BaselineNs);
      Cells.push_back(Factor);
      R.metric(P.Name, Factor);
      if (&P == &browser::allProfiles().front() && Native.RealSeconds > 0)
        R.metric("host_factor", Js.RealSeconds / Native.RealSeconds);
    }
    const char *Alias = paperLabel(W.Name);
    printRow(Alias ? Alias : W.Name.c_str(), Cells);
    ChromeFactors.push_back(Cells.front());
  }
  printf("%-14s %9.1fx   (paper: 32x)\n", "geomean(chrome)",
         geomean(ChromeFactors));
  Json.hostMetric("geomean_chrome", geomean(ChromeFactors));
  Json.write();
  printf("* classdump/minicompile are the synthesized javap/javac analogs"
         " (DESIGN.md)\n\n");
}

//===--------------------------------------------------------------------===//
// Real-host-time benchmarks (google-benchmark)
//===--------------------------------------------------------------------===//

void BM_Macro_DoppioJS(benchmark::State &State, Workload (*Make)()) {
  Workload W = Make();
  for (auto _ : State) {
    RunMetrics M = runJvmWorkload(W, ExecutionMode::DoppioJS,
                                  browser::chromeProfile());
    if (M.Exit != 0)
      State.SkipWithError("workload failed");
    State.counters["bytecodes"] = static_cast<double>(M.Ops);
  }
}

void BM_Macro_Native(benchmark::State &State, Workload (*Make)()) {
  Workload W = Make();
  for (auto _ : State) {
    RunMetrics M = runJvmWorkload(W, ExecutionMode::NativeHotspot,
                                  browser::chromeProfile());
    if (M.Exit != 0)
      State.SkipWithError("workload failed");
    State.counters["bytecodes"] = static_cast<double>(M.Ops);
  }
}

Workload makeRecursiveBench() { return makeRecursive(20, 6); }
Workload makeTreesBench() { return makeBinaryTrees(9); }
Workload makeQueensBench() { return makeNQueens(8); }

} // namespace

BENCHMARK_CAPTURE(BM_Macro_DoppioJS, recursive, makeRecursiveBench)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Macro_Native, recursive, makeRecursiveBench)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Macro_DoppioJS, binarytrees, makeTreesBench)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Macro_Native, binarytrees, makeTreesBench)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Macro_DoppioJS, nqueens, makeQueensBench)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(BM_Macro_Native, nqueens, makeQueensBench)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

int main(int argc, char **argv) {
  printFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
