//===- browser/storage.h - Browser persistent storage (Table 2) --*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "hodgepodge of persistent storage mechanisms" from Table 2 of the
/// paper: cookies (4 KB, synchronous, string key/value), localStorage (5 MB,
/// synchronous, string key/value), and IndexedDB (asynchronous object
/// database with a user-specified quota). Doppio's file system backends are
/// built over these. String-based mechanisms only accept JS strings, which
/// is why Buffer's packed binary-string encoding exists (§5.1); browsers
/// that validate UTF-16 reject strings containing lone surrogates.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_STORAGE_H
#define DOPPIO_BROWSER_STORAGE_H

#include "browser/event_loop.h"
#include "browser/js_string.h"
#include "browser/profile.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace browser {

/// Result of a synchronous storage write.
enum class StoreResult {
  Ok,
  /// The mechanism's quota would be exceeded.
  QuotaExceeded,
  /// This browser validates UTF-16 and the value contains lone surrogates.
  InvalidString,
};

/// Interface shared by the synchronous string key/value mechanisms
/// (cookies, localStorage).
class SyncKeyValueStore {
public:
  virtual ~SyncKeyValueStore();

  /// Stores \p Value under \p Key, replacing any previous value.
  virtual StoreResult setItem(const std::string &Key,
                              const js::String &Value) = 0;
  virtual std::optional<js::String> getItem(const std::string &Key) const = 0;
  virtual void removeItem(const std::string &Key) = 0;
  virtual std::vector<std::string> keys() const = 0;
  virtual void clear() = 0;
  virtual uint64_t usedBytes() const = 0;
  virtual uint64_t quotaBytes() const = 0;
};

/// A synchronous string store with a byte quota: the shared implementation
/// behind localStorage and the cookie jar. Writes charge the per-byte
/// serialization cost from the profile's cost model.
class QuotaStringStore : public SyncKeyValueStore {
public:
  QuotaStringStore(VirtualClock &Clock, const Profile &P, uint64_t Quota)
      : Clock(Clock), Prof(P), Quota(Quota) {}

  StoreResult setItem(const std::string &Key,
                      const js::String &Value) override;
  std::optional<js::String> getItem(const std::string &Key) const override;
  void removeItem(const std::string &Key) override;
  std::vector<std::string> keys() const override;
  void clear() override;
  uint64_t usedBytes() const override { return Used; }
  uint64_t quotaBytes() const override { return Quota; }

private:
  uint64_t entryBytes(const std::string &Key, const js::String &Value) const {
    return Key.size() + js::byteSize(Value);
  }

  VirtualClock &Clock;
  const Profile &Prof;
  uint64_t Quota;
  uint64_t Used = 0;
  std::map<std::string, js::String> Items;
};

/// window.localStorage: ~5 MB of string data, synchronous (Table 2).
class LocalStorage : public QuotaStringStore {
public:
  LocalStorage(VirtualClock &Clock, const Profile &P)
      : QuotaStringStore(Clock, P, P.LocalStorageQuotaBytes) {}
};

/// document.cookie: 4 KB of string data, synchronous (Table 2).
class CookieJar : public QuotaStringStore {
public:
  CookieJar(VirtualClock &Clock, const Profile &P)
      : QuotaStringStore(Clock, P, P.CookieQuotaBytes) {}
};

/// IndexedDB: an asynchronous object database storing binary values with a
/// user-specified quota (Table 2). All results are delivered as events.
class IndexedDB {
public:
  IndexedDB(EventLoop &Loop, const Profile &P) : Loop(Loop), Prof(P) {}

  using Bytes = std::vector<uint8_t>;

  /// Stores \p Value under \p Key; \p Done receives true on success, false
  /// if the quota is exceeded.
  void put(std::string Key, Bytes Value, std::function<void(bool)> Done);

  /// Fetches the value under \p Key (nullopt if absent).
  void get(std::string Key,
           std::function<void(std::optional<Bytes>)> Done);

  /// Removes \p Key if present.
  void remove(std::string Key, std::function<void()> Done);

  /// Lists all keys in sorted order.
  void listKeys(std::function<void(std::vector<std::string>)> Done);

  /// Sets the user-granted quota (default: 64 MB).
  void setQuotaBytes(uint64_t Q) { Quota = Q; }
  uint64_t quotaBytes() const { return Quota; }
  uint64_t usedBytes() const { return Used; }

private:
  EventLoop &Loop;
  const Profile &Prof;
  uint64_t Quota = 64ull << 20;
  uint64_t Used = 0;
  std::map<std::string, Bytes> Items;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_STORAGE_H
