//===- browser/simnet.h - Simulated TCP network ------------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-simulation TCP network. "Native" endpoints (servers the browser
/// talks to: the websockify wrapper of §5.3, echo services in tests, and the
/// in-runtime doppiod server of doppio/server/) use this API directly;
/// browser-side JavaScript can only reach the network through the WebSocket
/// layer built on top. Data delivery is asynchronous through the event loop
/// with the profile's network latency.
///
/// Lifetime: connection pairs are owned by the fabric and reaped once both
/// endpoints have closed, so a long-running server does not accumulate dead
/// connections. Holders of TcpConnection pointers must therefore drop them
/// when the connection closes (locally or via the close handler); in-flight
/// deliveries keep the endpoint alive until they drain.
///
/// Close ordering: a close follows any bytes already in flight, like a TCP
/// FIN — the peer's close handler never fires before previously-sent data
/// has been delivered.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_SIMNET_H
#define DOPPIO_BROWSER_SIMNET_H

#include "browser/event_loop.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace doppio {
namespace browser {

class SimNet;

/// One side of an established duplex byte-stream connection.
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
public:
  using DataHandler = std::function<void(const std::vector<uint8_t> &)>;
  using CloseHandler = std::function<void()>;

  /// Sends bytes to the peer; they arrive as a later event.
  void send(std::vector<uint8_t> Data);

  /// Registers the receive handler. Any data that arrived before a handler
  /// was registered is delivered immediately.
  void setOnData(DataHandler H);
  void setOnClose(CloseHandler H) { OnClose = std::move(H); }

  /// Closes both directions. The peer's close handler fires as an event,
  /// ordered after any data already in flight (FIN semantics).
  void close();

  bool isOpen() const { return Open; }

private:
  friend class SimNet;
  TcpConnection(SimNet &Net) : Net(Net) {}

  void deliver(std::vector<uint8_t> Data);
  void peerClosed();

  SimNet &Net;
  TcpConnection *Peer = nullptr;
  bool Open = true;
  /// Virtual due time of the last data event scheduled toward the peer;
  /// a close is delivered no earlier than this (FIN ordering).
  uint64_t LastSendDueNs = 0;
  DataHandler OnData;
  CloseHandler OnClose;
  std::deque<std::vector<uint8_t>> Undelivered;
};

/// The network fabric: a port space for listeners plus connection storage.
class SimNet {
public:
  SimNet(EventLoop &Loop, const CostModel &Costs)
      : Loop(Loop), Costs(Costs) {}

  using AcceptHandler = std::function<void(TcpConnection &)>;

  /// Starts a listener on \p Port. Returns false if the port is taken.
  bool listen(uint16_t Port, AcceptHandler OnAccept);

  /// Stops listening on \p Port. Connects already in flight observe the
  /// port as closed (connection refused).
  void unlisten(uint16_t Port) { Listeners.erase(Port); }

  bool isListening(uint16_t Port) const { return Listeners.count(Port); }

  /// Opens a connection to \p Port. \p Done receives the client-side
  /// connection, or null if nothing is listening (connection refused).
  /// A listener that closes the server-side connection from inside its
  /// accept handler also refuses: \p Done receives null (the backlog
  /// overflow path of doppio/server/server_socket.h).
  /// Both the accept and the completion run as later events.
  void connect(uint16_t Port, std::function<void(TcpConnection *)> Done);

  /// Removes connection pairs where both endpoints have closed. Runs
  /// automatically (as a scheduled task) after a pair finishes closing;
  /// exposed for tests. Returns the number of endpoints reaped.
  size_t reapClosed();

  /// Endpoints currently owned by the fabric (2 per live connection).
  size_t liveConnections() const { return Connections.size(); }

  /// Connection pairs ever established (accepted connects).
  uint64_t totalConnections() const { return TotalConnections; }

  EventLoop &loop() { return Loop; }
  const CostModel &costs() const { return Costs; }

private:
  friend class TcpConnection;

  /// Called by an endpoint that just closed; schedules a reap sweep once
  /// its pair is fully dead.
  void noteClosed(TcpConnection &C);
  void scheduleReap();

  EventLoop &Loop;
  const CostModel &Costs;
  std::map<uint16_t, AcceptHandler> Listeners;
  // Owned connection endpoints. Scheduled deliveries hold shared_ptr
  // copies, so reaping a pair never invalidates an event in flight.
  std::vector<std::shared_ptr<TcpConnection>> Connections;
  bool ReapScheduled = false;
  uint64_t TotalConnections = 0;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_SIMNET_H
