//===- browser/simnet.h - Simulated TCP network ------------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-simulation TCP network. "Native" endpoints (servers the browser
/// talks to: the websockify wrapper of §5.3, echo services in tests) use
/// this API directly; browser-side JavaScript can only reach the network
/// through the WebSocket layer built on top. Data delivery is asynchronous
/// through the event loop with the profile's network latency.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_SIMNET_H
#define DOPPIO_BROWSER_SIMNET_H

#include "browser/event_loop.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace doppio {
namespace browser {

class SimNet;

/// One side of an established duplex byte-stream connection.
class TcpConnection {
public:
  using DataHandler = std::function<void(const std::vector<uint8_t> &)>;
  using CloseHandler = std::function<void()>;

  /// Sends bytes to the peer; they arrive as a later event.
  void send(std::vector<uint8_t> Data);

  /// Registers the receive handler. Any data that arrived before a handler
  /// was registered is delivered immediately.
  void setOnData(DataHandler H);
  void setOnClose(CloseHandler H) { OnClose = std::move(H); }

  /// Closes both directions; the peer's close handler fires as an event.
  void close();

  bool isOpen() const { return Open; }

private:
  friend class SimNet;
  TcpConnection(SimNet &Net) : Net(Net) {}

  void deliver(std::vector<uint8_t> Data);
  void peerClosed();

  SimNet &Net;
  TcpConnection *Peer = nullptr;
  bool Open = true;
  DataHandler OnData;
  CloseHandler OnClose;
  std::deque<std::vector<uint8_t>> Undelivered;
};

/// The network fabric: a port space for listeners plus connection storage.
class SimNet {
public:
  SimNet(EventLoop &Loop, const CostModel &Costs)
      : Loop(Loop), Costs(Costs) {}

  using AcceptHandler = std::function<void(TcpConnection &)>;

  /// Starts a listener on \p Port. Returns false if the port is taken.
  bool listen(uint16_t Port, AcceptHandler OnAccept);

  /// Stops listening on \p Port.
  void unlisten(uint16_t Port) { Listeners.erase(Port); }

  /// Opens a connection to \p Port. \p Done receives the client-side
  /// connection, or null if nothing is listening (connection refused).
  /// Both the accept and the completion run as later events.
  void connect(uint16_t Port, std::function<void(TcpConnection *)> Done);

  EventLoop &loop() { return Loop; }
  const CostModel &costs() const { return Costs; }

private:
  friend class TcpConnection;

  EventLoop &Loop;
  const CostModel &Costs;
  std::map<uint16_t, AcceptHandler> Listeners;
  // Connections live for the duration of the simulation; pointers handed
  // out remain valid.
  std::vector<std::unique_ptr<TcpConnection>> Connections;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_SIMNET_H
