//===- browser/wire.h - Big-endian wire-format helpers -----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Network-byte-order integer packing shared by every wire protocol in the
/// tree: the RFC6455 WebSocket codec (browser/websocket.cpp) and the
/// doppiod length-prefixed frame codec (doppio/server/frame.h).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_WIRE_H
#define DOPPIO_BROWSER_WIRE_H

#include <cstdint>
#include <vector>

namespace doppio {
namespace browser {
namespace wire {

inline void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V));
}

inline void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int Shift = 24; Shift >= 0; Shift -= 8)
    Out.push_back(static_cast<uint8_t>(V >> Shift));
}

inline void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int Shift = 56; Shift >= 0; Shift -= 8)
    Out.push_back(static_cast<uint8_t>(V >> Shift));
}

inline uint16_t getU16(const uint8_t *P) {
  return static_cast<uint16_t>((static_cast<uint16_t>(P[0]) << 8) | P[1]);
}

inline uint32_t getU32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V = (V << 8) | P[I];
  return V;
}

inline uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V = (V << 8) | P[I];
  return V;
}

} // namespace wire
} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_WIRE_H
