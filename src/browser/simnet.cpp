//===- browser/simnet.cpp -------------------------------------------------==//

#include "browser/simnet.h"

using namespace doppio;
using namespace doppio::browser;

void TcpConnection::send(std::vector<uint8_t> Data) {
  if (!Open || !Peer || Data.empty())
    return;
  TcpConnection *Dest = Peer;
  uint64_t Latency =
      Net.Costs.NetLatencyNs + Net.Costs.XhrPerByteNs * Data.size();
  Net.Loop.scheduleAfter(
      [Dest, Data = std::move(Data)]() mutable {
        Dest->deliver(std::move(Data));
      },
      Latency);
}

void TcpConnection::setOnData(DataHandler H) {
  OnData = std::move(H);
  while (OnData && !Undelivered.empty()) {
    std::vector<uint8_t> Data = std::move(Undelivered.front());
    Undelivered.pop_front();
    OnData(Data);
  }
}

void TcpConnection::deliver(std::vector<uint8_t> Data) {
  if (!Open)
    return;
  if (!OnData) {
    Undelivered.push_back(std::move(Data));
    return;
  }
  OnData(Data);
}

void TcpConnection::close() {
  if (!Open)
    return;
  Open = false;
  if (Peer) {
    TcpConnection *Dest = Peer;
    Net.Loop.scheduleAfter([Dest] { Dest->peerClosed(); },
                           Net.Costs.NetLatencyNs);
  }
}

void TcpConnection::peerClosed() {
  if (!Open)
    return;
  Open = false;
  if (OnClose)
    OnClose();
}

bool SimNet::listen(uint16_t Port, AcceptHandler OnAccept) {
  auto [It, Inserted] = Listeners.emplace(Port, std::move(OnAccept));
  return Inserted;
}

void SimNet::connect(uint16_t Port,
                     std::function<void(TcpConnection *)> Done) {
  Loop.scheduleAfter(
      [this, Port, Done = std::move(Done)] {
        auto It = Listeners.find(Port);
        if (It == Listeners.end()) {
          Done(nullptr);
          return;
        }
        auto ClientSide = std::unique_ptr<TcpConnection>(
            new TcpConnection(*this));
        auto ServerSide = std::unique_ptr<TcpConnection>(
            new TcpConnection(*this));
        ClientSide->Peer = ServerSide.get();
        ServerSide->Peer = ClientSide.get();
        TcpConnection *Client = ClientSide.get();
        TcpConnection *Server = ServerSide.get();
        Connections.push_back(std::move(ClientSide));
        Connections.push_back(std::move(ServerSide));
        It->second(*Server);
        Done(Client);
      },
      Costs.NetLatencyNs);
}
