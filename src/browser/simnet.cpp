//===- browser/simnet.cpp -------------------------------------------------==//

#include "browser/simnet.h"

#include <algorithm>

using namespace doppio;
using namespace doppio::browser;

void TcpConnection::send(std::vector<uint8_t> Data) {
  if (!Open || !Peer || Data.empty())
    return;
  uint64_t Latency =
      Net.Costs.NetLatencyNs + Net.Costs.XhrPerByteNs * Data.size();
  uint64_t NowNs = Net.Loop.clock().nowNs();
  // TCP is FIFO: a short message must not overtake an earlier long one
  // whose per-byte latency put its delivery later. Each send is due no
  // earlier than every send before it (and close() orders the FIN after
  // LastSendDueNs, so data never races the connection teardown either).
  uint64_t DueNs = std::max(LastSendDueNs, NowNs + Latency);
  LastSendDueNs = DueNs;
  // Wire delivery is an I/O completion: the kernel keeps FIFO order for
  // equal due times (heap ties break on insertion sequence).
  Net.Loop.postAfter(
      kernel::Lane::IoCompletion,
      [Dest = Peer->shared_from_this(), Data = std::move(Data)]() mutable {
        Dest->deliver(std::move(Data));
      },
      DueNs - NowNs);
}

void TcpConnection::setOnData(DataHandler H) {
  OnData = std::move(H);
  while (OnData && !Undelivered.empty()) {
    std::vector<uint8_t> Data = std::move(Undelivered.front());
    Undelivered.pop_front();
    OnData(Data);
  }
}

void TcpConnection::deliver(std::vector<uint8_t> Data) {
  if (!Open)
    return;
  if (!OnData) {
    Undelivered.push_back(std::move(Data));
    return;
  }
  OnData(Data);
}

void TcpConnection::close() {
  if (!Open)
    return;
  Open = false;
  if (Peer) {
    // FIN ordering: the close is delivered no earlier than the last data
    // event already scheduled toward the peer.
    uint64_t Delay = Net.Costs.NetLatencyNs;
    uint64_t NowNs = Net.Loop.clock().nowNs();
    if (LastSendDueNs > NowNs)
      Delay = std::max(Delay, LastSendDueNs - NowNs);
    Net.Loop.postAfter(kernel::Lane::IoCompletion,
                       [Dest = Peer->shared_from_this()] {
                         Dest->peerClosed();
                       },
                       Delay);
  }
  Net.noteClosed(*this);
}

void TcpConnection::peerClosed() {
  if (!Open)
    return;
  Open = false;
  if (OnClose)
    OnClose();
  Net.noteClosed(*this);
}

bool SimNet::listen(uint16_t Port, AcceptHandler OnAccept) {
  auto [It, Inserted] = Listeners.emplace(Port, std::move(OnAccept));
  return Inserted;
}

void SimNet::connect(uint16_t Port,
                     std::function<void(TcpConnection *)> Done) {
  Loop.postAfter(
      kernel::Lane::IoCompletion,
      [this, Port, Done = std::move(Done)] {
        auto It = Listeners.find(Port);
        if (It == Listeners.end()) {
          Done(nullptr);
          return;
        }
        auto ClientSide =
            std::shared_ptr<TcpConnection>(new TcpConnection(*this));
        auto ServerSide =
            std::shared_ptr<TcpConnection>(new TcpConnection(*this));
        ClientSide->Peer = ServerSide.get();
        ServerSide->Peer = ClientSide.get();
        Connections.push_back(ClientSide);
        Connections.push_back(ServerSide);
        ++TotalConnections;
        It->second(*ServerSide);
        // A listener that closed the connection inside its accept handler
        // refused it (e.g. accept-queue overflow): the client observes
        // ECONNREFUSED instead of an instantly-dead pipe.
        if (!ServerSide->isOpen()) {
          ClientSide->close();
          Done(nullptr);
          return;
        }
        Done(ClientSide.get());
      },
      Costs.NetLatencyNs);
}

size_t SimNet::reapClosed() {
  size_t Before = Connections.size();
  // Pairs die atomically: an endpoint is reapable only once its peer is
  // closed too, so no survivor is ever left with a dangling Peer pointer.
  std::erase_if(Connections, [](const std::shared_ptr<TcpConnection> &C) {
    return !C->Open && (!C->Peer || !C->Peer->Open);
  });
  return Before - Connections.size();
}

void SimNet::noteClosed(TcpConnection &C) {
  if (!C.Peer || !C.Peer->Open)
    scheduleReap();
}

void SimNet::scheduleReap() {
  if (ReapScheduled)
    return;
  ReapScheduled = true;
  // Deferred: the endpoints may still be on the call stack (a close handler
  // running inside a delivery event). Reaping is cleanup, so it rides the
  // lowest-priority lane — behind any pending deliveries and input.
  Loop.post(kernel::Lane::Background, [this] {
    ReapScheduled = false;
    reapClosed();
  });
}
