//===- browser/storage.cpp ------------------------------------------------==//

#include "browser/storage.h"

using namespace doppio;
using namespace doppio::browser;

SyncKeyValueStore::~SyncKeyValueStore() = default;

StoreResult QuotaStringStore::setItem(const std::string &Key,
                                      const js::String &Value) {
  if (Prof.ValidatesStrings && !js::isValidUtf16(Value))
    return StoreResult::InvalidString;
  uint64_t NewBytes = entryBytes(Key, Value);
  uint64_t OldBytes = 0;
  auto It = Items.find(Key);
  if (It != Items.end())
    OldBytes = entryBytes(Key, It->second);
  if (Used - OldBytes + NewBytes > Quota)
    return StoreResult::QuotaExceeded;
  Clock.chargeNs(Prof.Costs.StoragePerByteNs * NewBytes);
  Used = Used - OldBytes + NewBytes;
  Items[Key] = Value;
  return StoreResult::Ok;
}

std::optional<js::String>
QuotaStringStore::getItem(const std::string &Key) const {
  auto It = Items.find(Key);
  if (It == Items.end())
    return std::nullopt;
  Clock.chargeNs(Prof.Costs.StoragePerByteNs * entryBytes(Key, It->second));
  return It->second;
}

void QuotaStringStore::removeItem(const std::string &Key) {
  auto It = Items.find(Key);
  if (It == Items.end())
    return;
  Used -= entryBytes(Key, It->second);
  Items.erase(It);
}

std::vector<std::string> QuotaStringStore::keys() const {
  std::vector<std::string> Result;
  Result.reserve(Items.size());
  for (const auto &[Key, Value] : Items)
    Result.push_back(Key);
  return Result;
}

void QuotaStringStore::clear() {
  Items.clear();
  Used = 0;
}

void IndexedDB::put(std::string Key, Bytes Value,
                    std::function<void(bool)> Done) {
  uint64_t Latency =
      Prof.Costs.IdbLatencyNs + Prof.Costs.StoragePerByteNs * Value.size() / 4;
  Loop.scheduleAfter(
      [this, Key = std::move(Key), Value = std::move(Value),
       Done = std::move(Done)]() mutable {
        uint64_t OldBytes = 0;
        auto It = Items.find(Key);
        if (It != Items.end())
          OldBytes = It->second.size();
        uint64_t NewUsed = Used - OldBytes + Value.size();
        if (NewUsed > Quota) {
          if (Done)
            Done(false);
          return;
        }
        Used = NewUsed;
        Items[Key] = std::move(Value);
        if (Done)
          Done(true);
      },
      Latency);
}

void IndexedDB::get(std::string Key,
                    std::function<void(std::optional<Bytes>)> Done) {
  Loop.scheduleAfter(
      [this, Key = std::move(Key), Done = std::move(Done)] {
        auto It = Items.find(Key);
        if (It == Items.end()) {
          Done(std::nullopt);
          return;
        }
        Done(It->second);
      },
      Prof.Costs.IdbLatencyNs);
}

void IndexedDB::remove(std::string Key, std::function<void()> Done) {
  Loop.scheduleAfter(
      [this, Key = std::move(Key), Done = std::move(Done)] {
        auto It = Items.find(Key);
        if (It != Items.end()) {
          Used -= It->second.size();
          Items.erase(It);
        }
        if (Done)
          Done();
      },
      Prof.Costs.IdbLatencyNs);
}

void IndexedDB::listKeys(
    std::function<void(std::vector<std::string>)> Done) {
  Loop.scheduleAfter(
      [this, Done = std::move(Done)] {
        std::vector<std::string> Result;
        Result.reserve(Items.size());
        for (const auto &[Key, Value] : Items)
          Result.push_back(Key);
        Done(std::move(Result));
      },
      Prof.Costs.IdbLatencyNs);
}
