//===- browser/profile.cpp ------------------------------------------------==//

#include "browser/profile.h"

using namespace doppio;
using namespace doppio::browser;

static Profile makeChrome() {
  Profile P;
  P.Name = "chrome";
  P.HasTypedArrays = true;
  P.HasIndexedDB = true;
  P.Costs.EngineFactor = 1.0;
  return P;
}

static Profile makeFirefox() {
  Profile P;
  P.Name = "firefox";
  P.HasTypedArrays = true;
  P.HasIndexedDB = true;
  P.Costs.EngineFactor = 1.4;
  return P;
}

static Profile makeSafari() {
  Profile P;
  P.Name = "safari";
  P.HasTypedArrays = true;
  P.LeaksTypedArrays = true; // The §7.1 GC bug.
  // Pressure threshold scaled to our scaled-down workloads (DESIGN.md):
  // the paper's javap leaked ~6 GB against real RAM; our classdump leaks
  // a few MB against this.
  P.MemoryPressureBytes = 768u << 10;
  P.HasIndexedDB = false;    // Safari 6 shipped without IndexedDB.
  P.Costs.EngineFactor = 1.7;
  return P;
}

static Profile makeOpera() {
  Profile P;
  P.Name = "opera";
  P.HasTypedArrays = true;
  P.ValidatesStrings = true; // Packed binary strings fall back to 1 B/char.
  P.HasIndexedDB = false;
  P.Costs.EngineFactor = 2.3;
  return P;
}

static Profile makeIe10() {
  Profile P;
  P.Name = "ie10";
  P.HasTypedArrays = true;
  P.HasSetImmediate = true; // The only browser with setImmediate (§4.4).
  P.HasIndexedDB = true;
  P.Costs.EngineFactor = 1.9;
  return P;
}

static Profile makeIe8() {
  Profile P;
  P.Name = "ie8";
  P.HasTypedArrays = false;        // Number-array fallbacks everywhere.
  P.SendMessageSynchronous = true; // Forces setTimeout resumption (§4.4).
  P.ValidatesStrings = true;
  P.HasIndexedDB = false;
  P.HasWebSockets = false; // Flash shim via Websockify's JS library.
  P.Costs.EngineFactor = 6.5;
  return P;
}

const std::vector<Profile> &browser::allProfiles() {
  static const std::vector<Profile> Profiles = {
      makeChrome(), makeFirefox(), makeSafari(),
      makeOpera(),  makeIe10(),    makeIe8()};
  return Profiles;
}

const Profile &browser::chromeProfile() { return allProfiles()[0]; }
const Profile &browser::firefoxProfile() { return allProfiles()[1]; }
const Profile &browser::safariProfile() { return allProfiles()[2]; }
const Profile &browser::operaProfile() { return allProfiles()[3]; }
const Profile &browser::ie10Profile() { return allProfiles()[4]; }
const Profile &browser::ie8Profile() { return allProfiles()[5]; }

const Profile *browser::findProfile(const std::string &Name) {
  for (const Profile &P : allProfiles())
    if (P.Name == Name)
      return &P;
  return nullptr;
}
