//===- browser/event_loop.h - Single-threaded browser event loop -*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JavaScript execution model the paper describes in §3.1: programs run
/// as a sequence of finite-duration events on a single thread; an event runs
/// to completion (it cannot be preempted), and events that keep the page
/// unresponsive for too long are killed by the browser's watchdog. This
/// event loop reproduces those semantics over the virtual clock, including
/// the setTimeout 4 ms minimum clamp (§4.4) and per-event latency
/// accounting used to measure page responsiveness in the §7.2 case study.
///
/// Since the unified-kernel refactor the loop no longer owns queues of its
/// own: it is a run-to-completion facade over doppio::kernel::Kernel's
/// prioritized dispatch lanes. Browser policy lives here (the timer clamp,
/// watchdog accounting, input-latency stats); ordering, timers,
/// cancellation, and tracing live in the kernel. The classic browser API
/// (enqueueTask / setTimeout / scheduleAfter / trySetImmediate) maps onto
/// lanes, and lane-aware callers can use post()/postAfter() directly.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_EVENT_LOOP_H
#define DOPPIO_BROWSER_EVENT_LOOP_H

#include "browser/profile.h"
#include "browser/virtual_clock.h"
#include "doppio/kernel/kernel.h"

#include <cstdint>
#include <functional>

namespace doppio {
namespace browser {

/// Classifies events for latency accounting. Input events model user
/// interaction; their queueing delay is the "page responsiveness" metric.
enum class EventKind { Task, Input };

/// The single-threaded, run-to-completion browser event loop: browser
/// semantics over kernel scheduling.
class EventLoop {
public:
  using Event = std::function<void()>;

  /// Aggregate statistics over all dispatched events.
  struct Stats {
    uint64_t EventsRun = 0;
    /// Events whose charged virtual duration exceeded the watchdog limit.
    uint64_t WatchdogKills = 0;
    uint64_t MaxEventNs = 0;
    uint64_t TotalEventNs = 0;
    /// Worst observed delay between an input event becoming due and its
    /// dispatch. Long-running events inflate this (§3.1).
    uint64_t MaxInputLatencyNs = 0;
  };

  EventLoop(VirtualClock &Clock, const Profile &P)
      : Clock(Clock), Prof(P), K(Clock) {}

  /// Places \p Fn at the back of the ready queue (a macrotask). Input
  /// events go to the Input lane (dispatched ahead of everything else);
  /// plain tasks go to the Background lane.
  void enqueueTask(Event Fn, EventKind Kind = EventKind::Task);

  /// Schedules \p Fn after \p DelayNs, subject to the profile's minimum
  /// timeout clamp. Returns a handle usable with clearTimeout.
  uint64_t setTimeout(Event Fn, uint64_t DelayNs,
                      EventKind Kind = EventKind::Task);

  /// Cancels a pending timeout. Cancelling an already-fired or unknown
  /// handle is a no-op.
  void clearTimeout(uint64_t Handle);

  /// Schedules \p Fn exactly \p DelayNs from now with no minimum clamp.
  /// This is not a JavaScript-visible API: it models the completion of
  /// browser-internal asynchronous work (XHR responses, IndexedDB
  /// transactions, network frames) which is not subject to timer clamping;
  /// it lands in the I/O-completion lane.
  void scheduleAfter(Event Fn, uint64_t DelayNs,
                     EventKind Kind = EventKind::Task);

  /// Schedules \p Fn at the back of the queue with no clamp. Returns false
  /// (scheduling nothing) if this browser lacks setImmediate (§4.4).
  bool trySetImmediate(Event Fn);

  /// Lane-aware enqueue: \p Fn is eligible now, dispatched in \p L's
  /// priority position. Work carrying a cancelled token is skipped.
  void post(kernel::Lane L, Event Fn, kernel::CancelToken Cancel = {});

  /// Lane-aware timer: \p Fn runs on lane \p L after exactly \p DelayNs
  /// (no clamp). Returns a kernel timer handle for cancelTimer().
  uint64_t postAfter(kernel::Lane L, Event Fn, uint64_t DelayNs,
                     kernel::CancelToken Cancel = {});

  /// Cancels a handle from postAfter()/setTimeout(). Returns false for
  /// already-fired, already-cancelled, or unknown handles.
  bool cancelTimer(uint64_t Handle) { return K.cancelTimer(Handle); }

  /// Dispatches a single event, advancing the virtual clock over idle gaps.
  /// Returns false when no work remains.
  bool runOne();

  /// Runs until every lane and the timer heap are empty.
  void run();

  /// True while an event callback is executing.
  bool inEvent() const { return EventDepth > 0; }

  /// Virtual time charged so far by the currently running event.
  uint64_t currentEventElapsedNs() const;

  /// True if the currently running event has already exceeded the watchdog
  /// limit; cooperative VMs poll this to simulate the browser killing the
  /// script (§3.1).
  bool currentEventOverLimit() const;

  const Stats &stats() const { return S; }
  void resetStats() { S = Stats(); }

  const Profile &profile() const { return Prof; }
  VirtualClock &clock() { return Clock; }

  /// The scheduling core: trace ring, per-lane counters, timer state.
  kernel::Kernel &kernel() { return K; }
  const kernel::Kernel &kernel() const { return K; }

  /// True once any event has overrun the watchdog limit.
  bool watchdogFired() const { return S.WatchdogKills > 0; }

private:
  void dispatch(kernel::Kernel::Work W);

  VirtualClock &Clock;
  const Profile &Prof;
  kernel::Kernel K;
  int EventDepth = 0;
  uint64_t CurrentEventStartNs = 0;
  Stats S;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_EVENT_LOOP_H
