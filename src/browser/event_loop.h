//===- browser/event_loop.h - Single-threaded browser event loop -*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JavaScript execution model the paper describes in §3.1: programs run
/// as a sequence of finite-duration events on a single thread; an event runs
/// to completion (it cannot be preempted), and events that keep the page
/// unresponsive for too long are killed by the browser's watchdog. This
/// event loop reproduces those semantics over the virtual clock, including
/// the setTimeout 4 ms minimum clamp (§4.4) and per-event latency
/// accounting used to measure page responsiveness in the §7.2 case study.
///
/// Since the unified-kernel refactor the loop no longer owns queues of its
/// own: it is a run-to-completion facade over doppio::kernel::Kernel's
/// prioritized dispatch lanes. Browser policy lives here (the timer clamp,
/// watchdog accounting, input-latency stats); ordering, timers,
/// cancellation, and tracing live in the kernel. The classic browser API
/// (enqueueTask / setTimeout / scheduleAfter / trySetImmediate) maps onto
/// lanes, and lane-aware callers can use post()/postAfter() directly.
///
/// The loop also owns the tab's obs::Registry (the simulated tab is the
/// paper's process): every subsystem above it — fs, doppiod, suspender,
/// thread pool — allocates instruments there, and the loop restores each
/// work item's causal span around its dispatch so span ids follow
/// operations across async hops (see obs/span.h). The loop's own Stats
/// struct is a registry-backed view (`loop.*` cells).
///
/// Timer ownership is typed: setTimer()/postTimer() return a TimerHandle
/// that can cancel the pending fire even after promotion (handle cancel +
/// CancelToken, the belt-and-braces doppiod's idle sweep pioneered). The
/// integer setTimeout()/clearTimeout() surface survives as a thin shim for
/// the JavaScript-visible API, which hands integer ids to scripts.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_EVENT_LOOP_H
#define DOPPIO_BROWSER_EVENT_LOOP_H

#include "browser/profile.h"
#include "browser/virtual_clock.h"
#include "doppio/kernel/kernel.h"
#include "doppio/obs/registry.h"

#include <cstdint>
#include <functional>
#include <memory>

namespace doppio {
namespace browser {

/// Classifies events for latency accounting. Input events model user
/// interaction; their queueing delay is the "page responsiveness" metric.
enum class EventKind { Task, Input };

class EventLoop;

/// Owning handle for a pending timer, returned by EventLoop::setTimer /
/// postTimer. Move-only; destruction does NOT cancel (matching the old
/// integer-handle semantics, where dropping the id let the timer fire).
///
/// cancel() beats the raw kernel handle in one way that matters: a timer
/// that is already *due* has been promoted out of the heap into its lane,
/// where cancelTimer() can no longer reach it — but the CancelToken every
/// typed timer carries still stops it at dispatch. Callers that used to
/// keep a (handle, CancelSource, armed-flag) triple keep one object.
class TimerHandle {
public:
  TimerHandle() = default;
  TimerHandle(TimerHandle &&) = default;
  TimerHandle &operator=(TimerHandle &&) = default;
  TimerHandle(const TimerHandle &) = delete;
  TimerHandle &operator=(const TimerHandle &) = delete;

  /// True if this handle was ever bound to a timer.
  explicit operator bool() const { return Loop != nullptr; }

  /// True while the timer is still going to fire: bound, not yet run, not
  /// cancelled.
  bool armed() const { return Loop && Fired && !*Fired && !Src.cancelled(); }

  /// Cancels the pending fire (heap entry in O(1), or via the token if
  /// already promoted). Returns true if a fire was actually prevented;
  /// false for unbound, already-fired, or already-cancelled handles.
  bool cancel();

  /// The underlying kernel timer handle (0 when unbound) — interoperates
  /// with the integer clearTimeout()/cancelTimer() surface.
  uint64_t id() const { return Handle; }

private:
  friend class EventLoop;
  TimerHandle(EventLoop *Loop, uint64_t Handle, kernel::CancelSource Src,
              std::shared_ptr<bool> Fired)
      : Loop(Loop), Handle(Handle), Src(std::move(Src)),
        Fired(std::move(Fired)) {}

  EventLoop *Loop = nullptr;
  uint64_t Handle = 0;
  kernel::CancelSource Src;
  std::shared_ptr<bool> Fired;
};

/// The single-threaded, run-to-completion browser event loop: browser
/// semantics over kernel scheduling.
class EventLoop {
public:
  using Event = std::function<void()>;

  /// Aggregate statistics over all dispatched events. A registry-backed
  /// view since the obs subsystem landed: stats() assembles it from the
  /// `loop.*` cells, field-for-field what the loop used to keep privately.
  struct Stats {
    uint64_t EventsRun = 0;
    /// Events whose charged virtual duration exceeded the watchdog limit.
    uint64_t WatchdogKills = 0;
    uint64_t MaxEventNs = 0;
    uint64_t TotalEventNs = 0;
    /// Worst observed delay between an input event becoming due and its
    /// dispatch. Long-running events inflate this (§3.1).
    uint64_t MaxInputLatencyNs = 0;
  };

  EventLoop(VirtualClock &Clock, const Profile &P)
      : Clock(Clock), Prof(P), Reg(Clock), K(Clock, Reg),
        EventsRunC(&Reg.counter("loop.events_run")),
        WatchdogKillsC(&Reg.counter("loop.watchdog_kills")),
        TotalEventNsC(&Reg.counter("loop.event_ns_total")),
        MaxEventNsG(&Reg.gauge("loop.event_ns_max")),
        MaxInputLatencyNsG(&Reg.gauge("loop.input_latency_ns_max")) {}

  /// Places \p Fn at the back of the ready queue (a macrotask). Input
  /// events go to the Input lane (dispatched ahead of everything else);
  /// plain tasks go to the Background lane.
  void enqueueTask(Event Fn, EventKind Kind = EventKind::Task);

  /// Typed JavaScript timer: schedules \p Fn after \p DelayNs, subject to
  /// the profile's minimum timeout clamp, and returns an owning
  /// TimerHandle. Prefer this over setTimeout() in C++ callers.
  TimerHandle setTimer(Event Fn, uint64_t DelayNs,
                       EventKind Kind = EventKind::Task);

  /// Typed lane-aware timer: \p Fn runs on lane \p L after exactly
  /// \p DelayNs (no clamp), with an owning TimerHandle. Prefer this over
  /// postAfter() when the caller may need to cancel.
  TimerHandle postTimer(kernel::Lane L, Event Fn, uint64_t DelayNs);

  /// Schedules \p Fn after \p DelayNs, subject to the profile's minimum
  /// timeout clamp. Returns a handle usable with clearTimeout.
  ///
  /// Deprecated integer surface: kept because the JavaScript-visible API
  /// hands integer ids to scripts (jcl's JS setTimeout). New C++ callers
  /// should use setTimer(); this is now a thin shim over it.
  uint64_t setTimeout(Event Fn, uint64_t DelayNs,
                      EventKind Kind = EventKind::Task);

  /// Cancels a pending timeout. Cancelling an already-fired or unknown
  /// handle is a no-op. Deprecated with setTimeout (TimerHandle::cancel
  /// supersedes it); kept for the JS-visible integer surface.
  void clearTimeout(uint64_t Handle);

  /// Schedules \p Fn exactly \p DelayNs from now with no minimum clamp.
  /// This is not a JavaScript-visible API: it models the completion of
  /// browser-internal asynchronous work (XHR responses, IndexedDB
  /// transactions, network frames) which is not subject to timer clamping;
  /// it lands in the I/O-completion lane.
  void scheduleAfter(Event Fn, uint64_t DelayNs,
                     EventKind Kind = EventKind::Task);

  /// Schedules \p Fn at the back of the queue with no clamp. Returns false
  /// (scheduling nothing) if this browser lacks setImmediate (§4.4).
  bool trySetImmediate(Event Fn);

  /// Lane-aware enqueue: \p Fn is eligible now, dispatched in \p L's
  /// priority position. Work carrying a cancelled token is skipped.
  void post(kernel::Lane L, Event Fn, kernel::CancelToken Cancel = {});

  /// Posts a reified continuation (DESIGN.md §16) for one-shot dispatch
  /// on lane \p L.
  void post(kernel::Lane L, rt::Continuation K, kernel::CancelToken Cancel = {});

  /// Lane-aware timer: \p Fn runs on lane \p L after exactly \p DelayNs
  /// (no clamp). Returns a kernel timer handle for cancelTimer().
  uint64_t postAfter(kernel::Lane L, Event Fn, uint64_t DelayNs,
                     kernel::CancelToken Cancel = {});

  /// Cancels a handle from postAfter()/setTimeout(). Returns false for
  /// already-fired, already-cancelled, or unknown handles.
  bool cancelTimer(uint64_t Handle) { return K.cancelTimer(Handle); }

  /// Dispatches a single event, advancing the virtual clock over idle gaps.
  /// Returns false when no work remains.
  bool runOne();

  /// Horizon-bounded variant for multi-tab driving: dispatches a single
  /// event, but never jumps the clock over an idle gap past \p HorizonNs
  /// (returns false instead). Already-ready work still runs even when the
  /// clock has charged past the horizon.
  bool runOne(uint64_t HorizonNs);

  /// Runs until every lane and the timer heap are empty.
  void run();

  /// Dispatches every event reachable without jumping the clock past
  /// \p HorizonNs; returns the number of events run. The cluster lockstep
  /// driver calls this per tab per round (doppio/cluster/driver.h).
  size_t runReadyUntil(uint64_t HorizonNs);

  /// Virtual time of this loop's earliest runnable work (now for queued
  /// work, a due time for timers, nullopt when fully idle). See
  /// kernel::Kernel::nextEligibleNs.
  std::optional<uint64_t> nextEligibleNs() { return K.nextEligibleNs(); }

  /// True while an event callback is executing.
  bool inEvent() const { return EventDepth > 0; }

  /// Virtual time charged so far by the currently running event.
  uint64_t currentEventElapsedNs() const;

  /// True if the currently running event has already exceeded the watchdog
  /// limit; cooperative VMs poll this to simulate the browser killing the
  /// script (§3.1).
  bool currentEventOverLimit() const;

  /// Snapshot of the loop statistics, assembled from the `loop.*` registry
  /// cells. By-value; existing `const Stats &S = Loop.stats();` callers
  /// keep working via temporary lifetime extension.
  Stats stats() const;
  /// Zeroes the loop's registry cells (other subsystems' cells survive).
  void resetStats();

  const Profile &profile() const { return Prof; }
  VirtualClock &clock() { return Clock; }

  /// The scheduling core: trace ring, per-lane counters, timer state.
  kernel::Kernel &kernel() { return K; }
  const kernel::Kernel &kernel() const { return K; }

  /// The tab-wide metrics registry + span store. Every subsystem on this
  /// loop allocates its instruments here.
  obs::Registry &metrics() { return Reg; }
  const obs::Registry &metrics() const { return Reg; }

  /// True once any event has overrun the watchdog limit.
  bool watchdogFired() const { return WatchdogKillsC->value() > 0; }

private:
  void dispatch(kernel::Kernel::Work W);

  VirtualClock &Clock;
  const Profile &Prof;
  /// The registry outlives the kernel member, which holds cells in it.
  obs::Registry Reg;
  kernel::Kernel K;
  obs::Counter *EventsRunC;
  obs::Counter *WatchdogKillsC;
  obs::Counter *TotalEventNsC;
  obs::Gauge *MaxEventNsG;
  obs::Gauge *MaxInputLatencyNsG;
  int EventDepth = 0;
  uint64_t CurrentEventStartNs = 0;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_EVENT_LOOP_H
