//===- browser/event_loop.h - Single-threaded browser event loop -*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JavaScript execution model the paper describes in §3.1: programs run
/// as a sequence of finite-duration events on a single thread; an event runs
/// to completion (it cannot be preempted), and events that keep the page
/// unresponsive for too long are killed by the browser's watchdog. This
/// event loop reproduces those semantics over the virtual clock, including
/// the setTimeout 4 ms minimum clamp (§4.4) and per-event latency
/// accounting used to measure page responsiveness in the §7.2 case study.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_EVENT_LOOP_H
#define DOPPIO_BROWSER_EVENT_LOOP_H

#include "browser/profile.h"
#include "browser/virtual_clock.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace doppio {
namespace browser {

/// Classifies events for latency accounting. Input events model user
/// interaction; their queueing delay is the "page responsiveness" metric.
enum class EventKind { Task, Input };

/// The single-threaded, run-to-completion browser event loop.
class EventLoop {
public:
  using Event = std::function<void()>;

  /// Aggregate statistics over all dispatched events.
  struct Stats {
    uint64_t EventsRun = 0;
    /// Events whose charged virtual duration exceeded the watchdog limit.
    uint64_t WatchdogKills = 0;
    uint64_t MaxEventNs = 0;
    uint64_t TotalEventNs = 0;
    /// Worst observed delay between an input event becoming due and its
    /// dispatch. Long-running events inflate this (§3.1).
    uint64_t MaxInputLatencyNs = 0;
  };

  EventLoop(VirtualClock &Clock, const Profile &P)
      : Clock(Clock), Prof(P) {}

  /// Places \p Fn at the back of the ready queue (a macrotask).
  void enqueueTask(Event Fn, EventKind Kind = EventKind::Task);

  /// Schedules \p Fn after \p DelayNs, subject to the profile's minimum
  /// timeout clamp. Returns a handle usable with clearTimeout.
  uint64_t setTimeout(Event Fn, uint64_t DelayNs,
                      EventKind Kind = EventKind::Task);

  /// Cancels a pending timeout. Cancelling an already-fired or unknown
  /// handle is a no-op.
  void clearTimeout(uint64_t Handle);

  /// Schedules \p Fn exactly \p DelayNs from now with no minimum clamp.
  /// This is not a JavaScript-visible API: it models the completion of
  /// browser-internal asynchronous work (XHR responses, IndexedDB
  /// transactions, network frames) which is not subject to timer clamping.
  void scheduleAfter(Event Fn, uint64_t DelayNs,
                     EventKind Kind = EventKind::Task);

  /// Schedules \p Fn at the back of the queue with no clamp. Returns false
  /// (scheduling nothing) if this browser lacks setImmediate (§4.4).
  bool trySetImmediate(Event Fn);

  /// Dispatches a single event, advancing the virtual clock over idle gaps.
  /// Returns false when no work remains.
  bool runOne();

  /// Runs until both the ready queue and the timer queue are empty.
  void run();

  /// True while an event callback is executing.
  bool inEvent() const { return EventDepth > 0; }

  /// Virtual time charged so far by the currently running event.
  uint64_t currentEventElapsedNs() const;

  /// True if the currently running event has already exceeded the watchdog
  /// limit; cooperative VMs poll this to simulate the browser killing the
  /// script (§3.1).
  bool currentEventOverLimit() const;

  const Stats &stats() const { return S; }
  void resetStats() { S = Stats(); }

  const Profile &profile() const { return Prof; }
  VirtualClock &clock() { return Clock; }

  /// True once any event has overrun the watchdog limit.
  bool watchdogFired() const { return S.WatchdogKills > 0; }

private:
  struct ReadyEvent {
    Event Fn;
    EventKind Kind;
    uint64_t ReadyAtNs; // When it became eligible to run.
  };

  struct Timer {
    uint64_t DueNs;
    uint64_t Seq;
    uint64_t Handle;
    Event Fn;
    EventKind Kind;
    bool Cancelled = false;
  };

  void dispatch(ReadyEvent E);
  /// Moves every timer due at or before now into the ready queue.
  void promoteDueTimers();

  VirtualClock &Clock;
  const Profile &Prof;
  std::deque<ReadyEvent> Ready;
  std::vector<Timer> Timers; // Kept sorted on demand; small in practice.
  uint64_t NextSeq = 0;
  uint64_t NextHandle = 1;
  int EventDepth = 0;
  uint64_t CurrentEventStartNs = 0;
  Stats S;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_EVENT_LOOP_H
