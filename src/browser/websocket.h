//===- browser/websocket.h - WebSockets & websockify -------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The browser's only socket facility (§5.3): outgoing full-duplex
/// connections that begin with an HTTP upgrade handshake and then exchange
/// framed messages. Incoming connections are impossible for security
/// reasons. Native socket servers expect plain TCP, so the paper relies on
/// Websockify: a server-side wrapper that accepts WebSocket connections and
/// pipes their payloads into an unmodified TCP service — reproduced here as
/// WebsockifyProxy. Browsers without native WebSockets (IE8) go through the
/// Flash-applet shim from Websockify's JS library, modelled as extra
/// connection latency.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_WEBSOCKET_H
#define DOPPIO_BROWSER_WEBSOCKET_H

#include "browser/profile.h"
#include "browser/simnet.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace browser {

/// Minimal RFC6455-style frame codec (FIN-only frames; no fragmentation).
namespace wsframe {

enum class Opcode : uint8_t { Text = 0x1, Binary = 0x2, Close = 0x8 };

struct Frame {
  Opcode Op = Opcode::Binary;
  std::vector<uint8_t> Payload;
};

/// Serializes one frame. Client-to-server frames are masked with
/// \p MaskKey per the RFC; pass std::nullopt for unmasked (server) frames.
std::vector<uint8_t> encode(const Frame &F,
                            std::optional<uint32_t> MaskKey);

/// Incremental decoder: feed bytes, pop complete frames.
class Decoder {
public:
  void feed(const std::vector<uint8_t> &Data) {
    Buffer.insert(Buffer.end(), Data.begin(), Data.end());
  }

  /// Extracts the next complete frame, or nullopt if more bytes are needed.
  std::optional<Frame> next();

private:
  std::vector<uint8_t> Buffer;
};

} // namespace wsframe

/// Browser-side WebSocket. Performs the HTTP upgrade handshake over a
/// simulated TCP connection, then exchanges masked frames.
class WebSocketClient {
public:
  WebSocketClient(SimNet &Net, const Profile &P) : Net(Net), Prof(P) {}

  /// Opens a connection to \p Port. \p OnOpen fires with true once the
  /// 101 handshake response arrives, or false on refusal/bad handshake.
  void connect(uint16_t Port, std::function<void(bool)> OnOpen);

  void sendBinary(std::vector<uint8_t> Payload);
  void setOnMessage(std::function<void(std::vector<uint8_t>)> H) {
    OnMessage = std::move(H);
  }
  void setOnClose(std::function<void()> H) { OnClose = std::move(H); }
  void close();

  bool isOpen() const { return HandshakeDone && Conn && Conn->isOpen(); }
  /// True if this connection went through the Flash fallback shim.
  bool usedFlashShim() const { return UsedFlashShim; }

private:
  void handleData(const std::vector<uint8_t> &Data);

  SimNet &Net;
  const Profile &Prof;
  TcpConnection *Conn = nullptr;
  bool HandshakeDone = false;
  bool UsedFlashShim = false;
  uint32_t NextMask = 0x9ACF1D2B; // Deterministic mask sequence.
  wsframe::Decoder Decode;
  std::function<void(bool)> PendingOnOpen;
  std::function<void(std::vector<uint8_t>)> OnMessage;
  std::function<void()> OnClose;
};

/// Server-side WebSocket endpoint: accepts the upgrade handshake and
/// exchanges unmasked frames. Used by WebsockifyProxy and by tests.
/// The close handler fires exactly once, whether the connection was closed
/// locally, by a Close frame, or by the peer going away.
class WebSocketServerConn {
public:
  explicit WebSocketServerConn(TcpConnection &Conn);

  void sendBinary(std::vector<uint8_t> Payload);
  void setOnMessage(std::function<void(std::vector<uint8_t>)> H) {
    OnMessage = std::move(H);
  }
  void setOnClose(std::function<void()> H) { OnClose = std::move(H); }
  void close() {
    Conn.close();
    notifyClose();
  }

private:
  void handleData(const std::vector<uint8_t> &Data);
  void notifyClose();

  TcpConnection &Conn;
  bool HandshakeDone = false;
  bool CloseNotified = false;
  std::string HandshakeBuffer;
  wsframe::Decoder Decode;
  std::function<void(std::vector<uint8_t>)> OnMessage;
  std::function<void()> OnClose;
};

/// Websockify (§5.3): listens for WebSocket connections on \p WsPort and
/// pipes their payloads into a plain TCP connection to \p TcpPort, letting
/// unmodified socket servers talk to browsers.
class WebsockifyProxy {
public:
  WebsockifyProxy(SimNet &Net, uint16_t WsPort, uint16_t TcpPort);

  uint64_t bridgedConnections() const { return Bridged; }
  /// Bridges still alive; finished bridges are dropped so a long-running
  /// proxy does not grow without bound.
  size_t activeBridges() const { return Bridges.size(); }

private:
  SimNet &Net;
  uint16_t TcpPort;
  uint64_t Bridged = 0;
  uint64_t NextBridgeId = 0;
  std::map<uint64_t, std::unique_ptr<WebSocketServerConn>> Bridges;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_WEBSOCKET_H
