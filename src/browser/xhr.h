//===- browser/xhr.h - Asynchronous downloads & the web server ---*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// XMLHttpRequest-style asynchronous downloads from the page's origin
/// server. Binary file downloads are restricted to asynchronous APIs (§3.2);
/// browsers with typed arrays receive binary responses directly, while
/// older browsers can only download binary data as a JavaScript string, one
/// byte per code unit (§5.1 "Binary Data in the Browser"). The XHR backend
/// of the Doppio file system (§6.4) sits on top of this to lazily download
/// class files and game assets.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_XHR_H
#define DOPPIO_BROWSER_XHR_H

#include "browser/event_loop.h"
#include "browser/js_string.h"
#include "browser/profile.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace doppio {
namespace browser {

/// The static file tree served by the page's origin web server. Read-only
/// from the browser's point of view.
class StaticServer {
public:
  void addFile(std::string Path, std::vector<uint8_t> Content) {
    Files[std::move(Path)] = std::move(Content);
  }

  const std::vector<uint8_t> *lookup(const std::string &Path) const {
    auto It = Files.find(Path);
    return It == Files.end() ? nullptr : &It->second;
  }

  /// All paths with the given prefix, in sorted order (used to emulate
  /// directory listings, which real servers expose via index files).
  std::vector<std::string> list(const std::string &Prefix) const;

  size_t fileCount() const { return Files.size(); }

private:
  std::map<std::string, std::vector<uint8_t>> Files;
};

/// How the response body travelled: as a typed array or as a JS string
/// (one byte per UTF-16 code unit).
enum class XhrTransport { TypedArray, BinaryString };

/// Asynchronous HTTP GET against the StaticServer.
class Xhr {
public:
  struct Response {
    int Status = 0; // 200 or 404.
    std::vector<uint8_t> Body;
    XhrTransport Transport = XhrTransport::TypedArray;
  };

  Xhr(EventLoop &Loop, const Profile &P, const StaticServer &Server)
      : Loop(Loop), Prof(P), Server(Server) {}

  /// Issues an asynchronous GET for \p Path. \p Done runs as a later event.
  void get(std::string Path, std::function<void(Response)> Done);

  uint64_t requestCount() const { return Requests; }
  uint64_t bytesTransferred() const { return BytesMoved; }

private:
  EventLoop &Loop;
  const Profile &Prof;
  const StaticServer &Server;
  uint64_t Requests = 0;
  uint64_t BytesMoved = 0;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_XHR_H
