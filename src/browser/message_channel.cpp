//===- browser/message_channel.cpp ----------------------------------------==//

#include "browser/message_channel.h"

using namespace doppio;
using namespace doppio::browser;

void MessageChannel::post(js::String Msg) {
  if (!OnMessage)
    return;
  const Profile &P = Loop.profile();
  if (P.SendMessageSynchronous) {
    // IE8: the handler runs inside post, before control returns to the
    // caller. Any code using this channel to "yield" never actually yields.
    ++SyncDispatches;
    Loop.clock().chargeNs(P.Costs.MessageLatencyNs);
    OnMessage(Msg);
    return;
  }
  Loop.clock().chargeNs(P.Costs.MessageLatencyNs);
  Handler &H = OnMessage;
  // Message delivery is a resumption transport (§4.4): it lands on the
  // kernel's Resume lane, ahead of background work but behind input/IO.
  Loop.post(kernel::Lane::Resume, [&H, M = std::move(Msg)] {
    if (H)
      H(M);
  });
}
