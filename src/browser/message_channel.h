//===- browser/message_channel.h - sendMessage emulation ---------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The window messaging mechanism (§4.4 "sendMessage"): string messages
/// posted to a registered global handler, delivered as events at the back of
/// the queue with no setTimeout clamp. In most browsers this is the best
/// available resumption mechanism for suspend-and-resume; in IE8 the
/// dispatch is synchronous (the handler runs inside post), which makes it
/// unusable for that purpose — Doppio must detect this and fall back to
/// setTimeout.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_MESSAGE_CHANNEL_H
#define DOPPIO_BROWSER_MESSAGE_CHANNEL_H

#include "browser/event_loop.h"
#include "browser/js_string.h"

#include <functional>
#include <utility>

namespace doppio {
namespace browser {

/// The window's string-message channel.
class MessageChannel {
public:
  using Handler = std::function<void(const js::String &)>;

  explicit MessageChannel(EventLoop &Loop) : Loop(Loop) {}

  /// Registers the single global message handler.
  void setOnMessage(Handler H) { OnMessage = std::move(H); }

  /// Posts \p Msg. Asynchronous browsers enqueue a delivery event;
  /// IE8-style browsers invoke the handler immediately (reentrantly).
  void post(js::String Msg);

  /// Number of messages that were dispatched synchronously (IE8 semantics);
  /// exposed so tests and the resumption-mechanism probe can observe it.
  uint64_t syncDispatchCount() const { return SyncDispatches; }

private:
  EventLoop &Loop;
  Handler OnMessage;
  uint64_t SyncDispatches = 0;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_MESSAGE_CHANNEL_H
