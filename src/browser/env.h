//===- browser/env.h - The assembled browser environment ---------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One simulated browser tab: the event loop, message channel, storage
/// mechanisms, origin server, XHR, and network, all configured from a
/// Profile. BrowserEnv also owns the memory accounting that models the
/// Safari typed-array garbage-collection bug the paper reports in §7.1 —
/// leaked typed arrays eventually exceed physical memory and every
/// subsequent operation pays a paging penalty.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_ENV_H
#define DOPPIO_BROWSER_ENV_H

#include "browser/event_loop.h"
#include "browser/message_channel.h"
#include "browser/profile.h"
#include "browser/simnet.h"
#include "browser/storage.h"
#include "browser/virtual_clock.h"
#include "browser/xhr.h"

#include <cstdint>
#include <memory>

namespace doppio {
namespace browser {

/// A complete simulated browser tab.
class BrowserEnv {
public:
  explicit BrowserEnv(const Profile &P)
      : Prof(P), Loop(Clock, Prof), Channel(Loop), Storage(Clock, Prof),
        Cookies(Clock, Prof), Net(Loop, Prof.Costs),
        Requests(Loop, Prof, Server) {
    if (Prof.HasIndexedDB)
      Idb = std::make_unique<IndexedDB>(Loop, Prof);
  }

  const Profile &profile() const { return Prof; }
  VirtualClock &clock() { return Clock; }
  EventLoop &loop() { return Loop; }
  /// The tab-wide metrics registry + span store (owned by the loop).
  obs::Registry &metrics() { return Loop.metrics(); }
  const obs::Registry &metrics() const { return Loop.metrics(); }
  MessageChannel &channel() { return Channel; }
  LocalStorage &localStorage() { return Storage; }
  CookieJar &cookies() { return Cookies; }
  /// Null when this browser lacks IndexedDB (Table 2 compatibility).
  IndexedDB *indexedDB() { return Idb.get(); }
  StaticServer &server() { return Server; }
  Xhr &xhr() { return Requests; }
  SimNet &net() { return Net; }

  /// Charges JS-engine compute time: scaled by the profile's engine speed
  /// and by the current paging penalty.
  void chargeCompute(uint64_t Ns) {
    Clock.chargeNs(static_cast<uint64_t>(
        static_cast<double>(Ns) * Prof.Costs.EngineFactor *
        pagingMultiplier()));
  }

  /// Charges non-engine time (I/O bookkeeping); still slowed by paging.
  void chargeIo(uint64_t Ns) {
    Clock.chargeNs(static_cast<uint64_t>(
        static_cast<double>(Ns) * pagingMultiplier()));
  }

  /// Records allocation of a typed array of \p Bytes.
  void noteTypedArrayAlloc(uint64_t Bytes) {
    LiveTypedArrayBytes += Bytes;
    CumulativeTypedArrayBytes += Bytes;
  }

  /// Records that a typed array of \p Bytes became unreachable. On leaking
  /// browsers that garbage is never reclaimed (§7.1) and accumulates as
  /// memory pressure; long-lived allocations are unaffected.
  void noteTypedArrayFree(uint64_t Bytes) {
    LiveTypedArrayBytes -= Bytes;
    if (Prof.LeaksTypedArrays)
      LeakedTypedArrayBytes += Bytes;
  }

  /// Multiplier applied to all charged time once leaked memory exceeds the
  /// pressure threshold: the OS starts paging (§7.1's 6 GB Safari blowup).
  double pagingMultiplier() const {
    if (LeakedTypedArrayBytes <= Prof.MemoryPressureBytes)
      return 1.0;
    double ExcessMb = static_cast<double>(LeakedTypedArrayBytes -
                                          Prof.MemoryPressureBytes) /
                      (1024.0 * 1024.0);
    return 1.0 + ExcessMb * 6.0;
  }

  uint64_t leakedTypedArrayBytes() const { return LeakedTypedArrayBytes; }
  uint64_t liveTypedArrayBytes() const { return LiveTypedArrayBytes; }
  uint64_t cumulativeTypedArrayBytes() const {
    return CumulativeTypedArrayBytes;
  }

private:
  const Profile &Prof;
  VirtualClock Clock;
  EventLoop Loop;
  MessageChannel Channel;
  LocalStorage Storage;
  CookieJar Cookies;
  std::unique_ptr<IndexedDB> Idb;
  SimNet Net;
  StaticServer Server;
  Xhr Requests;
  uint64_t LiveTypedArrayBytes = 0;
  uint64_t LeakedTypedArrayBytes = 0;
  uint64_t CumulativeTypedArrayBytes = 0;
};

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_ENV_H
