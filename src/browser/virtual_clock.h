//===- browser/virtual_clock.h - Deterministic virtual time ------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic monotonic clock for the simulated browser. Components
/// charge virtual nanoseconds for the work they model (JS engine dispatch,
/// storage serialization, network latency); the event loop advances the
/// clock across idle gaps to the next timer. All figures the benchmark
/// harness reports in "browser time" are read from this clock, which makes
/// every per-browser series in the paper's figures exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_VIRTUAL_CLOCK_H
#define DOPPIO_BROWSER_VIRTUAL_CLOCK_H

#include <cassert>
#include <cstdint>

namespace doppio {
namespace browser {

/// Deterministic monotonic nanosecond clock.
class VirtualClock {
public:
  /// Current virtual time in nanoseconds since simulation start.
  uint64_t nowNs() const { return NowNs; }

  /// Advances the clock by \p Ns nanoseconds (work being modelled).
  void chargeNs(uint64_t Ns) { NowNs += Ns; }

  /// Jumps the clock forward to \p TargetNs (idle wait until a timer fires).
  /// \p TargetNs must not be in the past.
  void advanceTo(uint64_t TargetNs) {
    assert(TargetNs >= NowNs && "virtual clock cannot go backwards");
    NowNs = TargetNs;
  }

private:
  uint64_t NowNs = 0;
};

/// Converts milliseconds to virtual nanoseconds.
constexpr uint64_t msToNs(uint64_t Ms) { return Ms * 1000000ull; }

/// Converts microseconds to virtual nanoseconds.
constexpr uint64_t usToNs(uint64_t Us) { return Us * 1000ull; }

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_VIRTUAL_CLOCK_H
