//===- browser/websocket.cpp ----------------------------------------------==//

#include "browser/websocket.h"

#include "browser/wire.h"

#include <cassert>

using namespace doppio;
using namespace doppio::browser;
using namespace doppio::browser::wsframe;

std::vector<uint8_t> wsframe::encode(const Frame &F,
                                     std::optional<uint32_t> MaskKey) {
  std::vector<uint8_t> Out;
  Out.reserve(F.Payload.size() + 14);
  Out.push_back(0x80 | static_cast<uint8_t>(F.Op)); // FIN + opcode.
  uint8_t MaskBit = MaskKey ? 0x80 : 0x00;
  size_t Len = F.Payload.size();
  if (Len < 126) {
    Out.push_back(MaskBit | static_cast<uint8_t>(Len));
  } else if (Len < 65536) {
    Out.push_back(MaskBit | 126);
    wire::putU16(Out, static_cast<uint16_t>(Len));
  } else {
    Out.push_back(MaskBit | 127);
    wire::putU64(Out, Len);
  }
  uint8_t Key[4] = {0, 0, 0, 0};
  if (MaskKey) {
    uint32_t K = *MaskKey;
    for (int I = 0; I != 4; ++I)
      Key[I] = static_cast<uint8_t>(K >> (24 - 8 * I));
    Out.insert(Out.end(), Key, Key + 4);
  }
  for (size_t I = 0; I != Len; ++I)
    Out.push_back(MaskKey ? (F.Payload[I] ^ Key[I % 4]) : F.Payload[I]);
  return Out;
}

std::optional<Frame> Decoder::next() {
  if (Buffer.size() < 2)
    return std::nullopt;
  uint8_t Op = Buffer[0] & 0x0F;
  bool Masked = (Buffer[1] & 0x80) != 0;
  uint64_t Len = Buffer[1] & 0x7F;
  size_t HeaderSize = 2;
  if (Len == 126) {
    if (Buffer.size() < 4)
      return std::nullopt;
    Len = wire::getU16(&Buffer[2]);
    HeaderSize = 4;
  } else if (Len == 127) {
    if (Buffer.size() < 10)
      return std::nullopt;
    Len = wire::getU64(&Buffer[2]);
    HeaderSize = 10;
  }
  size_t MaskOffset = HeaderSize;
  if (Masked)
    HeaderSize += 4;
  if (Buffer.size() < HeaderSize + Len)
    return std::nullopt;
  Frame F;
  F.Op = static_cast<Opcode>(Op);
  F.Payload.reserve(Len);
  for (uint64_t I = 0; I != Len; ++I) {
    uint8_t Byte = Buffer[HeaderSize + I];
    if (Masked)
      Byte ^= Buffer[MaskOffset + I % 4];
    F.Payload.push_back(Byte);
  }
  Buffer.erase(Buffer.begin(), Buffer.begin() + HeaderSize + Len);
  return F;
}

static std::vector<uint8_t> toBytes(const std::string &Text) {
  return std::vector<uint8_t>(Text.begin(), Text.end());
}

void WebSocketClient::connect(uint16_t Port,
                              std::function<void(bool)> OnOpen) {
  assert(!Conn && "WebSocketClient is single-use");
  PendingOnOpen = std::move(OnOpen);
  uint64_t ShimLatency = 0;
  if (!Prof.HasWebSockets) {
    // Websockify's JS library proxies through a Flash applet (§5.3).
    UsedFlashShim = true;
    ShimLatency = Prof.Costs.FlashShimLatencyNs;
  }
  Net.loop().postAfter(
      kernel::Lane::IoCompletion,
      [this, Port] {
        Net.connect(Port, [this](TcpConnection *C) {
          if (!C) {
            if (PendingOnOpen)
              PendingOnOpen(false);
            return;
          }
          Conn = C;
          Conn->setOnData(
              [this](const std::vector<uint8_t> &Data) { handleData(Data); });
          Conn->setOnClose([this] {
            // Drop the pointer first: the connection may be reaped once
            // both sides are closed.
            Conn = nullptr;
            HandshakeDone = false;
            if (OnClose)
              OnClose();
          });
          Conn->send(toBytes("GET / HTTP/1.1\r\n"
                             "Upgrade: websocket\r\n"
                             "Connection: Upgrade\r\n"
                             "Sec-WebSocket-Key: ZG9wcGlvLXJlcHJv\r\n"
                             "\r\n"));
        });
      },
      ShimLatency);
}

void WebSocketClient::handleData(const std::vector<uint8_t> &Data) {
  if (!HandshakeDone) {
    // Expect the 101 response terminated by a blank line.
    std::string Text(Data.begin(), Data.end());
    bool Ok = Text.find("101") != std::string::npos &&
              Text.find("\r\n\r\n") != std::string::npos;
    HandshakeDone = Ok;
    if (PendingOnOpen) {
      auto CB = std::move(PendingOnOpen);
      PendingOnOpen = nullptr;
      CB(Ok);
    }
    if (!Ok && Conn) {
      Conn->close();
      Conn = nullptr;
    }
    return;
  }
  Decode.feed(Data);
  while (auto F = Decode.next()) {
    if (F->Op == Opcode::Close) {
      close();
      if (OnClose)
        OnClose();
      return;
    }
    if (OnMessage)
      OnMessage(std::move(F->Payload));
  }
}

void WebSocketClient::sendBinary(std::vector<uint8_t> Payload) {
  if (!isOpen())
    return;
  Frame F;
  F.Op = Opcode::Binary;
  F.Payload = std::move(Payload);
  NextMask = NextMask * 1664525u + 1013904223u; // Deterministic LCG.
  Conn->send(encode(F, NextMask));
}

void WebSocketClient::close() {
  if (Conn && Conn->isOpen()) {
    Frame F;
    F.Op = Opcode::Close;
    Conn->send(encode(F, NextMask));
    Conn->close();
  }
  Conn = nullptr;
  HandshakeDone = false;
}

WebSocketServerConn::WebSocketServerConn(TcpConnection &Conn) : Conn(Conn) {
  Conn.setOnData(
      [this](const std::vector<uint8_t> &Data) { handleData(Data); });
  Conn.setOnClose([this] { notifyClose(); });
}

void WebSocketServerConn::notifyClose() {
  if (CloseNotified)
    return;
  CloseNotified = true;
  if (OnClose)
    OnClose();
}

void WebSocketServerConn::handleData(const std::vector<uint8_t> &Data) {
  if (!HandshakeDone) {
    HandshakeBuffer.append(Data.begin(), Data.end());
    size_t End = HandshakeBuffer.find("\r\n\r\n");
    if (End == std::string::npos)
      return;
    bool IsUpgrade = HandshakeBuffer.find("Upgrade: websocket") !=
                     std::string::npos;
    if (!IsUpgrade) {
      close();
      return;
    }
    HandshakeDone = true;
    Conn.send(toBytes("HTTP/1.1 101 Switching Protocols\r\n"
                      "Upgrade: websocket\r\n"
                      "Connection: Upgrade\r\n"
                      "\r\n"));
    // Bytes after the handshake (rare in this simulation) would be frames.
    std::string Rest = HandshakeBuffer.substr(End + 4);
    HandshakeBuffer.clear();
    if (!Rest.empty())
      handleData(std::vector<uint8_t>(Rest.begin(), Rest.end()));
    return;
  }
  Decode.feed(Data);
  while (auto F = Decode.next()) {
    if (F->Op == Opcode::Close) {
      close();
      return;
    }
    if (OnMessage)
      OnMessage(std::move(F->Payload));
  }
}

void WebSocketServerConn::sendBinary(std::vector<uint8_t> Payload) {
  Frame F;
  F.Op = Opcode::Binary;
  F.Payload = std::move(Payload);
  Conn.send(encode(F, std::nullopt));
}

WebsockifyProxy::WebsockifyProxy(SimNet &Net, uint16_t WsPort,
                                 uint16_t TcpPort)
    : Net(Net), TcpPort(TcpPort) {
  Net.listen(WsPort, [this](TcpConnection &WsSide) {
    uint64_t Id = NextBridgeId++;
    auto Server = std::make_unique<WebSocketServerConn>(WsSide);
    WebSocketServerConn *Ws = Server.get();
    Bridges.emplace(Id, std::move(Server));
    ++Bridged;
    // Connect the plain-TCP side and pipe payloads in both directions.
    // Messages arriving before the TCP connection completes are buffered.
    auto Pending = std::make_shared<std::vector<std::vector<uint8_t>>>();
    auto TcpSide = std::make_shared<TcpConnection *>(nullptr);
    Ws->setOnMessage([Pending, TcpSide](std::vector<uint8_t> Payload) {
      if (*TcpSide)
        (*TcpSide)->send(std::move(Payload));
      else
        Pending->push_back(std::move(Payload));
    });
    this->Net.connect(
        this->TcpPort, [this, Id, Pending, TcpSide](TcpConnection *C) {
          auto It = Bridges.find(Id);
          if (It == Bridges.end()) {
            // Bridge died before the TCP side came up.
            if (C)
              C->close();
            return;
          }
          WebSocketServerConn *Bridge = It->second.get();
          if (!C) {
            Bridge->close();
            return;
          }
          *TcpSide = C;
          C->setOnData([this, Id](const std::vector<uint8_t> &Data) {
            auto BridgeIt = Bridges.find(Id);
            if (BridgeIt != Bridges.end())
              BridgeIt->second->sendBinary(Data);
          });
          C->setOnClose([this, Id, TcpSide] {
            *TcpSide = nullptr;
            auto BridgeIt = Bridges.find(Id);
            if (BridgeIt != Bridges.end())
              BridgeIt->second->close();
          });
          for (auto &Buffered : *Pending)
            C->send(std::move(Buffered));
          Pending->clear();
        });
    Ws->setOnClose([this, Id, TcpSide] {
      if (*TcpSide) {
        (*TcpSide)->close();
        *TcpSide = nullptr;
      }
      // Deferred: we may be inside one of the bridge's own callbacks.
      // Teardown is cleanup — Background lane.
      this->Net.loop().post(kernel::Lane::Background,
                            [this, Id] { Bridges.erase(Id); });
    });
  });
}
