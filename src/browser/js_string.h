//===- browser/js_string.h - JavaScript UTF-16 string semantics -*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JavaScript strings are sequences of UTF-16 code units. Some browsers
/// validate strings (rejecting lone surrogates), which gates Doppio's packed
/// "binary string" format that stores 2 bytes of data per code unit (§5.1 of
/// the paper). This module provides the string type and the validity and
/// conversion helpers the rest of the simulated browser relies on.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_JS_STRING_H
#define DOPPIO_BROWSER_JS_STRING_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace doppio {
namespace js {

/// A JavaScript string: a sequence of UTF-16 code units. Unlike C++
/// std::u16string semantics, JS imposes no validity requirement unless the
/// engine chooses to check (see Profile::ValidatesStrings).
using String = std::u16string;

/// Widens an ASCII (or Latin-1) byte string into a JS string, one code unit
/// per byte.
String fromAscii(std::string_view Text);

/// Narrows a JS string to bytes, keeping the low 8 bits of every code unit.
/// This is the lossy inverse of fromAscii.
std::string toAscii(const String &Text);

/// Returns true if \p Text contains no lone surrogate code units, i.e. it is
/// a well-formed UTF-16 sequence. Validating browsers refuse to round-trip
/// strings for which this is false.
bool isValidUtf16(const String &Text);

/// Number of bytes a JS engine stores for \p Text (2 per code unit).
inline size_t byteSize(const String &Text) { return Text.size() * 2; }

/// Returns true if \p Unit is a high (leading) surrogate.
inline bool isHighSurrogate(char16_t Unit) {
  return Unit >= 0xD800 && Unit <= 0xDBFF;
}

/// Returns true if \p Unit is a low (trailing) surrogate.
inline bool isLowSurrogate(char16_t Unit) {
  return Unit >= 0xDC00 && Unit <= 0xDFFF;
}

} // namespace js
} // namespace doppio

#endif // DOPPIO_BROWSER_JS_STRING_H
