//===- browser/xhr.cpp ----------------------------------------------------==//

#include "browser/xhr.h"

using namespace doppio;
using namespace doppio::browser;

std::vector<std::string> StaticServer::list(const std::string &Prefix) const {
  std::vector<std::string> Result;
  for (auto It = Files.lower_bound(Prefix); It != Files.end(); ++It) {
    if (It->first.compare(0, Prefix.size(), Prefix) != 0)
      break;
    Result.push_back(It->first);
  }
  return Result;
}

void Xhr::get(std::string Path, std::function<void(Response)> Done) {
  ++Requests;
  const std::vector<uint8_t> *File = Server.lookup(Path);
  const CostModel &Costs = Prof.Costs;
  if (!File) {
    Loop.scheduleAfter([Done = std::move(Done)] { Done({404, {}, {}}); },
                       Costs.XhrLatencyNs);
    return;
  }
  Response R;
  R.Status = 200;
  R.Body = *File;
  // Browsers without typed arrays receive the body as a JS string, one byte
  // per 16-bit code unit: twice the memory traffic and an extra decode pass,
  // which the cost model reflects.
  R.Transport = Prof.HasTypedArrays ? XhrTransport::TypedArray
                                    : XhrTransport::BinaryString;
  uint64_t Bytes = R.Body.size();
  BytesMoved += Bytes;
  uint64_t Latency = Costs.XhrLatencyNs + Costs.XhrPerByteNs * Bytes;
  if (R.Transport == XhrTransport::BinaryString)
    Latency += Costs.XhrPerByteNs * Bytes; // String transcoding overhead.
  Loop.scheduleAfter(
      [Done = std::move(Done), R = std::move(R)]() mutable {
        Done(std::move(R));
      },
      Latency);
}
