//===- browser/profile.h - Browser feature & cost profiles -------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Browser diversity is one of the four impedance mismatches the paper
/// identifies (§1): each browser differs in the features it supports, in
/// outright bugs, and in performance. A Profile captures the feature matrix
/// and cost model of one of the six browsers the paper evaluates (Chrome 28,
/// Firefox 22, Safari 6, Opera 12, IE8, IE10). All feature flags correspond
/// to differences the paper calls out explicitly:
///
///  - HasTypedArrays (§5.1 "Binary Data in the Browser", §5.2)
///  - HasSetImmediate, SendMessageSynchronous (§4.4, IE8's synchronous
///    sendMessage and IE10's setImmediate)
///  - ValidatesStrings (§5.1, gates the 2-bytes-per-char packed string)
///  - HasIndexedDB / storage availability (Table 2)
///  - HasWebSockets (§5.3, Flash fallback via Websockify otherwise)
///  - LeaksTypedArrays (§7.1, the Safari GC bug the authors reported)
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_BROWSER_PROFILE_H
#define DOPPIO_BROWSER_PROFILE_H

#include "browser/virtual_clock.h"

#include <cstdint>
#include <string>
#include <vector>

namespace doppio {
namespace browser {

/// Deterministic virtual-time cost parameters for one browser. These drive
/// the per-browser series of the paper's figures; DESIGN.md documents the
/// calibration rationale.
struct CostModel {
  /// Relative JS engine speed (1.0 = Chrome 28, the fastest in the paper).
  double EngineFactor = 1.0;
  /// Latency of delivering a sendMessage event to the back of the queue.
  uint64_t MessageLatencyNs = usToNs(60);
  /// Latency of a setImmediate resumption (IE10 only).
  uint64_t ImmediateLatencyNs = usToNs(20);
  /// Fixed per-request latency of an XHR download.
  uint64_t XhrLatencyNs = usToNs(500);
  /// Additional XHR latency per transferred byte.
  uint64_t XhrPerByteNs = 4;
  /// Cost per byte of serializing to a string-based storage mechanism.
  uint64_t StoragePerByteNs = 12;
  /// Per-operation latency of the asynchronous IndexedDB store.
  uint64_t IdbLatencyNs = usToNs(400);
  /// Round-trip latency of an in-simulation TCP/WebSocket hop.
  uint64_t NetLatencyNs = usToNs(300);
  /// Extra per-connection latency when falling back to the Flash-based
  /// WebSocket shim (browsers without native WebSockets, §5.3).
  uint64_t FlashShimLatencyNs = msToNs(8);
};

/// Feature and cost description of one simulated browser.
struct Profile {
  std::string Name;

  // Execution model.
  /// Events charging more virtual time than this are killed by the
  /// browser's watchdog ("stop script" dialog, §3.1).
  uint64_t WatchdogLimitNs = msToNs(5000);
  /// Minimum delay the setTimeout specification clamps to (§4.4: 4 ms).
  uint64_t MinTimeoutClampNs = msToNs(4);
  /// IE10 exposes setImmediate, the ideal resumption mechanism (§4.4).
  bool HasSetImmediate = false;
  /// IE8 dispatches sendMessage synchronously, breaking its use for
  /// suspend-and-resume (§4.4).
  bool SendMessageSynchronous = false;

  // Binary data.
  /// Typed arrays are available for binary data and the unmanaged heap.
  bool HasTypedArrays = true;
  /// The engine validates UTF-16 strings; lone surrogates cannot round-trip
  /// through string storage, so packed binary strings fall back to one byte
  /// per character (§5.1).
  bool ValidatesStrings = false;
  /// Safari 6 never garbage-collects typed arrays (§7.1 footnote); leaked
  /// memory eventually causes paging which slows every operation.
  bool LeaksTypedArrays = false;
  /// Typed-array bytes the simulated machine tolerates before paging.
  uint64_t MemoryPressureBytes = 512ull << 20;

  // Storage (Table 2).
  bool HasLocalStorage = true;
  uint64_t LocalStorageQuotaBytes = 5ull << 20; // 5 MB of UTF-16 data.
  bool HasCookies = true;
  uint64_t CookieQuotaBytes = 4096; // 4 KB.
  bool HasIndexedDB = false;

  // Networking.
  bool HasWebSockets = true;

  CostModel Costs;
};

/// Returns the six browser profiles evaluated in the paper, in the order
/// used by its figures: Chrome, Firefox, Safari, Opera, IE10, IE8.
const std::vector<Profile> &allProfiles();

const Profile &chromeProfile();
const Profile &firefoxProfile();
const Profile &safariProfile();
const Profile &operaProfile();
const Profile &ie10Profile();
const Profile &ie8Profile();

/// Looks a profile up by name ("chrome", "firefox", ...). Returns null if
/// unknown.
const Profile *findProfile(const std::string &Name);

} // namespace browser
} // namespace doppio

#endif // DOPPIO_BROWSER_PROFILE_H
