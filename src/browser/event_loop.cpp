//===- browser/event_loop.cpp ---------------------------------------------==//

#include "browser/event_loop.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::browser;
using doppio::kernel::Lane;

void EventLoop::enqueueTask(Event Fn, EventKind Kind) {
  K.post(Kind == EventKind::Input ? Lane::Input : Lane::Background,
         std::move(Fn));
}

uint64_t EventLoop::setTimeout(Event Fn, uint64_t DelayNs, EventKind Kind) {
  // The HTML timer specification imposes a minimum delay; the paper (§4.4)
  // identifies this 4 ms clamp as what makes setTimeout-based resumption
  // unacceptably slow.
  uint64_t Effective = std::max(DelayNs, Prof.MinTimeoutClampNs);
  return K.postAfter(Kind == EventKind::Input ? Lane::Input : Lane::Timer,
                     std::move(Fn), Effective);
}

void EventLoop::clearTimeout(uint64_t Handle) { K.cancelTimer(Handle); }

void EventLoop::scheduleAfter(Event Fn, uint64_t DelayNs, EventKind Kind) {
  K.postAfter(Kind == EventKind::Input ? Lane::Input : Lane::IoCompletion,
              std::move(Fn), DelayNs);
}

bool EventLoop::trySetImmediate(Event Fn) {
  if (!Prof.HasSetImmediate)
    return false;
  Clock.chargeNs(Prof.Costs.ImmediateLatencyNs);
  K.post(Lane::Resume, std::move(Fn));
  return true;
}

void EventLoop::post(kernel::Lane L, Event Fn, kernel::CancelToken Cancel) {
  K.post(L, std::move(Fn), std::move(Cancel));
}

uint64_t EventLoop::postAfter(kernel::Lane L, Event Fn, uint64_t DelayNs,
                              kernel::CancelToken Cancel) {
  return K.postAfter(L, std::move(Fn), DelayNs, std::move(Cancel));
}

bool EventLoop::runOne() {
  std::optional<kernel::Kernel::Work> W = K.next();
  if (!W)
    return false;
  dispatch(std::move(*W));
  return true;
}

void EventLoop::run() {
  while (runOne()) {
  }
}

void EventLoop::dispatch(kernel::Kernel::Work W) {
  assert(EventDepth == 0 && "browser events never nest");
  uint64_t Start = Clock.nowNs();
  if (W.L == Lane::Input) {
    uint64_t Latency = Start > W.ReadyNs ? Start - W.ReadyNs : 0;
    S.MaxInputLatencyNs = std::max(S.MaxInputLatencyNs, Latency);
  }
  CurrentEventStartNs = Start;
  ++EventDepth;
  W.Fn();
  --EventDepth;
  uint64_t End = Clock.nowNs();
  uint64_t DurationNs = End - Start;
  ++S.EventsRun;
  S.TotalEventNs += DurationNs;
  S.MaxEventNs = std::max(S.MaxEventNs, DurationNs);
  if (DurationNs > Prof.WatchdogLimitNs)
    ++S.WatchdogKills;
  K.noteDispatched(W, Start, End);
}

uint64_t EventLoop::currentEventElapsedNs() const {
  assert(EventDepth > 0 && "no event is running");
  return Clock.nowNs() - CurrentEventStartNs;
}

bool EventLoop::currentEventOverLimit() const {
  return currentEventElapsedNs() > Prof.WatchdogLimitNs;
}
