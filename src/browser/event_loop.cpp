//===- browser/event_loop.cpp ---------------------------------------------==//

#include "browser/event_loop.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::browser;

void EventLoop::enqueueTask(Event Fn, EventKind Kind) {
  Ready.push_back({std::move(Fn), Kind, Clock.nowNs()});
}

uint64_t EventLoop::setTimeout(Event Fn, uint64_t DelayNs, EventKind Kind) {
  // The HTML timer specification imposes a minimum delay; the paper (§4.4)
  // identifies this 4 ms clamp as what makes setTimeout-based resumption
  // unacceptably slow.
  uint64_t Effective = std::max(DelayNs, Prof.MinTimeoutClampNs);
  uint64_t Handle = NextHandle++;
  Timers.push_back(
      {Clock.nowNs() + Effective, NextSeq++, Handle, std::move(Fn), Kind});
  return Handle;
}

void EventLoop::clearTimeout(uint64_t Handle) {
  for (Timer &T : Timers)
    if (T.Handle == Handle)
      T.Cancelled = true;
}

void EventLoop::scheduleAfter(Event Fn, uint64_t DelayNs, EventKind Kind) {
  uint64_t Handle = NextHandle++;
  (void)Handle;
  Timers.push_back(
      {Clock.nowNs() + DelayNs, NextSeq++, Handle, std::move(Fn), Kind});
}

bool EventLoop::trySetImmediate(Event Fn) {
  if (!Prof.HasSetImmediate)
    return false;
  Clock.chargeNs(Prof.Costs.ImmediateLatencyNs);
  enqueueTask(std::move(Fn));
  return true;
}

void EventLoop::promoteDueTimers() {
  uint64_t Now = Clock.nowNs();
  // Stable order: due time, then insertion sequence.
  std::stable_sort(Timers.begin(), Timers.end(),
                   [](const Timer &A, const Timer &B) {
                     if (A.DueNs != B.DueNs)
                       return A.DueNs < B.DueNs;
                     return A.Seq < B.Seq;
                   });
  size_t I = 0;
  for (; I != Timers.size() && Timers[I].DueNs <= Now; ++I) {
    if (Timers[I].Cancelled)
      continue;
    Ready.push_back({std::move(Timers[I].Fn), Timers[I].Kind,
                     Timers[I].DueNs});
  }
  Timers.erase(Timers.begin(), Timers.begin() + I);
}

bool EventLoop::runOne() {
  promoteDueTimers();
  if (Ready.empty()) {
    // Idle: jump to the next timer, if any.
    auto Next = std::min_element(Timers.begin(), Timers.end(),
                                 [](const Timer &A, const Timer &B) {
                                   if (A.Cancelled != B.Cancelled)
                                     return !A.Cancelled;
                                   if (A.DueNs != B.DueNs)
                                     return A.DueNs < B.DueNs;
                                   return A.Seq < B.Seq;
                                 });
    if (Next == Timers.end() || Next->Cancelled)
      return false;
    Clock.advanceTo(std::max(Clock.nowNs(), Next->DueNs));
    promoteDueTimers();
    if (Ready.empty())
      return false;
  }
  ReadyEvent E = std::move(Ready.front());
  Ready.pop_front();
  dispatch(std::move(E));
  return true;
}

void EventLoop::run() {
  while (runOne()) {
  }
}

void EventLoop::dispatch(ReadyEvent E) {
  assert(EventDepth == 0 && "browser events never nest");
  uint64_t Start = Clock.nowNs();
  if (E.Kind == EventKind::Input) {
    uint64_t Latency = Start - E.ReadyAtNs;
    S.MaxInputLatencyNs = std::max(S.MaxInputLatencyNs, Latency);
  }
  CurrentEventStartNs = Start;
  ++EventDepth;
  E.Fn();
  --EventDepth;
  uint64_t DurationNs = Clock.nowNs() - Start;
  ++S.EventsRun;
  S.TotalEventNs += DurationNs;
  S.MaxEventNs = std::max(S.MaxEventNs, DurationNs);
  if (DurationNs > Prof.WatchdogLimitNs)
    ++S.WatchdogKills;
}

uint64_t EventLoop::currentEventElapsedNs() const {
  assert(EventDepth > 0 && "no event is running");
  return Clock.nowNs() - CurrentEventStartNs;
}

bool EventLoop::currentEventOverLimit() const {
  return currentEventElapsedNs() > Prof.WatchdogLimitNs;
}
