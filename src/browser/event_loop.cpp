//===- browser/event_loop.cpp ---------------------------------------------==//

#include "browser/event_loop.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::browser;
using doppio::kernel::Lane;

void EventLoop::enqueueTask(Event Fn, EventKind Kind) {
  K.post(Kind == EventKind::Input ? Lane::Input : Lane::Background,
         std::move(Fn));
}

bool TimerHandle::cancel() {
  if (!armed())
    return false;
  // Belt and braces: the heap entry (O(1) when still pending) and the
  // token (stops a timer already promoted into its lane).
  Loop->cancelTimer(Handle);
  Src.cancel();
  return true;
}

TimerHandle EventLoop::setTimer(Event Fn, uint64_t DelayNs, EventKind Kind) {
  // The HTML timer specification imposes a minimum delay; the paper (§4.4)
  // identifies this 4 ms clamp as what makes setTimeout-based resumption
  // unacceptably slow.
  uint64_t Effective = std::max(DelayNs, Prof.MinTimeoutClampNs);
  return postTimer(Kind == EventKind::Input ? Lane::Input : Lane::Timer,
                   std::move(Fn), Effective);
}

TimerHandle EventLoop::postTimer(kernel::Lane L, Event Fn, uint64_t DelayNs) {
  kernel::CancelSource Src;
  auto Fired = std::make_shared<bool>(false);
  uint64_t Handle = K.postAfter(
      L,
      [Fired, Fn = std::move(Fn)]() {
        *Fired = true;
        Fn();
      },
      DelayNs, Src.token());
  return TimerHandle(this, Handle, std::move(Src), std::move(Fired));
}

uint64_t EventLoop::setTimeout(Event Fn, uint64_t DelayNs, EventKind Kind) {
  // Integer shim kept for the JS-visible surface; the clamp lives in
  // setTimer now. Dropping the TimerHandle does not cancel, so the raw id
  // remains valid for clearTimeout.
  return setTimer(std::move(Fn), DelayNs, Kind).id();
}

void EventLoop::clearTimeout(uint64_t Handle) { K.cancelTimer(Handle); }

void EventLoop::scheduleAfter(Event Fn, uint64_t DelayNs, EventKind Kind) {
  K.postAfter(Kind == EventKind::Input ? Lane::Input : Lane::IoCompletion,
              std::move(Fn), DelayNs);
}

bool EventLoop::trySetImmediate(Event Fn) {
  if (!Prof.HasSetImmediate)
    return false;
  Clock.chargeNs(Prof.Costs.ImmediateLatencyNs);
  K.post(Lane::Resume, std::move(Fn));
  return true;
}

void EventLoop::post(kernel::Lane L, Event Fn, kernel::CancelToken Cancel) {
  K.post(L, std::move(Fn), std::move(Cancel));
}

void EventLoop::post(kernel::Lane L, rt::Continuation Cont,
                     kernel::CancelToken Cancel) {
  K.post(L, std::move(Cont), std::move(Cancel));
}

uint64_t EventLoop::postAfter(kernel::Lane L, Event Fn, uint64_t DelayNs,
                              kernel::CancelToken Cancel) {
  return K.postAfter(L, std::move(Fn), DelayNs, std::move(Cancel));
}

bool EventLoop::runOne() {
  std::optional<kernel::Kernel::Work> W = K.next();
  if (!W)
    return false;
  dispatch(std::move(*W));
  return true;
}

bool EventLoop::runOne(uint64_t HorizonNs) {
  std::optional<kernel::Kernel::Work> W = K.next(HorizonNs);
  if (!W)
    return false;
  dispatch(std::move(*W));
  return true;
}

void EventLoop::run() {
  while (runOne()) {
  }
}

size_t EventLoop::runReadyUntil(uint64_t HorizonNs) {
  size_t N = 0;
  while (runOne(HorizonNs))
    ++N;
  return N;
}

void EventLoop::dispatch(kernel::Kernel::Work W) {
  assert(EventDepth == 0 && "browser events never nest");
  uint64_t Start = Clock.nowNs();
  if (W.L == Lane::Input) {
    uint64_t Latency = Start > W.ReadyNs ? Start - W.ReadyNs : 0;
    MaxInputLatencyNsG->noteMax(static_cast<int64_t>(Latency));
  }
  // Attribute the scheduler wait to the causal span *before* running the
  // callback: the callback may be the one that closes the span, and a
  // closed span no longer accepts queue delay.
  if (W.Span)
    Reg.spans().addQueueDelay(W.Span, Start > W.ReadyNs ? Start - W.ReadyNs
                                                        : 0);
  CurrentEventStartNs = Start;
  ++EventDepth;
  {
    // Restore the span that was current when the work was posted, so the
    // causal id follows the operation across the async hop.
    obs::SpanStore::Scope SpanScope(Reg.spans(), W.Span);
    W.Fn();
  }
  --EventDepth;
  uint64_t End = Clock.nowNs();
  uint64_t DurationNs = End - Start;
  EventsRunC->inc();
  TotalEventNsC->inc(DurationNs);
  MaxEventNsG->noteMax(static_cast<int64_t>(DurationNs));
  if (DurationNs > Prof.WatchdogLimitNs)
    WatchdogKillsC->inc();
  K.noteDispatched(W, Start, End);
}

EventLoop::Stats EventLoop::stats() const {
  Stats S;
  S.EventsRun = EventsRunC->value();
  S.WatchdogKills = WatchdogKillsC->value();
  S.MaxEventNs = static_cast<uint64_t>(MaxEventNsG->value());
  S.TotalEventNs = TotalEventNsC->value();
  S.MaxInputLatencyNs = static_cast<uint64_t>(MaxInputLatencyNsG->value());
  return S;
}

void EventLoop::resetStats() {
  EventsRunC->reset();
  WatchdogKillsC->reset();
  TotalEventNsC->reset();
  MaxEventNsG->reset();
  MaxInputLatencyNsG->reset();
}

uint64_t EventLoop::currentEventElapsedNs() const {
  assert(EventDepth > 0 && "no event is running");
  return Clock.nowNs() - CurrentEventStartNs;
}

bool EventLoop::currentEventOverLimit() const {
  return currentEventElapsedNs() > Prof.WatchdogLimitNs;
}
