//===- browser/js_string.cpp ----------------------------------------------==//

#include "browser/js_string.h"

using namespace doppio;

js::String js::fromAscii(std::string_view Text) {
  String Result;
  Result.reserve(Text.size());
  for (char C : Text)
    Result.push_back(static_cast<char16_t>(static_cast<unsigned char>(C)));
  return Result;
}

std::string js::toAscii(const String &Text) {
  std::string Result;
  Result.reserve(Text.size());
  for (char16_t Unit : Text)
    Result.push_back(static_cast<char>(Unit & 0xFF));
  return Result;
}

bool js::isValidUtf16(const String &Text) {
  for (size_t I = 0, E = Text.size(); I != E; ++I) {
    char16_t Unit = Text[I];
    if (isHighSurrogate(Unit)) {
      if (I + 1 == E || !isLowSurrogate(Text[I + 1]))
        return false;
      ++I; // Skip the paired low surrogate.
      continue;
    }
    if (isLowSurrogate(Unit))
      return false; // Lone low surrogate.
  }
  return true;
}
