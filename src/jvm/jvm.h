//===- jvm/jvm.h - The DoppioJVM embedder facade (§6, §6.8) -------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level DoppioJVM object: "DoppioJVM also makes it possible for a
/// JavaScript program to invoke the JVM much as one would invoke Java on
/// the command line via an API: the programmer specifies the classpath,
/// main class, and arguments, and optionally, custom functions to redirect
/// standard input and output" (§6.8). It owns every subsystem the JVM sits
/// on: the Doppio execution environment (suspender + thread pool + async
/// bridge), the file system, the unmanaged heap (for sun.misc.Unsafe,
/// §6.5), the class loader, the native-method registry, the object arena
/// (standing in for the JavaScript garbage collector of §6.7), and the
/// string intern table.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_JVM_H
#define DOPPIO_JVM_JVM_H

#include "doppio/fs.h"
#include "doppio/heap.h"
#include "doppio/obs/metrics.h"
#include "doppio/threads.h"
#include "jvm/classfile/builder.h"
#include "jvm/classloader.h"
#include "jvm/exec_profile.h"
#include "jvm/natives.h"

#include <functional>
#include <memory>
#include <unordered_map>

namespace doppio {
namespace jvm {

class JvmThread;
struct CheckpointAccess;

/// Construction options.
struct JvmOptions {
  ExecutionMode Mode = ExecutionMode::DoppioJS;
  /// Unmanaged heap size (§5.2/§6.5).
  uint32_t HeapBytes = 4u << 20;
  /// Directories searched for class files.
  std::vector<std::string> Classpath = {"/classes"};
  /// Virtual JS-engine cost per interpreted bytecode (DoppioJS mode; the
  /// browser profile's engine factor scales it further).
  uint64_t OpCostNs = 64;
  /// Virtual cost per bytecode for the native-interpreter baseline, used
  /// when benchmarks compare browser virtual time against HotSpot
  /// (DESIGN.md: calibrated so Chrome lands in the paper's 24-42x band).
  uint64_t NativeOpCostNs = 2;
  /// Virtual JS-engine cost per *quickened* dispatched bytecode: with
  /// threaded dispatch and pre-resolved operands the modeled engine does
  /// far less work per instruction (DESIGN.md §18; "Mind the Gap"
  /// attributes most interpreter overhead to dispatch + redundant
  /// checks). Software-long surcharges still charge OpCostNs — the
  /// intrinsic Long64 work does not get faster.
  uint64_t QuickOpCostNs = 24;
  /// How the interpreter executes: verifier trust, suspend-check
  /// placement, quickening, inline caches — one struct, one parser,
  /// named presets (exec_profile.h). Environment overrides
  /// (DOPPIO_JVM_PROFILE plus the legacy DOPPIO_JVM_TRUST_VERIFIER /
  /// DOPPIO_JVM_SUSPEND_PLACEMENT) are applied at Jvm construction.
  ExecProfile Exec = ExecProfile::verified();
};

/// Statistics the evaluation harness reads.
struct JvmStats {
  uint64_t OpsExecuted = 0;
  uint64_t MethodInvocations = 0;
  uint64_t ObjectsAllocated = 0;
  uint64_t SuspendYields = 0;
  uint64_t ContextSwitchPoints = 0;
  /// High-water mark of the per-thread dynamic between-checks counter:
  /// bytecodes dispatched between two executed suspend checks. In Placed
  /// mode this must never exceed ClassLoader::provenBoundMax() — debug
  /// builds assert it, the fig4 ablation and analysis tests verify it.
  uint64_t MaxOpsBetweenChecks = 0;
  /// Constant-pool sites rewritten in place to their _quick form
  /// (DESIGN.md §18).
  uint64_t QuickenedSites = 0;
};

/// One DoppioJVM instance inside one browser tab.
class Jvm {
public:
  /// \p Fs is the Doppio file system the JVM mounts (class path, program
  /// I/O). The built-in class library is installed immediately.
  Jvm(browser::BrowserEnv &Env, rt::fs::FileSystem &Fs, rt::Process &Proc,
      JvmOptions Options = JvmOptions());
  ~Jvm();

  // Subsystems.
  browser::BrowserEnv &env() { return Env; }
  rt::fs::FileSystem &fs() { return Fs; }
  rt::Process &process() { return Proc; }
  rt::Suspender &suspender() { return Susp; }
  rt::ThreadPool &pool() { return Pool; }
  rt::UnmanagedHeap &heap() { return Heap; }
  ClassLoader &loader() { return Loader; }
  const JvmOptions &options() const { return Options; }
  ExecutionMode mode() const { return Options.Mode; }
  /// The execution profile this VM runs under (exec_profile.h).
  const ExecProfile &profile() const { return Options.Exec; }
  // Thin back-compat shims over profile() — pre-ExecProfile call sites.
  /// True when verified methods may run check-elided (DESIGN.md §12).
  bool trustVerifier() const { return Options.Exec.TrustVerifier; }
  /// Suspend-check placement this VM runs under (DESIGN.md §17).
  SuspendCheckMode suspendCheckMode() const {
    return Options.Exec.SuspendChecks;
  }
  JvmStats &stats() { return Stats; }

  // Suspend-check accounting (obs cells jvm.suspend_checks_executed /
  // jvm.suspend_checks_elided, resolved once at construction). The
  // interpreter calls these on its hot path.
  /// Records one executed check that closed a span of \p Span dispatched
  /// bytecodes; debug builds assert the span stays within the proven
  /// bound in Placed mode.
  void noteSuspendCheckExecuted(uint64_t Span);
  void noteSuspendCheckElided() { SuspendChecksElidedC->inc(); }
  uint64_t suspendChecksExecuted() const {
    return SuspendChecksExecutedC->value();
  }
  uint64_t suspendChecksElided() const {
    return SuspendChecksElidedC->value();
  }

  // Inline-cache accounting (obs cells jvm.ic.hits / jvm.ic.misses,
  // resolved once at construction; DESIGN.md §18).
  void noteIcHit() { IcHitsC->inc(); }
  void noteIcMiss() { IcMissesC->inc(); }
  uint64_t icHits() const { return IcHitsC->value(); }
  uint64_t icMisses() const { return IcMissesC->value(); }

  // Native registry (§6.3). Key: "pkg/Cls.name(desc)".
  void registerNative(const std::string &ClassName, const std::string &Name,
                      const std::string &Desc, NativeFn Fn);
  NativeFn resolveNative(const Klass &K, const Method &M) const;

  // Object allocation: the arena stands in for the JS garbage collector
  // (§6.7) — objects live until the Jvm dies. DESIGN.md records this
  // substitution.
  Object *allocObject(Klass *K);
  ArrayObject *allocArray(Klass *ArrayKlass, const std::string &ElemDesc,
                          int32_t Length);
  /// Allocates an array, synthesizing its array class ("[I", "[Lx;").
  ArrayObject *allocArrayOf(const std::string &ElemDesc, int32_t Length);

  // String support: java.lang.String objects backed by char arrays.
  Object *internString(const std::string &Utf8);
  Object *newString(const std::string &Utf8);
  /// Reads a java.lang.String's characters back; "<null>" for null.
  std::string stringValue(Object *Str) const;

  /// The java.lang.Class mirror of \p K (created lazily).
  Object *mirrorOf(Klass *K);
  /// Inverse of mirrorOf; null if \p Mirror is not a mirror.
  Klass *mirroredClass(Object *Mirror) const;

  /// Identity hash codes (stable per object).
  int32_t identityHash(Object *O);

  /// Constructs a Throwable instance of \p ClassName with \p Message
  /// (fields set directly; constructors are not run — matches how the VM
  /// itself raises errors).
  Object *makeThrowable(const std::string &ClassName,
                        const std::string &Message);

  // Threads (§6.2): the JVM thread table.
  JvmThread *threadForTid(int32_t Tid);
  JvmThread *threadForObject(Object *ThreadObj);
  /// Spawns a JVM thread whose first frame invokes \p M with \p Args.
  int32_t spawnThread(Method *M, std::vector<Value> Args,
                      Object *ThreadObj);
  int32_t currentTid() const { return Pool.currentThread(); }

  // §6.8: JavaScript interop. The embedder may install an eval hook; the
  // doppio/JS.eval native routes through it.
  void setJsEval(std::function<std::string(const std::string &)> Hook) {
    JsEval = std::move(Hook);
  }
  const std::function<std::string(const std::string &)> &jsEval() const {
    return JsEval;
  }

  /// §6.8 command-line-style entry: loads \p MainClass, runs
  /// main([Ljava/lang/String;)V on a fresh thread. \p Done receives the
  /// exit code (0, or 1 after an uncaught exception / missing main).
  void runMain(const std::string &MainClass,
               const std::vector<std::string> &Args,
               std::function<void(int)> Done);

  /// runMain + drive the event loop until the JVM is idle. For tests,
  /// examples, and benchmarks.
  int runMainToCompletion(const std::string &MainClass,
                          const std::vector<std::string> &Args);

  /// Charges accumulated interpreter work to the browser's virtual clock
  /// (DoppioJS mode). Called by the interpreter at slice boundaries.
  /// \p DispatchOps are dispatched bytecodes, charged at the effective
  /// per-dispatch cost (QuickOpCostNs under a quickening profile,
  /// OpCostNs otherwise). \p ExtraOps are surcharge units (software
  /// Long64 arithmetic, §8), always charged at OpCostNs — quickening
  /// does not speed up the intrinsic long emulation.
  void flushOpCharges(uint64_t DispatchOps, uint64_t ExtraOps);

  /// Exit code recorded by the main thread (-1 while running).
  int exitCode() const { return ExitCode; }
  void setExitCode(int Code) { ExitCode = Code; }

  /// Called by the interpreter when a thread terminates: wakes join
  /// waiters, and completes the runMain callback for the main thread.
  void noteThreadFinished(JvmThread &T);

private:
  /// The checkpoint serializer (checkpoint.cpp) reads and rebuilds the
  /// arena, tables, and thread list wholesale (DESIGN.md §16).
  friend struct CheckpointAccess;

  browser::BrowserEnv &Env;
  rt::fs::FileSystem &Fs;
  rt::Process &Proc;
  JvmOptions Options;
  rt::Suspender Susp;
  rt::ThreadPool Pool;
  rt::UnmanagedHeap Heap;
  ClassLoader Loader;
  JvmStats Stats;
  obs::Counter *SuspendChecksExecutedC = nullptr;
  obs::Counter *SuspendChecksElidedC = nullptr;
  obs::Counter *IcHitsC = nullptr;
  obs::Counter *IcMissesC = nullptr;
  /// Resolved once after env overrides: QuickOpCostNs when the profile
  /// quickens, OpCostNs otherwise.
  uint64_t DispatchCostNs = 0;

  std::map<std::string, NativeFn> NativeRegistry;
  std::vector<std::unique_ptr<Object>> Arena;
  std::unordered_map<std::string, Object *> InternedStrings;
  std::unordered_map<Klass *, Object *> Mirrors;
  std::unordered_map<Object *, Klass *> MirrorToKlass;
  std::unordered_map<Object *, int32_t> IdentityHashes;
  /// Insertion counter behind identityHash: hashes must survive a
  /// checkpoint bit-identically, so the sequence position is explicit
  /// state rather than IdentityHashes.size().
  int32_t NextIdentityHash = 0;
  std::unordered_map<Object *, int32_t> ThreadObjToTid;
  std::vector<JvmThread *> Threads; // Indexed by tid; owned by the pool.
  std::function<std::string(const std::string &)> JsEval;
  int ExitCode = -1;
  int32_t MainTid = -1;
  std::function<void(int)> MainDone;
};

/// Installs the built-in class library (jcl.cpp): java/lang core,
/// java/io streams over the Doppio fs, sun/misc/Unsafe over the heap,
/// doppio/Socket over WebSockets, doppio/JS interop.
void installCoreClasses(Jvm &Vm);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_JVM_H
