//===- jvm/classfile/builder.h - Bytecode assembler ---------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent assembler for synthesizing class files. The paper evaluates
/// DoppioJVM on OpenJDK programs (javap, javac, Rhino, Kawa) that cannot be
/// redistributed here, so the workload programs and the built-in class
/// library are assembled with this builder, serialized with the writer,
/// and fed through the same class loader path as any external class file
/// (DESIGN.md documents this substitution).
///
/// Labels resolve forward and backward branches; max_stack is computed by
/// simulating stack depth at assembly time, and max_locals is inferred
/// from local-variable usage.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_BUILDER_H
#define DOPPIO_JVM_CLASSFILE_BUILDER_H

#include "jvm/classfile/classfile.h"
#include "jvm/classfile/descriptor.h"
#include "jvm/classfile/opcodes.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {

class ClassBuilder;

/// Array type codes for the newarray instruction.
enum class ArrayType : uint8_t {
  Boolean = 4,
  Char = 5,
  Float = 6,
  Double = 7,
  Byte = 8,
  Short = 9,
  Int = 10,
  Long = 11,
};

/// Assembles one method body.
class MethodBuilder {
public:
  using Label = int;

  /// Allocates an unbound label.
  Label newLabel();
  /// Binds \p L to the current bytecode position.
  MethodBuilder &bind(Label L);

  // Constants.
  MethodBuilder &iconst(int32_t V);
  MethodBuilder &lconst(int64_t V);
  MethodBuilder &fconst(float V);
  MethodBuilder &dconst(double V);
  MethodBuilder &ldcString(const std::string &Text);
  MethodBuilder &aconstNull();

  // Locals.
  MethodBuilder &iload(int Slot);
  MethodBuilder &lload(int Slot);
  MethodBuilder &fload(int Slot);
  MethodBuilder &dload(int Slot);
  MethodBuilder &aload(int Slot);
  MethodBuilder &istore(int Slot);
  MethodBuilder &lstore(int Slot);
  MethodBuilder &fstore(int Slot);
  MethodBuilder &dstore(int Slot);
  MethodBuilder &astore(int Slot);
  MethodBuilder &iinc(int Slot, int32_t Delta);

  /// Any zero-operand instruction (arithmetic, stack ops, array loads and
  /// stores, conversions, comparisons, returns, athrow, monitors...).
  MethodBuilder &op(Op Opcode);

  // Control flow.
  MethodBuilder &branch(Op Opcode, Label Target); // if*, goto, jsr.
  MethodBuilder &tableswitch(Label Default, int32_t Low,
                             const std::vector<Label> &Targets);
  MethodBuilder &lookupswitch(Label Default,
                              const std::vector<std::pair<int32_t, Label>>
                                  &Cases);
  MethodBuilder &retLocal(int Slot); // The ret instruction (jsr/ret pair).

  // Members.
  MethodBuilder &getstatic(const std::string &Cls, const std::string &Name,
                           const std::string &Desc);
  MethodBuilder &putstatic(const std::string &Cls, const std::string &Name,
                           const std::string &Desc);
  MethodBuilder &getfield(const std::string &Cls, const std::string &Name,
                          const std::string &Desc);
  MethodBuilder &putfield(const std::string &Cls, const std::string &Name,
                          const std::string &Desc);
  MethodBuilder &invokevirtual(const std::string &Cls,
                               const std::string &Name,
                               const std::string &Desc);
  MethodBuilder &invokespecial(const std::string &Cls,
                               const std::string &Name,
                               const std::string &Desc);
  MethodBuilder &invokestatic(const std::string &Cls,
                              const std::string &Name,
                              const std::string &Desc);
  MethodBuilder &invokeinterface(const std::string &Cls,
                                 const std::string &Name,
                                 const std::string &Desc);

  // Objects and arrays.
  MethodBuilder &anew(const std::string &Cls); // The new instruction.
  MethodBuilder &newarray(ArrayType T);
  MethodBuilder &anewarray(const std::string &Cls);
  MethodBuilder &multianewarray(const std::string &ArrayDesc, int Dims);
  MethodBuilder &checkcast(const std::string &Cls);
  MethodBuilder &instanceOf(const std::string &Cls);

  /// Registers an exception handler over [Start, End) landing at
  /// \p Handler; \p CatchClass empty catches everything.
  MethodBuilder &handler(Label Start, Label End, Label Handler,
                         const std::string &CatchClass = "");

  // Raw emission, for forging deliberately invalid methods in verifier
  // tests: bytes are appended with no stack simulation, reachability
  // tracking, or locals inference. Combine with the overrides below to
  // pin the exact max_stack / max_locals the forged method declares.
  MethodBuilder &rawOp(Op Opcode);
  MethodBuilder &rawU1(uint8_t V);
  MethodBuilder &rawU2(uint16_t V);
  /// Forces the emitted max_stack, bypassing the computed value.
  MethodBuilder &overrideMaxStack(int V);
  /// Forces the emitted max_locals, bypassing the inferred value.
  MethodBuilder &overrideMaxLocals(int V);

  /// Current bytecode size (for tests).
  size_t codeSize() const { return Code.size(); }

private:
  friend class ClassBuilder;
  MethodBuilder(ClassBuilder &Cb, uint16_t Flags, std::string Name,
                std::string Desc);

  void emit(Op Opcode);
  void emitU1(uint8_t V) { Code.push_back(V); }
  void emitU2(uint16_t V);
  void emitU4(uint32_t V);
  void load(Op Base1, Op BaseN, int Slot, int Slots);
  void store(Op Base1, Op BaseN, int Slot, int Slots);
  void noteLocal(int Slot, int Slots);
  void adjustStack(int Delta);
  void flowTo(Label L);
  void endFlow();
  MethodBuilder &member(Op Opcode, CpTag Tag, const std::string &Cls,
                        const std::string &Name, const std::string &Desc);
  /// Finalizes: patches branches, fills the Code attribute.
  MemberInfo finish();
  void refineMaxStack(MemberInfo &M);

  ClassBuilder &Cb;
  uint16_t Flags;
  std::string Name;
  std::string Descriptor;
  std::vector<uint8_t> Code;

  struct Fixup {
    size_t OperandPos; // Where the 16/32-bit offset goes.
    size_t InsnPos;    // Branch instruction start (offset base).
    Label Target;
    bool Wide;         // 32-bit offset (goto_w, switch entries).
  };
  std::vector<Fixup> Fixups;
  std::vector<int32_t> LabelPos;    // -1 while unbound.
  std::vector<int32_t> LabelDepth;  // -1 while unknown.

  struct PendingHandler {
    Label Start, End, Handler;
    std::string CatchClass;
  };
  std::vector<PendingHandler> Handlers;

  int StackDepth = 0;
  bool Reachable = true;
  int MaxStack = 0;
  int MaxLocals = 0;
  int MaxStackOverride = -1;  // -1: use the computed value.
  int MaxLocalsOverride = -1; // -1: use the inferred value.
};

/// Builds one class.
class ClassBuilder {
public:
  explicit ClassBuilder(std::string Name,
                        std::string Super = "java/lang/Object");

  ClassBuilder &setAccess(uint16_t Flags);
  ClassBuilder &addInterface(const std::string &Name);
  ClassBuilder &addField(uint16_t Flags, const std::string &Name,
                         const std::string &Desc);

  /// Starts a method; finished bodies are collected by build(). The
  /// returned reference stays valid until build().
  MethodBuilder &method(uint16_t Flags, const std::string &Name,
                        const std::string &Desc);

  /// Declares a native method (no Code attribute).
  ClassBuilder &nativeMethod(uint16_t Flags, const std::string &Name,
                             const std::string &Desc);

  /// Declares an abstract method (interfaces, abstract classes).
  ClassBuilder &abstractMethod(uint16_t Flags, const std::string &Name,
                               const std::string &Desc);

  /// Adds the canonical `<init>()V` that just calls the superclass
  /// constructor.
  ClassBuilder &addDefaultConstructor();

  /// Finalizes every method and produces the class file model.
  ClassFile build();

  /// build() + writeClassFile().
  std::vector<uint8_t> bytes();

  ConstantPool &pool() { return Cf.Pool; }
  const std::string &name() const { return Cf.ThisClass; }

private:
  friend class MethodBuilder;
  ClassFile Cf;
  std::vector<std::unique_ptr<MethodBuilder>> Methods;
};

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_BUILDER_H
