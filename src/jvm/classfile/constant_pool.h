//===- jvm/classfile/constant_pool.h - Class-file constant pool --*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The class-file constant pool (JVM spec 2nd ed., §4.4), shared between
/// the reader (parsing class files downloaded through the Doppio file
/// system, paper §6.4) and the assembler that synthesizes the workload and
/// class-library classes.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_CONSTANT_POOL_H
#define DOPPIO_JVM_CLASSFILE_CONSTANT_POOL_H

#include "jvm/long64.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {

enum class CpTag : uint8_t {
  Invalid = 0,
  Utf8 = 1,
  Integer = 3,
  Float = 4,
  Long = 5,
  Double = 6,
  Class = 7,
  String = 8,
  Fieldref = 9,
  Methodref = 10,
  InterfaceMethodref = 11,
  NameAndType = 12,
};

/// One constant pool slot. Long/Double entries occupy two slots (the
/// second is a placeholder with tag Invalid), per the specification's
/// famous design wart.
struct CpEntry {
  CpTag Tag = CpTag::Invalid;
  std::string Utf8;    // Utf8.
  int32_t Int = 0;     // Integer.
  float F = 0;         // Float.
  int64_t LongBits = 0; // Long (bit pattern) or Double (IEEE bits).
  uint16_t Ref1 = 0;   // Class.name / String.utf8 / ref.class / NT.name.
  uint16_t Ref2 = 0;   // ref.name_and_type / NT.descriptor.
};

/// The pool: 1-based indexing, with interning helpers for the assembler.
class ConstantPool {
public:
  ConstantPool() : Entries(1) {} // Slot 0 is unusable by design.

  uint16_t size() const { return static_cast<uint16_t>(Entries.size()); }
  const CpEntry &at(uint16_t Index) const { return Entries.at(Index); }
  bool valid(uint16_t Index) const {
    return Index > 0 && Index < Entries.size();
  }

  // Resolution helpers used by the linker and disassembler.
  const std::string &utf8(uint16_t Index) const;
  /// Class entry -> its internal name ("java/lang/Object").
  const std::string &className(uint16_t Index) const;
  /// String entry -> its character data.
  const std::string &stringValue(uint16_t Index) const;
  /// Field/Method/InterfaceMethod ref -> (class, name, descriptor).
  struct MemberRef {
    std::string ClassName;
    std::string Name;
    std::string Descriptor;
  };
  MemberRef memberRef(uint16_t Index) const;

  // Interning (assembler side). All return the entry index.
  uint16_t addUtf8(const std::string &Text);
  uint16_t addInteger(int32_t V);
  uint16_t addFloat(float V);
  uint16_t addLong(int64_t Bits);
  uint16_t addDouble(double V);
  uint16_t addClass(const std::string &Name);
  uint16_t addString(const std::string &Text);
  uint16_t addNameAndType(const std::string &Name,
                          const std::string &Descriptor);
  uint16_t addFieldref(const std::string &ClassName, const std::string &Name,
                       const std::string &Descriptor);
  uint16_t addMethodref(const std::string &ClassName,
                        const std::string &Name,
                        const std::string &Descriptor);
  uint16_t addInterfaceMethodref(const std::string &ClassName,
                                 const std::string &Name,
                                 const std::string &Descriptor);

  /// Raw append used by the reader (no interning).
  uint16_t appendRaw(CpEntry Entry);

private:
  uint16_t addRef(CpTag Tag, const std::string &ClassName,
                  const std::string &Name, const std::string &Descriptor);
  uint16_t intern(const std::string &Key, CpEntry Entry);

  std::vector<CpEntry> Entries;
  std::map<std::string, uint16_t> InternTable;
};

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_CONSTANT_POOL_H
