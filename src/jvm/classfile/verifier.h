//===- jvm/classfile/verifier.h - Structural bytecode verifier ---*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of class files before linking — the static
/// checks of JVM spec chapter 4.8/4.9 that can be performed without
/// dataflow: every opcode is legal and completely encoded, control
/// transfers land on instruction boundaries inside the method, local
/// indices stay below max_locals, constant-pool operands exist and carry
/// the tag the instruction requires, exception-handler ranges are sane,
/// and execution cannot fall off the end of the code array.
///
/// The paper's prototype trusts its class files; the verifier is one of
/// the hardening extensions DESIGN.md schedules for the reproduction
/// (step-5 scope). The class loader runs it on every file that arrives
/// through the file system.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_VERIFIER_H
#define DOPPIO_JVM_CLASSFILE_VERIFIER_H

#include "jvm/classfile/classfile.h"

#include <string>
#include <vector>

namespace doppio {
namespace jvm {

/// One verification failure.
struct VerifyError {
  std::string Method; // "name(descriptor)"; empty for class-level issues.
  uint32_t Pc = 0;
  std::string Message;
  /// True for monitor-balance diagnostics. The JVM spec makes structured-
  /// locking enforcement optional, and the runtime raises
  /// IllegalMonitorStateException on actual misuse — so the loader demotes
  /// the method to guarded (unverified) execution instead of rejecting the
  /// class.
  bool MonitorOnly = false;

  std::string str() const {
    if (Method.empty())
      return Message;
    return Method + " @" + std::to_string(Pc) + ": " + Message;
  }
};

/// Runs every structural check over \p Cf, then — for each method that
/// passed them — the dataflow analysis (dataflow.h). Empty result = fully
/// verified.
std::vector<VerifyError> verifyClass(const ClassFile &Cf);

/// True if \p Errors contains at least one error that mandates rejecting
/// the class (anything that is not a MonitorOnly diagnostic).
bool rejectsClass(const std::vector<VerifyError> &Errors);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_VERIFIER_H
