//===- jvm/classfile/disasm.cpp -------------------------------------------==//

#include "jvm/classfile/disasm.h"

#include "jvm/classfile/analysis.h"
#include "jvm/classfile/dataflow.h"
#include "jvm/classfile/opcodes.h"

#include <bit>
#include <sstream>

using namespace doppio;
using namespace doppio::jvm;

uint32_t jvm::instructionLength(const std::vector<uint8_t> &Code,
                                uint32_t Pc) {
  if (Pc >= Code.size())
    return 0;
  uint8_t OpByte = Code[Pc];
  if (!isLegalOpcode(OpByte))
    return 0;
  int Operands = opcodeOperandBytes(OpByte);
  if (Operands >= 0) {
    uint32_t Len = 1 + static_cast<uint32_t>(Operands);
    return Pc + Len <= Code.size() ? Len : 0;
  }
  Op O = static_cast<Op>(OpByte);
  auto rdS4 = [&Code](uint32_t At) {
    return static_cast<int32_t>((static_cast<uint32_t>(Code[At]) << 24) |
                                (static_cast<uint32_t>(Code[At + 1]) << 16) |
                                (static_cast<uint32_t>(Code[At + 2]) << 8) |
                                static_cast<uint32_t>(Code[At + 3]));
  };
  if (O == Op::Wide) {
    if (Pc + 1 >= Code.size())
      return 0;
    Op Inner = static_cast<Op>(Code[Pc + 1]);
    uint32_t Len = Inner == Op::Iinc ? 6 : 4;
    return Pc + Len <= Code.size() ? Len : 0;
  }
  uint32_t Operand = (Pc + 4) & ~3u; // Padding to 4-byte alignment.
  if (O == Op::Tableswitch) {
    if (Operand + 12 > Code.size())
      return 0;
    int32_t Low = rdS4(Operand + 4);
    int32_t High = rdS4(Operand + 8);
    if (High < Low)
      return 0;
    uint32_t Len = Operand + 12 +
                   4 * static_cast<uint32_t>(High - Low + 1) - Pc;
    return Pc + Len <= Code.size() ? Len : 0;
  }
  if (O == Op::Lookupswitch) {
    if (Operand + 8 > Code.size())
      return 0;
    int32_t NPairs = rdS4(Operand + 4);
    if (NPairs < 0)
      return 0;
    uint32_t Len = Operand + 8 + 8 * static_cast<uint32_t>(NPairs) - Pc;
    return Pc + Len <= Code.size() ? Len : 0;
  }
  return 0;
}

/// Formats the constant-pool operand of an instruction, javap-style.
static std::string describeConstant(const ClassFile &Cf, uint16_t Idx) {
  if (!Cf.Pool.valid(Idx))
    return "#" + std::to_string(Idx) + " <invalid>";
  const CpEntry &E = Cf.Pool.at(Idx);
  std::string Out = "#" + std::to_string(Idx) + " ";
  switch (E.Tag) {
  case CpTag::Integer:
    return Out + "int " + std::to_string(E.Int);
  case CpTag::Float:
    return Out + "float " + std::to_string(E.F);
  case CpTag::Long:
    return Out + "long " + std::to_string(E.LongBits);
  case CpTag::Double:
    return Out + "double " +
           std::to_string(std::bit_cast<double>(E.LongBits));
  case CpTag::Class:
    return Out + "class " + Cf.Pool.className(Idx);
  case CpTag::String:
    return Out + "String \"" + Cf.Pool.stringValue(Idx) + "\"";
  case CpTag::Fieldref:
  case CpTag::Methodref:
  case CpTag::InterfaceMethodref: {
    ConstantPool::MemberRef Ref = Cf.Pool.memberRef(Idx);
    return Out + Ref.ClassName + "." + Ref.Name + ":" + Ref.Descriptor;
  }
  default:
    return Out;
  }
}

std::string jvm::disassembleMethod(const ClassFile &Cf,
                                   const MemberInfo &M,
                                   const MethodDataflow *Flow,
                                   const MethodAnalysis *Placement) {
  if (!M.Code)
    return "";
  std::ostringstream Out;
  const std::vector<uint8_t> &Code = M.Code->Bytecode;
  Out << "  " << M.Name << M.Descriptor << "  (stack=" << M.Code->MaxStack
      << ", locals=" << M.Code->MaxLocals << ")\n";
  uint32_t Pc = 0;
  while (Pc < Code.size()) {
    uint32_t Len = instructionLength(Code, Pc);
    std::ostringstream Line;
    Line << "    " << Pc << ": " << opcodeName(Code[Pc]);
    if (Len == 0) {
      Out << Line.str() << " <malformed>\n";
      break;
    }
    Op O = static_cast<Op>(Code[Pc]);
    auto rdU2 = [&Code](uint32_t At) {
      return static_cast<uint16_t>((Code[At] << 8) | Code[At + 1]);
    };
    // Operand rendering is driven by the OpKind column of opcodes.def.
    switch (opcodeKind(Code[Pc])) {
    case OpKind::Imm8:
      Line << " " << static_cast<int>(static_cast<int8_t>(Code[Pc + 1]));
      break;
    case OpKind::Imm16:
      Line << " " << static_cast<int16_t>(rdU2(Pc + 1));
      break;
    case OpKind::LdcU1:
      Line << " " << describeConstant(Cf, Code[Pc + 1]);
      break;
    case OpKind::CpU2:
    case OpKind::Invoke:
      Line << " " << describeConstant(Cf, rdU2(Pc + 1));
      break;
    case OpKind::LocalU1:
    case OpKind::RetOp:
      Line << " " << static_cast<int>(Code[Pc + 1]);
      break;
    case OpKind::IincOp:
      Line << " " << static_cast<int>(Code[Pc + 1]) << " by "
          << static_cast<int>(static_cast<int8_t>(Code[Pc + 2]));
      break;
    case OpKind::If:
    case OpKind::GotoOp:
    case OpKind::JsrOp:
      Line << " -> "
          << (Pc + static_cast<int16_t>(rdU2(Pc + 1)));
      break;
    default:
      break;
    }
    Out << Line.str();
    if (Flow) {
      auto It = Flow->In.find(Pc);
      // Pad so the annotations column-align within one method.
      for (size_t N = Line.str().size(); N < 36; ++N)
        Out << ' ';
      Out << "  ; "
          << (It != Flow->In.end() ? renderFrameState(It->second)
                                   : std::string("<unreachable>"));
    }
    if (Placement && Placement->ok()) {
      const char *Note = nullptr;
      if (Pc < Placement->KeepCheck.size() && Placement->KeepCheck[Pc])
        Note = "check kept (back edge)";
      else if (isPlacedBranchOp(O))
        Note = "check elided";
      else if (isCallBoundaryOp(O))
        Note = "check (call boundary)";
      if (Note) {
        for (size_t N = Line.str().size(); N < 36; ++N)
          Out << ' ';
        Out << "  ; " << Note;
      }
    }
    Out << "\n";
    Pc += Len;
  }
  for (const ExceptionHandler &H : M.Code->Handlers) {
    Out << "    catch [" << H.StartPc << ", " << H.EndPc << ") -> "
        << H.HandlerPc << " : "
        << (H.CatchType ? Cf.Pool.className(H.CatchType) : "<any>")
        << "\n";
  }
  return Out.str();
}

std::string jvm::disassembleClass(const ClassFile &Cf) {
  std::ostringstream Out;
  Out << ((Cf.AccessFlags & AccInterface) ? "interface " : "class ")
      << Cf.ThisClass;
  if (!Cf.SuperClass.empty())
    Out << " extends " << Cf.SuperClass;
  for (size_t I = 0; I != Cf.Interfaces.size(); ++I)
    Out << (I == 0 ? " implements " : ", ") << Cf.Interfaces[I];
  Out << "\n";
  Out << "  version " << Cf.MajorVersion << "." << Cf.MinorVersion
      << ", constant pool: " << Cf.Pool.size() << " entries\n";
  for (const MemberInfo &F : Cf.Fields)
    Out << "  field " << F.Name << " : " << F.Descriptor
        << (F.isStatic() ? " (static)" : "") << "\n";
  for (const MemberInfo &M : Cf.Methods) {
    if (M.isNative()) {
      Out << "  " << M.Name << M.Descriptor << "  (native)\n";
      continue;
    }
    if (M.AccessFlags & AccAbstract) {
      Out << "  " << M.Name << M.Descriptor << "  (abstract)\n";
      continue;
    }
    Out << disassembleMethod(Cf, M);
  }
  return Out.str();
}
