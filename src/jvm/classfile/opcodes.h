//===- jvm/classfile/opcodes.h - Opcode enum & metadata -----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete JVM-spec-2 instruction set (201 opcodes) that DoppioJVM
/// implements (§6), plus the interpreter-private _quick forms, with the
/// metadata used by the assembler, disassembler, verifier, placement
/// analysis, and interpreter. All of it is generated from opcodes.def —
/// the single opcode-metadata surface.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_OPCODES_H
#define DOPPIO_JVM_CLASSFILE_OPCODES_H

#include <cstdint>
#include <vector>

namespace doppio {
namespace jvm {

enum class Op : uint8_t {
#define JVM_OPCODE(NAME, VALUE, OPERANDS, KIND, QUICK) NAME = VALUE,
#define JVM_QUICK_OPCODE(NAME, VALUE, OPERANDS, KIND, BASE) NAME = VALUE,
#include "jvm/classfile/opcodes.def"
#undef JVM_QUICK_OPCODE
#undef JVM_OPCODE
};

/// Classifies each opcode for operand formatting (disasm) and
/// control-flow decoding (dataflow verifier, placement analysis). One
/// column in opcodes.def replaces the per-file switches those passes used
/// to hand-maintain.
enum class OpKind : uint8_t {
  Plain,    ///< No operands, or operands with no special rendering.
  Imm8,     ///< Signed 8-bit immediate (bipush).
  Imm16,    ///< Signed 16-bit immediate (sipush).
  LocalU1,  ///< Unsigned byte operand printed raw (loads/stores, newarray).
  IincOp,   ///< iinc: local index + signed increment.
  LdcU1,    ///< 1-byte constant-pool index (ldc).
  CpU2,     ///< 2-byte constant-pool index (fields, new, casts, ldc_w...).
  If,       ///< Conditional 2-byte branch (both arms are successors).
  GotoOp,   ///< Unconditional 2-byte branch.
  GotoWOp,  ///< Unconditional 4-byte branch.
  JsrOp,    ///< Subroutine call, 2-byte target.
  JsrWOp,   ///< Subroutine call, 4-byte target.
  RetOp,    ///< Subroutine return via local variable.
  TableSw,  ///< tableswitch.
  LookupSw, ///< lookupswitch.
  ReturnOp, ///< Method returns (no successors).
  ThrowOp,  ///< athrow (no successors).
  Invoke,   ///< Method invocation (call boundary; prints a CP ref).
  Monitor,  ///< monitorenter/monitorexit (call boundary).
  WideOp,   ///< wide prefix.
};

/// The mnemonic ("iload_0") for \p Opcode; "<illegal>" for gaps.
const char *opcodeName(uint8_t Opcode);

/// Fixed operand byte count, -1 for variable-length instructions
/// (tableswitch, lookupswitch, wide), -2 for illegal opcodes. Defined for
/// _quick forms too (each matches its base form's width).
int opcodeOperandBytes(uint8_t Opcode);

/// True if \p Opcode is one of the 201 instructions a classfile may
/// contain. The _quick forms are NOT legal classfile opcodes: the loader,
/// verifier, and disassembler reject them; only the interpreter installs
/// and executes them.
bool isLegalOpcode(uint8_t Opcode);

/// True if \p Opcode is an interpreter-private _quick form.
bool isQuickOpcode(uint8_t Opcode);

/// The _quick form \p Opcode rewrites to on first execution, or \p Opcode
/// itself when it has none.
uint8_t quickenedForm(uint8_t Opcode);

/// The classfile opcode a _quick form was rewritten from; identity for
/// non-quick opcodes.
uint8_t baseOpcode(uint8_t Opcode);

/// The OpKind classification; OpKind::Plain for illegal opcodes.
OpKind opcodeKind(uint8_t Opcode);

/// True for every opcode whose suspend check the placement pass may keep
/// or elide (conditional branches, gotos, switches — not jsr).
bool isPlacedBranchOp(Op O);

/// True for the call-boundary opcodes that always execute a suspend
/// check (§6.1): invokes, monitors, returns, athrow.
bool isCallBoundaryOp(Op O);

/// Number of defined classfile opcodes (201 in the 2nd-edition
/// specification); excludes the _quick forms.
int opcodeCount();

/// Control-flow decode of one instruction, driven by its OpKind — the
/// shared successor decoding used by the dataflow verifier and the
/// placement analysis.
struct BranchDecode {
  /// Explicit branch-target pcs. Fall-through is separate.
  std::vector<uint32_t> Targets;
  bool FallsThrough = true;
  bool IsBranch = false;
  /// jsr/jsr_w/ret (including wide ret) participate in subroutine flow.
  bool UsesJsrRet = false;
};

/// Decodes the explicit control flow of the instruction at \p Pc. The
/// instruction must have been length-checked first (instructionLength).
BranchDecode decodeBranch(const std::vector<uint8_t> &Code, uint32_t Pc);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_OPCODES_H
