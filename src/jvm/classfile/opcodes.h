//===- jvm/classfile/opcodes.h - Opcode enum & metadata -----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete JVM-spec-2 instruction set (201 opcodes) that DoppioJVM
/// implements (§6), with metadata used by the assembler, disassembler,
/// verifier, and interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_OPCODES_H
#define DOPPIO_JVM_CLASSFILE_OPCODES_H

#include <cstdint>

namespace doppio {
namespace jvm {

enum class Op : uint8_t {
#define JVM_OPCODE(NAME, VALUE, OPERANDS) NAME = VALUE,
#include "jvm/classfile/opcodes.def"
#undef JVM_OPCODE
};

/// The mnemonic ("iload_0") for \p Opcode; "<illegal>" for gaps.
const char *opcodeName(uint8_t Opcode);

/// Fixed operand byte count, -1 for variable-length instructions
/// (tableswitch, lookupswitch, wide), -2 for illegal opcodes.
int opcodeOperandBytes(uint8_t Opcode);

/// True if \p Opcode is one of the 201 defined instructions.
bool isLegalOpcode(uint8_t Opcode);

/// Number of defined opcodes (201 in the 2nd-edition specification).
int opcodeCount();

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_OPCODES_H
