//===- jvm/classfile/descriptor.h - Type descriptors --------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Field and method descriptor parsing (JVM spec 2nd ed., §4.3): "(I[JLjava/
/// lang/String;)V" and friends, used by the linker, the interpreter's
/// invoke sequence, and the assembler's max-stack computation.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_DESCRIPTOR_H
#define DOPPIO_JVM_CLASSFILE_DESCRIPTOR_H

#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {
namespace desc {

/// A parsed method descriptor.
struct MethodDesc {
  std::vector<std::string> Params; // Each a field descriptor.
  std::string Ret;                 // Field descriptor or "V".
};

/// Parses "(<params>)<ret>"; nullopt on malformed input.
std::optional<MethodDesc> parseMethod(const std::string &Descriptor);

/// Stack/local slots one value of \p FieldDesc occupies: 2 for J and D,
/// 0 for V, 1 otherwise.
int slotSize(const std::string &FieldDesc);

/// Total argument slots of \p D (not counting the receiver).
int paramSlots(const MethodDesc &D);

/// True for "[..." descriptors.
inline bool isArray(const std::string &FieldDesc) {
  return !FieldDesc.empty() && FieldDesc[0] == '[';
}

/// True for "L...;" and "[..." descriptors.
inline bool isReference(const std::string &FieldDesc) {
  return !FieldDesc.empty() &&
         (FieldDesc[0] == 'L' || FieldDesc[0] == '[');
}

/// "Ljava/lang/String;" -> "java/lang/String"; arrays return themselves
/// (array "class names" are descriptors, per the spec).
std::string toClassName(const std::string &FieldDesc);

/// Inverse of toClassName for non-array classes.
inline std::string toFieldDesc(const std::string &ClassName) {
  if (!ClassName.empty() && ClassName[0] == '[')
    return ClassName;
  return "L" + ClassName + ";";
}

} // namespace desc
} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_DESCRIPTOR_H
