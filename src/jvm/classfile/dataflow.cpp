//===- jvm/classfile/dataflow.cpp -----------------------------------------==//
//
// Worklist dataflow verification over the verification type lattice. The
// analysis is deterministic: the worklist is an ordered set and always
// processes the lowest pending pc, so the first error reported for a given
// method is stable across runs (the negative tests assert exact pc and
// message).
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/dataflow.h"

#include "jvm/classfile/descriptor.h"
#include "jvm/classfile/disasm.h"
#include "jvm/classfile/opcodes.h"

#include <set>
#include <sstream>

using namespace doppio;
using namespace doppio::jvm;

const char *jvm::vtypeName(VType T) {
  switch (T) {
  case VType::Top:
    return "top";
  case VType::Int:
    return "int";
  case VType::Float:
    return "float";
  case VType::Ref:
    return "reference";
  case VType::RetAddr:
    return "returnAddress";
  case VType::Long:
    return "long";
  case VType::LongHi:
    return "long-hi";
  case VType::Double:
    return "double";
  case VType::DoubleHi:
    return "double-hi";
  }
  return "?";
}

namespace {

bool isHi(VType T) { return T == VType::LongHi || T == VType::DoubleHi; }
bool isBase2(VType T) { return T == VType::Long || T == VType::Double; }
VType hiOf(VType Base) {
  return Base == VType::Long ? VType::LongHi : VType::DoubleHi;
}

char vtypeChar(VType T) {
  switch (T) {
  case VType::Top:
    return '?';
  case VType::Int:
    return 'I';
  case VType::Float:
    return 'F';
  case VType::Ref:
    return 'R';
  case VType::RetAddr:
    return 'A';
  case VType::Long:
    return 'J';
  case VType::Double:
    return 'D';
  case VType::LongHi:
  case VType::DoubleHi:
    return '=';
  }
  return '?';
}

/// True for the field descriptors the lattice can type.
bool isValidFieldDesc(const std::string &D) {
  if (D.empty())
    return false;
  switch (D[0]) {
  case 'B':
  case 'C':
  case 'D':
  case 'F':
  case 'I':
  case 'J':
  case 'S':
  case 'Z':
    return D.size() == 1;
  case 'L':
    return D.back() == ';' && D.size() > 2;
  case '[':
    return D.size() > 1;
  default:
    return false;
  }
}

class DataflowAnalyzer {
public:
  DataflowAnalyzer(const ClassFile &Cf, const MemberInfo &M,
                   MethodDataflow &Out)
      : Cf(Cf), M(M), Code(M.Code->Bytecode), MaxStack(M.Code->MaxStack),
        MaxLocals(M.Code->MaxLocals), Out(Out) {}

  void run() {
    if (!decode())
      return;
    if (!seedEntryState())
      return;
    while (!Worklist.empty() && !Failed) {
      CurPc = *Worklist.begin();
      Worklist.erase(Worklist.begin());
      Cur = Out.In.at(CurPc);
      InLocals = Cur.Locals;
      InDepth = Cur.MonitorDepth;
      transfer();
      if (!Failed)
        flowToHandlers();
    }
    Out.Ok = Out.Errors.empty();
  }

private:
  //===------------------------------------------------------------------===//
  // Diagnostics
  //===------------------------------------------------------------------===//

  void addError(uint32_t Pc, const std::string &Message, bool MonitorOnly) {
    for (const VerifyError &E : Out.Errors)
      if (E.Pc == Pc && E.Message == Message)
        return; // Fixpoint revisits must not duplicate diagnostics.
    Out.Errors.push_back({M.Name + M.Descriptor, Pc, Message, MonitorOnly});
  }

  /// Hard typeflow error: recorded once, analysis stops (the frame state
  /// past this point is meaningless).
  void fail(const std::string &Message) { failAt(CurPc, Message); }
  void failAt(uint32_t Pc, const std::string &Message) {
    if (Failed)
      return;
    addError(Pc, Message, false);
    Failed = true;
  }

  /// Monitor-balance diagnostic: recorded, analysis continues (the loader
  /// demotes the method to guarded execution instead of rejecting).
  void monitorError(uint32_t Pc, const std::string &Message) {
    addError(Pc, Message, true);
  }

  //===------------------------------------------------------------------===//
  // Code decoding
  //===------------------------------------------------------------------===//

  uint16_t rdU2(uint32_t At) const {
    return static_cast<uint16_t>((Code[At] << 8) | Code[At + 1]);
  }
  int32_t rdS4(uint32_t At) const {
    return static_cast<int32_t>((static_cast<uint32_t>(Code[At]) << 24) |
                                (static_cast<uint32_t>(Code[At + 1]) << 16) |
                                (static_cast<uint32_t>(Code[At + 2]) << 8) |
                                static_cast<uint32_t>(Code[At + 3]));
  }

  bool decode() {
    uint32_t Pc = 0;
    while (Pc < Code.size()) {
      uint32_t Len = instructionLength(Code, Pc);
      if (Len == 0) {
        // The structural verifier accepted this method; a zero length here
        // means it was not run first. Refuse rather than misanalyze.
        failAt(Pc, "dataflow requires a structurally valid method");
        return false;
      }
      Lengths[Pc] = Len;
      Op O = static_cast<Op>(Code[Pc]);
      if (O == Op::Jsr || O == Op::JsrW)
        JsrFollowers.push_back(Pc + Len);
      Pc += Len;
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Entry state
  //===------------------------------------------------------------------===//

  bool seedEntryState() {
    auto Parsed = desc::parseMethod(M.Descriptor);
    if (!Parsed) {
      failAt(0, "malformed method descriptor");
      return false;
    }
    RetDesc = Parsed->Ret;
    FrameState Entry;
    Entry.Locals.assign(MaxLocals, VType::Top);
    uint32_t Slot = 0;
    auto place = [&](VType T, uint32_t Width) {
      if (Slot + Width > MaxLocals)
        return false;
      Entry.Locals[Slot] = T;
      if (Width == 2)
        Entry.Locals[Slot + 1] = hiOf(T);
      Slot += Width;
      return true;
    };
    bool Fits = true;
    if (!M.isStatic())
      Fits = place(VType::Ref, 1); // The receiver.
    for (const std::string &P : Parsed->Params) {
      if (!Fits)
        break;
      switch (P[0]) {
      case 'J':
        Fits = place(VType::Long, 2);
        break;
      case 'D':
        Fits = place(VType::Double, 2);
        break;
      case 'F':
        Fits = place(VType::Float, 1);
        break;
      case 'L':
      case '[':
        Fits = place(VType::Ref, 1);
        break;
      default:
        Fits = place(VType::Int, 1);
        break;
      }
    }
    if (!Fits) {
      failAt(0, "parameters exceed max_locals " + std::to_string(MaxLocals));
      return false;
    }
    Out.In[0] = std::move(Entry);
    Worklist.insert(0);
    return true;
  }

  //===------------------------------------------------------------------===//
  // Stack and locals primitives
  //===------------------------------------------------------------------===//

  VType popSlot() {
    if (Failed)
      return VType::Top;
    if (Cur.Stack.empty()) {
      fail("stack underflow");
      return VType::Top;
    }
    VType T = Cur.Stack.back();
    Cur.Stack.pop_back();
    return T;
  }

  void popExpect(VType E) {
    VType T = popSlot();
    if (Failed)
      return;
    if (T == E)
      return;
    if (isHi(T)) {
      fail("splits a two-slot value on the stack");
      return;
    }
    fail(std::string("expected ") + vtypeName(E) + " on stack, found " +
         vtypeName(T));
  }

  void popInt() { popExpect(VType::Int); }
  void popFloat() { popExpect(VType::Float); }
  void popRef() { popExpect(VType::Ref); }

  /// Pops a two-slot value: the Hi marker then its base.
  void popCat2(VType Base) {
    VType T = popSlot();
    if (Failed)
      return;
    if (T != hiOf(Base)) {
      fail(std::string("expected ") + vtypeName(Base) +
           " on stack, found " + vtypeName(isHi(T) ? baseOf(T) : T));
      return;
    }
    Cur.Stack.pop_back(); // The base slot, paired by construction.
  }

  static VType baseOf(VType Hi) {
    return Hi == VType::LongHi ? VType::Long : VType::Double;
  }

  void pushSlot(VType T) {
    if (Failed)
      return;
    if (Cur.Stack.size() >= MaxStack) {
      fail("stack overflow beyond max_stack " + std::to_string(MaxStack));
      return;
    }
    Cur.Stack.push_back(T);
  }

  void pushCat2(VType Base) {
    pushSlot(Base);
    pushSlot(hiOf(Base));
  }

  /// Push/pop by field descriptor (fields, invoke args and returns).
  void pushDesc(const std::string &D) {
    switch (D[0]) {
    case 'V':
      return;
    case 'J':
      pushCat2(VType::Long);
      return;
    case 'D':
      pushCat2(VType::Double);
      return;
    case 'F':
      pushSlot(VType::Float);
      return;
    case 'L':
    case '[':
      pushSlot(VType::Ref);
      return;
    default:
      pushSlot(VType::Int);
      return;
    }
  }

  void popDesc(const std::string &D) {
    switch (D[0]) {
    case 'J':
      popCat2(VType::Long);
      return;
    case 'D':
      popCat2(VType::Double);
      return;
    case 'F':
      popFloat();
      return;
    case 'L':
    case '[':
      popRef();
      return;
    default:
      popInt();
      return;
    }
  }

  bool requireLocal(uint32_t Slot, uint32_t Width) {
    if (Slot + Width <= MaxLocals)
      return true;
    fail("local " + std::to_string(Slot) + " exceeds max_locals " +
         std::to_string(MaxLocals));
    return false;
  }

  void loadLocal(uint32_t Slot, VType E, const char *Mnemonic) {
    if (!requireLocal(Slot, 1))
      return;
    if (Cur.Locals[Slot] != E) {
      fail("local " + std::to_string(Slot) + " holds " +
           vtypeName(Cur.Locals[Slot]) + " but " + Mnemonic + " needs " +
           vtypeName(E));
      return;
    }
    pushSlot(E);
  }

  void loadLocal2(uint32_t Slot, VType Base, const char *Mnemonic) {
    if (!requireLocal(Slot, 2))
      return;
    if (Cur.Locals[Slot] != Base || Cur.Locals[Slot + 1] != hiOf(Base)) {
      fail("local " + std::to_string(Slot) + " holds " +
           vtypeName(Cur.Locals[Slot]) + " but " + Mnemonic + " needs " +
           vtypeName(Base));
      return;
    }
    pushCat2(Base);
  }

  /// Invalidates whichever two-slot pair \p Slot participates in before it
  /// is overwritten.
  void clobberLocal(uint32_t Slot) {
    if (isHi(Cur.Locals[Slot]) && Slot > 0)
      Cur.Locals[Slot - 1] = VType::Top;
    if (isBase2(Cur.Locals[Slot]) && Slot + 1 < MaxLocals)
      Cur.Locals[Slot + 1] = VType::Top;
  }

  void storeLocal(uint32_t Slot, VType T) {
    if (Failed || !requireLocal(Slot, 1))
      return;
    clobberLocal(Slot);
    Cur.Locals[Slot] = T;
  }

  void storeLocal2(uint32_t Slot, VType Base) {
    if (Failed || !requireLocal(Slot, 2))
      return;
    clobberLocal(Slot);
    clobberLocal(Slot + 1);
    Cur.Locals[Slot] = Base;
    Cur.Locals[Slot + 1] = hiOf(Base);
  }

  //===------------------------------------------------------------------===//
  // Generic stack shuffles (dup family, pop family, swap)
  //===------------------------------------------------------------------===//

  /// dup / dup_x1 / dup_x2 / dup2 / dup2_x1 / dup2_x2: copies the top
  /// \p N slots beneath the \p Skip slots below them. Both group
  /// boundaries must not cut a two-slot value.
  void dupOp(uint32_t N, uint32_t Skip, const char *Mnemonic) {
    size_t S = Cur.Stack.size();
    if (S < N + Skip) {
      fail("stack underflow");
      return;
    }
    if (isHi(Cur.Stack[S - N]) ||
        (Skip > 0 && isHi(Cur.Stack[S - N - Skip]))) {
      fail(std::string(Mnemonic) + " splits a two-slot value on the stack");
      return;
    }
    if (S + N > MaxStack) {
      fail("stack overflow beyond max_stack " + std::to_string(MaxStack));
      return;
    }
    std::vector<VType> Group(Cur.Stack.end() - N, Cur.Stack.end());
    Cur.Stack.insert(Cur.Stack.end() - N - Skip, Group.begin(), Group.end());
  }

  void popOp(uint32_t N, const char *Mnemonic) {
    if (Cur.Stack.size() < N) {
      fail("stack underflow");
      return;
    }
    if (isHi(Cur.Stack[Cur.Stack.size() - N])) {
      fail(std::string(Mnemonic) + " splits a two-slot value on the stack");
      return;
    }
    Cur.Stack.resize(Cur.Stack.size() - N);
  }

  //===------------------------------------------------------------------===//
  // Merging
  //===------------------------------------------------------------------===//

  void mergeInto(uint32_t Target, const FrameState &S) {
    if (Failed)
      return;
    auto It = Out.In.find(Target);
    if (It == Out.In.end()) {
      Out.In[Target] = S;
      Worklist.insert(Target);
      return;
    }
    FrameState &E = It->second;
    bool Changed = false;
    if (E.Stack.size() != S.Stack.size()) {
      failAt(Target, "inconsistent stack depth at merge (" +
                         std::to_string(E.Stack.size()) + " vs " +
                         std::to_string(S.Stack.size()) + ")");
      return;
    }
    for (size_t I = 0; I != E.Stack.size(); ++I) {
      if (E.Stack[I] == S.Stack[I])
        continue;
      failAt(Target, "stack type mismatch at merge slot " +
                         std::to_string(I) + " (" + vtypeName(E.Stack[I]) +
                         " vs " + vtypeName(S.Stack[I]) + ")");
      return;
    }
    for (size_t I = 0; I != E.Locals.size(); ++I) {
      if (E.Locals[I] == S.Locals[I] || E.Locals[I] == VType::Top)
        continue;
      E.Locals[I] = VType::Top; // Locals merge to unusable, not to error.
      Changed = true;
    }
    if (E.MonitorDepth != S.MonitorDepth) {
      monitorError(Target, "monitor depth mismatch at merge (" +
                               std::to_string(E.MonitorDepth) + " vs " +
                               std::to_string(S.MonitorDepth) + ")");
      if (S.MonitorDepth > E.MonitorDepth) {
        E.MonitorDepth = S.MonitorDepth; // Max keeps the fixpoint monotone.
        Changed = true;
      }
    }
    if (Changed)
      Worklist.insert(Target);
  }

  void flowTo(uint32_t Target) { mergeInto(Target, Cur); }

  void fallThrough() {
    // The structural fall-off check guarantees a successor exists.
    flowTo(CurPc + Lengths.at(CurPc));
  }

  /// Exception edges: every handler covering this pc can be entered with
  /// the locals as they were before or after the instruction (stores and
  /// iinc mutate them mid-protection), a stack holding just the thrown
  /// reference, and the monitor depth on entry.
  void flowToHandlers() {
    for (const ExceptionHandler &H : M.Code->Handlers) {
      if (CurPc < H.StartPc || CurPc >= H.EndPc)
        continue;
      if (MaxStack < 1) {
        failAt(H.HandlerPc, "stack overflow beyond max_stack 0");
        return;
      }
      FrameState At;
      At.Stack = {VType::Ref};
      At.MonitorDepth = InDepth;
      At.Locals = InLocals;
      mergeInto(H.HandlerPc, At);
      if (Failed)
        return;
      At.Locals = Cur.Locals;
      mergeInto(H.HandlerPc, At);
      if (Failed)
        return;
    }
  }

  //===------------------------------------------------------------------===//
  // Returns and monitors
  //===------------------------------------------------------------------===//

  void checkReturn(const char *Mnemonic, bool Matches) {
    if (!Matches) {
      fail(std::string(Mnemonic) + " in a method returning " + RetDesc);
      return;
    }
    if (Cur.MonitorDepth != 0)
      monitorError(CurPc, "returns while " +
                              std::to_string(Cur.MonitorDepth) +
                              " monitor(s) still held");
  }

  //===------------------------------------------------------------------===//
  // The transfer function
  //===------------------------------------------------------------------===//

  void transfer() {
    Op O = static_cast<Op>(Code[CurPc]);
    switch (O) {
    case Op::Nop:
      break;

    // Constants.
    case Op::AconstNull:
      pushSlot(VType::Ref);
      break;
    case Op::IconstM1:
    case Op::Iconst0:
    case Op::Iconst1:
    case Op::Iconst2:
    case Op::Iconst3:
    case Op::Iconst4:
    case Op::Iconst5:
    case Op::Bipush:
    case Op::Sipush:
      pushSlot(VType::Int);
      break;
    case Op::Lconst0:
    case Op::Lconst1:
      pushCat2(VType::Long);
      break;
    case Op::Fconst0:
    case Op::Fconst1:
    case Op::Fconst2:
      pushSlot(VType::Float);
      break;
    case Op::Dconst0:
    case Op::Dconst1:
      pushCat2(VType::Double);
      break;
    case Op::Ldc:
    case Op::LdcW: {
      uint16_t Idx = O == Op::Ldc ? Code[CurPc + 1] : rdU2(CurPc + 1);
      switch (Cf.Pool.at(Idx).Tag) {
      case CpTag::Integer:
        pushSlot(VType::Int);
        break;
      case CpTag::Float:
        pushSlot(VType::Float);
        break;
      default: // String or Class, per the structural tag check.
        pushSlot(VType::Ref);
        break;
      }
      break;
    }
    case Op::Ldc2W:
      pushCat2(Cf.Pool.at(rdU2(CurPc + 1)).Tag == CpTag::Long
                   ? VType::Long
                   : VType::Double);
      break;

    // Loads.
    case Op::Iload:
      loadLocal(Code[CurPc + 1], VType::Int, "iload");
      break;
    case Op::Fload:
      loadLocal(Code[CurPc + 1], VType::Float, "fload");
      break;
    case Op::Aload:
      loadLocal(Code[CurPc + 1], VType::Ref, "aload");
      break;
    case Op::Lload:
      loadLocal2(Code[CurPc + 1], VType::Long, "lload");
      break;
    case Op::Dload:
      loadLocal2(Code[CurPc + 1], VType::Double, "dload");
      break;
    case Op::Iload0:
    case Op::Iload1:
    case Op::Iload2:
    case Op::Iload3:
      loadLocal(static_cast<uint32_t>(O) - static_cast<uint32_t>(Op::Iload0),
                VType::Int, "iload");
      break;
    case Op::Lload0:
    case Op::Lload1:
    case Op::Lload2:
    case Op::Lload3:
      loadLocal2(static_cast<uint32_t>(O) -
                     static_cast<uint32_t>(Op::Lload0),
                 VType::Long, "lload");
      break;
    case Op::Fload0:
    case Op::Fload1:
    case Op::Fload2:
    case Op::Fload3:
      loadLocal(static_cast<uint32_t>(O) - static_cast<uint32_t>(Op::Fload0),
                VType::Float, "fload");
      break;
    case Op::Dload0:
    case Op::Dload1:
    case Op::Dload2:
    case Op::Dload3:
      loadLocal2(static_cast<uint32_t>(O) -
                     static_cast<uint32_t>(Op::Dload0),
                 VType::Double, "dload");
      break;
    case Op::Aload0:
    case Op::Aload1:
    case Op::Aload2:
    case Op::Aload3:
      loadLocal(static_cast<uint32_t>(O) - static_cast<uint32_t>(Op::Aload0),
                VType::Ref, "aload");
      break;

    // Array loads.
    case Op::Iaload:
    case Op::Baload:
    case Op::Caload:
    case Op::Saload:
      popInt();
      popRef();
      pushSlot(VType::Int);
      break;
    case Op::Faload:
      popInt();
      popRef();
      pushSlot(VType::Float);
      break;
    case Op::Aaload:
      popInt();
      popRef();
      pushSlot(VType::Ref);
      break;
    case Op::Laload:
      popInt();
      popRef();
      pushCat2(VType::Long);
      break;
    case Op::Daload:
      popInt();
      popRef();
      pushCat2(VType::Double);
      break;

    // Stores.
    case Op::Istore:
      popInt();
      storeLocal(Code[CurPc + 1], VType::Int);
      break;
    case Op::Fstore:
      popFloat();
      storeLocal(Code[CurPc + 1], VType::Float);
      break;
    case Op::Astore:
      transferAstore(Code[CurPc + 1]);
      break;
    case Op::Lstore:
      popCat2(VType::Long);
      storeLocal2(Code[CurPc + 1], VType::Long);
      break;
    case Op::Dstore:
      popCat2(VType::Double);
      storeLocal2(Code[CurPc + 1], VType::Double);
      break;
    case Op::Istore0:
    case Op::Istore1:
    case Op::Istore2:
    case Op::Istore3:
      popInt();
      storeLocal(static_cast<uint32_t>(O) -
                     static_cast<uint32_t>(Op::Istore0),
                 VType::Int);
      break;
    case Op::Lstore0:
    case Op::Lstore1:
    case Op::Lstore2:
    case Op::Lstore3:
      popCat2(VType::Long);
      storeLocal2(static_cast<uint32_t>(O) -
                      static_cast<uint32_t>(Op::Lstore0),
                  VType::Long);
      break;
    case Op::Fstore0:
    case Op::Fstore1:
    case Op::Fstore2:
    case Op::Fstore3:
      popFloat();
      storeLocal(static_cast<uint32_t>(O) -
                     static_cast<uint32_t>(Op::Fstore0),
                 VType::Float);
      break;
    case Op::Dstore0:
    case Op::Dstore1:
    case Op::Dstore2:
    case Op::Dstore3:
      popCat2(VType::Double);
      storeLocal2(static_cast<uint32_t>(O) -
                      static_cast<uint32_t>(Op::Dstore0),
                  VType::Double);
      break;
    case Op::Astore0:
    case Op::Astore1:
    case Op::Astore2:
    case Op::Astore3:
      transferAstore(static_cast<uint32_t>(O) -
                     static_cast<uint32_t>(Op::Astore0));
      break;

    // Array stores.
    case Op::Iastore:
    case Op::Bastore:
    case Op::Castore:
    case Op::Sastore:
      popInt();
      popInt();
      popRef();
      break;
    case Op::Fastore:
      popFloat();
      popInt();
      popRef();
      break;
    case Op::Aastore:
      popRef();
      popInt();
      popRef();
      break;
    case Op::Lastore:
      popCat2(VType::Long);
      popInt();
      popRef();
      break;
    case Op::Dastore:
      popCat2(VType::Double);
      popInt();
      popRef();
      break;

    // Stack shuffles.
    case Op::Pop:
      popOp(1, "pop");
      break;
    case Op::Pop2:
      popOp(2, "pop2");
      break;
    case Op::Dup:
      dupOp(1, 0, "dup");
      break;
    case Op::DupX1:
      dupOp(1, 1, "dup_x1");
      break;
    case Op::DupX2:
      dupOp(1, 2, "dup_x2");
      break;
    case Op::Dup2:
      dupOp(2, 0, "dup2");
      break;
    case Op::Dup2X1:
      dupOp(2, 1, "dup2_x1");
      break;
    case Op::Dup2X2:
      dupOp(2, 2, "dup2_x2");
      break;
    case Op::Swap: {
      size_t S = Cur.Stack.size();
      if (S < 2) {
        fail("stack underflow");
        break;
      }
      if (isHi(Cur.Stack[S - 1]) || isHi(Cur.Stack[S - 2])) {
        fail("swap splits a two-slot value on the stack");
        break;
      }
      std::swap(Cur.Stack[S - 1], Cur.Stack[S - 2]);
      break;
    }

    // Int arithmetic.
    case Op::Iadd:
    case Op::Isub:
    case Op::Imul:
    case Op::Idiv:
    case Op::Irem:
    case Op::Ishl:
    case Op::Ishr:
    case Op::Iushr:
    case Op::Iand:
    case Op::Ior:
    case Op::Ixor:
      popInt();
      popInt();
      pushSlot(VType::Int);
      break;
    case Op::Ineg:
    case Op::I2b:
    case Op::I2c:
    case Op::I2s:
      popInt();
      pushSlot(VType::Int);
      break;

    // Long arithmetic.
    case Op::Ladd:
    case Op::Lsub:
    case Op::Lmul:
    case Op::Ldiv:
    case Op::Lrem:
    case Op::Land:
    case Op::Lor:
    case Op::Lxor:
      popCat2(VType::Long);
      popCat2(VType::Long);
      pushCat2(VType::Long);
      break;
    case Op::Lshl:
    case Op::Lshr:
    case Op::Lushr:
      popInt();
      popCat2(VType::Long);
      pushCat2(VType::Long);
      break;
    case Op::Lneg:
      popCat2(VType::Long);
      pushCat2(VType::Long);
      break;

    // Float arithmetic.
    case Op::Fadd:
    case Op::Fsub:
    case Op::Fmul:
    case Op::Fdiv:
    case Op::Frem:
      popFloat();
      popFloat();
      pushSlot(VType::Float);
      break;
    case Op::Fneg:
      popFloat();
      pushSlot(VType::Float);
      break;

    // Double arithmetic.
    case Op::Dadd:
    case Op::Dsub:
    case Op::Dmul:
    case Op::Ddiv:
    case Op::Drem:
      popCat2(VType::Double);
      popCat2(VType::Double);
      pushCat2(VType::Double);
      break;
    case Op::Dneg:
      popCat2(VType::Double);
      pushCat2(VType::Double);
      break;

    case Op::Iinc:
      transferIinc(Code[CurPc + 1]);
      break;

    // Conversions.
    case Op::I2l:
      popInt();
      pushCat2(VType::Long);
      break;
    case Op::I2f:
      popInt();
      pushSlot(VType::Float);
      break;
    case Op::I2d:
      popInt();
      pushCat2(VType::Double);
      break;
    case Op::L2i:
      popCat2(VType::Long);
      pushSlot(VType::Int);
      break;
    case Op::L2f:
      popCat2(VType::Long);
      pushSlot(VType::Float);
      break;
    case Op::L2d:
      popCat2(VType::Long);
      pushCat2(VType::Double);
      break;
    case Op::F2i:
      popFloat();
      pushSlot(VType::Int);
      break;
    case Op::F2l:
      popFloat();
      pushCat2(VType::Long);
      break;
    case Op::F2d:
      popFloat();
      pushCat2(VType::Double);
      break;
    case Op::D2i:
      popCat2(VType::Double);
      pushSlot(VType::Int);
      break;
    case Op::D2l:
      popCat2(VType::Double);
      pushCat2(VType::Long);
      break;
    case Op::D2f:
      popCat2(VType::Double);
      pushSlot(VType::Float);
      break;

    // Comparisons.
    case Op::Lcmp:
      popCat2(VType::Long);
      popCat2(VType::Long);
      pushSlot(VType::Int);
      break;
    case Op::Fcmpl:
    case Op::Fcmpg:
      popFloat();
      popFloat();
      pushSlot(VType::Int);
      break;
    case Op::Dcmpl:
    case Op::Dcmpg:
      popCat2(VType::Double);
      popCat2(VType::Double);
      pushSlot(VType::Int);
      break;

    // Conditional branches: both arms are successors.
    case Op::Ifeq:
    case Op::Ifne:
    case Op::Iflt:
    case Op::Ifge:
    case Op::Ifgt:
    case Op::Ifle:
      popInt();
      branchAndFallThrough(target16());
      return;
    case Op::IfIcmpeq:
    case Op::IfIcmpne:
    case Op::IfIcmplt:
    case Op::IfIcmpge:
    case Op::IfIcmpgt:
    case Op::IfIcmple:
      popInt();
      popInt();
      branchAndFallThrough(target16());
      return;
    case Op::IfAcmpeq:
    case Op::IfAcmpne:
      popRef();
      popRef();
      branchAndFallThrough(target16());
      return;
    case Op::Ifnull:
    case Op::Ifnonnull:
      popRef();
      branchAndFallThrough(target16());
      return;

    case Op::Goto:
      flowTo(target16());
      return;
    case Op::GotoW:
      flowTo(target32());
      return;

    // jsr pushes the return address for the subroutine to astore; the
    // instruction after the jsr is reached via ret, not by fall-through.
    case Op::Jsr:
      pushSlot(VType::RetAddr);
      flowTo(target16());
      return;
    case Op::JsrW:
      pushSlot(VType::RetAddr);
      flowTo(target32());
      return;
    case Op::Ret:
      transferRet(Code[CurPc + 1]);
      return;

    case Op::Tableswitch:
    case Op::Lookupswitch: {
      popInt();
      // Target arithmetic shared with analysis/disasm via opcodes.def.
      for (uint32_t T : decodeBranch(Code, CurPc).Targets) {
        if (Failed)
          return;
        flowTo(T);
      }
      return;
    }

    // Returns: no successors.
    case Op::Ireturn:
      popInt();
      checkReturn("ireturn", RetDesc.size() == 1 &&
                                 std::string("IZBCS").find(RetDesc[0]) !=
                                     std::string::npos);
      return;
    case Op::Lreturn:
      popCat2(VType::Long);
      checkReturn("lreturn", RetDesc == "J");
      return;
    case Op::Freturn:
      popFloat();
      checkReturn("freturn", RetDesc == "F");
      return;
    case Op::Dreturn:
      popCat2(VType::Double);
      checkReturn("dreturn", RetDesc == "D");
      return;
    case Op::Areturn:
      popRef();
      checkReturn("areturn", desc::isReference(RetDesc));
      return;
    case Op::Return:
      checkReturn("return", RetDesc == "V");
      return;

    // Fields.
    case Op::Getstatic:
    case Op::Putstatic:
    case Op::Getfield:
    case Op::Putfield: {
      ConstantPool::MemberRef Ref = Cf.Pool.memberRef(rdU2(CurPc + 1));
      if (!isValidFieldDesc(Ref.Descriptor)) {
        fail("malformed field descriptor " + Ref.Descriptor);
        break;
      }
      if (O == Op::Getstatic) {
        pushDesc(Ref.Descriptor);
      } else if (O == Op::Putstatic) {
        popDesc(Ref.Descriptor);
      } else if (O == Op::Getfield) {
        popRef();
        pushDesc(Ref.Descriptor);
      } else {
        popDesc(Ref.Descriptor);
        popRef();
      }
      break;
    }

    // Invokes.
    case Op::Invokevirtual:
    case Op::Invokespecial:
    case Op::Invokestatic:
    case Op::Invokeinterface: {
      ConstantPool::MemberRef Ref = Cf.Pool.memberRef(rdU2(CurPc + 1));
      auto Callee = desc::parseMethod(Ref.Descriptor);
      if (!Callee) {
        fail("malformed method descriptor " + Ref.Descriptor);
        break;
      }
      for (size_t I = Callee->Params.size(); I-- > 0 && !Failed;)
        popDesc(Callee->Params[I]);
      if (O != Op::Invokestatic)
        popRef(); // The receiver.
      if (Callee->Ret != "V")
        pushDesc(Callee->Ret);
      break;
    }

    // Objects and arrays.
    case Op::New:
      pushSlot(VType::Ref);
      break;
    case Op::Newarray:
    case Op::Anewarray:
      popInt();
      pushSlot(VType::Ref);
      break;
    case Op::Multianewarray: {
      uint8_t Dims = Code[CurPc + 3];
      for (uint8_t I = 0; I != Dims && !Failed; ++I)
        popInt();
      pushSlot(VType::Ref);
      break;
    }
    case Op::Arraylength:
      popRef();
      pushSlot(VType::Int);
      break;
    case Op::Athrow:
      popRef();
      return; // Only the exception edges continue.
    case Op::Checkcast:
      popRef();
      pushSlot(VType::Ref);
      break;
    case Op::Instanceof:
      popRef();
      pushSlot(VType::Int);
      break;

    // Monitors.
    case Op::Monitorenter:
      popRef();
      ++Cur.MonitorDepth;
      break;
    case Op::Monitorexit:
      popRef();
      if (Cur.MonitorDepth == 0)
        monitorError(CurPc, "monitorexit with no monitor held");
      else
        --Cur.MonitorDepth;
      break;

    case Op::Wide:
      if (!transferWide())
        return; // wide ret: successors already merged.
      break;
    }
    if (!Failed)
      fallThrough();
  }

  /// iinc on an untouched slot is accepted and types it int: the
  /// interpreter zero-fills locals, so the increment is well-defined even
  /// though javac never emits it (DESIGN.md §12 lists the divergence).
  void transferIinc(uint32_t Slot) {
    if (!requireLocal(Slot, 1))
      return;
    if (Cur.Locals[Slot] == VType::Top) {
      Cur.Locals[Slot] = VType::Int;
      return;
    }
    if (Cur.Locals[Slot] != VType::Int)
      fail("local " + std::to_string(Slot) + " holds " +
           vtypeName(Cur.Locals[Slot]) + " but iinc needs int");
  }

  /// astore is the one store that accepts a returnAddress (the jsr idiom
  /// stores the address for ret).
  void transferAstore(uint32_t Slot) {
    VType T = popSlot();
    if (Failed)
      return;
    if (T != VType::Ref && T != VType::RetAddr) {
      fail(std::string("expected reference on stack, found ") +
           (isHi(T) ? vtypeName(baseOf(T)) : vtypeName(T)));
      return;
    }
    storeLocal(Slot, T);
  }

  /// Conservative subroutine return: ret may resume after any jsr in the
  /// method, so the current state merges into every jsr successor.
  void transferRet(uint32_t Slot) {
    if (!requireLocal(Slot, 1))
      return;
    if (Cur.Locals[Slot] != VType::RetAddr) {
      fail("local " + std::to_string(Slot) + " holds " +
           vtypeName(Cur.Locals[Slot]) + " but ret needs returnAddress");
      return;
    }
    for (uint32_t Follower : JsrFollowers) {
      if (Failed)
        return;
      if (Follower < Code.size())
        flowTo(Follower);
    }
  }

  /// Returns false when the wide instruction has no fall-through (ret).
  bool transferWide() {
    Op Inner = static_cast<Op>(Code[CurPc + 1]);
    uint32_t Slot = rdU2(CurPc + 2);
    switch (Inner) {
    case Op::Iload:
      loadLocal(Slot, VType::Int, "iload");
      return true;
    case Op::Fload:
      loadLocal(Slot, VType::Float, "fload");
      return true;
    case Op::Aload:
      loadLocal(Slot, VType::Ref, "aload");
      return true;
    case Op::Lload:
      loadLocal2(Slot, VType::Long, "lload");
      return true;
    case Op::Dload:
      loadLocal2(Slot, VType::Double, "dload");
      return true;
    case Op::Istore:
      popInt();
      storeLocal(Slot, VType::Int);
      return true;
    case Op::Fstore:
      popFloat();
      storeLocal(Slot, VType::Float);
      return true;
    case Op::Astore:
      transferAstore(Slot);
      return true;
    case Op::Lstore:
      popCat2(VType::Long);
      storeLocal2(Slot, VType::Long);
      return true;
    case Op::Dstore:
      popCat2(VType::Double);
      storeLocal2(Slot, VType::Double);
      return true;
    case Op::Iinc:
      transferIinc(Slot);
      return true;
    case Op::Ret:
      transferRet(Slot);
      return false;
    default:
      fail("wide prefix on a non-widenable instruction");
      return true;
    }
  }

  uint32_t target16() const {
    return CurPc + static_cast<int16_t>(rdU2(CurPc + 1));
  }
  uint32_t target32() const { return CurPc + rdS4(CurPc + 1); }

  void branchAndFallThrough(uint32_t Target) {
    flowTo(Target);
    if (!Failed)
      fallThrough();
  }

  const ClassFile &Cf;
  const MemberInfo &M;
  const std::vector<uint8_t> &Code;
  const uint16_t MaxStack;
  const uint16_t MaxLocals;
  MethodDataflow &Out;

  std::map<uint32_t, uint32_t> Lengths;
  std::vector<uint32_t> JsrFollowers;
  std::set<uint32_t> Worklist;
  std::string RetDesc;

  FrameState Cur;
  uint32_t CurPc = 0;
  std::vector<VType> InLocals;
  int32_t InDepth = 0;
  bool Failed = false;
};

} // namespace

std::string jvm::renderFrameState(const FrameState &S) {
  std::ostringstream Out;
  Out << "[";
  for (size_t I = 0; I != S.Stack.size(); ++I) {
    // The '=' trailing slot of a two-slot value binds to its base: "J=".
    if (I && !isHi(S.Stack[I]))
      Out << " ";
    Out << vtypeChar(S.Stack[I]);
  }
  Out << "]";
  if (S.MonitorDepth != 0)
    Out << " m=" << S.MonitorDepth;
  return Out.str();
}

MethodDataflow jvm::analyzeMethodDataflow(const ClassFile &Cf,
                                          const MemberInfo &M) {
  MethodDataflow Out;
  if (!M.Code) {
    Out.Ok = false;
    Out.Errors.push_back(
        {M.Name + M.Descriptor, 0, "method has no code to analyze", false});
    return Out;
  }
  if (M.Code->Bytecode.empty()) {
    Out.Errors.push_back({M.Name + M.Descriptor, 0, "empty code array",
                          false});
    return Out;
  }
  DataflowAnalyzer(Cf, M, Out).run();
  return Out;
}
