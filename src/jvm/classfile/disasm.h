//===- jvm/classfile/disasm.h - Class file disassembler -----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A javap-style disassembler over the parsed class-file model: constant
/// pool dump, member tables, and per-method bytecode listings with
/// resolved constant-pool operands. (javap itself is the paper's first
/// benchmark; this is the host-side equivalent of what the classdump
/// workload performs in bytecode.)
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_DISASM_H
#define DOPPIO_JVM_CLASSFILE_DISASM_H

#include "jvm/classfile/classfile.h"

#include <string>

namespace doppio {
namespace jvm {

struct MethodDataflow;
struct MethodAnalysis;

/// Disassembles one method body ("  0: Iload0", ...). Returns an empty
/// string for methods without code. When \p Flow (the method's dataflow
/// analysis, dataflow.h) is given, each line is annotated with the
/// inferred abstract state entering the instruction — "; [I R] m=0" —
/// or "; <unreachable>" for dead code the fixpoint never visited.
/// When \p Placement (the suspend-placement proof, analysis.h) is given
/// and proved, each branch is annotated "; check kept (back edge)" or
/// "; check elided", and call boundaries "; check (call boundary)".
std::string disassembleMethod(const ClassFile &Cf, const MemberInfo &M,
                              const MethodDataflow *Flow = nullptr,
                              const MethodAnalysis *Placement = nullptr);

/// Full javap-style listing of \p Cf.
std::string disassembleClass(const ClassFile &Cf);

/// Total byte length of the instruction starting at \p Pc (operands
/// included), handling tableswitch/lookupswitch padding and wide. Returns
/// 0 for truncated or illegal encodings.
uint32_t instructionLength(const std::vector<uint8_t> &Code, uint32_t Pc);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_DISASM_H
