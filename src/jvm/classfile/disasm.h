//===- jvm/classfile/disasm.h - Class file disassembler -----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A javap-style disassembler over the parsed class-file model: constant
/// pool dump, member tables, and per-method bytecode listings with
/// resolved constant-pool operands. (javap itself is the paper's first
/// benchmark; this is the host-side equivalent of what the classdump
/// workload performs in bytecode.)
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_DISASM_H
#define DOPPIO_JVM_CLASSFILE_DISASM_H

#include "jvm/classfile/classfile.h"

#include <string>

namespace doppio {
namespace jvm {

/// Disassembles one method body ("  0: Iload0", ...). Returns an empty
/// string for methods without code.
std::string disassembleMethod(const ClassFile &Cf, const MemberInfo &M);

/// Full javap-style listing of \p Cf.
std::string disassembleClass(const ClassFile &Cf);

/// Total byte length of the instruction starting at \p Pc (operands
/// included), handling tableswitch/lookupswitch padding and wide. Returns
/// 0 for truncated or illegal encodings.
uint32_t instructionLength(const std::vector<uint8_t> &Code, uint32_t Pc);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_DISASM_H
