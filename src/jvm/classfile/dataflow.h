//===- jvm/classfile/dataflow.h - Dataflow bytecode verifier -----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract-interpretation half of bytecode verification (JVM spec 2nd
/// ed., §4.9.2): a worklist fixpoint over a verification type lattice that
/// proves, per method, that the operand stack never under- or overflows
/// max_stack, that every local access stays inside max_locals and matches
/// the type the slot holds, that every merge point is consistent, and that
/// monitorenter/monitorexit are structurally balanced on every path.
///
/// The structural verifier (verifier.h) must have accepted the method
/// first: this pass assumes instruction boundaries, branch targets, and
/// constant-pool tags are already known good.
///
/// A method the analysis accepts earns the per-method `Verified` bit the
/// interpreter uses to elide its per-instruction stack/locals guards
/// (DESIGN.md §12 documents the exact check-elision contract).
///
/// Deliberate simplifications, documented in DESIGN.md §12: all reference
/// types collapse to one `Ref` point (no class-hierarchy subtyping — the
/// interpreter retains its checkcast/receiver checks), jsr/ret subroutines
/// are handled conservatively (a ret flows to the successor of every jsr),
/// and monitor-balance violations are diagnosed but classified
/// MonitorOnly, because the spec makes structured-locking enforcement
/// optional and the runtime throws IllegalMonitorStateException anyway.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_DATAFLOW_H
#define DOPPIO_JVM_CLASSFILE_DATAFLOW_H

#include "jvm/classfile/classfile.h"
#include "jvm/classfile/verifier.h"

#include <map>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {

/// Verification types. Category-2 values (long/double) occupy two slots:
/// the base type plus a trailing Hi marker, mirroring the interpreter's
/// two-slot convention, so that instructions that would split a pair are
/// detected slot-exactly.
enum class VType : uint8_t {
  Top,      ///< Unusable (uninitialized local, or conflicting merge).
  Int,      ///< int and its subword kin (boolean/byte/char/short).
  Float,
  Ref,      ///< All reference types, including null.
  RetAddr,  ///< jsr return address.
  Long,     ///< First slot of a long.
  LongHi,   ///< Second slot of a long.
  Double,   ///< First slot of a double.
  DoubleHi, ///< Second slot of a double.
};

/// "int", "reference", "long-hi", ... for diagnostics.
const char *vtypeName(VType T);

/// The abstract machine state entering one instruction.
struct FrameState {
  std::vector<VType> Locals; ///< Always exactly max_locals slots.
  std::vector<VType> Stack;  ///< Slot-typed; never exceeds max_stack.
  int32_t MonitorDepth = 0;  ///< monitorenter nesting on this path.
};

/// Compact rendering for disasm annotation: "[I R J=] m=1" (stack bottom
/// to top; '=' marks the trailing slot of a two-slot value).
std::string renderFrameState(const FrameState &S);

/// The result of analyzing one method.
struct MethodDataflow {
  /// True iff no errors of any kind: the method may run check-elided.
  bool Ok = false;
  /// First hard error, plus any monitor-balance diagnostics found before
  /// it. Monitor errors carry VerifyError::MonitorOnly.
  std::vector<VerifyError> Errors;
  /// Instruction start -> merged state entering it. Unreachable code has
  /// no entry (dead code is not analyzed, matching the spec).
  std::map<uint32_t, FrameState> In;
};

/// Runs the dataflow analysis over \p M (which must have a Code attribute
/// and must already have passed structural verification).
MethodDataflow analyzeMethodDataflow(const ClassFile &Cf,
                                     const MemberInfo &M);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_DATAFLOW_H
