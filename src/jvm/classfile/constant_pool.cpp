//===- jvm/classfile/constant_pool.cpp ------------------------------------==//

#include "jvm/classfile/constant_pool.h"

#include <bit>
#include <cassert>

using namespace doppio;
using namespace doppio::jvm;

const std::string &ConstantPool::utf8(uint16_t Index) const {
  const CpEntry &E = at(Index);
  assert(E.Tag == CpTag::Utf8 && "expected Utf8 constant");
  return E.Utf8;
}

const std::string &ConstantPool::className(uint16_t Index) const {
  const CpEntry &E = at(Index);
  assert(E.Tag == CpTag::Class && "expected Class constant");
  return utf8(E.Ref1);
}

const std::string &ConstantPool::stringValue(uint16_t Index) const {
  const CpEntry &E = at(Index);
  assert(E.Tag == CpTag::String && "expected String constant");
  return utf8(E.Ref1);
}

ConstantPool::MemberRef ConstantPool::memberRef(uint16_t Index) const {
  const CpEntry &E = at(Index);
  assert((E.Tag == CpTag::Fieldref || E.Tag == CpTag::Methodref ||
          E.Tag == CpTag::InterfaceMethodref) &&
         "expected a member reference constant");
  const CpEntry &NT = at(E.Ref2);
  assert(NT.Tag == CpTag::NameAndType && "bad member reference");
  return {className(E.Ref1), utf8(NT.Ref1), utf8(NT.Ref2)};
}

uint16_t ConstantPool::appendRaw(CpEntry Entry) {
  assert(Entries.size() < 0xFFFF && "constant pool overflow");
  Entries.push_back(std::move(Entry));
  return static_cast<uint16_t>(Entries.size() - 1);
}

uint16_t ConstantPool::intern(const std::string &Key, CpEntry Entry) {
  auto It = InternTable.find(Key);
  if (It != InternTable.end())
    return It->second;
  bool TwoSlots = Entry.Tag == CpTag::Long || Entry.Tag == CpTag::Double;
  uint16_t Index = appendRaw(std::move(Entry));
  if (TwoSlots)
    appendRaw(CpEntry()); // Longs and doubles take two slots.
  InternTable.emplace(Key, Index);
  return Index;
}

uint16_t ConstantPool::addUtf8(const std::string &Text) {
  CpEntry E;
  E.Tag = CpTag::Utf8;
  E.Utf8 = Text;
  return intern("u:" + Text, std::move(E));
}

uint16_t ConstantPool::addInteger(int32_t V) {
  CpEntry E;
  E.Tag = CpTag::Integer;
  E.Int = V;
  return intern("i:" + std::to_string(V), std::move(E));
}

uint16_t ConstantPool::addFloat(float V) {
  CpEntry E;
  E.Tag = CpTag::Float;
  E.F = V;
  return intern("f:" + std::to_string(std::bit_cast<uint32_t>(V)),
                std::move(E));
}

uint16_t ConstantPool::addLong(int64_t Bits) {
  CpEntry E;
  E.Tag = CpTag::Long;
  E.LongBits = Bits;
  return intern("j:" + std::to_string(Bits), std::move(E));
}

uint16_t ConstantPool::addDouble(double V) {
  CpEntry E;
  E.Tag = CpTag::Double;
  E.LongBits = std::bit_cast<int64_t>(V);
  return intern("d:" + std::to_string(E.LongBits), std::move(E));
}

uint16_t ConstantPool::addClass(const std::string &Name) {
  uint16_t NameIdx = addUtf8(Name);
  CpEntry E;
  E.Tag = CpTag::Class;
  E.Ref1 = NameIdx;
  return intern("c:" + Name, std::move(E));
}

uint16_t ConstantPool::addString(const std::string &Text) {
  uint16_t TextIdx = addUtf8(Text);
  CpEntry E;
  E.Tag = CpTag::String;
  E.Ref1 = TextIdx;
  return intern("s:" + Text, std::move(E));
}

uint16_t ConstantPool::addNameAndType(const std::string &Name,
                                      const std::string &Descriptor) {
  uint16_t NameIdx = addUtf8(Name);
  uint16_t DescIdx = addUtf8(Descriptor);
  CpEntry E;
  E.Tag = CpTag::NameAndType;
  E.Ref1 = NameIdx;
  E.Ref2 = DescIdx;
  return intern("nt:" + Name + ":" + Descriptor, std::move(E));
}

uint16_t ConstantPool::addRef(CpTag Tag, const std::string &ClassName,
                              const std::string &Name,
                              const std::string &Descriptor) {
  uint16_t ClassIdx = addClass(ClassName);
  uint16_t NtIdx = addNameAndType(Name, Descriptor);
  CpEntry E;
  E.Tag = Tag;
  E.Ref1 = ClassIdx;
  E.Ref2 = NtIdx;
  std::string Prefix = Tag == CpTag::Fieldref
                           ? "fr:"
                           : (Tag == CpTag::Methodref ? "mr:" : "ir:");
  return intern(Prefix + ClassName + "." + Name + ":" + Descriptor,
                std::move(E));
}

uint16_t ConstantPool::addFieldref(const std::string &ClassName,
                                   const std::string &Name,
                                   const std::string &Descriptor) {
  return addRef(CpTag::Fieldref, ClassName, Name, Descriptor);
}

uint16_t ConstantPool::addMethodref(const std::string &ClassName,
                                    const std::string &Name,
                                    const std::string &Descriptor) {
  return addRef(CpTag::Methodref, ClassName, Name, Descriptor);
}

uint16_t ConstantPool::addInterfaceMethodref(const std::string &ClassName,
                                             const std::string &Name,
                                             const std::string &Descriptor) {
  return addRef(CpTag::InterfaceMethodref, ClassName, Name, Descriptor);
}
