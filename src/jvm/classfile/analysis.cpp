//===- jvm/classfile/analysis.cpp - CFG / loop / placement analysis -------==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
//
// Pipeline: decode instruction boundaries (reusing disasm's length
// decoder), compute per-instruction successors (the same target decoding
// the dataflow verifier uses), split into basic blocks at leaders, add
// exception edges at block granularity, run reachability, compute
// dominators (iterative Cooper-Harvey-Kennedy over reverse postorder),
// classify retreating edges, collect natural loops, and finally prove the
// placement bound: cut the out-edges of every check-site instruction
// (call boundaries + kept back-edge branches), demand the residual graph
// is acyclic, and take its longest path as K.
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/analysis.h"

#include "jvm/classfile/disasm.h"
#include "jvm/classfile/opcodes.h"
#include "jvm/classfile/verifier.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::jvm;

namespace {

struct Insn {
  uint32_t Pc = 0;
  uint32_t Len = 0;
  Op Opcode = Op::Nop;
  /// Explicit branch targets (pcs). Fall-through is separate.
  std::vector<uint32_t> Targets;
  bool FallsThrough = true;
  bool IsBranch = false;
  bool IsCallBoundary = false;
};

struct Builder {
  const std::vector<uint8_t> &Code;
  const std::vector<ExceptionHandler> &Handlers;
  MethodAnalysis &A;

  std::vector<Insn> Insns;
  /// Instruction index at each pc; kNoBlock for mid-instruction bytes.
  std::vector<uint32_t> InsnAt;
  /// Block index owning each instruction start pc.
  std::vector<uint32_t> BlockAt;
  std::vector<uint32_t> Rpo;    // Block indices in reverse postorder.
  std::vector<uint32_t> RpoNum; // Block index -> position in Rpo.
  bool SawJsrRet = false;

  Builder(const std::vector<uint8_t> &Code,
          const std::vector<ExceptionHandler> &Handlers, MethodAnalysis &A)
      : Code(Code), Handlers(Handlers), A(A) {}

  bool fail(AnalysisStatus S, std::string Detail) {
    A.Status = S;
    A.Detail = std::move(Detail);
    return false;
  }

  bool decode() {
    InsnAt.assign(Code.size(), kNoBlock);
    for (uint32_t Pc = 0; Pc < Code.size();) {
      uint32_t Len = instructionLength(Code, Pc);
      if (Len == 0)
        return fail(AnalysisStatus::MalformedCode,
                    "undecodable instruction at pc " + std::to_string(Pc));
      Insn I;
      I.Pc = Pc;
      I.Len = Len;
      I.Opcode = static_cast<Op>(Code[Pc]);
      decodeFlow(I);
      InsnAt[Pc] = static_cast<uint32_t>(Insns.size());
      Insns.push_back(std::move(I));
      Pc += Len;
    }
    // Verified code never branches mid-instruction; check defensively so
    // the pass stays safe on raw (unverified) input.
    for (const Insn &I : Insns)
      for (uint32_t T : I.Targets)
        if (T >= Code.size() || InsnAt[T] == kNoBlock)
          return fail(AnalysisStatus::MalformedCode,
                      "branch into the middle of an instruction at pc " +
                          std::to_string(I.Pc));
    for (const ExceptionHandler &H : Handlers)
      if (H.HandlerPc >= Code.size() || InsnAt[H.HandlerPc] == kNoBlock)
        return fail(AnalysisStatus::MalformedCode,
                    "handler entry inside an instruction");
    return true;
  }

  void decodeFlow(Insn &I) {
    // Shared OpKind-driven decode from opcodes.def — the same successor
    // decoding the dataflow verifier uses.
    BranchDecode D = decodeBranch(Code, I.Pc);
    I.Targets = std::move(D.Targets);
    I.FallsThrough = D.FallsThrough;
    I.IsBranch = D.IsBranch;
    if (D.UsesJsrRet)
      SawJsrRet = true;
    I.IsCallBoundary = isCallBoundaryOp(I.Opcode);
  }

  void buildBlocks() {
    // Leaders: entry, branch targets, instructions after control
    // transfers, handler entries, and protected-range boundaries (so a
    // block never straddles a try region and exception edges stay
    // block-aligned).
    std::vector<uint8_t> Leader(Code.size(), 0);
    Leader[0] = 1;
    for (const Insn &I : Insns) {
      for (uint32_t T : I.Targets)
        Leader[T] = 1;
      if ((I.IsBranch || !I.FallsThrough) && I.Pc + I.Len < Code.size())
        Leader[I.Pc + I.Len] = 1;
    }
    for (const ExceptionHandler &H : Handlers) {
      Leader[H.HandlerPc] = 1;
      if (H.StartPc < Code.size() && InsnAt[H.StartPc] != kNoBlock)
        Leader[H.StartPc] = 1;
      if (H.EndPc < Code.size() && InsnAt[H.EndPc] != kNoBlock)
        Leader[H.EndPc] = 1;
    }

    BlockAt.assign(Code.size(), kNoBlock);
    for (const Insn &I : Insns) {
      if (Leader[I.Pc] || A.Blocks.empty()) {
        BasicBlock B;
        B.StartPc = I.Pc;
        A.Blocks.push_back(std::move(B));
      }
      BasicBlock &B = A.Blocks.back();
      B.Insns.push_back(I.Pc);
      B.EndPc = I.Pc + I.Len;
      BlockAt[I.Pc] = static_cast<uint32_t>(A.Blocks.size() - 1);
    }

    auto addEdge = [](std::vector<uint32_t> &Out, uint32_t To) {
      if (std::find(Out.begin(), Out.end(), To) == Out.end())
        Out.push_back(To);
    };
    for (uint32_t BI = 0; BI != A.Blocks.size(); ++BI) {
      BasicBlock &B = A.Blocks[BI];
      const Insn &Last = Insns[InsnAt[B.Insns.back()]];
      for (uint32_t T : Last.Targets)
        addEdge(B.Succs, BlockAt[T]);
      if (Last.FallsThrough && Last.Pc + Last.Len < Code.size())
        addEdge(B.Succs, BlockAt[Last.Pc + Last.Len]);
      for (const ExceptionHandler &H : Handlers)
        if (B.StartPc >= H.StartPc && B.StartPc < H.EndPc)
          addEdge(B.ExSuccs, BlockAt[H.HandlerPc]);
    }
    for (uint32_t BI = 0; BI != A.Blocks.size(); ++BI) {
      for (uint32_t S : A.Blocks[BI].Succs)
        A.Blocks[S].Preds.push_back(BI);
      for (uint32_t S : A.Blocks[BI].ExSuccs)
        A.Blocks[S].Preds.push_back(BI);
    }
  }

  /// Depth-first postorder from the entry over normal + exception edges;
  /// fills Rpo/RpoNum and marks reachability.
  void orderBlocks() {
    std::vector<uint32_t> Post;
    std::vector<uint8_t> Seen(A.Blocks.size(), 0);
    // Explicit stack; frames carry the next successor offset.
    std::vector<std::pair<uint32_t, size_t>> Stack;
    Seen[0] = 1;
    Stack.emplace_back(0, 0);
    auto succAt = [&](const BasicBlock &B, size_t I) {
      return I < B.Succs.size() ? B.Succs[I]
                                : B.ExSuccs[I - B.Succs.size()];
    };
    while (!Stack.empty()) {
      auto &[BI, NextI] = Stack.back();
      BasicBlock &B = A.Blocks[BI];
      if (NextI < B.Succs.size() + B.ExSuccs.size()) {
        uint32_t S = succAt(B, NextI++);
        if (!Seen[S]) {
          Seen[S] = 1;
          Stack.emplace_back(S, 0);
        }
      } else {
        Post.push_back(BI);
        Stack.pop_back();
      }
    }
    Rpo.assign(Post.rbegin(), Post.rend());
    RpoNum.assign(A.Blocks.size(), kNoBlock);
    for (uint32_t I = 0; I != Rpo.size(); ++I) {
      RpoNum[Rpo[I]] = I;
      A.Blocks[Rpo[I]].Reachable = true;
    }
    A.UnreachableBlocks =
        static_cast<uint32_t>(A.Blocks.size() - Rpo.size());
  }

  /// Iterative dominators (Cooper/Harvey/Kennedy) over reachable blocks.
  void computeDominators() {
    A.Blocks[0].Idom = 0;
    auto intersect = [&](uint32_t B1, uint32_t B2) {
      while (B1 != B2) {
        while (RpoNum[B1] > RpoNum[B2])
          B1 = A.Blocks[B1].Idom;
        while (RpoNum[B2] > RpoNum[B1])
          B2 = A.Blocks[B2].Idom;
      }
      return B1;
    };
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t I = 1; I < Rpo.size(); ++I) {
        uint32_t BI = Rpo[I];
        uint32_t NewIdom = kNoBlock;
        for (uint32_t P : A.Blocks[BI].Preds) {
          if (!A.Blocks[P].Reachable || A.Blocks[P].Idom == kNoBlock)
            continue;
          NewIdom = NewIdom == kNoBlock ? P : intersect(NewIdom, P);
        }
        if (NewIdom != kNoBlock && A.Blocks[BI].Idom != NewIdom) {
          A.Blocks[BI].Idom = NewIdom;
          Changed = true;
        }
      }
    }
  }

  bool dominates(uint32_t V, uint32_t U) const {
    while (true) {
      if (U == V)
        return true;
      if (U == 0)
        return false;
      U = A.Blocks[U].Idom;
    }
  }

  static std::string edgeStr(const BasicBlock &From, const BasicBlock &To) {
    return "pc " + std::to_string(From.Insns.back()) + " -> pc " +
           std::to_string(To.StartPc);
  }

  /// Classifies every edge; collects back edges (src, header) or fails.
  bool classifyEdges(std::vector<std::pair<uint32_t, uint32_t>> &BackEdges) {
    for (uint32_t BI : Rpo) {
      BasicBlock &B = A.Blocks[BI];
      const Insn &Last = Insns[InsnAt[B.Insns.back()]];
      for (uint32_t S : B.Succs) {
        if (RpoNum[S] > RpoNum[BI])
          continue; // Forward edge.
        if (!dominates(S, BI))
          return fail(AnalysisStatus::Irreducible,
                      edgeStr(B, A.Blocks[S]) +
                          " retreats into a loop it does not head");
        // A back edge is instrumentable only when the source block ends
        // in a branch: the dispatch case for that branch executes the
        // check whichever way the edge goes. A straight-line fall-through
        // back edge has no such site.
        if (!Last.IsBranch)
          return fail(AnalysisStatus::FallthroughBackEdge,
                      edgeStr(B, A.Blocks[S]) +
                          " falls through to the loop header");
        BackEdges.emplace_back(BI, S);
      }
      for (uint32_t S : B.ExSuccs) {
        if (RpoNum[S] > RpoNum[BI])
          continue;
        if (!dominates(S, BI))
          return fail(AnalysisStatus::Irreducible,
                      edgeStr(B, A.Blocks[S]) +
                          " (exception) retreats into a loop it does not "
                          "head");
        return fail(AnalysisStatus::ExceptionBackEdge,
                    edgeStr(B, A.Blocks[S]) +
                        " cycles through an exception handler");
      }
    }
    return true;
  }

  void collectLoops(
      const std::vector<std::pair<uint32_t, uint32_t>> &BackEdges) {
    // Natural loop of back edge (U -> Header): Header plus everything
    // that reaches U without passing through Header. Merge per header.
    std::map<uint32_t, LoopInfo> ByHeader;
    for (auto [U, Header] : BackEdges) {
      LoopInfo &L = ByHeader[Header];
      L.HeaderBlock = Header;
      L.BackEdgeSrcBlocks.push_back(U);
      std::vector<uint8_t> InBody(A.Blocks.size(), 0);
      InBody[Header] = 1;
      std::vector<uint32_t> Work;
      if (!InBody[U]) {
        InBody[U] = 1;
        Work.push_back(U);
      }
      for (uint32_t B : L.BodyBlocks)
        InBody[B] = 1;
      while (!Work.empty()) {
        uint32_t B = Work.back();
        Work.pop_back();
        for (uint32_t P : A.Blocks[B].Preds)
          if (A.Blocks[P].Reachable && !InBody[P]) {
            InBody[P] = 1;
            Work.push_back(P);
          }
      }
      L.BodyBlocks.clear();
      for (uint32_t B = 0; B != A.Blocks.size(); ++B)
        if (InBody[B])
          L.BodyBlocks.push_back(B);
    }
    for (auto &[Header, L] : ByHeader) {
      for (uint32_t B : L.BodyBlocks)
        ++A.Blocks[B].LoopDepth;
      std::sort(L.BackEdgeSrcBlocks.begin(), L.BackEdgeSrcBlocks.end());
      L.BackEdgeSrcBlocks.erase(std::unique(L.BackEdgeSrcBlocks.begin(),
                                            L.BackEdgeSrcBlocks.end()),
                                L.BackEdgeSrcBlocks.end());
      A.Loops.push_back(L);
    }
    for (LoopInfo &L : A.Loops)
      L.Depth = A.Blocks[L.HeaderBlock].LoopDepth;
  }

  /// Cuts check-site out-edges, verifies the residual instruction graph
  /// is acyclic, and computes its longest path (the bound K).
  bool proveBound() {
    const size_t N = Insns.size();
    // A check site's out-edges are cut: call boundaries always check;
    // kept branches check after rewriting Pc (either direction).
    auto isCheckSite = [&](const Insn &I) {
      return I.IsCallBoundary || (I.Pc < A.KeepCheck.size() &&
                                  A.KeepCheck[I.Pc] != 0);
    };
    std::vector<std::vector<uint32_t>> ResSuccs(N);
    std::vector<uint32_t> InDeg(N, 0);
    std::vector<uint8_t> Live(N, 0);
    for (const BasicBlock &B : A.Blocks) {
      if (!B.Reachable)
        continue;
      for (uint32_t Pc : B.Insns)
        Live[InsnAt[Pc]] = 1;
    }
    for (uint32_t II = 0; II != N; ++II) {
      if (!Live[II])
        continue;
      const Insn &I = Insns[II];
      if (isCheckSite(I))
        continue;
      for (uint32_t T : I.Targets) {
        ResSuccs[II].push_back(InsnAt[T]);
        ++InDeg[InsnAt[T]];
      }
      if (I.FallsThrough && I.Pc + I.Len < Code.size()) {
        uint32_t S = InsnAt[I.Pc + I.Len];
        ResSuccs[II].push_back(S);
        ++InDeg[S];
      }
    }
    // Longest path by Kahn topological order. Every instruction counts
    // cost 1 — matching the interpreter's per-dispatch counter — and a
    // path includes the check instruction that terminates it.
    std::vector<uint32_t> Longest(N, 0);
    std::vector<uint32_t> Queue;
    size_t LiveCount = 0;
    for (uint32_t II = 0; II != N; ++II) {
      if (!Live[II])
        continue;
      ++LiveCount;
      Longest[II] = 1;
      if (InDeg[II] == 0)
        Queue.push_back(II);
    }
    size_t Processed = 0;
    while (!Queue.empty()) {
      uint32_t II = Queue.back();
      Queue.pop_back();
      ++Processed;
      for (uint32_t S : ResSuccs[II]) {
        Longest[S] = std::max(Longest[S], Longest[II] + 1);
        if (--InDeg[S] == 0)
          Queue.push_back(S);
      }
    }
    if (Processed != LiveCount)
      return fail(AnalysisStatus::CheckFreeCycle,
                  "residual graph kept a cycle after cutting check sites");
    for (uint32_t II = 0; II != N; ++II)
      if (Live[II])
        A.BoundK = std::max(A.BoundK, Longest[II]);
    return true;
  }

  void countSites() {
    for (const BasicBlock &B : A.Blocks) {
      if (!B.Reachable)
        continue;
      for (uint32_t Pc : B.Insns) {
        const Insn &I = Insns[InsnAt[Pc]];
        if (I.IsCallBoundary)
          ++A.CallSites;
        if (I.IsBranch) {
          if (A.KeepCheck[Pc])
            ++A.KeptBranchSites;
          else
            ++A.ElidedBranchSites;
        }
      }
    }
  }
};

} // namespace

const char *doppio::jvm::analysisStatusName(AnalysisStatus S) {
  switch (S) {
  case AnalysisStatus::Proved:
    return "proved";
  case AnalysisStatus::NoCode:
    return "no_code";
  case AnalysisStatus::Unverified:
    return "unverified";
  case AnalysisStatus::JsrRet:
    return "jsr_ret";
  case AnalysisStatus::Irreducible:
    return "irreducible";
  case AnalysisStatus::ExceptionBackEdge:
    return "exception_back_edge";
  case AnalysisStatus::FallthroughBackEdge:
    return "fallthrough_back_edge";
  case AnalysisStatus::MalformedCode:
    return "malformed_code";
  case AnalysisStatus::CheckFreeCycle:
    return "check_free_cycle";
  }
  return "unknown";
}

MethodAnalysis doppio::jvm::analyzeCode(
    const std::vector<uint8_t> &Code,
    const std::vector<ExceptionHandler> &Handlers, bool Verified) {
  MethodAnalysis A;
  if (Code.empty()) {
    A.Status = AnalysisStatus::NoCode;
    return A;
  }
  if (!Verified) {
    A.Status = AnalysisStatus::Unverified;
    return A;
  }
  Builder B(Code, Handlers, A);
  if (!B.decode())
    return A;
  B.buildBlocks();
  B.orderBlocks();
  if (B.SawJsrRet) {
    // The CFG above is the conservative approximation (for dumps); no
    // dominator or placement claims are made over it.
    A.Status = AnalysisStatus::JsrRet;
    A.Detail = "jsr/ret subroutines present";
    return A;
  }
  B.computeDominators();
  std::vector<std::pair<uint32_t, uint32_t>> BackEdges;
  if (!B.classifyEdges(BackEdges))
    return A;
  B.collectLoops(BackEdges);
  A.KeepCheck.assign(Code.size(), 0);
  for (auto [U, Header] : BackEdges) {
    (void)Header;
    A.KeepCheck[A.Blocks[U].Insns.back()] = 1;
  }
  if (!B.proveBound()) {
    A.KeepCheck.clear();
    return A;
  }
  B.countSites();
  A.Status = AnalysisStatus::Proved;
  return A;
}

MethodAnalysis doppio::jvm::analyzeMethod(const ClassFile &Cf,
                                          const MemberInfo &M) {
  if (!M.Code)
    return analyzeCode({}, {}, true);
  // Per-method verdict from the class-wide verifier run: any class-level
  // diagnostic or any diagnostic naming this method disqualifies it
  // (same policy as ClassLoader::markVerified).
  bool Verified = true;
  for (const VerifyError &E : verifyClass(Cf))
    if (E.Method.empty() || E.Method == M.Name + M.Descriptor)
      Verified = false;
  return analyzeCode(M.Code->Bytecode, M.Code->Handlers, Verified);
}
