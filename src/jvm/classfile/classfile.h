//===- jvm/classfile/classfile.h - Parsed class file model --------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory form of a .class file (JVM spec 2nd ed., chapter 4),
/// produced by the reader and consumed by the linker; also produced by the
/// assembler and serialized by the writer. Member names and descriptors
/// are resolved to strings for convenience; the constant pool is retained
/// because ldc/invoke/field instructions index into it at run time.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_CLASSFILE_H
#define DOPPIO_JVM_CLASSFILE_CLASSFILE_H

#include "doppio/errors.h"
#include "jvm/classfile/constant_pool.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {

/// Class/field/method access and property flags.
enum AccessFlag : uint16_t {
  AccPublic = 0x0001,
  AccPrivate = 0x0002,
  AccProtected = 0x0004,
  AccStatic = 0x0008,
  AccFinal = 0x0010,
  AccSuper = 0x0020,        // On classes.
  AccSynchronized = 0x0020, // On methods.
  AccVolatile = 0x0040,
  AccTransient = 0x0080,
  AccNative = 0x0100,
  AccInterface = 0x0200,
  AccAbstract = 0x0400,
};

/// One entry of a Code attribute's exception table.
struct ExceptionHandler {
  uint16_t StartPc = 0;
  uint16_t EndPc = 0;
  uint16_t HandlerPc = 0;
  /// Constant-pool index of the caught class; 0 catches everything
  /// (finally).
  uint16_t CatchType = 0;
};

/// The Code attribute of a non-native, non-abstract method.
struct CodeAttr {
  uint16_t MaxStack = 0;
  uint16_t MaxLocals = 0;
  std::vector<uint8_t> Bytecode;
  std::vector<ExceptionHandler> Handlers;
};

/// A field_info or method_info structure.
struct MemberInfo {
  uint16_t AccessFlags = 0;
  std::string Name;
  std::string Descriptor;
  std::optional<CodeAttr> Code; // Methods only.
  /// ConstantValue attribute for static final fields (pool index, 0 none).
  uint16_t ConstantValueIndex = 0;

  bool isStatic() const { return AccessFlags & AccStatic; }
  bool isNative() const { return AccessFlags & AccNative; }
};

/// A parsed .class file.
struct ClassFile {
  uint16_t MinorVersion = 0;
  uint16_t MajorVersion = 49; // Java 5-era, within spec-2 reach.
  ConstantPool Pool;
  uint16_t AccessFlags = AccPublic | AccSuper;
  std::string ThisClass;  // Internal form: "java/lang/String".
  std::string SuperClass; // Empty only for java/lang/Object.
  std::vector<std::string> Interfaces;
  std::vector<MemberInfo> Fields;
  std::vector<MemberInfo> Methods;
  std::string SourceFile;

  const MemberInfo *findMethod(const std::string &Name,
                               const std::string &Descriptor) const {
    for (const MemberInfo &M : Methods)
      if (M.Name == Name && M.Descriptor == Descriptor)
        return &M;
    return nullptr;
  }
};

/// Parses class-file bytes (e.g. downloaded through the Doppio file
/// system, §6.4). Returns EINVAL-style errors on malformed input.
rt::ErrorOr<ClassFile> readClassFile(const std::vector<uint8_t> &Bytes);

/// Serializes \p Cf into class-file bytes. The inverse of readClassFile.
std::vector<uint8_t> writeClassFile(const ClassFile &Cf);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_CLASSFILE_H
