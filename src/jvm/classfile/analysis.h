//===- jvm/classfile/analysis.h - CFG / loop / placement analysis -*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static control-flow analysis over verified bytecode (DESIGN.md §17):
/// per-method CFG construction (normal + exception edges), dominator
/// tree, natural-loop nesting with irreducible-loop detection, and a
/// per-instruction cost model that proves a bound K on the number of
/// bytecodes executable between suspend checks when checks are kept only
/// at call boundaries and loop back-edge branches.
///
/// Stopify ("Putting in All the Stops", PAPERS.md) observes that the
/// dominant cost of execution control is instrumentation *placement*:
/// checks are only needed where unbounded work can accumulate, i.e. loop
/// back edges and call sites, never on forward branches. This pass proves
/// that claim per method: if every cycle in the CFG passes through an
/// instrumentable back-edge branch, eliding the remaining branch checks
/// leaves the residual graph acyclic, and its longest path is a hard
/// static bound on work between checks. Methods the proof does not cover
/// (jsr/ret subroutines, irreducible loops, cycles carried by exception
/// or fall-through edges) degrade to checks-everywhere at run time —
/// conservative, never incorrect.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSFILE_ANALYSIS_H
#define DOPPIO_JVM_CLASSFILE_ANALYSIS_H

#include "jvm/classfile/classfile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {

/// Outcome of the placement proof. Everything except Proved means the
/// interpreter must keep a check at every instruction for this method
/// when running in Placed mode (the conservative fallback).
enum class AnalysisStatus : uint8_t {
  /// Placement proved: KeepCheck and BoundK are valid.
  Proved,
  /// Abstract or native method: nothing to analyze.
  NoCode,
  /// The dataflow verifier flagged the method; its decoded boundaries
  /// cannot be trusted, so no placement claim is made.
  Unverified,
  /// jsr/ret subroutines: return addresses are data, so the CFG is not
  /// statically complete (mirrors dataflow.cpp's conservative jsr/ret).
  JsrRet,
  /// A retreating edge whose target does not dominate its source: the
  /// loop has multiple entries and no unique back-edge anchor.
  Irreducible,
  /// A cycle carried by an exception edge (handler reachable from its
  /// own protected range): no branch instruction anchors the iteration.
  ExceptionBackEdge,
  /// A back edge taken by straight-line fall-through (the block ends in
  /// a non-branch instruction): there is no branch site to instrument.
  FallthroughBackEdge,
  /// Instruction decode failed (defensive; verified code never trips it).
  MalformedCode,
  /// The residual graph still held a cycle after cutting check-site
  /// out-edges (defensive; implied impossible by the checks above).
  CheckFreeCycle,
};

/// Short stable name ("proved", "jsr_ret", ...) for reports and counters.
const char *analysisStatusName(AnalysisStatus S);

/// One basic block. EndPc is exclusive; Insns lists instruction pcs in
/// order. Successor/predecessor lists hold block indices.
struct BasicBlock {
  uint32_t StartPc = 0;
  uint32_t EndPc = 0;
  std::vector<uint32_t> Insns;
  /// Normal control-flow successors (branch targets + fall-through).
  std::vector<uint32_t> Succs;
  /// Exception successors (handler blocks covering any instruction here).
  std::vector<uint32_t> ExSuccs;
  std::vector<uint32_t> Preds; // Over Succs ∪ ExSuccs.
  bool Reachable = false;
  /// Immediate dominator block index; kNoBlock for entry/unreachable.
  uint32_t Idom = UINT32_MAX;
  /// Number of natural loops whose body contains this block.
  uint32_t LoopDepth = 0;
};

inline constexpr uint32_t kNoBlock = UINT32_MAX;

/// One natural loop (merged per header).
struct LoopInfo {
  uint32_t HeaderBlock = 0;
  /// 1 = outermost.
  uint32_t Depth = 1;
  /// Blocks whose terminating branch carries a back edge to the header.
  std::vector<uint32_t> BackEdgeSrcBlocks;
  /// Body block indices, header included, sorted.
  std::vector<uint32_t> BodyBlocks;
};

/// The full analysis result for one method body.
struct MethodAnalysis {
  AnalysisStatus Status = AnalysisStatus::NoCode;
  /// Human-readable failure locus ("pc 12 -> pc 4"), empty when Proved.
  std::string Detail;

  // CFG (valid for every status except NoCode/MalformedCode; for JsrRet
  // it is the conservative approximation used only for dumping).
  std::vector<BasicBlock> Blocks; // Sorted by StartPc.
  std::vector<LoopInfo> Loops;    // Sorted by header pc.
  uint32_t UnreachableBlocks = 0;

  // Placement (valid only when Status == Proved).
  /// Per-pc bits: 1 = the branch at this pc must keep its suspend check
  /// (it carries a loop back edge); 0 everywhere else. Sized to the code.
  std::vector<uint8_t> KeepCheck;
  /// Proven maximum number of bytecodes executable between two suspend
  /// checks anywhere in this method (longest path in the residual graph
  /// after cutting check-site out-edges; check instruction included).
  uint32_t BoundK = 0;
  /// Reachable branch instructions that keep / lose their check.
  uint32_t KeptBranchSites = 0;
  uint32_t ElidedBranchSites = 0;
  /// Reachable call-boundary check sites (invokes, monitors, returns,
  /// athrow) — always checked, never elidable.
  uint32_t CallSites = 0;

  bool ok() const { return Status == AnalysisStatus::Proved; }
};

/// Analyzes one method body. \p Verified is the dataflow verifier's
/// verdict for this method: analysis refuses to make placement claims
/// about bytecode the verifier rejected (Status == Unverified).
MethodAnalysis analyzeCode(const std::vector<uint8_t> &Code,
                           const std::vector<ExceptionHandler> &Handlers,
                           bool Verified = true);

/// Convenience wrapper over a parsed (not yet linked) method, for the
/// doppio-analyze CLI. Runs the verifier's per-method verdict first.
MethodAnalysis analyzeMethod(const ClassFile &Cf, const MemberInfo &M);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSFILE_ANALYSIS_H
