//===- jvm/classfile/opcodes.cpp ------------------------------------------==//

#include "jvm/classfile/opcodes.h"

using namespace doppio;
using namespace doppio::jvm;

namespace {

struct OpInfo {
  const char *Name;
  int OperandBytes;
  OpKind Kind;
  uint8_t Quick; ///< quickened form, == opcode value when none
  uint8_t Base;  ///< base form for _quick opcodes, == opcode value else
  bool IsQuick;
};

/// Indexed by opcode value; gaps are null/-2.
struct OpTable {
  OpInfo Info[256];

  constexpr OpTable() : Info() {
    for (int I = 0; I != 256; ++I)
      Info[I] = {nullptr, -2, OpKind::Plain, static_cast<uint8_t>(I),
                 static_cast<uint8_t>(I), false};
#define JVM_OPCODE(NAME, VALUE, OPERANDS, KIND, QUICK)                         \
  Info[VALUE] = {#NAME,          OPERANDS,                                     \
                 OpKind::KIND,   static_cast<uint8_t>(Op::QUICK),              \
                 VALUE,          false};
#define JVM_QUICK_OPCODE(NAME, VALUE, OPERANDS, KIND, BASE)                    \
  Info[VALUE] = {#NAME,          OPERANDS,                                     \
                 OpKind::KIND,   VALUE,                                        \
                 static_cast<uint8_t>(Op::BASE),                               \
                 true};
#include "jvm/classfile/opcodes.def"
#undef JVM_QUICK_OPCODE
#undef JVM_OPCODE
  }
};

constexpr OpTable Table;

int32_t rdS2(const std::vector<uint8_t> &Code, uint32_t At) {
  return static_cast<int16_t>((Code[At] << 8) | Code[At + 1]);
}

int32_t rdS4(const std::vector<uint8_t> &Code, uint32_t At) {
  return static_cast<int32_t>((static_cast<uint32_t>(Code[At]) << 24) |
                              (static_cast<uint32_t>(Code[At + 1]) << 16) |
                              (static_cast<uint32_t>(Code[At + 2]) << 8) |
                              static_cast<uint32_t>(Code[At + 3]));
}

} // namespace

const char *jvm::opcodeName(uint8_t Opcode) {
  const char *Name = Table.Info[Opcode].Name;
  return Name ? Name : "<illegal>";
}

int jvm::opcodeOperandBytes(uint8_t Opcode) {
  return Table.Info[Opcode].OperandBytes;
}

bool jvm::isLegalOpcode(uint8_t Opcode) {
  return Table.Info[Opcode].Name != nullptr && !Table.Info[Opcode].IsQuick;
}

bool jvm::isQuickOpcode(uint8_t Opcode) { return Table.Info[Opcode].IsQuick; }

uint8_t jvm::quickenedForm(uint8_t Opcode) { return Table.Info[Opcode].Quick; }

uint8_t jvm::baseOpcode(uint8_t Opcode) { return Table.Info[Opcode].Base; }

OpKind jvm::opcodeKind(uint8_t Opcode) { return Table.Info[Opcode].Kind; }

bool jvm::isPlacedBranchOp(Op O) {
  switch (opcodeKind(static_cast<uint8_t>(O))) {
  case OpKind::If:
  case OpKind::GotoOp:
  case OpKind::GotoWOp:
  case OpKind::TableSw:
  case OpKind::LookupSw:
    return true;
  default:
    return false;
  }
}

bool jvm::isCallBoundaryOp(Op O) {
  switch (opcodeKind(static_cast<uint8_t>(O))) {
  case OpKind::Invoke:
  case OpKind::Monitor:
  case OpKind::ReturnOp:
  case OpKind::ThrowOp:
    return true;
  default:
    return false;
  }
}

int jvm::opcodeCount() {
  int N = 0;
  for (int I = 0; I != 256; ++I)
    if (Table.Info[I].Name && !Table.Info[I].IsQuick)
      ++N;
  return N;
}

BranchDecode jvm::decodeBranch(const std::vector<uint8_t> &Code, uint32_t Pc) {
  BranchDecode D;
  switch (opcodeKind(Code[Pc])) {
  case OpKind::If:
    D.Targets.push_back(Pc + rdS2(Code, Pc + 1));
    D.IsBranch = true;
    break;
  case OpKind::GotoOp:
    D.Targets.push_back(Pc + rdS2(Code, Pc + 1));
    D.FallsThrough = false;
    D.IsBranch = true;
    break;
  case OpKind::GotoWOp:
    D.Targets.push_back(Pc + rdS4(Code, Pc + 1));
    D.FallsThrough = false;
    D.IsBranch = true;
    break;
  case OpKind::TableSw: {
    uint32_t Operand = (Pc + 4) & ~3u;
    int32_t Low = rdS4(Code, Operand + 4);
    int32_t High = rdS4(Code, Operand + 8);
    D.Targets.push_back(Pc + rdS4(Code, Operand));
    for (int32_t J = 0; J <= High - Low; ++J)
      D.Targets.push_back(
          Pc + rdS4(Code, Operand + 12 + 4 * static_cast<uint32_t>(J)));
    D.FallsThrough = false;
    D.IsBranch = true;
    break;
  }
  case OpKind::LookupSw: {
    uint32_t Operand = (Pc + 4) & ~3u;
    int32_t NPairs = rdS4(Code, Operand + 4);
    D.Targets.push_back(Pc + rdS4(Code, Operand));
    for (int32_t J = 0; J != NPairs; ++J)
      D.Targets.push_back(
          Pc + rdS4(Code, Operand + 12 + 8 * static_cast<uint32_t>(J)));
    D.FallsThrough = false;
    D.IsBranch = true;
    break;
  }
  // jsr flows to the subroutine; the matching ret comes back to the
  // next instruction. The target edge only — callers model the return
  // edge (or reject the method) themselves.
  case OpKind::JsrOp:
    D.Targets.push_back(Pc + rdS2(Code, Pc + 1));
    D.UsesJsrRet = true;
    break;
  case OpKind::JsrWOp:
    D.Targets.push_back(Pc + rdS4(Code, Pc + 1));
    D.UsesJsrRet = true;
    break;
  case OpKind::RetOp:
    D.FallsThrough = false;
    D.UsesJsrRet = true;
    break;
  case OpKind::WideOp:
    if (Pc + 1 < Code.size() && static_cast<Op>(Code[Pc + 1]) == Op::Ret) {
      D.FallsThrough = false;
      D.UsesJsrRet = true;
    }
    break;
  case OpKind::ReturnOp:
  case OpKind::ThrowOp:
    D.FallsThrough = false;
    break;
  default:
    break;
  }
  return D;
}
