//===- jvm/classfile/opcodes.cpp ------------------------------------------==//

#include "jvm/classfile/opcodes.h"

using namespace doppio;
using namespace doppio::jvm;

namespace {

struct OpInfo {
  const char *Name;
  int OperandBytes;
};

/// Indexed by opcode value; gaps are null/-2.
struct OpTable {
  OpInfo Info[256];

  constexpr OpTable() : Info() {
    for (auto &I : Info)
      I = {nullptr, -2};
#define JVM_OPCODE(NAME, VALUE, OPERANDS) Info[VALUE] = {#NAME, OPERANDS};
#include "jvm/classfile/opcodes.def"
#undef JVM_OPCODE
  }
};

constexpr OpTable Table;

} // namespace

const char *jvm::opcodeName(uint8_t Opcode) {
  const char *Name = Table.Info[Opcode].Name;
  return Name ? Name : "<illegal>";
}

int jvm::opcodeOperandBytes(uint8_t Opcode) {
  return Table.Info[Opcode].OperandBytes;
}

bool jvm::isLegalOpcode(uint8_t Opcode) {
  return Table.Info[Opcode].Name != nullptr;
}

int jvm::opcodeCount() {
  int N = 0;
  for (int I = 0; I != 256; ++I)
    if (Table.Info[I].Name)
      ++N;
  return N;
}
