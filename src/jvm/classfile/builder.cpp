//===- jvm/classfile/builder.cpp ------------------------------------------==//

#include "jvm/classfile/builder.h"

#include "jvm/classfile/dataflow.h"

#include "doppio/path.h"

#include <bit>
#include <cassert>
#include <cmath>

using namespace doppio;
using namespace doppio::jvm;

//===----------------------------------------------------------------------===//
// Stack effect of zero-operand instructions
//===----------------------------------------------------------------------===//

/// Stack-depth delta of a zero-operand instruction.
static int opStackDelta(Op O) {
  switch (O) {
  case Op::Nop:
  case Op::Swap:
  case Op::Ineg:
  case Op::Lneg:
  case Op::Fneg:
  case Op::Dneg:
  case Op::I2f:
  case Op::F2i:
  case Op::L2d:
  case Op::D2l:
  case Op::I2b:
  case Op::I2c:
  case Op::I2s:
  case Op::Arraylength:
  case Op::Return:
    return 0;
  case Op::AconstNull:
  case Op::IconstM1:
  case Op::Iconst0:
  case Op::Iconst1:
  case Op::Iconst2:
  case Op::Iconst3:
  case Op::Iconst4:
  case Op::Iconst5:
  case Op::Fconst0:
  case Op::Fconst1:
  case Op::Fconst2:
  case Op::Dup:
  case Op::DupX1:
  case Op::DupX2:
  case Op::I2l:
  case Op::I2d:
  case Op::F2l:
  case Op::F2d:
    return 1;
  case Op::Lconst0:
  case Op::Lconst1:
  case Op::Dconst0:
  case Op::Dconst1:
  case Op::Dup2:
  case Op::Dup2X1:
  case Op::Dup2X2:
    return 2;
  case Op::Iaload:
  case Op::Faload:
  case Op::Aaload:
  case Op::Baload:
  case Op::Caload:
  case Op::Saload:
  case Op::Pop:
  case Op::Iadd:
  case Op::Fadd:
  case Op::Isub:
  case Op::Fsub:
  case Op::Imul:
  case Op::Fmul:
  case Op::Idiv:
  case Op::Fdiv:
  case Op::Irem:
  case Op::Frem:
  case Op::Ishl:
  case Op::Ishr:
  case Op::Iushr:
  case Op::Iand:
  case Op::Ior:
  case Op::Ixor:
  case Op::Lshl:
  case Op::Lshr:
  case Op::Lushr:
  case Op::L2i:
  case Op::L2f:
  case Op::D2i:
  case Op::D2f:
  case Op::Fcmpl:
  case Op::Fcmpg:
  case Op::Ireturn:
  case Op::Freturn:
  case Op::Areturn:
  case Op::Athrow:
  case Op::Monitorenter:
  case Op::Monitorexit:
    return -1;
  case Op::Laload:
  case Op::Daload:
    return 0; // Pops ref+index, pushes a category-2 value.
  case Op::Pop2:
  case Op::Ladd:
  case Op::Dadd:
  case Op::Lsub:
  case Op::Dsub:
  case Op::Lmul:
  case Op::Dmul:
  case Op::Ldiv:
  case Op::Ddiv:
  case Op::Lrem:
  case Op::Drem:
  case Op::Land:
  case Op::Lor:
  case Op::Lxor:
  case Op::Lreturn:
  case Op::Dreturn:
    return -2;
  case Op::Iastore:
  case Op::Fastore:
  case Op::Aastore:
  case Op::Bastore:
  case Op::Castore:
  case Op::Sastore:
  case Op::Lcmp:
  case Op::Dcmpl:
  case Op::Dcmpg:
    return -3;
  case Op::Lastore:
  case Op::Dastore:
    return -4;
  default:
    assert(false && "not a zero-operand instruction");
    return 0;
  }
}

/// Instructions after which execution never falls through.
static bool endsFlow(Op O) {
  switch (O) {
  case Op::Ireturn:
  case Op::Lreturn:
  case Op::Freturn:
  case Op::Dreturn:
  case Op::Areturn:
  case Op::Return:
  case Op::Athrow:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// MethodBuilder
//===----------------------------------------------------------------------===//

MethodBuilder::MethodBuilder(ClassBuilder &Cb, uint16_t Flags,
                             std::string Name, std::string Desc)
    : Cb(Cb), Flags(Flags), Name(std::move(Name)),
      Descriptor(std::move(Desc)) {
  std::optional<desc::MethodDesc> D = desc::parseMethod(Descriptor);
  assert(D && "malformed method descriptor");
  MaxLocals = desc::paramSlots(*D) + ((Flags & AccStatic) ? 0 : 1);
}

MethodBuilder::Label MethodBuilder::newLabel() {
  LabelPos.push_back(-1);
  LabelDepth.push_back(-1);
  return static_cast<Label>(LabelPos.size() - 1);
}

MethodBuilder &MethodBuilder::bind(Label L) {
  assert(LabelPos[L] == -1 && "label bound twice");
  LabelPos[L] = static_cast<int32_t>(Code.size());
  if (LabelDepth[L] != -1) {
    // A branch already recorded the depth here.
    StackDepth = LabelDepth[L];
    Reachable = true;
  } else if (Reachable) {
    LabelDepth[L] = StackDepth;
  }
  return *this;
}

void MethodBuilder::adjustStack(int Delta) {
  if (!Reachable)
    return;
  StackDepth += Delta;
  assert(StackDepth >= 0 && "operand stack underflow in assembler");
  MaxStack = std::max(MaxStack, StackDepth);
}

void MethodBuilder::flowTo(Label L) {
  if (!Reachable)
    return;
  if (LabelDepth[L] == -1)
    LabelDepth[L] = StackDepth;
  else
    assert(LabelDepth[L] == StackDepth &&
           "inconsistent stack depth at branch target");
}

void MethodBuilder::endFlow() { Reachable = false; }

void MethodBuilder::emit(Op Opcode) {
  Code.push_back(static_cast<uint8_t>(Opcode));
}

void MethodBuilder::emitU2(uint16_t V) {
  Code.push_back(static_cast<uint8_t>(V >> 8));
  Code.push_back(static_cast<uint8_t>(V));
}

void MethodBuilder::emitU4(uint32_t V) {
  emitU2(static_cast<uint16_t>(V >> 16));
  emitU2(static_cast<uint16_t>(V));
}

MethodBuilder &MethodBuilder::iconst(int32_t V) {
  adjustStack(1);
  if (V >= -1 && V <= 5) {
    emit(static_cast<Op>(static_cast<int>(Op::Iconst0) + V));
    return *this;
  }
  if (V >= -128 && V <= 127) {
    emit(Op::Bipush);
    emitU1(static_cast<uint8_t>(V));
    return *this;
  }
  if (V >= -32768 && V <= 32767) {
    emit(Op::Sipush);
    emitU2(static_cast<uint16_t>(V));
    return *this;
  }
  uint16_t Idx = Cb.pool().addInteger(V);
  if (Idx <= 255) {
    emit(Op::Ldc);
    emitU1(static_cast<uint8_t>(Idx));
  } else {
    emit(Op::LdcW);
    emitU2(Idx);
  }
  return *this;
}

MethodBuilder &MethodBuilder::lconst(int64_t V) {
  adjustStack(2);
  if (V == 0 || V == 1) {
    emit(V == 0 ? Op::Lconst0 : Op::Lconst1);
    return *this;
  }
  emit(Op::Ldc2W);
  emitU2(Cb.pool().addLong(V));
  return *this;
}

MethodBuilder &MethodBuilder::fconst(float V) {
  adjustStack(1);
  if (V == 0.0f && !std::signbit(V)) {
    emit(Op::Fconst0);
    return *this;
  }
  if (V == 1.0f) {
    emit(Op::Fconst1);
    return *this;
  }
  if (V == 2.0f) {
    emit(Op::Fconst2);
    return *this;
  }
  uint16_t Idx = Cb.pool().addFloat(V);
  if (Idx <= 255) {
    emit(Op::Ldc);
    emitU1(static_cast<uint8_t>(Idx));
  } else {
    emit(Op::LdcW);
    emitU2(Idx);
  }
  return *this;
}

MethodBuilder &MethodBuilder::dconst(double V) {
  adjustStack(2);
  if (V == 0.0 && !std::signbit(V)) {
    emit(Op::Dconst0);
    return *this;
  }
  if (V == 1.0) {
    emit(Op::Dconst1);
    return *this;
  }
  emit(Op::Ldc2W);
  emitU2(Cb.pool().addDouble(V));
  return *this;
}

MethodBuilder &MethodBuilder::ldcString(const std::string &Text) {
  adjustStack(1);
  uint16_t Idx = Cb.pool().addString(Text);
  if (Idx <= 255) {
    emit(Op::Ldc);
    emitU1(static_cast<uint8_t>(Idx));
  } else {
    emit(Op::LdcW);
    emitU2(Idx);
  }
  return *this;
}

MethodBuilder &MethodBuilder::aconstNull() {
  adjustStack(1);
  emit(Op::AconstNull);
  return *this;
}

void MethodBuilder::noteLocal(int Slot, int Slots) {
  MaxLocals = std::max(MaxLocals, Slot + Slots);
}

void MethodBuilder::load(Op Base1, Op BaseN, int Slot, int Slots) {
  noteLocal(Slot, Slots);
  adjustStack(Slots);
  if (Slot <= 3) {
    emit(static_cast<Op>(static_cast<int>(Base1) + Slot));
    return;
  }
  if (Slot <= 255) {
    emit(BaseN);
    emitU1(static_cast<uint8_t>(Slot));
    return;
  }
  emit(Op::Wide);
  emit(BaseN);
  emitU2(static_cast<uint16_t>(Slot));
}

void MethodBuilder::store(Op Base1, Op BaseN, int Slot, int Slots) {
  noteLocal(Slot, Slots);
  adjustStack(-Slots);
  if (Slot <= 3) {
    emit(static_cast<Op>(static_cast<int>(Base1) + Slot));
    return;
  }
  if (Slot <= 255) {
    emit(BaseN);
    emitU1(static_cast<uint8_t>(Slot));
    return;
  }
  emit(Op::Wide);
  emit(BaseN);
  emitU2(static_cast<uint16_t>(Slot));
}

MethodBuilder &MethodBuilder::iload(int S) {
  load(Op::Iload0, Op::Iload, S, 1);
  return *this;
}
MethodBuilder &MethodBuilder::lload(int S) {
  load(Op::Lload0, Op::Lload, S, 2);
  return *this;
}
MethodBuilder &MethodBuilder::fload(int S) {
  load(Op::Fload0, Op::Fload, S, 1);
  return *this;
}
MethodBuilder &MethodBuilder::dload(int S) {
  load(Op::Dload0, Op::Dload, S, 2);
  return *this;
}
MethodBuilder &MethodBuilder::aload(int S) {
  load(Op::Aload0, Op::Aload, S, 1);
  return *this;
}
MethodBuilder &MethodBuilder::istore(int S) {
  store(Op::Istore0, Op::Istore, S, 1);
  return *this;
}
MethodBuilder &MethodBuilder::lstore(int S) {
  store(Op::Lstore0, Op::Lstore, S, 2);
  return *this;
}
MethodBuilder &MethodBuilder::fstore(int S) {
  store(Op::Fstore0, Op::Fstore, S, 1);
  return *this;
}
MethodBuilder &MethodBuilder::dstore(int S) {
  store(Op::Dstore0, Op::Dstore, S, 2);
  return *this;
}
MethodBuilder &MethodBuilder::astore(int S) {
  store(Op::Astore0, Op::Astore, S, 1);
  return *this;
}

MethodBuilder &MethodBuilder::iinc(int Slot, int32_t Delta) {
  noteLocal(Slot, 1);
  if (Slot <= 255 && Delta >= -128 && Delta <= 127) {
    emit(Op::Iinc);
    emitU1(static_cast<uint8_t>(Slot));
    emitU1(static_cast<uint8_t>(static_cast<int8_t>(Delta)));
    return *this;
  }
  emit(Op::Wide);
  emit(Op::Iinc);
  emitU2(static_cast<uint16_t>(Slot));
  emitU2(static_cast<uint16_t>(static_cast<int16_t>(Delta)));
  return *this;
}

MethodBuilder &MethodBuilder::op(Op Opcode) {
  adjustStack(opStackDelta(Opcode));
  emit(Opcode);
  if (endsFlow(Opcode))
    endFlow();
  return *this;
}

MethodBuilder &MethodBuilder::branch(Op Opcode, Label Target) {
  int Delta = 0;
  bool Wide = false;
  bool Unconditional = false;
  switch (Opcode) {
  case Op::Ifeq:
  case Op::Ifne:
  case Op::Iflt:
  case Op::Ifge:
  case Op::Ifgt:
  case Op::Ifle:
  case Op::Ifnull:
  case Op::Ifnonnull:
    Delta = -1;
    break;
  case Op::IfIcmpeq:
  case Op::IfIcmpne:
  case Op::IfIcmplt:
  case Op::IfIcmpge:
  case Op::IfIcmpgt:
  case Op::IfIcmple:
  case Op::IfAcmpeq:
  case Op::IfAcmpne:
    Delta = -2;
    break;
  case Op::Goto:
    Unconditional = true;
    break;
  case Op::GotoW:
    Unconditional = true;
    Wide = true;
    break;
  case Op::Jsr:
    break;
  case Op::JsrW:
    Wide = true;
    break;
  default:
    assert(false && "not a branch instruction");
  }
  adjustStack(Delta);
  size_t InsnPos = Code.size();
  emit(Opcode);
  if (Opcode == Op::Jsr || Opcode == Op::JsrW) {
    // The subroutine sees the return address on the stack.
    adjustStack(1);
    flowTo(Target);
    adjustStack(-1); // Fall-through depth is unchanged.
  } else {
    flowTo(Target);
  }
  Fixups.push_back({Code.size(), InsnPos, Target, Wide});
  if (Wide)
    emitU4(0);
  else
    emitU2(0);
  if (Unconditional)
    endFlow();
  return *this;
}

MethodBuilder &MethodBuilder::tableswitch(Label Default, int32_t Low,
                                          const std::vector<Label> &Targets) {
  adjustStack(-1);
  size_t InsnPos = Code.size();
  emit(Op::Tableswitch);
  while (Code.size() % 4 != 0)
    emitU1(0);
  flowTo(Default);
  Fixups.push_back({Code.size(), InsnPos, Default, /*Wide=*/true});
  emitU4(0);
  emitU4(static_cast<uint32_t>(Low));
  emitU4(static_cast<uint32_t>(Low + static_cast<int32_t>(Targets.size()) -
                               1));
  for (Label T : Targets) {
    flowTo(T);
    Fixups.push_back({Code.size(), InsnPos, T, /*Wide=*/true});
    emitU4(0);
  }
  endFlow();
  return *this;
}

MethodBuilder &MethodBuilder::lookupswitch(
    Label Default, const std::vector<std::pair<int32_t, Label>> &Cases) {
  adjustStack(-1);
  size_t InsnPos = Code.size();
  emit(Op::Lookupswitch);
  while (Code.size() % 4 != 0)
    emitU1(0);
  flowTo(Default);
  Fixups.push_back({Code.size(), InsnPos, Default, /*Wide=*/true});
  emitU4(0);
  emitU4(static_cast<uint32_t>(Cases.size()));
  for (const auto &[Match, T] : Cases) {
    emitU4(static_cast<uint32_t>(Match));
    flowTo(T);
    Fixups.push_back({Code.size(), InsnPos, T, /*Wide=*/true});
    emitU4(0);
  }
  endFlow();
  return *this;
}

MethodBuilder &MethodBuilder::retLocal(int Slot) {
  noteLocal(Slot, 1);
  if (Slot <= 255) {
    emit(Op::Ret);
    emitU1(static_cast<uint8_t>(Slot));
  } else {
    emit(Op::Wide);
    emit(Op::Ret);
    emitU2(static_cast<uint16_t>(Slot));
  }
  endFlow();
  return *this;
}

MethodBuilder &MethodBuilder::member(Op Opcode, CpTag Tag,
                                     const std::string &Cls,
                                     const std::string &Name,
                                     const std::string &Desc) {
  uint16_t Idx = 0;
  switch (Tag) {
  case CpTag::Fieldref:
    Idx = Cb.pool().addFieldref(Cls, Name, Desc);
    break;
  case CpTag::Methodref:
    Idx = Cb.pool().addMethodref(Cls, Name, Desc);
    break;
  case CpTag::InterfaceMethodref:
    Idx = Cb.pool().addInterfaceMethodref(Cls, Name, Desc);
    break;
  default:
    assert(false && "bad member tag");
  }
  emit(Opcode);
  emitU2(Idx);
  return *this;
}

MethodBuilder &MethodBuilder::getstatic(const std::string &Cls,
                                        const std::string &Name,
                                        const std::string &Desc) {
  adjustStack(desc::slotSize(Desc));
  return member(Op::Getstatic, CpTag::Fieldref, Cls, Name, Desc);
}

MethodBuilder &MethodBuilder::putstatic(const std::string &Cls,
                                        const std::string &Name,
                                        const std::string &Desc) {
  adjustStack(-desc::slotSize(Desc));
  return member(Op::Putstatic, CpTag::Fieldref, Cls, Name, Desc);
}

MethodBuilder &MethodBuilder::getfield(const std::string &Cls,
                                       const std::string &Name,
                                       const std::string &Desc) {
  adjustStack(desc::slotSize(Desc) - 1);
  return member(Op::Getfield, CpTag::Fieldref, Cls, Name, Desc);
}

MethodBuilder &MethodBuilder::putfield(const std::string &Cls,
                                       const std::string &Name,
                                       const std::string &Desc) {
  adjustStack(-desc::slotSize(Desc) - 1);
  return member(Op::Putfield, CpTag::Fieldref, Cls, Name, Desc);
}

/// Stack delta of an invocation.
static int invokeDelta(const std::string &Desc, bool HasReceiver) {
  std::optional<desc::MethodDesc> D = desc::parseMethod(Desc);
  assert(D && "malformed descriptor at invoke");
  return desc::slotSize(D->Ret) - desc::paramSlots(*D) -
         (HasReceiver ? 1 : 0);
}

MethodBuilder &MethodBuilder::invokevirtual(const std::string &Cls,
                                            const std::string &Name,
                                            const std::string &Desc) {
  adjustStack(invokeDelta(Desc, /*HasReceiver=*/true));
  return member(Op::Invokevirtual, CpTag::Methodref, Cls, Name, Desc);
}

MethodBuilder &MethodBuilder::invokespecial(const std::string &Cls,
                                            const std::string &Name,
                                            const std::string &Desc) {
  adjustStack(invokeDelta(Desc, /*HasReceiver=*/true));
  return member(Op::Invokespecial, CpTag::Methodref, Cls, Name, Desc);
}

MethodBuilder &MethodBuilder::invokestatic(const std::string &Cls,
                                           const std::string &Name,
                                           const std::string &Desc) {
  adjustStack(invokeDelta(Desc, /*HasReceiver=*/false));
  return member(Op::Invokestatic, CpTag::Methodref, Cls, Name, Desc);
}

MethodBuilder &MethodBuilder::invokeinterface(const std::string &Cls,
                                              const std::string &Name,
                                              const std::string &Desc) {
  adjustStack(invokeDelta(Desc, /*HasReceiver=*/true));
  uint16_t Idx = Cb.pool().addInterfaceMethodref(Cls, Name, Desc);
  std::optional<desc::MethodDesc> D = desc::parseMethod(Desc);
  emit(Op::Invokeinterface);
  emitU2(Idx);
  emitU1(static_cast<uint8_t>(desc::paramSlots(*D) + 1)); // Count slot.
  emitU1(0);                                              // Reserved zero.
  return *this;
}

MethodBuilder &MethodBuilder::anew(const std::string &Cls) {
  adjustStack(1);
  emit(Op::New);
  emitU2(Cb.pool().addClass(Cls));
  return *this;
}

MethodBuilder &MethodBuilder::newarray(ArrayType T) {
  emit(Op::Newarray);
  emitU1(static_cast<uint8_t>(T));
  return *this;
}

MethodBuilder &MethodBuilder::anewarray(const std::string &Cls) {
  emit(Op::Anewarray);
  emitU2(Cb.pool().addClass(Cls));
  return *this;
}

MethodBuilder &MethodBuilder::multianewarray(const std::string &ArrayDesc,
                                             int Dims) {
  adjustStack(-Dims + 1);
  emit(Op::Multianewarray);
  emitU2(Cb.pool().addClass(ArrayDesc));
  emitU1(static_cast<uint8_t>(Dims));
  return *this;
}

MethodBuilder &MethodBuilder::checkcast(const std::string &Cls) {
  emit(Op::Checkcast);
  emitU2(Cb.pool().addClass(Cls));
  return *this;
}

MethodBuilder &MethodBuilder::instanceOf(const std::string &Cls) {
  emit(Op::Instanceof);
  emitU2(Cb.pool().addClass(Cls));
  return *this;
}

MethodBuilder &MethodBuilder::handler(Label Start, Label End, Label Handler,
                                      const std::string &CatchClass) {
  Handlers.push_back({Start, End, Handler, CatchClass});
  // Handler entry sees exactly the thrown exception on the stack.
  if (LabelDepth[Handler] == -1)
    LabelDepth[Handler] = 1;
  MaxStack = std::max(MaxStack, 1);
  return *this;
}

MethodBuilder &MethodBuilder::rawOp(Op Opcode) {
  Code.push_back(static_cast<uint8_t>(Opcode));
  return *this;
}

MethodBuilder &MethodBuilder::rawU1(uint8_t V) {
  Code.push_back(V);
  return *this;
}

MethodBuilder &MethodBuilder::rawU2(uint16_t V) {
  emitU2(V);
  return *this;
}

MethodBuilder &MethodBuilder::overrideMaxStack(int V) {
  MaxStackOverride = V;
  return *this;
}

MethodBuilder &MethodBuilder::overrideMaxLocals(int V) {
  MaxLocalsOverride = V;
  return *this;
}

MemberInfo MethodBuilder::finish() {
  for (const Fixup &F : Fixups) {
    assert(LabelPos[F.Target] != -1 && "branch to unbound label");
    int32_t Offset = LabelPos[F.Target] - static_cast<int32_t>(F.InsnPos);
    if (F.Wide) {
      uint32_t U = static_cast<uint32_t>(Offset);
      Code[F.OperandPos] = static_cast<uint8_t>(U >> 24);
      Code[F.OperandPos + 1] = static_cast<uint8_t>(U >> 16);
      Code[F.OperandPos + 2] = static_cast<uint8_t>(U >> 8);
      Code[F.OperandPos + 3] = static_cast<uint8_t>(U);
    } else {
      assert(Offset >= -32768 && Offset <= 32767 &&
             "branch offset exceeds 16 bits; use goto_w");
      uint16_t U = static_cast<uint16_t>(static_cast<int16_t>(Offset));
      Code[F.OperandPos] = static_cast<uint8_t>(U >> 8);
      Code[F.OperandPos + 1] = static_cast<uint8_t>(U);
    }
  }
  MemberInfo M;
  M.AccessFlags = Flags;
  M.Name = Name;
  M.Descriptor = Descriptor;
  CodeAttr Attr;
  Attr.MaxStack = static_cast<uint16_t>(MaxStack);
  Attr.MaxLocals = static_cast<uint16_t>(MaxLocals);
  Attr.Bytecode = Code;
  for (const PendingHandler &H : Handlers) {
    assert(LabelPos[H.Start] != -1 && LabelPos[H.End] != -1 &&
           LabelPos[H.Handler] != -1 && "handler labels must be bound");
    ExceptionHandler E;
    E.StartPc = static_cast<uint16_t>(LabelPos[H.Start]);
    E.EndPc = static_cast<uint16_t>(LabelPos[H.End]);
    E.HandlerPc = static_cast<uint16_t>(LabelPos[H.Handler]);
    E.CatchType =
        H.CatchClass.empty() ? 0 : Cb.pool().addClass(H.CatchClass);
    Attr.Handlers.push_back(E);
  }
  M.Code = std::move(Attr);
  if (!Handlers.empty())
    refineMaxStack(M);
  if (MaxStackOverride >= 0)
    M.Code->MaxStack = static_cast<uint16_t>(MaxStackOverride);
  if (MaxLocalsOverride >= 0)
    M.Code->MaxLocals = static_cast<uint16_t>(MaxLocalsOverride);
  return M;
}

/// The linear depth simulation cannot see a handler body that is bound
/// while the assembler is in dead code: the usual try/catch idiom emits
/// the body after an unconditional branch and only registers it with
/// handler() afterwards, so none of its pushes reach MaxStack. Re-derive
/// max_stack from the dataflow analysis, which seeds every handler entry
/// at depth 1, keeping the simulated value as a floor (the analysis may
/// stop early on a method that is being built broken on purpose).
void MethodBuilder::refineMaxStack(MemberInfo &M) {
  MemberInfo Probe;
  Probe.AccessFlags = Flags;
  Probe.Name = Name;
  Probe.Descriptor = Descriptor;
  Probe.Code = *M.Code;
  Probe.Code->MaxStack = 0xFFFF; // Depth discovery must not clip.
  MethodDataflow Flow = analyzeMethodDataflow(Cb.Cf, Probe);
  size_t Deep = M.Code->MaxStack;
  for (const auto &Entry : Flow.In)
    Deep = std::max(Deep, Entry.second.Stack.size());
  M.Code->MaxStack = static_cast<uint16_t>(Deep);
}

//===----------------------------------------------------------------------===//
// ClassBuilder
//===----------------------------------------------------------------------===//

ClassBuilder::ClassBuilder(std::string Name, std::string Super) {
  Cf.ThisClass = std::move(Name);
  Cf.SuperClass = std::move(Super);
  Cf.SourceFile = rt::path::basename(Cf.ThisClass) + ".java";
}

ClassBuilder &ClassBuilder::setAccess(uint16_t Flags) {
  Cf.AccessFlags = Flags;
  return *this;
}

ClassBuilder &ClassBuilder::addInterface(const std::string &Name) {
  Cf.Interfaces.push_back(Name);
  return *this;
}

ClassBuilder &ClassBuilder::addField(uint16_t Flags, const std::string &Name,
                                     const std::string &Desc) {
  MemberInfo F;
  F.AccessFlags = Flags;
  F.Name = Name;
  F.Descriptor = Desc;
  Cf.Fields.push_back(std::move(F));
  return *this;
}

MethodBuilder &ClassBuilder::method(uint16_t Flags, const std::string &Name,
                                    const std::string &Desc) {
  Methods.push_back(std::unique_ptr<MethodBuilder>(
      new MethodBuilder(*this, Flags, Name, Desc)));
  return *Methods.back();
}

ClassBuilder &ClassBuilder::nativeMethod(uint16_t Flags,
                                         const std::string &Name,
                                         const std::string &Desc) {
  MemberInfo M;
  M.AccessFlags = static_cast<uint16_t>(Flags | AccNative);
  M.Name = Name;
  M.Descriptor = Desc;
  Cf.Methods.push_back(std::move(M));
  return *this;
}

ClassBuilder &ClassBuilder::abstractMethod(uint16_t Flags,
                                           const std::string &Name,
                                           const std::string &Desc) {
  MemberInfo M;
  M.AccessFlags = static_cast<uint16_t>(Flags | AccAbstract);
  M.Name = Name;
  M.Descriptor = Desc;
  Cf.Methods.push_back(std::move(M));
  return *this;
}

ClassBuilder &ClassBuilder::addDefaultConstructor() {
  MethodBuilder &M = method(AccPublic, "<init>", "()V");
  M.aload(0)
      .invokespecial(Cf.SuperClass.empty() ? "java/lang/Object"
                                           : Cf.SuperClass,
                     "<init>", "()V")
      .op(Op::Return);
  return *this;
}

ClassFile ClassBuilder::build() {
  for (auto &M : Methods)
    Cf.Methods.push_back(M->finish());
  Methods.clear();
  return Cf;
}

std::vector<uint8_t> ClassBuilder::bytes() {
  return writeClassFile(build());
}
