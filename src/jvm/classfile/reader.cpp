//===- jvm/classfile/reader.cpp - .class file parser ----------------------==//
//
// Parses the binary class-file format (JVM spec 2nd ed., chapter 4). In
// the paper this work happens in JavaScript over Buffer (§6.4): "decoding
// these class file definitions requires functionality that can convert the
// binary representations of various numeric formats and a standard string
// format" — functionality browsers lack and Doppio supplies.
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/classfile.h"

#include <bit>

using namespace doppio;
using namespace doppio::jvm;
using rt::ApiError;
using rt::Errno;
using rt::ErrorOr;

namespace {

/// Bounds-checked big-endian cursor over the class file bytes.
class Cursor {
public:
  explicit Cursor(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool failed() const { return Failed; }
  size_t position() const { return Pos; }

  uint8_t u1() {
    if (Pos + 1 > Bytes.size())
      return fail();
    return Bytes[Pos++];
  }

  uint16_t u2() {
    uint16_t Hi = u1();
    return static_cast<uint16_t>((Hi << 8) | u1());
  }

  uint32_t u4() {
    uint32_t Hi = u2();
    return (Hi << 16) | u2();
  }

  std::string bytes(size_t N) {
    if (Pos + N > Bytes.size()) {
      fail();
      return std::string();
    }
    std::string Out(Bytes.begin() + Pos, Bytes.begin() + Pos + N);
    Pos += N;
    return Out;
  }

  void skip(size_t N) {
    if (Pos + N > Bytes.size()) {
      fail();
      return;
    }
    Pos += N;
  }

private:
  uint8_t fail() {
    Failed = true;
    return 0;
  }

  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

ErrorOr<ConstantPool> readPool(Cursor &In) {
  ConstantPool Pool;
  uint16_t Count = In.u2();
  for (uint16_t I = 1; I < Count && !In.failed(); ++I) {
    CpEntry E;
    E.Tag = static_cast<CpTag>(In.u1());
    switch (E.Tag) {
    case CpTag::Utf8: {
      uint16_t Len = In.u2();
      E.Utf8 = In.bytes(Len);
      break;
    }
    case CpTag::Integer:
      E.Int = static_cast<int32_t>(In.u4());
      break;
    case CpTag::Float:
      E.F = std::bit_cast<float>(In.u4());
      break;
    case CpTag::Long:
    case CpTag::Double: {
      uint64_t Hi = In.u4();
      uint64_t Lo = In.u4();
      E.LongBits = static_cast<int64_t>((Hi << 32) | Lo);
      break;
    }
    case CpTag::Class:
    case CpTag::String:
      E.Ref1 = In.u2();
      break;
    case CpTag::Fieldref:
    case CpTag::Methodref:
    case CpTag::InterfaceMethodref:
    case CpTag::NameAndType:
      E.Ref1 = In.u2();
      E.Ref2 = In.u2();
      break;
    default:
      return ApiError(Errno::Invalid,
                      "unknown constant pool tag " +
                          std::to_string(static_cast<int>(E.Tag)));
    }
    bool TwoSlots = E.Tag == CpTag::Long || E.Tag == CpTag::Double;
    Pool.appendRaw(std::move(E));
    if (TwoSlots) {
      Pool.appendRaw(CpEntry());
      ++I;
    }
  }
  if (In.failed())
    return ApiError(Errno::Invalid, "truncated constant pool");
  return Pool;
}

ErrorOr<CodeAttr> readCode(Cursor &In) {
  CodeAttr Code;
  Code.MaxStack = In.u2();
  Code.MaxLocals = In.u2();
  uint32_t CodeLen = In.u4();
  std::string Bytecode = In.bytes(CodeLen);
  Code.Bytecode.assign(Bytecode.begin(), Bytecode.end());
  uint16_t HandlerCount = In.u2();
  for (uint16_t I = 0; I != HandlerCount; ++I) {
    ExceptionHandler H;
    H.StartPc = In.u2();
    H.EndPc = In.u2();
    H.HandlerPc = In.u2();
    H.CatchType = In.u2();
    Code.Handlers.push_back(H);
  }
  // Sub-attributes (LineNumberTable, ...) are ignored.
  uint16_t AttrCount = In.u2();
  for (uint16_t I = 0; I != AttrCount; ++I) {
    In.u2(); // Name index.
    uint32_t Len = In.u4();
    In.skip(Len);
  }
  if (In.failed())
    return ApiError(Errno::Invalid, "truncated Code attribute");
  return Code;
}

ErrorOr<MemberInfo> readMember(Cursor &In, const ConstantPool &Pool,
                               bool IsMethod) {
  MemberInfo M;
  M.AccessFlags = In.u2();
  uint16_t NameIdx = In.u2();
  uint16_t DescIdx = In.u2();
  if (In.failed() || !Pool.valid(NameIdx) || !Pool.valid(DescIdx))
    return ApiError(Errno::Invalid, "truncated member info");
  M.Name = Pool.utf8(NameIdx);
  M.Descriptor = Pool.utf8(DescIdx);
  uint16_t AttrCount = In.u2();
  for (uint16_t I = 0; I != AttrCount && !In.failed(); ++I) {
    uint16_t AttrName = In.u2();
    uint32_t Len = In.u4();
    if (!Pool.valid(AttrName)) {
      In.skip(Len);
      continue;
    }
    const std::string &Name = Pool.utf8(AttrName);
    if (IsMethod && Name == "Code") {
      ErrorOr<CodeAttr> Code = readCode(In);
      if (!Code)
        return Code.error();
      M.Code = std::move(*Code);
      continue;
    }
    if (!IsMethod && Name == "ConstantValue" && Len == 2) {
      M.ConstantValueIndex = In.u2();
      continue;
    }
    In.skip(Len);
  }
  if (In.failed())
    return ApiError(Errno::Invalid, "truncated member attributes");
  return M;
}

} // namespace

ErrorOr<ClassFile> jvm::readClassFile(const std::vector<uint8_t> &Bytes) {
  Cursor In(Bytes);
  if (In.u4() != 0xCAFEBABE)
    return ApiError(Errno::Invalid, "bad magic (not a class file)");
  ClassFile Cf;
  Cf.MinorVersion = In.u2();
  Cf.MajorVersion = In.u2();
  ErrorOr<ConstantPool> Pool = readPool(In);
  if (!Pool)
    return Pool.error();
  Cf.Pool = std::move(*Pool);
  Cf.AccessFlags = In.u2();
  uint16_t ThisIdx = In.u2();
  uint16_t SuperIdx = In.u2();
  if (In.failed() || !Cf.Pool.valid(ThisIdx))
    return ApiError(Errno::Invalid, "truncated class header");
  Cf.ThisClass = Cf.Pool.className(ThisIdx);
  if (SuperIdx != 0) {
    if (!Cf.Pool.valid(SuperIdx))
      return ApiError(Errno::Invalid, "bad superclass index");
    Cf.SuperClass = Cf.Pool.className(SuperIdx);
  }
  uint16_t IfaceCount = In.u2();
  for (uint16_t I = 0; I != IfaceCount && !In.failed(); ++I) {
    uint16_t Idx = In.u2();
    if (!Cf.Pool.valid(Idx))
      return ApiError(Errno::Invalid, "bad interface index");
    Cf.Interfaces.push_back(Cf.Pool.className(Idx));
  }
  uint16_t FieldCount = In.u2();
  for (uint16_t I = 0; I != FieldCount && !In.failed(); ++I) {
    ErrorOr<MemberInfo> M = readMember(In, Cf.Pool, /*IsMethod=*/false);
    if (!M)
      return M.error();
    Cf.Fields.push_back(std::move(*M));
  }
  uint16_t MethodCount = In.u2();
  for (uint16_t I = 0; I != MethodCount && !In.failed(); ++I) {
    ErrorOr<MemberInfo> M = readMember(In, Cf.Pool, /*IsMethod=*/true);
    if (!M)
      return M.error();
    Cf.Methods.push_back(std::move(*M));
  }
  uint16_t AttrCount = In.u2();
  for (uint16_t I = 0; I != AttrCount && !In.failed(); ++I) {
    uint16_t AttrName = In.u2();
    uint32_t Len = In.u4();
    if (Cf.Pool.valid(AttrName) && Cf.Pool.utf8(AttrName) == "SourceFile" &&
        Len == 2) {
      uint16_t SrcIdx = In.u2();
      if (Cf.Pool.valid(SrcIdx))
        Cf.SourceFile = Cf.Pool.utf8(SrcIdx);
      continue;
    }
    In.skip(Len);
  }
  if (In.failed())
    return ApiError(Errno::Invalid, "truncated class file");
  return Cf;
}
