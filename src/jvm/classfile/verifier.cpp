//===- jvm/classfile/verifier.cpp -----------------------------------------==//

#include "jvm/classfile/verifier.h"

#include "jvm/classfile/dataflow.h"
#include "jvm/classfile/descriptor.h"
#include "jvm/classfile/disasm.h"
#include "jvm/classfile/opcodes.h"

#include <set>

using namespace doppio;
using namespace doppio::jvm;

namespace {

class MethodVerifier {
public:
  MethodVerifier(const ClassFile &Cf, const MemberInfo &M,
                 std::vector<VerifyError> &Errors)
      : Cf(Cf), M(M), Code(M.Code->Bytecode), Errors(Errors) {}

  void run() {
    if (Code.empty()) {
      error(0, "empty code array");
      return;
    }
    if (!decodeBoundaries())
      return;
    for (uint32_t Pc : Starts)
      checkInstruction(Pc);
    checkHandlers();
    checkFallOff();
  }

private:
  void error(uint32_t Pc, const std::string &Message) {
    Errors.push_back({M.Name + M.Descriptor, Pc, Message});
  }

  uint16_t rdU2(uint32_t At) const {
    return static_cast<uint16_t>((Code[At] << 8) | Code[At + 1]);
  }
  int32_t rdS4(uint32_t At) const {
    return static_cast<int32_t>(
        (static_cast<uint32_t>(Code[At]) << 24) |
        (static_cast<uint32_t>(Code[At + 1]) << 16) |
        (static_cast<uint32_t>(Code[At + 2]) << 8) |
        static_cast<uint32_t>(Code[At + 3]));
  }

  /// Walks the code array once, recording instruction start offsets.
  /// Collects every boundary error rather than bailing at the first:
  /// illegal opcodes resynchronize one byte ahead so later defects still
  /// surface; a truncated instruction ends the scan (its length — and so
  /// every later boundary — is unknowable).
  bool decodeBoundaries() {
    uint32_t Pc = 0;
    bool Clean = true;
    while (Pc < Code.size()) {
      if (!isLegalOpcode(Code[Pc])) {
        error(Pc, "illegal opcode " + std::to_string(Code[Pc]));
        Clean = false;
        ++Pc;
        continue;
      }
      uint32_t Len = instructionLength(Code, Pc);
      if (Len == 0) {
        error(Pc, std::string("truncated ") + opcodeName(Code[Pc]));
        return false;
      }
      if (Clean)
        Starts.insert(Pc);
      Pc += Len;
    }
    return Clean;
  }

  bool isStart(uint32_t Pc) const { return Starts.count(Pc) != 0; }

  void checkBranch(uint32_t Pc, int64_t Target) {
    if (Target < 0 || Target >= static_cast<int64_t>(Code.size()) ||
        !isStart(static_cast<uint32_t>(Target)))
      error(Pc, "branch target " + std::to_string(Target) +
                    " is not an instruction boundary");
  }

  void checkLocal(uint32_t Pc, uint32_t Slot, int Width) {
    if (Slot + Width > M.Code->MaxLocals)
      error(Pc, "local " + std::to_string(Slot) + " exceeds max_locals " +
                    std::to_string(M.Code->MaxLocals));
  }

  void checkPool(uint32_t Pc, uint16_t Idx,
                 std::initializer_list<CpTag> Allowed) {
    if (!Cf.Pool.valid(Idx)) {
      error(Pc, "constant pool index " + std::to_string(Idx) +
                    " out of range");
      return;
    }
    CpTag Tag = Cf.Pool.at(Idx).Tag;
    for (CpTag A : Allowed)
      if (Tag == A)
        return;
    error(Pc, "constant pool entry " + std::to_string(Idx) +
                  " has the wrong tag for this instruction");
  }

  void checkInstruction(uint32_t Pc) {
    Op O = static_cast<Op>(Code[Pc]);
    switch (O) {
    case Op::Iload:
    case Op::Fload:
    case Op::Aload:
    case Op::Istore:
    case Op::Fstore:
    case Op::Astore:
    case Op::Ret:
      checkLocal(Pc, Code[Pc + 1], 1);
      return;
    case Op::Lload:
    case Op::Dload:
    case Op::Lstore:
    case Op::Dstore:
      checkLocal(Pc, Code[Pc + 1], 2);
      return;
    case Op::Iinc:
      checkLocal(Pc, Code[Pc + 1], 1);
      return;
    case Op::Iload0:
    case Op::Iload1:
    case Op::Iload2:
    case Op::Iload3:
      checkLocal(Pc, static_cast<int>(O) - static_cast<int>(Op::Iload0),
                 1);
      return;
    case Op::Astore0:
    case Op::Astore1:
    case Op::Astore2:
    case Op::Astore3:
      checkLocal(Pc, static_cast<int>(O) - static_cast<int>(Op::Astore0),
                 1);
      return;
    case Op::Ldc:
      checkPool(Pc, Code[Pc + 1],
                {CpTag::Integer, CpTag::Float, CpTag::String,
                 CpTag::Class});
      return;
    case Op::LdcW:
      checkPool(Pc, rdU2(Pc + 1),
                {CpTag::Integer, CpTag::Float, CpTag::String,
                 CpTag::Class});
      return;
    case Op::Ldc2W:
      checkPool(Pc, rdU2(Pc + 1), {CpTag::Long, CpTag::Double});
      return;
    case Op::Getstatic:
    case Op::Putstatic:
    case Op::Getfield:
    case Op::Putfield:
      checkPool(Pc, rdU2(Pc + 1), {CpTag::Fieldref});
      return;
    case Op::Invokevirtual:
    case Op::Invokespecial:
    case Op::Invokestatic:
      checkPool(Pc, rdU2(Pc + 1), {CpTag::Methodref});
      return;
    case Op::Invokeinterface:
      checkPool(Pc, rdU2(Pc + 1), {CpTag::InterfaceMethodref});
      if (Code[Pc + 4] != 0)
        error(Pc, "invokeinterface fourth operand byte must be zero");
      return;
    case Op::New:
    case Op::Anewarray:
    case Op::Checkcast:
    case Op::Instanceof:
    case Op::Multianewarray:
      checkPool(Pc, rdU2(Pc + 1), {CpTag::Class});
      if (O == Op::Multianewarray && Code[Pc + 3] == 0)
        error(Pc, "multianewarray needs at least one dimension");
      return;
    case Op::Newarray: {
      uint8_t T = Code[Pc + 1];
      if (T < 4 || T > 11)
        error(Pc, "newarray type code " + std::to_string(T) +
                      " out of range");
      return;
    }
    case Op::Ifeq:
    case Op::Ifne:
    case Op::Iflt:
    case Op::Ifge:
    case Op::Ifgt:
    case Op::Ifle:
    case Op::IfIcmpeq:
    case Op::IfIcmpne:
    case Op::IfIcmplt:
    case Op::IfIcmpge:
    case Op::IfIcmpgt:
    case Op::IfIcmple:
    case Op::IfAcmpeq:
    case Op::IfAcmpne:
    case Op::Goto:
    case Op::Jsr:
    case Op::Ifnull:
    case Op::Ifnonnull:
      checkBranch(Pc, static_cast<int64_t>(Pc) +
                          static_cast<int16_t>(rdU2(Pc + 1)));
      return;
    case Op::GotoW:
    case Op::JsrW:
      checkBranch(Pc, static_cast<int64_t>(Pc) + rdS4(Pc + 1));
      return;
    case Op::Tableswitch: {
      uint32_t Operand = (Pc + 4) & ~3u;
      int32_t Default = rdS4(Operand);
      int32_t Low = rdS4(Operand + 4);
      int32_t High = rdS4(Operand + 8);
      checkBranch(Pc, static_cast<int64_t>(Pc) + Default);
      for (int32_t I = 0; I <= High - Low; ++I)
        checkBranch(Pc, static_cast<int64_t>(Pc) +
                            rdS4(Operand + 12 + 4 * I));
      return;
    }
    case Op::Lookupswitch: {
      uint32_t Operand = (Pc + 4) & ~3u;
      int32_t Default = rdS4(Operand);
      int32_t NPairs = rdS4(Operand + 4);
      checkBranch(Pc, static_cast<int64_t>(Pc) + Default);
      int32_t Prev = 0;
      for (int32_t I = 0; I != NPairs; ++I) {
        int32_t Match = rdS4(Operand + 8 + 8 * I);
        if (I > 0 && Match <= Prev)
          error(Pc, "lookupswitch keys must be sorted and distinct");
        Prev = Match;
        checkBranch(Pc, static_cast<int64_t>(Pc) +
                            rdS4(Operand + 12 + 8 * I));
      }
      return;
    }
    case Op::Wide: {
      Op Inner = static_cast<Op>(Code[Pc + 1]);
      switch (Inner) {
      case Op::Iload:
      case Op::Fload:
      case Op::Aload:
      case Op::Istore:
      case Op::Fstore:
      case Op::Astore:
      case Op::Ret:
        checkLocal(Pc, rdU2(Pc + 2), 1);
        return;
      case Op::Lload:
      case Op::Dload:
      case Op::Lstore:
      case Op::Dstore:
        checkLocal(Pc, rdU2(Pc + 2), 2);
        return;
      case Op::Iinc:
        checkLocal(Pc, rdU2(Pc + 2), 1);
        return;
      default:
        error(Pc, "wide prefix on a non-widenable instruction");
        return;
      }
    }
    default:
      return; // Zero-operand instructions have nothing structural.
    }
  }

  void checkHandlers() {
    for (const ExceptionHandler &H : M.Code->Handlers) {
      if (H.StartPc >= H.EndPc)
        error(H.StartPc, "exception handler range is empty or inverted");
      if (!isStart(H.StartPc) || H.EndPc > Code.size())
        error(H.StartPc, "exception handler range is misaligned");
      if (!isStart(H.HandlerPc))
        error(H.HandlerPc,
              "exception handler target is not an instruction boundary");
      if (H.CatchType != 0) {
        if (!Cf.Pool.valid(H.CatchType) ||
            Cf.Pool.at(H.CatchType).Tag != CpTag::Class)
          error(H.HandlerPc, "catch type is not a class constant");
      }
    }
  }

  /// Execution must not run off the end: the final instruction has to be
  /// a return, throw, or unconditional transfer.
  void checkFallOff() {
    uint32_t Last = *Starts.rbegin();
    switch (static_cast<Op>(Code[Last])) {
    case Op::Ireturn:
    case Op::Lreturn:
    case Op::Freturn:
    case Op::Dreturn:
    case Op::Areturn:
    case Op::Return:
    case Op::Athrow:
    case Op::Goto:
    case Op::GotoW:
    case Op::Ret:
    case Op::Tableswitch:
    case Op::Lookupswitch:
      return;
    case Op::Wide:
      if (static_cast<Op>(Code[Last + 1]) == Op::Ret)
        return;
      break;
    default:
      break;
    }
    error(Last, "execution can fall off the end of the code array");
  }

  const ClassFile &Cf;
  const MemberInfo &M;
  const std::vector<uint8_t> &Code;
  std::vector<VerifyError> &Errors;
  std::set<uint32_t> Starts;
};

} // namespace

std::vector<VerifyError> jvm::verifyClass(const ClassFile &Cf) {
  std::vector<VerifyError> Errors;
  if (Cf.ThisClass.empty())
    Errors.push_back({"", 0, "class has no name"});
  if (Cf.SuperClass.empty() && Cf.ThisClass != "java/lang/Object")
    Errors.push_back({"", 0, "only java/lang/Object may lack a super"});
  for (const MemberInfo &M : Cf.Methods) {
    bool BodyRequired = !M.isNative() && !(M.AccessFlags & AccAbstract);
    if (BodyRequired && !M.Code) {
      Errors.push_back(
          {M.Name + M.Descriptor, 0, "non-abstract method without code"});
      continue;
    }
    if (!BodyRequired && M.Code) {
      Errors.push_back({M.Name + M.Descriptor, 0,
                        "native/abstract method must not carry code"});
      continue;
    }
    if (!desc::parseMethod(M.Descriptor)) {
      Errors.push_back(
          {M.Name + M.Descriptor, 0, "malformed method descriptor"});
      continue;
    }
    if (M.Code) {
      size_t Before = Errors.size();
      MethodVerifier(Cf, M, Errors).run();
      // The dataflow pass assumes structural validity; run it only for
      // methods the structural checks accepted.
      if (Errors.size() == Before) {
        MethodDataflow Flow = analyzeMethodDataflow(Cf, M);
        Errors.insert(Errors.end(), Flow.Errors.begin(), Flow.Errors.end());
      }
    }
  }
  return Errors;
}

bool jvm::rejectsClass(const std::vector<VerifyError> &Errors) {
  for (const VerifyError &E : Errors)
    if (!E.MonitorOnly)
      return true;
  return false;
}
