//===- jvm/classfile/writer.cpp - .class file serializer ------------------==//
//
// Serializes the in-memory ClassFile model back into the binary format.
// Together with the reader this gives a full round trip, which the
// assembler uses: synthesized workload classes are written to bytes,
// published on the simulated web server, and downloaded and re-parsed by
// the class loader exactly like real class files (§6.4).
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/classfile.h"

#include <bit>
#include <cassert>

using namespace doppio;
using namespace doppio::jvm;

namespace {

/// Big-endian byte emitter.
class Emitter {
public:
  void u1(uint8_t V) { Out.push_back(V); }
  void u2(uint16_t V) {
    Out.push_back(static_cast<uint8_t>(V >> 8));
    Out.push_back(static_cast<uint8_t>(V));
  }
  void u4(uint32_t V) {
    u2(static_cast<uint16_t>(V >> 16));
    u2(static_cast<uint16_t>(V));
  }
  void raw(const std::string &Bytes) {
    Out.insert(Out.end(), Bytes.begin(), Bytes.end());
  }
  void raw(const std::vector<uint8_t> &Bytes) {
    Out.insert(Out.end(), Bytes.begin(), Bytes.end());
  }

  std::vector<uint8_t> take() { return std::move(Out); }

private:
  std::vector<uint8_t> Out;
};

void emitPool(Emitter &E, const ConstantPool &Pool) {
  E.u2(Pool.size());
  for (uint16_t I = 1; I < Pool.size(); ++I) {
    const CpEntry &Entry = Pool.at(I);
    if (Entry.Tag == CpTag::Invalid)
      continue; // Second slot of a long/double.
    E.u1(static_cast<uint8_t>(Entry.Tag));
    switch (Entry.Tag) {
    case CpTag::Utf8:
      E.u2(static_cast<uint16_t>(Entry.Utf8.size()));
      E.raw(Entry.Utf8);
      break;
    case CpTag::Integer:
      E.u4(static_cast<uint32_t>(Entry.Int));
      break;
    case CpTag::Float:
      E.u4(std::bit_cast<uint32_t>(Entry.F));
      break;
    case CpTag::Long:
    case CpTag::Double:
      E.u4(static_cast<uint32_t>(
          static_cast<uint64_t>(Entry.LongBits) >> 32));
      E.u4(static_cast<uint32_t>(Entry.LongBits));
      break;
    case CpTag::Class:
    case CpTag::String:
      E.u2(Entry.Ref1);
      break;
    case CpTag::Fieldref:
    case CpTag::Methodref:
    case CpTag::InterfaceMethodref:
    case CpTag::NameAndType:
      E.u2(Entry.Ref1);
      E.u2(Entry.Ref2);
      break;
    case CpTag::Invalid:
      break;
    }
  }
}

void emitMember(Emitter &E, ConstantPool &Pool, const MemberInfo &M) {
  E.u2(M.AccessFlags);
  E.u2(Pool.addUtf8(M.Name));
  E.u2(Pool.addUtf8(M.Descriptor));
  uint16_t AttrCount = 0;
  if (M.Code)
    ++AttrCount;
  if (M.ConstantValueIndex)
    ++AttrCount;
  E.u2(AttrCount);
  if (M.Code) {
    E.u2(Pool.addUtf8("Code"));
    uint32_t Len = 2 + 2 + 4 + static_cast<uint32_t>(M.Code->Bytecode.size()) +
                   2 + 8 * static_cast<uint32_t>(M.Code->Handlers.size()) + 2;
    E.u4(Len);
    E.u2(M.Code->MaxStack);
    E.u2(M.Code->MaxLocals);
    E.u4(static_cast<uint32_t>(M.Code->Bytecode.size()));
    E.raw(M.Code->Bytecode);
    E.u2(static_cast<uint16_t>(M.Code->Handlers.size()));
    for (const ExceptionHandler &H : M.Code->Handlers) {
      E.u2(H.StartPc);
      E.u2(H.EndPc);
      E.u2(H.HandlerPc);
      E.u2(H.CatchType);
    }
    E.u2(0); // No sub-attributes.
  }
  if (M.ConstantValueIndex) {
    E.u2(Pool.addUtf8("ConstantValue"));
    E.u4(2);
    E.u2(M.ConstantValueIndex);
  }
}

} // namespace

std::vector<uint8_t> jvm::writeClassFile(const ClassFile &Cf) {
  // The pool may grow while emitting members (attribute name strings), so
  // work on a copy and emit the pool last, into a separate buffer.
  ClassFile Copy = Cf;
  ConstantPool &Pool = Copy.Pool;

  // Pre-intern everything the header needs.
  uint16_t ThisIdx = Pool.addClass(Copy.ThisClass);
  uint16_t SuperIdx =
      Copy.SuperClass.empty() ? 0 : Pool.addClass(Copy.SuperClass);
  std::vector<uint16_t> IfaceIdx;
  for (const std::string &Iface : Copy.Interfaces)
    IfaceIdx.push_back(Pool.addClass(Iface));

  Emitter Body;
  Body.u2(Copy.AccessFlags);
  Body.u2(ThisIdx);
  Body.u2(SuperIdx);
  Body.u2(static_cast<uint16_t>(IfaceIdx.size()));
  for (uint16_t Idx : IfaceIdx)
    Body.u2(Idx);
  Body.u2(static_cast<uint16_t>(Copy.Fields.size()));
  for (const MemberInfo &F : Copy.Fields)
    emitMember(Body, Pool, F);
  Body.u2(static_cast<uint16_t>(Copy.Methods.size()));
  for (const MemberInfo &M : Copy.Methods)
    emitMember(Body, Pool, M);
  if (!Copy.SourceFile.empty()) {
    Body.u2(1);
    Body.u2(Pool.addUtf8("SourceFile"));
    Body.u4(2);
    Body.u2(Pool.addUtf8(Copy.SourceFile));
  } else {
    Body.u2(0);
  }

  Emitter Out;
  Out.u4(0xCAFEBABE);
  Out.u2(Copy.MinorVersion);
  Out.u2(Copy.MajorVersion);
  emitPool(Out, Pool);
  Out.raw(Body.take());
  return Out.take();
}
