//===- jvm/classfile/descriptor.cpp ---------------------------------------==//

#include "jvm/classfile/descriptor.h"

using namespace doppio;
using namespace doppio::jvm;

/// Consumes one field descriptor starting at \p Pos; empty on error.
static std::string consumeField(const std::string &S, size_t &Pos) {
  size_t Start = Pos;
  while (Pos < S.size() && S[Pos] == '[')
    ++Pos;
  if (Pos >= S.size())
    return "";
  char C = S[Pos];
  switch (C) {
  case 'B':
  case 'C':
  case 'D':
  case 'F':
  case 'I':
  case 'J':
  case 'S':
  case 'Z':
    ++Pos;
    return S.substr(Start, Pos - Start);
  case 'L': {
    size_t Semi = S.find(';', Pos);
    if (Semi == std::string::npos)
      return "";
    Pos = Semi + 1;
    return S.substr(Start, Pos - Start);
  }
  default:
    return "";
  }
}

std::optional<desc::MethodDesc>
desc::parseMethod(const std::string &Descriptor) {
  if (Descriptor.empty() || Descriptor[0] != '(')
    return std::nullopt;
  MethodDesc D;
  size_t Pos = 1;
  while (Pos < Descriptor.size() && Descriptor[Pos] != ')') {
    std::string Param = consumeField(Descriptor, Pos);
    if (Param.empty())
      return std::nullopt;
    D.Params.push_back(std::move(Param));
  }
  if (Pos >= Descriptor.size() || Descriptor[Pos] != ')')
    return std::nullopt;
  ++Pos;
  if (Pos < Descriptor.size() && Descriptor[Pos] == 'V' &&
      Pos + 1 == Descriptor.size()) {
    D.Ret = "V";
    return D;
  }
  std::string Ret = consumeField(Descriptor, Pos);
  if (Ret.empty() || Pos != Descriptor.size())
    return std::nullopt;
  D.Ret = std::move(Ret);
  return D;
}

int desc::slotSize(const std::string &FieldDesc) {
  if (FieldDesc == "V")
    return 0;
  if (FieldDesc == "J" || FieldDesc == "D")
    return 2;
  return 1;
}

int desc::paramSlots(const MethodDesc &D) {
  int Slots = 0;
  for (const std::string &P : D.Params)
    Slots += slotSize(P);
  return Slots;
}

std::string desc::toClassName(const std::string &FieldDesc) {
  if (FieldDesc.size() >= 2 && FieldDesc.front() == 'L' &&
      FieldDesc.back() == ';')
    return FieldDesc.substr(1, FieldDesc.size() - 2);
  return FieldDesc;
}
