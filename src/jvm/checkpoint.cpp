//===- jvm/checkpoint.cpp - Whole-VM snapshot & revive ---------------------==//

#include "jvm/checkpoint.h"

#include "doppio/cont/snapshot.h"
#include "jvm/interpreter.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>
#include <unordered_map>

using namespace doppio;
using namespace doppio::jvm;
using doppio::rt::snap::Reader;
using doppio::rt::snap::Writer;

namespace doppio {
namespace jvm {

/// The one gate into Jvm/JvmThread private state for the serializer.
struct CheckpointAccess {
  static std::vector<std::unique_ptr<Object>> &arena(Jvm &Vm) {
    return Vm.Arena;
  }
  static std::unordered_map<std::string, Object *> &interned(Jvm &Vm) {
    return Vm.InternedStrings;
  }
  static std::unordered_map<Klass *, Object *> &mirrors(Jvm &Vm) {
    return Vm.Mirrors;
  }
  static std::unordered_map<Object *, Klass *> &mirrorToKlass(Jvm &Vm) {
    return Vm.MirrorToKlass;
  }
  static std::unordered_map<Object *, int32_t> &identityHashes(Jvm &Vm) {
    return Vm.IdentityHashes;
  }
  static int32_t &nextIdentityHash(Jvm &Vm) { return Vm.NextIdentityHash; }
  static std::unordered_map<Object *, int32_t> &threadObjToTid(Jvm &Vm) {
    return Vm.ThreadObjToTid;
  }
  static std::vector<JvmThread *> &threads(Jvm &Vm) { return Vm.Threads; }
  static int &exitCode(Jvm &Vm) { return Vm.ExitCode; }
  static int32_t &mainTid(Jvm &Vm) { return Vm.MainTid; }
  static std::function<void(int)> &mainDone(Jvm &Vm) { return Vm.MainDone; }
  static std::vector<Frame> &callStack(JvmThread &T) { return T.CallStack; }
  static void configureSuspendChecks(JvmThread &T, Frame &F) {
    T.configureSuspendChecks(F);
  }
  static bool &finished(JvmThread &T) { return T.Finished; }
  static bool &uncaught(JvmThread &T) { return T.Uncaught; }
};

} // namespace jvm
} // namespace doppio

namespace {

constexpr uint32_t JvmImageMagic = 0x4a564d49; // "JVMI"
constexpr uint32_t JvmImageVersion = 1;

//===----------------------------------------------------------------------===//
// checkpointReady
//===----------------------------------------------------------------------===//

/// Tids parked in any monitor's entry or wait set, or in a join.
std::set<int32_t> dataBorneBlockedTids(Jvm &Vm) {
  std::set<int32_t> Tids;
  for (const auto &O : CheckpointAccess::arena(Vm))
    if (const Monitor *M = O->monitorIfAny()) {
      Tids.insert(M->EntrySet.begin(), M->EntrySet.end());
      Tids.insert(M->WaitSet.begin(), M->WaitSet.end());
    }
  for (JvmThread *T : CheckpointAccess::threads(Vm))
    Tids.insert(T->JoinWaiters.begin(), T->JoinWaiters.end());
  return Tids;
}

} // namespace

bool doppio::jvm::checkpointReady(Jvm &Vm, std::string *WhyNot) {
  auto No = [&](std::string Why) {
    if (WhyNot)
      *WhyNot = std::move(Why);
    return false;
  };
  if (Vm.loader().hasPendingLoads())
    return No("class load in flight");
  std::set<int32_t> DataBorne = dataBorneBlockedTids(Vm);
  for (JvmThread *T : CheckpointAccess::threads(Vm)) {
    auto Id = static_cast<rt::ThreadPool::ThreadId>(T->tid());
    switch (Vm.pool().state(Id)) {
    case rt::ThreadState::Running:
      return No("thread " + std::to_string(T->tid()) + " is mid-slice");
    case rt::ThreadState::Blocked:
      // A monitor/join park is pure data; anything else (timer, fs,
      // socket, sleep) has its wake-up in a host closure that cannot
      // cross the wire — the caller retries once it settles.
      if (!T->PendingReacquire && !DataBorne.count(T->tid()))
        return No("thread " + std::to_string(T->tid()) +
                  " is blocked on an in-flight asynchronous operation");
      break;
    case rt::ThreadState::Ready:
    case rt::ThreadState::Terminated:
      break;
    }
  }
  if (WhyNot)
    WhyNot->clear();
  return true;
}

//===----------------------------------------------------------------------===//
// serializeJvm
//===----------------------------------------------------------------------===//

namespace {

uint32_t floatBits(float F) {
  uint32_t B;
  std::memcpy(&B, &F, sizeof(B));
  return B;
}
float bitsFloat(uint32_t B) {
  float F;
  std::memcpy(&F, &B, sizeof(F));
  return F;
}
uint64_t doubleBits(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}
double bitsDouble(uint64_t B) {
  double D;
  std::memcpy(&D, &B, sizeof(D));
  return D;
}

/// Object ids on the wire: arena index + 1, 0 for null.
class ObjectIds {
public:
  explicit ObjectIds(Jvm &Vm) {
    const auto &Arena = CheckpointAccess::arena(Vm);
    Ids.reserve(Arena.size());
    for (size_t I = 0; I != Arena.size(); ++I)
      Ids[Arena[I].get()] = static_cast<uint32_t>(I + 1);
  }
  uint32_t of(const Object *O) const {
    if (!O)
      return 0;
    auto It = Ids.find(O);
    assert(It != Ids.end() && "ref to an object outside the arena");
    return It->second;
  }

private:
  std::unordered_map<const Object *, uint32_t> Ids;
};

void writeValue(Writer &W, const Value &V, const ObjectIds &Ids) {
  W.u8(static_cast<uint8_t>(V.K));
  switch (V.K) {
  case Value::Kind::Empty:
    break;
  case Value::Kind::Int:
    W.u32(static_cast<uint32_t>(V.I));
    break;
  case Value::Kind::Long:
    W.u64(static_cast<uint64_t>(V.J));
    break;
  case Value::Kind::Float:
    W.u32(floatBits(V.F));
    break;
  case Value::Kind::Double:
    W.u64(doubleBits(V.D));
    break;
  case Value::Kind::Ref:
    W.u32(Ids.of(V.R));
    break;
  case Value::Kind::RetAddr:
    W.u32(V.Ret);
    break;
  }
}

Value readValue(Reader &R, const std::vector<Object *> &Objects, bool &Ok) {
  uint8_t Kind = R.u8();
  switch (static_cast<Value::Kind>(Kind)) {
  case Value::Kind::Empty:
    return Value();
  case Value::Kind::Int:
    return Value::intVal(static_cast<int32_t>(R.u32()));
  case Value::Kind::Long:
    return Value::longVal(static_cast<int64_t>(R.u64()));
  case Value::Kind::Float:
    return Value::floatVal(bitsFloat(R.u32()));
  case Value::Kind::Double:
    return Value::doubleVal(bitsDouble(R.u64()));
  case Value::Kind::Ref: {
    uint32_t Id = R.u32();
    if (Id == 0)
      return Value::null();
    if (Id > Objects.size()) {
      Ok = false;
      return Value::null();
    }
    return Value::ref(Objects[Id - 1]);
  }
  case Value::Kind::RetAddr:
    return Value::retAddr(R.u32());
  }
  Ok = false;
  return Value();
}

void writeMonitor(Writer &W, const Monitor &M) {
  W.i64(M.OwnerTid);
  W.i64(M.EntryCount);
  W.u32(static_cast<uint32_t>(M.EntrySet.size()));
  for (int32_t T : M.EntrySet)
    W.i64(T);
  W.u32(static_cast<uint32_t>(M.WaitSet.size()));
  for (int32_t T : M.WaitSet)
    W.i64(T);
}

void writeThread(Writer &W, Jvm &Vm, JvmThread &T, const ObjectIds &Ids) {
  rt::ThreadState S =
      Vm.pool().state(static_cast<rt::ThreadPool::ThreadId>(T.tid()));
  assert(S != rt::ThreadState::Running && "serializing a mid-slice thread");
  W.u8(S == rt::ThreadState::Blocked     ? 1
       : S == rt::ThreadState::Terminated ? 2
                                          : 0);
  W.u8(T.finished() ? 1 : 0);
  W.u8(T.uncaughtException() ? 1 : 0);
  W.u32(Ids.of(T.ThreadObj));
  W.u32(static_cast<uint32_t>(T.JoinWaiters.size()));
  for (int32_t J : T.JoinWaiters)
    W.i64(J);
  // A settled-but-unconsumed native result (the thread went Ready before
  // the checkpoint) travels; checkpointReady refused in-flight ones.
  if (!T.AwaitingNativeResult) {
    W.u8(0);
  } else if (T.PendingNativeResult.ok()) {
    W.u8(1);
    writeValue(W, *T.PendingNativeResult, Ids);
  } else {
    W.u8(2);
    W.u32(static_cast<uint32_t>(T.PendingNativeResult.error().Code));
    W.str(T.PendingNativeResult.error().Detail);
  }
  W.u8(T.PendingLoadFailure ? 1 : 0);
  if (T.PendingLoadFailure)
    W.str(*T.PendingLoadFailure);
  W.u8(T.PendingReacquire ? 1 : 0);
  if (T.PendingReacquire) {
    W.u32(Ids.of(T.PendingReacquire->Obj));
    W.i64(T.PendingReacquire->Count);
  }
  W.u64(T.WaitGeneration);
  const std::vector<Frame> &Stack = T.callStack();
  W.u32(static_cast<uint32_t>(Stack.size()));
  for (const Frame &F : Stack) {
    assert(F.M && F.M->Owner && "frame without a resolved method");
    W.str(F.M->Owner->Name);
    W.str(F.M->Name);
    W.str(F.M->Descriptor);
    W.u32(F.Pc);
    W.u32(Ids.of(F.Locked));
    W.str(F.ClinitOf ? F.ClinitOf->Name : std::string());
    W.u32(static_cast<uint32_t>(F.Locals.size()));
    for (const Value &V : F.Locals)
      writeValue(W, V, Ids);
    W.u32(static_cast<uint32_t>(F.Stack.size()));
    for (const Value &V : F.Stack)
      writeValue(W, V, Ids);
  }
}

} // namespace

rt::ErrorOr<std::vector<uint8_t>> doppio::jvm::serializeJvm(Jvm &Vm) {
  std::string Why;
  if (!checkpointReady(Vm, &Why))
    return rt::ApiError(rt::Errno::Again, "checkpoint: " + Why);

  Writer W(JvmImageMagic, JvmImageVersion);
  W.u8(Vm.mode() == ExecutionMode::DoppioJS ? 0 : 1);
  W.i64(CheckpointAccess::exitCode(Vm));
  W.i64(CheckpointAccess::mainTid(Vm));
  W.u64(static_cast<uint64_t>(CheckpointAccess::nextIdentityHash(Vm)));

  // Classes: names and init states, in loader (name) order. Array classes
  // are omitted — the destination resynthesizes them on demand.
  std::vector<Klass *> Classes;
  for (Klass *K : Vm.loader().loadedClasses())
    if (!K->IsArrayClass)
      Classes.push_back(K);
  W.u32(static_cast<uint32_t>(Classes.size()));
  for (Klass *K : Classes) {
    W.str(K->Name);
    W.u8(static_cast<uint8_t>(K->Init));
  }

  // Objects, two passes: allocation shape first (so every ref in pass two
  // resolves), then contents.
  ObjectIds Ids(Vm);
  auto &Arena = CheckpointAccess::arena(Vm);
  W.u32(static_cast<uint32_t>(Arena.size()));
  for (const auto &O : Arena) {
    if (O->isArray()) {
      const auto *A = static_cast<const ArrayObject *>(O.get());
      W.u8(1);
      W.str(A->elemDesc());
      W.u32(static_cast<uint32_t>(A->length()));
    } else {
      W.u8(0);
      W.str(O->klass()->Name);
    }
  }
  for (const auto &O : Arena) {
    if (O->isArray()) {
      auto *A = static_cast<ArrayObject *>(O.get());
      W.u32(static_cast<uint32_t>(A->elems().size()));
      for (const Value &V : A->elems())
        writeValue(W, V, Ids);
    } else if (Vm.mode() == ExecutionMode::DoppioJS) {
      // The §6.7 dictionary, sorted by field name for a canonical wire
      // form (the map itself is unordered).
      std::vector<std::pair<std::string, Value>> Fields(
          O->fieldDict().begin(), O->fieldDict().end());
      std::sort(Fields.begin(), Fields.end(),
                [](const auto &A, const auto &B) { return A.first < B.first; });
      W.u32(static_cast<uint32_t>(Fields.size()));
      for (const auto &[Name, V] : Fields) {
        W.str(Name);
        writeValue(W, V, Ids);
      }
    } else {
      W.u32(static_cast<uint32_t>(O->slotStorage().size()));
      for (const Value &V : O->slotStorage())
        writeValue(W, V, Ids);
    }
    const Monitor *M = O->monitorIfAny();
    W.u8(M ? 1 : 0);
    if (M)
      writeMonitor(W, *M);
  }

  // Statics (after objects: ref statics point into the arena).
  W.u32(static_cast<uint32_t>(Classes.size()));
  for (Klass *K : Classes) {
    W.str(K->Name);
    W.u32(static_cast<uint32_t>(K->Statics.size()));
    for (const auto &[Name, V] : K->Statics) {
      W.str(Name);
      writeValue(W, V, Ids);
    }
  }

  // Intern table, mirrors, identity hashes — each sorted for determinism.
  {
    std::vector<std::pair<std::string, Object *>> Interned(
        CheckpointAccess::interned(Vm).begin(),
        CheckpointAccess::interned(Vm).end());
    std::sort(Interned.begin(), Interned.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    W.u32(static_cast<uint32_t>(Interned.size()));
    for (const auto &[Utf8, O] : Interned) {
      W.str(Utf8);
      W.u32(Ids.of(O));
    }
  }
  {
    std::vector<std::pair<std::string, Object *>> Mirrors;
    for (const auto &[K, O] : CheckpointAccess::mirrors(Vm))
      Mirrors.emplace_back(K->Name, O);
    std::sort(Mirrors.begin(), Mirrors.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    W.u32(static_cast<uint32_t>(Mirrors.size()));
    for (const auto &[Name, O] : Mirrors) {
      W.str(Name);
      W.u32(Ids.of(O));
    }
  }
  {
    std::vector<std::pair<uint32_t, int32_t>> Hashes;
    for (const auto &[O, H] : CheckpointAccess::identityHashes(Vm))
      Hashes.emplace_back(Ids.of(O), H);
    std::sort(Hashes.begin(), Hashes.end());
    W.u32(static_cast<uint32_t>(Hashes.size()));
    for (const auto &[Id, H] : Hashes) {
      W.u32(Id);
      W.i64(H);
    }
  }

  // Threads, in tid order (the vector is tid-indexed).
  auto &Threads = CheckpointAccess::threads(Vm);
  W.u32(static_cast<uint32_t>(Threads.size()));
  for (JvmThread *T : Threads)
    writeThread(W, Vm, *T, Ids);

  return W.take();
}

//===----------------------------------------------------------------------===//
// restoreJvm
//===----------------------------------------------------------------------===//

namespace {

struct RestoreState {
  Jvm &Vm;
  std::vector<uint8_t> Image;
  Reader R;
  std::function<void(int)> ExitFn;
  std::function<void(rt::ErrorOr<bool>)> Done;

  int64_t ExitCode = -1;
  int64_t MainTid = -1;
  uint64_t NextIdentityHash = 0;
  /// (name, init state), blob order; loaded sequentially before the rest
  /// of the image is decoded.
  std::vector<std::pair<std::string, uint8_t>> Classes;
  size_t NextClass = 0;

  RestoreState(Jvm &Vm, std::vector<uint8_t> InImage,
               std::function<void(int)> ExitFn,
               std::function<void(rt::ErrorOr<bool>)> Done)
      : Vm(Vm), Image(std::move(InImage)),
        R(Image, JvmImageMagic, JvmImageVersion), ExitFn(std::move(ExitFn)),
        Done(std::move(Done)) {}

  void fail(rt::Errno Code, const std::string &Why) {
    if (Done) {
      auto D = std::move(Done);
      Done = nullptr;
      D(rt::ApiError(Code, "restore: " + Why));
    }
  }
  void succeed() {
    if (Done) {
      auto D = std::move(Done);
      Done = nullptr;
      D(true);
    }
  }
};

void finishRestore(const std::shared_ptr<RestoreState> &St);

/// Loads the image's classes one after another (supers chain through
/// loadAsync on their own); already-present classes — the built-in
/// library — are skipped.
void loadImageClasses(const std::shared_ptr<RestoreState> &St) {
  while (St->NextClass < St->Classes.size() &&
         St->Vm.loader().lookup(St->Classes[St->NextClass].first))
    ++St->NextClass;
  if (St->NextClass == St->Classes.size()) {
    finishRestore(St);
    return;
  }
  std::string Name = St->Classes[St->NextClass].first;
  ++St->NextClass;
  St->Vm.loader().loadAsync(Name, [St, Name](rt::ErrorOr<Klass *> R) {
    if (!R) {
      St->fail(R.error().Code, "class " + Name);
      return;
    }
    loadImageClasses(St);
  });
}

/// Everything after class loading is synchronous decode.
void finishRestore(const std::shared_ptr<RestoreState> &St) {
  Jvm &Vm = St->Vm;
  Reader &R = St->R;

  for (const auto &[Name, Init] : St->Classes) {
    Klass *K = Vm.loader().lookup(Name);
    assert(K && "image class vanished after load");
    K->Init = static_cast<Klass::InitState>(Init);
  }

  // Objects, pass one: allocate shapes in arena order so ids resolve.
  uint32_t NObjects = R.u32();
  std::vector<Object *> Objects;
  Objects.reserve(NObjects);
  for (uint32_t I = 0; I != NObjects && R.ok(); ++I) {
    if (R.u8() == 1) {
      std::string ElemDesc = R.str();
      uint32_t Len = R.u32();
      if (!R.ok())
        break;
      Objects.push_back(
          Vm.allocArrayOf(ElemDesc, static_cast<int32_t>(Len)));
    } else {
      std::string Name = R.str();
      Klass *K = Vm.loader().lookup(Name);
      if (!K) {
        St->fail(rt::Errno::Io, "object of unknown class " + Name);
        return;
      }
      Objects.push_back(Vm.allocObject(K));
    }
  }

  // Pass two: contents.
  bool ValuesOk = true;
  for (uint32_t I = 0; I != NObjects && R.ok() && ValuesOk; ++I) {
    Object *O = Objects[I];
    if (O->isArray()) {
      auto *A = static_cast<ArrayObject *>(O);
      uint32_t N = R.u32();
      if (N != static_cast<uint32_t>(A->length())) {
        St->fail(rt::Errno::Io, "array length mismatch");
        return;
      }
      for (uint32_t E = 0; E != N && R.ok(); ++E)
        A->set(static_cast<int32_t>(E), readValue(R, Objects, ValuesOk));
    } else if (Vm.mode() == ExecutionMode::DoppioJS) {
      uint32_t N = R.u32();
      for (uint32_t F = 0; F != N && R.ok(); ++F) {
        std::string Name = R.str();
        O->setFieldByName(Name, readValue(R, Objects, ValuesOk));
      }
    } else {
      uint32_t N = R.u32();
      auto &Slots = O->slotStorage();
      if (N != Slots.size()) {
        St->fail(rt::Errno::Io, "slot count mismatch");
        return;
      }
      for (uint32_t S = 0; S != N && R.ok(); ++S)
        Slots[S] = readValue(R, Objects, ValuesOk);
    }
    if (R.u8() == 1) {
      Monitor &M = O->monitor();
      M.OwnerTid = static_cast<int32_t>(R.i64());
      M.EntryCount = static_cast<int32_t>(R.i64());
      M.EntrySet.clear();
      for (uint32_t N = R.u32(); N != 0 && R.ok(); --N)
        M.EntrySet.push_back(static_cast<int32_t>(R.i64()));
      M.WaitSet.clear();
      for (uint32_t N = R.u32(); N != 0 && R.ok(); --N)
        M.WaitSet.push_back(static_cast<int32_t>(R.i64()));
    }
  }

  // Statics.
  for (uint32_t N = R.u32(); N != 0 && R.ok() && ValuesOk; --N) {
    std::string Name = R.str();
    Klass *K = Vm.loader().lookup(Name);
    if (!K) {
      St->fail(rt::Errno::Io, "statics of unknown class " + Name);
      return;
    }
    for (uint32_t F = R.u32(); F != 0 && R.ok(); --F) {
      std::string Field = R.str();
      K->Statics[Field] = readValue(R, Objects, ValuesOk);
    }
  }

  // Tables.
  auto ObjAt = [&](uint32_t Id) -> Object * {
    if (Id == 0 || Id > Objects.size())
      return nullptr;
    return Objects[Id - 1];
  };
  for (uint32_t N = R.u32(); N != 0 && R.ok(); --N) {
    std::string Utf8 = R.str();
    if (Object *O = ObjAt(R.u32()))
      CheckpointAccess::interned(Vm)[Utf8] = O;
  }
  for (uint32_t N = R.u32(); N != 0 && R.ok(); --N) {
    std::string Name = R.str();
    Object *O = ObjAt(R.u32());
    Klass *K = Vm.loader().lookup(Name);
    if (K && O) {
      CheckpointAccess::mirrors(Vm)[K] = O;
      CheckpointAccess::mirrorToKlass(Vm)[O] = K;
    }
  }
  for (uint32_t N = R.u32(); N != 0 && R.ok(); --N) {
    uint32_t Id = R.u32();
    int32_t H = static_cast<int32_t>(R.i64());
    if (Object *O = ObjAt(Id))
      CheckpointAccess::identityHashes(Vm)[O] = H;
  }

  // Threads: rebuild each record, spawn it into the pool (tids are dense
  // and pool-ordered), then force its checkpointed state — a Blocked
  // thread gets a fresh park continuation, so the ordinary unblock paths
  // (notify, monitor exit, join completion) wake it on the destination.
  uint32_t NThreads = R.u32();
  for (uint32_t Tid = 0; Tid != NThreads && R.ok() && ValuesOk; ++Tid) {
    uint8_t PoolState = R.u8();
    auto T = std::make_unique<JvmThread>(Vm, static_cast<int32_t>(Tid));
    JvmThread *Raw = T.get();
    CheckpointAccess::finished(*Raw) = R.u8() == 1;
    CheckpointAccess::uncaught(*Raw) = R.u8() == 1;
    Raw->ThreadObj = ObjAt(R.u32());
    for (uint32_t N = R.u32(); N != 0 && R.ok(); --N)
      Raw->JoinWaiters.push_back(static_cast<int32_t>(R.i64()));
    switch (R.u8()) {
    case 1:
      Raw->AwaitingNativeResult = true;
      Raw->PendingNativeResult = readValue(R, Objects, ValuesOk);
      break;
    case 2: {
      Raw->AwaitingNativeResult = true;
      auto Code = static_cast<rt::Errno>(R.u32());
      Raw->PendingNativeResult = rt::ApiError(Code, R.str());
      break;
    }
    default:
      break;
    }
    if (R.u8() == 1)
      Raw->PendingLoadFailure = R.str();
    if (R.u8() == 1) {
      Object *Obj = ObjAt(R.u32());
      auto Count = static_cast<int32_t>(R.i64());
      Raw->PendingReacquire = JvmThread::Reacquire{Obj, Count};
    }
    Raw->WaitGeneration = R.u64();
    std::vector<Frame> Stack;
    for (uint32_t N = R.u32(); N != 0 && R.ok() && ValuesOk; --N) {
      std::string KName = R.str();
      std::string MName = R.str();
      std::string MDesc = R.str();
      Frame F;
      F.Pc = R.u32();
      F.Locked = ObjAt(R.u32());
      std::string ClinitName = R.str();
      for (uint32_t L = R.u32(); L != 0 && R.ok(); --L)
        F.Locals.push_back(readValue(R, Objects, ValuesOk));
      for (uint32_t S = R.u32(); S != 0 && R.ok(); --S)
        F.Stack.push_back(readValue(R, Objects, ValuesOk));
      Klass *K = Vm.loader().lookup(KName);
      Method *M = K ? K->findDeclaredMethod(MName, MDesc) : nullptr;
      if (!M) {
        St->fail(rt::Errno::Io, "frame method " + KName + "." + MName);
        return;
      }
      F.M = M;
      F.ClinitOf = ClinitName.empty() ? nullptr : Vm.loader().lookup(ClinitName);
      // Trust is a property of this VM's verifier run, not of the image.
      F.Trusted = M->Verified && Vm.trustVerifier();
      // Same for suspend-check placement: re-derive from this VM's mode
      // and the restored method's analysis verdict (DESIGN.md §17).
      CheckpointAccess::configureSuspendChecks(*Raw, F);
      Stack.push_back(std::move(F));
    }
    CheckpointAccess::callStack(*Raw) = std::move(Stack);
    rt::ThreadPool::ThreadId Got = Vm.pool().spawn(std::move(T));
    assert(Got == Tid && "pool and image thread order diverged");
    (void)Got;
    CheckpointAccess::threads(Vm).push_back(Raw);
    if (Raw->ThreadObj)
      CheckpointAccess::threadObjToTid(Vm)[Raw->ThreadObj] =
          static_cast<int32_t>(Tid);
    if (PoolState == 1)
      Vm.pool().restoreThreadState(Tid, rt::ThreadState::Blocked);
    else if (PoolState == 2)
      Vm.pool().restoreThreadState(Tid, rt::ThreadState::Terminated);
  }

  if (!R.ok() || !ValuesOk || !R.atEnd()) {
    St->fail(rt::Errno::Io, "truncated or corrupt image");
    return;
  }

  CheckpointAccess::exitCode(Vm) = static_cast<int>(St->ExitCode);
  CheckpointAccess::mainTid(Vm) = static_cast<int32_t>(St->MainTid);
  CheckpointAccess::nextIdentityHash(Vm) =
      static_cast<int32_t>(St->NextIdentityHash);
  auto &Threads = CheckpointAccess::threads(Vm);
  int32_t MainTid = static_cast<int32_t>(St->MainTid);
  bool MainFinished = MainTid >= 0 &&
                      MainTid < static_cast<int32_t>(Threads.size()) &&
                      Threads[MainTid]->finished();
  if (MainFinished) {
    // The checkpoint caught the VM after main exited (stragglers still
    // running): deliver the recorded exit immediately.
    int Code = CheckpointAccess::exitCode(Vm);
    auto ExitFn = std::move(St->ExitFn);
    Vm.env().loop().post(kernel::Lane::Resume,
                         [ExitFn, Code] { ExitFn(Code); });
  } else {
    CheckpointAccess::mainDone(Vm) = std::move(St->ExitFn);
  }
  St->succeed();
}

} // namespace

void doppio::jvm::restoreJvm(Jvm &Vm, std::vector<uint8_t> Image,
                             std::function<void(int)> ExitFn,
                             std::function<void(rt::ErrorOr<bool>)> Done) {
  auto St = std::make_shared<RestoreState>(Vm, std::move(Image),
                                           std::move(ExitFn), std::move(Done));
  if (!St->R.ok()) {
    St->fail(rt::Errno::Io, "bad magic or version");
    return;
  }
  uint8_t Mode = St->R.u8();
  if (Mode != (Vm.mode() == ExecutionMode::DoppioJS ? 0 : 1)) {
    St->fail(rt::Errno::Invalid, "execution mode mismatch");
    return;
  }
  St->ExitCode = St->R.i64();
  St->MainTid = St->R.i64();
  St->NextIdentityHash = St->R.u64();
  for (uint32_t N = St->R.u32(); N != 0 && St->R.ok(); --N) {
    std::string Name = St->R.str();
    uint8_t Init = St->R.u8();
    St->Classes.emplace_back(std::move(Name), Init);
  }
  if (!St->R.ok()) {
    St->fail(rt::Errno::Io, "truncated class table");
    return;
  }
  loadImageClasses(St);
}
