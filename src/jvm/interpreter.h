//===- jvm/interpreter.h - The bytecode interpreter (§6.1-6.6) ----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DoppioJVM interpreter: all 201 JVM-spec-2 opcodes over an explicit,
/// heap-allocated call stack — "DoppioJVM's stack frame is a JavaScript
/// object that contains an array for the operand stack, an array for the
/// local variables, and a reference to the method that the stack frame
/// belongs to. The call stack is simply an array of these stack frame
/// objects" (§6.1). Because the stack is explicit, the thread can suspend
/// at any call boundary (automatic event segmentation), block on
/// asynchronous natives (§4.2/§6.3), switch threads at monitor points
/// (§6.2), and dispatch exceptions by walking the virtual stack (§6.6).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_INTERPRETER_H
#define DOPPIO_JVM_INTERPRETER_H

#include "doppio/threads.h"
#include "jvm/jvm.h"
#include "jvm/klass.h"

#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {

/// One frame of the explicit call stack (§6.1).
struct Frame {
  Method *M = nullptr;
  uint32_t Pc = 0;
  /// Local variable array; category-2 values take a slot plus padding.
  std::vector<Value> Locals;
  /// The operand stack; same two-slot convention as the specification.
  std::vector<Value> Stack;
  /// Monitor held by a synchronized method (released on exit/unwind).
  Object *Locked = nullptr;
  /// When this frame is a <clinit>, the class to mark initialized on
  /// return.
  Klass *ClinitOf = nullptr;
  /// True when the dataflow verifier proved the method and the VM trusts
  /// it (Jvm::trustVerifier): step() skips the guarded per-instruction
  /// stack/locals precheck for this frame (DESIGN.md §12).
  bool Trusted = false;
  /// Suspend-check placement for this frame (DESIGN.md §17), set from
  /// the VM's SuspendCheckMode when the frame is pushed or restored. In
  /// Placed mode a proven method points SuspendKeep at its per-pc keep
  /// bits (klass.h) and branch sites consult them; an unproven method
  /// sets CheckEvery and checks before every dispatch, as does every
  /// frame in Everywhere mode. The default CallBoundary mode leaves both
  /// unset: zero new work on the legacy path.
  const uint8_t *SuspendKeep = nullptr;
  bool CheckEvery = false;
};

/// A JVM thread: a guest thread of the Doppio pool (§4.3/§6.2).
class JvmThread : public rt::GuestThread {
public:
  JvmThread(Jvm &Vm, int32_t Tid) : Vm(Vm), Tid(Tid) {}

  rt::RunOutcome resume() override;
  std::string name() const override {
    return "jvm-thread-" + std::to_string(Tid);
  }

  /// Pushes a frame invoking \p M with \p Args (receiver first for
  /// instance methods). Used to seed main() and Thread.run().
  void pushEntryFrame(Method *M, std::vector<Value> Args);

  int32_t tid() const { return Tid; }
  bool finished() const { return Finished; }
  bool uncaughtException() const { return Uncaught; }
  const std::vector<Frame> &callStack() const { return CallStack; }

  /// The java.lang.Thread object bound to this thread (may be null for
  /// the main thread until Thread.currentThread materializes it).
  Object *ThreadObj = nullptr;
  /// Threads blocked in join() on this one.
  std::vector<int32_t> JoinWaiters;

  // Asynchronous-native bookkeeping (§4.2/§6.3): the invoke already
  // completed (args popped, pc advanced); on resume the settled result is
  // pushed or the stored error thrown.
  bool AwaitingNativeResult = false;
  rt::ErrorOr<Value> PendingNativeResult{Value()};
  /// Set when an asynchronous class load failed; thrown as
  /// NoClassDefFoundError when the thread resumes (§6.4).
  std::optional<std::string> PendingLoadFailure;

  // Object.wait reacquisition (§6.2): after a notify, the monitor must be
  // reacquired at its saved entry count before wait() returns.
  struct Reacquire {
    Object *Obj;
    int32_t Count;
  };
  std::optional<Reacquire> PendingReacquire;
  /// Generation counter distinguishing timed-wait timeouts.
  uint64_t WaitGeneration = 0;

  /// Formats the virtual stack as a Java-style trace (§6.1's free stack
  /// introspection).
  std::string stackTrace() const;

  /// Tears the call stack down (System.exit): the invoking native returns
  /// into an empty stack and the thread terminates.
  void killForExit() { CallStack.clear(); }

private:
  enum class StepResult { Continue, Yield, Block, Done };

  StepResult step();
  StepResult stepWide(Frame &F);
  /// Guarded path for frames the verifier did not prove: bounds-checks
  /// the next instruction's stack pops/pushes and locals accesses before
  /// step() executes it. Returns false after throwing VerifyError, with
  /// the dispatch outcome in \p Out.
  bool guardedPrecheck(Frame &F, StepResult &Out);

  // Operand stack helpers (two-slot convention for category 2).
  void push(Value V) { CallStack.back().Stack.push_back(V); }
  void push2(Value V) {
    push(V);
    push(Value()); // Padding slot.
  }
  Value pop() {
    Value V = CallStack.back().Stack.back();
    CallStack.back().Stack.pop_back();
    return V;
  }
  Value pop2() {
    CallStack.back().Stack.pop_back(); // Padding.
    return pop();
  }
  Value &peek(int Depth = 0) {
    auto &S = CallStack.back().Stack;
    return S[S.size() - 1 - Depth];
  }
  /// Pushes a value using the slot convention its kind demands.
  void pushSlotted(Value V) {
    if (V.isCategory2())
      push2(V);
    else
      push(V);
  }

  // Arithmetic helpers honouring the execution mode.
  int32_t modeAdd(int32_t A, int32_t B);
  int32_t modeSub(int32_t A, int32_t B);
  int32_t modeMul(int32_t A, int32_t B);
  Value modeLongBin(Op O, Value A, Value B);

  // Exception machinery (§6.6).
  StepResult throwJvm(const std::string &ClassName,
                      const std::string &Message);
  StepResult dispatchException(Object *Exception);

  // Class resolution that may block on the Doppio fs (§6.4).
  Klass *resolveClass(const std::string &Name, StepResult &Out);
  /// Ensures static initialization; pushes a <clinit> frame and asks the
  /// caller to re-execute when initialization is pending.
  bool ensureInitialized(Klass *K, StepResult &Out);

  // Invocation.
  StepResult invokeMethod(Method *M, bool HasReceiver,
                          uint32_t InsnLen);
  StepResult invokeNative(Method *M, std::vector<Value> Args,
                          uint32_t InsnLen);
  StepResult returnFromFrame(std::optional<Value> Ret);

  // Monitors (§6.2).
  StepResult monitorEnter(Object *O);
  StepResult monitorExit(Object *O);
  void releaseMonitor(Object *O);

  /// Call-boundary suspend check (§6.1); also counts context-switch
  /// points.
  bool wantsSuspend();
  /// Stamps \p F's placement fields (Frame::SuspendKeep / CheckEvery)
  /// from the VM mode and the method's analysis verdict.
  void configureSuspendChecks(Frame &F);
  /// Tail of every branch dispatch case: executes the kept suspend check
  /// or counts the elision for the branch that sat at \p Site.
  StepResult branchDone(Frame &F, uint32_t Site);

  friend struct NativeContext;
  friend class Jvm;
  friend struct CheckpointAccess;

  Jvm &Vm;
  int32_t Tid;
  std::vector<Frame> CallStack;
  bool Finished = false;
  bool Uncaught = false;
  /// Dispatched bytecodes awaiting a virtual-clock charge, flushed at
  /// slice boundaries via Jvm::flushOpCharges. Charged at the profile's
  /// per-dispatch cost (QuickOpCostNs when quickening, else OpCostNs).
  uint64_t OpsSinceFlush = 0;
  /// Surcharge units (software Long64 arithmetic, §8) accumulated since
  /// the last flush. Always charged at OpCostNs: quickened dispatch does
  /// not speed up the intrinsic long emulation (DESIGN.md §18).
  uint64_t ExtraOpsSinceFlush = 0;
  /// Dynamic between-checks counter (DESIGN.md §17): bytecodes
  /// dispatched since the last executed suspend check. Reset by every
  /// check and whenever the thread blocks (leaving the host stack is a
  /// stronger preemption point than any check).
  uint64_t OpsSinceCheck = 0;
};

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_INTERPRETER_H
