//===- jvm/klass.h - Linked runtime classes -----------------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linked, runtime form of a loaded class: resolved superclass and
/// interface pointers, the instance-field layout (slot offsets for the
/// NativeHotspot mode; field names for the DoppioJS dictionary mode),
/// method tables, static storage, and the initialization state machine
/// driven by the interpreter's <clinit> handling (§6.4).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_KLASS_H
#define DOPPIO_JVM_KLASS_H

#include "jvm/classfile/analysis.h"
#include "jvm/classfile/classfile.h"
#include "jvm/classfile/descriptor.h"
#include "jvm/object.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace doppio {
namespace jvm {

class Klass;
struct FieldInfo;
struct Method;
struct NativeContext;

/// Resolution results for one quickened constant-pool site (DESIGN.md
/// §18). When the interpreter rewrites an instruction to its _quick form,
/// the data the slow path resolved lands here, keyed by the instruction's
/// constant-pool index in the owning class's QuickPool. Entries are only
/// ever written on a successful slow-path execution, so a quick handler
/// can rely on every field its opcode needs being populated.
struct QuickEntry {
  /// Resolved class: field holder, invoked class, instantiated class, or
  /// checkcast/instanceof target.
  Klass *Holder = nullptr;
  /// Statically resolved callee (invokestatic/invokespecial).
  Method *Callee = nullptr;
  /// NativeHotspot-mode field info for the last receiver class seen.
  FieldInfo *Field = nullptr;
  /// Address of the static field's value node (&Holder->Statics[Name];
  /// std::map nodes are stable, so the pointer stays valid).
  Value *StaticCell = nullptr;
  /// Member name and descriptor, copied out of the constant pool once so
  /// the quick path never re-parses a MemberRef.
  std::string Name;
  std::string Descriptor;
  /// Argument slots for invokes (excluding the receiver).
  int ArgSlots = 0;
  /// True for category-2 (J/D) field values: push2/pop2.
  bool Wide = false;
  /// Materialized ldc constant (interned strings and class mirrors are
  /// cached by the VM, so replaying the value preserves identity).
  Value Constant;
  /// Monomorphic inline cache: the receiver class this site last saw,
  /// with the field id (DoppioJS dictionary access) or devirtualized
  /// callee (invokevirtual/invokeinterface) that class resolved to.
  Klass *IcKlass = nullptr;
  int IcFieldId = -1;
  Method *IcCallee = nullptr;
};

/// A native method body, implemented in the host (paper: in JavaScript,
/// §6.3).
using NativeFn = std::function<void(NativeContext &)>;

/// One resolved method.
struct Method {
  Klass *Owner = nullptr;
  uint16_t AccessFlags = 0;
  std::string Name;
  std::string Descriptor;
  desc::MethodDesc Parsed;
  int ParamSlots = 0; // Excluding the receiver.
  int RetSlots = 0;
  CodeAttr Code; // Empty for native/abstract methods.
  bool HasCode = false;
  /// True when the dataflow verifier proved this body safe: the
  /// interpreter may elide its per-instruction stack and locals guards
  /// (DESIGN.md §12). Set by the class loader; methods with any verify
  /// diagnostic run guarded instead.
  bool Verified = false;
  /// Placement-analysis verdict (DESIGN.md §17), set by the class loader
  /// next to Verified. When the CFG/loop pass proved bounded suspend
  /// placement, SuspendKeep holds one byte per code pc — 1 at branch
  /// instructions that carry a loop back edge and must keep their check —
  /// and SuspendBoundK is the proven maximum number of bytecodes
  /// executable between checks. Methods without a proof run with a check
  /// at every instruction in Placed mode (never incorrect, just slower).
  AnalysisStatus Placement = AnalysisStatus::NoCode;
  uint32_t SuspendBoundK = 0;
  std::vector<uint8_t> SuspendKeep;
  bool placementProved() const {
    return Placement == AnalysisStatus::Proved;
  }
  NativeFn Native; // Bound at link time from the native registry (§6.3).

  bool isStatic() const { return AccessFlags & AccStatic; }
  bool isNative() const { return AccessFlags & AccNative; }
  bool isSynchronized() const { return AccessFlags & AccSynchronized; }
  bool isAbstract() const { return AccessFlags & AccAbstract; }
  std::string key() const { return Name + Descriptor; }
  std::string qualifiedName() const;
};

/// One declared field.
struct FieldInfo {
  Klass *Owner = nullptr;
  uint16_t AccessFlags = 0;
  std::string Name;
  std::string Descriptor;
  /// Instance slot index (NativeHotspot layout), -1 for statics.
  int32_t SlotIndex = -1;
  uint16_t ConstantValueIndex = 0;

  bool isStatic() const { return AccessFlags & AccStatic; }
};

/// A loaded, linked class.
class Klass {
public:
  enum class InitState { Uninitialized, Initializing, Initialized };

  std::string Name;
  Klass *Super = nullptr;
  std::vector<Klass *> Interfaces;
  uint16_t AccessFlags = 0;
  ClassFile Cf; // Retains the constant pool for ldc/invoke/field insns.

  /// All declared fields (instance and static).
  std::vector<FieldInfo> Fields;
  /// Instance slots including superclasses (NativeHotspot layout size).
  uint32_t InstanceSlotCount = 0;
  /// Static values keyed by field name.
  std::map<std::string, Value> Statics;

  std::vector<std::unique_ptr<Method>> Methods;
  InitState Init = InitState::Uninitialized;

  // Array classes (§6.7: "the special array class that the JVM constructs
  // according to the array's component type").
  bool IsArrayClass = false;
  std::string ElemDesc;

  /// Declared method lookup (this class only).
  Method *findDeclaredMethod(const std::string &Name,
                             const std::string &Desc);
  /// Resolution along the superclass chain (and interfaces).
  Method *findMethod(const std::string &Name, const std::string &Desc);
  /// Virtual dispatch from this (receiver) class.
  Method *findVirtual(const std::string &Name, const std::string &Desc) {
    return findMethod(Name, Desc);
  }

  /// Field lookup along the superclass chain.
  FieldInfo *findField(const std::string &Name);

  bool isSubclassOf(const Klass *Other) const;
  bool implementsInterface(const Klass *Iface) const;
  /// instanceof / checkcast relation (subclass or interface; array
  /// covariance is handled by the interpreter).
  bool isAssignableTo(const Klass *Target) const;

  bool isInterface() const { return AccessFlags & AccInterface; }

  Method *clinit() { return findDeclaredMethod("<clinit>", "()V"); }

  /// The quickening side table for \p CpIndex, created on first use
  /// (DESIGN.md §18). Indexed by constant-pool index of the rewritten
  /// instruction's operand; lazily sized to the pool on first quickening
  /// so classes that never quicken pay nothing.
  QuickEntry &quickEntry(uint16_t CpIndex);
  /// Interns \p Name into this class's dense field-id space, used to
  /// index Object::fastCell inline-cache slots. Ids are consecutive from
  /// zero per klass and never recycled.
  int fastFieldId(const std::string &Name);

private:
  std::vector<std::unique_ptr<QuickEntry>> QuickPool;
  std::unordered_map<std::string, int> FastFieldIds;
};

/// Links a parsed class file into a Klass. \p Super and \p Interfaces must
/// already be linked. \p ResolveNative binds native methods (may return an
/// empty function for unknown natives — calling one throws
/// UnsatisfiedLinkError at run time).
std::unique_ptr<Klass>
linkClass(ClassFile Cf, Klass *Super, std::vector<Klass *> Interfaces,
          const std::function<NativeFn(const Klass &, const Method &)>
              &ResolveNative);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_KLASS_H
