//===- jvm/interpreter.cpp - All 201 opcodes ------------------------------==//
//
// The DoppioJVM interpreter core. Execution-mode differences (§7.1's
// comparison) are concentrated in a handful of helpers: int arithmetic
// (double+ToInt32 vs hardware int32), long arithmetic (software Long64 vs
// hardware int64), field access (name-keyed dictionary vs slot index), and
// the suspend checks at call boundaries that only DoppioJS mode performs.
//
//===----------------------------------------------------------------------===//

#include "jvm/interpreter.h"

#include "jvm/classfile/opcodes.h"
#include "jvm/jsnumber.h"

#include <cassert>
#include <cmath>
#include <sstream>

using namespace doppio;
using namespace doppio::jvm;
using rt::RunOutcome;

//===----------------------------------------------------------------------===//
// NativeContext
//===----------------------------------------------------------------------===//

void NativeContext::blockWithResult(
    std::function<void(NativeCompletion Complete)> Start) {
  Blocked = true;
  Jvm &TheVm = Vm;
  int32_t Tid = Thread.tid();
  Start([&TheVm, Tid](rt::ErrorOr<Value> R) {
    JvmThread *T = TheVm.threadForTid(Tid);
    assert(T && "completion for a dead thread");
    T->PendingNativeResult = std::move(R);
    T->AwaitingNativeResult = true;
    TheVm.pool().unblock(Tid);
  });
}

//===----------------------------------------------------------------------===//
// Mode-sensitive arithmetic
//===----------------------------------------------------------------------===//

int32_t JvmThread::modeAdd(int32_t A, int32_t B) {
  if (Vm.mode() == ExecutionMode::DoppioJS)
    return jsnum::addInt32(A, B);
  return static_cast<int32_t>(static_cast<int64_t>(A) + B);
}

int32_t JvmThread::modeSub(int32_t A, int32_t B) {
  if (Vm.mode() == ExecutionMode::DoppioJS)
    return jsnum::subInt32(A, B);
  return static_cast<int32_t>(static_cast<int64_t>(A) - B);
}

int32_t JvmThread::modeMul(int32_t A, int32_t B) {
  if (Vm.mode() == ExecutionMode::DoppioJS)
    return jsnum::mulInt32(A, B);
  return static_cast<int32_t>(static_cast<int64_t>(A) *
                              static_cast<int64_t>(B));
}

/// Long binary operation: software halves in DoppioJS mode (§8), hardware
/// int64 in the baseline.
Value JvmThread::modeLongBin(Op O, Value A, Value B) {
  if (Vm.mode() == ExecutionMode::DoppioJS) {
    // §8: software longs are "extremely slow when compared to normal
    // numeric operations" — each op is tens of JS operations (16-bit
    // chunking; division is a 64-step shift-subtract loop). Surcharges
    // accumulate separately from dispatch counts: quickened dispatch does
    // not make the intrinsic Long64 work cheaper (DESIGN.md §18).
    ExtraOpsSinceFlush += (O == Op::Ldiv || O == Op::Lrem) ? 24
                          : O == Op::Lmul               ? 10
                                                        : 3;
    Long64 X = A.asLong64(), Y = B.asLong64();
    switch (O) {
    case Op::Ladd:
      return Value::longVal(addLong(X, Y));
    case Op::Lsub:
      return Value::longVal(subLong(X, Y));
    case Op::Lmul:
      return Value::longVal(mulLong(X, Y));
    case Op::Ldiv:
      return Value::longVal(divLong(X, Y));
    case Op::Lrem:
      return Value::longVal(remLong(X, Y));
    case Op::Land:
      return Value::longVal(andLong(X, Y));
    case Op::Lor:
      return Value::longVal(orLong(X, Y));
    case Op::Lxor:
      return Value::longVal(xorLong(X, Y));
    default:
      assert(false && "not a long binop");
      return Value();
    }
  }
  int64_t X = A.J, Y = B.J;
  uint64_t UX = static_cast<uint64_t>(X), UY = static_cast<uint64_t>(Y);
  switch (O) {
  case Op::Ladd:
    return Value::longVal(static_cast<int64_t>(UX + UY));
  case Op::Lsub:
    return Value::longVal(static_cast<int64_t>(UX - UY));
  case Op::Lmul:
    return Value::longVal(static_cast<int64_t>(UX * UY));
  case Op::Ldiv:
    if (X == INT64_MIN && Y == -1)
      return Value::longVal(X);
    return Value::longVal(X / Y);
  case Op::Lrem:
    if (X == INT64_MIN && Y == -1)
      return Value::longVal(static_cast<int64_t>(0));
    return Value::longVal(X % Y);
  case Op::Land:
    return Value::longVal(X & Y);
  case Op::Lor:
    return Value::longVal(X | Y);
  case Op::Lxor:
    return Value::longVal(X ^ Y);
  default:
    assert(false && "not a long binop");
    return Value();
  }
}

//===----------------------------------------------------------------------===//
// Instance checks (arrays included)
//===----------------------------------------------------------------------===//

/// instanceof/checkcast relation, including array covariance.
static bool isInstanceOfKlass(Jvm &Vm, Object *O, Klass *Target) {
  if (!O)
    return false;
  Klass *OK = O->klass();
  if (OK == Target)
    return true;
  if (O->isArray()) {
    if (Target->Name == "java/lang/Object")
      return true;
    if (!Target->IsArrayClass)
      return false;
    auto *A = static_cast<ArrayObject *>(O);
    const std::string &SrcElem = A->elemDesc();
    const std::string &DstElem = Target->ElemDesc;
    if (SrcElem == DstElem)
      return true;
    // Reference-array covariance: [A assignable to [B iff A <= B.
    if (desc::isReference(SrcElem) && desc::isReference(DstElem)) {
      if (DstElem == "Ljava/lang/Object;")
        return true;
      Klass *Src = Vm.loader().lookup(desc::toClassName(SrcElem));
      Klass *Dst = Vm.loader().lookup(desc::toClassName(DstElem));
      return Src && Dst && Src->isAssignableTo(Dst);
    }
    return false;
  }
  return OK->isAssignableTo(Target);
}

//===----------------------------------------------------------------------===//
// Thread entry and the resume loop
//===----------------------------------------------------------------------===//

void JvmThread::pushEntryFrame(Method *M, std::vector<Value> Args) {
  assert(M->HasCode && "entry frame needs bytecode");
  Frame F;
  F.M = M;
  // Spread args into slots (category-2 values get padding).
  for (const Value &V : Args) {
    F.Locals.push_back(V);
    if (V.isCategory2())
      F.Locals.push_back(Value());
  }
  F.Locals.resize(M->Code.MaxLocals);
  F.Stack.reserve(M->Code.MaxStack);
  F.Trusted = M->Verified && Vm.trustVerifier();
  configureSuspendChecks(F);
  CallStack.push_back(std::move(F));
}

std::string JvmThread::stackTrace() const {
  std::ostringstream Out;
  for (auto It = CallStack.rbegin(); It != CallStack.rend(); ++It)
    Out << "\tat " << It->M->Owner->Name << "." << It->M->Name
        << It->M->Descriptor << " (pc=" << It->Pc << ")\n";
  return Out.str();
}

RunOutcome JvmThread::resume() {
  // Reacquire a monitor released by Object.wait (§6.2).
  if (PendingReacquire) {
    Object *O = PendingReacquire->Obj;
    Monitor &M = O->monitor();
    if (M.OwnerTid != -1 && M.OwnerTid != Tid) {
      bool Queued = false;
      for (int32_t T : M.EntrySet)
        Queued |= T == Tid;
      if (!Queued)
        M.EntrySet.push_back(Tid);
      return RunOutcome::Blocked;
    }
    M.OwnerTid = Tid;
    M.EntryCount = PendingReacquire->Count;
    std::erase(M.EntrySet, Tid);
    PendingReacquire.reset();
  }

  // A failed class load becomes NoClassDefFoundError at the faulting
  // instruction (§6.4).
  if (PendingLoadFailure) {
    std::string Name = *PendingLoadFailure;
    PendingLoadFailure.reset();
    StepResult R = throwJvm("java/lang/NoClassDefFoundError", Name);
    if (R == StepResult::Done) {
      Vm.flushOpCharges(OpsSinceFlush, ExtraOpsSinceFlush);
      OpsSinceFlush = ExtraOpsSinceFlush = 0;
      Vm.noteThreadFinished(*this);
      return RunOutcome::Terminated;
    }
  }

  // Settle an asynchronous native result (§4.2/§6.3): the program resumes
  // "as if it had just received data synchronously".
  if (AwaitingNativeResult) {
    AwaitingNativeResult = false;
    if (!PendingNativeResult.ok()) {
      StepResult R = throwJvm("java/io/IOException",
                              PendingNativeResult.error().message());
      if (R == StepResult::Done) {
        Vm.flushOpCharges(OpsSinceFlush, ExtraOpsSinceFlush);
        OpsSinceFlush = ExtraOpsSinceFlush = 0;
        Vm.noteThreadFinished(*this);
        return RunOutcome::Terminated;
      }
    } else if (PendingNativeResult->K != Value::Kind::Empty) {
      pushSlotted(*PendingNativeResult);
    }
  }

  while (true) {
    StepResult R = step();
    if (R == StepResult::Continue)
      continue;
    Vm.flushOpCharges(OpsSinceFlush, ExtraOpsSinceFlush);
    OpsSinceFlush = ExtraOpsSinceFlush = 0;
    switch (R) {
    case StepResult::Yield:
      return RunOutcome::Yielded;
    case StepResult::Block:
      // Blocking leaves the host stack — a stronger preemption point
      // than any suspend check — so the between-checks span restarts
      // (the blocked instruction also re-dispatches on wake and must not
      // count twice against the static bound).
      OpsSinceCheck = 0;
      return RunOutcome::Blocked;
    case StepResult::Done:
      Vm.noteThreadFinished(*this);
      return RunOutcome::Terminated;
    case StepResult::Continue:
      break;
    }
  }
}

bool JvmThread::wantsSuspend() {
  if (Vm.mode() != ExecutionMode::DoppioJS)
    return false;
  // Close the dynamic between-checks span (DESIGN.md §17): the counter
  // measures checks *executed*, whether or not this one yields.
  Vm.noteSuspendCheckExecuted(OpsSinceCheck);
  OpsSinceCheck = 0;
  // Charge the work done since the last boundary so the virtual clock
  // advances between checks — the adaptive counter (§4.1) measures the
  // elapsed time of each countdown from it.
  Vm.flushOpCharges(OpsSinceFlush, ExtraOpsSinceFlush);
  OpsSinceFlush = ExtraOpsSinceFlush = 0;
  if (!Vm.suspender().shouldSuspend())
    return false;
  ++Vm.stats().SuspendYields;
  return true;
}

void JvmThread::configureSuspendChecks(Frame &F) {
  switch (Vm.suspendCheckMode()) {
  case SuspendCheckMode::CallBoundary:
    break; // Legacy §6.1 behavior: boundaries only, branches free.
  case SuspendCheckMode::Everywhere:
    F.CheckEvery = true;
    break;
  case SuspendCheckMode::Placed:
    // Placement rides on the verifier like Trusted does: the proof used
    // the verified boundaries, so an untrusted run degrades too.
    if (F.M->placementProved() && F.M->Verified)
      F.SuspendKeep = F.M->SuspendKeep.data();
    else
      F.CheckEvery = true;
    break;
  }
}

JvmThread::StepResult JvmThread::branchDone(Frame &F, uint32_t Site) {
  if (!F.SuspendKeep)
    return StepResult::Continue;
  if (F.SuspendKeep[Site]) {
    // A loop back edge: the one branch site that must keep its check.
    // Pc already points at the destination, so a yield resumes there.
    if (wantsSuspend())
      return StepResult::Yield;
  } else {
    Vm.noteSuspendCheckElided();
  }
  return StepResult::Continue;
}

//===----------------------------------------------------------------------===//
// Exceptions (§6.6)
//===----------------------------------------------------------------------===//

JvmThread::StepResult JvmThread::throwJvm(const std::string &ClassName,
                                          const std::string &Message) {
  Object *Ex = Vm.makeThrowable(ClassName, Message);
  return dispatchException(Ex);
}

JvmThread::StepResult JvmThread::dispatchException(Object *Ex) {
  std::string Trace = stackTrace(); // §6.1: trivial stack introspection.
  // "Iterating through its virtual stack representation until it finds a
  // stack frame with an applicable exception handler" (§6.6).
  while (!CallStack.empty()) {
    Frame &F = CallStack.back();
    if (F.M->HasCode) {
      for (const ExceptionHandler &H : F.M->Code.Handlers) {
        if (F.Pc < H.StartPc || F.Pc >= H.EndPc)
          continue;
        if (H.CatchType != 0) {
          const std::string &CatchName =
              F.M->Owner->Cf.Pool.className(H.CatchType);
          Klass *Catch = Vm.loader().lookup(CatchName);
          // An unloaded catch type cannot match: every superclass of the
          // (loaded) exception class was loaded transitively.
          if (!Catch || !isInstanceOfKlass(Vm, Ex, Catch))
            continue;
        }
        F.Stack.clear();
        F.Stack.push_back(Value::ref(Ex));
        F.Pc = H.HandlerPc;
        // Handler entry is a check site in Placed mode: the throwing
        // path may have run check-free since the last kept site, and the
        // handler's own proof assumes a fresh span from its entry
        // (DESIGN.md §17).
        if (F.SuspendKeep && wantsSuspend())
          return StepResult::Yield;
        return StepResult::Continue;
      }
    }
    if (F.Locked)
      releaseMonitor(F.Locked);
    if (F.ClinitOf)
      F.ClinitOf->Init = Klass::InitState::Initialized;
    CallStack.pop_back();
  }
  // Uncaught: report and terminate the thread ("exits with an error").
  Uncaught = true;
  Finished = true;
  std::string Msg = "Exception in thread \"" + name() + "\" " +
                    Ex->klass()->Name;
  Value Detail = Ex->mode() == ExecutionMode::DoppioJS
                     ? Ex->getFieldByName("detailMessage")
                     : Ex->getSlot(0);
  if (Detail.K == Value::Kind::Ref && Detail.R)
    Msg += ": " + Vm.stringValue(Detail.R);
  Vm.process().writeStderr(Msg + "\n" + Trace);
  return StepResult::Done;
}

//===----------------------------------------------------------------------===//
// Class resolution and initialization (§6.4)
//===----------------------------------------------------------------------===//

Klass *JvmThread::resolveClass(const std::string &Name, StepResult &Out) {
  if (Klass *K = Vm.loader().lookup(Name)) {
    Out = StepResult::Continue;
    return K;
  }
  // Not loaded: start the asynchronous download through the Doppio file
  // system (§6.4) and block; the triggering instruction re-executes.
  Jvm &TheVm = Vm;
  int32_t MyTid = Tid;
  Vm.loader().loadAsync(Name, [&TheVm, MyTid,
                               Name](rt::ErrorOr<Klass *> R) {
    JvmThread *T = TheVm.threadForTid(MyTid);
    if (!R)
      T->PendingLoadFailure = Name; // Thrown when the thread resumes.
    TheVm.pool().unblock(MyTid);
  });
  Out = StepResult::Block;
  return nullptr;
}

bool JvmThread::ensureInitialized(Klass *K, StepResult &Out) {
  // Find the topmost uninitialized ancestor: supers initialize first.
  Klass *Top = nullptr;
  for (Klass *C = K; C; C = C->Super)
    if (C->Init == Klass::InitState::Uninitialized)
      Top = C;
  if (!Top) {
    Out = StepResult::Continue;
    return true;
  }
  Top->Init = Klass::InitState::Initializing;
  Method *Clinit = Top->clinit();
  if (!Clinit || !Clinit->HasCode) {
    Top->Init = Klass::InitState::Initialized;
    // Loop: more ancestors (or K itself) may still need work.
    return ensureInitialized(K, Out);
  }
  Frame F;
  F.M = Clinit;
  F.Locals.resize(Clinit->Code.MaxLocals);
  F.Stack.reserve(Clinit->Code.MaxStack);
  F.ClinitOf = Top;
  F.Trusted = Clinit->Verified && Vm.trustVerifier();
  configureSuspendChecks(F);
  CallStack.push_back(std::move(F));
  ++Vm.stats().MethodInvocations;
  Out = StepResult::Continue; // Re-executes the triggering instruction
  // A <clinit> push is a method-entry boundary like any invoke; outside
  // the legacy CallBoundary mode it closes the caller's span so the
  // bound proof holds across static initialization (DESIGN.md §17).
  if (Vm.suspendCheckMode() != SuspendCheckMode::CallBoundary &&
      wantsSuspend())
    Out = StepResult::Yield;
  return false; // After <clinit> returns.
}

//===----------------------------------------------------------------------===//
// Monitors (§6.2)
//===----------------------------------------------------------------------===//

JvmThread::StepResult JvmThread::monitorEnter(Object *O) {
  Monitor &M = O->monitor();
  if (M.OwnerTid == -1 || M.OwnerTid == Tid) {
    M.OwnerTid = Tid;
    ++M.EntryCount;
    std::erase(M.EntrySet, Tid);
    return StepResult::Continue;
  }
  bool Queued = false;
  for (int32_t T : M.EntrySet)
    Queued |= T == Tid;
  if (!Queued)
    M.EntrySet.push_back(Tid);
  return StepResult::Block;
}

void JvmThread::releaseMonitor(Object *O) {
  Monitor &M = O->monitor();
  assert(M.OwnerTid == Tid && "releasing a monitor we do not own");
  if (--M.EntryCount > 0)
    return;
  M.OwnerTid = -1;
  // Wake every contender; one will win, the rest re-block (§4.3's
  // cooperative switching makes this cheap).
  std::vector<int32_t> Waiters = M.EntrySet;
  for (int32_t T : Waiters)
    if (Vm.pool().state(T) == rt::ThreadState::Blocked)
      Vm.pool().unblock(T);
}

JvmThread::StepResult JvmThread::monitorExit(Object *O) {
  Monitor &M = O->monitor();
  if (M.OwnerTid != Tid)
    return throwJvm("java/lang/IllegalMonitorStateException",
                    "thread does not own monitor");
  releaseMonitor(O);
  return StepResult::Continue;
}

//===----------------------------------------------------------------------===//
// Invocation
//===----------------------------------------------------------------------===//

JvmThread::StepResult JvmThread::invokeNative(Method *M,
                                              std::vector<Value> Args,
                                              uint32_t InsnLen) {
  NativeContext Ctx(Vm, *this, *M);
  Ctx.Args = std::move(Args);
  if (!M->Native)
    return throwJvm("java/lang/UnsatisfiedLinkError", M->qualifiedName());
  M->Native(Ctx);
  // Exceptions dispatch with pc still at the invoke instruction, so
  // handler ranges that end right after the call still match (§6.6).
  if (Ctx.Thrown)
    return throwJvm(Ctx.Thrown->first, Ctx.Thrown->second);
  if (CallStack.empty()) {
    // System.exit tore the stack down.
    Finished = true;
    return StepResult::Done;
  }
  // Completing later (or now) must not re-run the invoke: step past it.
  CallStack.back().Pc += InsnLen;
  if (Ctx.Blocked || Ctx.BlockedOnMonitor)
    return StepResult::Block;
  if (Ctx.HasRet && M->RetSlots > 0)
    pushSlotted(Ctx.Ret);
  if (wantsSuspend())
    return StepResult::Yield;
  return StepResult::Continue;
}

/// Unpacks slot-encoded arguments into distinct values (receiver first).
static std::vector<Value> unpackArgs(const std::vector<Value> &Slots,
                                     const Method &M, bool HasReceiver) {
  std::vector<Value> Args;
  size_t I = 0;
  if (HasReceiver)
    Args.push_back(Slots[I++]);
  for (const std::string &P : M.Parsed.Params) {
    Args.push_back(Slots[I]);
    I += desc::slotSize(P);
  }
  return Args;
}

JvmThread::StepResult JvmThread::invokeMethod(Method *M, bool HasReceiver,
                                              uint32_t InsnLen) {
  // The caller resolved everything and handled synchronization
  // contention; the argument slots sit on its operand stack and pc still
  // points at the invoke instruction.
  Frame &Caller = CallStack.back();
  int TotalSlots = M->ParamSlots + (HasReceiver ? 1 : 0);
  std::vector<Value> Slots(Caller.Stack.end() - TotalSlots,
                           Caller.Stack.end());
  Caller.Stack.resize(Caller.Stack.size() - TotalSlots);
  ++Vm.stats().MethodInvocations;

  if (M->isNative())
    return invokeNative(M, unpackArgs(Slots, *M, HasReceiver), InsnLen);

  if (!M->HasCode)
    return throwJvm("java/lang/AbstractMethodError", M->qualifiedName());

  Caller.Pc += InsnLen; // Return lands after the invoke.
  Frame F;
  F.M = M;
  F.Locals = std::move(Slots);
  F.Locals.resize(M->Code.MaxLocals);
  F.Stack.reserve(M->Code.MaxStack);
  F.Trusted = M->Verified && Vm.trustVerifier();
  configureSuspendChecks(F);
  if (M->isSynchronized()) {
    Object *Lock = HasReceiver ? F.Locals[0].R : Vm.mirrorOf(M->Owner);
    // Contention was checked by the caller before popping; entering here
    // cannot block.
    StepResult R = monitorEnter(Lock);
    assert(R == StepResult::Continue && "lock vanished between checks");
    (void)R;
    F.Locked = Lock;
  }
  CallStack.push_back(std::move(F));
  // "DoppioJVM checks at each function call boundary whether it should
  // suspend" (§6.1).
  if (wantsSuspend())
    return StepResult::Yield;
  return StepResult::Continue;
}

JvmThread::StepResult
JvmThread::returnFromFrame(std::optional<Value> Ret) {
  Frame &F = CallStack.back();
  if (F.Locked)
    releaseMonitor(F.Locked);
  Klass *InitDone = F.ClinitOf;
  CallStack.pop_back();
  if (InitDone)
    InitDone->Init = Klass::InitState::Initialized;
  if (CallStack.empty()) {
    Finished = true;
    return StepResult::Done;
  }
  if (Ret)
    pushSlotted(*Ret);
  if (wantsSuspend())
    return StepResult::Yield;
  return StepResult::Continue;
}

//===----------------------------------------------------------------------===//
// The dispatch loop
//===----------------------------------------------------------------------===//

namespace {

/// Big-endian operand readers.
inline uint8_t rdU1(const std::vector<uint8_t> &C, uint32_t At) {
  return C[At];
}
inline int8_t rdS1(const std::vector<uint8_t> &C, uint32_t At) {
  return static_cast<int8_t>(C[At]);
}
inline uint16_t rdU2(const std::vector<uint8_t> &C, uint32_t At) {
  return static_cast<uint16_t>((C[At] << 8) | C[At + 1]);
}
inline int16_t rdS2(const std::vector<uint8_t> &C, uint32_t At) {
  return static_cast<int16_t>(rdU2(C, At));
}
inline int32_t rdS4(const std::vector<uint8_t> &C, uint32_t At) {
  return static_cast<int32_t>((static_cast<uint32_t>(C[At]) << 24) |
                              (static_cast<uint32_t>(C[At + 1]) << 16) |
                              (static_cast<uint32_t>(C[At + 2]) << 8) |
                              static_cast<uint32_t>(C[At + 3]));
}

} // namespace

/// Bounds-checks the next instruction of an untrusted frame: enough
/// operand-stack slots to pop, room below max_stack for the pushes, and
/// every local access inside max_locals. Verified frames skip this — the
/// dataflow analysis proved the same properties statically, which is the
/// whole point of the elision (DESIGN.md §12). Types are not re-checked
/// here: slot misuse in unverified code yields wrong values, not memory
/// errors, exactly as the seed interpreter behaved for all code.
bool JvmThread::guardedPrecheck(Frame &F, StepResult &Out) {
  const CodeAttr &Code = F.M->Code;
  const std::vector<uint8_t> &C = Code.Bytecode;
  const ConstantPool &Pool = F.M->Owner->Cf.Pool;
  // Quick forms never reach untrusted frames (quickening requires
  // Frame::Trusted), but map them to their base form defensively: the
  // operand layouts are identical by construction (opcodes.def).
  Op O = static_cast<Op>(baseOpcode(C[F.Pc]));
  int Pops = 0, Pushes = 0;
  int64_t LocalTop = -1; // Highest local slot touched.

  auto fieldSlots = [&](uint32_t At) -> int {
    uint16_t Idx = rdU2(C, At);
    if (!Pool.valid(Idx))
      return -1;
    return desc::slotSize(Pool.memberRef(Idx).Descriptor);
  };
  auto invokeEffect = [&](uint32_t At, bool HasReceiver) -> bool {
    uint16_t Idx = rdU2(C, At);
    if (!Pool.valid(Idx))
      return false;
    auto D = desc::parseMethod(Pool.memberRef(Idx).Descriptor);
    if (!D)
      return false;
    Pops = desc::paramSlots(*D) + (HasReceiver ? 1 : 0);
    Pushes = desc::slotSize(D->Ret);
    return true;
  };

  switch (O) {
  case Op::Nop:
  case Op::Goto:
  case Op::GotoW:
  case Op::Return:
    break;
  case Op::New:
    Pushes = 1;
    break;
  case Op::Ret:
    LocalTop = rdU1(C, F.Pc + 1);
    break;
  case Op::Iinc:
    LocalTop = rdU1(C, F.Pc + 1);
    break;
  case Op::AconstNull:
  case Op::IconstM1:
  case Op::Iconst0:
  case Op::Iconst1:
  case Op::Iconst2:
  case Op::Iconst3:
  case Op::Iconst4:
  case Op::Iconst5:
  case Op::Fconst0:
  case Op::Fconst1:
  case Op::Fconst2:
  case Op::Bipush:
  case Op::Sipush:
  case Op::Ldc:
  case Op::LdcW:
  case Op::Jsr:
  case Op::JsrW:
    Pushes = 1;
    break;
  case Op::Lconst0:
  case Op::Lconst1:
  case Op::Dconst0:
  case Op::Dconst1:
  case Op::Ldc2W:
    Pushes = 2;
    break;
  case Op::Iload:
  case Op::Fload:
  case Op::Aload:
    Pushes = 1;
    LocalTop = rdU1(C, F.Pc + 1);
    break;
  case Op::Lload:
  case Op::Dload:
    Pushes = 2;
    LocalTop = rdU1(C, F.Pc + 1) + 1;
    break;
  case Op::Iload0:
  case Op::Iload1:
  case Op::Iload2:
  case Op::Iload3:
    Pushes = 1;
    LocalTop = static_cast<int64_t>(O) - static_cast<int64_t>(Op::Iload0);
    break;
  case Op::Fload0:
  case Op::Fload1:
  case Op::Fload2:
  case Op::Fload3:
    Pushes = 1;
    LocalTop = static_cast<int64_t>(O) - static_cast<int64_t>(Op::Fload0);
    break;
  case Op::Aload0:
  case Op::Aload1:
  case Op::Aload2:
  case Op::Aload3:
    Pushes = 1;
    LocalTop = static_cast<int64_t>(O) - static_cast<int64_t>(Op::Aload0);
    break;
  case Op::Lload0:
  case Op::Lload1:
  case Op::Lload2:
  case Op::Lload3:
    Pushes = 2;
    LocalTop =
        static_cast<int64_t>(O) - static_cast<int64_t>(Op::Lload0) + 1;
    break;
  case Op::Dload0:
  case Op::Dload1:
  case Op::Dload2:
  case Op::Dload3:
    Pushes = 2;
    LocalTop =
        static_cast<int64_t>(O) - static_cast<int64_t>(Op::Dload0) + 1;
    break;
  case Op::Iaload:
  case Op::Faload:
  case Op::Aaload:
  case Op::Baload:
  case Op::Caload:
  case Op::Saload:
    Pops = 2;
    Pushes = 1;
    break;
  case Op::Laload:
  case Op::Daload:
    Pops = 2;
    Pushes = 2;
    break;
  case Op::Istore:
  case Op::Fstore:
  case Op::Astore:
    Pops = 1;
    LocalTop = rdU1(C, F.Pc + 1);
    break;
  case Op::Lstore:
  case Op::Dstore:
    Pops = 2;
    LocalTop = rdU1(C, F.Pc + 1) + 1;
    break;
  case Op::Istore0:
  case Op::Istore1:
  case Op::Istore2:
  case Op::Istore3:
    Pops = 1;
    LocalTop = static_cast<int64_t>(O) - static_cast<int64_t>(Op::Istore0);
    break;
  case Op::Fstore0:
  case Op::Fstore1:
  case Op::Fstore2:
  case Op::Fstore3:
    Pops = 1;
    LocalTop = static_cast<int64_t>(O) - static_cast<int64_t>(Op::Fstore0);
    break;
  case Op::Astore0:
  case Op::Astore1:
  case Op::Astore2:
  case Op::Astore3:
    Pops = 1;
    LocalTop = static_cast<int64_t>(O) - static_cast<int64_t>(Op::Astore0);
    break;
  case Op::Lstore0:
  case Op::Lstore1:
  case Op::Lstore2:
  case Op::Lstore3:
    Pops = 2;
    LocalTop =
        static_cast<int64_t>(O) - static_cast<int64_t>(Op::Lstore0) + 1;
    break;
  case Op::Dstore0:
  case Op::Dstore1:
  case Op::Dstore2:
  case Op::Dstore3:
    Pops = 2;
    LocalTop =
        static_cast<int64_t>(O) - static_cast<int64_t>(Op::Dstore0) + 1;
    break;
  case Op::Iastore:
  case Op::Fastore:
  case Op::Aastore:
  case Op::Bastore:
  case Op::Castore:
  case Op::Sastore:
    Pops = 3;
    break;
  case Op::Lastore:
  case Op::Dastore:
    Pops = 4;
    break;
  case Op::Pop:
    Pops = 1;
    break;
  case Op::Pop2:
    Pops = 2;
    break;
  case Op::Dup:
    Pops = 1;
    Pushes = 2;
    break;
  case Op::DupX1:
    Pops = 2;
    Pushes = 3;
    break;
  case Op::DupX2:
    Pops = 3;
    Pushes = 4;
    break;
  case Op::Dup2:
    Pops = 2;
    Pushes = 4;
    break;
  case Op::Dup2X1:
    Pops = 3;
    Pushes = 5;
    break;
  case Op::Dup2X2:
    Pops = 4;
    Pushes = 6;
    break;
  case Op::Swap:
    Pops = 2;
    Pushes = 2;
    break;
  case Op::Iadd:
  case Op::Isub:
  case Op::Imul:
  case Op::Idiv:
  case Op::Irem:
  case Op::Ishl:
  case Op::Ishr:
  case Op::Iushr:
  case Op::Iand:
  case Op::Ior:
  case Op::Ixor:
  case Op::Fadd:
  case Op::Fsub:
  case Op::Fmul:
  case Op::Fdiv:
  case Op::Frem:
    Pops = 2;
    Pushes = 1;
    break;
  case Op::Ladd:
  case Op::Lsub:
  case Op::Lmul:
  case Op::Ldiv:
  case Op::Lrem:
  case Op::Land:
  case Op::Lor:
  case Op::Lxor:
  case Op::Dadd:
  case Op::Dsub:
  case Op::Dmul:
  case Op::Ddiv:
  case Op::Drem:
    Pops = 4;
    Pushes = 2;
    break;
  case Op::Lshl:
  case Op::Lshr:
  case Op::Lushr:
    Pops = 3;
    Pushes = 2;
    break;
  case Op::Ineg:
  case Op::Fneg:
  case Op::I2f:
  case Op::F2i:
  case Op::I2b:
  case Op::I2c:
  case Op::I2s:
  case Op::Newarray:
  case Op::Anewarray:
  case Op::Arraylength:
  case Op::Checkcast:
  case Op::Instanceof:
    Pops = 1;
    Pushes = 1;
    break;
  case Op::Lneg:
  case Op::Dneg:
  case Op::L2d:
  case Op::D2l:
    Pops = 2;
    Pushes = 2;
    break;
  case Op::I2l:
  case Op::I2d:
  case Op::F2l:
  case Op::F2d:
    Pops = 1;
    Pushes = 2;
    break;
  case Op::L2i:
  case Op::L2f:
  case Op::D2i:
  case Op::D2f:
  case Op::Fcmpl:
  case Op::Fcmpg:
    Pops = 2;
    Pushes = 1;
    break;
  case Op::Lcmp:
  case Op::Dcmpl:
  case Op::Dcmpg:
    Pops = 4;
    Pushes = 1;
    break;
  case Op::Ifeq:
  case Op::Ifne:
  case Op::Iflt:
  case Op::Ifge:
  case Op::Ifgt:
  case Op::Ifle:
  case Op::Ifnull:
  case Op::Ifnonnull:
  case Op::Tableswitch:
  case Op::Lookupswitch:
  case Op::Ireturn:
  case Op::Freturn:
  case Op::Areturn:
  case Op::Athrow:
  case Op::Monitorenter:
  case Op::Monitorexit:
    Pops = 1;
    break;
  case Op::IfIcmpeq:
  case Op::IfIcmpne:
  case Op::IfIcmplt:
  case Op::IfIcmpge:
  case Op::IfIcmpgt:
  case Op::IfIcmple:
  case Op::IfAcmpeq:
  case Op::IfAcmpne:
  case Op::Lreturn:
  case Op::Dreturn:
    Pops = 2;
    break;
  case Op::Getstatic: {
    int S = fieldSlots(F.Pc + 1);
    if (S < 0) {
      Out = throwJvm("java/lang/VerifyError", "bad field reference");
      return false;
    }
    Pushes = S;
    break;
  }
  case Op::Putstatic: {
    int S = fieldSlots(F.Pc + 1);
    if (S < 0) {
      Out = throwJvm("java/lang/VerifyError", "bad field reference");
      return false;
    }
    Pops = S;
    break;
  }
  case Op::Getfield: {
    int S = fieldSlots(F.Pc + 1);
    if (S < 0) {
      Out = throwJvm("java/lang/VerifyError", "bad field reference");
      return false;
    }
    Pops = 1;
    Pushes = S;
    break;
  }
  case Op::Putfield: {
    int S = fieldSlots(F.Pc + 1);
    if (S < 0) {
      Out = throwJvm("java/lang/VerifyError", "bad field reference");
      return false;
    }
    Pops = 1 + S;
    break;
  }
  case Op::Invokevirtual:
  case Op::Invokespecial:
  case Op::Invokeinterface:
    if (!invokeEffect(F.Pc + 1, /*HasReceiver=*/true)) {
      Out = throwJvm("java/lang/VerifyError", "bad method reference");
      return false;
    }
    break;
  case Op::Invokestatic:
    if (!invokeEffect(F.Pc + 1, /*HasReceiver=*/false)) {
      Out = throwJvm("java/lang/VerifyError", "bad method reference");
      return false;
    }
    break;
  case Op::Multianewarray:
    Pops = rdU1(C, F.Pc + 3);
    Pushes = 1;
    break;
  case Op::Wide: {
    Op Inner = static_cast<Op>(C[F.Pc + 1]);
    uint32_t Slot = rdU2(C, F.Pc + 2);
    switch (Inner) {
    case Op::Iload:
    case Op::Fload:
    case Op::Aload:
      Pushes = 1;
      LocalTop = Slot;
      break;
    case Op::Lload:
    case Op::Dload:
      Pushes = 2;
      LocalTop = Slot + 1;
      break;
    case Op::Istore:
    case Op::Fstore:
    case Op::Astore:
      Pops = 1;
      LocalTop = Slot;
      break;
    case Op::Lstore:
    case Op::Dstore:
      Pops = 2;
      LocalTop = Slot + 1;
      break;
    case Op::Iinc:
    case Op::Ret:
      LocalTop = Slot;
      break;
    default:
      Out = throwJvm("java/lang/VerifyError",
                     "wide prefix on a non-widenable instruction");
      return false;
    }
    break;
  }
  default:
    break; // Remaining opcodes touch neither stack slots nor locals.
  }

  if (F.Stack.size() < static_cast<size_t>(Pops)) {
    Out = throwJvm("java/lang/VerifyError",
                   std::string("stack underflow at ") + opcodeName(static_cast<uint8_t>(O)) +
                       " (pc " + std::to_string(F.Pc) + ")");
    return false;
  }
  if (F.Stack.size() - Pops + Pushes > Code.MaxStack) {
    Out = throwJvm("java/lang/VerifyError",
                   std::string("stack overflow at ") + opcodeName(static_cast<uint8_t>(O)) +
                       " (pc " + std::to_string(F.Pc) + ")");
    return false;
  }
  if (LocalTop >= static_cast<int64_t>(Code.MaxLocals)) {
    Out = throwJvm("java/lang/VerifyError",
                   std::string("local out of bounds at ") + opcodeName(static_cast<uint8_t>(O)) +
                       " (pc " + std::to_string(F.Pc) + ")");
    return false;
  }
  return true;
}

// Dispatch-label macro (DESIGN.md §18). Under DOPPIO_COMPUTED_GOTO
// (selected at configure time on GCC/Clang) every handler is a
// labels-as-values target and dispatch is one indexed indirect jump;
// otherwise the handlers are cases of a portable switch. Handler bodies
// are identical in both modes.
#ifdef DOPPIO_COMPUTED_GOTO
#define OPC(name) Lbl_##name:
#define OPC_ILLEGAL Lbl_Illegal:
#else
#define OPC(name) case Op::name:
#define OPC_ILLEGAL default:
#endif

JvmThread::StepResult JvmThread::step() {
  Frame &F = CallStack.back();
  // Everywhere mode — and Placed-mode frames the analysis could not
  // prove — checks before every dispatch. Pc is untouched, so a yield
  // re-enters at the same instruction; nothing below has run yet.
  if (F.CheckEvery && wantsSuspend())
    return StepResult::Yield;
  const std::vector<uint8_t> &C = F.M->Code.Bytecode;
  assert(F.Pc < C.size() && "pc ran off the end of the method");
  Op O = static_cast<Op>(C[F.Pc]);
  ++Vm.stats().OpsExecuted;
  ++OpsSinceFlush;
  ++OpsSinceCheck;

  // Check-elision fast path: frames the verifier proved skip the guarded
  // precheck entirely (DESIGN.md §12).
  if (!F.Trusted) {
    StepResult Guarded;
    if (!guardedPrecheck(F, Guarded))
      return Guarded;
  }

  // In-place quickening (DESIGN.md §18): after a slow handler fully
  // resolved its operands, rewrite the opcode byte to the _quick form and
  // hand back the constant-pool side table to stash the resolution in.
  // Widths match, so no pc, branch offset, SuspendKeep bit, or
  // checkpointed frame image ever moves. Gated on the frame being
  // verifier-trusted: quick forms bypass the guarded precheck's operand
  // re-validation, so only proven bodies may install them.
  auto quicken = [&](uint16_t Idx) -> QuickEntry * {
    if (!Vm.profile().Quicken || !F.Trusted)
      return nullptr;
    if (!isQuickOpcode(F.M->Code.Bytecode[F.Pc])) {
      F.M->Code.Bytecode[F.Pc] = quickenedForm(F.M->Code.Bytecode[F.Pc]);
      ++Vm.stats().QuickenedSites;
    }
    return &F.M->Owner->quickEntry(Idx);
  };

#ifdef DOPPIO_COMPUTED_GOTO
  // Threaded dispatch: the handler-address table, built once from
  // opcodes.def (C++ lacks designated initializers for label addresses).
  // Gaps point at the illegal handler, exactly like the switch default.
  static const void *DispatchTable[256];
  static bool TableReady = false;
  if (!TableReady) {
    for (int I = 0; I != 256; ++I)
      DispatchTable[I] = &&Lbl_Illegal;
#define JVM_OPCODE(NAME, VALUE, OPERANDS, KIND, QUICK)                       \
  DispatchTable[VALUE] = &&Lbl_##NAME;
#define JVM_QUICK_OPCODE(NAME, VALUE, OPERANDS, KIND, BASE)                  \
  DispatchTable[VALUE] = &&Lbl_##NAME;
#include "jvm/classfile/opcodes.def"
#undef JVM_QUICK_OPCODE
#undef JVM_OPCODE
    TableReady = true;
  }
  goto *DispatchTable[static_cast<uint8_t>(O)];
#else
  switch (O) {
#endif
  OPC(Nop)
    ++F.Pc;
    return StepResult::Continue;

  // Constants -----------------------------------------------------------
  OPC(AconstNull)
    push(Value::null());
    ++F.Pc;
    return StepResult::Continue;
  OPC(IconstM1)
  OPC(Iconst0)
  OPC(Iconst1)
  OPC(Iconst2)
  OPC(Iconst3)
  OPC(Iconst4)
  OPC(Iconst5)
    push(Value::intVal(static_cast<int32_t>(O) -
                       static_cast<int32_t>(Op::Iconst0)));
    ++F.Pc;
    return StepResult::Continue;
  OPC(Lconst0)
  OPC(Lconst1)
    push2(Value::longVal(static_cast<int64_t>(
        static_cast<int32_t>(O) - static_cast<int32_t>(Op::Lconst0))));
    ++F.Pc;
    return StepResult::Continue;
  OPC(Fconst0)
  OPC(Fconst1)
  OPC(Fconst2)
    push(Value::floatVal(static_cast<float>(
        static_cast<int32_t>(O) - static_cast<int32_t>(Op::Fconst0))));
    ++F.Pc;
    return StepResult::Continue;
  OPC(Dconst0)
  OPC(Dconst1)
    push2(Value::doubleVal(static_cast<double>(
        static_cast<int32_t>(O) - static_cast<int32_t>(Op::Dconst0))));
    ++F.Pc;
    return StepResult::Continue;
  OPC(Bipush)
    push(Value::intVal(rdS1(C, F.Pc + 1)));
    F.Pc += 2;
    return StepResult::Continue;
  OPC(Sipush)
    push(Value::intVal(rdS2(C, F.Pc + 1)));
    F.Pc += 3;
    return StepResult::Continue;

  OPC(Ldc)
  OPC(LdcW) {
    uint16_t Idx = O == Op::Ldc ? rdU1(C, F.Pc + 1) : rdU2(C, F.Pc + 1);
    uint32_t Len = O == Op::Ldc ? 2 : 3;
    const CpEntry &E = F.M->Owner->Cf.Pool.at(Idx);
    Value V;
    switch (E.Tag) {
    case CpTag::Integer:
      V = Value::intVal(E.Int);
      break;
    case CpTag::Float:
      V = Value::floatVal(E.F);
      break;
    case CpTag::String:
      V = Value::ref(Vm.internString(F.M->Owner->Cf.Pool.stringValue(Idx)));
      break;
    case CpTag::Class: {
      StepResult R;
      Klass *K = resolveClass(F.M->Owner->Cf.Pool.className(Idx), R);
      if (!K)
        return R;
      V = Value::ref(Vm.mirrorOf(K));
      break;
    }
    default:
      return throwJvm("java/lang/ClassFormatError", "bad ldc constant");
    }
    // Interned strings and class mirrors are VM-cached, so replaying the
    // materialized value from the quick entry preserves identity.
    if (QuickEntry *Q = quicken(Idx))
      Q->Constant = V;
    push(V);
    F.Pc += Len;
    return StepResult::Continue;
  }
  OPC(Ldc2W) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    const CpEntry &E = F.M->Owner->Cf.Pool.at(Idx);
    if (E.Tag == CpTag::Long)
      push2(Value::longVal(E.LongBits));
    else if (E.Tag == CpTag::Double)
      push2(Value::doubleVal(std::bit_cast<double>(E.LongBits)));
    else
      return throwJvm("java/lang/ClassFormatError", "bad ldc2_w constant");
    F.Pc += 3;
    return StepResult::Continue;
  }

  // Loads ----------------------------------------------------------------
  OPC(Iload)
  OPC(Fload)
  OPC(Aload)
    push(F.Locals[rdU1(C, F.Pc + 1)]);
    F.Pc += 2;
    return StepResult::Continue;
  OPC(Lload)
  OPC(Dload)
    push2(F.Locals[rdU1(C, F.Pc + 1)]);
    F.Pc += 2;
    return StepResult::Continue;
  OPC(Iload0)
  OPC(Iload1)
  OPC(Iload2)
  OPC(Iload3)
    push(F.Locals[static_cast<int>(O) - static_cast<int>(Op::Iload0)]);
    ++F.Pc;
    return StepResult::Continue;
  OPC(Lload0)
  OPC(Lload1)
  OPC(Lload2)
  OPC(Lload3)
    push2(F.Locals[static_cast<int>(O) - static_cast<int>(Op::Lload0)]);
    ++F.Pc;
    return StepResult::Continue;
  OPC(Fload0)
  OPC(Fload1)
  OPC(Fload2)
  OPC(Fload3)
    push(F.Locals[static_cast<int>(O) - static_cast<int>(Op::Fload0)]);
    ++F.Pc;
    return StepResult::Continue;
  OPC(Dload0)
  OPC(Dload1)
  OPC(Dload2)
  OPC(Dload3)
    push2(F.Locals[static_cast<int>(O) - static_cast<int>(Op::Dload0)]);
    ++F.Pc;
    return StepResult::Continue;
  OPC(Aload0)
  OPC(Aload1)
  OPC(Aload2)
  OPC(Aload3)
    push(F.Locals[static_cast<int>(O) - static_cast<int>(Op::Aload0)]);
    ++F.Pc;
    return StepResult::Continue;

  // Array loads ----------------------------------------------------------
  OPC(Iaload)
  OPC(Laload)
  OPC(Faload)
  OPC(Daload)
  OPC(Aaload)
  OPC(Baload)
  OPC(Caload)
  OPC(Saload) {
    int32_t Index = pop().I;
    Object *Ref = pop().R;
    if (!Ref)
      return throwJvm("java/lang/NullPointerException", "array load");
    auto *A = static_cast<ArrayObject *>(Ref);
    if (Index < 0 || Index >= A->length())
      return throwJvm("java/lang/ArrayIndexOutOfBoundsException",
                      std::to_string(Index));
    Value V = A->get(Index);
    if (O == Op::Laload || O == Op::Daload)
      push2(V);
    else
      push(V);
    ++F.Pc;
    return StepResult::Continue;
  }

  // Stores ---------------------------------------------------------------
  OPC(Istore)
  OPC(Fstore)
  OPC(Astore)
    F.Locals[rdU1(C, F.Pc + 1)] = pop();
    F.Pc += 2;
    return StepResult::Continue;
  OPC(Lstore)
  OPC(Dstore)
    F.Locals[rdU1(C, F.Pc + 1)] = pop2();
    F.Pc += 2;
    return StepResult::Continue;
  OPC(Istore0)
  OPC(Istore1)
  OPC(Istore2)
  OPC(Istore3)
    F.Locals[static_cast<int>(O) - static_cast<int>(Op::Istore0)] = pop();
    ++F.Pc;
    return StepResult::Continue;
  OPC(Lstore0)
  OPC(Lstore1)
  OPC(Lstore2)
  OPC(Lstore3)
    F.Locals[static_cast<int>(O) - static_cast<int>(Op::Lstore0)] = pop2();
    ++F.Pc;
    return StepResult::Continue;
  OPC(Fstore0)
  OPC(Fstore1)
  OPC(Fstore2)
  OPC(Fstore3)
    F.Locals[static_cast<int>(O) - static_cast<int>(Op::Fstore0)] = pop();
    ++F.Pc;
    return StepResult::Continue;
  OPC(Dstore0)
  OPC(Dstore1)
  OPC(Dstore2)
  OPC(Dstore3)
    F.Locals[static_cast<int>(O) - static_cast<int>(Op::Dstore0)] = pop2();
    ++F.Pc;
    return StepResult::Continue;
  OPC(Astore0)
  OPC(Astore1)
  OPC(Astore2)
  OPC(Astore3)
    F.Locals[static_cast<int>(O) - static_cast<int>(Op::Astore0)] = pop();
    ++F.Pc;
    return StepResult::Continue;

  // Array stores ---------------------------------------------------------
  OPC(Iastore)
  OPC(Fastore)
  OPC(Aastore)
  OPC(Bastore)
  OPC(Castore)
  OPC(Sastore)
  OPC(Lastore)
  OPC(Dastore) {
    Value V = (O == Op::Lastore || O == Op::Dastore) ? pop2() : pop();
    int32_t Index = pop().I;
    Object *Ref = pop().R;
    if (!Ref)
      return throwJvm("java/lang/NullPointerException", "array store");
    auto *A = static_cast<ArrayObject *>(Ref);
    if (Index < 0 || Index >= A->length())
      return throwJvm("java/lang/ArrayIndexOutOfBoundsException",
                      std::to_string(Index));
    switch (O) {
    case Op::Bastore:
      V = Value::intVal(static_cast<int8_t>(V.I));
      break;
    case Op::Castore:
      V = Value::intVal(V.I & 0xFFFF);
      break;
    case Op::Sastore:
      V = Value::intVal(static_cast<int16_t>(V.I));
      break;
    case Op::Aastore:
      if (V.R && desc::isReference(A->elemDesc()) &&
          A->elemDesc() != "Ljava/lang/Object;") {
        Klass *ElemK = Vm.loader().lookup(desc::toClassName(A->elemDesc()));
        if (ElemK && !isInstanceOfKlass(Vm, V.R, ElemK))
          return throwJvm("java/lang/ArrayStoreException",
                          V.R->klass()->Name);
      }
      break;
    default:
      break;
    }
    A->set(Index, V);
    ++F.Pc;
    return StepResult::Continue;
  }

  // Stack manipulation ----------------------------------------------------
  OPC(Pop)
    pop();
    ++F.Pc;
    return StepResult::Continue;
  OPC(Pop2)
    pop();
    pop();
    ++F.Pc;
    return StepResult::Continue;
  OPC(Dup) {
    Value V = peek();
    push(V);
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(DupX1) {
    Value A = pop(), B = pop();
    push(A);
    push(B);
    push(A);
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(DupX2) {
    Value A = pop(), B = pop(), X = pop();
    push(A);
    push(X);
    push(B);
    push(A);
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Dup2) {
    Value A = pop(), B = pop();
    push(B);
    push(A);
    push(B);
    push(A);
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Dup2X1) {
    Value A = pop(), B = pop(), X = pop();
    push(B);
    push(A);
    push(X);
    push(B);
    push(A);
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Dup2X2) {
    Value A = pop(), B = pop(), X = pop(), Y = pop();
    push(B);
    push(A);
    push(Y);
    push(X);
    push(B);
    push(A);
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Swap) {
    Value A = pop(), B = pop();
    push(A);
    push(B);
    ++F.Pc;
    return StepResult::Continue;
  }

  // Integer arithmetic ----------------------------------------------------
  OPC(Iadd) {
    int32_t B = pop().I, A = pop().I;
    push(Value::intVal(modeAdd(A, B)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Isub) {
    int32_t B = pop().I, A = pop().I;
    push(Value::intVal(modeSub(A, B)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Imul) {
    int32_t B = pop().I, A = pop().I;
    push(Value::intVal(modeMul(A, B)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Idiv) {
    int32_t B = pop().I, A = pop().I;
    if (B == 0)
      return throwJvm("java/lang/ArithmeticException", "/ by zero");
    if (Vm.mode() == ExecutionMode::DoppioJS)
      push(Value::intVal(jsnum::divInt32(A, B)));
    else
      push(Value::intVal(A == INT32_MIN && B == -1 ? A : A / B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Irem) {
    int32_t B = pop().I, A = pop().I;
    if (B == 0)
      return throwJvm("java/lang/ArithmeticException", "/ by zero");
    if (Vm.mode() == ExecutionMode::DoppioJS)
      push(Value::intVal(jsnum::remInt32(A, B)));
    else
      push(Value::intVal(A == INT32_MIN && B == -1 ? 0 : A % B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Ineg) {
    int32_t A = pop().I;
    push(Value::intVal(Vm.mode() == ExecutionMode::DoppioJS
                           ? jsnum::negInt32(A)
                           : modeSub(0, A)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Ishl) {
    int32_t B = pop().I, A = pop().I;
    push(Value::intVal(jsnum::shlInt32(A, B)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Ishr) {
    int32_t B = pop().I, A = pop().I;
    push(Value::intVal(jsnum::shrInt32(A, B)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Iushr) {
    int32_t B = pop().I, A = pop().I;
    push(Value::intVal(jsnum::ushrInt32(A, B)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Iand) {
    int32_t B = pop().I, A = pop().I;
    push(Value::intVal(A & B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Ior) {
    int32_t B = pop().I, A = pop().I;
    push(Value::intVal(A | B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Ixor) {
    int32_t B = pop().I, A = pop().I;
    push(Value::intVal(A ^ B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Iinc) {
    uint8_t Slot = rdU1(C, F.Pc + 1);
    int8_t Delta = rdS1(C, F.Pc + 2);
    F.Locals[Slot] = Value::intVal(modeAdd(F.Locals[Slot].I, Delta));
    F.Pc += 3;
    return StepResult::Continue;
  }

  // Long arithmetic (§8's software longs in DoppioJS mode) ----------------
  OPC(Ladd)
  OPC(Lsub)
  OPC(Lmul)
  OPC(Land)
  OPC(Lor)
  OPC(Lxor) {
    Value B = pop2(), A = pop2();
    push2(modeLongBin(O, A, B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Ldiv)
  OPC(Lrem) {
    Value B = pop2(), A = pop2();
    if (B.J == 0)
      return throwJvm("java/lang/ArithmeticException", "/ by zero");
    push2(modeLongBin(O, A, B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Lneg) {
    Value A = pop2();
    if (Vm.mode() == ExecutionMode::DoppioJS)
      push2(Value::longVal(negLong(A.asLong64())));
    else
      push2(Value::longVal(
          static_cast<int64_t>(0 - static_cast<uint64_t>(A.J))));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Lshl)
  OPC(Lshr)
  OPC(Lushr) {
    int32_t Count = pop().I;
    Value A = pop2();
    if (Vm.mode() == ExecutionMode::DoppioJS) {
      ExtraOpsSinceFlush += 2; // Software shift across the 32-bit halves.
      Long64 X = A.asLong64();
      Long64 R = O == Op::Lshl    ? shlLong(X, Count)
                 : O == Op::Lshr ? shrLong(X, Count)
                                 : ushrLong(X, Count);
      push2(Value::longVal(R));
    } else {
      int64_t X = A.J;
      int32_t S = Count & 63;
      int64_t R;
      if (O == Op::Lshl)
        R = static_cast<int64_t>(static_cast<uint64_t>(X) << S);
      else if (O == Op::Lshr)
        R = X >> S;
      else
        R = static_cast<int64_t>(static_cast<uint64_t>(X) >> S);
      push2(Value::longVal(R));
    }
    ++F.Pc;
    return StepResult::Continue;
  }

  // Float/double arithmetic ------------------------------------------------
  OPC(Fadd) {
    float B = pop().F, A = pop().F;
    push(Value::floatVal(A + B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Fsub) {
    float B = pop().F, A = pop().F;
    push(Value::floatVal(A - B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Fmul) {
    float B = pop().F, A = pop().F;
    push(Value::floatVal(A * B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Fdiv) {
    float B = pop().F, A = pop().F;
    push(Value::floatVal(A / B));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Frem) {
    float B = pop().F, A = pop().F;
    push(Value::floatVal(std::fmod(A, B)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Fneg)
    push(Value::floatVal(-pop().F));
    ++F.Pc;
    return StepResult::Continue;
  OPC(Dadd) {
    Value B = pop2(), A = pop2();
    push2(Value::doubleVal(A.D + B.D));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Dsub) {
    Value B = pop2(), A = pop2();
    push2(Value::doubleVal(A.D - B.D));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Dmul) {
    Value B = pop2(), A = pop2();
    push2(Value::doubleVal(A.D * B.D));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Ddiv) {
    Value B = pop2(), A = pop2();
    push2(Value::doubleVal(A.D / B.D));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Drem) {
    Value B = pop2(), A = pop2();
    push2(Value::doubleVal(std::fmod(A.D, B.D)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Dneg) {
    Value A = pop2();
    push2(Value::doubleVal(-A.D));
    ++F.Pc;
    return StepResult::Continue;
  }

  // Conversions ------------------------------------------------------------
  OPC(I2l) {
    int32_t A = pop().I;
    push2(Value::longVal(Vm.mode() == ExecutionMode::DoppioJS
                             ? Long64::fromInt32(A)
                             : Long64::fromBits(A)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(I2f)
    push(Value::floatVal(static_cast<float>(pop().I)));
    ++F.Pc;
    return StepResult::Continue;
  OPC(I2d)
    push2(Value::doubleVal(static_cast<double>(pop().I)));
    ++F.Pc;
    return StepResult::Continue;
  OPC(L2i) {
    Value A = pop2();
    push(Value::intVal(Vm.mode() == ExecutionMode::DoppioJS
                           ? A.asLong64().toInt32()
                           : static_cast<int32_t>(A.J)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(L2f) {
    Value A = pop2();
    push(Value::floatVal(Vm.mode() == ExecutionMode::DoppioJS
                             ? A.asLong64().toFloat()
                             : static_cast<float>(A.J)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(L2d) {
    Value A = pop2();
    push2(Value::doubleVal(Vm.mode() == ExecutionMode::DoppioJS
                               ? A.asLong64().toDouble()
                               : static_cast<double>(A.J)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(F2i)
    push(Value::intVal(jsnum::doubleToInt(pop().F)));
    ++F.Pc;
    return StepResult::Continue;
  OPC(F2l) {
    float A = pop().F;
    push2(Value::longVal(Long64::fromDouble(A)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(F2d)
    push2(Value::doubleVal(static_cast<double>(pop().F)));
    ++F.Pc;
    return StepResult::Continue;
  OPC(D2i) {
    Value A = pop2();
    push(Value::intVal(jsnum::doubleToInt(A.D)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(D2l) {
    Value A = pop2();
    push2(Value::longVal(Long64::fromDouble(A.D)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(D2f) {
    Value A = pop2();
    push(Value::floatVal(static_cast<float>(A.D)));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(I2b)
    push(Value::intVal(static_cast<int8_t>(pop().I)));
    ++F.Pc;
    return StepResult::Continue;
  OPC(I2c)
    push(Value::intVal(pop().I & 0xFFFF));
    ++F.Pc;
    return StepResult::Continue;
  OPC(I2s)
    push(Value::intVal(static_cast<int16_t>(pop().I)));
    ++F.Pc;
    return StepResult::Continue;

  // Comparisons ------------------------------------------------------------
  OPC(Lcmp) {
    Value B = pop2(), A = pop2();
    int32_t R;
    if (Vm.mode() == ExecutionMode::DoppioJS) {
      ExtraOpsSinceFlush += 2; // Software comparison of the halves.
      R = cmpLong(A.asLong64(), B.asLong64());
    }
    else
      R = A.J < B.J ? -1 : (A.J > B.J ? 1 : 0);
    push(Value::intVal(R));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Fcmpl)
  OPC(Fcmpg) {
    float B = pop().F, A = pop().F;
    int32_t R;
    if (std::isnan(A) || std::isnan(B))
      R = O == Op::Fcmpg ? 1 : -1;
    else
      R = A < B ? -1 : (A > B ? 1 : 0);
    push(Value::intVal(R));
    ++F.Pc;
    return StepResult::Continue;
  }
  OPC(Dcmpl)
  OPC(Dcmpg) {
    Value VB = pop2(), VA = pop2();
    double B = VB.D, A = VA.D;
    int32_t R;
    if (std::isnan(A) || std::isnan(B))
      R = O == Op::Dcmpg ? 1 : -1;
    else
      R = A < B ? -1 : (A > B ? 1 : 0);
    push(Value::intVal(R));
    ++F.Pc;
    return StepResult::Continue;
  }

  // Branches ---------------------------------------------------------------
  OPC(Ifeq)
  OPC(Ifne)
  OPC(Iflt)
  OPC(Ifge)
  OPC(Ifgt)
  OPC(Ifle) {
    int32_t A = pop().I;
    bool Taken = false;
    switch (O) {
    case Op::Ifeq:
      Taken = A == 0;
      break;
    case Op::Ifne:
      Taken = A != 0;
      break;
    case Op::Iflt:
      Taken = A < 0;
      break;
    case Op::Ifge:
      Taken = A >= 0;
      break;
    case Op::Ifgt:
      Taken = A > 0;
      break;
    default:
      Taken = A <= 0;
      break;
    }
    uint32_t Site = F.Pc;
    F.Pc = Taken ? F.Pc + rdS2(C, F.Pc + 1) : F.Pc + 3;
    return branchDone(F, Site);
  }
  OPC(IfIcmpeq)
  OPC(IfIcmpne)
  OPC(IfIcmplt)
  OPC(IfIcmpge)
  OPC(IfIcmpgt)
  OPC(IfIcmple) {
    int32_t B = pop().I, A = pop().I;
    bool Taken = false;
    switch (O) {
    case Op::IfIcmpeq:
      Taken = A == B;
      break;
    case Op::IfIcmpne:
      Taken = A != B;
      break;
    case Op::IfIcmplt:
      Taken = A < B;
      break;
    case Op::IfIcmpge:
      Taken = A >= B;
      break;
    case Op::IfIcmpgt:
      Taken = A > B;
      break;
    default:
      Taken = A <= B;
      break;
    }
    uint32_t Site = F.Pc;
    F.Pc = Taken ? F.Pc + rdS2(C, F.Pc + 1) : F.Pc + 3;
    return branchDone(F, Site);
  }
  OPC(IfAcmpeq)
  OPC(IfAcmpne) {
    Object *B = pop().R, *A = pop().R;
    bool Taken = O == Op::IfAcmpeq ? A == B : A != B;
    uint32_t Site = F.Pc;
    F.Pc = Taken ? F.Pc + rdS2(C, F.Pc + 1) : F.Pc + 3;
    return branchDone(F, Site);
  }
  OPC(Ifnull)
  OPC(Ifnonnull) {
    Object *A = pop().R;
    bool Taken = O == Op::Ifnull ? A == nullptr : A != nullptr;
    uint32_t Site = F.Pc;
    F.Pc = Taken ? F.Pc + rdS2(C, F.Pc + 1) : F.Pc + 3;
    return branchDone(F, Site);
  }
  OPC(Goto) {
    uint32_t Site = F.Pc;
    F.Pc += rdS2(C, F.Pc + 1);
    return branchDone(F, Site);
  }
  OPC(GotoW) {
    uint32_t Site = F.Pc;
    F.Pc += rdS4(C, F.Pc + 1);
    return branchDone(F, Site);
  }
  OPC(Jsr)
    push(Value::retAddr(F.Pc + 3));
    F.Pc += rdS2(C, F.Pc + 1);
    return StepResult::Continue;
  OPC(JsrW)
    push(Value::retAddr(F.Pc + 5));
    F.Pc += rdS4(C, F.Pc + 1);
    return StepResult::Continue;
  OPC(Ret)
    F.Pc = F.Locals[rdU1(C, F.Pc + 1)].Ret;
    return StepResult::Continue;

  OPC(Tableswitch) {
    uint32_t Base = F.Pc;
    uint32_t Operands = (Base + 4) & ~3u;
    int32_t Default = rdS4(C, Operands);
    int32_t Low = rdS4(C, Operands + 4);
    int32_t High = rdS4(C, Operands + 8);
    int32_t Index = pop().I;
    if (Index < Low || Index > High) {
      F.Pc = Base + Default;
    } else {
      int32_t Offset = rdS4(C, Operands + 12 + 4 * (Index - Low));
      F.Pc = Base + Offset;
    }
    return branchDone(F, Base);
  }
  OPC(Lookupswitch) {
    uint32_t Base = F.Pc;
    uint32_t Operands = (Base + 4) & ~3u;
    int32_t Default = rdS4(C, Operands);
    int32_t NPairs = rdS4(C, Operands + 4);
    int32_t Key = pop().I;
    int32_t Offset = Default;
    for (int32_t I = 0; I != NPairs; ++I) {
      int32_t Match = rdS4(C, Operands + 8 + 8 * I);
      if (Match == Key) {
        Offset = rdS4(C, Operands + 12 + 8 * I);
        break;
      }
    }
    F.Pc = Base + Offset;
    return branchDone(F, Base);
  }

  // Returns ----------------------------------------------------------------
  OPC(Ireturn)
  OPC(Freturn)
  OPC(Areturn)
    return returnFromFrame(pop());
  OPC(Lreturn)
  OPC(Dreturn)
    return returnFromFrame(pop2());
  OPC(Return)
    return returnFromFrame(std::nullopt);

  // Fields -----------------------------------------------------------------
  OPC(Getstatic)
  OPC(Putstatic) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    ConstantPool::MemberRef Ref = F.M->Owner->Cf.Pool.memberRef(Idx);
    StepResult R;
    Klass *K = resolveClass(Ref.ClassName, R);
    if (!K)
      return R;
    if (!ensureInitialized(K, R))
      return R;
    // The field may be declared in a superclass.
    Klass *Holder = K;
    while (Holder && !Holder->Statics.count(Ref.Name))
      Holder = Holder->Super;
    if (!Holder)
      return throwJvm("java/lang/NoSuchFieldError",
                      Ref.ClassName + "." + Ref.Name);
    if (QuickEntry *Q = quicken(Idx)) {
      Q->Holder = Holder;
      Q->Name = Ref.Name;
      Q->Descriptor = Ref.Descriptor;
      // std::map nodes are stable, so the cell pointer stays valid.
      Q->StaticCell = &Holder->Statics[Ref.Name];
      Q->Wide = desc::slotSize(Ref.Descriptor) == 2;
    }
    if (O == Op::Getstatic) {
      Value V = Holder->Statics[Ref.Name];
      if (desc::slotSize(Ref.Descriptor) == 2)
        push2(V);
      else
        push(V);
    } else {
      Holder->Statics[Ref.Name] =
          desc::slotSize(Ref.Descriptor) == 2 ? pop2() : pop();
    }
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(Getfield) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    ConstantPool::MemberRef Ref = F.M->Owner->Cf.Pool.memberRef(Idx);
    Object *Obj = pop().R;
    if (!Obj)
      return throwJvm("java/lang/NullPointerException",
                      "getfield " + Ref.Name);
    Value V;
    if (Vm.mode() == ExecutionMode::DoppioJS) {
      // §6.7: dictionary keyed on the field name.
      V = Obj->getFieldByName(Ref.Name);
      if (V.K == Value::Kind::Empty)
        V = ArrayObject::defaultElement(Ref.Descriptor);
    } else {
      FieldInfo *FI = Obj->klass()->findField(Ref.Name);
      if (!FI)
        return throwJvm("java/lang/NoSuchFieldError", Ref.Name);
      V = Obj->getSlot(FI->SlotIndex);
      if (V.K == Value::Kind::Empty)
        V = ArrayObject::defaultElement(Ref.Descriptor);
    }
    if (QuickEntry *Q = quicken(Idx)) {
      Q->Name = Ref.Name;
      Q->Descriptor = Ref.Descriptor;
      Q->Wide = desc::slotSize(Ref.Descriptor) == 2;
    }
    if (desc::slotSize(Ref.Descriptor) == 2)
      push2(V);
    else
      push(V);
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(Putfield) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    ConstantPool::MemberRef Ref = F.M->Owner->Cf.Pool.memberRef(Idx);
    Value V = desc::slotSize(Ref.Descriptor) == 2 ? pop2() : pop();
    Object *Obj = pop().R;
    if (!Obj)
      return throwJvm("java/lang/NullPointerException",
                      "putfield " + Ref.Name);
    if (Vm.mode() == ExecutionMode::DoppioJS) {
      Obj->setFieldByName(Ref.Name, V);
    } else {
      FieldInfo *FI = Obj->klass()->findField(Ref.Name);
      if (!FI)
        return throwJvm("java/lang/NoSuchFieldError", Ref.Name);
      Obj->setSlot(FI->SlotIndex, V);
    }
    if (QuickEntry *Q = quicken(Idx)) {
      Q->Name = Ref.Name;
      Q->Descriptor = Ref.Descriptor;
      Q->Wide = desc::slotSize(Ref.Descriptor) == 2;
    }
    F.Pc += 3;
    return StepResult::Continue;
  }

  // Invocations (§6.1 call-boundary suspend checks live in the helpers) ---
  OPC(Invokestatic) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    ConstantPool::MemberRef Ref = F.M->Owner->Cf.Pool.memberRef(Idx);
    StepResult R;
    Klass *K = resolveClass(Ref.ClassName, R);
    if (!K)
      return R;
    if (!ensureInitialized(K, R))
      return R;
    Method *M = K->findMethod(Ref.Name, Ref.Descriptor);
    if (!M)
      return throwJvm("java/lang/NoSuchMethodError",
                      Ref.ClassName + "." + Ref.Name + Ref.Descriptor);
    if (QuickEntry *Q = quicken(Idx)) {
      Q->Holder = K;
      Q->Callee = M;
      Q->Name = Ref.Name;
      Q->Descriptor = Ref.Descriptor;
      Q->ArgSlots = M->ParamSlots;
    }
    if (M->isSynchronized()) {
      Object *Lock = Vm.mirrorOf(M->Owner);
      Monitor &Mon = Lock->monitor();
      if (Mon.OwnerTid != -1 && Mon.OwnerTid != Tid)
        return monitorEnter(Lock) == StepResult::Block
                   ? StepResult::Block
                   : StepResult::Continue;
    }
    return invokeMethod(M, /*HasReceiver=*/false, /*InsnLen=*/3);
  }
  OPC(Invokespecial)
  OPC(Invokevirtual)
  OPC(Invokeinterface) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    uint32_t InsnLen = O == Op::Invokeinterface ? 5 : 3;
    ConstantPool::MemberRef Ref = F.M->Owner->Cf.Pool.memberRef(Idx);
    StepResult R;
    Klass *K = resolveClass(Ref.ClassName, R);
    if (!K)
      return R;
    std::optional<desc::MethodDesc> D = desc::parseMethod(Ref.Descriptor);
    int ArgSlots = desc::paramSlots(*D);
    Value Receiver = peek(ArgSlots);
    if (!Receiver.R)
      return throwJvm("java/lang/NullPointerException",
                      "invoke " + Ref.Name);
    Method *M = nullptr;
    if (O == Op::Invokespecial) {
      M = K->findMethod(Ref.Name, Ref.Descriptor);
    } else {
      // Virtual dispatch from the receiver's class (§6.7's class ref).
      M = Receiver.R->klass()->findVirtual(Ref.Name, Ref.Descriptor);
      if (!M)
        M = K->findMethod(Ref.Name, Ref.Descriptor);
    }
    if (!M)
      return throwJvm("java/lang/NoSuchMethodError",
                      Ref.ClassName + "." + Ref.Name + Ref.Descriptor);
    if (M->isAbstract())
      return throwJvm("java/lang/AbstractMethodError", M->qualifiedName());
    if (QuickEntry *Q = quicken(Idx)) {
      Q->Holder = K;
      Q->Name = Ref.Name;
      Q->Descriptor = Ref.Descriptor;
      Q->ArgSlots = ArgSlots;
      if (O == Op::Invokespecial)
        Q->Callee = M; // Statically bound; virtual sites re-dispatch.
    }
    if (M->isSynchronized()) {
      Monitor &Mon = Receiver.R->monitor();
      if (Mon.OwnerTid != -1 && Mon.OwnerTid != Tid)
        return monitorEnter(Receiver.R) == StepResult::Block
                   ? StepResult::Block
                   : StepResult::Continue;
    }
    return invokeMethod(M, /*HasReceiver=*/true, InsnLen);
  }

  // Allocation -------------------------------------------------------------
  OPC(New) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    const std::string &Name = F.M->Owner->Cf.Pool.className(Idx);
    StepResult R;
    Klass *K = resolveClass(Name, R);
    if (!K)
      return R;
    if (!ensureInitialized(K, R))
      return R;
    if (K->isInterface() || (K->AccessFlags & AccAbstract))
      return throwJvm("java/lang/InstantiationError", Name);
    if (QuickEntry *Q = quicken(Idx)) {
      Q->Holder = K;
      Q->Name = Name;
    }
    push(Value::ref(Vm.allocObject(K)));
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(Newarray) {
    int32_t Len = pop().I;
    if (Len < 0)
      return throwJvm("java/lang/NegativeArraySizeException",
                      std::to_string(Len));
    static const char *Descs[] = {"Z", "C", "F", "D", "B", "S", "I", "J"};
    uint8_t AType = rdU1(C, F.Pc + 1);
    assert(AType >= 4 && AType <= 11 && "bad newarray type");
    push(Value::ref(Vm.allocArrayOf(Descs[AType - 4], Len)));
    F.Pc += 2;
    return StepResult::Continue;
  }
  OPC(Anewarray) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    const std::string &ElemName = F.M->Owner->Cf.Pool.className(Idx);
    StepResult R;
    Klass *Elem = resolveClass(ElemName, R);
    if (!Elem)
      return R;
    int32_t Len = pop().I;
    if (Len < 0)
      return throwJvm("java/lang/NegativeArraySizeException",
                      std::to_string(Len));
    std::string ElemDesc = desc::toFieldDesc(ElemName);
    push(Value::ref(Vm.allocArrayOf(ElemDesc, Len)));
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(Multianewarray) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    uint8_t Dims = rdU1(C, F.Pc + 3);
    std::string ArrayDesc = F.M->Owner->Cf.Pool.className(Idx);
    StepResult R;
    if (!resolveClass(ArrayDesc, R))
      return R;
    std::vector<int32_t> Counts(Dims);
    for (int I = Dims - 1; I >= 0; --I)
      Counts[I] = pop().I;
    for (int32_t N : Counts)
      if (N < 0)
        return throwJvm("java/lang/NegativeArraySizeException",
                        std::to_string(N));
    // Recursive allocation of the nested arrays.
    std::function<Object *(const std::string &, size_t)> Build =
        [&](const std::string &Desc, size_t Dim) -> Object * {
      std::string Elem = Desc.substr(1);
      ArrayObject *A = Vm.allocArrayOf(Elem, Counts[Dim]);
      if (Dim + 1 < Counts.size() && !Elem.empty() && Elem[0] == '[')
        for (int32_t I = 0; I != Counts[Dim]; ++I)
          A->set(I, Value::ref(Build(Elem, Dim + 1)));
      return A;
    };
    push(Value::ref(Build(ArrayDesc, 0)));
    F.Pc += 4;
    return StepResult::Continue;
  }
  OPC(Arraylength) {
    Object *Ref = pop().R;
    if (!Ref)
      return throwJvm("java/lang/NullPointerException", "arraylength");
    push(Value::intVal(static_cast<ArrayObject *>(Ref)->length()));
    ++F.Pc;
    return StepResult::Continue;
  }

  // Casts ------------------------------------------------------------------
  OPC(Checkcast) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    const std::string &Name = F.M->Owner->Cf.Pool.className(Idx);
    StepResult R;
    Klass *K = resolveClass(Name, R);
    if (!K)
      return R;
    if (QuickEntry *Q = quicken(Idx)) {
      Q->Holder = K;
      Q->Name = Name;
    }
    Object *Obj = peek().R;
    if (Obj && !isInstanceOfKlass(Vm, Obj, K))
      return throwJvm("java/lang/ClassCastException",
                      Obj->klass()->Name + " cannot be cast to " + Name);
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(Instanceof) {
    uint16_t Idx = rdU2(C, F.Pc + 1);
    const std::string &Name = F.M->Owner->Cf.Pool.className(Idx);
    StepResult R;
    Klass *K = resolveClass(Name, R);
    if (!K)
      return R;
    if (QuickEntry *Q = quicken(Idx)) {
      Q->Holder = K;
      Q->Name = Name;
    }
    Object *Obj = pop().R;
    push(Value::intVal(isInstanceOfKlass(Vm, Obj, K) ? 1 : 0));
    F.Pc += 3;
    return StepResult::Continue;
  }

  // Exceptions and monitors --------------------------------------------------
  OPC(Athrow) {
    Object *Ex = pop().R;
    if (!Ex)
      return throwJvm("java/lang/NullPointerException", "athrow");
    return dispatchException(Ex);
  }
  OPC(Monitorenter) {
    Object *Obj = peek().R;
    if (!Obj)
      return throwJvm("java/lang/NullPointerException", "monitorenter");
    StepResult R = monitorEnter(Obj);
    if (R == StepResult::Block)
      return R; // pc unchanged; retried when the owner releases.
    pop();
    ++F.Pc;
    // §6.2: monitor checks are DoppioJVM's context-switch points.
    ++Vm.stats().ContextSwitchPoints;
    if (wantsSuspend())
      return StepResult::Yield;
    return StepResult::Continue;
  }
  OPC(Monitorexit) {
    Object *Obj = pop().R;
    if (!Obj)
      return throwJvm("java/lang/NullPointerException", "monitorexit");
    // An unowned monitor throws. Return the dispatch outcome directly:
    // when a handler in this frame catches, dispatch already repointed
    // pc at it, and the ++F.Pc below would skip its first instruction.
    if (Obj->monitor().OwnerTid != Tid)
      return monitorExit(Obj);
    StepResult R = monitorExit(Obj);
    if (R != StepResult::Continue)
      return R;
    ++F.Pc;
    ++Vm.stats().ContextSwitchPoints;
    if (wantsSuspend())
      return StepResult::Yield;
    return StepResult::Continue;
  }

  OPC(Wide)
    return stepWide(F);

  // Quickened forms (DESIGN.md §18) --------------------------------------
  // Each handler replays its base instruction from the resolution the
  // slow path stashed in the owning class's quick-entry table: no
  // constant-pool parsing, no class resolution, no initialization checks
  // (the class initialized before the site could quicken). Observable
  // behavior is bit-identical to the base form.
  OPC(LdcQuick)
  OPC(LdcWQuick) {
    uint16_t Idx =
        O == Op::LdcQuick ? rdU1(C, F.Pc + 1) : rdU2(C, F.Pc + 1);
    push(F.M->Owner->quickEntry(Idx).Constant);
    F.Pc += O == Op::LdcQuick ? 2 : 3;
    return StepResult::Continue;
  }
  OPC(GetstaticQuick) {
    QuickEntry &Q = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1));
    if (Q.Wide)
      push2(*Q.StaticCell);
    else
      push(*Q.StaticCell);
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(PutstaticQuick) {
    QuickEntry &Q = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1));
    *Q.StaticCell = Q.Wide ? pop2() : pop();
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(GetfieldQuick) {
    QuickEntry &Q = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1));
    Object *Obj = pop().R;
    if (!Obj)
      return throwJvm("java/lang/NullPointerException",
                      "getfield " + Q.Name);
    Value V;
    if (Vm.mode() == ExecutionMode::DoppioJS) {
      // Monomorphic inline cache over the §6.7 field dictionary: on a
      // receiver-class match, read straight through the cached Dict-node
      // pointer instead of hashing the field name.
      Value *Cell = nullptr;
      if (Vm.profile().InlineCaches && Obj->klass() == Q.IcKlass)
        Cell = Obj->fastCell(Q.IcFieldId);
      if (Cell) {
        Vm.noteIcHit();
        V = *Cell;
      } else {
        if (Vm.profile().InlineCaches) {
          Vm.noteIcMiss();
          Q.IcKlass = Obj->klass();
          Q.IcFieldId = Q.IcKlass->fastFieldId(Q.Name);
          // A read miss must not insert into the dictionary (default
          // values stay virtual), so a cell installs only if the field
          // has been written; until then every read re-misses.
          if (Value *Node = Obj->dictNode(Q.Name))
            Obj->setFastCell(Q.IcFieldId, Node);
        }
        V = Obj->getFieldByName(Q.Name);
        if (V.K == Value::Kind::Empty)
          V = ArrayObject::defaultElement(Q.Descriptor);
      }
    } else {
      // NativeHotspot mode: cache the FieldInfo per receiver class (a
      // subclass may shadow the field, so the klass check stays).
      if (Obj->klass() != Q.IcKlass || !Q.Field) {
        Q.Field = Obj->klass()->findField(Q.Name);
        if (!Q.Field)
          return throwJvm("java/lang/NoSuchFieldError", Q.Name);
        Q.IcKlass = Obj->klass();
      }
      V = Obj->getSlot(Q.Field->SlotIndex);
      if (V.K == Value::Kind::Empty)
        V = ArrayObject::defaultElement(Q.Descriptor);
    }
    if (Q.Wide)
      push2(V);
    else
      push(V);
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(PutfieldQuick) {
    QuickEntry &Q = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1));
    Value V = Q.Wide ? pop2() : pop();
    Object *Obj = pop().R;
    if (!Obj)
      return throwJvm("java/lang/NullPointerException",
                      "putfield " + Q.Name);
    if (Vm.mode() == ExecutionMode::DoppioJS) {
      Value *Cell = nullptr;
      if (Vm.profile().InlineCaches && Obj->klass() == Q.IcKlass)
        Cell = Obj->fastCell(Q.IcFieldId);
      if (Cell) {
        Vm.noteIcHit();
        *Cell = V;
      } else {
        Obj->setFieldByName(Q.Name, V);
        if (Vm.profile().InlineCaches) {
          Vm.noteIcMiss();
          Q.IcKlass = Obj->klass();
          Q.IcFieldId = Q.IcKlass->fastFieldId(Q.Name);
          Obj->setFastCell(Q.IcFieldId, Obj->dictNode(Q.Name));
        }
      }
    } else {
      if (Obj->klass() != Q.IcKlass || !Q.Field) {
        Q.Field = Obj->klass()->findField(Q.Name);
        if (!Q.Field)
          return throwJvm("java/lang/NoSuchFieldError", Q.Name);
        Q.IcKlass = Obj->klass();
      }
      Obj->setSlot(Q.Field->SlotIndex, V);
    }
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(InvokestaticQuick) {
    Method *M = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1)).Callee;
    if (M->isSynchronized()) {
      Object *Lock = Vm.mirrorOf(M->Owner);
      Monitor &Mon = Lock->monitor();
      if (Mon.OwnerTid != -1 && Mon.OwnerTid != Tid)
        return monitorEnter(Lock) == StepResult::Block
                   ? StepResult::Block
                   : StepResult::Continue;
    }
    return invokeMethod(M, /*HasReceiver=*/false, /*InsnLen=*/3);
  }
  OPC(InvokespecialQuick) {
    QuickEntry &Q = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1));
    Method *M = Q.Callee;
    Value Receiver = peek(Q.ArgSlots);
    if (!Receiver.R)
      return throwJvm("java/lang/NullPointerException",
                      "invoke " + Q.Name);
    if (M->isSynchronized()) {
      Monitor &Mon = Receiver.R->monitor();
      if (Mon.OwnerTid != -1 && Mon.OwnerTid != Tid)
        return monitorEnter(Receiver.R) == StepResult::Block
                   ? StepResult::Block
                   : StepResult::Continue;
    }
    return invokeMethod(M, /*HasReceiver=*/true, /*InsnLen=*/3);
  }
  OPC(InvokevirtualQuick)
  OPC(InvokeinterfaceQuick) {
    QuickEntry &Q = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1));
    uint32_t InsnLen = O == Op::InvokeinterfaceQuick ? 5 : 3;
    Value Receiver = peek(Q.ArgSlots);
    if (!Receiver.R)
      return throwJvm("java/lang/NullPointerException",
                      "invoke " + Q.Name);
    Klass *RK = Receiver.R->klass();
    Method *M;
    if (Vm.profile().InlineCaches && RK == Q.IcKlass) {
      // Monomorphic inline cache: same receiver class as last time, so
      // the devirtualized callee is already known.
      Vm.noteIcHit();
      M = Q.IcCallee;
    } else {
      M = RK->findVirtual(Q.Name, Q.Descriptor);
      if (!M)
        M = Q.Holder->findMethod(Q.Name, Q.Descriptor);
      if (!M)
        return throwJvm("java/lang/NoSuchMethodError",
                        Q.Holder->Name + "." + Q.Name + Q.Descriptor);
      if (M->isAbstract())
        return throwJvm("java/lang/AbstractMethodError",
                        M->qualifiedName());
      if (Vm.profile().InlineCaches) {
        Vm.noteIcMiss();
        Q.IcKlass = RK;
        Q.IcCallee = M;
      }
    }
    if (M->isSynchronized()) {
      Monitor &Mon = Receiver.R->monitor();
      if (Mon.OwnerTid != -1 && Mon.OwnerTid != Tid)
        return monitorEnter(Receiver.R) == StepResult::Block
                   ? StepResult::Block
                   : StepResult::Continue;
    }
    return invokeMethod(M, /*HasReceiver=*/true, InsnLen);
  }
  OPC(NewQuick) {
    QuickEntry &Q = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1));
    push(Value::ref(Vm.allocObject(Q.Holder)));
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(CheckcastQuick) {
    QuickEntry &Q = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1));
    Object *Obj = peek().R;
    if (Obj && !isInstanceOfKlass(Vm, Obj, Q.Holder))
      return throwJvm("java/lang/ClassCastException",
                      Obj->klass()->Name + " cannot be cast to " + Q.Name);
    F.Pc += 3;
    return StepResult::Continue;
  }
  OPC(InstanceofQuick) {
    QuickEntry &Q = F.M->Owner->quickEntry(rdU2(C, F.Pc + 1));
    Object *Obj = pop().R;
    push(Value::intVal(isInstanceOfKlass(Vm, Obj, Q.Holder) ? 1 : 0));
    F.Pc += 3;
    return StepResult::Continue;
  }

  OPC_ILLEGAL
    return throwJvm("java/lang/ClassFormatError",
                    "illegal opcode " + std::to_string(C[F.Pc]));
#ifndef DOPPIO_COMPUTED_GOTO
  }
#endif
}

#undef OPC
#undef OPC_ILLEGAL

JvmThread::StepResult JvmThread::stepWide(Frame &F) {
  const std::vector<uint8_t> &C = F.M->Code.Bytecode;
  Op Inner = static_cast<Op>(C[F.Pc + 1]);
  uint16_t Slot = rdU2(C, F.Pc + 2);
  switch (Inner) {
  case Op::Iload:
  case Op::Fload:
  case Op::Aload:
    push(F.Locals[Slot]);
    F.Pc += 4;
    return StepResult::Continue;
  case Op::Lload:
  case Op::Dload:
    push2(F.Locals[Slot]);
    F.Pc += 4;
    return StepResult::Continue;
  case Op::Istore:
  case Op::Fstore:
  case Op::Astore:
    F.Locals[Slot] = pop();
    F.Pc += 4;
    return StepResult::Continue;
  case Op::Lstore:
  case Op::Dstore:
    F.Locals[Slot] = pop2();
    F.Pc += 4;
    return StepResult::Continue;
  case Op::Ret:
    F.Pc = F.Locals[Slot].Ret;
    return StepResult::Continue;
  case Op::Iinc: {
    int16_t Delta = rdS2(C, F.Pc + 4);
    F.Locals[Slot] = Value::intVal(modeAdd(F.Locals[Slot].I, Delta));
    F.Pc += 6;
    return StepResult::Continue;
  }
  default:
    return throwJvm("java/lang/ClassFormatError", "bad wide instruction");
  }
}
