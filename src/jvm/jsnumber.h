//===- jvm/jsnumber.h - JS double-based int32 semantics -----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In JavaScript every number is an IEEE double; JVM int arithmetic must be
/// emulated with double arithmetic plus the ToInt32 wrap (the `|0` idiom).
/// The DoppioJS execution mode routes all int bytecodes through these
/// helpers, mirroring what the JavaScript interpreter performs; the
/// NativeHotspot mode uses hardware int32 directly.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_JSNUMBER_H
#define DOPPIO_JVM_JSNUMBER_H

#include <cmath>
#include <cstdint>

namespace doppio {
namespace jvm {
namespace jsnum {

/// ECMAScript ToInt32 of a double.
inline int32_t toInt32(double V) {
  if (std::isnan(V) || std::isinf(V))
    return 0;
  double Truncated = std::trunc(V);
  // Modulo 2^32 into the signed range.
  double Wrapped = std::fmod(Truncated, 4294967296.0);
  if (Wrapped < 0)
    Wrapped += 4294967296.0;
  uint32_t U = static_cast<uint32_t>(Wrapped);
  return static_cast<int32_t>(U);
}

/// i + j, as `(i + j) | 0`.
inline int32_t addInt32(int32_t A, int32_t B) {
  return toInt32(static_cast<double>(A) + static_cast<double>(B));
}

inline int32_t subInt32(int32_t A, int32_t B) {
  return toInt32(static_cast<double>(A) - static_cast<double>(B));
}

/// i * j. A plain double product loses low bits beyond 2^53, so JS code
/// multiplies 16-bit halves separately (the Math.imul polyfill).
inline int32_t mulInt32(int32_t A, int32_t B) {
  uint32_t UA = static_cast<uint32_t>(A), UB = static_cast<uint32_t>(B);
  double AHi = static_cast<double>(UA >> 16);
  double ALo = static_cast<double>(UA & 0xFFFF);
  double BHi = static_cast<double>(UB >> 16);
  double BLo = static_cast<double>(UB & 0xFFFF);
  // (AHi*BLo + ALo*BHi) << 16 + ALo*BLo, all mod 2^32.
  double Cross = AHi * BLo + ALo * BHi;
  double CrossShifted = std::fmod(Cross, 65536.0) * 65536.0;
  return toInt32(CrossShifted + ALo * BLo);
}

/// i / j with JVM truncation. The caller guards against division by zero.
inline int32_t divInt32(int32_t A, int32_t B) {
  return toInt32(std::trunc(static_cast<double>(A) /
                            static_cast<double>(B)));
}

/// i % j with JVM (truncated) semantics, matching JS's % operator.
inline int32_t remInt32(int32_t A, int32_t B) {
  return toInt32(std::fmod(static_cast<double>(A),
                           static_cast<double>(B)));
}

inline int32_t negInt32(int32_t A) {
  return toInt32(-static_cast<double>(A));
}

// Bit operations exist natively in JS (they implicitly ToInt32).
inline int32_t shlInt32(int32_t A, int32_t Count) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) << (Count & 31));
}
inline int32_t shrInt32(int32_t A, int32_t Count) { return A >> (Count & 31); }
inline int32_t ushrInt32(int32_t A, int32_t Count) {
  return static_cast<int32_t>(static_cast<uint32_t>(A) >> (Count & 31));
}

/// (int) of a double/float, with the JVM's NaN->0 and clamping rules —
/// which JS must implement explicitly since ToInt32 wraps instead.
inline int32_t doubleToInt(double V) {
  if (std::isnan(V))
    return 0;
  if (V >= 2147483647.0)
    return 2147483647;
  if (V <= -2147483648.0)
    return -2147483648;
  return static_cast<int32_t>(std::trunc(V));
}

} // namespace jsnum
} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_JSNUMBER_H
