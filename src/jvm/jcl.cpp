//===- jvm/jcl.cpp - The built-in Java class library (§6.3) ---------------==//
//
// The minimal class library DoppioJVM programs run against. The paper uses
// the OpenJDK class library, whose class files cannot be redistributed
// here; this synthesized library (assembled with ClassBuilder, natives
// implemented against the Doppio services exactly as §6.3 prescribes)
// preserves the architecture: file I/O natives call the Doppio file system
// through the §4.2 blocking bridge, sun.misc.Unsafe uses the Doppio heap
// (§6.5), sockets use Doppio sockets (§5.3), threads map to the Doppio
// thread pool (§6.2), and doppio/JS.eval is the §6.8 interop hook.
//
//===----------------------------------------------------------------------===//

#include "jvm/interpreter.h"
#include "jvm/jvm.h"

#include "doppio/sockets.h"

#include <cmath>
#include <memory>

using namespace doppio;
using namespace doppio::jvm;
using rt::ApiError;
using rt::Errno;
using rt::ErrorOr;

namespace {

//===----------------------------------------------------------------------===//
// Field access helpers (mode-aware)
//===----------------------------------------------------------------------===//

Value getField(Jvm &Vm, Object *O, const std::string &Name) {
  if (Vm.mode() == ExecutionMode::DoppioJS)
    return O->getFieldByName(Name);
  FieldInfo *FI = O->klass()->findField(Name);
  return FI ? O->getSlot(FI->SlotIndex) : Value();
}

void setField(Jvm &Vm, Object *O, const std::string &Name, Value V) {
  if (Vm.mode() == ExecutionMode::DoppioJS) {
    O->setFieldByName(Name, V);
    return;
  }
  FieldInfo *FI = O->klass()->findField(Name);
  if (FI)
    O->setSlot(FI->SlotIndex, V);
}

/// Long argument as a host int64 (both modes store the same bit pattern).
int64_t longArg(const Value &V) { return V.J; }

std::string strArg(Jvm &Vm, const Value &V) {
  return Vm.stringValue(V.R);
}

/// Builds a [B array object from raw bytes.
ArrayObject *bytesToArray(Jvm &Vm, const std::vector<uint8_t> &Bytes) {
  ArrayObject *A =
      Vm.allocArrayOf("B", static_cast<int32_t>(Bytes.size()));
  for (size_t I = 0; I != Bytes.size(); ++I)
    A->set(static_cast<int32_t>(I),
           Value::intVal(static_cast<int8_t>(Bytes[I])));
  return A;
}

std::vector<uint8_t> arrayToBytes(ArrayObject *A) {
  std::vector<uint8_t> Out(A->length());
  for (int32_t I = 0; I != A->length(); ++I)
    Out[I] = static_cast<uint8_t>(A->get(I).I);
  return Out;
}

//===----------------------------------------------------------------------===//
// Class definitions
//===----------------------------------------------------------------------===//

void defineObjectAndCore(Jvm &Vm) {
  {
    ClassBuilder B("java/lang/Object", "");
    B.method(AccPublic, "<init>", "()V").op(Op::Return);
    B.nativeMethod(AccPublic, "hashCode", "()I");
    B.nativeMethod(AccPublic, "equals", "(Ljava/lang/Object;)Z");
    B.nativeMethod(AccPublic, "getClass", "()Ljava/lang/Class;");
    B.nativeMethod(AccPublic, "toString", "()Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccFinal, "wait", "()V");
    B.nativeMethod(AccPublic | AccFinal, "wait", "(J)V");
    B.nativeMethod(AccPublic | AccFinal, "notify", "()V");
    B.nativeMethod(AccPublic | AccFinal, "notifyAll", "()V");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    ClassBuilder B("java/lang/Class");
    B.addDefaultConstructor();
    B.nativeMethod(AccPublic, "getName", "()Ljava/lang/String;");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    ClassBuilder B("java/lang/String");
    B.addField(AccPrivate | AccFinal, "value", "[C");
    B.addDefaultConstructor();
    B.nativeMethod(AccPublic, "length", "()I");
    B.nativeMethod(AccPublic, "charAt", "(I)C");
    B.nativeMethod(AccPublic, "equals", "(Ljava/lang/Object;)Z");
    B.nativeMethod(AccPublic, "hashCode", "()I");
    B.nativeMethod(AccPublic, "toString", "()Ljava/lang/String;");
    B.nativeMethod(AccPublic, "concat",
                   "(Ljava/lang/String;)Ljava/lang/String;");
    B.nativeMethod(AccPublic, "substring", "(II)Ljava/lang/String;");
    B.nativeMethod(AccPublic, "substring", "(I)Ljava/lang/String;");
    B.nativeMethod(AccPublic, "indexOf", "(I)I");
    B.nativeMethod(AccPublic, "indexOf", "(Ljava/lang/String;)I");
    B.nativeMethod(AccPublic, "startsWith", "(Ljava/lang/String;)Z");
    B.nativeMethod(AccPublic, "endsWith", "(Ljava/lang/String;)Z");
    B.nativeMethod(AccPublic, "compareTo", "(Ljava/lang/String;)I");
    B.nativeMethod(AccPublic, "toCharArray", "()[C");
    B.nativeMethod(AccPublic, "intern", "()Ljava/lang/String;");
    B.nativeMethod(AccPublic, "trim", "()Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "valueOf",
                   "(I)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "valueOf",
                   "(J)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "valueOf",
                   "(D)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "valueOf",
                   "(C)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "valueOf",
                   "(Z)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "valueOf",
                   "([C)Ljava/lang/String;");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    ClassBuilder B("java/lang/StringBuilder");
    B.addField(AccPrivate, "str", "Ljava/lang/String;");
    MethodBuilder &Init = B.method(AccPublic, "<init>", "()V");
    Init.aload(0)
        .invokespecial("java/lang/Object", "<init>", "()V")
        .aload(0)
        .ldcString("")
        .putfield("java/lang/StringBuilder", "str", "Ljava/lang/String;")
        .op(Op::Return);
    const char *SB = "Ljava/lang/StringBuilder;";
    B.nativeMethod(AccPublic, "append",
                   ("(Ljava/lang/String;)" + std::string(SB)).c_str());
    B.nativeMethod(AccPublic, "append",
                   ("(Ljava/lang/Object;)" + std::string(SB)).c_str());
    B.nativeMethod(AccPublic, "append", ("(I)" + std::string(SB)).c_str());
    B.nativeMethod(AccPublic, "append", ("(J)" + std::string(SB)).c_str());
    B.nativeMethod(AccPublic, "append", ("(C)" + std::string(SB)).c_str());
    B.nativeMethod(AccPublic, "append", ("(D)" + std::string(SB)).c_str());
    B.nativeMethod(AccPublic, "append", ("(Z)" + std::string(SB)).c_str());
    B.nativeMethod(AccPublic, "toString", "()Ljava/lang/String;");
    B.nativeMethod(AccPublic, "length", "()I");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    ClassBuilder B("java/lang/Runnable");
    B.setAccess(AccPublic | AccInterface | AccAbstract);
    B.abstractMethod(AccPublic, "run", "()V");
    Vm.loader().defineBuiltin(B.build());
  }
}

void defineThrowables(Jvm &Vm) {
  {
    ClassBuilder B("java/lang/Throwable");
    B.addField(AccPrivate, "detailMessage", "Ljava/lang/String;");
    B.addDefaultConstructor();
    MethodBuilder &Init =
        B.method(AccPublic, "<init>", "(Ljava/lang/String;)V");
    Init.aload(0)
        .invokespecial("java/lang/Object", "<init>", "()V")
        .aload(0)
        .aload(1)
        .putfield("java/lang/Throwable", "detailMessage",
                  "Ljava/lang/String;")
        .op(Op::Return);
    MethodBuilder &GetMsg =
        B.method(AccPublic, "getMessage", "()Ljava/lang/String;");
    GetMsg.aload(0)
        .getfield("java/lang/Throwable", "detailMessage",
                  "Ljava/lang/String;")
        .op(Op::Areturn);
    Vm.loader().defineBuiltin(B.build());
  }
  auto DefEx = [&Vm](const char *Name, const char *Super) {
    ClassBuilder B(Name, Super);
    B.addDefaultConstructor();
    MethodBuilder &Init =
        B.method(AccPublic, "<init>", "(Ljava/lang/String;)V");
    Init.aload(0)
        .aload(1)
        .invokespecial(Super, "<init>", "(Ljava/lang/String;)V")
        .op(Op::Return);
    Vm.loader().defineBuiltin(B.build());
  };
  DefEx("java/lang/Error", "java/lang/Throwable");
  DefEx("java/lang/Exception", "java/lang/Throwable");
  DefEx("java/lang/RuntimeException", "java/lang/Exception");
  DefEx("java/lang/ArithmeticException", "java/lang/RuntimeException");
  DefEx("java/lang/NullPointerException", "java/lang/RuntimeException");
  DefEx("java/lang/IndexOutOfBoundsException",
        "java/lang/RuntimeException");
  DefEx("java/lang/ArrayIndexOutOfBoundsException",
        "java/lang/IndexOutOfBoundsException");
  DefEx("java/lang/StringIndexOutOfBoundsException",
        "java/lang/IndexOutOfBoundsException");
  DefEx("java/lang/NegativeArraySizeException",
        "java/lang/RuntimeException");
  DefEx("java/lang/ClassCastException", "java/lang/RuntimeException");
  DefEx("java/lang/ArrayStoreException", "java/lang/RuntimeException");
  DefEx("java/lang/IllegalMonitorStateException",
        "java/lang/RuntimeException");
  DefEx("java/lang/IllegalArgumentException",
        "java/lang/RuntimeException");
  DefEx("java/lang/NumberFormatException",
        "java/lang/IllegalArgumentException");
  DefEx("java/lang/IllegalStateException", "java/lang/RuntimeException");
  DefEx("java/lang/IllegalThreadStateException",
        "java/lang/IllegalStateException");
  DefEx("java/lang/UnsupportedOperationException",
        "java/lang/RuntimeException");
  DefEx("java/lang/InterruptedException", "java/lang/Exception");
  DefEx("java/lang/ClassNotFoundException", "java/lang/Exception");
  DefEx("java/lang/LinkageError", "java/lang/Error");
  DefEx("java/lang/NoClassDefFoundError", "java/lang/LinkageError");
  DefEx("java/lang/NoSuchMethodError", "java/lang/LinkageError");
  DefEx("java/lang/NoSuchFieldError", "java/lang/LinkageError");
  DefEx("java/lang/AbstractMethodError", "java/lang/LinkageError");
  DefEx("java/lang/UnsatisfiedLinkError", "java/lang/LinkageError");
  DefEx("java/lang/InstantiationError", "java/lang/LinkageError");
  DefEx("java/lang/ClassFormatError", "java/lang/LinkageError");
  DefEx("java/lang/VerifyError", "java/lang/LinkageError");
  DefEx("java/lang/StackOverflowError", "java/lang/Error");
  DefEx("java/lang/OutOfMemoryError", "java/lang/Error");
  DefEx("java/io/IOException", "java/lang/Exception");
  DefEx("java/io/FileNotFoundException", "java/io/IOException");
}

void defineSystemIo(Jvm &Vm) {
  {
    ClassBuilder B("java/io/PrintStream");
    B.addField(AccPrivate, "isErr", "I");
    B.addDefaultConstructor();
    B.nativeMethod(AccPublic, "println", "(Ljava/lang/String;)V");
    B.nativeMethod(AccPublic, "println", "(I)V");
    B.nativeMethod(AccPublic, "println", "(J)V");
    B.nativeMethod(AccPublic, "println", "(D)V");
    B.nativeMethod(AccPublic, "println", "(C)V");
    B.nativeMethod(AccPublic, "println", "(Z)V");
    B.nativeMethod(AccPublic, "println", "(Ljava/lang/Object;)V");
    B.nativeMethod(AccPublic, "println", "()V");
    B.nativeMethod(AccPublic, "print", "(Ljava/lang/String;)V");
    B.nativeMethod(AccPublic, "print", "(I)V");
    B.nativeMethod(AccPublic, "print", "(C)V");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    ClassBuilder B("java/lang/System");
    B.addField(AccPublic | AccStatic | AccFinal, "out",
               "Ljava/io/PrintStream;");
    B.addField(AccPublic | AccStatic | AccFinal, "err",
               "Ljava/io/PrintStream;");
    B.nativeMethod(AccPublic | AccStatic, "currentTimeMillis", "()J");
    B.nativeMethod(AccPublic | AccStatic, "nanoTime", "()J");
    B.nativeMethod(
        AccPublic | AccStatic, "arraycopy",
        "(Ljava/lang/Object;ILjava/lang/Object;II)V");
    B.nativeMethod(AccPublic | AccStatic, "exit", "(I)V");
    B.nativeMethod(AccPublic | AccStatic, "identityHashCode",
                   "(Ljava/lang/Object;)I");
    Klass *K = Vm.loader().defineBuiltin(B.build());
    // Wire up stdout/stderr immediately (no <clinit> needed).
    Klass *Ps = Vm.loader().lookup("java/io/PrintStream");
    Object *Out = Vm.allocObject(Ps);
    Object *Err = Vm.allocObject(Ps);
    setField(Vm, Err, "isErr", Value::intVal(1));
    setField(Vm, Out, "isErr", Value::intVal(0));
    K->Statics["out"] = Value::ref(Out);
    K->Statics["err"] = Value::ref(Err);
    K->Init = Klass::InitState::Initialized;
  }
  {
    // The Doppio file API (stands in for java.io streams; DESIGN.md).
    // Every native blocks through the §4.2 bridge onto the Doppio fs.
    ClassBuilder B("doppio/io/Files");
    B.nativeMethod(AccPublic | AccStatic, "readAllBytes",
                   "(Ljava/lang/String;)[B");
    B.nativeMethod(AccPublic | AccStatic, "readString",
                   "(Ljava/lang/String;)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "write",
                   "(Ljava/lang/String;[B)V");
    B.nativeMethod(AccPublic | AccStatic, "writeString",
                   "(Ljava/lang/String;Ljava/lang/String;)V");
    B.nativeMethod(AccPublic | AccStatic, "exists",
                   "(Ljava/lang/String;)Z");
    B.nativeMethod(AccPublic | AccStatic, "list",
                   "(Ljava/lang/String;)[Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "delete",
                   "(Ljava/lang/String;)V");
    B.nativeMethod(AccPublic | AccStatic, "mkdirs",
                   "(Ljava/lang/String;)V");
    B.nativeMethod(AccPublic | AccStatic, "size", "(Ljava/lang/String;)I");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    // Synchronous console input over asynchronous keyboard events: the
    // paper's §3.2 motivating example, made possible by §4.2.
    ClassBuilder B("doppio/Stdin");
    B.nativeMethod(AccPublic | AccStatic, "readLine",
                   "()Ljava/lang/String;");
    Vm.loader().defineBuiltin(B.build());
  }
}

void defineNumericsAndMath(Jvm &Vm) {
  {
    ClassBuilder B("java/lang/Math");
    B.nativeMethod(AccPublic | AccStatic, "sqrt", "(D)D");
    B.nativeMethod(AccPublic | AccStatic, "pow", "(DD)D");
    B.nativeMethod(AccPublic | AccStatic, "floor", "(D)D");
    B.nativeMethod(AccPublic | AccStatic, "ceil", "(D)D");
    B.nativeMethod(AccPublic | AccStatic, "abs", "(I)I");
    B.nativeMethod(AccPublic | AccStatic, "abs", "(J)J");
    B.nativeMethod(AccPublic | AccStatic, "abs", "(D)D");
    B.nativeMethod(AccPublic | AccStatic, "max", "(II)I");
    B.nativeMethod(AccPublic | AccStatic, "min", "(II)I");
    B.nativeMethod(AccPublic | AccStatic, "sin", "(D)D");
    B.nativeMethod(AccPublic | AccStatic, "cos", "(D)D");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    ClassBuilder B("java/lang/Integer");
    B.addField(AccPublic | AccStatic | AccFinal, "MAX_VALUE", "I");
    B.addField(AccPublic | AccStatic | AccFinal, "MIN_VALUE", "I");
    B.nativeMethod(AccPublic | AccStatic, "toString",
                   "(I)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "toHexString",
                   "(I)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "parseInt",
                   "(Ljava/lang/String;)I");
    Klass *K = Vm.loader().defineBuiltin(B.build());
    K->Statics["MAX_VALUE"] = Value::intVal(INT32_MAX);
    K->Statics["MIN_VALUE"] = Value::intVal(INT32_MIN);
    K->Init = Klass::InitState::Initialized;
  }
  {
    ClassBuilder B("java/lang/Long");
    B.nativeMethod(AccPublic | AccStatic, "toString",
                   "(J)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "parseLong",
                   "(Ljava/lang/String;)J");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    ClassBuilder B("java/lang/Double");
    B.nativeMethod(AccPublic | AccStatic, "toString",
                   "(D)Ljava/lang/String;");
    B.nativeMethod(AccPublic | AccStatic, "parseDouble",
                   "(Ljava/lang/String;)D");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    ClassBuilder B("java/lang/Character");
    B.nativeMethod(AccPublic | AccStatic, "isDigit", "(C)Z");
    B.nativeMethod(AccPublic | AccStatic, "isLetter", "(C)Z");
    B.nativeMethod(AccPublic | AccStatic, "isWhitespace", "(C)Z");
    Vm.loader().defineBuiltin(B.build());
  }
}

void defineThreading(Jvm &Vm) {
  ClassBuilder B("java/lang/Thread");
  B.addField(AccPrivate, "target", "Ljava/lang/Runnable;");
  B.addField(AccPrivate, "started", "I");
  B.addDefaultConstructor();
  MethodBuilder &Init =
      B.method(AccPublic, "<init>", "(Ljava/lang/Runnable;)V");
  Init.aload(0)
      .invokespecial("java/lang/Object", "<init>", "()V")
      .aload(0)
      .aload(1)
      .putfield("java/lang/Thread", "target", "Ljava/lang/Runnable;")
      .op(Op::Return);
  // run(): if (target != null) target.run();
  MethodBuilder &Run = B.method(AccPublic, "run", "()V");
  MethodBuilder::Label Skip = Run.newLabel();
  Run.aload(0)
      .getfield("java/lang/Thread", "target", "Ljava/lang/Runnable;")
      .branch(Op::Ifnull, Skip)
      .aload(0)
      .getfield("java/lang/Thread", "target", "Ljava/lang/Runnable;")
      .invokeinterface("java/lang/Runnable", "run", "()V")
      .bind(Skip)
      .op(Op::Return);
  B.nativeMethod(AccPublic, "start", "()V");
  B.nativeMethod(AccPublic, "join", "()V");
  B.nativeMethod(AccPublic, "isAlive", "()Z");
  B.nativeMethod(AccPublic | AccStatic, "sleep", "(J)V");
  B.nativeMethod(AccPublic | AccStatic, "yield", "()V");
  B.nativeMethod(AccPublic | AccStatic, "currentThread",
                 "()Ljava/lang/Thread;");
  Vm.loader().defineBuiltin(B.build());
}

void defineUnsafeAndInterop(Jvm &Vm) {
  {
    // §6.5: sun.misc.Unsafe over the Doppio unmanaged heap.
    ClassBuilder B("sun/misc/Unsafe");
    B.addField(AccPublic | AccStatic | AccFinal, "theUnsafe",
               "Lsun/misc/Unsafe;");
    B.addDefaultConstructor();
    B.nativeMethod(AccPublic, "allocateMemory", "(J)J");
    B.nativeMethod(AccPublic, "freeMemory", "(J)V");
    B.nativeMethod(AccPublic, "putByte", "(JB)V");
    B.nativeMethod(AccPublic, "getByte", "(J)B");
    B.nativeMethod(AccPublic, "putInt", "(JI)V");
    B.nativeMethod(AccPublic, "getInt", "(J)I");
    B.nativeMethod(AccPublic, "putLong", "(JJ)V");
    B.nativeMethod(AccPublic, "getLong", "(J)J");
    B.nativeMethod(AccPublic, "putDouble", "(JD)V");
    B.nativeMethod(AccPublic, "getDouble", "(J)D");
    B.nativeMethod(AccPublic, "addressSize", "()I");
    B.nativeMethod(AccPublic, "pageSize", "()I");
    Klass *K = Vm.loader().defineBuiltin(B.build());
    K->Statics["theUnsafe"] = Value::ref(Vm.allocObject(K));
    K->Init = Klass::InitState::Initialized;
  }
  {
    // §6.8: JVM -> JavaScript interop.
    ClassBuilder B("doppio/JS");
    B.nativeMethod(AccPublic | AccStatic, "eval",
                   "(Ljava/lang/String;)Ljava/lang/String;");
    Vm.loader().defineBuiltin(B.build());
  }
  {
    // §5.3: Unix-style sockets over WebSockets.
    ClassBuilder B("doppio/net/Socket");
    B.nativeMethod(AccPublic | AccStatic, "connect", "(I)I");
    B.nativeMethod(AccPublic | AccStatic, "send", "(I[B)V");
    B.nativeMethod(AccPublic | AccStatic, "recv", "(I)[B");
    B.nativeMethod(AccPublic | AccStatic, "close", "(I)V");
    Vm.loader().defineBuiltin(B.build());
  }
}

//===----------------------------------------------------------------------===//
// Native implementations
//===----------------------------------------------------------------------===//

void registerObjectNatives(Jvm &Vm) {
  Vm.registerNative("java/lang/Object", "hashCode", "()I",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(
                          Ctx.Vm.identityHash(Ctx.Args[0].R)));
                    });
  Vm.registerNative("java/lang/Object", "equals",
                    "(Ljava/lang/Object;)Z", [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(
                          Ctx.Args[0].R == Ctx.Args[1].R ? 1 : 0));
                    });
  Vm.registerNative("java/lang/Object", "getClass",
                    "()Ljava/lang/Class;", [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::ref(
                          Ctx.Vm.mirrorOf(Ctx.Args[0].R->klass())));
                    });
  Vm.registerNative(
      "java/lang/Object", "toString", "()Ljava/lang/String;",
      [](NativeContext &Ctx) {
        Object *O = Ctx.Args[0].R;
        char Buf[16];
        snprintf(Buf, sizeof(Buf), "@%x", Ctx.Vm.identityHash(O));
        Ctx.setReturn(
            Value::ref(Ctx.Vm.newString(O->klass()->Name + Buf)));
      });
  Vm.registerNative("java/lang/Class", "getName",
                    "()Ljava/lang/String;", [](NativeContext &Ctx) {
                      Klass *K = Ctx.Vm.mirroredClass(Ctx.Args[0].R);
                      std::string Name = K ? K->Name : "?";
                      for (char &C : Name)
                        if (C == '/')
                          C = '.';
                      Ctx.setReturn(Value::ref(Ctx.Vm.newString(Name)));
                    });

  // Object.wait / notify (§6.2). The wait set and reacquisition protocol
  // live on the object's monitor.
  auto WaitImpl = [](NativeContext &Ctx, int64_t TimeoutMs) {
    Object *O = Ctx.Args[0].R;
    Monitor &M = O->monitor();
    int32_t Tid = Ctx.Thread.tid();
    if (M.OwnerTid != Tid) {
      Ctx.throwEx("java/lang/IllegalMonitorStateException", "wait");
      return;
    }
    int32_t Saved = M.EntryCount;
    M.OwnerTid = -1;
    M.EntryCount = 0;
    // Releasing wakes the entry set.
    for (int32_t T : M.EntrySet)
      if (Ctx.Vm.pool().state(T) == rt::ThreadState::Blocked)
        Ctx.Vm.pool().unblock(T);
    M.WaitSet.push_back(Tid);
    Ctx.Thread.PendingReacquire = {O, Saved};
    uint64_t Generation = ++Ctx.Thread.WaitGeneration;
    Ctx.BlockedOnMonitor = true;
    if (TimeoutMs > 0) {
      Jvm &TheVm = Ctx.Vm;
      // Object.wait(timeout) is a JVM-visible timer, not an I/O
      // completion: Timer lane. Typed timer API; the wake-up is never
      // cancelled — a notify is handled by the generation check, and
      // cancelling would change when the virtual clock goes idle — so the
      // handle is dropped (dropping does not cancel).
      Ctx.Vm.env().loop().postTimer(
          kernel::Lane::Timer,
          [&TheVm, O, Tid, Generation] {
            JvmThread *T = TheVm.threadForTid(Tid);
            if (!T || T->WaitGeneration != Generation)
              return; // Already notified (or waited again).
            Monitor &M2 = O->monitor();
            auto It = std::find(M2.WaitSet.begin(), M2.WaitSet.end(), Tid);
            if (It == M2.WaitSet.end())
              return;
            M2.WaitSet.erase(It);
            if (TheVm.pool().state(Tid) == rt::ThreadState::Blocked)
              TheVm.pool().unblock(Tid);
          },
          browser::msToNs(static_cast<uint64_t>(TimeoutMs)));
    }
  };
  Vm.registerNative("java/lang/Object", "wait", "()V",
                    [WaitImpl](NativeContext &Ctx) { WaitImpl(Ctx, 0); });
  Vm.registerNative("java/lang/Object", "wait", "(J)V",
                    [WaitImpl](NativeContext &Ctx) {
                      WaitImpl(Ctx, longArg(Ctx.Args[1]));
                    });
  auto NotifyImpl = [](NativeContext &Ctx, bool All) {
    Object *O = Ctx.Args[0].R;
    Monitor &M = O->monitor();
    if (M.OwnerTid != Ctx.Thread.tid()) {
      Ctx.throwEx("java/lang/IllegalMonitorStateException", "notify");
      return;
    }
    while (!M.WaitSet.empty()) {
      int32_t T = M.WaitSet.front();
      M.WaitSet.erase(M.WaitSet.begin());
      if (Ctx.Vm.pool().state(T) == rt::ThreadState::Blocked)
        Ctx.Vm.pool().unblock(T);
      if (!All)
        break;
    }
  };
  Vm.registerNative("java/lang/Object", "notify", "()V",
                    [NotifyImpl](NativeContext &Ctx) {
                      NotifyImpl(Ctx, false);
                    });
  Vm.registerNative("java/lang/Object", "notifyAll", "()V",
                    [NotifyImpl](NativeContext &Ctx) {
                      NotifyImpl(Ctx, true);
                    });
}

void registerStringNatives(Jvm &Vm) {
  auto Chars = [](NativeContext &Ctx, Object *S) {
    return Ctx.Vm.stringValue(S);
  };
  Vm.registerNative("java/lang/String", "length", "()I",
                    [Chars](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(static_cast<int32_t>(
                          Chars(Ctx, Ctx.Args[0].R).size())));
                    });
  Vm.registerNative(
      "java/lang/String", "charAt", "(I)C", [Chars](NativeContext &Ctx) {
        std::string S = Chars(Ctx, Ctx.Args[0].R);
        int32_t I = Ctx.Args[1].I;
        if (I < 0 || static_cast<size_t>(I) >= S.size()) {
          Ctx.throwEx("java/lang/StringIndexOutOfBoundsException",
                      std::to_string(I));
          return;
        }
        Ctx.setReturn(Value::intVal(static_cast<uint8_t>(S[I])));
      });
  Vm.registerNative(
      "java/lang/String", "equals", "(Ljava/lang/Object;)Z",
      [Chars](NativeContext &Ctx) {
        Object *Other = Ctx.Args[1].R;
        if (!Other || Other->klass() != Ctx.Args[0].R->klass()) {
          Ctx.setReturn(Value::intVal(0));
          return;
        }
        Ctx.setReturn(Value::intVal(
            Chars(Ctx, Ctx.Args[0].R) == Chars(Ctx, Other) ? 1 : 0));
      });
  Vm.registerNative("java/lang/String", "hashCode", "()I",
                    [Chars](NativeContext &Ctx) {
                      std::string S = Chars(Ctx, Ctx.Args[0].R);
                      int32_t H = 0;
                      for (char C : S)
                        H = static_cast<int32_t>(
                            31 * static_cast<int64_t>(H) +
                            static_cast<uint8_t>(C));
                      Ctx.setReturn(Value::intVal(H));
                    });
  Vm.registerNative("java/lang/String", "toString",
                    "()Ljava/lang/String;", [](NativeContext &Ctx) {
                      Ctx.setReturn(Ctx.Args[0]);
                    });
  Vm.registerNative(
      "java/lang/String", "concat",
      "(Ljava/lang/String;)Ljava/lang/String;",
      [Chars](NativeContext &Ctx) {
        Ctx.setReturn(Value::ref(Ctx.Vm.newString(
            Chars(Ctx, Ctx.Args[0].R) + Chars(Ctx, Ctx.Args[1].R))));
      });
  auto Substring = [Chars](NativeContext &Ctx, int32_t From, int32_t To) {
    std::string S = Chars(Ctx, Ctx.Args[0].R);
    if (From < 0 || To > static_cast<int32_t>(S.size()) || From > To) {
      Ctx.throwEx("java/lang/StringIndexOutOfBoundsException",
                  std::to_string(From) + ".." + std::to_string(To));
      return;
    }
    Ctx.setReturn(Value::ref(Ctx.Vm.newString(S.substr(From, To - From))));
  };
  Vm.registerNative("java/lang/String", "substring",
                    "(II)Ljava/lang/String;",
                    [Substring](NativeContext &Ctx) {
                      Substring(Ctx, Ctx.Args[1].I, Ctx.Args[2].I);
                    });
  Vm.registerNative("java/lang/String", "substring",
                    "(I)Ljava/lang/String;",
                    [Substring, Chars](NativeContext &Ctx) {
                      Substring(Ctx, Ctx.Args[1].I,
                                static_cast<int32_t>(
                                    Chars(Ctx, Ctx.Args[0].R).size()));
                    });
  Vm.registerNative("java/lang/String", "indexOf", "(I)I",
                    [Chars](NativeContext &Ctx) {
                      std::string S = Chars(Ctx, Ctx.Args[0].R);
                      size_t At = S.find(
                          static_cast<char>(Ctx.Args[1].I & 0xFF));
                      Ctx.setReturn(Value::intVal(
                          At == std::string::npos
                              ? -1
                              : static_cast<int32_t>(At)));
                    });
  Vm.registerNative("java/lang/String", "indexOf",
                    "(Ljava/lang/String;)I", [Chars](NativeContext &Ctx) {
                      std::string S = Chars(Ctx, Ctx.Args[0].R);
                      size_t At = S.find(Chars(Ctx, Ctx.Args[1].R));
                      Ctx.setReturn(Value::intVal(
                          At == std::string::npos
                              ? -1
                              : static_cast<int32_t>(At)));
                    });
  Vm.registerNative("java/lang/String", "startsWith",
                    "(Ljava/lang/String;)Z", [Chars](NativeContext &Ctx) {
                      std::string S = Chars(Ctx, Ctx.Args[0].R);
                      std::string P = Chars(Ctx, Ctx.Args[1].R);
                      Ctx.setReturn(Value::intVal(
                          S.compare(0, P.size(), P) == 0 ? 1 : 0));
                    });
  Vm.registerNative(
      "java/lang/String", "endsWith", "(Ljava/lang/String;)Z",
      [Chars](NativeContext &Ctx) {
        std::string S = Chars(Ctx, Ctx.Args[0].R);
        std::string P = Chars(Ctx, Ctx.Args[1].R);
        bool Ok = S.size() >= P.size() &&
                  S.compare(S.size() - P.size(), P.size(), P) == 0;
        Ctx.setReturn(Value::intVal(Ok ? 1 : 0));
      });
  Vm.registerNative("java/lang/String", "compareTo",
                    "(Ljava/lang/String;)I", [Chars](NativeContext &Ctx) {
                      int R = Chars(Ctx, Ctx.Args[0].R)
                                  .compare(Chars(Ctx, Ctx.Args[1].R));
                      Ctx.setReturn(
                          Value::intVal(R < 0 ? -1 : (R > 0 ? 1 : 0)));
                    });
  Vm.registerNative("java/lang/String", "toCharArray", "()[C",
                    [Chars](NativeContext &Ctx) {
                      std::string S = Chars(Ctx, Ctx.Args[0].R);
                      ArrayObject *A = Ctx.Vm.allocArrayOf(
                          "C", static_cast<int32_t>(S.size()));
                      for (size_t I = 0; I != S.size(); ++I)
                        A->set(static_cast<int32_t>(I),
                               Value::intVal(static_cast<uint8_t>(S[I])));
                      Ctx.setReturn(Value::ref(A));
                    });
  Vm.registerNative("java/lang/String", "intern",
                    "()Ljava/lang/String;", [Chars](NativeContext &Ctx) {
                      Ctx.setReturn(Value::ref(Ctx.Vm.internString(
                          Chars(Ctx, Ctx.Args[0].R))));
                    });
  Vm.registerNative(
      "java/lang/String", "trim", "()Ljava/lang/String;",
      [Chars](NativeContext &Ctx) {
        std::string S = Chars(Ctx, Ctx.Args[0].R);
        size_t B = S.find_first_not_of(" \t\r\n");
        size_t E = S.find_last_not_of(" \t\r\n");
        Ctx.setReturn(Value::ref(Ctx.Vm.newString(
            B == std::string::npos ? "" : S.substr(B, E - B + 1))));
      });

  auto RetStr = [](NativeContext &Ctx, const std::string &S) {
    Ctx.setReturn(Value::ref(Ctx.Vm.newString(S)));
  };
  Vm.registerNative("java/lang/String", "valueOf",
                    "(I)Ljava/lang/String;", [RetStr](NativeContext &Ctx) {
                      RetStr(Ctx, std::to_string(Ctx.Args[0].I));
                    });
  Vm.registerNative("java/lang/String", "valueOf",
                    "(J)Ljava/lang/String;", [RetStr](NativeContext &Ctx) {
                      RetStr(Ctx, std::to_string(longArg(Ctx.Args[0])));
                    });
  Vm.registerNative("java/lang/String", "valueOf",
                    "(D)Ljava/lang/String;", [RetStr](NativeContext &Ctx) {
                      RetStr(Ctx, std::to_string(Ctx.Args[0].D));
                    });
  Vm.registerNative("java/lang/String", "valueOf",
                    "(C)Ljava/lang/String;", [RetStr](NativeContext &Ctx) {
                      RetStr(Ctx, std::string(
                                      1, static_cast<char>(Ctx.Args[0].I)));
                    });
  Vm.registerNative("java/lang/String", "valueOf",
                    "(Z)Ljava/lang/String;", [RetStr](NativeContext &Ctx) {
                      RetStr(Ctx, Ctx.Args[0].I ? "true" : "false");
                    });
  Vm.registerNative(
      "java/lang/String", "valueOf", "([C)Ljava/lang/String;",
      [RetStr](NativeContext &Ctx) {
        auto *A = static_cast<ArrayObject *>(Ctx.Args[0].R);
        std::string S;
        for (int32_t I = 0; I != A->length(); ++I)
          S.push_back(static_cast<char>(A->get(I).I & 0xFF));
        RetStr(Ctx, S);
      });

  // StringBuilder over its "str" field.
  auto SbAppend = [](NativeContext &Ctx, const std::string &Suffix) {
    Object *Sb = Ctx.Args[0].R;
    Value Cur = getField(Ctx.Vm, Sb, "str");
    std::string Text = Cur.R ? Ctx.Vm.stringValue(Cur.R) : "";
    setField(Ctx.Vm, Sb, "str",
             Value::ref(Ctx.Vm.newString(Text + Suffix)));
    Ctx.setReturn(Ctx.Args[0]);
  };
  Vm.registerNative("java/lang/StringBuilder", "append",
                    "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
                    [SbAppend](NativeContext &Ctx) {
                      Object *S = Ctx.Args[1].R;
                      SbAppend(Ctx, S ? Ctx.Vm.stringValue(S) : "null");
                    });
  Vm.registerNative(
      "java/lang/StringBuilder", "append",
      "(Ljava/lang/Object;)Ljava/lang/StringBuilder;",
      [SbAppend](NativeContext &Ctx) {
        Object *O = Ctx.Args[1].R;
        if (!O) {
          SbAppend(Ctx, "null");
          return;
        }
        if (O->klass()->Name == "java/lang/String") {
          SbAppend(Ctx, Ctx.Vm.stringValue(O));
          return;
        }
        char Buf[16];
        snprintf(Buf, sizeof(Buf), "@%x", Ctx.Vm.identityHash(O));
        SbAppend(Ctx, O->klass()->Name + Buf);
      });
  Vm.registerNative("java/lang/StringBuilder", "append",
                    "(I)Ljava/lang/StringBuilder;",
                    [SbAppend](NativeContext &Ctx) {
                      SbAppend(Ctx, std::to_string(Ctx.Args[1].I));
                    });
  Vm.registerNative("java/lang/StringBuilder", "append",
                    "(J)Ljava/lang/StringBuilder;",
                    [SbAppend](NativeContext &Ctx) {
                      SbAppend(Ctx, std::to_string(longArg(Ctx.Args[1])));
                    });
  Vm.registerNative("java/lang/StringBuilder", "append",
                    "(C)Ljava/lang/StringBuilder;",
                    [SbAppend](NativeContext &Ctx) {
                      SbAppend(Ctx, std::string(1, static_cast<char>(
                                                       Ctx.Args[1].I)));
                    });
  Vm.registerNative("java/lang/StringBuilder", "append",
                    "(D)Ljava/lang/StringBuilder;",
                    [SbAppend](NativeContext &Ctx) {
                      SbAppend(Ctx, std::to_string(Ctx.Args[1].D));
                    });
  Vm.registerNative("java/lang/StringBuilder", "append",
                    "(Z)Ljava/lang/StringBuilder;",
                    [SbAppend](NativeContext &Ctx) {
                      SbAppend(Ctx, Ctx.Args[1].I ? "true" : "false");
                    });
  Vm.registerNative("java/lang/StringBuilder", "toString",
                    "()Ljava/lang/String;", [](NativeContext &Ctx) {
                      Value Cur = getField(Ctx.Vm, Ctx.Args[0].R, "str");
                      Ctx.setReturn(Cur.R ? Cur
                                          : Value::ref(Ctx.Vm.newString("")));
                    });
  Vm.registerNative("java/lang/StringBuilder", "length", "()I",
                    [](NativeContext &Ctx) {
                      Value Cur = getField(Ctx.Vm, Ctx.Args[0].R, "str");
                      std::string S =
                          Cur.R ? Ctx.Vm.stringValue(Cur.R) : "";
                      Ctx.setReturn(Value::intVal(
                          static_cast<int32_t>(S.size())));
                    });
}

void registerSystemNatives(Jvm &Vm) {
  auto PrintTo = [](NativeContext &Ctx, const std::string &Text,
                    bool Newline) {
    bool IsErr = getField(Ctx.Vm, Ctx.Args[0].R, "isErr").I != 0;
    std::string Out = Newline ? Text + "\n" : Text;
    // Process-subsystem routing: when the owning proc::Process installed
    // an fd-table write hook, the write is asynchronous and may park on a
    // full pipe — block the green thread until the bytes land, which is
    // what gives System.out real pipe backpressure (§4.2 bridge).
    const rt::Process::WriteHook &Hook = IsErr
                                             ? Ctx.Vm.process().stderrHook()
                                             : Ctx.Vm.process().stdoutHook();
    if (Hook) {
      Ctx.blockWithResult([Hook, Out](NativeCompletion Complete) {
        Hook(Out, [Complete] { Complete(Value()); });
      });
      return;
    }
    if (IsErr)
      Ctx.Vm.process().writeStderr(Out);
    else
      Ctx.Vm.process().writeStdout(Out);
  };
  Vm.registerNative("java/io/PrintStream", "println",
                    "(Ljava/lang/String;)V", [PrintTo](NativeContext &Ctx) {
                      Object *S = Ctx.Args[1].R;
                      PrintTo(Ctx, S ? Ctx.Vm.stringValue(S) : "null",
                              true);
                    });
  Vm.registerNative("java/io/PrintStream", "println", "(I)V",
                    [PrintTo](NativeContext &Ctx) {
                      PrintTo(Ctx, std::to_string(Ctx.Args[1].I), true);
                    });
  Vm.registerNative("java/io/PrintStream", "println", "(J)V",
                    [PrintTo](NativeContext &Ctx) {
                      PrintTo(Ctx, std::to_string(longArg(Ctx.Args[1])),
                              true);
                    });
  Vm.registerNative("java/io/PrintStream", "println", "(D)V",
                    [PrintTo](NativeContext &Ctx) {
                      PrintTo(Ctx, std::to_string(Ctx.Args[1].D), true);
                    });
  Vm.registerNative("java/io/PrintStream", "println", "(C)V",
                    [PrintTo](NativeContext &Ctx) {
                      PrintTo(Ctx,
                              std::string(1, static_cast<char>(
                                                 Ctx.Args[1].I)),
                              true);
                    });
  Vm.registerNative("java/io/PrintStream", "println", "(Z)V",
                    [PrintTo](NativeContext &Ctx) {
                      PrintTo(Ctx, Ctx.Args[1].I ? "true" : "false", true);
                    });
  Vm.registerNative("java/io/PrintStream", "println",
                    "(Ljava/lang/Object;)V", [PrintTo](NativeContext &Ctx) {
                      Object *O = Ctx.Args[1].R;
                      if (!O) {
                        PrintTo(Ctx, "null", true);
                        return;
                      }
                      if (O->klass()->Name == "java/lang/String") {
                        PrintTo(Ctx, Ctx.Vm.stringValue(O), true);
                        return;
                      }
                      char Buf[16];
                      snprintf(Buf, sizeof(Buf), "@%x",
                               Ctx.Vm.identityHash(O));
                      PrintTo(Ctx, O->klass()->Name + Buf, true);
                    });
  Vm.registerNative("java/io/PrintStream", "println", "()V",
                    [PrintTo](NativeContext &Ctx) { PrintTo(Ctx, "", true); });
  Vm.registerNative("java/io/PrintStream", "print",
                    "(Ljava/lang/String;)V", [PrintTo](NativeContext &Ctx) {
                      Object *S = Ctx.Args[1].R;
                      PrintTo(Ctx, S ? Ctx.Vm.stringValue(S) : "null",
                              false);
                    });
  Vm.registerNative("java/io/PrintStream", "print", "(I)V",
                    [PrintTo](NativeContext &Ctx) {
                      PrintTo(Ctx, std::to_string(Ctx.Args[1].I), false);
                    });
  Vm.registerNative("java/io/PrintStream", "print", "(C)V",
                    [PrintTo](NativeContext &Ctx) {
                      PrintTo(Ctx,
                              std::string(1, static_cast<char>(
                                                 Ctx.Args[1].I)),
                              false);
                    });

  Vm.registerNative("java/lang/System", "currentTimeMillis", "()J",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::longVal(static_cast<int64_t>(
                          Ctx.Vm.env().clock().nowNs() / 1000000)));
                    });
  Vm.registerNative("java/lang/System", "nanoTime", "()J",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::longVal(static_cast<int64_t>(
                          Ctx.Vm.env().clock().nowNs())));
                    });
  Vm.registerNative("java/lang/System", "identityHashCode",
                    "(Ljava/lang/Object;)I", [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(
                          Ctx.Vm.identityHash(Ctx.Args[0].R)));
                    });
  Vm.registerNative(
      "java/lang/System", "arraycopy",
      "(Ljava/lang/Object;ILjava/lang/Object;II)V",
      [](NativeContext &Ctx) {
        Object *SrcO = Ctx.Args[0].R;
        int32_t SrcPos = Ctx.Args[1].I;
        Object *DstO = Ctx.Args[2].R;
        int32_t DstPos = Ctx.Args[3].I;
        int32_t Len = Ctx.Args[4].I;
        if (!SrcO || !DstO) {
          Ctx.throwEx("java/lang/NullPointerException", "arraycopy");
          return;
        }
        if (!SrcO->isArray() || !DstO->isArray()) {
          Ctx.throwEx("java/lang/ArrayStoreException", "not arrays");
          return;
        }
        auto *Src = static_cast<ArrayObject *>(SrcO);
        auto *Dst = static_cast<ArrayObject *>(DstO);
        if (Len < 0 || SrcPos < 0 || DstPos < 0 ||
            SrcPos + Len > Src->length() || DstPos + Len > Dst->length()) {
          Ctx.throwEx("java/lang/ArrayIndexOutOfBoundsException",
                      "arraycopy");
          return;
        }
        // Copy with memmove semantics for overlapping self-copies.
        if (Src == Dst && SrcPos < DstPos) {
          for (int32_t I = Len - 1; I >= 0; --I)
            Dst->set(DstPos + I, Src->get(SrcPos + I));
        } else {
          for (int32_t I = 0; I != Len; ++I)
            Dst->set(DstPos + I, Src->get(SrcPos + I));
        }
      });
  Vm.registerNative("java/lang/System", "exit", "(I)V",
                    [](NativeContext &Ctx) {
                      Ctx.Vm.setExitCode(Ctx.Args[0].I);
                      Ctx.Thread.killForExit();
                    });
}

void registerMathAndNumberNatives(Jvm &Vm) {
  Vm.registerNative("java/lang/Math", "sqrt", "(D)D",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(
                          Value::doubleVal(std::sqrt(Ctx.Args[0].D)));
                    });
  Vm.registerNative("java/lang/Math", "pow", "(DD)D",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::doubleVal(
                          std::pow(Ctx.Args[0].D, Ctx.Args[1].D)));
                    });
  Vm.registerNative("java/lang/Math", "floor", "(D)D",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(
                          Value::doubleVal(std::floor(Ctx.Args[0].D)));
                    });
  Vm.registerNative("java/lang/Math", "ceil", "(D)D",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(
                          Value::doubleVal(std::ceil(Ctx.Args[0].D)));
                    });
  Vm.registerNative("java/lang/Math", "abs", "(I)I",
                    [](NativeContext &Ctx) {
                      int32_t V = Ctx.Args[0].I;
                      Ctx.setReturn(Value::intVal(V < 0 ? -V : V));
                    });
  Vm.registerNative("java/lang/Math", "abs", "(J)J",
                    [](NativeContext &Ctx) {
                      int64_t V = longArg(Ctx.Args[0]);
                      Ctx.setReturn(Value::longVal(V < 0 ? -V : V));
                    });
  Vm.registerNative("java/lang/Math", "abs", "(D)D",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(
                          Value::doubleVal(std::abs(Ctx.Args[0].D)));
                    });
  Vm.registerNative("java/lang/Math", "max", "(II)I",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(
                          std::max(Ctx.Args[0].I, Ctx.Args[1].I)));
                    });
  Vm.registerNative("java/lang/Math", "min", "(II)I",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(
                          std::min(Ctx.Args[0].I, Ctx.Args[1].I)));
                    });
  Vm.registerNative("java/lang/Math", "sin", "(D)D",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(
                          Value::doubleVal(std::sin(Ctx.Args[0].D)));
                    });
  Vm.registerNative("java/lang/Math", "cos", "(D)D",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(
                          Value::doubleVal(std::cos(Ctx.Args[0].D)));
                    });

  Vm.registerNative("java/lang/Integer", "toString",
                    "(I)Ljava/lang/String;", [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::ref(Ctx.Vm.newString(
                          std::to_string(Ctx.Args[0].I))));
                    });
  Vm.registerNative("java/lang/Integer", "toHexString",
                    "(I)Ljava/lang/String;", [](NativeContext &Ctx) {
                      char Buf[16];
                      snprintf(Buf, sizeof(Buf), "%x",
                               static_cast<uint32_t>(Ctx.Args[0].I));
                      Ctx.setReturn(Value::ref(Ctx.Vm.newString(Buf)));
                    });
  Vm.registerNative(
      "java/lang/Integer", "parseInt", "(Ljava/lang/String;)I",
      [](NativeContext &Ctx) {
        std::string S = strArg(Ctx.Vm, Ctx.Args[0]);
        try {
          size_t Used = 0;
          long V = std::stol(S, &Used);
          if (Used != S.size() || V > INT32_MAX || V < INT32_MIN)
            throw std::invalid_argument(S);
          Ctx.setReturn(Value::intVal(static_cast<int32_t>(V)));
        } catch (...) {
          Ctx.throwEx("java/lang/NumberFormatException", S);
        }
      });
  Vm.registerNative("java/lang/Long", "toString",
                    "(J)Ljava/lang/String;", [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::ref(Ctx.Vm.newString(
                          std::to_string(longArg(Ctx.Args[0])))));
                    });
  Vm.registerNative(
      "java/lang/Long", "parseLong", "(Ljava/lang/String;)J",
      [](NativeContext &Ctx) {
        std::string S = strArg(Ctx.Vm, Ctx.Args[0]);
        try {
          size_t Used = 0;
          long long V = std::stoll(S, &Used);
          if (Used != S.size())
            throw std::invalid_argument(S);
          Ctx.setReturn(Value::longVal(static_cast<int64_t>(V)));
        } catch (...) {
          Ctx.throwEx("java/lang/NumberFormatException", S);
        }
      });
  Vm.registerNative("java/lang/Double", "toString",
                    "(D)Ljava/lang/String;", [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::ref(Ctx.Vm.newString(
                          std::to_string(Ctx.Args[0].D))));
                    });
  Vm.registerNative(
      "java/lang/Double", "parseDouble", "(Ljava/lang/String;)D",
      [](NativeContext &Ctx) {
        std::string S = strArg(Ctx.Vm, Ctx.Args[0]);
        try {
          Ctx.setReturn(Value::doubleVal(std::stod(S)));
        } catch (...) {
          Ctx.throwEx("java/lang/NumberFormatException", S);
        }
      });
  Vm.registerNative("java/lang/Character", "isDigit", "(C)Z",
                    [](NativeContext &Ctx) {
                      int32_t C = Ctx.Args[0].I;
                      Ctx.setReturn(
                          Value::intVal(C >= '0' && C <= '9' ? 1 : 0));
                    });
  Vm.registerNative("java/lang/Character", "isLetter", "(C)Z",
                    [](NativeContext &Ctx) {
                      int32_t C = Ctx.Args[0].I;
                      bool L = (C >= 'a' && C <= 'z') ||
                               (C >= 'A' && C <= 'Z');
                      Ctx.setReturn(Value::intVal(L ? 1 : 0));
                    });
  Vm.registerNative("java/lang/Character", "isWhitespace", "(C)Z",
                    [](NativeContext &Ctx) {
                      int32_t C = Ctx.Args[0].I;
                      bool W = C == ' ' || C == '\t' || C == '\n' ||
                               C == '\r';
                      Ctx.setReturn(Value::intVal(W ? 1 : 0));
                    });
}

void registerThreadNatives(Jvm &Vm) {
  Vm.registerNative(
      "java/lang/Thread", "start", "()V", [](NativeContext &Ctx) {
        Object *ThreadObj = Ctx.Args[0].R;
        if (getField(Ctx.Vm, ThreadObj, "started").I != 0) {
          Ctx.throwEx("java/lang/IllegalThreadStateException",
                      "already started");
          return;
        }
        setField(Ctx.Vm, ThreadObj, "started", Value::intVal(1));
        Method *Run =
            ThreadObj->klass()->findVirtual("run", "()V");
        if (!Run || !Run->HasCode) {
          Ctx.throwEx("java/lang/IllegalStateException", "no run()");
          return;
        }
        Ctx.Vm.spawnThread(Run, {Value::ref(ThreadObj)}, ThreadObj);
      });
  Vm.registerNative(
      "java/lang/Thread", "join", "()V", [](NativeContext &Ctx) {
        JvmThread *Target = Ctx.Vm.threadForObject(Ctx.Args[0].R);
        if (!Target || Target->finished())
          return; // Already dead: join returns immediately.
        Target->JoinWaiters.push_back(Ctx.Thread.tid());
        Ctx.BlockedOnMonitor = true; // Resumed by noteThreadFinished.
      });
  Vm.registerNative("java/lang/Thread", "isAlive", "()Z",
                    [](NativeContext &Ctx) {
                      JvmThread *Target =
                          Ctx.Vm.threadForObject(Ctx.Args[0].R);
                      Ctx.setReturn(Value::intVal(
                          Target && !Target->finished() ? 1 : 0));
                    });
  Vm.registerNative(
      "java/lang/Thread", "sleep", "(J)V", [](NativeContext &Ctx) {
        int64_t Ms = longArg(Ctx.Args[0]);
        Ctx.blockWithResult([&Ctx, Ms](NativeCompletion Complete) {
          // Thread.sleep is a timer wake-up, not I/O (typed timer API;
          // sleep is uninterruptible here, the handle is dropped).
          Ctx.Vm.env().loop().postTimer(
              kernel::Lane::Timer, [Complete] { Complete(Value()); },
              browser::msToNs(static_cast<uint64_t>(Ms < 0 ? 0 : Ms)));
        });
      });
  Vm.registerNative(
      "java/lang/Thread", "yield", "()V", [](NativeContext &Ctx) {
        // Yield by bouncing through the Resume lane: other threads'
        // pending slices (FIFO ahead of this wake-up) run before this one
        // resumes. The Background lane would deadlock the pool under
        // strict priority — the pool's own drive chain lives on Resume
        // and would starve the bounce forever.
        Ctx.blockWithResult([&Ctx](NativeCompletion Complete) {
          Ctx.Vm.env().loop().post(kernel::Lane::Resume,
                                   [Complete] { Complete(Value()); });
        });
      });
  Vm.registerNative(
      "java/lang/Thread", "currentThread", "()Ljava/lang/Thread;",
      [](NativeContext &Ctx) {
        if (!Ctx.Thread.ThreadObj) {
          Klass *ThreadK = Ctx.Vm.loader().lookup("java/lang/Thread");
          Object *O = Ctx.Vm.allocObject(ThreadK);
          setField(Ctx.Vm, O, "started", Value::intVal(1));
          Ctx.Thread.ThreadObj = O;
        }
        Ctx.setReturn(Value::ref(Ctx.Thread.ThreadObj));
      });
}

void registerUnsafeAndInteropNatives(Jvm &Vm) {
  // §6.5: unsafe memory operations over the Doppio heap.
  Vm.registerNative(
      "sun/misc/Unsafe", "allocateMemory", "(J)J",
      [](NativeContext &Ctx) {
        uint32_t Addr = Ctx.Vm.heap().malloc(
            static_cast<uint32_t>(longArg(Ctx.Args[1])));
        if (Addr == 0) {
          Ctx.throwEx("java/lang/OutOfMemoryError", "unmanaged heap");
          return;
        }
        Ctx.setReturn(Value::longVal(static_cast<int64_t>(Addr)));
      });
  Vm.registerNative("sun/misc/Unsafe", "freeMemory", "(J)V",
                    [](NativeContext &Ctx) {
                      Ctx.Vm.heap().free(static_cast<uint32_t>(
                          longArg(Ctx.Args[1])));
                    });
  Vm.registerNative("sun/misc/Unsafe", "putByte", "(JB)V",
                    [](NativeContext &Ctx) {
                      Ctx.Vm.heap().writeInt8(
                          static_cast<uint32_t>(longArg(Ctx.Args[1])),
                          static_cast<int8_t>(Ctx.Args[2].I));
                    });
  Vm.registerNative("sun/misc/Unsafe", "getByte", "(J)B",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(Ctx.Vm.heap().readInt8(
                          static_cast<uint32_t>(longArg(Ctx.Args[1])))));
                    });
  Vm.registerNative("sun/misc/Unsafe", "putInt", "(JI)V",
                    [](NativeContext &Ctx) {
                      Ctx.Vm.heap().writeInt32(
                          static_cast<uint32_t>(longArg(Ctx.Args[1])),
                          Ctx.Args[2].I);
                    });
  Vm.registerNative("sun/misc/Unsafe", "getInt", "(J)I",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(Ctx.Vm.heap().readInt32(
                          static_cast<uint32_t>(longArg(Ctx.Args[1])))));
                    });
  Vm.registerNative("sun/misc/Unsafe", "putLong", "(JJ)V",
                    [](NativeContext &Ctx) {
                      Ctx.Vm.heap().writeInt64(
                          static_cast<uint32_t>(longArg(Ctx.Args[1])),
                          longArg(Ctx.Args[2]));
                    });
  Vm.registerNative("sun/misc/Unsafe", "getLong", "(J)J",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(
                          Value::longVal(Ctx.Vm.heap().readInt64(
                              static_cast<uint32_t>(
                                  longArg(Ctx.Args[1])))));
                    });
  Vm.registerNative("sun/misc/Unsafe", "putDouble", "(JD)V",
                    [](NativeContext &Ctx) {
                      Ctx.Vm.heap().writeDouble(
                          static_cast<uint32_t>(longArg(Ctx.Args[1])),
                          Ctx.Args[2].D);
                    });
  Vm.registerNative("sun/misc/Unsafe", "getDouble", "(J)D",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(
                          Value::doubleVal(Ctx.Vm.heap().readDouble(
                              static_cast<uint32_t>(
                                  longArg(Ctx.Args[1])))));
                    });
  Vm.registerNative("sun/misc/Unsafe", "addressSize", "()I",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(4));
                    });
  Vm.registerNative("sun/misc/Unsafe", "pageSize", "()I",
                    [](NativeContext &Ctx) {
                      Ctx.setReturn(Value::intVal(4096));
                    });

  // §6.8: eval.
  Vm.registerNative(
      "doppio/JS", "eval", "(Ljava/lang/String;)Ljava/lang/String;",
      [](NativeContext &Ctx) {
        const auto &Hook = Ctx.Vm.jsEval();
        if (!Hook) {
          Ctx.throwEx("java/lang/UnsupportedOperationException",
                      "no JavaScript engine attached");
          return;
        }
        std::string Result = Hook(strArg(Ctx.Vm, Ctx.Args[0]));
        Ctx.setReturn(Value::ref(Ctx.Vm.newString(Result)));
      });
}

void registerFileNatives(Jvm &Vm) {
  // All file natives block through the §4.2 bridge onto the asynchronous
  // Doppio fs, preserving JVM-level synchronous semantics (§6.3).
  Vm.registerNative(
      "doppio/io/Files", "readAllBytes", "(Ljava/lang/String;)[B",
      [](NativeContext &Ctx) {
        std::string Path = strArg(Ctx.Vm, Ctx.Args[0]);
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Path](NativeCompletion Complete) {
          TheVm.fs().readFile(
              Path, [&TheVm, Complete](ErrorOr<std::vector<uint8_t>> R) {
                if (!R) {
                  Complete(R.error());
                  return;
                }
                Complete(Value::ref(bytesToArray(TheVm, *R)));
              });
        });
      });
  Vm.registerNative(
      "doppio/io/Files", "readString",
      "(Ljava/lang/String;)Ljava/lang/String;", [](NativeContext &Ctx) {
        std::string Path = strArg(Ctx.Vm, Ctx.Args[0]);
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Path](NativeCompletion Complete) {
          TheVm.fs().readFile(
              Path, [&TheVm, Complete](ErrorOr<std::vector<uint8_t>> R) {
                if (!R) {
                  Complete(R.error());
                  return;
                }
                Complete(Value::ref(TheVm.newString(
                    std::string(R->begin(), R->end()))));
              });
        });
      });
  Vm.registerNative(
      "doppio/io/Files", "write", "(Ljava/lang/String;[B)V",
      [](NativeContext &Ctx) {
        std::string Path = strArg(Ctx.Vm, Ctx.Args[0]);
        if (!Ctx.Args[1].R) {
          Ctx.throwEx("java/lang/NullPointerException", "write");
          return;
        }
        std::vector<uint8_t> Bytes =
            arrayToBytes(static_cast<ArrayObject *>(Ctx.Args[1].R));
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult(
            [&TheVm, Path, Bytes](NativeCompletion Complete) {
              TheVm.fs().writeFile(
                  Path, Bytes, [Complete](std::optional<ApiError> E) {
                    if (E)
                      Complete(*E);
                    else
                      Complete(Value());
                  });
            });
      });
  Vm.registerNative(
      "doppio/io/Files", "writeString",
      "(Ljava/lang/String;Ljava/lang/String;)V", [](NativeContext &Ctx) {
        std::string Path = strArg(Ctx.Vm, Ctx.Args[0]);
        std::string Text = strArg(Ctx.Vm, Ctx.Args[1]);
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Path, Text](NativeCompletion Complete) {
          TheVm.fs().writeFile(
              Path, std::vector<uint8_t>(Text.begin(), Text.end()),
              [Complete](std::optional<ApiError> E) {
                if (E)
                  Complete(*E);
                else
                  Complete(Value());
              });
        });
      });
  Vm.registerNative(
      "doppio/io/Files", "exists", "(Ljava/lang/String;)Z",
      [](NativeContext &Ctx) {
        std::string Path = strArg(Ctx.Vm, Ctx.Args[0]);
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Path](NativeCompletion Complete) {
          // exists() always yields a success value (a failed stat means
          // "absent", not an error).
          TheVm.fs().exists(Path, [Complete](ErrorOr<bool> Exists) {
            Complete(Value::intVal(*Exists ? 1 : 0));
          });
        });
      });
  Vm.registerNative(
      "doppio/io/Files", "list",
      "(Ljava/lang/String;)[Ljava/lang/String;", [](NativeContext &Ctx) {
        std::string Path = strArg(Ctx.Vm, Ctx.Args[0]);
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Path](NativeCompletion Complete) {
          TheVm.fs().readdir(
              Path,
              [&TheVm, Complete](ErrorOr<std::vector<std::string>> R) {
                if (!R) {
                  Complete(R.error());
                  return;
                }
                ArrayObject *A = TheVm.allocArrayOf(
                    "Ljava/lang/String;", static_cast<int32_t>(R->size()));
                for (size_t I = 0; I != R->size(); ++I)
                  A->set(static_cast<int32_t>(I),
                         Value::ref(TheVm.newString((*R)[I])));
                Complete(Value::ref(A));
              });
        });
      });
  Vm.registerNative(
      "doppio/io/Files", "delete", "(Ljava/lang/String;)V",
      [](NativeContext &Ctx) {
        std::string Path = strArg(Ctx.Vm, Ctx.Args[0]);
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Path](NativeCompletion Complete) {
          TheVm.fs().unlink(Path, [Complete](std::optional<ApiError> E) {
            if (E)
              Complete(*E);
            else
              Complete(Value());
          });
        });
      });
  Vm.registerNative(
      "doppio/io/Files", "mkdirs", "(Ljava/lang/String;)V",
      [](NativeContext &Ctx) {
        std::string Path = strArg(Ctx.Vm, Ctx.Args[0]);
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Path](NativeCompletion Complete) {
          TheVm.fs().mkdirp(Path, [Complete](std::optional<ApiError> E) {
            if (E)
              Complete(*E);
            else
              Complete(Value());
          });
        });
      });
  Vm.registerNative(
      "doppio/io/Files", "size", "(Ljava/lang/String;)I",
      [](NativeContext &Ctx) {
        std::string Path = strArg(Ctx.Vm, Ctx.Args[0]);
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Path](NativeCompletion Complete) {
          TheVm.fs().stat(Path, [Complete](ErrorOr<rt::fs::Stats> R) {
            if (!R) {
              Complete(R.error());
              return;
            }
            Complete(Value::intVal(static_cast<int32_t>(R->SizeBytes)));
          });
        });
      });

  // §3.2's example made real: synchronous console input. The "keyboard
  // event" arrives asynchronously; the guest blocks until it does.
  Vm.registerNative(
      "doppio/Stdin", "readLine", "()Ljava/lang/String;",
      [](NativeContext &Ctx) {
        Jvm &TheVm = Ctx.Vm;
        // Process-subsystem routing: System.in drains the owning process's
        // fd 0 (possibly a pipe from an upstream stage), blocking the green
        // thread until a line — or EOF (null) — arrives.
        if (const rt::Process::StdinHook &Hook = TheVm.process().stdinHook()) {
          Ctx.blockWithResult([&TheVm, Hook](NativeCompletion Complete) {
            Hook([&TheVm, Complete](std::optional<std::string> Line) {
              if (!Line) {
                Complete(Value::null()); // EOF.
                return;
              }
              Complete(Value::ref(TheVm.newString(*Line)));
            });
          });
          return;
        }
        if (!TheVm.process().hasStdin()) {
          Ctx.setReturn(Value::null()); // EOF.
          return;
        }
        Ctx.blockWithResult([&TheVm](NativeCompletion Complete) {
          // Model keystroke delivery latency; a keystroke is user input,
          // so it arrives on the Input lane ahead of everything queued.
          // Typed timer API; the keystroke is never cancelled, so the
          // handle is dropped (dropping does not cancel).
          TheVm.env().loop().postTimer(
              kernel::Lane::Input,
              [&TheVm, Complete] {
                if (!TheVm.process().hasStdin()) {
                  Complete(Value::null());
                  return;
                }
                Complete(Value::ref(
                    TheVm.newString(TheVm.process().popStdin())));
              },
              browser::msToNs(1));
        });
      });
}

void registerSocketNatives(Jvm &Vm) {
  // §5.3 through §6.3: socket natives over Doppio sockets. The handle
  // table lives in a shared_ptr captured by all four natives.
  auto Sockets = std::make_shared<
      std::map<int32_t, std::unique_ptr<rt::DoppioSocket>>>();
  auto NextHandle = std::make_shared<int32_t>(1);

  Vm.registerNative(
      "doppio/net/Socket", "connect", "(I)I",
      [Sockets, NextHandle](NativeContext &Ctx) {
        int32_t Port = Ctx.Args[0].I;
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Sockets, NextHandle,
                             Port](NativeCompletion Complete) {
          auto Sock = std::make_unique<rt::DoppioSocket>(TheVm.env());
          rt::DoppioSocket *Raw = Sock.get();
          int32_t Handle = (*NextHandle)++;
          (*Sockets)[Handle] = std::move(Sock);
          Raw->connect(static_cast<uint16_t>(Port),
                       [Complete, Handle, Sockets](
                           std::optional<ApiError> E) {
                         if (E) {
                           Sockets->erase(Handle);
                           Complete(*E);
                           return;
                         }
                         Complete(Value::intVal(Handle));
                       });
        });
      });
  Vm.registerNative(
      "doppio/net/Socket", "send", "(I[B)V",
      [Sockets](NativeContext &Ctx) {
        auto It = Sockets->find(Ctx.Args[0].I);
        if (It == Sockets->end() || !Ctx.Args[1].R) {
          Ctx.throwEx("java/io/IOException", "bad socket");
          return;
        }
        std::vector<uint8_t> Bytes =
            arrayToBytes(static_cast<ArrayObject *>(Ctx.Args[1].R));
        It->second->send(std::move(Bytes),
                         [](std::optional<ApiError>) {});
      });
  Vm.registerNative(
      "doppio/net/Socket", "recv", "(I)[B",
      [Sockets](NativeContext &Ctx) {
        auto It = Sockets->find(Ctx.Args[0].I);
        if (It == Sockets->end()) {
          Ctx.throwEx("java/io/IOException", "bad socket");
          return;
        }
        rt::DoppioSocket *Sock = It->second.get();
        Jvm &TheVm = Ctx.Vm;
        Ctx.blockWithResult([&TheVm, Sock](NativeCompletion Complete) {
          Sock->recv([&TheVm, Complete](
                         ErrorOr<std::vector<uint8_t>> R) {
            if (!R) {
              Complete(R.error());
              return;
            }
            Complete(Value::ref(bytesToArray(TheVm, *R)));
          });
        });
      });
  Vm.registerNative("doppio/net/Socket", "close", "(I)V",
                    [Sockets](NativeContext &Ctx) {
                      auto It = Sockets->find(Ctx.Args[0].I);
                      if (It != Sockets->end()) {
                        It->second->close();
                        Sockets->erase(It);
                      }
                    });
}

} // namespace

void jvm::installCoreClasses(Jvm &Vm) {
  registerObjectNatives(Vm);
  registerStringNatives(Vm);
  registerSystemNatives(Vm);
  registerMathAndNumberNatives(Vm);
  registerThreadNatives(Vm);
  registerUnsafeAndInteropNatives(Vm);
  registerFileNatives(Vm);
  registerSocketNatives(Vm);

  defineObjectAndCore(Vm);
  defineThrowables(Vm);
  defineSystemIo(Vm);
  defineNumericsAndMath(Vm);
  defineThreading(Vm);
  defineUnsafeAndInterop(Vm);
}
