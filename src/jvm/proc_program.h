//===- jvm/proc_program.h - JVM guests as processes --------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges DoppioJVM into the process subsystem: makeJvmProgram wraps a
/// (main class, args, options) triple as a proc::Program, so a JVM guest
/// spawns, pipes, signals, and waits exactly like a native program. The
/// Jvm is constructed inside start() over the owning process's state
/// record — its System.in/out/err therefore route through the process fd
/// table (jcl.cpp consults the rt::Process hooks), and main()'s exit code
/// becomes the process exit code via Process::makeExitFn.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_PROC_PROGRAM_H
#define DOPPIO_JVM_PROC_PROGRAM_H

#include "doppio/proc/checkpoint.h"
#include "doppio/proc/proc.h"
#include "jvm/jvm.h"

namespace doppio {
namespace jvm {

/// What to run: java MainClass Args... with Options.
struct JvmProgramSpec {
  std::string MainClass;
  std::vector<std::string> Args;
  JvmOptions Options;
};

/// A proc::Program backed by a fresh DoppioJVM instance. JVM programs are
/// checkpointable (DESIGN.md §16): canCheckpoint() reports the VM's
/// quiescence, checkpoint() wraps the spec and the serialized VM image
/// under the "jvm" kind tag.
std::unique_ptr<rt::proc::Program> makeJvmProgram(JvmProgramSpec Spec);

/// Binds the "jvm" image kind in \p Reg, so checkpointProcess blobs of
/// JVM programs revive through restoreProcess — locally or after a
/// cluster migration. The destination's classpath must serve the same
/// class files (the image re-loads them through the Doppio fs).
void registerJvmRestore(rt::proc::CheckpointRegistry &Reg);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_PROC_PROGRAM_H
