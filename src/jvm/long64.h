//===- jvm/long64.h - Software 64-bit integers (§8) ---------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JavaScript numbers are IEEE doubles: there is no 64-bit integer type, so
/// "DoppioJVM uses a comprehensive software implementation of 64-bit
/// integers to bring the long data type into the browser, but it is
/// extremely slow when compared to normal numeric operations" (§8). This is
/// that implementation: a long is a pair of 32-bit halves, and every
/// arithmetic operation is built from operations a JS engine could perform
/// (32-bit chunks with manual carries, shift-subtract division). The
/// DoppioJS execution mode routes all JVM `long` bytecodes through these
/// functions; the NativeHotspot baseline uses hardware int64 instead, which
/// is a large part of the measured gap on long-heavy benchmarks (pidigits,
/// Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_LONG64_H
#define DOPPIO_JVM_LONG64_H

#include <cstdint>

namespace doppio {
namespace jvm {

/// A JVM long as two 32-bit halves, as a JS runtime must represent it.
struct Long64 {
  uint32_t Lo = 0;
  uint32_t Hi = 0;

  static Long64 make(uint32_t Lo, uint32_t Hi) { return {Lo, Hi}; }
  static Long64 fromInt32(int32_t V) {
    return {static_cast<uint32_t>(V), V < 0 ? 0xFFFFFFFFu : 0u};
  }
  static Long64 fromDouble(double V);

  /// Bit-identical bridge to hardware int64 (simulation glue; not part of
  /// the "JS-visible" API).
  static Long64 fromBits(int64_t Bits) {
    return {static_cast<uint32_t>(Bits),
            static_cast<uint32_t>(static_cast<uint64_t>(Bits) >> 32)};
  }
  int64_t bits() const {
    return static_cast<int64_t>(
        (static_cast<uint64_t>(Hi) << 32) | Lo);
  }

  bool isNegative() const { return (Hi & 0x80000000u) != 0; }
  bool isZero() const { return Lo == 0 && Hi == 0; }

  int32_t toInt32() const { return static_cast<int32_t>(Lo); }
  double toDouble() const;
  float toFloat() const { return static_cast<float>(toDouble()); }
};

// Arithmetic, built from 32-bit pieces as the JS implementation must be.
Long64 addLong(Long64 A, Long64 B);
Long64 subLong(Long64 A, Long64 B);
Long64 negLong(Long64 A);
Long64 mulLong(Long64 A, Long64 B);
/// Signed division with JVM semantics (MIN/-1 wraps). \p B must be nonzero
/// — the interpreter throws ArithmeticException before calling.
Long64 divLong(Long64 A, Long64 B);
Long64 remLong(Long64 A, Long64 B);

Long64 andLong(Long64 A, Long64 B);
Long64 orLong(Long64 A, Long64 B);
Long64 xorLong(Long64 A, Long64 B);
/// Shifts mask the count to 6 bits, per the JVM specification.
Long64 shlLong(Long64 A, int32_t Count);
Long64 shrLong(Long64 A, int32_t Count);  // Arithmetic.
Long64 ushrLong(Long64 A, int32_t Count); // Logical.

/// Three-way signed comparison: -1, 0, or 1 (the lcmp bytecode).
int32_t cmpLong(Long64 A, Long64 B);
inline bool eqLong(Long64 A, Long64 B) {
  return A.Lo == B.Lo && A.Hi == B.Hi;
}

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_LONG64_H
