//===- jvm/value.h - JVM runtime values & execution modes --------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the interpreter, plus the execution-mode switch that
/// distinguishes the two systems the paper compares:
///
///  - DoppioJS: the paper's system. Values behave as they must on a
///    JavaScript engine — ints are doubles wrapped with ToInt32, longs go
///    through the software Long64 implementation, objects are name-keyed
///    dictionaries (§6.7), and execution is segmented with suspend checks
///    at call boundaries (§6.1).
///
///  - NativeHotspot: the baseline stand-in for "Oracle's HotSpot JVM
///    interpreter" (§7.1) — the same interpreter core with hardware int32/
///    int64 arithmetic, slot-indexed object fields, and no browser.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_VALUE_H
#define DOPPIO_JVM_VALUE_H

#include "jvm/long64.h"

#include <cstdint>

namespace doppio {
namespace jvm {

enum class ExecutionMode {
  DoppioJS,
  NativeHotspot,
};

inline const char *executionModeName(ExecutionMode M) {
  return M == ExecutionMode::DoppioJS ? "doppiojs" : "nativehotspot";
}

class Object;

/// One operand-stack or local-variable slot. Category-2 values (long,
/// double) occupy a single Value here plus a padding slot where the spec
/// requires two slots.
struct Value {
  enum class Kind : uint8_t {
    Empty, // Unset local / category-2 padding.
    Int,
    Long,
    Float,
    Double,
    Ref,
    RetAddr, // jsr return address.
  };

  Kind K = Kind::Empty;
  union {
    int32_t I;
    int64_t J; // Long bit pattern; DoppioJS mode views it as Long64 halves.
    float F;
    double D;
    Object *R;
    uint32_t Ret;
  };

  Value() : J(0) {}

  static Value intVal(int32_t V) {
    Value X;
    X.K = Kind::Int;
    X.I = V;
    return X;
  }
  static Value longVal(int64_t Bits) {
    Value X;
    X.K = Kind::Long;
    X.J = Bits;
    return X;
  }
  static Value longVal(Long64 L) { return longVal(L.bits()); }
  static Value floatVal(float V) {
    Value X;
    X.K = Kind::Float;
    X.F = V;
    return X;
  }
  static Value doubleVal(double V) {
    Value X;
    X.K = Kind::Double;
    X.D = V;
    return X;
  }
  static Value ref(Object *O) {
    Value X;
    X.K = Kind::Ref;
    X.R = O;
    return X;
  }
  static Value null() { return ref(nullptr); }
  static Value retAddr(uint32_t Pc) {
    Value X;
    X.K = Kind::RetAddr;
    X.Ret = Pc;
    return X;
  }

  bool isCategory2() const { return K == Kind::Long || K == Kind::Double; }
  Long64 asLong64() const { return Long64::fromBits(J); }
};

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_VALUE_H
