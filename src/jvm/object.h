//===- jvm/object.h - JVM objects and arrays (§6.7) ---------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "DoppioJVM maps JVM objects to JavaScript objects, where each object
/// contains a reference to its class and a dictionary that contains all of
/// its fields keyed on their names. JVM arrays ... are mapped to a
/// JavaScript object that contains an array of values and a reference to
/// the special array class" (§6.7). In DoppioJS mode fields live in exactly
/// that dictionary; in NativeHotspot mode they live in slot-indexed
/// storage, which is part of the baseline's speed advantage.
///
/// Every object can lazily grow a monitor (owner, entry count, entry set,
/// wait set) for synchronized blocks and Object.wait/notify (§6.2).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_OBJECT_H
#define DOPPIO_JVM_OBJECT_H

#include "jvm/value.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace doppio {
namespace jvm {

class Klass;

/// Monitor state attached lazily to objects used for locking.
struct Monitor {
  /// Owning thread id, -1 when free.
  int32_t OwnerTid = -1;
  int32_t EntryCount = 0;
  /// Threads blocked trying to enter.
  std::vector<int32_t> EntrySet;
  /// Threads parked in Object.wait.
  std::vector<int32_t> WaitSet;
};

/// A JVM object instance.
class Object {
public:
  Object(Klass *K, ExecutionMode Mode, uint32_t SlotCount)
      : K(K), Mode(Mode) {
    if (Mode == ExecutionMode::NativeHotspot)
      Slots.resize(SlotCount);
  }
  virtual ~Object();

  Klass *klass() const { return K; }
  ExecutionMode mode() const { return Mode; }

  // DoppioJS-mode access: the name-keyed dictionary of §6.7.
  Value getFieldByName(const std::string &Name) const {
    auto It = Dict.find(Name);
    return It == Dict.end() ? Value() : It->second;
  }
  void setFieldByName(const std::string &Name, Value V) { Dict[Name] = V; }

  // Inline-cache acceleration for the dictionary mode (DESIGN.md §18):
  // per-object cells indexed by the klass's fastFieldId, each pointing at
  // this object's Dict node for that field. Dict nodes are never erased,
  // so an installed cell stays valid for the object's lifetime. The cell
  // table is a derived cache — the checkpoint serializer ignores it and
  // restored objects re-install cells on first miss.
  Value *fastCell(int Id) const {
    return Id >= 0 && static_cast<size_t>(Id) < FastCells.size()
               ? FastCells[Id]
               : nullptr;
  }
  void setFastCell(int Id, Value *Cell) {
    if (static_cast<size_t>(Id) >= FastCells.size())
      FastCells.resize(Id + 1, nullptr);
    FastCells[Id] = Cell;
  }
  /// Address of the Dict node for \p Name, or null when the field has
  /// never been written (a getfield miss must NOT insert: default-value
  /// reads leave the dictionary — and checkpoint images — untouched).
  Value *dictNode(const std::string &Name) {
    auto It = Dict.find(Name);
    return It == Dict.end() ? nullptr : &It->second;
  }

  // NativeHotspot-mode access: precomputed slot offsets.
  Value getSlot(uint32_t Index) const { return Slots[Index]; }
  void setSlot(uint32_t Index, Value V) { Slots[Index] = V; }

  /// The object's monitor, created on first use.
  Monitor &monitor() {
    if (!Mon)
      Mon = std::make_unique<Monitor>();
    return *Mon;
  }
  bool hasMonitor() const { return Mon != nullptr; }
  const Monitor *monitorIfAny() const { return Mon.get(); }

  // Whole-storage views for the checkpoint serializer (DESIGN.md §16).
  const std::unordered_map<std::string, Value> &fieldDict() const {
    return Dict;
  }
  const std::vector<Value> &slotStorage() const { return Slots; }
  std::vector<Value> &slotStorage() { return Slots; }

  virtual bool isArray() const { return false; }

private:
  Klass *K;
  ExecutionMode Mode;
  std::unordered_map<std::string, Value> Dict; // DoppioJS fields.
  std::vector<Value> Slots;                    // NativeHotspot fields.
  std::vector<Value *> FastCells; // Inline-cache cells into Dict (§18).
  std::unique_ptr<Monitor> Mon;
};

/// A JVM array: element storage plus the array class reference (§6.7).
class ArrayObject : public Object {
public:
  ArrayObject(Klass *ArrayKlass, ExecutionMode Mode, std::string ElemDesc,
              int32_t Length)
      : Object(ArrayKlass, Mode, 0), ElemDesc(std::move(ElemDesc)),
        Elems(Length, defaultElement(this->ElemDesc)) {}

  bool isArray() const override { return true; }

  int32_t length() const { return static_cast<int32_t>(Elems.size()); }
  Value get(int32_t Index) const { return Elems[Index]; }
  void set(int32_t Index, Value V) { Elems[Index] = V; }
  const std::string &elemDesc() const { return ElemDesc; }
  std::vector<Value> &elems() { return Elems; }

  /// Zero/null of the element type.
  static Value defaultElement(const std::string &Desc);

private:
  std::string ElemDesc;
  std::vector<Value> Elems;
};

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_OBJECT_H
