//===- jvm/exec_profile.cpp - Unified execution-profile knobs -------------==//

#include "jvm/exec_profile.h"

#include <cstdlib>
#include <vector>

using namespace doppio;
using namespace doppio::jvm;

ExecProfile ExecProfile::baseline() {
  ExecProfile P;
  P.Name = "baseline";
  P.TrustVerifier = false;
  P.SuspendChecks = SuspendCheckMode::CallBoundary;
  P.Quicken = false;
  P.InlineCaches = false;
  return P;
}

ExecProfile ExecProfile::verified() {
  ExecProfile P;
  P.Name = "verified";
  P.TrustVerifier = true;
  P.SuspendChecks = SuspendCheckMode::CallBoundary;
  P.Quicken = false;
  P.InlineCaches = false;
  return P;
}

ExecProfile ExecProfile::placed() {
  ExecProfile P = verified();
  P.Name = "placed";
  P.SuspendChecks = SuspendCheckMode::Placed;
  return P;
}

ExecProfile ExecProfile::quick() {
  ExecProfile P = verified();
  P.Name = "quick";
  P.Quicken = true;
  P.InlineCaches = true;
  return P;
}

namespace {

bool parseBool(const std::string &V, bool &Out) {
  if (V == "0" || V == "false") {
    Out = false;
    return true;
  }
  if (V == "1" || V == "true") {
    Out = true;
    return true;
  }
  return false;
}

bool parseSuspend(const std::string &V, SuspendCheckMode &Out) {
  if (V == "call")
    Out = SuspendCheckMode::CallBoundary;
  else if (V == "everywhere")
    Out = SuspendCheckMode::Everywhere;
  else if (V == "placed")
    Out = SuspendCheckMode::Placed;
  else
    return false;
  return true;
}

bool applyPreset(const std::string &Name, ExecProfile &Out) {
  if (Name == "baseline")
    Out = ExecProfile::baseline();
  else if (Name == "verified")
    Out = ExecProfile::verified();
  else if (Name == "placed")
    Out = ExecProfile::placed();
  else if (Name == "quick")
    Out = ExecProfile::quick();
  else
    return false;
  return true;
}

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

bool ExecProfile::parse(const std::string &Spec, ExecProfile &Out,
                        std::string *Err) {
  ExecProfile P = Out;
  std::vector<std::string> Toks;
  for (size_t At = 0; At <= Spec.size();) {
    size_t Comma = Spec.find(',', At);
    if (Comma == std::string::npos) {
      Toks.push_back(Spec.substr(At));
      break;
    }
    Toks.push_back(Spec.substr(At, Comma - At));
    At = Comma + 1;
  }
  bool First = true;
  for (const std::string &Tok : Toks) {
    if (Tok.empty())
      continue;
    size_t Eq = Tok.find('=');
    if (Eq == std::string::npos) {
      // A bare token must be a preset, and only in leading position so
      // later key=value overrides always win.
      if (!First)
        return fail(Err, "preset '" + Tok + "' must come first");
      if (!applyPreset(Tok, P))
        return fail(Err, "unknown execution profile '" + Tok + "'");
    } else {
      std::string Key = Tok.substr(0, Eq), V = Tok.substr(Eq + 1);
      bool Ok = true;
      if (Key == "trust")
        Ok = parseBool(V, P.TrustVerifier);
      else if (Key == "suspend")
        Ok = parseSuspend(V, P.SuspendChecks);
      else if (Key == "quicken")
        Ok = parseBool(V, P.Quicken);
      else if (Key == "ic")
        Ok = parseBool(V, P.InlineCaches);
      else
        return fail(Err, "unknown profile key '" + Key + "'");
      if (!Ok)
        return fail(Err, "bad value '" + V + "' for profile key '" + Key +
                             "'");
      P.Name = "custom";
    }
    First = false;
  }
  Out = std::move(P);
  return true;
}

void ExecProfile::applyEnv() {
  if (const char *Spec = std::getenv("DOPPIO_JVM_PROFILE"))
    parse(Spec, *this); // Unknown specs are ignored, not fatal.
  // Legacy single-knob variables, honored after the profile so existing
  // scripts keep working unchanged.
  if (const char *Trust = std::getenv("DOPPIO_JVM_TRUST_VERIFIER"))
    TrustVerifier = std::string(Trust) != "0";
  if (const char *Placement = std::getenv("DOPPIO_JVM_SUSPEND_PLACEMENT"))
    parseSuspend(Placement, SuspendChecks);
}

std::string ExecProfile::describe() const {
  const char *Suspend = SuspendChecks == SuspendCheckMode::CallBoundary
                            ? "call"
                            : SuspendChecks == SuspendCheckMode::Everywhere
                                  ? "everywhere"
                                  : "placed";
  return Name + "(trust=" + (TrustVerifier ? "1" : "0") + ", suspend=" +
         Suspend + ", quicken=" + (Quicken ? "1" : "0") + ", ic=" +
         (InlineCaches ? "1" : "0") + ")";
}
