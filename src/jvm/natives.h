//===- jvm/natives.h - Native method interface (§6.3) -------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The Java Class Library exposes JVM interfaces to a wide variety of
/// native functionality ... DoppioJVM implements a wide variety of these
/// native methods directly in JavaScript" (§6.3). Here, native methods are
/// host functions receiving a NativeContext. When a native needs an
/// asynchronous browser API it calls blockWithResult: the calling green
/// thread blocks (only that thread — the event loop stays free), and the
/// asynchronous completion delivers the return value, so the method
/// "retains its JVM-level synchronous semantics".
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_NATIVES_H
#define DOPPIO_JVM_NATIVES_H

#include "doppio/errors.h"
#include "jvm/value.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {

class Jvm;
class JvmThread;
struct Method;

/// Delivered by an asynchronous native's completion: the method's return
/// value, or an error the interpreter rethrows as java.io.IOException.
using NativeCompletion = std::function<void(rt::ErrorOr<Value>)>;

/// Execution context handed to a native method body.
struct NativeContext {
  Jvm &Vm;
  JvmThread &Thread;
  Method &M;
  /// Arguments; the receiver (for instance methods) is Args[0].
  std::vector<Value> Args;

  // Outcome (at most one of these):
  Value Ret;
  bool HasRet = false;
  /// Async block: the completion passed to blockWithResult will deliver
  /// the result and resume the thread.
  bool Blocked = false;
  /// Monitor-style block (Object.wait): nothing auto-resumes; a notify or
  /// timeout does.
  bool BlockedOnMonitor = false;
  /// Pending JVM exception (class internal name + message).
  std::optional<std::pair<std::string, std::string>> Thrown;

  NativeContext(Jvm &Vm, JvmThread &Thread, Method &M)
      : Vm(Vm), Thread(Thread), M(M) {}

  void setReturn(Value V) {
    Ret = V;
    HasRet = true;
  }

  void throwEx(std::string ClassName, std::string Message) {
    Thrown = {std::move(ClassName), std::move(Message)};
  }

  /// Performs the §4.2 dance: marks this call blocked, and hands \p Start
  /// a completion. \p Start initiates the asynchronous browser operation
  /// and arranges for the completion to run from its callback. Defined in
  /// interpreter.cpp (needs Jvm internals).
  void blockWithResult(
      std::function<void(NativeCompletion Complete)> Start);
};

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_NATIVES_H
