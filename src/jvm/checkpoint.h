//===- jvm/checkpoint.h - Whole-VM snapshot & revive -------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md and DESIGN.md §16.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpointing a running DoppioJVM. Because every suspension in the
/// system is a reified continuation over *explicit* guest state — heap
/// frames (§6.1), monitor sets (§6.2), thread records (§4.3) — a quiescent
/// VM is fully described by data: no host stack ever holds guest progress.
/// serializeJvm() walks that data into a versioned image; restoreJvm()
/// rebuilds a fresh VM from it, re-loading class files through the
/// destination's Doppio file system and re-arming parked threads with
/// fresh park continuations.
///
/// Quiescence (checkpointReady) requires: no class load in flight, no
/// thread mid-slice, and every Blocked thread blocked for a *data-borne*
/// reason — monitor entry set, wait set (pending reacquire), or join. A
/// thread blocked on an in-flight asynchronous native (timer, fs, socket)
/// has its wake-up captured in a host closure, which cannot cross the
/// wire; callers retry after the operation settles (EAGAIN).
///
/// Known limits, recorded in DESIGN.md §16: unmanaged-heap contents
/// (sun.misc.Unsafe) and the JS-eval hook do not travel; a timed wait's
/// pending timeout does not re-arm (it becomes a plain wait).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CHECKPOINT_H
#define DOPPIO_JVM_CHECKPOINT_H

#include "jvm/jvm.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {

/// True when \p Vm can be checkpointed right now. Otherwise \p WhyNot
/// (when non-null) receives the blocking condition.
bool checkpointReady(Jvm &Vm, std::string *WhyNot = nullptr);

/// Serializes the complete guest-visible VM state — classes, statics,
/// object arena, monitors, intern/mirror/identity tables, and every
/// thread's explicit call stack — into a versioned image. EAGAIN when
/// checkpointReady() is false.
rt::ErrorOr<std::vector<uint8_t>> serializeJvm(Jvm &Vm);

/// Rebuilds \p Vm — which must be freshly constructed with the same
/// JvmOptions, nothing run — from \p Image. Asynchronous: class files
/// re-load through the VM's file system (the destination's classpath must
/// serve the same classes). \p ExitFn becomes the revived main thread's
/// completion (Process::makeExitFn); \p Done reports the restore outcome
/// once every thread is re-armed.
void restoreJvm(Jvm &Vm, std::vector<uint8_t> Image,
                std::function<void(int)> ExitFn,
                std::function<void(rt::ErrorOr<bool>)> Done);

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CHECKPOINT_H
