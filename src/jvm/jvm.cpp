//===- jvm/jvm.cpp - DoppioJVM facade -------------------------------------==//

#include "jvm/jvm.h"

#include "jvm/interpreter.h"

#include <cassert>
#include <cstdlib>

using namespace doppio;
using namespace doppio::jvm;
using rt::ApiError;
using rt::Errno;
using rt::ErrorOr;

Jvm::Jvm(browser::BrowserEnv &Env, rt::fs::FileSystem &Fs, rt::Process &Proc,
         JvmOptions InOptions)
    : Env(Env), Fs(Fs), Proc(Proc), Options(std::move(InOptions)),
      Susp(Env), Pool(Env, Susp), Heap(Env, Options.HeapBytes),
      Loader(*this) {
  // The one env override point for execution knobs (exec_profile.h):
  // DOPPIO_JVM_PROFILE plus the legacy single-knob variables.
  Options.Exec.applyEnv();
  DispatchCostNs =
      Options.Exec.Quicken ? Options.QuickOpCostNs : Options.OpCostNs;
  // Resolved once, pointer-increment hot path (registry.h).
  std::string Prefix = Env.metrics().claimPrefix("jvm");
  SuspendChecksExecutedC =
      &Env.metrics().counter(Prefix + ".suspend_checks_executed");
  SuspendChecksElidedC =
      &Env.metrics().counter(Prefix + ".suspend_checks_elided");
  IcHitsC = &Env.metrics().counter(Prefix + ".ic.hits");
  IcMissesC = &Env.metrics().counter(Prefix + ".ic.misses");
  for (const std::string &Dir : Options.Classpath)
    Loader.addClasspathEntry(Dir);
  installCoreClasses(*this);
}

void Jvm::noteSuspendCheckExecuted(uint64_t Span) {
  SuspendChecksExecutedC->inc();
  if (Span > Stats.MaxOpsBetweenChecks)
    Stats.MaxOpsBetweenChecks = Span;
  // The placement proof's dynamic half: in Placed mode no span of
  // dispatched bytecodes between two checks may exceed the largest
  // statically proven bound K (DESIGN.md §17). Unproven frames check
  // every instruction, so only proven methods can grow a span.
  assert((Options.Exec.SuspendChecks != SuspendCheckMode::Placed ||
          Loader.provenBoundMax() == 0 ||
          Span <= Loader.provenBoundMax()) &&
         "suspend-check span exceeded the statically proven bound K");
}

Jvm::~Jvm() = default;

void Jvm::registerNative(const std::string &ClassName,
                         const std::string &Name, const std::string &Desc,
                         NativeFn Fn) {
  NativeRegistry[ClassName + "." + Name + Desc] = std::move(Fn);
}

NativeFn Jvm::resolveNative(const Klass &K, const Method &M) const {
  auto It = NativeRegistry.find(K.Name + "." + M.Name + M.Descriptor);
  if (It == NativeRegistry.end())
    return nullptr; // UnsatisfiedLinkError when called (§6.3).
  return It->second;
}

Object *Jvm::allocObject(Klass *K) {
  ++Stats.ObjectsAllocated;
  // A JS engine boxes every object; charge a small allocation cost.
  if (Options.Mode == ExecutionMode::DoppioJS)
    Env.chargeCompute(Options.OpCostNs);
  Arena.push_back(
      std::make_unique<Object>(K, Options.Mode, K->InstanceSlotCount));
  return Arena.back().get();
}

ArrayObject *Jvm::allocArray(Klass *ArrayKlass, const std::string &ElemDesc,
                             int32_t Length) {
  ++Stats.ObjectsAllocated;
  if (Options.Mode == ExecutionMode::DoppioJS)
    Env.chargeCompute(Options.OpCostNs + Length / 8);
  Arena.push_back(std::make_unique<ArrayObject>(ArrayKlass, Options.Mode,
                                                ElemDesc, Length));
  return static_cast<ArrayObject *>(Arena.back().get());
}

ArrayObject *Jvm::allocArrayOf(const std::string &ElemDesc, int32_t Length) {
  Klass *AK = Loader.lookup("[" + ElemDesc);
  assert(AK && "array class could not be synthesized");
  return allocArray(AK, ElemDesc, Length);
}

Object *Jvm::newString(const std::string &Utf8) {
  Klass *StringK = Loader.lookup("java/lang/String");
  assert(StringK && "core classes not installed");
  Object *S = allocObject(StringK);
  ArrayObject *Chars = allocArrayOf("C", static_cast<int32_t>(Utf8.size()));
  for (size_t I = 0; I != Utf8.size(); ++I)
    Chars->set(static_cast<int32_t>(I),
               Value::intVal(static_cast<uint8_t>(Utf8[I])));
  if (Options.Mode == ExecutionMode::DoppioJS) {
    S->setFieldByName("value", Value::ref(Chars));
  } else {
    FieldInfo *FI = StringK->findField("value");
    assert(FI && "String.value missing");
    S->setSlot(FI->SlotIndex, Value::ref(Chars));
  }
  return S;
}

Object *Jvm::internString(const std::string &Utf8) {
  auto It = InternedStrings.find(Utf8);
  if (It != InternedStrings.end())
    return It->second;
  Object *S = newString(Utf8);
  InternedStrings.emplace(Utf8, S);
  return S;
}

std::string Jvm::stringValue(Object *Str) const {
  if (!Str)
    return "<null>";
  Value V;
  if (Options.Mode == ExecutionMode::DoppioJS) {
    V = Str->getFieldByName("value");
  } else {
    Klass *K = Str->klass();
    FieldInfo *FI = K->findField("value");
    if (!FI)
      return "<not-a-string>";
    V = Str->getSlot(FI->SlotIndex);
  }
  if (V.K != Value::Kind::Ref || !V.R || !V.R->isArray())
    return "<not-a-string>";
  auto *Chars = static_cast<ArrayObject *>(V.R);
  std::string Out;
  Out.reserve(Chars->length());
  for (int32_t I = 0; I != Chars->length(); ++I)
    Out.push_back(static_cast<char>(Chars->get(I).I & 0xFF));
  return Out;
}

Object *Jvm::mirrorOf(Klass *K) {
  auto It = Mirrors.find(K);
  if (It != Mirrors.end())
    return It->second;
  Klass *ClassK = Loader.lookup("java/lang/Class");
  assert(ClassK && "core classes not installed");
  Object *Mirror = allocObject(ClassK);
  Mirrors.emplace(K, Mirror);
  MirrorToKlass.emplace(Mirror, K);
  return Mirror;
}

Klass *Jvm::mirroredClass(Object *Mirror) const {
  auto It = MirrorToKlass.find(Mirror);
  return It == MirrorToKlass.end() ? nullptr : It->second;
}

int32_t Jvm::identityHash(Object *O) {
  if (!O)
    return 0;
  auto [It, Inserted] = IdentityHashes.try_emplace(
      O, static_cast<int32_t>(
             static_cast<uint32_t>(NextIdentityHash) * 2654435761u));
  if (Inserted)
    ++NextIdentityHash;
  return It->second;
}

Object *Jvm::makeThrowable(const std::string &ClassName,
                           const std::string &Message) {
  Klass *K = Loader.lookup(ClassName);
  if (!K) {
    // Unknown (user-defined, unloaded) type: degrade to RuntimeException.
    K = Loader.lookup("java/lang/RuntimeException");
    assert(K && "core classes not installed");
  }
  Object *Ex = allocObject(K);
  Object *Msg = Message.empty() ? nullptr : newString(Message);
  if (Options.Mode == ExecutionMode::DoppioJS) {
    Ex->setFieldByName("detailMessage", Value::ref(Msg));
  } else if (FieldInfo *FI = K->findField("detailMessage")) {
    Ex->setSlot(FI->SlotIndex, Value::ref(Msg));
  }
  return Ex;
}

JvmThread *Jvm::threadForTid(int32_t Tid) {
  if (Tid < 0 || static_cast<size_t>(Tid) >= Threads.size())
    return nullptr;
  return Threads[Tid];
}

JvmThread *Jvm::threadForObject(Object *ThreadObj) {
  auto It = ThreadObjToTid.find(ThreadObj);
  return It == ThreadObjToTid.end() ? nullptr : threadForTid(It->second);
}

int32_t Jvm::spawnThread(Method *M, std::vector<Value> Args,
                         Object *ThreadObj) {
  auto Thread = std::make_unique<JvmThread>(
      *this, static_cast<int32_t>(Threads.size()));
  JvmThread *Raw = Thread.get();
  Raw->ThreadObj = ThreadObj;
  Raw->pushEntryFrame(M, std::move(Args));
  int32_t Tid = static_cast<int32_t>(Pool.spawn(std::move(Thread)));
  assert(Tid == static_cast<int32_t>(Threads.size()) &&
         "pool and thread table diverged");
  Threads.push_back(Raw);
  if (ThreadObj)
    ThreadObjToTid[ThreadObj] = Tid;
  return Tid;
}

void Jvm::noteThreadFinished(JvmThread &T) {
  for (int32_t Waiter : T.JoinWaiters)
    if (Pool.state(Waiter) == rt::ThreadState::Blocked)
      Pool.unblock(Waiter);
  T.JoinWaiters.clear();
  if (T.tid() == MainTid) {
    if (ExitCode == -1) // System.exit may have set it already.
      ExitCode = T.uncaughtException() ? 1 : 0;
    if (MainDone) {
      auto Done = std::move(MainDone);
      MainDone = nullptr;
      Done(ExitCode);
    }
  }
}

void Jvm::flushOpCharges(uint64_t DispatchOps, uint64_t ExtraOps) {
  if ((DispatchOps == 0 && ExtraOps == 0) ||
      Options.Mode != ExecutionMode::DoppioJS)
    return;
  // One charge per flush: under a non-quick profile DispatchCostNs ==
  // OpCostNs and this totals exactly (DispatchOps + ExtraOps) *
  // OpCostNs — the historical single-counter charge, bit for bit.
  Env.chargeCompute(DispatchOps * DispatchCostNs +
                    ExtraOps * Options.OpCostNs);
}

void Jvm::runMain(const std::string &MainClass,
                  const std::vector<std::string> &Args,
                  std::function<void(int)> Done) {
  MainDone = std::move(Done);
  Loader.loadAsync(MainClass, [this, MainClass,
                               Args](ErrorOr<Klass *> R) {
    auto Fail = [this](const std::string &Msg) {
      Proc.writeStderr("Error: " + Msg + "\n");
      ExitCode = 1;
      if (MainDone) {
        auto Done = std::move(MainDone);
        MainDone = nullptr;
        Done(1);
      }
    };
    if (!R) {
      Fail("Could not find or load main class " + MainClass + " (" +
           R.error().message() + ")");
      return;
    }
    Method *Main = (*R)->findMethod("main", "([Ljava/lang/String;)V");
    if (!Main || !Main->isStatic()) {
      Fail("Main method not found in class " + MainClass);
      return;
    }
    ArrayObject *ArgArray = allocArrayOf(
        "Ljava/lang/String;", static_cast<int32_t>(Args.size()));
    for (size_t I = 0; I != Args.size(); ++I)
      ArgArray->set(static_cast<int32_t>(I),
                    Value::ref(internString(Args[I])));
    if (Main->isNative()) {
      Fail("main must be a bytecode method");
      return;
    }
    MainTid = spawnThread(Main, {Value::ref(ArgArray)}, nullptr);
  });
}

int Jvm::runMainToCompletion(const std::string &MainClass,
                             const std::vector<std::string> &Args) {
  int Result = -1;
  runMain(MainClass, Args, [&Result](int Code) { Result = Code; });
  Env.loop().run();
  return Result;
}
