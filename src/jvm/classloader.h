//===- jvm/classloader.h - Dynamic class loading (§6.4) -----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "When a bytecode instruction references a class for the first time, the
/// JVM invokes a complex dynamic class loading process... The DoppioJVM
/// class loader uses the Doppio file system and its Buffer module to
/// appropriately download and parse JVM class files" (§6.4). The class
/// path is a list of Doppio-file-system directories (typically an XHR
/// backend mount, so each class file is downloaded lazily on first
/// reference), plus a registry of built-in classes defined directly by the
/// embedder (the synthesized class library).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_CLASSLOADER_H
#define DOPPIO_JVM_CLASSLOADER_H

#include "jvm/classfile/verifier.h"
#include "jvm/klass.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace doppio {
namespace jvm {

class Jvm;

/// Loads, links, and owns Klass objects.
class ClassLoader {
public:
  explicit ClassLoader(Jvm &Vm) : Vm(Vm) {}

  /// Adds a file-system directory ("/classes") searched for
  /// "<dir>/<internal/name>.class".
  void addClasspathEntry(std::string Dir) {
    Classpath.push_back(std::move(Dir));
  }

  /// Synchronous lookup of an already-loaded class; null if absent. Array
  /// classes ("[I", "[Ljava/lang/String;") are synthesized on demand when
  /// their element class (if any) is loaded.
  Klass *lookup(const std::string &Name);

  /// Loads \p Name (and its superclass chain) through the Doppio file
  /// system, asynchronously. \p Done runs once the class is linked, or
  /// with NoClassDefFound-style ENOENT.
  void loadAsync(const std::string &Name,
                 std::function<void(rt::ErrorOr<Klass *>)> Done);

  /// Defines a built-in class from an in-memory class file. Superclasses
  /// must already be defined. Asserts on failure (programming error).
  Klass *defineBuiltin(ClassFile Cf);

  /// Parses and links class bytes that arrived by other means (§6.8's
  /// embedding API). Supers must already be loaded.
  rt::ErrorOr<Klass *> defineFromBytes(const std::vector<uint8_t> &Bytes);

  size_t loadedCount() const { return Classes.size(); }
  /// True while any loadAsync is in flight (a checkpoint must wait).
  bool hasPendingLoads() const { return !Pending.empty(); }
  /// Every loaded class in name order (the checkpoint walks this).
  std::vector<Klass *> loadedClasses() const {
    std::vector<Klass *> Out;
    Out.reserve(Classes.size());
    for (const auto &[Name, K] : Classes)
      Out.push_back(K.get());
    return Out;
  }
  /// Number of class files fetched through the file system.
  uint64_t fileLoads() const { return FileLoads; }

  /// Placement-analysis tallies across every linked method (DESIGN.md
  /// §17): how many bodies landed on each AnalysisStatus.
  uint64_t analysisCount(AnalysisStatus S) const {
    return AnalysisCounts[static_cast<size_t>(S)];
  }
  /// Max proven between-checks bound K over all loaded methods: the
  /// global dynamic-span bound the interpreter asserts in Placed mode.
  uint32_t provenBoundMax() const { return ProvenBoundMax; }

private:
  /// Links \p Cf and marks each method's Verified bit from \p Known (the
  /// verifier's diagnostics for this class file); when null, the verifier
  /// runs here. Definition paths never reject — a method with diagnostics
  /// merely stays unverified and runs guarded.
  Klass *link(ClassFile Cf, const std::vector<VerifyError> *Known = nullptr);
  /// Runs the CFG/loop placement analysis over every verified method of
  /// \p K, stamping the per-method verdicts (klass.h) and the tallies.
  void analyzePlacement(Klass &K);
  Klass *makeArrayClass(const std::string &Name);
  /// Tries classpath entries starting at \p Index.
  void fetchFromClasspath(
      std::shared_ptr<std::string> Name, size_t Index,
      std::function<void(rt::ErrorOr<std::vector<uint8_t>>)> Done);

  Jvm &Vm;
  std::vector<std::string> Classpath;
  std::map<std::string, std::unique_ptr<Klass>> Classes;
  /// In-flight loads: completions waiting on the same class.
  std::map<std::string,
           std::vector<std::function<void(rt::ErrorOr<Klass *>)>>>
      Pending;
  uint64_t FileLoads = 0;
  uint64_t AnalysisCounts[16] = {};
  uint32_t ProvenBoundMax = 0;
};

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_CLASSLOADER_H
