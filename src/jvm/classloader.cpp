//===- jvm/classloader.cpp ------------------------------------------------==//

#include "jvm/classloader.h"

#include "jvm/classfile/analysis.h"
#include "jvm/classfile/verifier.h"

#include "jvm/jvm.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace doppio;
using namespace doppio::jvm;
using rt::ApiError;
using rt::Errno;
using rt::ErrorOr;

Klass *ClassLoader::lookup(const std::string &Name) {
  auto It = Classes.find(Name);
  if (It != Classes.end())
    return It->second.get();
  if (!Name.empty() && Name[0] == '[')
    return makeArrayClass(Name);
  return nullptr;
}

Klass *ClassLoader::makeArrayClass(const std::string &Name) {
  // "The special array class that the JVM constructs according to the
  // array's component type" (§6.7). Reference element classes must be
  // loaded first; primitive element arrays are always constructible.
  std::string Elem = Name.substr(1);
  if (desc::isReference(Elem)) {
    if (!lookup(desc::toClassName(Elem)))
      return nullptr; // Element class not yet loaded.
  }
  auto K = std::make_unique<Klass>();
  K->Name = Name;
  K->Super = lookup("java/lang/Object");
  assert(K->Super && "array classes require java/lang/Object");
  K->IsArrayClass = true;
  K->ElemDesc = Elem;
  K->Init = Klass::InitState::Initialized;
  Klass *Raw = K.get();
  Classes.emplace(Name, std::move(K));
  return Raw;
}

/// Marks each method's Verified bit: a method earns check-elided
/// execution only when the class carried no class-level diagnostics and
/// none of the method's own. Unverified methods still run — guarded.
static void markVerified(Klass &K, const std::vector<VerifyError> &Errors) {
  bool ClassLevel = false;
  std::set<std::string> Flagged;
  for (const VerifyError &E : Errors) {
    if (E.Method.empty())
      ClassLevel = true;
    else
      Flagged.insert(E.Method);
  }
  for (std::unique_ptr<Method> &M : K.Methods)
    M->Verified =
        M->HasCode && !ClassLevel && Flagged.count(M->key()) == 0;
}

Klass *ClassLoader::link(ClassFile Cf,
                         const std::vector<VerifyError> *Known) {
  std::vector<VerifyError> Computed;
  if (!Known) {
    Computed = verifyClass(Cf);
    Known = &Computed;
  }
  Klass *Super = nullptr;
  if (!Cf.SuperClass.empty()) {
    Super = lookup(Cf.SuperClass);
    assert(Super && "superclass must be linked first");
  }
  std::vector<Klass *> Interfaces;
  for (const std::string &I : Cf.Interfaces) {
    Klass *Iface = lookup(I);
    assert(Iface && "interfaces must be linked first");
    Interfaces.push_back(Iface);
  }
  std::string Name = Cf.ThisClass;
  Jvm &TheVm = Vm;
  std::unique_ptr<Klass> K = linkClass(
      std::move(Cf), Super, std::move(Interfaces),
      [&TheVm](const Klass &InKlass, const Method &M) {
        return TheVm.resolveNative(InKlass, M);
      });
  markVerified(*K, *Known);
  analyzePlacement(*K);
  Klass *Raw = K.get();
  Classes.emplace(Name, std::move(K));
  return Raw;
}

void ClassLoader::analyzePlacement(Klass &K) {
  // Placement rides on the verifier's verdict: only bytecode the
  // dataflow pass proved gets a CFG/loop proof; everything else degrades
  // to checks-everywhere in Placed mode (DESIGN.md §17).
  for (std::unique_ptr<Method> &M : K.Methods) {
    if (!M->HasCode)
      continue;
    MethodAnalysis A =
        analyzeCode(M->Code.Bytecode, M->Code.Handlers, M->Verified);
    M->Placement = A.Status;
    ++AnalysisCounts[static_cast<size_t>(A.Status)];
    if (A.ok()) {
      M->SuspendBoundK = A.BoundK;
      M->SuspendKeep = std::move(A.KeepCheck);
      ProvenBoundMax = std::max(ProvenBoundMax, A.BoundK);
    }
  }
}

Klass *ClassLoader::defineBuiltin(ClassFile Cf) {
  assert(!Classes.count(Cf.ThisClass) && "built-in class defined twice");
  return link(std::move(Cf));
}

ErrorOr<Klass *>
ClassLoader::defineFromBytes(const std::vector<uint8_t> &Bytes) {
  ErrorOr<ClassFile> Cf = readClassFile(Bytes);
  if (!Cf)
    return Cf.error();
  if (Classes.count(Cf->ThisClass))
    return ApiError(Errno::Exists, Cf->ThisClass);
  if (!Cf->SuperClass.empty() && !lookup(Cf->SuperClass))
    return ApiError(Errno::NoEnt, "superclass " + Cf->SuperClass);
  for (const std::string &I : Cf->Interfaces)
    if (!lookup(I))
      return ApiError(Errno::NoEnt, "interface " + I);
  return link(std::move(*Cf));
}

void ClassLoader::fetchFromClasspath(
    std::shared_ptr<std::string> Name, size_t Index,
    std::function<void(ErrorOr<std::vector<uint8_t>>)> Done) {
  if (Index >= Classpath.size()) {
    Done(ApiError(Errno::NoEnt, *Name + ".class"));
    return;
  }
  std::string Path = Classpath[Index] + "/" + *Name + ".class";
  // Each class file arrives through the Doppio file system — with an XHR
  // mount this is the lazy on-demand download of §6.4.
  Vm.fs().readFile(Path, [this, Name, Index,
                          Done](ErrorOr<std::vector<uint8_t>> R) {
    if (R) {
      ++FileLoads;
      Done(std::move(R));
      return;
    }
    fetchFromClasspath(Name, Index + 1, Done);
  });
}

void ClassLoader::loadAsync(const std::string &Name,
                            std::function<void(ErrorOr<Klass *>)> Done) {
  if (Klass *K = lookup(Name)) {
    Done(K);
    return;
  }
  if (!Name.empty() && Name[0] == '[') {
    // Array class: load the element class, then synthesize.
    std::string Elem = Name.substr(1);
    if (!desc::isReference(Elem)) {
      Done(ApiError(Errno::Invalid, "bad array class " + Name));
      return;
    }
    loadAsync(desc::toClassName(Elem),
              [this, Name, Done](ErrorOr<Klass *> R) {
                if (!R) {
                  Done(R.error());
                  return;
                }
                Done(makeArrayClass(Name));
              });
    return;
  }

  // Coalesce concurrent requests for the same class.
  auto [It, IsFirst] = Pending.try_emplace(Name);
  (void)IsFirst;
  It->second.push_back(std::move(Done));
  if (It->second.size() > 1)
    return; // A load is already in flight.

  auto Complete = [this, Name](ErrorOr<Klass *> R) {
    auto PendingIt = Pending.find(Name);
    if (PendingIt == Pending.end())
      return;
    std::vector<std::function<void(ErrorOr<Klass *>)>> Waiters =
        std::move(PendingIt->second);
    Pending.erase(PendingIt);
    for (auto &W : Waiters)
      W(R);
  };

  auto NamePtr = std::make_shared<std::string>(Name);
  fetchFromClasspath(
      NamePtr, 0,
      [this, Name, Complete](ErrorOr<std::vector<uint8_t>> Bytes) {
        if (!Bytes) {
          Complete(Bytes.error());
          return;
        }
        ErrorOr<ClassFile> Cf = readClassFile(*Bytes);
        if (!Cf) {
          Complete(Cf.error());
          return;
        }
        if (Cf->ThisClass != Name) {
          Complete(ApiError(Errno::Invalid,
                            "class file declares " + Cf->ThisClass));
          return;
        }
        // Structural + dataflow verification before linking. Monitor-only
        // diagnostics demote the method to guarded execution rather than
        // rejecting the class (verifier.h).
        auto Violations = std::make_shared<std::vector<VerifyError>>(
            verifyClass(*Cf));
        if (rejectsClass(*Violations)) {
          for (const VerifyError &E : *Violations)
            if (!E.MonitorOnly) {
              Complete(ApiError(Errno::Invalid,
                                "verification failed: " + E.str()));
              return;
            }
        }
        // Load the superclass chain and interfaces, then link. The
        // dependency list is loaded sequentially; cycles among
        // superclasses are rejected by the depth guard in Pending.
        auto Deps = std::make_shared<std::vector<std::string>>();
        if (!Cf->SuperClass.empty())
          Deps->push_back(Cf->SuperClass);
        for (const std::string &I : Cf->Interfaces)
          Deps->push_back(I);
        auto CfShared = std::make_shared<ClassFile>(std::move(*Cf));
        // Self-referencing recursion via shared_ptr so the continuation
        // outlives this scope.
        auto LoadNext =
            std::make_shared<std::function<void(size_t)>>();
        *LoadNext = [this, Deps, CfShared, Violations, Complete,
                     LoadNext](size_t I) {
          if (I == Deps->size()) {
            Complete(link(std::move(*CfShared), Violations.get()));
            return;
          }
          loadAsync((*Deps)[I],
                    [Complete, LoadNext, I](ErrorOr<Klass *> R) {
                      if (!R) {
                        Complete(R.error());
                        return;
                      }
                      (*LoadNext)(I + 1);
                    });
        };
        (*LoadNext)(0);
      });
}
