//===- jvm/proc_program.cpp -----------------------------------------------==//

#include "jvm/proc_program.h"

#include "doppio/cont/snapshot.h"
#include "jvm/checkpoint.h"

namespace doppio {
namespace jvm {

namespace {

constexpr uint32_t JvmProgramMagic = 0x4a505247; // "JPRG"
// v2: TrustVerifier byte replaced by the full ExecProfile (name + every
// knob) plus QuickOpCostNs — a migrated guest must resume under the
// exact profile it checkpointed with.
constexpr uint32_t JvmProgramVersion = 2;

void writeSpec(rt::snap::Writer &W, const JvmProgramSpec &Spec) {
  W.str(Spec.MainClass);
  W.u32(static_cast<uint32_t>(Spec.Args.size()));
  for (const std::string &A : Spec.Args)
    W.str(A);
  W.u8(Spec.Options.Mode == ExecutionMode::DoppioJS ? 0 : 1);
  W.u32(Spec.Options.HeapBytes);
  W.u32(static_cast<uint32_t>(Spec.Options.Classpath.size()));
  for (const std::string &Dir : Spec.Options.Classpath)
    W.str(Dir);
  W.u64(Spec.Options.OpCostNs);
  W.u64(Spec.Options.NativeOpCostNs);
  W.u64(Spec.Options.QuickOpCostNs);
  W.str(Spec.Options.Exec.Name);
  W.u8(Spec.Options.Exec.TrustVerifier ? 1 : 0);
  W.u8(static_cast<uint8_t>(Spec.Options.Exec.SuspendChecks));
  W.u8(Spec.Options.Exec.Quicken ? 1 : 0);
  W.u8(Spec.Options.Exec.InlineCaches ? 1 : 0);
}

JvmProgramSpec readSpec(rt::snap::Reader &R) {
  JvmProgramSpec Spec;
  Spec.MainClass = R.str();
  for (uint32_t N = R.u32(); N != 0 && R.ok(); --N)
    Spec.Args.push_back(R.str());
  Spec.Options.Mode =
      R.u8() == 0 ? ExecutionMode::DoppioJS : ExecutionMode::NativeHotspot;
  Spec.Options.HeapBytes = R.u32();
  Spec.Options.Classpath.clear();
  for (uint32_t N = R.u32(); N != 0 && R.ok(); --N)
    Spec.Options.Classpath.push_back(R.str());
  Spec.Options.OpCostNs = R.u64();
  Spec.Options.NativeOpCostNs = R.u64();
  Spec.Options.QuickOpCostNs = R.u64();
  Spec.Options.Exec.Name = R.str();
  Spec.Options.Exec.TrustVerifier = R.u8() == 1;
  Spec.Options.Exec.SuspendChecks = static_cast<SuspendCheckMode>(R.u8());
  Spec.Options.Exec.Quicken = R.u8() == 1;
  Spec.Options.Exec.InlineCaches = R.u8() == 1;
  return Spec;
}

/// Owns one Jvm for the lifetime of the program object. The program (and
/// with it the Jvm, its thread pool, and any in-flight green threads)
/// lives until the ProcessTable is destroyed — see proc::Program — so a
/// thread-pool tail running after the process exits never dangles.
///
/// With a non-empty \p Image the program is a revived checkpoint: start()
/// rebuilds the VM from the image instead of running main from scratch.
/// Either way the running VM is itself checkpointable again.
class JvmProgram : public rt::proc::Program {
public:
  explicit JvmProgram(JvmProgramSpec Spec, std::vector<uint8_t> Image = {})
      : Spec(std::move(Spec)), Image(std::move(Image)) {}

  std::string name() const override { return "java:" + Spec.MainClass; }

  void start(rt::proc::Process &P) override {
    // The JVM mounts the process's state record, so the stdio hooks the
    // process installed route System.in/out/err through its fd table.
    Vm = std::make_unique<Jvm>(P.env(), P.table().fs(), P.state(),
                               Spec.Options);
    if (Image.empty()) {
      Vm->runMain(Spec.MainClass, Spec.Args, P.makeExitFn());
      return;
    }
    auto ExitFn = P.makeExitFn();
    rt::Process *State = &P.state();
    restoreJvm(*Vm, std::move(Image), ExitFn,
               [ExitFn, State](rt::ErrorOr<bool> R) {
                 if (!R) {
                   State->writeStderr("Error: " + R.error().message() + "\n");
                   ExitFn(1);
                 }
               });
    Image.clear();
  }

  bool canCheckpoint(std::string *WhyNot) override {
    if (!Vm) {
      if (WhyNot)
        *WhyNot = "program has not started";
      return false;
    }
    return checkpointReady(*Vm, WhyNot);
  }

  std::string checkpointKind() const override { return "jvm"; }

  rt::ErrorOr<std::vector<uint8_t>> checkpoint() override {
    if (!Vm)
      return rt::ApiError(rt::Errno::Again, "program has not started");
    rt::ErrorOr<std::vector<uint8_t>> VmImage = serializeJvm(*Vm);
    if (!VmImage)
      return VmImage.error();
    rt::snap::Writer W(JvmProgramMagic, JvmProgramVersion);
    writeSpec(W, Spec);
    W.bytes(*VmImage);
    return W.take();
  }

private:
  JvmProgramSpec Spec;
  std::vector<uint8_t> Image;
  std::unique_ptr<Jvm> Vm;
};

} // namespace

std::unique_ptr<rt::proc::Program> makeJvmProgram(JvmProgramSpec Spec) {
  return std::make_unique<JvmProgram>(std::move(Spec));
}

void registerJvmRestore(rt::proc::CheckpointRegistry &Reg) {
  Reg.bind("jvm",
           [](rt::proc::ProcessTable &, const std::vector<uint8_t> &Blob)
               -> rt::ErrorOr<std::unique_ptr<rt::proc::Program>> {
             rt::snap::Reader R(Blob, JvmProgramMagic, JvmProgramVersion);
             JvmProgramSpec Spec = readSpec(R);
             std::vector<uint8_t> VmImage = R.bytes();
             if (!R.ok() || !R.atEnd())
               return rt::ApiError(rt::Errno::Io, "restore: corrupt jvm image");
             return std::unique_ptr<rt::proc::Program>(std::make_unique<JvmProgram>(
                 std::move(Spec), std::move(VmImage)));
           });
}

} // namespace jvm
} // namespace doppio
