//===- jvm/proc_program.cpp -----------------------------------------------==//

#include "jvm/proc_program.h"

namespace doppio {
namespace jvm {

namespace {

/// Owns one Jvm for the lifetime of the program object. The program (and
/// with it the Jvm, its thread pool, and any in-flight green threads)
/// lives until the ProcessTable is destroyed — see proc::Program — so a
/// thread-pool tail running after the process exits never dangles.
class JvmProgram : public rt::proc::Program {
public:
  explicit JvmProgram(JvmProgramSpec Spec) : Spec(std::move(Spec)) {}

  std::string name() const override { return "java:" + Spec.MainClass; }

  void start(rt::proc::Process &P) override {
    // The JVM mounts the process's state record, so the stdio hooks the
    // process installed route System.in/out/err through its fd table.
    Vm = std::make_unique<Jvm>(P.env(), P.table().fs(), P.state(),
                               Spec.Options);
    Vm->runMain(Spec.MainClass, Spec.Args, P.makeExitFn());
  }

private:
  JvmProgramSpec Spec;
  std::unique_ptr<Jvm> Vm;
};

} // namespace

std::unique_ptr<rt::proc::Program> makeJvmProgram(JvmProgramSpec Spec) {
  return std::make_unique<JvmProgram>(std::move(Spec));
}

} // namespace jvm
} // namespace doppio
