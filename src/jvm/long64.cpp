//===- jvm/long64.cpp -----------------------------------------------------==//
//
// Software 64-bit arithmetic from 32-bit pieces. The structure mirrors what
// a JavaScript implementation (like DoppioJVM's gLong) performs: additions
// carry through 16-bit chunks, multiplication is the schoolbook product of
// 16-bit digits, and division is binary shift-subtract — all expressible
// with JS doubles.
//
//===----------------------------------------------------------------------===//

#include "jvm/long64.h"

#include <cmath>

using namespace doppio;
using namespace doppio::jvm;

Long64 Long64::fromDouble(double V) {
  if (std::isnan(V))
    return {0, 0};
  // Clamp to the long range, as (long) double conversion requires.
  if (V >= 9223372036854775807.0)
    return {0xFFFFFFFFu, 0x7FFFFFFFu};
  if (V <= -9223372036854775808.0)
    return {0u, 0x80000000u};
  bool Negative = V < 0;
  double Abs = std::floor(std::abs(V));
  uint32_t Hi = static_cast<uint32_t>(std::floor(Abs / 4294967296.0));
  uint32_t Lo = static_cast<uint32_t>(Abs - Hi * 4294967296.0);
  Long64 R = {Lo, Hi};
  return Negative ? negLong(R) : R;
}

double Long64::toDouble() const {
  if (isNegative()) {
    Long64 Neg = negLong(*this);
    // MIN_VALUE negates to itself; handle via unsigned interpretation.
    if (Neg.isNegative())
      return -9223372036854775808.0;
    return -Neg.toDouble();
  }
  return static_cast<double>(Hi) * 4294967296.0 + static_cast<double>(Lo);
}

Long64 jvm::addLong(Long64 A, Long64 B) {
  // 16-bit chunk addition with explicit carries (all values stay far below
  // 2^53, so a JS double computes each chunk exactly).
  uint32_t A0 = A.Lo & 0xFFFF, A1 = A.Lo >> 16;
  uint32_t A2 = A.Hi & 0xFFFF, A3 = A.Hi >> 16;
  uint32_t B0 = B.Lo & 0xFFFF, B1 = B.Lo >> 16;
  uint32_t B2 = B.Hi & 0xFFFF, B3 = B.Hi >> 16;
  uint32_t C0 = A0 + B0;
  uint32_t C1 = A1 + B1 + (C0 >> 16);
  uint32_t C2 = A2 + B2 + (C1 >> 16);
  uint32_t C3 = A3 + B3 + (C2 >> 16);
  return {(C0 & 0xFFFF) | ((C1 & 0xFFFF) << 16),
          (C2 & 0xFFFF) | ((C3 & 0xFFFF) << 16)};
}

Long64 jvm::negLong(Long64 A) {
  // Two's complement: ~A + 1.
  return addLong({~A.Lo, ~A.Hi}, {1, 0});
}

Long64 jvm::subLong(Long64 A, Long64 B) { return addLong(A, negLong(B)); }

Long64 jvm::mulLong(Long64 A, Long64 B) {
  // Schoolbook product of 16-bit digits, keeping the low 64 bits.
  uint32_t AD[4] = {A.Lo & 0xFFFF, A.Lo >> 16, A.Hi & 0xFFFF, A.Hi >> 16};
  uint32_t BD[4] = {B.Lo & 0xFFFF, B.Lo >> 16, B.Hi & 0xFFFF, B.Hi >> 16};
  uint32_t Out[4] = {0, 0, 0, 0};
  for (int I = 0; I != 4; ++I) {
    uint32_t Carry = 0;
    for (int J = 0; I + J < 4; ++J) {
      // Max value: 0xFFFF*0xFFFF + 0xFFFF + carry < 2^32 (and < 2^53 as a
      // JS double).
      uint32_t Prod = AD[I] * BD[J] + (Out[I + J] & 0xFFFF) + Carry;
      Out[I + J] = Prod & 0xFFFF;
      Carry = Prod >> 16;
    }
  }
  return {Out[0] | (Out[1] << 16), Out[2] | (Out[3] << 16)};
}

/// Unsigned comparison of halves.
static bool ugeLong(Long64 A, Long64 B) {
  if (A.Hi != B.Hi)
    return A.Hi > B.Hi;
  return A.Lo >= B.Lo;
}

/// Unsigned shift-subtract division of magnitudes: 64 iterations, each one
/// built from 32-bit operations — exactly why software long division is so
/// slow in the browser (§8).
static void udivmod(Long64 N, Long64 D, Long64 &Q, Long64 &R) {
  Q = {0, 0};
  R = {0, 0};
  for (int Bit = 63; Bit >= 0; --Bit) {
    // R <<= 1; R.lo0 = bit of N.
    R = jvm::shlLong(R, 1);
    uint32_t NBit = Bit >= 32 ? ((N.Hi >> (Bit - 32)) & 1)
                              : ((N.Lo >> Bit) & 1);
    R.Lo |= NBit;
    if (ugeLong(R, D)) {
      R = jvm::subLong(R, D);
      if (Bit >= 32)
        Q.Hi |= 1u << (Bit - 32);
      else
        Q.Lo |= 1u << Bit;
    }
  }
}

Long64 jvm::divLong(Long64 A, Long64 B) {
  bool NegA = A.isNegative(), NegB = B.isNegative();
  Long64 MagA = NegA ? negLong(A) : A;
  Long64 MagB = NegB ? negLong(B) : B;
  Long64 Q, R;
  udivmod(MagA, MagB, Q, R);
  // Note MIN_VALUE / -1: magnitudes overflow back to MIN_VALUE, and the
  // sign fix-up below wraps correctly, matching JVM semantics.
  return NegA != NegB ? negLong(Q) : Q;
}

Long64 jvm::remLong(Long64 A, Long64 B) {
  bool NegA = A.isNegative(), NegB = B.isNegative();
  Long64 MagA = NegA ? negLong(A) : A;
  Long64 MagB = NegB ? negLong(B) : B;
  Long64 Q, R;
  udivmod(MagA, MagB, Q, R);
  return NegA ? negLong(R) : R;
}

Long64 jvm::andLong(Long64 A, Long64 B) {
  return {A.Lo & B.Lo, A.Hi & B.Hi};
}

Long64 jvm::orLong(Long64 A, Long64 B) {
  return {A.Lo | B.Lo, A.Hi | B.Hi};
}

Long64 jvm::xorLong(Long64 A, Long64 B) {
  return {A.Lo ^ B.Lo, A.Hi ^ B.Hi};
}

Long64 jvm::shlLong(Long64 A, int32_t Count) {
  Count &= 63;
  if (Count == 0)
    return A;
  if (Count >= 32)
    return {0, A.Lo << (Count - 32)};
  return {A.Lo << Count, (A.Hi << Count) | (A.Lo >> (32 - Count))};
}

Long64 jvm::shrLong(Long64 A, int32_t Count) {
  Count &= 63;
  if (Count == 0)
    return A;
  uint32_t SignFill = A.isNegative() ? 0xFFFFFFFFu : 0u;
  if (Count >= 32) {
    uint32_t Lo = Count == 32
                      ? A.Hi
                      : (A.Hi >> (Count - 32)) |
                            (SignFill << (64 - Count));
    return {Lo, SignFill};
  }
  return {(A.Lo >> Count) | (A.Hi << (32 - Count)),
          (A.Hi >> Count) | (SignFill << (32 - Count))};
}

Long64 jvm::ushrLong(Long64 A, int32_t Count) {
  Count &= 63;
  if (Count == 0)
    return A;
  if (Count >= 32)
    return {A.Hi >> (Count - 32), 0};
  return {(A.Lo >> Count) | (A.Hi << (32 - Count)), A.Hi >> Count};
}

int32_t jvm::cmpLong(Long64 A, Long64 B) {
  bool NegA = A.isNegative(), NegB = B.isNegative();
  if (NegA != NegB)
    return NegA ? -1 : 1;
  if (A.Hi != B.Hi)
    return A.Hi < B.Hi ? -1 : 1;
  if (A.Lo != B.Lo)
    return A.Lo < B.Lo ? -1 : 1;
  return 0;
}
