//===- jvm/klass.cpp ------------------------------------------------------==//

#include "jvm/klass.h"

#include <bit>
#include <cassert>

using namespace doppio;
using namespace doppio::jvm;

std::string Method::qualifiedName() const {
  return (Owner ? Owner->Name : "?") + "." + Name + Descriptor;
}

Method *Klass::findDeclaredMethod(const std::string &MName,
                                  const std::string &Desc) {
  for (auto &M : Methods)
    if (M->Name == MName && M->Descriptor == Desc)
      return M.get();
  return nullptr;
}

Method *Klass::findMethod(const std::string &MName,
                          const std::string &Desc) {
  for (Klass *K = this; K; K = K->Super)
    if (Method *M = K->findDeclaredMethod(MName, Desc))
      return M;
  // Interface default-free lookup: abstract declarations only; still walk
  // them so invokeinterface resolution succeeds.
  for (Klass *I : Interfaces)
    if (Method *M = I->findMethod(MName, Desc))
      return M;
  if (Super)
    for (Klass *I : Super->Interfaces)
      if (Method *M = I->findMethod(MName, Desc))
        return M;
  return nullptr;
}

FieldInfo *Klass::findField(const std::string &FName) {
  for (Klass *K = this; K; K = K->Super)
    for (FieldInfo &F : K->Fields)
      if (F.Name == FName)
        return &F;
  return nullptr;
}

QuickEntry &Klass::quickEntry(uint16_t CpIndex) {
  if (QuickPool.empty())
    QuickPool.resize(Cf.Pool.size());
  assert(CpIndex < QuickPool.size() && "quickening an out-of-pool index");
  std::unique_ptr<QuickEntry> &Slot = QuickPool[CpIndex];
  if (!Slot)
    Slot = std::make_unique<QuickEntry>();
  return *Slot;
}

int Klass::fastFieldId(const std::string &FName) {
  auto [It, Inserted] =
      FastFieldIds.try_emplace(FName, static_cast<int>(FastFieldIds.size()));
  return It->second;
}

bool Klass::isSubclassOf(const Klass *Other) const {
  for (const Klass *K = this; K; K = K->Super)
    if (K == Other)
      return true;
  return false;
}

bool Klass::implementsInterface(const Klass *Iface) const {
  for (const Klass *K = this; K; K = K->Super)
    for (const Klass *I : K->Interfaces) {
      if (I == Iface || I->implementsInterface(Iface))
        return true;
    }
  return false;
}

bool Klass::isAssignableTo(const Klass *Target) const {
  if (Target->isInterface())
    return implementsInterface(Target) || Target == this;
  return isSubclassOf(Target);
}

Value ArrayObject::defaultElement(const std::string &Desc) {
  switch (Desc.empty() ? 'L' : Desc[0]) {
  case 'B':
  case 'C':
  case 'I':
  case 'S':
  case 'Z':
    return Value::intVal(0);
  case 'J':
    return Value::longVal(static_cast<int64_t>(0));
  case 'F':
    return Value::floatVal(0.0f);
  case 'D':
    return Value::doubleVal(0.0);
  default:
    return Value::null();
  }
}

Object::~Object() = default;

/// Zero/null of a field descriptor, for static and instance defaults.
static Value defaultForDesc(const std::string &Desc) {
  return ArrayObject::defaultElement(Desc);
}

std::unique_ptr<Klass>
jvm::linkClass(ClassFile Cf, Klass *Super, std::vector<Klass *> Interfaces,
               const std::function<NativeFn(const Klass &, const Method &)>
                   &ResolveNative) {
  auto K = std::make_unique<Klass>();
  K->Name = Cf.ThisClass;
  K->Super = Super;
  K->Interfaces = std::move(Interfaces);
  K->AccessFlags = Cf.AccessFlags;

  // Instance field layout: superclass slots first, then ours.
  uint32_t NextSlot = Super ? Super->InstanceSlotCount : 0;
  for (const MemberInfo &F : Cf.Fields) {
    FieldInfo Info;
    Info.Owner = K.get();
    Info.AccessFlags = F.AccessFlags;
    Info.Name = F.Name;
    Info.Descriptor = F.Descriptor;
    Info.ConstantValueIndex = F.ConstantValueIndex;
    if (F.isStatic()) {
      Value Init = defaultForDesc(F.Descriptor);
      // ConstantValue attributes seed static finals before <clinit>.
      if (F.ConstantValueIndex && Cf.Pool.valid(F.ConstantValueIndex)) {
        const CpEntry &E = Cf.Pool.at(F.ConstantValueIndex);
        switch (E.Tag) {
        case CpTag::Integer:
          Init = Value::intVal(E.Int);
          break;
        case CpTag::Float:
          Init = Value::floatVal(E.F);
          break;
        case CpTag::Long:
          Init = Value::longVal(E.LongBits);
          break;
        case CpTag::Double:
          Init = Value::doubleVal(std::bit_cast<double>(E.LongBits));
          break;
        default:
          break; // String constants are materialized by the interpreter.
        }
      }
      K->Statics[F.Name] = Init;
    } else {
      Info.SlotIndex = static_cast<int32_t>(NextSlot);
      NextSlot += 1; // One Value per field (category 2 fits in a Value).
    }
    K->Fields.push_back(std::move(Info));
  }
  K->InstanceSlotCount = NextSlot;

  for (const MemberInfo &M : Cf.Methods) {
    auto Method_ = std::make_unique<Method>();
    Method_->Owner = K.get();
    Method_->AccessFlags = M.AccessFlags;
    Method_->Name = M.Name;
    Method_->Descriptor = M.Descriptor;
    std::optional<desc::MethodDesc> D = desc::parseMethod(M.Descriptor);
    assert(D && "malformed method descriptor survived parsing");
    Method_->Parsed = std::move(*D);
    Method_->ParamSlots = desc::paramSlots(Method_->Parsed);
    Method_->RetSlots = desc::slotSize(Method_->Parsed.Ret);
    if (M.Code) {
      Method_->Code = *M.Code;
      Method_->HasCode = true;
    }
    if (Method_->isNative() && ResolveNative)
      Method_->Native = ResolveNative(*K, *Method_);
    K->Methods.push_back(std::move(Method_));
  }

  K->Cf = std::move(Cf);
  return K;
}
