//===- jvm/exec_profile.h - Unified execution-profile knobs -------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One struct for every knob that changes *how* the interpreter executes
/// without changing *what* it computes: verifier-trusted check elision
/// (DESIGN.md §12), suspend-check placement (§17), and constant-pool
/// quickening with field inline caches (§18). Before this existed the
/// knobs were scattered — `JvmOptions::TrustVerifier`, a
/// `DOPPIO_JVM_TRUST_VERIFIER` env var parsed in the Jvm constructor, a
/// `DOPPIO_JVM_SUSPEND_PLACEMENT` env var parsed next to it — and each
/// new optimization would have added another. ExecProfile collapses them
/// behind one parser (presets + key=value overrides, shared by env and
/// CLI) and four named presets that the benches, tests, and tools refer
/// to by name.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_JVM_EXEC_PROFILE_H
#define DOPPIO_JVM_EXEC_PROFILE_H

#include <cstdint>
#include <string>

namespace doppio {
namespace jvm {

/// Where the interpreter executes suspend checks (DESIGN.md §17).
enum class SuspendCheckMode : uint8_t {
  /// The paper's behavior (§6.1): checks at call boundaries only —
  /// invokes, returns, monitor ops. Branches never check, so a tight
  /// intra-method loop cannot be preempted. The default.
  CallBoundary,
  /// A check before every bytecode dispatch: the naive baseline the
  /// fig4 placement ablation measures against.
  Everywhere,
  /// Analysis-driven placement (Stopify's insight): call boundaries plus
  /// only the loop back-edge branches the CFG/loop pass kept; proven
  /// branch sites elide the check. Methods without a proof (jsr/ret,
  /// irreducible loops, exception-carried cycles) degrade to Everywhere
  /// behavior — conservative, never incorrect.
  Placed,
};

/// The execution profile a Jvm runs under. Every field preserves
/// bit-identical guest-visible behavior; profiles trade host speed and
/// dynamic check counts only.
struct ExecProfile {
  /// Preset (or "custom") this profile was derived from, for display.
  std::string Name = "verified";
  /// When true, methods the dataflow verifier proved safe run on the
  /// interpreter's check-elided fast path; unverified methods keep the
  /// guarded path (DESIGN.md §12).
  bool TrustVerifier = true;
  /// Suspend-check placement (DESIGN.md §17).
  SuspendCheckMode SuspendChecks = SuspendCheckMode::CallBoundary;
  /// When true, trusted frames rewrite resolved constant-pool ops to
  /// their _quick forms in place on first execution (DESIGN.md §18).
  bool Quicken = false;
  /// When true, quickened field accesses keep a monomorphic (klass,
  /// field) inline cache over the DoppioJS field dictionary; misses fall
  /// back to the dictionary (DESIGN.md §18). Requires Quicken.
  bool InlineCaches = false;

  // Named presets. `verified` is the construction default (the exact
  // pre-ExecProfile behavior); `baseline` turns every optimization off.
  static ExecProfile baseline();
  static ExecProfile verified();
  static ExecProfile placed();
  static ExecProfile quick();

  /// The one profile parser, shared by the env override and every CLI
  /// that accepts a profile. \p Spec is a preset name ("baseline",
  /// "verified", "placed", "quick") optionally followed by comma-
  /// separated key=value overrides, or just the overrides:
  ///   "quick", "placed,trust=0", "trust=1,suspend=everywhere,quicken=1".
  /// Keys: trust=0|1, suspend=call|everywhere|placed, quicken=0|1,
  /// ic=0|1. Returns false (and fills \p Err) on an unknown preset or
  /// key.
  static bool parse(const std::string &Spec, ExecProfile &Out,
                    std::string *Err = nullptr);

  /// Applies environment overrides, strongest last: DOPPIO_JVM_PROFILE
  /// (full parse() spec), then the legacy single-knob variables
  /// DOPPIO_JVM_TRUST_VERIFIER ("0"/"1") and
  /// DOPPIO_JVM_SUSPEND_PLACEMENT ("call"/"everywhere"/"placed"), kept
  /// for back-compat. Called once at Jvm construction.
  void applyEnv();

  /// "verified(trust=1, suspend=call, quicken=0, ic=0)" — for tools
  /// and logs.
  std::string describe() const;
};

} // namespace jvm
} // namespace doppio

#endif // DOPPIO_JVM_EXEC_PROFILE_H
