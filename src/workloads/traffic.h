//===- workloads/traffic.h - multi-client doppiod traffic gen -----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic multi-client load generator for doppiod. Each simulated
/// client connects to the server, issues its requests sequentially (next
/// request only after the previous response), and records per-request
/// round-trip latency on the virtual clock. Clients spawn with a fixed
/// inter-arrival spacing so connection setup, backlog pressure, and idle
/// reaping all exercise realistically inside one event-loop run.
///
/// PipelineScenario is the process-subsystem counterpart: it seeds fstrace
/// logs into the Doppio fs and runs `cat | grep | wc` pipelines of spawned
/// guest processes over them, reporting spawn/pipe/zombie statistics off
/// the proc metric cells.
///
/// Used by bench/fig7_server.cpp and the server test suite.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_WORKLOADS_TRAFFIC_H
#define DOPPIO_WORKLOADS_TRAFFIC_H

#include "browser/env.h"
#include "doppio/obs/metrics.h"
#include "doppio/proc/programs.h"
#include "doppio/server/client.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace doppio {
namespace workloads {

struct TrafficConfig {
  uint16_t Port = 7000;
  size_t Clients = 10;
  size_t RequestsPerClient = 10;
  /// Handler name for every request ("echo", "file", ...).
  std::string Handler = "echo";
  /// Request bodies, assigned round-robin across the request stream.
  /// Empty means every request carries an empty body.
  std::vector<std::vector<uint8_t>> Bodies;
  /// Virtual-time gap between successive client spawns.
  uint64_t SpawnSpacingNs = browser::usToNs(50);
};

struct TrafficReport {
  uint64_t Completed = 0;       // Responses with Status::Ok.
  uint64_t Errors = 0;          // Responses with any other status.
  uint64_t ConnectFailures = 0; // Connects refused by the fabric.
  uint64_t BytesReceived = 0;
  std::vector<uint64_t> LatenciesNs; // Per-request round trip.
  uint64_t StartNs = 0;
  uint64_t EndNs = 0;

  double requestsPerSecond() const {
    uint64_t Span = EndNs > StartNs ? EndNs - StartNs : 0;
    if (Span == 0)
      return 0.0;
    return (Completed + Errors) * 1e9 / static_cast<double>(Span);
  }
  uint64_t p50Ns() const { return obs::percentileNs(LatenciesNs, 50.0); }
  uint64_t p99Ns() const { return obs::percentileNs(LatenciesNs, 99.0); }
};

/// Drives TrafficConfig::Clients concurrent FrameClients against a server
/// on the same event loop. start() schedules the work; the report is
/// complete once every client finished (run the loop) and \p Done fires.
class TrafficGen {
public:
  TrafficGen(browser::BrowserEnv &Env, TrafficConfig Cfg);
  ~TrafficGen();

  TrafficGen(const TrafficGen &) = delete;
  TrafficGen &operator=(const TrafficGen &) = delete;

  /// Kicks off the client spawns. \p Done fires once every client has
  /// either completed its requests or failed.
  void start(std::function<void()> Done = nullptr);

  bool finished() const { return Remaining == 0 && Started; }
  const TrafficReport &report() const { return Report; }

private:
  struct Client;

  void spawn(size_t Index);
  void nextRequest(Client &C);
  void clientDone(Client &C);

  browser::BrowserEnv &Env;
  TrafficConfig Cfg;
  TrafficReport Report;
  std::vector<std::unique_ptr<Client>> Fleet;
  size_t Remaining = 0;
  bool Started = false;
  std::function<void()> OnDone;
};

struct PipelineConfig {
  /// Concurrent three-stage pipelines (cat fstrace | grep open | wc).
  size_t Pipelines = 4;
  /// Lines per seeded fstrace log (open/read/close records).
  size_t TraceLines = 60;
  /// Pipe capacity in bytes. Small relative to the trace so writers block
  /// on full pipes and the kernel has to resume them.
  size_t PipeCapacity = 256;
};

struct PipelineReport {
  uint64_t ProcessesSpawned = 0;
  uint64_t PipeBytes = 0;
  uint64_t PipeWriterSuspends = 0;
  uint64_t ZombiesAfterDrain = 0;
  /// Every stage of every pipeline exited 0.
  bool AllExitsZero = false;
  /// Every wc stage printed the expected "<lines> <bytes>" for its trace.
  bool OutputsMatch = false;
};

/// Runs PipelineConfig::Pipelines piped multi-process workloads on a
/// ProcessTable. start() seeds /data/fstrace-<i>.log files through the
/// table's fs, spawns the pipelines, and parks waiters on every stage;
/// the report is complete once every stage has been reaped (run the loop)
/// and \p Done fires.
class PipelineScenario {
public:
  PipelineScenario(browser::BrowserEnv &Env, rt::proc::ProcessTable &Procs,
                   PipelineConfig Cfg = PipelineConfig());

  PipelineScenario(const PipelineScenario &) = delete;
  PipelineScenario &operator=(const PipelineScenario &) = delete;

  void start(std::function<void()> Done = nullptr);

  bool finished() const { return Started && StagesRemaining == 0; }
  const PipelineReport &report() const { return Report; }

private:
  std::string tracePath(size_t Index) const;
  std::string traceBody(size_t Index) const;
  /// The wc output grep's "open" lines of trace \p Index reduce to.
  std::string expectedWc(size_t Index) const;
  void launch(size_t Index);
  void noteStageDone();

  browser::BrowserEnv &Env;
  rt::proc::ProcessTable &Procs;
  PipelineConfig Cfg;
  PipelineReport Report;
  rt::proc::ProgramRegistry Registry;
  size_t StagesRemaining = 0;
  bool Started = false;
  bool ExitsOk = true;
  bool WcOk = true;
  uint64_t BaseSpawned = 0;
  uint64_t BasePipeBytes = 0;
  uint64_t BaseWriterSuspends = 0;
  std::function<void()> OnDone;
};

} // namespace workloads
} // namespace doppio

#endif // DOPPIO_WORKLOADS_TRAFFIC_H
