//===- workloads/fstrace.cpp ----------------------------------------------==//

#include "workloads/fstrace.h"

#include <random>
#include <set>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::workloads;

size_t FsTrace::uniqueFiles() const {
  std::set<std::string> Paths;
  for (const FsTraceOp &Op : Ops)
    if (Op.K != FsTraceOp::Kind::Mkdir &&
        Op.K != FsTraceOp::Kind::Readdir)
      Paths.insert(Op.Path);
  return Paths.size();
}

FsTrace workloads::makeJavacTrace() {
  // Target (§7.3): 3185 ops, 1560 unique files, >10.5 MB read, 97 KB
  // written. Composition: the class loader stats and fully reads ~1520
  // class files; javac reads 19 sources and writes 19 outputs + a few
  // metadata files.
  FsTrace T;
  std::mt19937 Rng(31415);
  const int ClassFiles = 1520;
  const int Sources = 19;

  uint64_t ReadTarget = 11010048; // 10.5 MB.
  // Class file sizes: vary around the mean, fixed total.
  std::vector<uint32_t> Sizes(ClassFiles);
  uint64_t Assigned = 0;
  for (int I = 0; I != ClassFiles; ++I) {
    uint32_t Mean = static_cast<uint32_t>(ReadTarget / ClassFiles);
    uint32_t S = Mean / 2 + Rng() % Mean;
    Sizes[I] = S;
    Assigned += S;
  }
  // Adjust the last file so the total hits the target exactly.
  int64_t Slack = static_cast<int64_t>(ReadTarget) -
                  static_cast<int64_t>(Assigned);
  Sizes[ClassFiles - 1] = static_cast<uint32_t>(
      std::max<int64_t>(64, Sizes[ClassFiles - 1] + Slack));

  for (int I = 0; I != ClassFiles; ++I) {
    std::string Path = "/work/classes/pkg" + std::to_string(I % 24) +
                       "/C" + std::to_string(I) + ".class";
    T.Preexisting.emplace_back(Path, Sizes[I]);
    T.Ops.push_back({FsTraceOp::Kind::Stat, Path, 0});
    T.Ops.push_back({FsTraceOp::Kind::Read, Path, 0});
    T.ExpectedReadBytes += Sizes[I];
  }
  // Sources: stat + read, ~2 KB each.
  for (int I = 0; I != Sources; ++I) {
    std::string Path = "/work/src/S" + std::to_string(I) + ".java";
    uint32_t Size = 1800 + Rng() % 600;
    T.Preexisting.emplace_back(Path, Size);
    T.Ops.push_back({FsTraceOp::Kind::Stat, Path, 0});
    T.Ops.push_back({FsTraceOp::Kind::Read, Path, 0});
    T.ExpectedReadBytes += Size;
  }
  // A few directory listings (classpath scans).
  for (int I = 0; I != 24; ++I)
    T.Ops.push_back({FsTraceOp::Kind::Readdir,
                     "/work/classes/pkg" + std::to_string(I), 0});
  // Outputs: 19 compiled files + metadata, 97 KB total.
  uint64_t WriteTarget = 99328; // 97 KB.
  uint64_t Written = 0;
  for (int I = 0; I != Sources; ++I) {
    uint32_t Size = static_cast<uint32_t>(WriteTarget / (Sources + 2));
    std::string Path = "/work/out/S" + std::to_string(I) + ".class";
    T.Ops.push_back({FsTraceOp::Kind::Write, Path, Size});
    Written += Size;
    T.ExpectedWriteBytes += Size;
  }
  for (int I = 0; I != 2; ++I) {
    uint32_t Size = static_cast<uint32_t>(WriteTarget - Written) / 2;
    std::string Path = "/work/out/meta" + std::to_string(I) + ".idx";
    T.Ops.push_back({FsTraceOp::Kind::Write, Path, Size});
    T.ExpectedWriteBytes += Size;
  }
  // Re-stat of a subset (dependency checks), to land on 3185 ops.
  size_t Target = 3185;
  int I = 0;
  while (T.Ops.size() < Target) {
    std::string Path = "/work/classes/pkg" + std::to_string(I % 24) +
                       "/C" + std::to_string(I) + ".class";
    T.Ops.push_back({FsTraceOp::Kind::Stat, Path, 0});
    ++I;
  }
  return T;
}

namespace {

/// Drives the trace one blocking op at a time: each completion schedules
/// the next op through suspend-and-resume, modelling a guest program
/// making synchronous calls (§4.2).
class TraceDriver {
public:
  TraceDriver(const FsTrace &Trace, fs::FileSystem &Fs,
              browser::BrowserEnv &Env, rt::Suspender &Susp,
              std::function<void(ReplayStats)> Done)
      : Trace(Trace), Fs(Fs), Env(Env), Susp(Susp),
        Done(std::move(Done)) {}

  void start() {
    // Seeding is setup, not measurement.
    Fs.mkdirp("/work/src", [](std::optional<ApiError>) {});
    Fs.mkdirp("/work/out", [](std::optional<ApiError>) {});
    for (int I = 0; I != 24; ++I)
      Fs.mkdirp("/work/classes/pkg" + std::to_string(I),
                [](std::optional<ApiError>) {});
    Env.loop().run();
    for (const auto &[Path, Size] : Trace.Preexisting)
      Fs.writeFile(Path, std::vector<uint8_t>(Size, 0x42),
                   [this](std::optional<ApiError> E) {
                     if (E)
                       ++Stats.Errors;
                   });
    Env.loop().run();
    StartNs = Env.clock().nowNs();
    step(0);
  }

private:
  void step(size_t I) {
    if (I == Trace.Ops.size()) {
      Stats.VirtualNs = Env.clock().nowNs() - StartNs;
      Stats.Operations = Trace.Ops.size();
      Done(Stats);
      return;
    }
    // The guest "blocks"; the completion resumes it for the next call.
    auto Next = [this, I](bool Failed) {
      if (Failed)
        ++Stats.Errors;
      Susp.scheduleResumption([this, I] { step(I + 1); });
    };
    const FsTraceOp &Op = Trace.Ops[I];
    switch (Op.K) {
    case FsTraceOp::Kind::Mkdir:
      Fs.mkdirp(Op.Path,
                [Next](std::optional<ApiError> E) { Next(E.has_value()); });
      return;
    case FsTraceOp::Kind::Write:
      Fs.writeFile(Op.Path, std::vector<uint8_t>(Op.SizeBytes, 0x37),
                   [this, Next, Size = Op.SizeBytes](
                       std::optional<ApiError> E) {
                     if (!E)
                       Stats.BytesWritten += Size;
                     Next(E.has_value());
                   });
      return;
    case FsTraceOp::Kind::Read:
      Fs.readFile(Op.Path,
                  [this, Next](rt::ErrorOr<std::vector<uint8_t>> R) {
                    if (R)
                      Stats.BytesRead += R->size();
                    Next(!R.ok());
                  });
      return;
    case FsTraceOp::Kind::Stat:
      Fs.stat(Op.Path, [Next](rt::ErrorOr<fs::Stats> R) {
        Next(!R.ok());
      });
      return;
    case FsTraceOp::Kind::Readdir:
      Fs.readdir(Op.Path,
                 [Next](rt::ErrorOr<std::vector<std::string>> R) {
                   Next(!R.ok());
                 });
      return;
    case FsTraceOp::Kind::Unlink:
      Fs.unlink(Op.Path, [Next](std::optional<ApiError> E) {
        Next(E.has_value());
      });
      return;
    }
  }

  const FsTrace &Trace;
  fs::FileSystem &Fs;
  browser::BrowserEnv &Env;
  rt::Suspender &Susp;
  std::function<void(ReplayStats)> Done;
  ReplayStats Stats;
  uint64_t StartNs = 0;
};

} // namespace

void workloads::replayTrace(const FsTrace &Trace, fs::FileSystem &Fs,
                            browser::BrowserEnv &Env, rt::Suspender &Susp,
                            std::function<void(ReplayStats)> Done) {
  // The driver must outlive the asynchronous replay; it frees itself.
  auto *Driver = new TraceDriver(Trace, Fs, Env, Susp,
                                 [Done](ReplayStats S) { Done(S); });
  Driver->start();
  Env.loop().run();
  delete Driver;
}

uint64_t workloads::nativeBaselineNs(const FsTrace &Trace) {
  // Node on a warm native file system: roughly a syscall + libuv round
  // trip per call (~25 us on the paper's hardware) plus page-cache
  // copy bandwidth (~2.5 GB/s -> 0.4 ns/byte).
  const uint64_t PerOpNs = 25000;
  const uint64_t PerByteNsTimes10 = 4;
  uint64_t Total = 0;
  for (const FsTraceOp &Op : Trace.Ops) {
    Total += PerOpNs;
    (void)Op;
  }
  Total += (Trace.ExpectedReadBytes + Trace.ExpectedWriteBytes) *
           PerByteNsTimes10 / 10;
  return Total;
}
