//===- workloads/workloads.h - The §7 benchmark programs ----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JVM programs behind the paper's evaluation (§7.1), synthesized with
/// the bytecode assembler because the OpenJDK originals cannot ship here
/// (DESIGN.md documents the substitution). Workload shapes match the
/// paper's:
///
///  - classdump: the javap analog — walks a directory of class files,
///    parses each one's constant pool and member tables, and writes a
///    disassembly summary (file-heavy; the Safari typed-array leak bites
///    here, §7.1).
///  - minicompile: the javac analog — reads source files, tokenizes them,
///    and writes "compiled" output (mixed fs + compute; its fs activity
///    seeds the Figure 6 trace).
///  - recursive, binarytrees: the Rhino/SunSpider programs.
///  - nqueens: the Kawa-Scheme benchmark.
///  - deltablue: the §7.1 microbenchmark — a one-way constraint chain
///    solved via virtual dispatch over an object graph.
///  - pidigits: the spigot algorithm, long-arithmetic-heavy (§8's software
///    longs dominate it in DoppioJS mode).
///
/// Every workload prints deterministic output, so the two execution modes
/// can be differential-tested against each other.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_WORKLOADS_WORKLOADS_H
#define DOPPIO_WORKLOADS_WORKLOADS_H

#include "browser/xhr.h"
#include "jvm/classfile/builder.h"

#include <cstdint>
#include <string>
#include <vector>

namespace doppio {
namespace workloads {

/// A ready-to-run benchmark program.
struct Workload {
  std::string Name;
  std::string MainClass;
  std::vector<std::string> Args;
  /// Class name -> class file bytes.
  std::vector<std::pair<std::string, std::vector<uint8_t>>> Classes;
  /// Extra server files (program input data), path -> bytes.
  std::vector<std::pair<std::string, std::vector<uint8_t>>> DataFiles;
};

/// Publishes the workload's classes (under /classes) and data files onto
/// the simulated web server.
void publish(const Workload &W, browser::StaticServer &Server);

/// SunSpider "recursive": fib + tak, printing checksums.
Workload makeRecursive(int FibN = 22, int TakN = 7);

/// SunSpider "binary-trees": allocate/walk binary trees of \p MaxDepth.
Workload makeBinaryTrees(int MaxDepth = 10);

/// Kawa nqueens(n): counts solutions with a backtracking board walk.
Workload makeNQueens(int N = 8);

/// DeltaBlue-style one-way constraint chain: \p Length constraints
/// re-solved \p Iterations times through virtual calls.
Workload makeDeltaBlue(int Length = 60, int Iterations = 100);

/// Spigot pi digits (long-arithmetic-heavy).
Workload makePiDigits(int Digits = 200);

/// javap analog over \p FileCount synthesized class files served under
/// /data/classlib; writes a summary to /data/classdump.out.
Workload makeClassDump(int FileCount = 60);

/// javac analog over \p SourceCount synthetic source files under
/// /data/src; writes one output per source plus a summary.
Workload makeMiniCompile(int SourceCount = 19);

/// All macro workloads of Figure 3, in the paper's order.
std::vector<Workload> figure3Workloads();

} // namespace workloads
} // namespace doppio

#endif // DOPPIO_WORKLOADS_WORKLOADS_H
