//===- workloads/workloads.cpp --------------------------------------------==//

#include "workloads/workloads.h"

#include <cassert>
#include <random>

using namespace doppio;
using namespace doppio::jvm;
using namespace doppio::workloads;

void workloads::publish(const Workload &W, browser::StaticServer &Server) {
  for (const auto &[Name, Bytes] : W.Classes)
    Server.addFile("/classes/" + Name + ".class", Bytes);
  for (const auto &[Path, Bytes] : W.DataFiles)
    Server.addFile(Path, Bytes);
}

namespace {

const char *OutDesc = "Ljava/io/PrintStream;";
const char *StrDesc = "Ljava/lang/String;";
const char *SbDesc = "Ljava/lang/StringBuilder;";

MethodBuilder &mainOf(ClassBuilder &B) {
  return B.method(AccPublic | AccStatic, "main",
                  "([Ljava/lang/String;)V");
}

/// Emits println of the int on top of the stack.
void printlnInt(MethodBuilder &M) {
  M.getstatic("java/lang/System", "out", OutDesc)
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println", "(I)V");
}

/// Emits println of the String on top of the stack.
void printlnStr(MethodBuilder &M) {
  M.getstatic("java/lang/System", "out", OutDesc)
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V");
}

void takeClass(Workload &W, ClassBuilder &B) {
  std::string Name = B.name();
  W.Classes.emplace_back(Name, B.bytes());
}

} // namespace

//===----------------------------------------------------------------------===//
// recursive (SunSpider analog)
//===----------------------------------------------------------------------===//

Workload workloads::makeRecursive(int FibN, int TakN) {
  Workload W;
  W.Name = "recursive";
  W.MainClass = "bench/Recursive";
  ClassBuilder B("bench/Recursive");
  {
    MethodBuilder &Fib = B.method(AccPublic | AccStatic, "fib", "(I)I");
    MethodBuilder::Label Rec = Fib.newLabel();
    Fib.iload(0)
        .iconst(2)
        .branch(Op::IfIcmpge, Rec)
        .iload(0)
        .op(Op::Ireturn)
        .bind(Rec)
        .iload(0)
        .iconst(1)
        .op(Op::Isub)
        .invokestatic("bench/Recursive", "fib", "(I)I")
        .iload(0)
        .iconst(2)
        .op(Op::Isub)
        .invokestatic("bench/Recursive", "fib", "(I)I")
        .op(Op::Iadd)
        .op(Op::Ireturn);
  }
  {
    // tak(x,y,z) = y >= x ? z : tak(tak(x-1,y,z), tak(y-1,z,x),
    //                               tak(z-1,x,y))
    MethodBuilder &Tak = B.method(AccPublic | AccStatic, "tak", "(III)I");
    MethodBuilder::Label Rec = Tak.newLabel();
    Tak.iload(1)
        .iload(0)
        .branch(Op::IfIcmplt, Rec)
        .iload(2)
        .op(Op::Ireturn)
        .bind(Rec)
        .iload(0)
        .iconst(1)
        .op(Op::Isub)
        .iload(1)
        .iload(2)
        .invokestatic("bench/Recursive", "tak", "(III)I")
        .iload(1)
        .iconst(1)
        .op(Op::Isub)
        .iload(2)
        .iload(0)
        .invokestatic("bench/Recursive", "tak", "(III)I")
        .iload(2)
        .iconst(1)
        .op(Op::Isub)
        .iload(0)
        .iload(1)
        .invokestatic("bench/Recursive", "tak", "(III)I")
        .invokestatic("bench/Recursive", "tak", "(III)I")
        .op(Op::Ireturn);
  }
  MethodBuilder &M = mainOf(B);
  M.iconst(FibN).invokestatic("bench/Recursive", "fib", "(I)I");
  printlnInt(M);
  M.iconst(TakN * 3)
      .iconst(TakN * 2)
      .iconst(TakN)
      .invokestatic("bench/Recursive", "tak", "(III)I");
  printlnInt(M);
  M.op(Op::Return);
  takeClass(W, B);
  return W;
}

//===----------------------------------------------------------------------===//
// binarytrees (SunSpider analog)
//===----------------------------------------------------------------------===//

Workload workloads::makeBinaryTrees(int MaxDepth) {
  Workload W;
  W.Name = "binarytrees";
  W.MainClass = "bench/BinaryTrees";

  ClassBuilder Node("bench/TreeNode");
  Node.addField(AccPublic, "l", "Lbench/TreeNode;");
  Node.addField(AccPublic, "r", "Lbench/TreeNode;");
  Node.addField(AccPublic, "item", "I");
  Node.addDefaultConstructor();
  {
    // static TreeNode make(int item, int depth)
    MethodBuilder &Make = Node.method(AccPublic | AccStatic, "make",
                                      "(II)Lbench/TreeNode;");
    MethodBuilder::Label Leaf = Make.newLabel();
    // t = new TreeNode(); t.item = item;   (local 2 = t)
    Make.anew("bench/TreeNode")
        .op(Op::Dup)
        .invokespecial("bench/TreeNode", "<init>", "()V")
        .astore(2)
        .aload(2)
        .iload(0)
        .putfield("bench/TreeNode", "item", "I")
        .iload(1)
        .branch(Op::Ifeq, Leaf)
        // t.l = make(2*item-1, depth-1)
        .aload(2)
        .iconst(2)
        .iload(0)
        .op(Op::Imul)
        .iconst(1)
        .op(Op::Isub)
        .iload(1)
        .iconst(1)
        .op(Op::Isub)
        .invokestatic("bench/TreeNode", "make", "(II)Lbench/TreeNode;")
        .putfield("bench/TreeNode", "l", "Lbench/TreeNode;")
        // t.r = make(2*item, depth-1)
        .aload(2)
        .iconst(2)
        .iload(0)
        .op(Op::Imul)
        .iload(1)
        .iconst(1)
        .op(Op::Isub)
        .invokestatic("bench/TreeNode", "make", "(II)Lbench/TreeNode;")
        .putfield("bench/TreeNode", "r", "Lbench/TreeNode;")
        .bind(Leaf)
        .aload(2)
        .op(Op::Areturn);
  }
  {
    // int check(): leaf -> item; else item + l.check() - r.check()
    MethodBuilder &Check = Node.method(AccPublic, "check", "()I");
    MethodBuilder::Label Inner = Check.newLabel();
    Check.aload(0)
        .getfield("bench/TreeNode", "l", "Lbench/TreeNode;")
        .branch(Op::Ifnonnull, Inner)
        .aload(0)
        .getfield("bench/TreeNode", "item", "I")
        .op(Op::Ireturn)
        .bind(Inner)
        .aload(0)
        .getfield("bench/TreeNode", "item", "I")
        .aload(0)
        .getfield("bench/TreeNode", "l", "Lbench/TreeNode;")
        .invokevirtual("bench/TreeNode", "check", "()I")
        .op(Op::Iadd)
        .aload(0)
        .getfield("bench/TreeNode", "r", "Lbench/TreeNode;")
        .invokevirtual("bench/TreeNode", "check", "()I")
        .op(Op::Isub)
        .op(Op::Ireturn);
  }
  takeClass(W, Node);

  ClassBuilder B("bench/BinaryTrees");
  MethodBuilder &M = mainOf(B);
  // locals: 1=total, 2=depth, 3=iters, 4=i
  MethodBuilder::Label DepthLoop = M.newLabel(), DepthDone = M.newLabel();
  MethodBuilder::Label IterLoop = M.newLabel(), IterDone = M.newLabel();
  M.iconst(0).istore(1);
  M.iconst(4).istore(2);
  M.bind(DepthLoop)
      .iload(2)
      .iconst(MaxDepth)
      .branch(Op::IfIcmpgt, DepthDone)
      // iters = 1 << (MaxDepth - depth + 4)
      .iconst(1)
      .iconst(MaxDepth + 4)
      .iload(2)
      .op(Op::Isub)
      .op(Op::Ishl)
      .istore(3)
      .iconst(0)
      .istore(4)
      .bind(IterLoop)
      .iload(4)
      .iload(3)
      .branch(Op::IfIcmpge, IterDone)
      .iload(1)
      .iload(4)
      .iload(2)
      .invokestatic("bench/TreeNode", "make", "(II)Lbench/TreeNode;")
      .invokevirtual("bench/TreeNode", "check", "()I")
      .op(Op::Iadd)
      .istore(1)
      .iinc(4, 1)
      .branch(Op::Goto, IterLoop)
      .bind(IterDone)
      .iinc(2, 2)
      .branch(Op::Goto, DepthLoop)
      .bind(DepthDone)
      .iload(1);
  printlnInt(M);
  M.op(Op::Return);
  takeClass(W, B);
  return W;
}

//===----------------------------------------------------------------------===//
// nqueens (Kawa analog)
//===----------------------------------------------------------------------===//

Workload workloads::makeNQueens(int N) {
  Workload W;
  W.Name = "nqueens";
  W.MainClass = "bench/NQueens";
  ClassBuilder B("bench/NQueens");
  B.addField(AccPublic | AccStatic, "count", "I");
  {
    // static boolean ok(int[] b, int row, int col)
    MethodBuilder &Ok = B.method(AccPublic | AccStatic, "ok", "([III)Z");
    MethodBuilder::Label Loop = Ok.newLabel(), Next = Ok.newLabel(),
                         Yes = Ok.newLabel(), No = Ok.newLabel();
    // locals: 0=b 1=row 2=col 3=i 4=c
    Ok.iconst(0).istore(3);
    Ok.bind(Loop)
        .iload(3)
        .iload(1)
        .branch(Op::IfIcmpge, Yes)
        .aload(0)
        .iload(3)
        .op(Op::Iaload)
        .istore(4)
        // c == col ?
        .iload(4)
        .iload(2)
        .branch(Op::IfIcmpeq, No)
        // c - i == col - row ?
        .iload(4)
        .iload(3)
        .op(Op::Isub)
        .iload(2)
        .iload(1)
        .op(Op::Isub)
        .branch(Op::IfIcmpeq, No)
        // c + i == col + row ?
        .iload(4)
        .iload(3)
        .op(Op::Iadd)
        .iload(2)
        .iload(1)
        .op(Op::Iadd)
        .branch(Op::IfIcmpeq, No)
        .branch(Op::Goto, Next)
        .bind(Next)
        .iinc(3, 1)
        .branch(Op::Goto, Loop)
        .bind(Yes)
        .iconst(1)
        .op(Op::Ireturn)
        .bind(No)
        .iconst(0)
        .op(Op::Ireturn);
  }
  {
    // static void place(int[] b, int row, int n)
    MethodBuilder &Place =
        B.method(AccPublic | AccStatic, "place", "([III)V");
    MethodBuilder::Label NotFull = Place.newLabel(),
                         Loop = Place.newLabel(), Skip = Place.newLabel(),
                         Done = Place.newLabel();
    // locals: 0=b 1=row 2=n 3=c
    Place.iload(1)
        .iload(2)
        .branch(Op::IfIcmplt, NotFull)
        .getstatic("bench/NQueens", "count", "I")
        .iconst(1)
        .op(Op::Iadd)
        .putstatic("bench/NQueens", "count", "I")
        .op(Op::Return)
        .bind(NotFull)
        .iconst(0)
        .istore(3)
        .bind(Loop)
        .iload(3)
        .iload(2)
        .branch(Op::IfIcmpge, Done)
        .aload(0)
        .iload(1)
        .iload(3)
        .invokestatic("bench/NQueens", "ok", "([III)Z")
        .branch(Op::Ifeq, Skip)
        .aload(0)
        .iload(1)
        .iload(3)
        .op(Op::Iastore)
        .aload(0)
        .iload(1)
        .iconst(1)
        .op(Op::Iadd)
        .iload(2)
        .invokestatic("bench/NQueens", "place", "([III)V")
        .bind(Skip)
        .iinc(3, 1)
        .branch(Op::Goto, Loop)
        .bind(Done)
        .op(Op::Return);
  }
  MethodBuilder &M = mainOf(B);
  M.iconst(N)
      .newarray(ArrayType::Int)
      .iconst(0)
      .iconst(N)
      .invokestatic("bench/NQueens", "place", "([III)V")
      .getstatic("bench/NQueens", "count", "I");
  printlnInt(M);
  M.op(Op::Return);
  takeClass(W, B);
  return W;
}

//===----------------------------------------------------------------------===//
// deltablue analog: one-way constraint chain
//===----------------------------------------------------------------------===//

Workload workloads::makeDeltaBlue(int Length, int Iterations) {
  Workload W;
  W.Name = "deltablue";
  W.MainClass = "bench/DeltaBlue";

  ClassBuilder Var("bench/Variable");
  Var.addField(AccPublic, "value", "I");
  Var.addDefaultConstructor();
  takeClass(W, Var);

  // Base constraint: out.value = in.value (equality).
  ClassBuilder Cons("bench/Constraint");
  Cons.addField(AccPublic, "in", "Lbench/Variable;");
  Cons.addField(AccPublic, "out", "Lbench/Variable;");
  Cons.addDefaultConstructor();
  {
    MethodBuilder &Exec = Cons.method(AccPublic, "execute", "()V");
    Exec.aload(0)
        .getfield("bench/Constraint", "out", "Lbench/Variable;")
        .aload(0)
        .getfield("bench/Constraint", "in", "Lbench/Variable;")
        .getfield("bench/Variable", "value", "I")
        .putfield("bench/Variable", "value", "I")
        .op(Op::Return);
  }
  takeClass(W, Cons);

  // Scale constraint: out.value = in.value * scale + offset.
  ClassBuilder Scale("bench/ScaleConstraint", "bench/Constraint");
  Scale.addField(AccPublic, "scale", "I");
  Scale.addField(AccPublic, "offset", "I");
  Scale.addDefaultConstructor();
  {
    MethodBuilder &Exec = Scale.method(AccPublic, "execute", "()V");
    Exec.aload(0)
        .getfield("bench/Constraint", "out", "Lbench/Variable;")
        .aload(0)
        .getfield("bench/Constraint", "in", "Lbench/Variable;")
        .getfield("bench/Variable", "value", "I")
        .aload(0)
        .getfield("bench/ScaleConstraint", "scale", "I")
        .op(Op::Imul)
        .aload(0)
        .getfield("bench/ScaleConstraint", "offset", "I")
        .op(Op::Iadd)
        .putfield("bench/Variable", "value", "I")
        .op(Op::Return);
  }
  takeClass(W, Scale);

  ClassBuilder B("bench/DeltaBlue");
  MethodBuilder &M = mainOf(B);
  // locals: 1=vars 2=chain 3=i 4=iter 5=checksum 6=tmp constraint
  MethodBuilder::Label BuildLoop = M.newLabel(), BuildDone = M.newLabel();
  MethodBuilder::Label IterLoop = M.newLabel(), IterDone = M.newLabel();
  MethodBuilder::Label ExecLoop = M.newLabel(), ExecDone = M.newLabel();
  MethodBuilder::Label IsScale = M.newLabel(), Wired = M.newLabel();
  // Variable[] vars = new Variable[Length + 1]; all allocated.
  M.iconst(Length + 1).anewarray("bench/Variable").astore(1);
  M.iconst(0).istore(3);
  MethodBuilder::Label VarLoop = M.newLabel(), VarDone = M.newLabel();
  M.bind(VarLoop)
      .iload(3)
      .iconst(Length + 1)
      .branch(Op::IfIcmpge, VarDone)
      .aload(1)
      .iload(3)
      .anew("bench/Variable")
      .op(Op::Dup)
      .invokespecial("bench/Variable", "<init>", "()V")
      .op(Op::Aastore)
      .iinc(3, 1)
      .branch(Op::Goto, VarLoop)
      .bind(VarDone);
  // Constraint[] chain = new Constraint[Length]; alternate kinds.
  M.iconst(Length).anewarray("bench/Constraint").astore(2);
  M.iconst(0).istore(3);
  M.bind(BuildLoop)
      .iload(3)
      .iconst(Length)
      .branch(Op::IfIcmpge, BuildDone)
      .iload(3)
      .iconst(1)
      .op(Op::Iand)
      .branch(Op::Ifne, IsScale)
      // Even: equality constraint.
      .anew("bench/Constraint")
      .op(Op::Dup)
      .invokespecial("bench/Constraint", "<init>", "()V")
      .astore(4)
      .branch(Op::Goto, Wired)
      .bind(IsScale)
      // Odd: scale constraint with scale 2, offset 1.
      .anew("bench/ScaleConstraint")
      .op(Op::Dup)
      .invokespecial("bench/ScaleConstraint", "<init>", "()V")
      .astore(4)
      .aload(4)
      .checkcast("bench/ScaleConstraint")
      .iconst(2)
      .putfield("bench/ScaleConstraint", "scale", "I")
      .aload(4)
      .checkcast("bench/ScaleConstraint")
      .iconst(1)
      .putfield("bench/ScaleConstraint", "offset", "I")
      .bind(Wired)
      // c.in = vars[i]; c.out = vars[i+1]; chain[i] = c;
      .aload(4)
      .aload(1)
      .iload(3)
      .op(Op::Aaload)
      .putfield("bench/Constraint", "in", "Lbench/Variable;")
      .aload(4)
      .aload(1)
      .iload(3)
      .iconst(1)
      .op(Op::Iadd)
      .op(Op::Aaload)
      .putfield("bench/Constraint", "out", "Lbench/Variable;")
      .aload(2)
      .iload(3)
      .aload(4)
      .op(Op::Aastore)
      .iinc(3, 1)
      .branch(Op::Goto, BuildLoop)
      .bind(BuildDone);
  // Iterations: plan execution — vars[0].value = iter; run the chain
  // (virtual dispatch per constraint); checksum last variable mod 2^31.
  M.iconst(0).istore(5); // checksum
  M.iconst(0).istore(4); // iter
  M.bind(IterLoop)
      .iload(4)
      .iconst(Iterations)
      .branch(Op::IfIcmpge, IterDone)
      .aload(1)
      .iconst(0)
      .op(Op::Aaload)
      .iload(4)
      .putfield("bench/Variable", "value", "I")
      .iconst(0)
      .istore(3)
      .bind(ExecLoop)
      .iload(3)
      .iconst(Length)
      .branch(Op::IfIcmpge, ExecDone)
      .aload(2)
      .iload(3)
      .op(Op::Aaload)
      .invokevirtual("bench/Constraint", "execute", "()V")
      .iinc(3, 1)
      .branch(Op::Goto, ExecLoop)
      .bind(ExecDone)
      .iload(5)
      .aload(1)
      .iconst(Length)
      .op(Op::Aaload)
      .getfield("bench/Variable", "value", "I")
      .op(Op::Ixor)
      .istore(5)
      .iinc(4, 1)
      .branch(Op::Goto, IterLoop)
      .bind(IterDone)
      .iload(5);
  printlnInt(M);
  M.op(Op::Return);
  takeClass(W, B);
  return W;
}

//===----------------------------------------------------------------------===//
// pidigits: Rabinowitz-Wagon spigot with long arithmetic
//===----------------------------------------------------------------------===//

Workload workloads::makePiDigits(int Digits) {
  Workload W;
  W.Name = "pidigits";
  W.MainClass = "bench/PiDigits";
  ClassBuilder B("bench/PiDigits");
  MethodBuilder &M = mainOf(B);
  int Len = Digits * 10 / 3 + 2;
  // locals: 1=a(long[]) 2=sb 3=predigit 4=nines 5=first 6=j 7..8=q(long)
  //         9=i 10..11=x(long) 12=digit
  MethodBuilder::Label InitLoop = M.newLabel(), InitDone = M.newLabel();
  M.iconst(Len).newarray(ArrayType::Long).astore(1);
  M.iconst(0).istore(9);
  M.bind(InitLoop)
      .iload(9)
      .iconst(Len)
      .branch(Op::IfIcmpge, InitDone)
      .aload(1)
      .iload(9)
      .lconst(2)
      .op(Op::Lastore)
      .iinc(9, 1)
      .branch(Op::Goto, InitLoop)
      .bind(InitDone);
  M.anew("java/lang/StringBuilder")
      .op(Op::Dup)
      .invokespecial("java/lang/StringBuilder", "<init>", "()V")
      .astore(2);
  M.iconst(0).istore(3); // predigit
  M.iconst(0).istore(4); // nines
  M.iconst(1).istore(5); // first
  M.iconst(0).istore(6); // j
  MethodBuilder::Label JLoop = M.newLabel(), JDone = M.newLabel();
  MethodBuilder::Label ILoop = M.newLabel(), IDone = M.newLabel();
  M.bind(JLoop).iload(6).iconst(Digits).branch(Op::IfIcmpge, JDone);
  // q = 0; for (i = Len-1; i >= 1; i--)
  M.lconst(0).lstore(7);
  M.iconst(Len - 1).istore(9);
  M.bind(ILoop).iload(9).iconst(1).branch(Op::IfIcmplt, IDone);
  // x = 10*a[i] + q*(i+1)
  M.lconst(10)
      .aload(1)
      .iload(9)
      .op(Op::Laload)
      .op(Op::Lmul)
      .lload(7)
      .iload(9)
      .iconst(1)
      .op(Op::Iadd)
      .op(Op::I2l)
      .op(Op::Lmul)
      .op(Op::Ladd)
      .lstore(10);
  // a[i] = x % (2*i+1); q = x / (2*i+1)
  M.aload(1)
      .iload(9)
      .lload(10)
      .iconst(2)
      .iload(9)
      .op(Op::Imul)
      .iconst(1)
      .op(Op::Iadd)
      .op(Op::I2l)
      .op(Op::Lrem)
      .op(Op::Lastore);
  M.lload(10)
      .iconst(2)
      .iload(9)
      .op(Op::Imul)
      .iconst(1)
      .op(Op::Iadd)
      .op(Op::I2l)
      .op(Op::Ldiv)
      .lstore(7);
  M.iinc(9, -1).branch(Op::Goto, ILoop).bind(IDone);
  // x = 10*a[0] + q; a[0] = x % 10; digit = (int)(x / 10)
  M.lconst(10)
      .aload(1)
      .iconst(0)
      .op(Op::Laload)
      .op(Op::Lmul)
      .lload(7)
      .op(Op::Ladd)
      .lstore(10);
  M.aload(1)
      .iconst(0)
      .lload(10)
      .lconst(10)
      .op(Op::Lrem)
      .op(Op::Lastore);
  M.lload(10).lconst(10).op(Op::Ldiv).op(Op::L2i).istore(12);
  // Predigit buffering.
  MethodBuilder::Label Nine = M.newLabel(), Ten = M.newLabel(),
                       Plain = M.newLabel(), Next = M.newLabel();
  MethodBuilder::Label EmitPre = M.newLabel(), NinesLoopA = M.newLabel(),
                       NinesDoneA = M.newLabel(), NinesLoopB = M.newLabel(),
                       NinesDoneB = M.newLabel();
  M.iload(12).iconst(9).branch(Op::IfIcmpeq, Nine);
  M.iload(12).iconst(10).branch(Op::IfIcmpeq, Ten);
  M.branch(Op::Goto, Plain);
  // digit == 9: buffer it.
  M.bind(Nine).iinc(4, 1).branch(Op::Goto, Next);
  // digit == 10: carry into predigit, nines become zeros.
  M.bind(Ten)
      .aload(2)
      .iload(3)
      .iconst(1)
      .op(Op::Iadd)
      .invokevirtual("java/lang/StringBuilder", "append",
                     "(I)Ljava/lang/StringBuilder;")
      .op(Op::Pop)
      .bind(NinesLoopA)
      .iload(4)
      .branch(Op::Ifle, NinesDoneA)
      .aload(2)
      .iconst(0)
      .invokevirtual("java/lang/StringBuilder", "append",
                     "(I)Ljava/lang/StringBuilder;")
      .op(Op::Pop)
      .iinc(4, -1)
      .branch(Op::Goto, NinesLoopA)
      .bind(NinesDoneA)
      .iconst(0)
      .istore(3)
      .iconst(0)
      .istore(5) // No longer first.
      .branch(Op::Goto, Next);
  // Plain digit: flush predigit (unless first) and buffered nines.
  M.bind(Plain)
      .iload(5)
      .branch(Op::Ifne, EmitPre) // Still first: skip the flush.
      .aload(2)
      .iload(3)
      .invokevirtual("java/lang/StringBuilder", "append",
                     "(I)Ljava/lang/StringBuilder;")
      .op(Op::Pop)
      .bind(EmitPre)
      .bind(NinesLoopB)
      .iload(4)
      .branch(Op::Ifle, NinesDoneB)
      .aload(2)
      .iconst(9)
      .invokevirtual("java/lang/StringBuilder", "append",
                     "(I)Ljava/lang/StringBuilder;")
      .op(Op::Pop)
      .iinc(4, -1)
      .branch(Op::Goto, NinesLoopB)
      .bind(NinesDoneB)
      .iload(12)
      .istore(3)
      .iconst(0)
      .istore(5)
      .bind(Next)
      .iinc(6, 1)
      .branch(Op::Goto, JLoop)
      .bind(JDone);
  // Flush the final predigit and print.
  M.aload(2)
      .iload(3)
      .invokevirtual("java/lang/StringBuilder", "append",
                     "(I)Ljava/lang/StringBuilder;")
      .op(Op::Pop)
      .aload(2)
      .invokevirtual("java/lang/StringBuilder", "toString",
                     "()Ljava/lang/String;");
  printlnStr(M);
  M.op(Op::Return);
  takeClass(W, B);
  return W;
}

//===----------------------------------------------------------------------===//
// classdump (javap analog)
//===----------------------------------------------------------------------===//

/// Synthesizes \p Count plausible class files as program input data.
static std::vector<std::pair<std::string, std::vector<uint8_t>>>
makeSyntheticClassLibrary(int Count) {
  std::vector<std::pair<std::string, std::vector<uint8_t>>> Files;
  std::mt19937 Rng(20140609); // PLDI'14 started June 9.
  for (int I = 0; I != Count; ++I) {
    ClassBuilder B("lib/Gen" + std::to_string(I));
    int Fields = 4 + Rng() % 10;
    for (int F = 0; F != Fields; ++F)
      B.addField(AccPrivate, "field" + std::to_string(F),
                 F % 2 ? "I" : "Ljava/lang/String;");
    B.addDefaultConstructor();
    int Methods = 4 + Rng() % 8;
    for (int Mi = 0; Mi != Methods; ++Mi) {
      MethodBuilder &M = B.method(AccPublic, "m" + std::to_string(Mi),
                                  "(I)I");
      M.iload(1).iconst(static_cast<int32_t>(Rng() % 1000)).op(Op::Iadd);
      // Pad with string constants so file sizes vary realistically.
      int Pad = 8 + Rng() % 16;
      for (int P = 0; P != Pad; ++P)
        M.ldcString("padding-constant-" + std::to_string(Rng() % 64))
            .op(Op::Pop);
      M.op(Op::Ireturn);
    }
    Files.emplace_back("/srv/classlib/Gen" + std::to_string(I) + ".class",
                       B.bytes());
  }
  return Files;
}

Workload workloads::makeClassDump(int FileCount) {
  Workload W;
  W.Name = "classdump";
  W.MainClass = "bench/ClassDump";
  W.DataFiles = makeSyntheticClassLibrary(FileCount);

  ClassBuilder B("bench/ClassDump");
  {
    // static int u2(byte[] b, int off): big-endian 16-bit read.
    MethodBuilder &U2 = B.method(AccPublic | AccStatic, "u2", "([BI)I");
    U2.aload(0)
        .iload(1)
        .op(Op::Baload)
        .iconst(255)
        .op(Op::Iand)
        .iconst(8)
        .op(Op::Ishl)
        .aload(0)
        .iload(1)
        .iconst(1)
        .op(Op::Iadd)
        .op(Op::Baload)
        .iconst(255)
        .op(Op::Iand)
        .op(Op::Ior)
        .op(Op::Ireturn);
  }
  {
    // static int parse(byte[] b): walks the constant pool, returns its
    // entry count; the real javap does this before disassembling.
    MethodBuilder &P = B.method(AccPublic | AccStatic, "parse", "([B)I");
    // locals: 0=b 1=cpCount 2=off 3=i 4=tag 5=len
    MethodBuilder::Label Loop = P.newLabel(), Done = P.newLabel();
    MethodBuilder::Label TUtf8 = P.newLabel(), T4 = P.newLabel(),
                         T8 = P.newLabel(), T2 = P.newLabel(),
                         TRef = P.newLabel(), Bad = P.newLabel(),
                         Advance = P.newLabel();
    P.aload(0).iconst(8).invokestatic("bench/ClassDump", "u2", "([BI)I")
        .istore(1);
    P.iconst(10).istore(2);
    P.iconst(1).istore(3);
    P.bind(Loop).iload(3).iload(1).branch(Op::IfIcmpge, Done);
    P.aload(0)
        .iload(2)
        .op(Op::Baload)
        .iconst(255)
        .op(Op::Iand)
        .istore(4)
        .iinc(2, 1)
        .iload(4)
        .lookupswitch(Bad, {{1, TUtf8},
                            {3, T4},
                            {4, T4},
                            {5, T8},
                            {6, T8},
                            {7, T2},
                            {8, T2},
                            {9, TRef},
                            {10, TRef},
                            {11, TRef},
                            {12, TRef}});
    P.bind(TUtf8)
        .aload(0)
        .iload(2)
        .invokestatic("bench/ClassDump", "u2", "([BI)I")
        .istore(5)
        .iload(2)
        .iconst(2)
        .op(Op::Iadd)
        .iload(5)
        .op(Op::Iadd)
        .istore(2)
        .branch(Op::Goto, Advance);
    P.bind(T4).iinc(2, 4).branch(Op::Goto, Advance);
    P.bind(T8).iinc(2, 8).iinc(3, 1).branch(Op::Goto, Advance);
    P.bind(T2).iinc(2, 2).branch(Op::Goto, Advance);
    P.bind(TRef).iinc(2, 4).branch(Op::Goto, Advance);
    P.bind(Bad).iconst(-1).op(Op::Ireturn);
    P.bind(Advance).iinc(3, 1).branch(Op::Goto, Loop);
    P.bind(Done).iload(1).op(Op::Ireturn);
  }
  MethodBuilder &M = mainOf(B);
  // locals: 1=names 2=i 3=bytes 4=cp 5=totalCp 6=totalBytes 7=sb 8=name
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel(),
                       BadMagic = M.newLabel(), Cont = M.newLabel();
  M.ldcString("/srv/classlib")
      .invokestatic("doppio/io/Files", "list",
                    "(Ljava/lang/String;)[Ljava/lang/String;")
      .astore(1);
  M.anew("java/lang/StringBuilder")
      .op(Op::Dup)
      .invokespecial("java/lang/StringBuilder", "<init>", "()V")
      .astore(7);
  M.iconst(0).istore(2).iconst(0).istore(5).iconst(0).istore(6);
  M.bind(Loop)
      .iload(2)
      .aload(1)
      .op(Op::Arraylength)
      .branch(Op::IfIcmpge, Done)
      // name = "/srv/classlib/" + names[i]
      .ldcString("/srv/classlib/")
      .aload(1)
      .iload(2)
      .op(Op::Aaload)
      .checkcast("java/lang/String")
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .astore(8)
      .aload(8)
      .invokestatic("doppio/io/Files", "readAllBytes",
                    "(Ljava/lang/String;)[B")
      .astore(3)
      .iload(6)
      .aload(3)
      .op(Op::Arraylength)
      .op(Op::Iadd)
      .istore(6)
      // magic check: (b[0] & 0xFF) == 0xCA
      .aload(3)
      .iconst(0)
      .op(Op::Baload)
      .iconst(255)
      .op(Op::Iand)
      .iconst(0xCA)
      .branch(Op::IfIcmpne, BadMagic)
      .aload(3)
      .invokestatic("bench/ClassDump", "parse", "([B)I")
      .istore(4)
      .iload(5)
      .iload(4)
      .op(Op::Iadd)
      .istore(5)
      // sb.append(name).append(" cp=").append(cp).append("\n")
      .aload(7)
      .aload(8)
      .invokevirtual("java/lang/StringBuilder", "append",
                     ("(Ljava/lang/String;)" + std::string(SbDesc)))
      .ldcString(" cp=")
      .invokevirtual("java/lang/StringBuilder", "append",
                     ("(Ljava/lang/String;)" + std::string(SbDesc)))
      .iload(4)
      .invokevirtual("java/lang/StringBuilder", "append",
                     ("(I)" + std::string(SbDesc)))
      .ldcString("\n")
      .invokevirtual("java/lang/StringBuilder", "append",
                     ("(Ljava/lang/String;)" + std::string(SbDesc)))
      .op(Op::Pop)
      .branch(Op::Goto, Cont)
      .bind(BadMagic)
      .ldcString("bad magic");
  printlnStr(M);
  M.bind(Cont)
      .iinc(2, 1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      // Files.mkdirs("/data"); writeString("/data/classdump.out", ...)
      .ldcString("/data")
      .invokestatic("doppio/io/Files", "mkdirs", "(Ljava/lang/String;)V")
      .ldcString("/data/classdump.out")
      .aload(7)
      .invokevirtual("java/lang/StringBuilder", "toString",
                     "()Ljava/lang/String;")
      .invokestatic("doppio/io/Files", "writeString",
                    "(Ljava/lang/String;Ljava/lang/String;)V")
      .iload(5);
  printlnInt(M);
  M.iload(6);
  printlnInt(M);
  M.op(Op::Return);
  takeClass(W, B);
  return W;
}

//===----------------------------------------------------------------------===//
// minicompile (javac analog)
//===----------------------------------------------------------------------===//

/// Deterministic "java-like" source text.
static std::string syntheticSource(int Index, int Lines) {
  std::mt19937 Rng(777 + Index);
  static const char *Words[] = {"int",    "return", "class",  "public",
                                "value",  "count",  "result", "temp",
                                "buffer", "index",  "widget", "солнце"};
  std::string Out = "class Gen" + std::to_string(Index) + " {\n";
  for (int L = 0; L != Lines; ++L) {
    Out += "  int m" + std::to_string(L) + "(int x) { return x + ";
    Out += std::to_string(Rng() % 10000);
    Out += " + ";
    Out += Words[Rng() % 11];
    Out += "; }\n";
  }
  Out += "}\n";
  return Out;
}

Workload workloads::makeMiniCompile(int SourceCount) {
  Workload W;
  W.Name = "minicompile";
  W.MainClass = "bench/MiniCompile";
  for (int I = 0; I != SourceCount; ++I) {
    std::string Text = syntheticSource(I, 40 + (I * 7) % 30);
    W.DataFiles.emplace_back("/srv/src/Gen" + std::to_string(I) + ".src",
                             std::vector<uint8_t>(Text.begin(),
                                                  Text.end()));
  }

  ClassBuilder B("bench/MiniCompile");
  {
    // static int lex(String src): token count (idents, numbers, symbols).
    MethodBuilder &Lex =
        B.method(AccPublic | AccStatic, "lex", "(Ljava/lang/String;)I");
    // locals: 0=src 1=n 2=i 3=tokens 4=c
    MethodBuilder::Label Loop = Lex.newLabel(), Done = Lex.newLabel();
    MethodBuilder::Label Ws = Lex.newLabel(), Ident = Lex.newLabel(),
                         Num = Lex.newLabel(), Sym = Lex.newLabel();
    MethodBuilder::Label IdLoop = Lex.newLabel(), IdDone = Lex.newLabel();
    MethodBuilder::Label NumLoop = Lex.newLabel(),
                         NumDone = Lex.newLabel();
    Lex.aload(0)
        .invokevirtual("java/lang/String", "length", "()I")
        .istore(1)
        .iconst(0)
        .istore(2)
        .iconst(0)
        .istore(3);
    Lex.bind(Loop).iload(2).iload(1).branch(Op::IfIcmpge, Done);
    Lex.aload(0)
        .iload(2)
        .invokevirtual("java/lang/String", "charAt", "(I)C")
        .istore(4);
    Lex.iload(4)
        .invokestatic("java/lang/Character", "isWhitespace", "(C)Z")
        .branch(Op::Ifne, Ws);
    Lex.iload(4)
        .invokestatic("java/lang/Character", "isLetter", "(C)Z")
        .branch(Op::Ifne, Ident);
    Lex.iload(4)
        .invokestatic("java/lang/Character", "isDigit", "(C)Z")
        .branch(Op::Ifne, Num);
    Lex.branch(Op::Goto, Sym);
    Lex.bind(Ws).iinc(2, 1).branch(Op::Goto, Loop);
    // Identifier: consume letters/digits.
    Lex.bind(Ident).bind(IdLoop).iload(2).iload(1).branch(Op::IfIcmpge,
                                                          IdDone);
    MethodBuilder::Label IdMore = Lex.newLabel();
    Lex.aload(0)
        .iload(2)
        .invokevirtual("java/lang/String", "charAt", "(I)C")
        .istore(4)
        .iload(4)
        .invokestatic("java/lang/Character", "isLetter", "(C)Z")
        .branch(Op::Ifne, IdMore)
        .iload(4)
        .invokestatic("java/lang/Character", "isDigit", "(C)Z")
        .branch(Op::Ifne, IdMore)
        .branch(Op::Goto, IdDone)
        .bind(IdMore)
        .iinc(2, 1)
        .branch(Op::Goto, IdLoop)
        .bind(IdDone)
        .iinc(3, 1)
        .branch(Op::Goto, Loop);
    // Number: consume digits.
    Lex.bind(Num).bind(NumLoop).iload(2).iload(1).branch(Op::IfIcmpge,
                                                         NumDone);
    MethodBuilder::Label NumMore = Lex.newLabel();
    Lex.aload(0)
        .iload(2)
        .invokevirtual("java/lang/String", "charAt", "(I)C")
        .invokestatic("java/lang/Character", "isDigit", "(C)Z")
        .branch(Op::Ifne, NumMore)
        .branch(Op::Goto, NumDone)
        .bind(NumMore)
        .iinc(2, 1)
        .branch(Op::Goto, NumLoop)
        .bind(NumDone)
        .iinc(3, 1)
        .branch(Op::Goto, Loop);
    Lex.bind(Sym).iinc(2, 1).iinc(3, 1).branch(Op::Goto, Loop);
    Lex.bind(Done).iload(3).op(Op::Ireturn);
  }
  MethodBuilder &M = mainOf(B);
  // locals: 1=names 2=i 3=src 4=tokens 5=total 6=name
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.ldcString("/data/build")
      .invokestatic("doppio/io/Files", "mkdirs", "(Ljava/lang/String;)V");
  M.ldcString("/srv/src")
      .invokestatic("doppio/io/Files", "list",
                    "(Ljava/lang/String;)[Ljava/lang/String;")
      .astore(1);
  M.iconst(0).istore(2).iconst(0).istore(5);
  M.bind(Loop)
      .iload(2)
      .aload(1)
      .op(Op::Arraylength)
      .branch(Op::IfIcmpge, Done)
      .aload(1)
      .iload(2)
      .op(Op::Aaload)
      .checkcast("java/lang/String")
      .astore(6)
      .ldcString("/srv/src/")
      .aload(6)
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .invokestatic("doppio/io/Files", "readString",
                    "(Ljava/lang/String;)Ljava/lang/String;")
      .astore(3)
      .aload(3)
      .invokestatic("bench/MiniCompile", "lex", "(Ljava/lang/String;)I")
      .istore(4)
      .iload(5)
      .iload(4)
      .op(Op::Iadd)
      .istore(5)
      // writeString("/data/build/"+name+".out", "tokens="+tokens)
      .ldcString("/data/build/")
      .aload(6)
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .ldcString(".out")
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .ldcString("tokens=")
      .iload(4)
      .invokestatic("java/lang/Integer", "toString",
                    "(I)Ljava/lang/String;")
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .invokestatic("doppio/io/Files", "writeString",
                    "(Ljava/lang/String;Ljava/lang/String;)V")
      .iinc(2, 1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .iload(5);
  printlnInt(M);
  M.op(Op::Return);
  takeClass(W, B);
  (void)StrDesc;
  (void)OutDesc;
  return W;
}

std::vector<Workload> workloads::figure3Workloads() {
  std::vector<Workload> Out;
  Out.push_back(makeClassDump(491)); // javap over javac's 491 class files.
  Out.push_back(makeMiniCompile(19)); // javac over javap's 19 sources.
  Out.push_back(makeRecursive());
  Out.push_back(makeBinaryTrees());
  Out.push_back(makeNQueens(8));
  return Out;
}
