//===- workloads/traffic.cpp ----------------------------------------------==//

#include "workloads/traffic.h"

using namespace doppio;
using namespace doppio::workloads;
namespace server = doppio::rt::server;

struct TrafficGen::Client {
  explicit Client(browser::SimNet &Net) : Net(Net) {}
  server::FrameClient Net;
  size_t Sent = 0;
  size_t Received = 0;
  bool Done = false;
};

TrafficGen::TrafficGen(browser::BrowserEnv &Env, TrafficConfig Cfg)
    : Env(Env), Cfg(std::move(Cfg)) {}

TrafficGen::~TrafficGen() {
  // Sever the fleet's connections before the callbacks' target dies.
  for (auto &C : Fleet)
    C->Net.close();
}

void TrafficGen::start(std::function<void()> Done) {
  Started = true;
  OnDone = std::move(Done);
  Remaining = Cfg.Clients;
  Report.StartNs = Env.clock().nowNs();
  if (Cfg.Clients == 0) {
    Report.EndNs = Report.StartNs;
    if (OnDone)
      OnDone();
    return;
  }
  Fleet.reserve(Cfg.Clients);
  for (size_t I = 0; I < Cfg.Clients; ++I)
    Fleet.push_back(std::make_unique<Client>(Env.net()));
  for (size_t I = 0; I < Cfg.Clients; ++I) {
    uint64_t Delay = Cfg.SpawnSpacingNs * I;
    if (Delay == 0)
      spawn(I);
    else
      // Client arrival pacing is a scheduled timer, not an I/O completion.
      Env.loop().postAfter(kernel::Lane::Timer, [this, I] { spawn(I); },
                           Delay);
  }
}

void TrafficGen::spawn(size_t Index) {
  Client &C = *Fleet[Index];
  C.Net.setOnClose([this, &C] {
    // Server-initiated close (idle reap, shutdown) mid-run: whatever was
    // pending already failed through FrameClient; stop the client.
    if (!C.Done && C.Received >= C.Sent)
      clientDone(C);
  });
  C.Net.connect(Cfg.Port, [this, &C](bool Ok) {
    if (!Ok) {
      ++Report.ConnectFailures;
      clientDone(C);
      return;
    }
    nextRequest(C);
  });
}

void TrafficGen::nextRequest(Client &C) {
  if (C.Sent >= Cfg.RequestsPerClient || !C.Net.isOpen()) {
    clientDone(C);
    return;
  }
  std::vector<uint8_t> Body;
  if (!Cfg.Bodies.empty())
    Body = Cfg.Bodies[C.Sent % Cfg.Bodies.size()];
  ++C.Sent;
  uint64_t SentNs = Env.clock().nowNs();
  // Root span of the whole round trip: current while the request frame
  // goes out, so the SimNet delivery and the server's request span chain
  // under it — end-to-end client -> server -> fs attribution.
  obs::SpanStore &Spans = Env.metrics().spans();
  obs::SpanId Span = Spans.begin("client.req");
  obs::SpanStore::Scope Scope(Spans, Span);
  C.Net.request(Cfg.Handler, std::move(Body),
                [this, &C, SentNs, Span](server::frame::Response R) {
                  Env.metrics().spans().end(Span);
                  ++C.Received;
                  Report.LatenciesNs.push_back(Env.clock().nowNs() - SentNs);
                  if (R.S == server::frame::Status::Ok)
                    ++Report.Completed;
                  else
                    ++Report.Errors;
                  if (C.Done)
                    return; // Failure path already retired this client.
                  nextRequest(C);
                });
}

void TrafficGen::clientDone(Client &C) {
  if (C.Done)
    return;
  C.Done = true;
  Report.BytesReceived += C.Net.bytesReceived();
  C.Net.close();
  if (Remaining > 0)
    --Remaining;
  if (Remaining == 0) {
    Report.EndNs = Env.clock().nowNs();
    if (OnDone) {
      auto Done = std::move(OnDone);
      OnDone = nullptr;
      Done();
    }
  }
}

//===----------------------------------------------------------------------===//
// PipelineScenario
//===----------------------------------------------------------------------===//

namespace proc = doppio::rt::proc;

PipelineScenario::PipelineScenario(browser::BrowserEnv &Env,
                                   proc::ProcessTable &Procs,
                                   PipelineConfig Cfg)
    : Env(Env), Procs(Procs), Cfg(std::move(Cfg)) {
  proc::installCorePrograms(Registry);
}

std::string PipelineScenario::tracePath(size_t Index) const {
  return "/data/fstrace-" + std::to_string(Index) + ".log";
}

std::string PipelineScenario::traceBody(size_t Index) const {
  // Synthetic fstrace records in the shape minicompile's fs activity
  // takes: open/read/close triplets over per-pipeline file names.
  std::string Body;
  for (size_t L = 0; L < Cfg.TraceLines; ++L) {
    std::string File =
        "/data/p" + std::to_string(Index) + "/f" + std::to_string(L / 3);
    switch (L % 3) {
    case 0:
      Body += "open " + File + "\n";
      break;
    case 1:
      Body += "read " + File + " 4096\n";
      break;
    default:
      Body += "close " + File + "\n";
      break;
    }
  }
  return Body;
}

std::string PipelineScenario::expectedWc(size_t Index) const {
  std::string Body = traceBody(Index);
  uint64_t Lines = 0;
  uint64_t Bytes = 0;
  size_t Start = 0;
  while (Start < Body.size()) {
    size_t End = Body.find('\n', Start);
    std::string Line = Body.substr(Start, End - Start);
    if (Line.find("open") != std::string::npos) {
      ++Lines;
      Bytes += Line.size() + 1;
    }
    Start = End + 1;
  }
  return std::to_string(Lines) + " " + std::to_string(Bytes) + "\n";
}

void PipelineScenario::start(std::function<void()> Done) {
  Started = true;
  OnDone = std::move(Done);
  StagesRemaining = Cfg.Pipelines * 3;
  BaseSpawned = Procs.spawned();
  BasePipeBytes = Procs.pipeBytes();
  BaseWriterSuspends = Procs.pipeWriterSuspends();
  if (Cfg.Pipelines == 0) {
    StagesRemaining = 1;
    noteStageDone();
    return;
  }
  Procs.fs().mkdirp("/data", [this](std::optional<rt::ApiError>) {
    for (size_t I = 0; I < Cfg.Pipelines; ++I) {
      std::string Body = traceBody(I);
      Procs.fs().writeFile(
          tracePath(I), std::vector<uint8_t>(Body.begin(), Body.end()),
          [this, I](std::optional<rt::ApiError> Err) {
            if (Err) {
              // Treat a failed seed as three failed stages.
              ExitsOk = false;
              for (int S = 0; S < 3; ++S)
                noteStageDone();
              return;
            }
            launch(I);
          });
    }
  });
}

void PipelineScenario::launch(size_t Index) {
  std::vector<proc::ProcessTable::SpawnSpec> Stages(3);
  Stages[0].Name = "cat";
  Stages[0].Prog = Registry.create({"cat", tracePath(Index)});
  Stages[1].Name = "grep";
  Stages[1].Prog = Registry.create({"grep", "open"});
  Stages[2].Name = "wc";
  Stages[2].Prog = Registry.create({"wc"});
  std::vector<proc::Pid> Pids =
      Procs.spawnPipeline(std::move(Stages), Cfg.PipeCapacity);
  proc::Pid Last = Pids.back();
  for (proc::Pid P : Pids) {
    Procs.waitpid(
        1, P, [this, P, Last, Index](rt::ErrorOr<proc::WaitResult> W) {
          if (!W.ok() || W->ExitCode != 0)
            ExitsOk = false;
          if (W.ok() && P == Last) {
            proc::Process *Wc = Procs.find(P);
            if (!Wc || Wc->state().capturedStdout() != expectedWc(Index))
              WcOk = false;
          }
          noteStageDone();
        });
  }
}

void PipelineScenario::noteStageDone() {
  if (StagesRemaining > 0)
    --StagesRemaining;
  if (StagesRemaining > 0)
    return;
  Report.ProcessesSpawned = Procs.spawned() - BaseSpawned;
  Report.PipeBytes = Procs.pipeBytes() - BasePipeBytes;
  Report.PipeWriterSuspends =
      Procs.pipeWriterSuspends() - BaseWriterSuspends;
  Report.ZombiesAfterDrain = Procs.zombies();
  Report.AllExitsZero = ExitsOk;
  Report.OutputsMatch = WcOk;
  if (OnDone) {
    auto Done = std::move(OnDone);
    OnDone = nullptr;
    Done();
  }
}
