//===- workloads/traffic.cpp ----------------------------------------------==//

#include "workloads/traffic.h"

using namespace doppio;
using namespace doppio::workloads;
namespace server = doppio::rt::server;

struct TrafficGen::Client {
  explicit Client(browser::SimNet &Net) : Net(Net) {}
  server::FrameClient Net;
  size_t Sent = 0;
  size_t Received = 0;
  bool Done = false;
};

TrafficGen::TrafficGen(browser::BrowserEnv &Env, TrafficConfig Cfg)
    : Env(Env), Cfg(std::move(Cfg)) {}

TrafficGen::~TrafficGen() {
  // Sever the fleet's connections before the callbacks' target dies.
  for (auto &C : Fleet)
    C->Net.close();
}

void TrafficGen::start(std::function<void()> Done) {
  Started = true;
  OnDone = std::move(Done);
  Remaining = Cfg.Clients;
  Report.StartNs = Env.clock().nowNs();
  if (Cfg.Clients == 0) {
    Report.EndNs = Report.StartNs;
    if (OnDone)
      OnDone();
    return;
  }
  Fleet.reserve(Cfg.Clients);
  for (size_t I = 0; I < Cfg.Clients; ++I)
    Fleet.push_back(std::make_unique<Client>(Env.net()));
  for (size_t I = 0; I < Cfg.Clients; ++I) {
    uint64_t Delay = Cfg.SpawnSpacingNs * I;
    if (Delay == 0)
      spawn(I);
    else
      // Client arrival pacing is a scheduled timer, not an I/O completion.
      Env.loop().postAfter(kernel::Lane::Timer, [this, I] { spawn(I); },
                           Delay);
  }
}

void TrafficGen::spawn(size_t Index) {
  Client &C = *Fleet[Index];
  C.Net.setOnClose([this, &C] {
    // Server-initiated close (idle reap, shutdown) mid-run: whatever was
    // pending already failed through FrameClient; stop the client.
    if (!C.Done && C.Received >= C.Sent)
      clientDone(C);
  });
  C.Net.connect(Cfg.Port, [this, &C](bool Ok) {
    if (!Ok) {
      ++Report.ConnectFailures;
      clientDone(C);
      return;
    }
    nextRequest(C);
  });
}

void TrafficGen::nextRequest(Client &C) {
  if (C.Sent >= Cfg.RequestsPerClient || !C.Net.isOpen()) {
    clientDone(C);
    return;
  }
  std::vector<uint8_t> Body;
  if (!Cfg.Bodies.empty())
    Body = Cfg.Bodies[C.Sent % Cfg.Bodies.size()];
  ++C.Sent;
  uint64_t SentNs = Env.clock().nowNs();
  // Root span of the whole round trip: current while the request frame
  // goes out, so the SimNet delivery and the server's request span chain
  // under it — end-to-end client -> server -> fs attribution.
  obs::SpanStore &Spans = Env.metrics().spans();
  obs::SpanId Span = Spans.begin("client.req");
  obs::SpanStore::Scope Scope(Spans, Span);
  C.Net.request(Cfg.Handler, std::move(Body),
                [this, &C, SentNs, Span](server::frame::Response R) {
                  Env.metrics().spans().end(Span);
                  ++C.Received;
                  Report.LatenciesNs.push_back(Env.clock().nowNs() - SentNs);
                  if (R.S == server::frame::Status::Ok)
                    ++Report.Completed;
                  else
                    ++Report.Errors;
                  if (C.Done)
                    return; // Failure path already retired this client.
                  nextRequest(C);
                });
}

void TrafficGen::clientDone(Client &C) {
  if (C.Done)
    return;
  C.Done = true;
  Report.BytesReceived += C.Net.bytesReceived();
  C.Net.close();
  if (Remaining > 0)
    --Remaining;
  if (Remaining == 0) {
    Report.EndNs = Env.clock().nowNs();
    if (OnDone) {
      auto Done = std::move(OnDone);
      OnDone = nullptr;
      Done();
    }
  }
}
