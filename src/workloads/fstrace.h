//===- workloads/fstrace.h - The Figure 6 file system trace ------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §7.3 evaluates the Doppio file system by replaying "recorded file
/// system calls from DoppioJVM's javac benchmark": 3185 operations, 1560
/// unique files, over 10.5 MB read, 97 KB written. The authors' recording
/// is not published; this generator synthesizes a trace with the same
/// aggregate statistics and the same composition (class-loader dominated:
/// stat + full read per class file, a handful of compiler outputs
/// written). The replay drives one operation at a time through
/// suspend-and-resume, exactly as a program using the synchronous API does
/// (§4.2) — which is why each browser's resumption mechanism (§4.4) shows
/// up in the results.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_WORKLOADS_FSTRACE_H
#define DOPPIO_WORKLOADS_FSTRACE_H

#include "doppio/fs.h"
#include "doppio/suspend.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace doppio {
namespace workloads {

struct FsTraceOp {
  enum class Kind { Mkdir, Write, Read, Stat, Readdir, Unlink };
  Kind K;
  std::string Path;
  uint32_t SizeBytes = 0; // Write size (reads use the file's size).
};

struct FsTrace {
  std::vector<FsTraceOp> Ops;
  /// Files that must exist before the trace starts (path -> size).
  std::vector<std::pair<std::string, uint32_t>> Preexisting;
  uint64_t ExpectedReadBytes = 0;
  uint64_t ExpectedWriteBytes = 0;
  size_t uniqueFiles() const;
};

/// The synthetic javac trace with the §7.3 statistics.
FsTrace makeJavacTrace();

struct ReplayStats {
  uint64_t VirtualNs = 0;
  uint64_t Operations = 0;
  uint64_t BytesRead = 0;
  uint64_t BytesWritten = 0;
  uint64_t Errors = 0;
};

/// Seeds the pre-existing files (not timed), then replays the trace one
/// blocking operation at a time through \p Susp, invoking \p Done with the
/// timing once the event loop drains.
void replayTrace(const FsTrace &Trace, rt::fs::FileSystem &Fs,
                 browser::BrowserEnv &Env, rt::Suspender &Susp,
                 std::function<void(ReplayStats)> Done);

/// The Figure 6 baseline: "Node JS running on top of the native OS file
/// system". Models the same operations against an OS page cache with
/// Node's per-call overhead; returns nominal nanoseconds.
uint64_t nativeBaselineNs(const FsTrace &Trace);

} // namespace workloads
} // namespace doppio

#endif // DOPPIO_WORKLOADS_FSTRACE_H
