//===- vm32/game.h - The "Me and My Shadow" analog (§7.2) ---------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The case-study game: a level-based "compiled C++" program that loads
/// one asset per level, simulates physics frames, and saves progress to a
/// configuration file after each level — the exact behaviours §7.2
/// contrasts between plain Emscripten (preload everything, no saving,
/// page freezes) and Emscripten+Doppio (lazy loading, persistent saves,
/// responsive page).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_VM32_GAME_H
#define DOPPIO_VM32_GAME_H

#include "vm32/minivm.h"

namespace doppio {
namespace vm32 {

struct GameConfig {
  int Levels = 4;
  int FramesPerLevel = 1500;
  /// Size of each level's asset file.
  int AssetBytes = 32 * 1024;
};

/// The "compiled" game program.
MProgram buildShadowGame(const GameConfig &Config);

/// Server paths of the game's level assets ("/srv/assets/levelK.dat").
std::vector<std::string> gameAssetPaths(const GameConfig &Config);

/// Generates the level asset files (path -> bytes) for the web server.
std::vector<std::pair<std::string, std::vector<uint8_t>>>
makeGameAssets(const GameConfig &Config);

/// Where the game saves its progress.
inline const char *gameSavePath() { return "/save/progress.txt"; }

} // namespace vm32
} // namespace doppio

#endif // DOPPIO_VM32_GAME_H
