//===- vm32/minivm.h - The Emscripten case-study VM (§7.2) --------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature stack VM standing in for "C++ compiled to JavaScript with
/// Emscripten" (§7.2, DESIGN.md's substitution table). The same compiled
/// program can be hosted two ways, reproducing the case study's contrast:
///
///  - HostMode::Emscripten — how plain Emscripten output runs: main() is
///    one long browser event (no automatic segmentation, so the watchdog
///    kills long programs, §2.1/§3.1); files must be preloaded into a
///    memory FS before execution because there is no synchronous dynamic
///    loading; and writes have no persistent backing, so saving fails.
///
///  - HostMode::DoppioRt — the same program on the Doppio runtime: it runs
///    as a green thread with suspend checks (page stays responsive),
///    LoadAsset blocks through the §4.2 bridge onto the Doppio file system
///    (lazy XHR downloads), and SaveState writes to a persistent mount.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_VM32_MINIVM_H
#define DOPPIO_VM32_MINIVM_H

#include "doppio/fs.h"
#include "doppio/threads.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace doppio {
namespace vm32 {

/// Instruction set of the compiled program.
enum class MOp : uint8_t {
  Push,       // A: immediate -> push
  Pop,        //
  Dup,        //
  LoadLocal,  // A: slot
  StoreLocal, // A: slot
  Add,
  Sub,
  Mul,
  Xor,
  CmpLt, // push(a < b)
  Jmp,   // A: target index
  Jz,    // A: target (pops condition)
  Call,  // A: function index, B: argument count
  Ret,   // pops return value
  Print,     // pops value -> stdout line
  Puts,      // A: string index -> stdout line
  LoadAsset, // A: string index (path) -> pushes byte checksum
  SaveState, // A: string index (path); pops value, writes it as text
  FrameMark, // end of a game frame: yield/watchdog point
  Halt,      // pops exit value
};

struct MInsn {
  MOp Op;
  int32_t A = 0;
  int32_t B = 0;
};

struct MFunction {
  std::string Name;
  int NumLocals = 0; // Including arguments (slots 0..argc-1).
  std::vector<MInsn> Code;
};

struct MProgram {
  std::vector<MFunction> Functions;
  std::vector<std::string> Strings;
  int Entry = 0;
};

/// Tiny assembler for MPrograms with label fixups.
class MFunctionBuilder {
public:
  explicit MFunctionBuilder(std::string Name, int NumLocals)
      : F{std::move(Name), NumLocals, {}} {}

  using Label = int;
  Label newLabel() {
    LabelPos.push_back(-1);
    return static_cast<Label>(LabelPos.size() - 1);
  }
  MFunctionBuilder &bind(Label L) {
    LabelPos[L] = static_cast<int32_t>(F.Code.size());
    return *this;
  }
  MFunctionBuilder &emit(MOp Op, int32_t A = 0, int32_t B = 0) {
    F.Code.push_back({Op, A, B});
    return *this;
  }
  MFunctionBuilder &jump(MOp Op, Label L) {
    Fixups.push_back(F.Code.size());
    F.Code.push_back({Op, L, 0});
    return *this;
  }
  MFunction finish();

private:
  MFunction F;
  std::vector<int32_t> LabelPos;
  std::vector<size_t> Fixups;
};

/// How the compiled program is hosted in the browser (§7.2).
enum class HostMode { Emscripten, DoppioRt };

/// Terminal states.
enum class Vm32Status {
  Idle,
  Running,
  Finished,
  /// The browser watchdog killed the script mid-run (Emscripten mode's
  /// fate on long computations, §2.1).
  Killed,
  /// A syscall failed (e.g. SaveState without persistent storage, or
  /// LoadAsset of a non-preloaded file in Emscripten mode).
  Faulted,
};

const char *vm32StatusName(Vm32Status S);

/// Executes one MProgram under either host mode.
class MiniVm {
public:
  MiniVm(browser::BrowserEnv &Env, rt::fs::FileSystem &Fs, MProgram P,
         HostMode Mode);
  ~MiniVm();

  /// Emscripten mode: asynchronously preloads \p Paths into the in-memory
  /// asset map (Emscripten's preinit file packaging), then runs main as a
  /// single browser event. Drive the event loop afterwards.
  void preloadAndRun(const std::vector<std::string> &AssetPaths);

  /// Doppio mode: spawns the program on a Doppio thread pool; assets load
  /// lazily and saves persist. Drive the event loop afterwards.
  void start();

  Vm32Status status() const { return Status; }
  int32_t exitValue() const { return ExitValue; }
  const std::string &consoleOutput() const { return Console; }
  const std::string &faultReason() const { return FaultReason; }

  struct Stats {
    uint64_t InsnsExecuted = 0;
    uint64_t Frames = 0;
    uint64_t AssetsLoaded = 0;
    uint64_t AssetBytesPreloaded = 0;
    uint64_t SavesAttempted = 0;
    uint64_t SavesSucceeded = 0;
    uint64_t SuspendYields = 0;
  };
  const Stats &stats() const { return S; }

  rt::Suspender &suspender() { return Susp; }

private:
  friend class Vm32Thread;

  struct MFrame {
    const MFunction *F;
    size_t Pc = 0;
    std::vector<int32_t> Locals;
  };

  enum class StepOutcome { Continue, Yield, Block, Done };

  /// Executes until a stopping condition; used by both host modes.
  StepOutcome run(bool Segmented);
  StepOutcome step(bool Segmented);
  void fault(const std::string &Reason);

  browser::BrowserEnv &Env;
  rt::fs::FileSystem &Fs;
  MProgram Prog;
  HostMode Mode;
  rt::Suspender Susp;
  rt::ThreadPool Pool;

  std::vector<MFrame> CallStack;
  std::vector<int32_t> Operands;
  Vm32Status Status = Vm32Status::Idle;
  int32_t ExitValue = 0;
  std::string Console;
  std::string FaultReason;
  Stats S;

  // Emscripten-mode preloaded assets (path -> bytes).
  std::map<std::string, std::vector<uint8_t>> Preloaded;

  // Doppio-mode async-syscall state.
  bool AwaitingResult = false;
  /// Whether the settled result is a value to push (LoadAsset) or a
  /// completion with no stack effect (SaveState).
  bool PendingPush = false;
  rt::ErrorOr<int32_t> PendingResult{0};
  int32_t PoolTid = -1;
};

} // namespace vm32
} // namespace doppio

#endif // DOPPIO_VM32_MINIVM_H
