//===- vm32/game.cpp ------------------------------------------------------==//

#include "vm32/game.h"

#include <random>

using namespace doppio;
using namespace doppio::vm32;

std::vector<std::string> vm32::gameAssetPaths(const GameConfig &Config) {
  std::vector<std::string> Paths;
  for (int L = 0; L != Config.Levels; ++L)
    Paths.push_back("/srv/assets/level" + std::to_string(L) + ".dat");
  return Paths;
}

std::vector<std::pair<std::string, std::vector<uint8_t>>>
vm32::makeGameAssets(const GameConfig &Config) {
  std::vector<std::pair<std::string, std::vector<uint8_t>>> Assets;
  std::mt19937 Rng(424242);
  for (const std::string &Path : gameAssetPaths(Config)) {
    std::vector<uint8_t> Bytes(Config.AssetBytes);
    for (auto &B : Bytes)
      B = static_cast<uint8_t>(Rng());
    Assets.emplace_back(Path, std::move(Bytes));
  }
  return Assets;
}

MProgram vm32::buildShadowGame(const GameConfig &Config) {
  MProgram P;
  for (const std::string &Path : gameAssetPaths(Config))
    P.Strings.push_back(Path); // Index == level number.
  int SaveStr = static_cast<int>(P.Strings.size());
  P.Strings.push_back(gameSavePath());
  int OverStr = static_cast<int>(P.Strings.size());
  P.Strings.push_back("game over");

  // physics(f): ~40 arithmetic steps per frame.
  {
    MFunctionBuilder B("physics", /*NumLocals=*/3); // 0=f 1=i 2=acc
    auto Loop = B.newLabel(), Done = B.newLabel();
    B.emit(MOp::LoadLocal, 0).emit(MOp::StoreLocal, 2);
    B.emit(MOp::Push, 0).emit(MOp::StoreLocal, 1);
    B.bind(Loop)
        .emit(MOp::LoadLocal, 1)
        .emit(MOp::Push, 40)
        .emit(MOp::CmpLt)
        .jump(MOp::Jz, Done)
        // acc = (acc * 3 + i) ^ f
        .emit(MOp::LoadLocal, 2)
        .emit(MOp::Push, 3)
        .emit(MOp::Mul)
        .emit(MOp::LoadLocal, 1)
        .emit(MOp::Add)
        .emit(MOp::LoadLocal, 0)
        .emit(MOp::Xor)
        .emit(MOp::StoreLocal, 2)
        // i++
        .emit(MOp::LoadLocal, 1)
        .emit(MOp::Push, 1)
        .emit(MOp::Add)
        .emit(MOp::StoreLocal, 1)
        .jump(MOp::Jmp, Loop)
        .bind(Done)
        .emit(MOp::LoadLocal, 2)
        .emit(MOp::Ret);
    P.Functions.push_back(B.finish());
  }
  int PhysicsFn = 0;

  // main: per level, load asset, run frames, save progress.
  {
    MFunctionBuilder B("main", /*NumLocals=*/3); // 0=level 1=frame 2=total
    auto LevelLoop = B.newLabel(), LevelDone = B.newLabel();
    auto FrameLoop = B.newLabel(), FrameDone = B.newLabel();
    std::vector<MFunctionBuilder::Label> LevelCases;
    B.emit(MOp::Push, 0).emit(MOp::StoreLocal, 2);
    B.emit(MOp::Push, 0).emit(MOp::StoreLocal, 0);
    B.bind(LevelLoop)
        .emit(MOp::LoadLocal, 0)
        .emit(MOp::Push, Config.Levels)
        .emit(MOp::CmpLt)
        .jump(MOp::Jz, LevelDone);
    // total ^= LoadAsset(level's path). The string index is level-
    // dependent; a dispatch chain selects it (the VM has no indirect
    // string operand).
    auto AfterLoad = B.newLabel();
    for (int L = 0; L != Config.Levels; ++L) {
      auto ThisLevel = B.newLabel();
      B.emit(MOp::LoadLocal, 0)
          .emit(MOp::Push, L)
          .emit(MOp::Xor)              // 0 iff level == L.
          .jump(MOp::Jz, ThisLevel);   // Take the case when equal.
      LevelCases.push_back(ThisLevel);
    }
    // Fallthrough (never reached when level < Levels).
    B.emit(MOp::Push, 0).jump(MOp::Jmp, AfterLoad);
    for (int L = 0; L != Config.Levels; ++L) {
      B.bind(LevelCases[L]);
      B.emit(MOp::LoadAsset, L).jump(MOp::Jmp, AfterLoad);
    }
    B.bind(AfterLoad)
        .emit(MOp::LoadLocal, 2)
        .emit(MOp::Xor)
        .emit(MOp::StoreLocal, 2);
    // Frame loop.
    B.emit(MOp::Push, 0).emit(MOp::StoreLocal, 1);
    B.bind(FrameLoop)
        .emit(MOp::LoadLocal, 1)
        .emit(MOp::Push, Config.FramesPerLevel)
        .emit(MOp::CmpLt)
        .jump(MOp::Jz, FrameDone)
        .emit(MOp::LoadLocal, 1)
        .emit(MOp::Call, PhysicsFn, 1)
        .emit(MOp::LoadLocal, 2)
        .emit(MOp::Xor)
        .emit(MOp::StoreLocal, 2)
        .emit(MOp::FrameMark)
        .emit(MOp::LoadLocal, 1)
        .emit(MOp::Push, 1)
        .emit(MOp::Add)
        .emit(MOp::StoreLocal, 1)
        .jump(MOp::Jmp, FrameLoop)
        .bind(FrameDone);
    // Save progress: level+1.
    B.emit(MOp::LoadLocal, 0)
        .emit(MOp::Push, 1)
        .emit(MOp::Add)
        .emit(MOp::SaveState, SaveStr);
    // level++
    B.emit(MOp::LoadLocal, 0)
        .emit(MOp::Push, 1)
        .emit(MOp::Add)
        .emit(MOp::StoreLocal, 0)
        .jump(MOp::Jmp, LevelLoop)
        .bind(LevelDone)
        .emit(MOp::LoadLocal, 2)
        .emit(MOp::Print)
        .emit(MOp::Puts, OverStr)
        .emit(MOp::Push, 0)
        .emit(MOp::Halt);
    P.Functions.push_back(B.finish());
    P.Entry = 1;
  }
  return P;
}
