//===- vm32/minivm.cpp ----------------------------------------------------==//

#include "vm32/minivm.h"

#include <cassert>

using namespace doppio;
using namespace doppio::vm32;
using rt::ApiError;
using rt::Errno;
using rt::ErrorOr;

const char *vm32::vm32StatusName(Vm32Status St) {
  switch (St) {
  case Vm32Status::Idle:
    return "idle";
  case Vm32Status::Running:
    return "running";
  case Vm32Status::Finished:
    return "finished";
  case Vm32Status::Killed:
    return "killed-by-watchdog";
  case Vm32Status::Faulted:
    return "faulted";
  }
  return "?";
}

MFunction MFunctionBuilder::finish() {
  for (size_t At : Fixups) {
    int32_t L = F.Code[At].A;
    assert(LabelPos[L] >= 0 && "jump to unbound label");
    F.Code[At].A = LabelPos[L];
  }
  return std::move(F);
}

namespace doppio {
namespace vm32 {

/// The Doppio-mode guest thread wrapper: the compiled program's explicit
/// stack lives in the MiniVm; this adapter plugs it into the pool (§4.3).
class Vm32Thread : public rt::GuestThread {
public:
  explicit Vm32Thread(MiniVm &Vm) : Vm(Vm) {}

  rt::RunOutcome resume() override {
    // Deliver a settled blocking syscall result (§4.2).
    if (Vm.AwaitingResult) {
      Vm.AwaitingResult = false;
      if (!Vm.PendingResult.ok()) {
        Vm.fault(Vm.PendingResult.error().message());
        return rt::RunOutcome::Terminated;
      }
      if (Vm.PendingPush)
        Vm.Operands.push_back(*Vm.PendingResult);
    }
    switch (Vm.run(/*Segmented=*/true)) {
    case MiniVm::StepOutcome::Yield:
      return rt::RunOutcome::Yielded;
    case MiniVm::StepOutcome::Block:
      return rt::RunOutcome::Blocked;
    default:
      return rt::RunOutcome::Terminated;
    }
  }

  std::string name() const override { return "vm32"; }

private:
  MiniVm &Vm;
};

} // namespace vm32
} // namespace doppio

MiniVm::MiniVm(browser::BrowserEnv &Env, rt::fs::FileSystem &Fs, MProgram P,
               HostMode Mode)
    : Env(Env), Fs(Fs), Prog(std::move(P)), Mode(Mode), Susp(Env),
      Pool(Env, Susp) {}

MiniVm::~MiniVm() = default;

void MiniVm::fault(const std::string &Reason) {
  Status = Vm32Status::Faulted;
  FaultReason = Reason;
  CallStack.clear();
}

static int32_t checksumBytes(const std::vector<uint8_t> &Bytes) {
  uint32_t H = 2166136261u;
  for (uint8_t B : Bytes)
    H = (H ^ B) * 16777619u;
  return static_cast<int32_t>(H);
}

void MiniVm::preloadAndRun(const std::vector<std::string> &AssetPaths) {
  assert(Mode == HostMode::Emscripten &&
         "preloadAndRun models Emscripten packaging");
  Status = Vm32Status::Running;
  // Emscripten's file packager: every asset is fetched before main runs,
  // whether the program will need it or not (§7.2: "the Emscripten demo
  // needs to load all of the game's assets into memory prior to
  // execution").
  auto Remaining = std::make_shared<size_t>(AssetPaths.size());
  auto RunMain = [this] {
    Env.loop().post(kernel::Lane::Background, [this] {
      // main() as one long event: no segmentation.
      CallStack.push_back(
          {&Prog.Functions[Prog.Entry], 0,
           std::vector<int32_t>(Prog.Functions[Prog.Entry].NumLocals, 0)});
      run(/*Segmented=*/false);
    });
  };
  if (AssetPaths.empty()) {
    RunMain();
    return;
  }
  for (const std::string &Path : AssetPaths) {
    Fs.readFile(Path, [this, Path, Remaining,
                       RunMain](ErrorOr<std::vector<uint8_t>> R) {
      if (!R) {
        fault("preload failed: " + R.error().message());
        return;
      }
      S.AssetBytesPreloaded += R->size();
      Preloaded[Path] = std::move(*R);
      if (--*Remaining == 0)
        RunMain();
    });
  }
}

void MiniVm::start() {
  assert(Mode == HostMode::DoppioRt && "start spawns on the Doppio pool");
  Status = Vm32Status::Running;
  CallStack.push_back(
      {&Prog.Functions[Prog.Entry], 0,
       std::vector<int32_t>(Prog.Functions[Prog.Entry].NumLocals, 0)});
  PoolTid =
      static_cast<int32_t>(Pool.spawn(std::make_unique<Vm32Thread>(*this)));
}

MiniVm::StepOutcome MiniVm::run(bool Segmented) {
  while (true) {
    StepOutcome R = step(Segmented);
    if (R != StepOutcome::Continue)
      return R;
  }
}

MiniVm::StepOutcome MiniVm::step(bool Segmented) {
  if (CallStack.empty())
    return StepOutcome::Done;
  MFrame &F = CallStack.back();
  if (F.Pc >= F.F->Code.size()) {
    fault("fell off the end of " + F.F->Name);
    return StepOutcome::Done;
  }
  const MInsn &I = F.F->Code[F.Pc];
  ++S.InsnsExecuted;
  // Model the compiled code's execution cost on the engine.
  Env.chargeCompute(12);

  auto pop = [this] {
    int32_t V = Operands.back();
    Operands.pop_back();
    return V;
  };

  switch (I.Op) {
  case MOp::Push:
    Operands.push_back(I.A);
    ++F.Pc;
    return StepOutcome::Continue;
  case MOp::Pop:
    pop();
    ++F.Pc;
    return StepOutcome::Continue;
  case MOp::Dup:
    Operands.push_back(Operands.back());
    ++F.Pc;
    return StepOutcome::Continue;
  case MOp::LoadLocal:
    Operands.push_back(F.Locals[I.A]);
    ++F.Pc;
    return StepOutcome::Continue;
  case MOp::StoreLocal:
    F.Locals[I.A] = pop();
    ++F.Pc;
    return StepOutcome::Continue;
  case MOp::Add: {
    int32_t B = pop(), A = pop();
    Operands.push_back(static_cast<int32_t>(
        static_cast<int64_t>(A) + B));
    ++F.Pc;
    return StepOutcome::Continue;
  }
  case MOp::Sub: {
    int32_t B = pop(), A = pop();
    Operands.push_back(static_cast<int32_t>(
        static_cast<int64_t>(A) - B));
    ++F.Pc;
    return StepOutcome::Continue;
  }
  case MOp::Mul: {
    int32_t B = pop(), A = pop();
    Operands.push_back(static_cast<int32_t>(
        static_cast<int64_t>(A) * B));
    ++F.Pc;
    return StepOutcome::Continue;
  }
  case MOp::Xor: {
    int32_t B = pop(), A = pop();
    Operands.push_back(A ^ B);
    ++F.Pc;
    return StepOutcome::Continue;
  }
  case MOp::CmpLt: {
    int32_t B = pop(), A = pop();
    Operands.push_back(A < B ? 1 : 0);
    ++F.Pc;
    return StepOutcome::Continue;
  }
  case MOp::Jmp:
    F.Pc = static_cast<size_t>(I.A);
    return StepOutcome::Continue;
  case MOp::Jz:
    F.Pc = pop() == 0 ? static_cast<size_t>(I.A) : F.Pc + 1;
    return StepOutcome::Continue;
  case MOp::Call: {
    const MFunction &Callee = Prog.Functions[I.A];
    MFrame New{&Callee, 0, std::vector<int32_t>(Callee.NumLocals, 0)};
    for (int Arg = I.B - 1; Arg >= 0; --Arg)
      New.Locals[Arg] = pop();
    ++F.Pc;
    CallStack.push_back(std::move(New));
    return StepOutcome::Continue;
  }
  case MOp::Ret: {
    int32_t V = pop();
    CallStack.pop_back();
    Operands.push_back(V);
    return StepOutcome::Continue;
  }
  case MOp::Print:
    Console += std::to_string(pop()) + "\n";
    ++F.Pc;
    return StepOutcome::Continue;
  case MOp::Puts:
    Console += Prog.Strings[I.A] + "\n";
    ++F.Pc;
    return StepOutcome::Continue;

  case MOp::LoadAsset: {
    const std::string &Path = Prog.Strings[I.A];
    ++S.AssetsLoaded;
    if (Mode == HostMode::Emscripten) {
      // Only the preloaded memory FS is reachable synchronously (§7.2).
      auto It = Preloaded.find(Path);
      if (It == Preloaded.end()) {
        fault("synchronous load of non-preloaded asset " + Path);
        return StepOutcome::Done;
      }
      Operands.push_back(checksumBytes(It->second));
      ++F.Pc;
      return StepOutcome::Continue;
    }
    // Doppio mode: block this green thread on the asynchronous download;
    // the program observes a synchronous read (§4.2).
    ++F.Pc;
    Fs.readFile(Path, [this](ErrorOr<std::vector<uint8_t>> R) {
      if (!R)
        PendingResult = R.error();
      else
        PendingResult = checksumBytes(*R);
      AwaitingResult = true;
      PendingPush = true;
      Pool.unblock(PoolTid);
    });
    return StepOutcome::Block;
  }

  case MOp::SaveState: {
    const std::string &Path = Prog.Strings[I.A];
    int32_t V = pop();
    ++S.SavesAttempted;
    if (Mode == HostMode::Emscripten) {
      // No persistent backing: "does not back files to a persistent
      // storage mechanism ... does not support game saving" (§7.2). The
      // write is silently lost (MEMFS semantics).
      ++F.Pc;
      return StepOutcome::Continue;
    }
    ++F.Pc;
    std::string Text = std::to_string(V);
    Fs.writeFile(Path, std::vector<uint8_t>(Text.begin(), Text.end()),
                 [this](std::optional<ApiError> E) {
                   if (E) {
                     PendingResult = *E;
                   } else {
                     ++S.SavesSucceeded;
                     PendingResult = 0;
                   }
                   AwaitingResult = true;
                   PendingPush = false;
                   Pool.unblock(PoolTid);
                 });
    return StepOutcome::Block;
  }

  case MOp::FrameMark:
    ++S.Frames;
    ++F.Pc;
    Env.chargeCompute(browser::usToNs(150)); // Render + physics residue.
    if (!Segmented) {
      // Unsegmented Emscripten main loop: the browser eventually kills
      // the unresponsive script (§3.1).
      if (Env.loop().currentEventOverLimit()) {
        Status = Vm32Status::Killed;
        FaultReason = "browser stopped an unresponsive script";
        CallStack.clear();
        return StepOutcome::Done;
      }
      return StepOutcome::Continue;
    }
    if (Susp.shouldSuspend()) {
      ++S.SuspendYields;
      return StepOutcome::Yield;
    }
    return StepOutcome::Continue;

  case MOp::Halt:
    ExitValue = pop();
    Status = Vm32Status::Finished;
    CallStack.clear();
    return StepOutcome::Done;
  }
  fault("illegal instruction");
  return StepOutcome::Done;
}
