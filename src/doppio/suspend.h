//===- doppio/suspend.h - Suspend-and-resume (§4.1, §4.4) --------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heart of Doppio's execution environment: the *suspend-and-resume*
/// mechanism that lets a running program save itself to the heap, yield the
/// JavaScript thread so queued events (user input!) can run, and continue
/// from a *resumption callback* later.
///
/// Two pieces live here:
///
///  - Resumption scheduling (§4.4): choosing the fastest browser mechanism
///    able to place the resumption callback at the back of the event queue —
///    setImmediate where available (IE10), the sendMessage channel with a
///    string-ID-to-callback map elsewhere, and setTimeout (with its 4 ms
///    clamp) on IE8 where sendMessage is synchronous.
///
///  - The adaptive suspend counter (§4.1): the language implementation
///    calls shouldSuspend() at its check points; a counter decrements to 0,
///    at which point Doppio measures how long the countdown took, updates a
///    cumulative moving average of the check rate, and sizes the next
///    counter so one countdown spans the configured time slice.
///
/// Suspension time is tracked (scheduled -> resumed), which is the data
/// behind Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SUSPEND_H
#define DOPPIO_DOPPIO_SUSPEND_H

#include "browser/env.h"
#include "doppio/cont/continuation.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace doppio {
namespace rt {

/// The browser primitives usable for scheduling a resumption (§4.4).
enum class ResumeMechanism { SetTimeout, SendMessage, SetImmediate };

const char *resumeMechanismName(ResumeMechanism M);

/// Selects the best resumption mechanism for \p P, per §4.4: setImmediate
/// if present; otherwise sendMessage unless it dispatches synchronously
/// (IE8); otherwise setTimeout.
ResumeMechanism chooseResumeMechanism(const browser::Profile &P);

/// Suspend-and-resume services for one program.
class Suspender {
public:
  explicit Suspender(browser::BrowserEnv &Env);

  /// Overrides the mechanism (used by the §4.4 ablation benchmark).
  void forceMechanism(ResumeMechanism M) { Mechanism = M; }
  ResumeMechanism mechanism() const { return Mechanism; }

  /// Ablation of §4.1's adaptive counter: pins the countdown to a fixed
  /// value instead of deriving it from the cumulative moving average.
  /// Pass 0 to restore adaptation: the next countdown is reseeded from
  /// the CMA immediately (not left at the stale pinned target).
  void forceFixedCounter(uint64_t Count);

  /// Schedules \p Resume to run as a fresh event at the back of the queue.
  /// The time between this call and the callback running is accounted as
  /// suspension time (Figure 5).
  void scheduleResumption(std::function<void()> Resume);

  /// The reified form (DESIGN.md §16): parks \p K in the resumption
  /// registry and dispatches it through the §4.4 mechanism. Every
  /// mechanism — not just sendMessage — now demultiplexes through the
  /// registry by prompt id, so the one-shot/leak accounting covers all of
  /// them and a double dispatch is detected instead of silently lost.
  void scheduleResumption(rt::Continuation K);

  /// Sets the target duration of one execution slice (default 10 ms — the
  /// event must stay well under the watchdog limit while staying long
  /// enough to amortize resumption latency).
  void setTimeSliceNs(uint64_t Ns) { TimeSliceNs = Ns; }
  uint64_t timeSliceNs() const { return TimeSliceNs; }

  /// The language implementation's periodic check (§4.1): decrements the
  /// counter; when it reaches zero, re-derives the counter from the
  /// cumulative moving average of check cost and returns true — the
  /// program should suspend now.
  bool shouldSuspend();

  /// Resets the countdown measurement window; called when a fresh slice
  /// begins (after resumption).
  void beginSlice();

  // Figure 5 accounting (registry-backed: `suspend.*` cells).
  uint64_t totalSuspendedNs() const { return SuspendedNsC->value(); }
  uint64_t resumptionCount() const { return ResumptionsC->value(); }
  /// Average virtual nanoseconds between suspend checks (the CMA of §4.1).
  double avgCheckIntervalNs() const { return CmaCheckNs; }
  uint64_t currentCounterTarget() const { return CounterTarget; }

  /// Resumptions currently parked (scheduled, not yet dispatched).
  size_t pendingResumptions() const { return PendingResumptions.size(); }
  /// Dispatches that found no parked resumption for their id — a double
  /// dispatch or a dropped registration; always a bug.
  uint64_t resumeMisses() const { return ResumeMissesC->value(); }

private:
  static constexpr uint64_t DefaultCounterTarget = 1000;

  /// One parked resumption: the continuation plus the suspend timestamp
  /// that prices the Figure 5 wait on dispatch.
  struct Pending {
    rt::Continuation K;
    uint64_t SuspendedAtNs = 0;
  };

  void dispatchViaMechanism(uint64_t Id);
  /// Dispatch tail shared by all three mechanisms: unparks \p Id, charges
  /// the suspension wait, and resumes the continuation.
  void fire(uint64_t Id);
  /// §4.1 counter size for the current CMA estimate (clamped).
  uint64_t targetFromCma() const;

  browser::BrowserEnv &Env;
  ResumeMechanism Mechanism;

  // Resumption registry: every mechanism parks the continuation here and
  // carries only the prompt id across the browser hop (sendMessage can
  // carry nothing else — strings only, §4.4 — and the others follow the
  // same discipline so the accounting is uniform).
  std::map<uint64_t, Pending> PendingResumptions;
  uint64_t NextResumptionId = 1;
  bool HandlerRegistered = false;

  // Adaptive counter state (§4.1).
  uint64_t FixedCounter = 0; // Nonzero disables adaptation (ablation).
  uint64_t TimeSliceNs;
  uint64_t CounterTarget = DefaultCounterTarget;
  uint64_t Counter = DefaultCounterTarget;
  uint64_t SliceStartNs = 0;
  double CmaCheckNs = 0.0;
  uint64_t CmaSamples = 0;

  // Accounting cells (resolved once in the constructor).
  obs::Counter *SuspendedNsC = nullptr;
  obs::Counter *ResumptionsC = nullptr;
  /// Per-resumption suspension latency — the Figure 5 distribution,
  /// scrapeable through the metrics handler.
  obs::Histogram *ResumeNsH = nullptr;
  /// Parked-resumption depth (`suspend.pending_resumptions`).
  obs::Gauge *PendingG = nullptr;
  obs::Counter *ResumeMissesC = nullptr;
  rt::cont::Cells ContCells;
};

} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SUSPEND_H
