//===- doppio/threads.h - Green threads over suspend-and-resume --*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multithreading support (§4.3): Doppio maintains a "thread pool" — an
/// array of explicit call stacks. Because JavaScript cannot preempt,
/// switching is cooperative from JavaScript's point of view, but the
/// *source language* may expose preemptive semantics: the language
/// implementation names its context-switch points (DoppioJVM uses monitor
/// checks, lock operations, and suspend points, §6.2) and Doppio saves the
/// running stack and resumes another. A pluggable scheduling function picks
/// the next thread; by default an arbitrary ready thread runs.
///
/// The AsyncBridge implements §4.2: a guest thread performing a
/// synchronous *source-language* call over an asynchronous browser API
/// blocks (only that green thread — the JS thread is freed), and the
/// asynchronous completion unblocks it with the data in place, so the
/// guest program observes an ordinary synchronous call.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_THREADS_H
#define DOPPIO_DOPPIO_THREADS_H

#include "doppio/suspend.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace doppio {
namespace rt {

/// Outcome of running a guest thread for one slice.
enum class RunOutcome {
  /// The suspend check fired; the thread is still runnable.
  Yielded,
  /// The thread started an asynchronous operation and cannot continue
  /// until ThreadPool::unblock is called.
  Blocked,
  /// The thread finished.
  Terminated,
};

/// Lifecycle state of a pooled thread.
enum class ThreadState { Ready, Running, Blocked, Terminated };

/// A guest thread: a program with an explicit, heap-allocated call stack
/// (§4.1's first requirement) that can run in bounded slices.
class GuestThread {
public:
  virtual ~GuestThread();

  /// Runs until the next suspension point and reports why it stopped.
  virtual RunOutcome resume() = 0;

  virtual std::string name() const { return "guest"; }
};

/// The thread pool: owns guest stacks and drives them through
/// suspend-and-resume events.
class ThreadPool {
public:
  using ThreadId = uint32_t;
  /// Picks the next thread among \p Ready (never empty). The default
  /// scheduler resumes an arbitrary ready thread (§4.3).
  using Scheduler = std::function<ThreadId(const std::vector<ThreadId> &)>;

  ThreadPool(browser::BrowserEnv &Env, Suspender &Susp)
      : Env(Env), Susp(Susp) {
    obs::Registry &Reg = Env.metrics();
    std::string P = Reg.claimPrefix("threads");
    ContextSwitchesC = &Reg.counter(P + ".context_switches");
    SlicesC = &Reg.counter(P + ".slices");
    SpuriousUnblocksC = &Reg.counter(P + ".spurious_unblocks");
    ContCells = cont::Cells::resolve(Reg);
  }

  /// Adds a thread in the Ready state and ensures the pool is being
  /// driven. Returns its id.
  ThreadId spawn(std::unique_ptr<GuestThread> Thread);

  void setScheduler(Scheduler S) { Sched = std::move(S); }

  /// Moves a Blocked thread back to Ready (called by asynchronous
  /// completions) and reschedules driving. Safe to call while the thread
  /// is still Running (a completion that fired synchronously, e.g. from a
  /// localStorage-backed file system): the wake-up is remembered and
  /// applied when the thread reports Blocked. Unblocking a Terminated or
  /// already-Ready thread is a tolerated no-op — completions can outlive
  /// the thread they targeted (e.g. I/O finishing after a watchdog kill) —
  /// counted in spuriousUnblocks(). Returns true if a wake-up was applied.
  bool unblock(ThreadId Id);

  ThreadState state(ThreadId Id) const { return Threads[Id].State; }
  GuestThread *thread(ThreadId Id) { return Threads[Id].Guest.get(); }

  /// Checkpoint-restore support (DESIGN.md §16): forces \p Id into \p S
  /// without running it. A thread restored as Blocked gets a fresh park
  /// continuation, so the usual unblock() path wakes it; a thread
  /// restored as Ready re-arms driving. Running is not a restorable
  /// state (nothing is mid-slice in a quiescent checkpoint).
  void restoreThreadState(ThreadId Id, ThreadState S);

  /// The thread currently executing (valid only during resume()).
  ThreadId currentThread() const { return Current; }

  /// True while any thread is Ready, Running, or Blocked.
  bool hasLiveThreads() const;

  /// Number of times the pool resumed a different thread than last time.
  /// Registry-backed (`threads.*` cells), like every stats surface.
  uint64_t contextSwitches() const { return ContextSwitchesC->value(); }
  /// Number of execution slices driven.
  uint64_t slicesRun() const { return SlicesC->value(); }
  /// Unblocks that found no Blocked/Running thread to wake (duplicate or
  /// late completions).
  uint64_t spuriousUnblocks() const { return SpuriousUnblocksC->value(); }

  Suspender &suspender() { return Susp; }
  browser::BrowserEnv &env() { return Env; }

private:
  /// Schedules a drive event through suspend-and-resume if one is not
  /// already pending and a thread is ready.
  void pump();
  void driveSlice();
  std::vector<ThreadId> readyThreads() const;

  /// Captures "this thread's rest of the computation from its block
  /// point" — resuming it re-readies the thread and re-arms driving.
  Continuation makeParkContinuation(ThreadId Id);

  struct Entry {
    std::unique_ptr<GuestThread> Guest;
    ThreadState State = ThreadState::Ready;
    /// An unblock arrived while the thread was still Running.
    bool UnblockPending = false;
    /// The reified park (DESIGN.md §16): armed exactly while State is
    /// Blocked; unblock() resumes it.
    Continuation Parked;
  };

  browser::BrowserEnv &Env;
  Suspender &Susp;
  std::vector<Entry> Threads;
  Scheduler Sched;
  bool DrivePending = false;
  ThreadId Current = ~0u;
  ThreadId LastRun = ~0u;
  obs::Counter *ContextSwitchesC = nullptr;
  obs::Counter *SlicesC = nullptr;
  obs::Counter *SpuriousUnblocksC = nullptr;
  cont::Cells ContCells;
};

/// §4.2: synchronous source-language calls over asynchronous browser APIs.
class AsyncBridge {
public:
  explicit AsyncBridge(ThreadPool &Pool)
      : Pool(Pool), CompletionsC(&Pool.env().metrics().counter(
                        Pool.env().metrics().claimPrefix("bridge") +
                        ".completions")),
        ContCells(cont::Cells::resolve(Pool.env().metrics())) {}

  /// Called from a native method running on thread \p Id. \p Start must
  /// initiate the asynchronous operation, capturing the provided Resume
  /// callback into its completion; when the completion runs (as a browser
  /// event) it stores its results into guest state and calls Resume, which
  /// schedules the unblock on the kernel's I/O-completion lane. The
  /// caller's resume() must then return RunOutcome::Blocked.
  ///
  /// The bridge holds the wake-up as a reified Continuation (DESIGN.md
  /// §16): the one legitimate completion resumes it; duplicate or late
  /// completions find it disarmed and fall back to a bare unblock, which
  /// the pool tolerates and counts in spuriousUnblocks() — exactly the
  /// old semantics, but the one-shot is now enforced by the substrate.
  void blockOn(ThreadPool::ThreadId Id,
               std::function<void(std::function<void()>)> Start) {
    auto K = std::make_shared<Continuation>(Continuation::capture(
        ContCells, [this, Id] { Pool.unblock(Id); }, "bridge", Id));
    Start([this, Id, K] {
      CompletionsC->inc();
      Pool.env().loop().post(kernel::Lane::IoCompletion, [this, Id, K] {
        if (K->armed())
          K->resume();
        else
          Pool.unblock(Id); // Late duplicate: tolerated, counted.
      });
    });
  }

  /// Asynchronous completions delivered through the bridge
  /// (registry-backed: `bridge.completions`).
  uint64_t completionCount() const { return CompletionsC->value(); }

private:
  ThreadPool &Pool;
  obs::Counter *CompletionsC;
  cont::Cells ContCells;
};

} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_THREADS_H
