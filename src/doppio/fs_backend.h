//===- doppio/fs_backend.h - Backend API & utilities (§5.1) ------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The file system backend API: "a backend for the file system API only
/// needs to implement nine methods that correspond to standard Unix file
/// system commands: rename, stat, open, unlink, rmdir, mkdir, readdir,
/// close, sync" (§5.1) — close and sync live on the descriptor object the
/// backend's open returns. Optional methods (chmod, chown, utimes, link,
/// symlink, readlink) default to ENOTSUP.
///
/// Also here are the utility classes the paper says Doppio offers backends:
/// the FileIndex that "any backend can use to cache directory listings and
/// files", and PreloadFile, the "standard file implementation that loads
/// the entire file into memory and implements sync-on-close semantics".
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_FS_BACKEND_H
#define DOPPIO_DOPPIO_FS_BACKEND_H

#include "doppio/fs_types.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace fs {

/// The nine-method backend interface (§5.1). All paths arriving here have
/// been standardized by the frontend: normalized and absolute.
class FileSystemBackend {
public:
  virtual ~FileSystemBackend();

  virtual std::string backendName() const = 0;
  virtual bool isReadOnly() const = 0;

  // The nine core methods (close and sync are on the descriptor).
  virtual void rename(const std::string &OldPath, const std::string &NewPath,
                      CompletionCb Done) = 0;
  virtual void stat(const std::string &Path, ResultCb<Stats> Done) = 0;
  virtual void open(const std::string &Path, OpenFlags Flags,
                    ResultCb<FdPtr> Done) = 0;
  virtual void unlink(const std::string &Path, CompletionCb Done) = 0;
  virtual void rmdir(const std::string &Path, CompletionCb Done) = 0;
  virtual void mkdir(const std::string &Path, CompletionCb Done) = 0;
  virtual void readdir(const std::string &Path,
                       ResultCb<std::vector<std::string>> Done) = 0;

  // Optional methods; the default implementations fail with ENOTSUP.
  virtual void chmod(const std::string &Path, uint32_t Mode,
                     CompletionCb Done);
  virtual void chown(const std::string &Path, uint32_t Uid, uint32_t Gid,
                     CompletionCb Done);
  virtual void utimes(const std::string &Path, uint64_t MtimeNs,
                      CompletionCb Done);
  virtual void link(const std::string &Existing, const std::string &Created,
                    CompletionCb Done);
  virtual void symlink(const std::string &Target,
                       const std::string &Created, CompletionCb Done);
  virtual void readlink(const std::string &Path,
                        ResultCb<std::string> Done);
};

/// An in-memory tree of paths caching directory structure and file
/// metadata — the index utility of §5.1. The root "/" always exists.
class FileIndex {
public:
  struct Meta {
    FileType Type = FileType::File;
    uint64_t SizeBytes = 0;
    uint64_t MtimeNs = 0;
  };

  FileIndex();

  /// Records a file, creating missing parent directories. Fails (returns
  /// false) if a parent is a file or the path is an existing directory.
  bool addFile(const std::string &Path, uint64_t SizeBytes,
               uint64_t MtimeNs = 0);

  /// Records a directory; parents are created. Fails if blocked by a file.
  bool addDir(const std::string &Path);

  /// Removes a file or empty directory. Fails otherwise.
  bool remove(const std::string &Path);

  bool exists(const std::string &Path) const;
  const Meta *lookup(const std::string &Path) const;
  void setSize(const std::string &Path, uint64_t SizeBytes,
               uint64_t MtimeNs);

  /// Child names of a directory, sorted. Null if \p Path is not a dir.
  const std::set<std::string> *list(const std::string &Path) const;

  /// True if \p Path is a directory with no entries.
  bool isEmptyDir(const std::string &Path) const;

  /// All file (not directory) paths in the index, sorted.
  std::vector<std::string> allFiles() const;
  /// All directory paths (excluding "/"), sorted.
  std::vector<std::string> allDirs() const;

  /// Serializes to a line-based listing ("D <path>" / "F <size> <mtime>
  /// <path>"), the format persisted by key/value-store backends.
  std::string serialize() const;
  /// Reconstructs an index from serialize() output.
  static FileIndex deserialize(const std::string &Text);

private:
  std::map<std::string, Meta> Entries;          // Path -> metadata.
  std::map<std::string, std::set<std::string>> Children; // Dir -> names.
};

/// The standard descriptor: the whole file is loaded into memory before it
/// can be operated on, writes are buffered, and the contents are written
/// back on sync/close (NFS-style sync-on-close, §5.1).
class PreloadFile : public FileDescriptor,
                    public std::enable_shared_from_this<PreloadFile> {
public:
  /// Writes the complete contents back to the backing store.
  using SyncFn =
      std::function<void(const std::string &Path,
                         const std::vector<uint8_t> &Contents,
                         CompletionCb Done)>;

  PreloadFile(browser::BrowserEnv &Env, std::string Path, OpenFlags Flags,
              std::vector<uint8_t> Contents, SyncFn Sync);

  void read(Buffer &Dst, size_t DstOff, size_t Len, uint64_t Pos,
            ResultCb<size_t> Done) override;
  void write(const Buffer &Src, size_t SrcOff, size_t Len, uint64_t Pos,
             ResultCb<size_t> Done) override;
  void stat(ResultCb<Stats> Done) override;
  void sync(CompletionCb Done) override;
  void close(CompletionCb Done) override;
  void truncate(uint64_t Size, CompletionCb Done) override;
  const std::string &path() const override { return FilePath; }

  bool isClosed() const { return Closed; }
  bool isDirty() const { return Dirty; }

private:
  browser::BrowserEnv &Env;
  std::string FilePath;
  OpenFlags Flags;
  /// In-memory contents; a Buffer so the byte storage participates in the
  /// typed-array memory accounting (the Safari leak of §7.1 comes from
  /// file buffers like this one).
  Buffer Contents;
  size_t Size;
  SyncFn Sync;
  bool Dirty = false;
  bool Closed = false;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_FS_BACKEND_H
