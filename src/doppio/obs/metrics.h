//===- doppio/obs/metrics.h - Registry instrument types ----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three instrument kinds every stats producer in the system shares:
/// monotonically increasing counters, settable gauges (with a high-water
/// helper), and fixed-bucket latency histograms. Before this module the
/// repo had four disconnected stat mechanisms (kernel LaneCounters, the
/// event loop's Stats, server::ServerStats with its own percentile math,
/// fs::OpStats) — "Not So Fast" (PAPERS.md) argues credible perf claims
/// need uniform instrumentation, and these are the uniform pieces.
///
/// Everything here is single-threaded over the virtual clock, like the
/// rest of the simulated browser: plain integers, no atomics. Instruments
/// never charge virtual time, so adding one can never move a figure.
///
/// The nearest-rank percentile implementation lives here too — the one
/// copy, shared by Histogram, server::ServerStats, and the traffic
/// generator's report (it used to be duplicated per subsystem).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_OBS_METRICS_H
#define DOPPIO_DOPPIO_OBS_METRICS_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace doppio {
namespace obs {

/// Nearest-rank percentile over \p Samples (0 when empty). \p Pct in
/// [0, 100]. This is the single percentile implementation in the repo;
/// Histogram::percentile and every stats view build on it.
uint64_t percentileNs(const std::vector<uint64_t> &Samples, double Pct);

/// A monotonically increasing count.
class Counter {
public:
  void inc(uint64_t N = 1) { V += N; }
  uint64_t value() const { return V; }
  void reset() { V = 0; }

private:
  uint64_t V = 0;
};

/// A value that can move both ways, with a high-water-mark helper for the
/// "max observed" statistics the legacy structs carry.
class Gauge {
public:
  void set(int64_t X) { V = X; }
  void add(int64_t N) { V += N; }
  void sub(int64_t N) { V -= N; }
  /// Raises the gauge to \p X if it is below it (max-tracking gauges such
  /// as loop.event_ns_max).
  void noteMax(int64_t X) { V = std::max(V, X); }
  int64_t value() const { return V; }
  void reset() { V = 0; }

private:
  int64_t V = 0;
};

/// A latency histogram with fixed log-spaced buckets plus (optionally)
/// exact sample retention.
///
/// The buckets drive the Prometheus-style exposition; the exact samples —
/// on by default — make percentile() bit-identical to the nearest-rank
/// math the fig6/fig7 harnesses always used, so retrofitting a producer
/// onto the registry can never move a published number. Producers on
/// unbounded hot paths (per-dispatch kernel accounting) opt out of sample
/// retention and get bucket-upper-bound percentiles instead.
class Histogram {
public:
  struct Options {
    /// Retain every recorded value for exact percentiles. Costs 8 bytes
    /// per sample; disable on unbounded streams.
    bool KeepSamples = true;
  };

  /// Bucket upper bounds: 1us * 2^i for i in [0, 26) (~1us .. ~34s), then
  /// +infinity. Fixed for every histogram so expositions line up.
  static constexpr size_t NumBuckets = 27;

  Histogram() = default;
  explicit Histogram(Options O) : Opt(O) {}

  /// Upper bound of bucket \p I in nanoseconds (UINT64_MAX for the last).
  static uint64_t bucketBoundNs(size_t I);

  void record(uint64_t ValueNs);

  uint64_t count() const { return Count; }
  uint64_t sumNs() const { return SumNs; }
  uint64_t maxNs() const { return MaxNs; }

  /// Nearest-rank percentile: exact over the retained samples, or the
  /// upper bound of the bucket holding the rank when samples are off.
  uint64_t percentile(double Pct) const;

  /// The retained samples in record order (empty when KeepSamples is off).
  const std::vector<uint64_t> &samples() const { return Samples; }
  bool keepsSamples() const { return Opt.KeepSamples; }

  const std::array<uint64_t, NumBuckets> &buckets() const { return Buckets; }

  void reset();

private:
  Options Opt;
  uint64_t Count = 0;
  uint64_t SumNs = 0;
  uint64_t MaxNs = 0;
  std::array<uint64_t, NumBuckets> Buckets{};
  std::vector<uint64_t> Samples;
};

} // namespace obs
} // namespace doppio

#endif // DOPPIO_DOPPIO_OBS_METRICS_H
