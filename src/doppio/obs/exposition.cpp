//===- doppio/obs/exposition.cpp ------------------------------------------==//

#include "doppio/obs/exposition.h"

#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace doppio;
using namespace doppio::obs;

namespace {

/// Mangles a dotted instrument name into the Prometheus alphabet.
std::string promName(const std::string &Name) {
  std::string Out = "doppio_";
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
               ? C
               : '_';
  return Out;
}

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

} // namespace

std::string obs::renderPrometheus(const Registry &R) {
  std::string Out;
  R.forEachCounter([&](const std::string &Name, const Counter &C) {
    std::string P = promName(Name);
    appendf(Out, "# TYPE %s counter\n%s %" PRIu64 "\n", P.c_str(), P.c_str(),
            C.value());
  });
  R.forEachGauge([&](const std::string &Name, const Gauge &G) {
    std::string P = promName(Name);
    appendf(Out, "# TYPE %s gauge\n%s %" PRId64 "\n", P.c_str(), P.c_str(),
            G.value());
  });
  R.forEachHistogram([&](const std::string &Name, const Histogram &H) {
    std::string P = promName(Name);
    appendf(Out, "# TYPE %s histogram\n", P.c_str());
    uint64_t Cum = 0;
    for (size_t B = 0; B < Histogram::NumBuckets; ++B) {
      Cum += H.buckets()[B];
      if (B + 1 == Histogram::NumBuckets)
        appendf(Out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", P.c_str(), Cum);
      else
        appendf(Out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", P.c_str(),
                Histogram::bucketBoundNs(B), Cum);
    }
    appendf(Out, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n", P.c_str(),
            H.sumNs(), P.c_str(), H.count());
  });
  const SpanStore &S = R.spans();
  appendf(Out,
          "# TYPE doppio_spans_started counter\ndoppio_spans_started %" PRIu64
          "\n# TYPE doppio_spans_finished counter\ndoppio_spans_finished "
          "%" PRIu64 "\n",
          S.started(), S.finished());
  return Out;
}

std::string obs::renderJson(const Registry &R) {
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  R.forEachCounter([&](const std::string &Name, const Counter &C) {
    appendf(Out, "%s\n    \"%s\": %" PRIu64, First ? "" : ",",
            jsonEscape(Name).c_str(), C.value());
    First = false;
  });
  Out += "\n  },\n  \"gauges\": {";
  First = true;
  R.forEachGauge([&](const std::string &Name, const Gauge &G) {
    appendf(Out, "%s\n    \"%s\": %" PRId64, First ? "" : ",",
            jsonEscape(Name).c_str(), G.value());
    First = false;
  });
  Out += "\n  },\n  \"histograms\": {";
  First = true;
  R.forEachHistogram([&](const std::string &Name, const Histogram &H) {
    appendf(Out,
            "%s\n    \"%s\": {\"count\": %" PRIu64 ", \"sum_ns\": %" PRIu64
            ", \"max_ns\": %" PRIu64 ", \"p50_ns\": %" PRIu64
            ", \"p95_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64 "}",
            First ? "" : ",", jsonEscape(Name).c_str(), H.count(), H.sumNs(),
            H.maxNs(), H.percentile(50.0), H.percentile(95.0),
            H.percentile(99.0));
    First = false;
  });
  const SpanStore &S = R.spans();
  appendf(Out,
          "\n  },\n  \"spans\": {\n    \"started\": %" PRIu64
          ", \"finished\": %" PRIu64 ", \"open\": %zu,\n    \"recent\": [",
          S.started(), S.finished(), S.openCount());
  First = true;
  for (const Span &Sp : S.recent()) {
    appendf(Out,
            "%s\n      {\"id\": %" PRIu64 ", \"parent\": %" PRIu64
            ", \"name\": \"%s\", \"start_ns\": %" PRIu64 ", \"end_ns\": %" PRIu64
            ", \"queue_delay_ns\": %" PRIu64 "}",
            First ? "" : ",", Sp.Id, Sp.Parent, jsonEscape(Sp.Name).c_str(),
            Sp.StartNs, Sp.EndNs, Sp.QueueDelayNs);
    First = false;
  }
  Out += "\n    ]\n  }\n}\n";
  return Out;
}

std::string obs::renderTop(const Registry &R, size_t MaxSpans) {
  std::string Out;
  Out += "-- counters ------------------------------------------------\n";
  R.forEachCounter([&](const std::string &Name, const Counter &C) {
    appendf(Out, "%-44s %14" PRIu64 "\n", Name.c_str(), C.value());
  });
  Out += "-- gauges --------------------------------------------------\n";
  R.forEachGauge([&](const std::string &Name, const Gauge &G) {
    appendf(Out, "%-44s %14" PRId64 "\n", Name.c_str(), G.value());
  });
  Out += "-- histograms (us) --------------- count     p50     p95     "
         "p99     max\n";
  R.forEachHistogram([&](const std::string &Name, const Histogram &H) {
    appendf(Out, "%-32s %9" PRIu64 " %7.1f %7.1f %7.1f %7.1f\n", Name.c_str(),
            H.count(), static_cast<double>(H.percentile(50.0)) / 1e3,
            static_cast<double>(H.percentile(95.0)) / 1e3,
            static_cast<double>(H.percentile(99.0)) / 1e3,
            static_cast<double>(H.maxNs()) / 1e3);
  });
  const SpanStore &S = R.spans();
  appendf(Out,
          "-- spans: %" PRIu64 " started, %" PRIu64 " finished, %zu open\n",
          S.started(), S.finished(), S.openCount());
  const std::deque<Span> &Recent = S.recent();
  size_t Skip = Recent.size() > MaxSpans ? Recent.size() - MaxSpans : 0;
  Out += "   id  parent  name                          us    queue-us\n";
  for (size_t I = Skip; I < Recent.size(); ++I) {
    const Span &Sp = Recent[I];
    appendf(Out, "%5" PRIu64 " %7" PRIu64 "  %-26s %7.1f %9.1f\n", Sp.Id,
            Sp.Parent, Sp.Name.c_str(),
            static_cast<double>(Sp.durationNs()) / 1e3,
            static_cast<double>(Sp.QueueDelayNs) / 1e3);
  }
  return Out;
}
