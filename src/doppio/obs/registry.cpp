//===- doppio/obs/registry.cpp --------------------------------------------==//

#include "doppio/obs/registry.h"

using namespace doppio;
using namespace doppio::obs;

Counter &Registry::counter(const std::string &Name) {
  return Counters[Name];
}

Gauge &Registry::gauge(const std::string &Name) { return Gauges[Name]; }

Histogram &Registry::histogram(const std::string &Name,
                               Histogram::Options O) {
  auto It = Histograms.find(Name);
  if (It != Histograms.end())
    return It->second;
  return Histograms.emplace(Name, Histogram(O)).first->second;
}

std::string Registry::claimPrefix(const std::string &Base) {
  unsigned &N = Prefixes[Base];
  ++N;
  return N == 1 ? Base : Base + std::to_string(N);
}

void Registry::forEachCounter(
    const std::function<void(const std::string &, const Counter &)> &Fn)
    const {
  for (const auto &[Name, C] : Counters)
    Fn(Name, C);
}

void Registry::forEachGauge(
    const std::function<void(const std::string &, const Gauge &)> &Fn) const {
  for (const auto &[Name, G] : Gauges)
    Fn(Name, G);
}

void Registry::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)> &Fn)
    const {
  for (const auto &[Name, H] : Histograms)
    Fn(Name, H);
}

void Registry::resetAll() {
  for (auto &[Name, C] : Counters)
    C.reset();
  for (auto &[Name, G] : Gauges)
    G.reset();
  for (auto &[Name, H] : Histograms)
    H.reset();
  Spans_.reset();
}
