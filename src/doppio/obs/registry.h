//===- doppio/obs/registry.h - The metrics registry --------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One registry per simulated browser tab (the tab *is* the paper's
/// process), owned by the event loop and shared by every subsystem above
/// it: kernel lanes, the loop's own event accounting, the fs frontend,
/// doppiod, the suspender, and the green-thread pool all allocate their
/// instruments here and keep nothing of their own. The legacy stat
/// surfaces (EventLoop::Stats, kernel::Counters, server::ServerStats,
/// fs::OpStats) survive as *views*: structs assembled on demand from
/// registry cells, field-for-field identical to what they reported when
/// each subsystem kept private counters.
///
/// Naming scheme (see DESIGN.md §13): dot-separated
/// `<subsystem>.<object>.<metric>`, ns-valued metrics suffixed `_ns`
/// (`_ns_total` / `_ns_max` for sums and high-water marks). Instruments
/// are created on first use and live as long as the registry; producers
/// resolve them once at construction, so the hot path is a pointer
/// increment, exactly what the private struct fields cost.
///
/// Instance prefixes: a producer that can plausibly exist twice on one
/// loop (a Server, a FileSystem) claims its prefix — the first claimant
/// gets the clean name ("server"), later ones get "server2", "server3" —
/// so concurrent instances never share cells and every legacy view stays
/// exact.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_OBS_REGISTRY_H
#define DOPPIO_DOPPIO_OBS_REGISTRY_H

#include "browser/virtual_clock.h"
#include "doppio/obs/metrics.h"
#include "doppio/obs/span.h"

#include <functional>
#include <map>
#include <memory>
#include <string>

namespace doppio {
namespace obs {

/// The process-wide instrument table plus the span store.
class Registry {
public:
  explicit Registry(browser::VirtualClock &Clock)
      : Clock(Clock), Spans_(Clock) {}

  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  /// Returns the counter named \p Name, creating it on first use. The
  /// reference is stable for the registry's lifetime.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name,
                       Histogram::Options O = Histogram::Options());

  /// True if an instrument of the given kind exists under \p Name.
  bool hasCounter(const std::string &Name) const { return Counters.count(Name); }
  bool hasGauge(const std::string &Name) const { return Gauges.count(Name); }
  bool hasHistogram(const std::string &Name) const {
    return Histograms.count(Name);
  }

  /// Claims an instance prefix: "server" for the first claimant, then
  /// "server2", "server3", ... so two live producers never share cells.
  std::string claimPrefix(const std::string &Base);

  /// Deterministic (name-sorted) enumeration, for expositions and tools.
  void forEachCounter(
      const std::function<void(const std::string &, const Counter &)> &Fn)
      const;
  void forEachGauge(
      const std::function<void(const std::string &, const Gauge &)> &Fn) const;
  void forEachHistogram(
      const std::function<void(const std::string &, const Histogram &)> &Fn)
      const;

  SpanStore &spans() { return Spans_; }
  const SpanStore &spans() const { return Spans_; }

  browser::VirtualClock &clock() { return Clock; }

  size_t instrumentCount() const {
    return Counters.size() + Gauges.size() + Histograms.size();
  }

  /// Zeroes every instrument (names and references survive) and clears
  /// span history.
  void resetAll();

private:
  browser::VirtualClock &Clock;
  SpanStore Spans_;
  // std::map: stable references via unique_ptr-free node storage and
  // name-sorted iteration for deterministic expositions.
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
  std::map<std::string, unsigned> Prefixes;
};

} // namespace obs
} // namespace doppio

#endif // DOPPIO_DOPPIO_OBS_REGISTRY_H
