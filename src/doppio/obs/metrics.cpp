//===- doppio/obs/metrics.cpp ---------------------------------------------==//

#include "doppio/obs/metrics.h"

#include <cstdint>

using namespace doppio;
using namespace doppio::obs;

uint64_t obs::percentileNs(const std::vector<uint64_t> &Samples, double Pct) {
  if (Samples.empty())
    return 0;
  std::vector<uint64_t> Sorted = Samples;
  size_t Rank = static_cast<size_t>(
      (Pct / 100.0) * static_cast<double>(Sorted.size() - 1) + 0.5);
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  std::nth_element(Sorted.begin(), Sorted.begin() + Rank, Sorted.end());
  return Sorted[Rank];
}

uint64_t Histogram::bucketBoundNs(size_t I) {
  if (I + 1 >= NumBuckets)
    return UINT64_MAX;
  return 1000ull << I; // 1us, 2us, 4us, ... ~34s.
}

void Histogram::record(uint64_t ValueNs) {
  ++Count;
  SumNs += ValueNs;
  MaxNs = std::max(MaxNs, ValueNs);
  size_t B = 0;
  while (B + 1 < NumBuckets && ValueNs > bucketBoundNs(B))
    ++B;
  ++Buckets[B];
  if (Opt.KeepSamples)
    Samples.push_back(ValueNs);
}

uint64_t Histogram::percentile(double Pct) const {
  if (Opt.KeepSamples)
    return percentileNs(Samples, Pct);
  if (Count == 0)
    return 0;
  // Bucket approximation: the upper bound of the bucket containing the
  // nearest-rank sample.
  uint64_t Rank = static_cast<uint64_t>(
      (Pct / 100.0) * static_cast<double>(Count - 1) + 0.5);
  if (Rank >= Count)
    Rank = Count - 1;
  uint64_t Seen = 0;
  for (size_t B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen > Rank)
      return std::min(bucketBoundNs(B), MaxNs);
  }
  return MaxNs;
}

void Histogram::reset() {
  Count = 0;
  SumNs = 0;
  MaxNs = 0;
  Buckets.fill(0);
  Samples.clear();
}
