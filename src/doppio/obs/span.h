//===- doppio/obs/span.h - Causal spans across layers ------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Causal spans: a span id is minted where a logical operation begins (a
/// doppiod request arriving, a client issuing a request, an fs op
/// starting) and *rides every kernel work item posted while it is
/// current*. Because all asynchronous hops in the system — SimNet
/// deliveries, fs completions, resumptions — go through Kernel::post /
/// postAfter, and those capture SpanStore::current() at enqueue time, the
/// id follows the request across the client -> server -> fs -> response
/// chain with no per-subsystem plumbing. One request's queue delay, fs
/// time, and handler time become attributable end to end, which is the
/// instrumentation the paper's evaluation (§7) needed and each subsystem
/// used to approximate with its own counters.
///
/// Spans form a tree: begin() parents the new span under the current one.
/// Finished spans land in a bounded ring (the store is long-lived; a
/// server minting a span per request must stay bounded). Kernel queue
/// delay observed by work items carrying a span is accumulated onto the
/// open span, attributing scheduler wait to the operation that suffered
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_OBS_SPAN_H
#define DOPPIO_DOPPIO_OBS_SPAN_H

#include "browser/virtual_clock.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

namespace doppio {
namespace obs {

/// Span identifier; 0 means "no span".
using SpanId = uint64_t;

/// One causal span on the virtual clock.
struct Span {
  SpanId Id = 0;
  /// The span current when this one began (0 for a root).
  SpanId Parent = 0;
  std::string Name;
  uint64_t StartNs = 0;
  /// 0 while the span is open.
  uint64_t EndNs = 0;
  /// Kernel queue delay accumulated by work items dispatched under this
  /// span while it was open: time the operation spent waiting behind
  /// other events rather than running.
  uint64_t QueueDelayNs = 0;

  uint64_t durationNs() const { return EndNs > StartNs ? EndNs - StartNs : 0; }
};

/// Mints, tracks, and retains spans. Single-threaded, like everything
/// over the virtual clock; "current span" is plain state swapped by
/// Scope, not thread-local magic.
class SpanStore {
public:
  static constexpr size_t DefaultRetain = 256;

  explicit SpanStore(browser::VirtualClock &Clock,
                     size_t Retain = DefaultRetain)
      : Clock(Clock), Retain(Retain) {}

  /// Mints a span parented under the current span (or a root if none) and
  /// records its start time. Does not make the new span current — wrap a
  /// Scope around the work that belongs to it.
  SpanId begin(std::string Name) { return beginChildOf(Name, Current); }

  /// Mints a span with an explicit parent (0 for a root).
  SpanId beginChildOf(std::string Name, SpanId Parent);

  /// Closes \p Id, stamping its end time and moving it to the finished
  /// ring. Unknown / already-ended ids are a no-op.
  void end(SpanId Id);

  /// The span id new work is attributed to right now.
  SpanId current() const { return Current; }

  /// RAII current-span swap: makes \p Id current for the enclosing block
  /// and restores the previous span after. Used by the event loop around
  /// each dispatch (restoring the id the work item carried) and by
  /// producers around the code that belongs to a freshly minted span.
  class Scope {
  public:
    Scope(SpanStore &S, SpanId Id) : S(S), Prev(S.Current) { S.Current = Id; }
    ~Scope() { S.Current = Prev; }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    SpanStore &S;
    SpanId Prev;
  };

  /// Adds kernel queue delay to an open span (no-op once ended: a closed
  /// request cannot retroactively suffer scheduler wait).
  void addQueueDelay(SpanId Id, uint64_t Ns);

  /// Open-span lookup; nullptr when unknown or already finished.
  const Span *findOpen(SpanId Id) const;

  /// Finished spans, oldest first, bounded by the retention limit.
  const std::deque<Span> &recent() const { return Finished;  }

  uint64_t started() const { return Started; }
  uint64_t finished() const { return Ended; }
  size_t openCount() const { return Open.size(); }

  /// Drops finished history and open-span bookkeeping; ids keep
  /// increasing so a live Scope's id simply never resolves again.
  void reset();

private:
  browser::VirtualClock &Clock;
  size_t Retain;
  SpanId Current = 0;
  SpanId NextId = 1;
  uint64_t Started = 0;
  uint64_t Ended = 0;
  std::unordered_map<SpanId, Span> Open;
  std::deque<Span> Finished;
};

} // namespace obs
} // namespace doppio

#endif // DOPPIO_DOPPIO_OBS_SPAN_H
