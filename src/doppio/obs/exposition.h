//===- doppio/obs/exposition.h - Registry export formats ---------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one export path for every metric in the system: render a Registry
/// as Prometheus-style text (counters/gauges as samples, histograms as
/// cumulative `_bucket`/`_sum`/`_count` series) or as a JSON document
/// that additionally carries the span store — totals plus the recent
/// finished spans with parent links, so a scrape shows end-to-end request
/// attribution, not just aggregates. doppiod serves both through its
/// `metrics` handler; `doppio_top` renders the same data as tables.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_OBS_EXPOSITION_H
#define DOPPIO_DOPPIO_OBS_EXPOSITION_H

#include "doppio/obs/registry.h"

#include <string>

namespace doppio {
namespace obs {

/// Prometheus text exposition. Instrument names are mangled to the
/// Prometheus alphabet (dots become underscores) and prefixed `doppio_`;
/// histograms emit cumulative buckets with `le` labels. Span totals ride
/// along as `doppio_spans_started` / `doppio_spans_finished`.
std::string renderPrometheus(const Registry &R);

/// JSON exposition: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum_ns, max_ns, p50_ns, p95_ns, p99_ns}},
/// "spans": {"started", "finished", "open", "recent": [...]}}.
/// Recent spans carry id/parent/name/start_ns/end_ns/queue_delay_ns.
std::string renderJson(const Registry &R);

/// `doppio_top`-style plain-text tables (also handy in tests and
/// examples): counters and gauges sorted by name, histogram percentiles,
/// and the most recent spans with parent attribution.
std::string renderTop(const Registry &R, size_t MaxSpans = 16);

} // namespace obs
} // namespace doppio

#endif // DOPPIO_DOPPIO_OBS_EXPOSITION_H
