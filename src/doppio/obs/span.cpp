//===- doppio/obs/span.cpp ------------------------------------------------==//

#include "doppio/obs/span.h"

using namespace doppio;
using namespace doppio::obs;

SpanId SpanStore::beginChildOf(std::string Name, SpanId Parent) {
  SpanId Id = NextId++;
  Span S;
  S.Id = Id;
  S.Parent = Parent;
  S.Name = std::move(Name);
  S.StartNs = Clock.nowNs();
  Open.emplace(Id, std::move(S));
  ++Started;
  return Id;
}

void SpanStore::end(SpanId Id) {
  auto It = Open.find(Id);
  if (It == Open.end())
    return;
  Span S = std::move(It->second);
  Open.erase(It);
  S.EndNs = Clock.nowNs();
  ++Ended;
  Finished.push_back(std::move(S));
  while (Finished.size() > Retain)
    Finished.pop_front();
}

void SpanStore::addQueueDelay(SpanId Id, uint64_t Ns) {
  if (Id == 0 || Ns == 0)
    return;
  auto It = Open.find(Id);
  if (It != Open.end())
    It->second.QueueDelayNs += Ns;
}

const Span *SpanStore::findOpen(SpanId Id) const {
  auto It = Open.find(Id);
  return It == Open.end() ? nullptr : &It->second;
}

void SpanStore::reset() {
  Open.clear();
  Finished.clear();
  Started = 0;
  Ended = 0;
  Current = 0;
}
