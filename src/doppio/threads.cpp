//===- doppio/threads.cpp -------------------------------------------------==//

#include "doppio/threads.h"

#include <cassert>

using namespace doppio;
using namespace doppio::rt;

GuestThread::~GuestThread() = default;

ThreadPool::ThreadId ThreadPool::spawn(std::unique_ptr<GuestThread> Thread) {
  Threads.push_back({std::move(Thread), ThreadState::Ready});
  ThreadId Id = static_cast<ThreadId>(Threads.size() - 1);
  pump();
  return Id;
}

Continuation ThreadPool::makeParkContinuation(ThreadId Id) {
  // "The rest of this thread's computation" from its block point: re-ready
  // the thread and re-arm driving. The guest's own stack is already an
  // explicit heap structure (§4.1), so this closure is the entire
  // host-side capture.
  return Continuation::capture(
      ContCells,
      [this, Id] {
        Threads[Id].State = ThreadState::Ready;
        pump();
      },
      "threads.park", Id);
}

bool ThreadPool::unblock(ThreadId Id) {
  assert(Id < Threads.size() && "bad thread id");
  Entry &E = Threads[Id];
  switch (E.State) {
  case ThreadState::Running:
    // The asynchronous operation completed synchronously (inline-callback
    // storage backends): the thread has not reported Blocked yet.
    if (E.UnblockPending) {
      SpuriousUnblocksC->inc();
      return false;
    }
    E.UnblockPending = true;
    return true;
  case ThreadState::Blocked: {
    Continuation K = std::move(E.Parked);
    assert(K.armed() && "blocked thread without a parked continuation");
    K.resume();
    return true;
  }
  case ThreadState::Ready:
  case ThreadState::Terminated:
    // Duplicate or late completion — e.g. an I/O event finishing after
    // its thread was already woken or died. Kernel-scheduled completions
    // make this ordering legal, so tolerate and count it.
    SpuriousUnblocksC->inc();
    return false;
  }
  return false;
}

void ThreadPool::restoreThreadState(ThreadId Id, ThreadState S) {
  assert(Id < Threads.size() && "bad thread id");
  assert(S != ThreadState::Running && "cannot restore a mid-slice thread");
  Entry &E = Threads[Id];
  E.State = S;
  E.UnblockPending = false;
  if (S == ThreadState::Blocked)
    E.Parked = makeParkContinuation(Id);
  else if (S == ThreadState::Ready)
    pump();
}

bool ThreadPool::hasLiveThreads() const {
  for (const Entry &E : Threads)
    if (E.State != ThreadState::Terminated)
      return true;
  return false;
}

std::vector<ThreadPool::ThreadId> ThreadPool::readyThreads() const {
  std::vector<ThreadId> Ready;
  for (size_t I = 0, E = Threads.size(); I != E; ++I)
    if (Threads[I].State == ThreadState::Ready)
      Ready.push_back(static_cast<ThreadId>(I));
  return Ready;
}

void ThreadPool::pump() {
  if (DrivePending || readyThreads().empty())
    return;
  DrivePending = true;
  Susp.scheduleResumption([this] {
    DrivePending = false;
    driveSlice();
  });
}

void ThreadPool::driveSlice() {
  std::vector<ThreadId> Ready = readyThreads();
  if (Ready.empty())
    return;
  // Pick the next thread: the provided scheduling function, or "an
  // arbitrary thread from the pool marked ready" (§4.3) — rotated so that
  // every ready thread makes progress.
  ThreadId Next;
  if (Sched) {
    Next = Sched(Ready);
    assert(Threads[Next].State == ThreadState::Ready &&
           "scheduler picked a non-ready thread");
  } else {
    Next = Ready.front();
    for (ThreadId Id : Ready)
      if (Id > LastRun) {
        Next = Id;
        break;
      }
  }
  if (Next != LastRun && LastRun != ~0u)
    ContextSwitchesC->inc();
  LastRun = Next;
  Current = Next;
  Threads[Next].State = ThreadState::Running;
  SlicesC->inc();
  RunOutcome Outcome = Threads[Next].Guest->resume();
  Current = ~0u;
  switch (Outcome) {
  case RunOutcome::Yielded:
    Threads[Next].State = ThreadState::Ready;
    break;
  case RunOutcome::Blocked:
    if (Threads[Next].UnblockPending) {
      // The wake-up already arrived; do not strand the thread.
      Threads[Next].UnblockPending = false;
      Threads[Next].State = ThreadState::Ready;
    } else {
      Threads[Next].State = ThreadState::Blocked;
      Threads[Next].Parked = makeParkContinuation(Next);
    }
    break;
  case RunOutcome::Terminated:
    Threads[Next].State = ThreadState::Terminated;
    break;
  }
  pump();
}
