//===- doppio/errors.cpp --------------------------------------------------==//

#include "doppio/errors.h"

using namespace doppio;

const char *rt::errnoName(Errno E) {
  switch (E) {
  case Errno::Perm:
    return "EPERM";
  case Errno::NoEnt:
    return "ENOENT";
  case Errno::BadFd:
    return "EBADF";
  case Errno::Access:
    return "EACCES";
  case Errno::Exists:
    return "EEXIST";
  case Errno::NotDir:
    return "ENOTDIR";
  case Errno::IsDir:
    return "EISDIR";
  case Errno::Invalid:
    return "EINVAL";
  case Errno::NoSpace:
    return "ENOSPC";
  case Errno::ReadOnlyFs:
    return "EROFS";
  case Errno::NotEmpty:
    return "ENOTEMPTY";
  case Errno::CrossDev:
    return "EXDEV";
  case Errno::NotSup:
    return "ENOTSUP";
  case Errno::Io:
    return "EIO";
  case Errno::ConnRefused:
    return "ECONNREFUSED";
  case Errno::NotConn:
    return "ENOTCONN";
  case Errno::Pipe:
    return "EPIPE";
  case Errno::Srch:
    return "ESRCH";
  case Errno::Child:
    return "ECHILD";
  case Errno::Again:
    return "EAGAIN";
  }
  return "E???";
}
