//===- doppio/fs_types.h - File system core types (§5.1) ---------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared vocabulary of the Doppio file system: stat results, open flags,
/// and the object file descriptor. "Unlike Unix, DOPPIO uses objects to
/// represent file descriptors" (§5.1) — the descriptor object carries the
/// file-manipulation logic (syncing and prefetching strategy) shared by
/// backends.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_FS_TYPES_H
#define DOPPIO_DOPPIO_FS_TYPES_H

#include "doppio/buffer.h"
#include "doppio/errors.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace fs {

enum class FileType { File, Directory };

/// stat(2) result subset.
struct Stats {
  FileType Type = FileType::File;
  uint64_t SizeBytes = 0;
  uint64_t MtimeNs = 0;

  bool isDirectory() const { return Type == FileType::Directory; }
  bool isFile() const { return Type == FileType::File; }
};

/// Parsed Node-style open flags ("r", "r+", "w", "wx", "w+", "a", "a+").
struct OpenFlags {
  bool Read = false;
  bool Write = false;
  bool Append = false;
  bool Create = false;
  bool Truncate = false;
  bool Exclusive = false;

  /// Parses a flag string; nullopt if the string is invalid.
  static std::optional<OpenFlags> parse(const std::string &Mode);

  static OpenFlags readOnly() { return *parse("r"); }
  static OpenFlags writeOnly() { return *parse("w"); }
  static OpenFlags readWrite() { return *parse("r+"); }
  static OpenFlags appendOnly() { return *parse("a"); }
};

/// Completion of an operation with no payload.
using CompletionCb = std::function<void(std::optional<ApiError>)>;

template <typename T> using ResultCb = std::function<void(ErrorOr<T>)>;

class FileDescriptor;
using FdPtr = std::shared_ptr<FileDescriptor>;

/// The object file descriptor (§5.1).
class FileDescriptor {
public:
  virtual ~FileDescriptor();

  /// Reads up to \p Len bytes at file position \p Pos into \p Dst at
  /// \p DstOff. Yields the number of bytes read (0 at EOF).
  virtual void read(Buffer &Dst, size_t DstOff, size_t Len, uint64_t Pos,
                    ResultCb<size_t> Done) = 0;

  /// Writes \p Len bytes from \p Src at \p SrcOff to file position \p Pos,
  /// growing the file as needed. Yields bytes written.
  virtual void write(const Buffer &Src, size_t SrcOff, size_t Len,
                     uint64_t Pos, ResultCb<size_t> Done) = 0;

  virtual void stat(ResultCb<Stats> Done) = 0;

  /// Pushes buffered contents to the backing store.
  virtual void sync(CompletionCb Done) = 0;

  /// Syncs (NFS-style sync-on-close, §5.1) and invalidates the descriptor.
  virtual void close(CompletionCb Done) = 0;

  /// Truncates or extends to \p Size. Default: ENOTSUP.
  virtual void truncate(uint64_t Size, CompletionCb Done);

  virtual const std::string &path() const = 0;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_FS_TYPES_H
