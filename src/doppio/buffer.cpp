//===- doppio/buffer.cpp --------------------------------------------------==//

#include "doppio/buffer.h"

#include <bit>
#include <cassert>

using namespace doppio;
using namespace doppio::rt;

std::optional<Encoding> rt::parseEncoding(const std::string &Name) {
  if (Name == "ascii")
    return Encoding::Ascii;
  if (Name == "utf8" || Name == "utf-8")
    return Encoding::Utf8;
  if (Name == "ucs2" || Name == "ucs-2" || Name == "utf16le" ||
      Name == "utf-16le")
    return Encoding::Ucs2;
  if (Name == "base64")
    return Encoding::Base64;
  if (Name == "hex")
    return Encoding::Hex;
  if (Name == "binary_string" || Name == "binary")
    return Encoding::BinaryString;
  return std::nullopt;
}

const char *rt::encodingName(Encoding E) {
  switch (E) {
  case Encoding::Ascii:
    return "ascii";
  case Encoding::Utf8:
    return "utf8";
  case Encoding::Ucs2:
    return "ucs2";
  case Encoding::Base64:
    return "base64";
  case Encoding::Hex:
    return "hex";
  case Encoding::BinaryString:
    return "binary_string";
  }
  return "?";
}

Buffer::Buffer(browser::BrowserEnv &Env, size_t Size)
    : Env(&Env), Bytes(Size, 0),
      Store(Env.profile().HasTypedArrays ? Backing::TypedArray
                                         : Backing::NumberArray) {
  if (Store == Backing::TypedArray)
    Env.noteTypedArrayAlloc(Size);
}

Buffer::Buffer(browser::BrowserEnv &Env, std::vector<uint8_t> InitBytes)
    : Env(&Env), Bytes(std::move(InitBytes)),
      Store(Env.profile().HasTypedArrays ? Backing::TypedArray
                                         : Backing::NumberArray) {
  if (Store == Backing::TypedArray)
    Env.noteTypedArrayAlloc(Bytes.size());
}

Buffer::Buffer(Buffer &&Other) noexcept
    : Env(Other.Env), Bytes(std::move(Other.Bytes)), Store(Other.Store) {
  Other.Env = nullptr;
  Other.Bytes.clear();
}

Buffer &Buffer::operator=(Buffer &&Other) noexcept {
  if (this == &Other)
    return *this;
  if (Env && Store == Backing::TypedArray)
    Env->noteTypedArrayFree(Bytes.size());
  Env = Other.Env;
  Bytes = std::move(Other.Bytes);
  Store = Other.Store;
  Other.Env = nullptr;
  Other.Bytes.clear();
  return *this;
}

Buffer::~Buffer() {
  if (Env && Store == Backing::TypedArray)
    Env->noteTypedArrayFree(Bytes.size());
}

void Buffer::chargeAccess(size_t NumBytes) const {
  // Typed arrays read/write binary data directly; number arrays box every
  // element as a JS double, which is markedly slower (§5.1, §5.2).
  uint64_t PerByte = Store == Backing::TypedArray ? 1 : 6;
  Env->chargeCompute(PerByte * NumBytes + 2);
}

uint8_t Buffer::readUInt8(size_t Off) const {
  assert(Off < Bytes.size() && "buffer read out of range");
  chargeAccess(1);
  return Bytes[Off];
}

int8_t Buffer::readInt8(size_t Off) const {
  return static_cast<int8_t>(readUInt8(Off));
}

void Buffer::writeUInt8(uint8_t V, size_t Off) {
  assert(Off < Bytes.size() && "buffer write out of range");
  chargeAccess(1);
  Bytes[Off] = V;
}

void Buffer::writeInt8(int8_t V, size_t Off) {
  writeUInt8(static_cast<uint8_t>(V), Off);
}

uint16_t Buffer::readUInt16LE(size_t Off) const {
  assert(Off + 2 <= Bytes.size() && "buffer read out of range");
  chargeAccess(2);
  return static_cast<uint16_t>(Bytes[Off] | (Bytes[Off + 1] << 8));
}

uint16_t Buffer::readUInt16BE(size_t Off) const {
  assert(Off + 2 <= Bytes.size() && "buffer read out of range");
  chargeAccess(2);
  return static_cast<uint16_t>((Bytes[Off] << 8) | Bytes[Off + 1]);
}

int16_t Buffer::readInt16LE(size_t Off) const {
  return static_cast<int16_t>(readUInt16LE(Off));
}

int16_t Buffer::readInt16BE(size_t Off) const {
  return static_cast<int16_t>(readUInt16BE(Off));
}

void Buffer::writeUInt16LE(uint16_t V, size_t Off) {
  assert(Off + 2 <= Bytes.size() && "buffer write out of range");
  chargeAccess(2);
  Bytes[Off] = static_cast<uint8_t>(V);
  Bytes[Off + 1] = static_cast<uint8_t>(V >> 8);
}

void Buffer::writeUInt16BE(uint16_t V, size_t Off) {
  assert(Off + 2 <= Bytes.size() && "buffer write out of range");
  chargeAccess(2);
  Bytes[Off] = static_cast<uint8_t>(V >> 8);
  Bytes[Off + 1] = static_cast<uint8_t>(V);
}

uint32_t Buffer::readUInt32LE(size_t Off) const {
  assert(Off + 4 <= Bytes.size() && "buffer read out of range");
  chargeAccess(4);
  return static_cast<uint32_t>(Bytes[Off]) |
         (static_cast<uint32_t>(Bytes[Off + 1]) << 8) |
         (static_cast<uint32_t>(Bytes[Off + 2]) << 16) |
         (static_cast<uint32_t>(Bytes[Off + 3]) << 24);
}

uint32_t Buffer::readUInt32BE(size_t Off) const {
  assert(Off + 4 <= Bytes.size() && "buffer read out of range");
  chargeAccess(4);
  return (static_cast<uint32_t>(Bytes[Off]) << 24) |
         (static_cast<uint32_t>(Bytes[Off + 1]) << 16) |
         (static_cast<uint32_t>(Bytes[Off + 2]) << 8) |
         static_cast<uint32_t>(Bytes[Off + 3]);
}

int32_t Buffer::readInt32LE(size_t Off) const {
  return static_cast<int32_t>(readUInt32LE(Off));
}

int32_t Buffer::readInt32BE(size_t Off) const {
  return static_cast<int32_t>(readUInt32BE(Off));
}

void Buffer::writeUInt32LE(uint32_t V, size_t Off) {
  assert(Off + 4 <= Bytes.size() && "buffer write out of range");
  chargeAccess(4);
  Bytes[Off] = static_cast<uint8_t>(V);
  Bytes[Off + 1] = static_cast<uint8_t>(V >> 8);
  Bytes[Off + 2] = static_cast<uint8_t>(V >> 16);
  Bytes[Off + 3] = static_cast<uint8_t>(V >> 24);
}

void Buffer::writeUInt32BE(uint32_t V, size_t Off) {
  assert(Off + 4 <= Bytes.size() && "buffer write out of range");
  chargeAccess(4);
  Bytes[Off] = static_cast<uint8_t>(V >> 24);
  Bytes[Off + 1] = static_cast<uint8_t>(V >> 16);
  Bytes[Off + 2] = static_cast<uint8_t>(V >> 8);
  Bytes[Off + 3] = static_cast<uint8_t>(V);
}

float Buffer::readFloatLE(size_t Off) const {
  return std::bit_cast<float>(readUInt32LE(Off));
}

float Buffer::readFloatBE(size_t Off) const {
  return std::bit_cast<float>(readUInt32BE(Off));
}

void Buffer::writeFloatLE(float V, size_t Off) {
  writeUInt32LE(std::bit_cast<uint32_t>(V), Off);
}

void Buffer::writeFloatBE(float V, size_t Off) {
  writeUInt32BE(std::bit_cast<uint32_t>(V), Off);
}

double Buffer::readDoubleLE(size_t Off) const {
  uint64_t Lo = readUInt32LE(Off);
  uint64_t Hi = readUInt32LE(Off + 4);
  return std::bit_cast<double>(Lo | (Hi << 32));
}

double Buffer::readDoubleBE(size_t Off) const {
  uint64_t Hi = readUInt32BE(Off);
  uint64_t Lo = readUInt32BE(Off + 4);
  return std::bit_cast<double>(Lo | (Hi << 32));
}

void Buffer::writeDoubleLE(double V, size_t Off) {
  uint64_t Raw = std::bit_cast<uint64_t>(V);
  writeUInt32LE(static_cast<uint32_t>(Raw), Off);
  writeUInt32LE(static_cast<uint32_t>(Raw >> 32), Off + 4);
}

void Buffer::writeDoubleBE(double V, size_t Off) {
  uint64_t Raw = std::bit_cast<uint64_t>(V);
  writeUInt32BE(static_cast<uint32_t>(Raw >> 32), Off);
  writeUInt32BE(static_cast<uint32_t>(Raw), Off + 4);
}

size_t Buffer::copyTo(Buffer &Dest, size_t DestOff, size_t SrcStart,
                      size_t SrcEnd) const {
  assert(SrcStart <= SrcEnd && SrcEnd <= Bytes.size() && "bad copy range");
  size_t Len = SrcEnd - SrcStart;
  if (DestOff >= Dest.Bytes.size())
    return 0;
  Len = std::min(Len, Dest.Bytes.size() - DestOff);
  chargeAccess(Len);
  std::copy(Bytes.begin() + SrcStart, Bytes.begin() + SrcStart + Len,
            Dest.Bytes.begin() + DestOff);
  return Len;
}

void Buffer::fill(uint8_t Value, size_t Start, size_t End) {
  assert(Start <= End && End <= Bytes.size() && "bad fill range");
  chargeAccess(End - Start);
  std::fill(Bytes.begin() + Start, Bytes.begin() + End, Value);
}

//===----------------------------------------------------------------------===//
// String codecs
//===----------------------------------------------------------------------===//

static const char Base64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

static int base64Value(char16_t C) {
  if (C >= u'A' && C <= u'Z')
    return C - u'A';
  if (C >= u'a' && C <= u'z')
    return C - u'a' + 26;
  if (C >= u'0' && C <= u'9')
    return C - u'0' + 52;
  if (C == u'+')
    return 62;
  if (C == u'/')
    return 63;
  return -1;
}

static int hexValue(char16_t C) {
  if (C >= u'0' && C <= u'9')
    return C - u'0';
  if (C >= u'a' && C <= u'f')
    return C - u'a' + 10;
  if (C >= u'A' && C <= u'F')
    return C - u'A' + 10;
  return -1;
}

/// Encodes a UTF-16 string as UTF-8 bytes. Lone surrogates become U+FFFD,
/// matching JS TextEncoder behaviour.
static std::vector<uint8_t> utf16ToUtf8(const js::String &Text) {
  std::vector<uint8_t> Out;
  Out.reserve(Text.size());
  for (size_t I = 0, E = Text.size(); I != E; ++I) {
    uint32_t Cp = Text[I];
    if (js::isHighSurrogate(Text[I]) && I + 1 != E &&
        js::isLowSurrogate(Text[I + 1])) {
      Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Text[I + 1] - 0xDC00);
      ++I;
    } else if (js::isHighSurrogate(Text[I]) ||
               js::isLowSurrogate(Text[I])) {
      Cp = 0xFFFD;
    }
    if (Cp < 0x80) {
      Out.push_back(static_cast<uint8_t>(Cp));
    } else if (Cp < 0x800) {
      Out.push_back(static_cast<uint8_t>(0xC0 | (Cp >> 6)));
      Out.push_back(static_cast<uint8_t>(0x80 | (Cp & 0x3F)));
    } else if (Cp < 0x10000) {
      Out.push_back(static_cast<uint8_t>(0xE0 | (Cp >> 12)));
      Out.push_back(static_cast<uint8_t>(0x80 | ((Cp >> 6) & 0x3F)));
      Out.push_back(static_cast<uint8_t>(0x80 | (Cp & 0x3F)));
    } else {
      Out.push_back(static_cast<uint8_t>(0xF0 | (Cp >> 18)));
      Out.push_back(static_cast<uint8_t>(0x80 | ((Cp >> 12) & 0x3F)));
      Out.push_back(static_cast<uint8_t>(0x80 | ((Cp >> 6) & 0x3F)));
      Out.push_back(static_cast<uint8_t>(0x80 | (Cp & 0x3F)));
    }
  }
  return Out;
}

/// Decodes UTF-8 bytes to UTF-16. Malformed sequences decode to U+FFFD.
static js::String utf8ToUtf16(const uint8_t *Data, size_t Len) {
  js::String Out;
  Out.reserve(Len);
  size_t I = 0;
  auto cont = [&](size_t Off) {
    return I + Off < Len && (Data[I + Off] & 0xC0) == 0x80;
  };
  while (I < Len) {
    uint8_t B = Data[I];
    uint32_t Cp = 0xFFFD;
    size_t Consumed = 1;
    if (B < 0x80) {
      Cp = B;
    } else if ((B & 0xE0) == 0xC0 && cont(1)) {
      Cp = ((B & 0x1F) << 6) | (Data[I + 1] & 0x3F);
      Consumed = 2;
    } else if ((B & 0xF0) == 0xE0 && cont(1) && cont(2)) {
      Cp = ((B & 0x0F) << 12) | ((Data[I + 1] & 0x3F) << 6) |
           (Data[I + 2] & 0x3F);
      Consumed = 3;
    } else if ((B & 0xF8) == 0xF0 && cont(1) && cont(2) && cont(3)) {
      Cp = ((B & 0x07) << 18) | ((Data[I + 1] & 0x3F) << 12) |
           ((Data[I + 2] & 0x3F) << 6) | (Data[I + 3] & 0x3F);
      Consumed = 4;
    }
    I += Consumed;
    if (Cp < 0x10000) {
      Out.push_back(static_cast<char16_t>(Cp));
    } else {
      Cp -= 0x10000;
      Out.push_back(static_cast<char16_t>(0xD800 + (Cp >> 10)));
      Out.push_back(static_cast<char16_t>(0xDC00 + (Cp & 0x3FF)));
    }
  }
  return Out;
}

js::String Buffer::toString(Encoding E, size_t Start, size_t End) const {
  assert(Start <= End && End <= Bytes.size() && "bad toString range");
  const uint8_t *Data = Bytes.data() + Start;
  size_t Len = End - Start;
  chargeAccess(Len);
  js::String Out;
  switch (E) {
  case Encoding::Ascii:
    Out.reserve(Len);
    for (size_t I = 0; I != Len; ++I)
      Out.push_back(Data[I] & 0x7F);
    return Out;
  case Encoding::Utf8:
    return utf8ToUtf16(Data, Len);
  case Encoding::Ucs2:
    for (size_t I = 0; I + 1 < Len; I += 2)
      Out.push_back(static_cast<char16_t>(Data[I] | (Data[I + 1] << 8)));
    return Out;
  case Encoding::Base64: {
    for (size_t I = 0; I < Len; I += 3) {
      uint32_t Group = Data[I] << 16;
      if (I + 1 < Len)
        Group |= Data[I + 1] << 8;
      if (I + 2 < Len)
        Group |= Data[I + 2];
      Out.push_back(Base64Alphabet[(Group >> 18) & 0x3F]);
      Out.push_back(Base64Alphabet[(Group >> 12) & 0x3F]);
      Out.push_back(I + 1 < Len ? Base64Alphabet[(Group >> 6) & 0x3F]
                                : u'=');
      Out.push_back(I + 2 < Len ? Base64Alphabet[Group & 0x3F] : u'=');
    }
    return Out;
  }
  case Encoding::Hex: {
    const char *Digits = "0123456789abcdef";
    Out.reserve(Len * 2);
    for (size_t I = 0; I != Len; ++I) {
      Out.push_back(Digits[Data[I] >> 4]);
      Out.push_back(Digits[Data[I] & 0xF]);
    }
    return Out;
  }
  case Encoding::BinaryString: {
    if (!packsTwoBytesPerChar(Env->profile())) {
      // Fallback: one byte per code unit (always valid UTF-16).
      Out.reserve(Len);
      for (size_t I = 0; I != Len; ++I)
        Out.push_back(Data[I]);
      return Out;
    }
    // Packed format: header unit carries the odd-length flag, then each
    // unit packs two bytes little-endian. Some of these units are lone
    // surrogates — exactly the sequences validating browsers refuse.
    Out.reserve(1 + (Len + 1) / 2);
    Out.push_back(static_cast<char16_t>(Len & 1));
    size_t I = 0;
    for (; I + 1 < Len; I += 2)
      Out.push_back(static_cast<char16_t>(Data[I] | (Data[I + 1] << 8)));
    if (I < Len)
      Out.push_back(static_cast<char16_t>(Data[I]));
    return Out;
  }
  }
  return Out;
}

/// Decodes \p Text under codec \p E into raw bytes.
static std::vector<uint8_t> decodeString(const browser::Profile &Prof,
                                         const js::String &Text,
                                         Encoding E) {
  std::vector<uint8_t> Out;
  switch (E) {
  case Encoding::Ascii:
    Out.reserve(Text.size());
    for (char16_t C : Text)
      Out.push_back(static_cast<uint8_t>(C & 0xFF));
    return Out;
  case Encoding::Utf8:
    return utf16ToUtf8(Text);
  case Encoding::Ucs2:
    Out.reserve(Text.size() * 2);
    for (char16_t C : Text) {
      Out.push_back(static_cast<uint8_t>(C & 0xFF));
      Out.push_back(static_cast<uint8_t>(C >> 8));
    }
    return Out;
  case Encoding::Base64: {
    int Bits = 0, Acc = 0;
    for (char16_t C : Text) {
      if (C == u'=')
        break;
      int V = base64Value(C);
      if (V < 0)
        continue; // Skip whitespace/invalid, like Node.
      Acc = (Acc << 6) | V;
      Bits += 6;
      if (Bits >= 8) {
        Bits -= 8;
        Out.push_back(static_cast<uint8_t>((Acc >> Bits) & 0xFF));
      }
    }
    return Out;
  }
  case Encoding::Hex: {
    for (size_t I = 0; I + 1 < Text.size(); I += 2) {
      int Hi = hexValue(Text[I]), Lo = hexValue(Text[I + 1]);
      if (Hi < 0 || Lo < 0)
        break;
      Out.push_back(static_cast<uint8_t>((Hi << 4) | Lo));
    }
    return Out;
  }
  case Encoding::BinaryString: {
    if (!Buffer::packsTwoBytesPerChar(Prof)) {
      Out.reserve(Text.size());
      for (char16_t C : Text)
        Out.push_back(static_cast<uint8_t>(C & 0xFF));
      return Out;
    }
    if (Text.empty())
      return Out;
    bool Odd = (Text[0] & 1) != 0;
    size_t Units = Text.size() - 1;
    Out.reserve(Units * 2);
    for (size_t I = 1; I <= Units; ++I) {
      char16_t C = Text[I];
      Out.push_back(static_cast<uint8_t>(C & 0xFF));
      bool IsLast = I == Units;
      if (!(IsLast && Odd))
        Out.push_back(static_cast<uint8_t>(C >> 8));
    }
    return Out;
  }
  }
  return Out;
}

size_t Buffer::write(const js::String &Text, Encoding E, size_t Off) {
  std::vector<uint8_t> Decoded = decodeString(Env->profile(), Text, E);
  if (Off >= Bytes.size())
    return 0;
  size_t Len = std::min(Decoded.size(), Bytes.size() - Off);
  chargeAccess(Len);
  std::copy(Decoded.begin(), Decoded.begin() + Len, Bytes.begin() + Off);
  return Len;
}

size_t Buffer::byteLength(browser::BrowserEnv &Env, const js::String &Text,
                          Encoding E) {
  return decodeString(Env.profile(), Text, E).size();
}

Buffer Buffer::fromString(browser::BrowserEnv &Env, const js::String &Text,
                          Encoding E) {
  return Buffer(Env, decodeString(Env.profile(), Text, E));
}
