//===- doppio/storage/journal.cpp -----------------------------------------==//

#include "doppio/storage/journal.h"

#include "browser/wire.h"

#include <cstddef>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::storage;

namespace {

constexpr uint32_t JournalMagic = 0x444a4e4c; // 'DJNL'
constexpr uint32_t JournalVersion = 1;
constexpr size_t HeaderBytes = 8;

/// FNV-1a 32-bit over a record body — detects a torn or bit-flipped tail.
uint32_t checksum(const uint8_t *Data, size_t Size) {
  uint32_t H = 2166136261u;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Data[I];
    H *= 16777619u;
  }
  return H;
}

void writeHeader(std::vector<uint8_t> &Out) {
  browser::wire::putU32(Out, JournalMagic);
  browser::wire::putU32(Out, JournalVersion);
}

/// Bounds-checked record parse starting at \p Pos. Returns true and
/// advances \p Pos past the record (including its checksum) only for a
/// complete record with an intact checksum.
bool parseRecord(const std::vector<uint8_t> &B, size_t &Pos,
                 Journal::Record &R) {
  size_t P = Pos;
  auto need = [&](size_t N) { return B.size() - P >= N; };
  if (!need(1))
    return false;
  uint8_t Kind = B[P++];
  if (Kind < 1 || Kind > 3)
    return false;
  R = Journal::Record();
  R.K = static_cast<Journal::Record::Kind>(Kind);
  switch (R.K) {
  case Journal::Record::Kind::Put: {
    if (!need(4))
      return false;
    uint32_t KeyLen = browser::wire::getU32(B.data() + P);
    P += 4;
    if (!need(KeyLen))
      return false;
    R.Key.assign(B.begin() + static_cast<ptrdiff_t>(P),
                 B.begin() + static_cast<ptrdiff_t>(P + KeyLen));
    P += KeyLen;
    if (!need(12))
      return false;
    R.M.SizeBytes = browser::wire::getU64(B.data() + P);
    P += 8;
    uint32_t NBlocks = browser::wire::getU32(B.data() + P);
    P += 4;
    if (!need(static_cast<size_t>(NBlocks) * 12))
      return false;
    for (uint32_t I = 0; I != NBlocks; ++I) {
      BlockId Id;
      Id.Hash = browser::wire::getU64(B.data() + P);
      P += 8;
      Id.Size = browser::wire::getU32(B.data() + P);
      P += 4;
      R.M.Blocks.push_back(Id);
    }
    break;
  }
  case Journal::Record::Kind::Del: {
    if (!need(4))
      return false;
    uint32_t KeyLen = browser::wire::getU32(B.data() + P);
    P += 4;
    if (!need(KeyLen))
      return false;
    R.Key.assign(B.begin() + static_cast<ptrdiff_t>(P),
                 B.begin() + static_cast<ptrdiff_t>(P + KeyLen));
    P += KeyLen;
    break;
  }
  case Journal::Record::Kind::Commit: {
    if (!need(8))
      return false;
    R.Seq = browser::wire::getU64(B.data() + P);
    P += 8;
    break;
  }
  }
  if (!need(4))
    return false;
  uint32_t Want = browser::wire::getU32(B.data() + P);
  if (checksum(B.data() + Pos, P - Pos) != Want)
    return false;
  Pos = P + 4;
  return true;
}

} // namespace

void Journal::encodeRecord(std::vector<uint8_t> &Out, const Record &R) {
  size_t Start = Out.size();
  Out.push_back(static_cast<uint8_t>(R.K));
  switch (R.K) {
  case Record::Kind::Put:
    browser::wire::putU32(Out, static_cast<uint32_t>(R.Key.size()));
    Out.insert(Out.end(), R.Key.begin(), R.Key.end());
    browser::wire::putU64(Out, R.M.SizeBytes);
    browser::wire::putU32(Out, static_cast<uint32_t>(R.M.Blocks.size()));
    for (const BlockId &Id : R.M.Blocks) {
      browser::wire::putU64(Out, Id.Hash);
      browser::wire::putU32(Out, Id.Size);
    }
    break;
  case Record::Kind::Del:
    browser::wire::putU32(Out, static_cast<uint32_t>(R.Key.size()));
    Out.insert(Out.end(), R.Key.begin(), R.Key.end());
    break;
  case Record::Kind::Commit:
    browser::wire::putU64(Out, R.Seq);
    break;
  }
  browser::wire::putU32(Out,
                        checksum(Out.data() + Start, Out.size() - Start));
}

void Journal::stagePut(const std::string &Key, const Manifest &M) {
  Record R;
  R.K = Record::Kind::Put;
  R.Key = Key;
  R.M = M;
  Staged.push_back(std::move(R));
}

void Journal::stageDel(const std::string &Key) {
  Record R;
  R.K = Record::Kind::Del;
  R.Key = Key;
  Staged.push_back(std::move(R));
}

const std::vector<uint8_t> &Journal::sealGroup() {
  std::vector<Record> Group;
  Group.swap(Staged);
  appendGroup(Group);
  return Log;
}

void Journal::appendGroup(const std::vector<Record> &Rs) {
  if (Log.empty())
    writeHeader(Log);
  if (Rs.empty())
    return;
  for (const Record &R : Rs)
    encodeRecord(Log, R);
  Record Commit;
  Commit.K = Record::Kind::Commit;
  Commit.Seq = NextSeq++;
  encodeRecord(Log, Commit);
}

void Journal::truncate() {
  Log.clear();
  writeHeader(Log);
}

Journal::Recovery Journal::recover(const std::vector<uint8_t> &Bytes,
                                   Directory &Dir) {
  Recovery Out;
  Staged.clear();
  Log.clear();
  writeHeader(Log);
  if (Bytes.empty()) { // Never journaled: a valid empty log.
    Out.HeaderOk = true;
    return Out;
  }
  if (Bytes.size() < HeaderBytes ||
      browser::wire::getU32(Bytes.data()) != JournalMagic ||
      browser::wire::getU32(Bytes.data() + 4) != JournalVersion) {
    Out.TornTailBytes = Bytes.size();
    return Out;
  }
  Out.HeaderOk = true;

  size_t Pos = HeaderBytes;
  size_t LastGoodEnd = HeaderBytes;
  std::vector<Record> Pending;
  Record R;
  while (parseRecord(Bytes, Pos, R)) {
    if (R.K != Record::Kind::Commit) {
      Pending.push_back(R);
      continue;
    }
    // An intact Commit seals the pending group: apply it.
    for (Record &P : Pending) {
      if (P.K == Record::Kind::Put)
        Dir.put(P.Key, std::move(P.M));
      else
        Dir.remove(P.Key);
      ++Out.RecordsApplied;
    }
    Pending.clear();
    ++Out.Commits;
    NextSeq = R.Seq + 1;
    LastGoodEnd = Pos;
  }
  Out.RecordsDiscarded = Pending.size();
  Out.TornTailBytes = Bytes.size() - LastGoodEnd;
  // The journal restarts from the consistent prefix.
  Log.assign(Bytes.begin(), Bytes.begin() + static_cast<ptrdiff_t>(LastGoodEnd));
  return Out;
}
