//===- doppio/storage/journal.h - Log-structured intent journal --*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md and DESIGN.md §19.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-consistency half of the storage hierarchy. Browser key/value
/// mechanisms give per-key atomicity and nothing more; one logical file
/// operation through KeyValueBackend is several puts (data, index), so a
/// tab killed mid-operation leaves the persisted tree torn. The journal
/// closes that hole the way a log-structured file system does:
///
///  - every logical mutation is an appended *intent record* (Put = key +
///    block manifest, Del = key) staged into an open group;
///  - a group is sealed by a Commit record and the whole log image is
///    persisted with a single (atomic) slow-store put — the durability
///    point ("group commit on the virtual clock": the cached store seals
///    on a kernel flush timer, not per operation);
///  - recovery replays complete, checksummed records up to the last
///    intact Commit onto the checkpointed directory and discards the
///    torn tail, so any power-cut byte offset recovers to a
///    *prefix-consistent* tree: exactly the state after some prefix of
///    the committed groups, never a blend.
///
/// Block payloads never ride in the log: blocks are content-addressed and
/// written to the slow store before the commit that references them, so a
/// replayed manifest's blocks are always present (block.h).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_STORAGE_JOURNAL_H
#define DOPPIO_DOPPIO_STORAGE_JOURNAL_H

#include "doppio/storage/block.h"

#include <cstdint>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace storage {

class Journal {
public:
  struct Record {
    enum class Kind : uint8_t { Put = 1, Del = 2, Commit = 3 };
    Kind K = Kind::Put;
    std::string Key;  // Put / Del.
    Manifest M;       // Put.
    uint64_t Seq = 0; // Commit.
  };

  /// Stages an intent record into the open group (in-memory; not yet part
  /// of the persisted image).
  void stagePut(const std::string &Key, const Manifest &M);
  void stageDel(const std::string &Key);

  size_t stagedRecords() const { return Staged.size(); }
  const std::vector<Record> &staged() const { return Staged; }

  /// Seals the open group: appends the staged records plus a Commit
  /// marker to the log image. The returned bytes are what must reach the
  /// slow store for the group to become durable.
  const std::vector<uint8_t> &sealGroup();

  /// Re-seals an already-sealed-elsewhere group into the log image (after
  /// a rescue truncation dropped it); a no-op for an empty \p Rs.
  void appendGroup(const std::vector<Record> &Rs);

  /// The persisted log image (header + committed records).
  const std::vector<uint8_t> &bytes() const { return Log; }
  size_t depthBytes() const { return Log.size(); }
  uint64_t commitsSealed() const { return NextSeq; }

  /// Checkpoint truncation: the directory snapshot now carries every
  /// committed record, so the log restarts empty (staged records, if any,
  /// survive for the next seal).
  void truncate();

  struct Recovery {
    bool HeaderOk = false;
    /// Complete commit groups replayed onto the directory.
    uint64_t Commits = 0;
    /// Put/Del records applied (those inside replayed groups).
    uint64_t RecordsApplied = 0;
    /// Records parsed but discarded because no Commit sealed them.
    uint64_t RecordsDiscarded = 0;
    /// Bytes past the last intact Commit (the torn tail).
    uint64_t TornTailBytes = 0;
  };

  /// Replays \p Bytes onto \p Dir: applies every record of every complete
  /// commit group, stops at the first torn or corrupt record, and reloads
  /// this journal's image to exactly the replayed prefix (future appends
  /// extend the consistent prefix, not the torn tail). An empty \p Bytes
  /// is a valid empty journal.
  Recovery recover(const std::vector<uint8_t> &Bytes, Directory &Dir);

private:
  static void encodeRecord(std::vector<uint8_t> &Out, const Record &R);

  std::vector<Record> Staged;
  std::vector<uint8_t> Log;
  uint64_t NextSeq = 0;
};

} // namespace storage
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_STORAGE_JOURNAL_H
