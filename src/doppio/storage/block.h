//===- doppio/storage/block.h - Content-addressed blocks ---------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md and DESIGN.md §19.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The block vocabulary of the storage hierarchy: values handed to the
/// cached key/value store are split into fixed-size blocks addressed by
/// the hash of their contents. Content addressing buys two things over
/// slow browser persistence:
///
///  - deduplication: identical blocks (zero-filled file tails, repeated
///    class-file preambles) occupy one cache slot and one slow-store
///    object no matter how many logical keys reference them, and
///  - immutability: a block's key never changes meaning, so blocks can be
///    written to the slow backend *before* the journal commit that
///    references them without any torn-write hazard — a half-flushed
///    block set is garbage, never corruption (DESIGN.md §19).
///
/// A Manifest is the ordered block list for one logical value; the
/// Directory maps logical keys to manifests and serializes to the
/// snapshot wire form (snap::Writer framing) persisted by checkpoints.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_STORAGE_BLOCK_H
#define DOPPIO_DOPPIO_STORAGE_BLOCK_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace storage {

/// Content address of one block: the 64-bit content hash plus the block
/// size. The size rides in the id (and in the slow-store key) so a
/// truncated slow-store object can never silently satisfy a fetch.
struct BlockId {
  uint64_t Hash = 0;
  uint32_t Size = 0;

  bool operator==(const BlockId &O) const {
    return Hash == O.Hash && Size == O.Size;
  }
  bool operator!=(const BlockId &O) const { return !(*this == O); }
  bool operator<(const BlockId &O) const {
    return Hash != O.Hash ? Hash < O.Hash : Size < O.Size;
  }
};

/// Hashes \p Size bytes at \p Data: FNV-1a folded through the murmur3
/// fmix64 finalizer (the same avalanche fix the cluster hash ring needed —
/// raw FNV clusters on small sequential inputs).
uint64_t hashBlock(const uint8_t *Data, size_t Size);

/// The slow-store key of a block: "b:<hash hex>.<size>".
std::string blockKey(const BlockId &Id);

/// Ordered block list of one logical value.
struct Manifest {
  std::vector<BlockId> Blocks;
  uint64_t SizeBytes = 0;

  bool operator==(const Manifest &O) const {
    return SizeBytes == O.SizeBytes && Blocks == O.Blocks;
  }
};

/// Splits \p Value into BlockBytes-sized chunks and returns the manifest
/// (the caller pairs it with the chunk payloads via splitChunks).
Manifest makeManifest(const std::vector<uint8_t> &Value, size_t BlockBytes);

/// The payload of block \p I of \p Value under \p BlockBytes splitting.
std::vector<uint8_t> blockPayload(const std::vector<uint8_t> &Value,
                                  size_t BlockBytes, size_t I);

/// Logical key -> manifest table. In-memory authoritative state of a
/// cached store; persisted wholesale under the "dir" slow-store key at
/// checkpoint time (the journal replays the delta on recovery).
class Directory {
public:
  /// Returns the manifest for \p Key, or null.
  const Manifest *lookup(const std::string &Key) const;
  void put(const std::string &Key, Manifest M);
  /// Removes \p Key; returns false if absent.
  bool remove(const std::string &Key);

  size_t size() const { return Entries.size(); }
  const std::map<std::string, Manifest> &entries() const { return Entries; }

  /// Sorted-order neighbour queries for the sequential prefetcher: the
  /// first key strictly after \p Key, or empty when none.
  std::string nextKey(const std::string &Key) const;
  /// True if \p A is the immediate sorted predecessor of \p B.
  bool adjacent(const std::string &A, const std::string &B) const;

  /// Wire form: magic+version header, length-prefixed entries.
  std::vector<uint8_t> serialize() const;
  /// Rejects malformed input by returning an empty directory with
  /// \p Ok = false.
  static Directory deserialize(const std::vector<uint8_t> &Bytes, bool &Ok);

private:
  std::map<std::string, Manifest> Entries;
};

} // namespace storage
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_STORAGE_BLOCK_H
