//===- doppio/storage/cached_store.cpp ------------------------------------==//

#include "doppio/storage/cached_store.h"

#include "doppio/obs/span.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::storage;

namespace {

/// Slow-store keys owned by the cache layer itself.
const char *DirKey = "dir";
const char *JournalKey = "journal";

/// Journal record overhead estimate for quota projection: kind + lengths +
/// checksum + commit amortization.
uint64_t recordOverhead(const std::string &Key, const Manifest &M) {
  return 32 + Key.size() + 12 * M.Blocks.size();
}

} // namespace

CacheConfig CacheConfig::forProfile(const browser::Profile &P) {
  CacheConfig C;
  C.BlockBytes = 16 * 1024;
  // An eighth of the tab's memory-pressure budget, never less than 1 MB:
  // the cache competes with the emulated heap for the same tab.
  C.CapacityBytes = std::max<uint64_t>(P.MemoryPressureBytes / 8, 1ull << 20);
  C.DirtyHighWaterBytes = std::max<uint64_t>(C.CapacityBytes / 4, 256 * 1024);
  // Slow engines dispatch fewer events per virtual second; stretching the
  // group-commit window keeps flush overhead proportional.
  C.FlushIntervalNs = browser::msToNs(8) * (P.Costs.EngineFactor >= 10 ? 4 : 1);
  C.CheckpointJournalBytes = 256 * 1024;
  C.PrefetchDepth = 8;
  C.Journaled = true;
  return C;
}

CachedKvStore::CachedKvStore(browser::BrowserEnv &Env,
                             std::unique_ptr<fs::AsyncKvStore> SlowStore,
                             CacheConfig Config)
    : Env(Env), Slow(std::move(SlowStore)), Cfg(Config) {
  obs::Registry &Reg = Env.metrics();
  std::string P = Reg.claimPrefix("storage");
  HitsC = &Reg.counter(P + ".cache.hits");
  MissesC = &Reg.counter(P + ".cache.misses");
  FillsC = &Reg.counter(P + ".cache.fills");
  EvictionsC = &Reg.counter(P + ".cache.evictions");
  DedupHitsC = &Reg.counter(P + ".cache.dedup_hits");
  PrefetchIssuedC = &Reg.counter(P + ".cache.prefetch_issued");
  PrefetchHitsC = &Reg.counter(P + ".cache.prefetch_hits");
  QuotaRejectsC = &Reg.counter(P + ".cache.quota_rejects");
  FlushesC = &Reg.counter(P + ".flush.flushes");
  FlushedBlocksC = &Reg.counter(P + ".flush.blocks");
  FlushErrorsC = &Reg.counter(P + ".flush.errors");
  BackpressureC = &Reg.counter(P + ".flush.backpressure");
  CommitsC = &Reg.counter(P + ".journal.commits");
  CheckpointsC = &Reg.counter(P + ".journal.checkpoints");
  GcBlocksC = &Reg.counter(P + ".journal.gc_blocks");
  ReplayedRecordsC = &Reg.counter(P + ".journal.replayed_records");
  ReplayedCommitsC = &Reg.counter(P + ".journal.replayed_commits");
  TornBytesC = &Reg.counter(P + ".journal.torn_bytes");
  BytesG = &Reg.gauge(P + ".cache.bytes");
  DirtyBytesG = &Reg.gauge(P + ".cache.dirty_bytes");
  EntriesG = &Reg.gauge(P + ".cache.entries");
  JournalDepthG = &Reg.gauge(P + ".journal.depth_bytes");
  startRecovery();
}

CachedKvStore::CachedKvStore(browser::BrowserEnv &Env,
                             std::unique_ptr<fs::AsyncKvStore> SlowStore)
    : CachedKvStore(Env, std::move(SlowStore),
                    CacheConfig::forProfile(Env.profile())) {}

CachedKvStore::~CachedKvStore() { FlushTimer.cancel(); }

//===----------------------------------------------------------------------===//
// Recovery
//===----------------------------------------------------------------------===//

void CachedKvStore::startRecovery() {
  // Checkpoint first, then the journal delta on top of it. A corrupt or
  // absent checkpoint degrades to an empty tree (the journal then carries
  // everything written since).
  Slow->get(DirKey, [this](ErrorOr<std::optional<Bytes>> V) {
    if (V.ok() && *V) {
      bool Ok = false;
      Committed = Directory::deserialize(**V, Ok);
      if (!Ok)
        Committed = Directory();
    }
    Slow->get(JournalKey, [this](ErrorOr<std::optional<Bytes>> JV) {
      finishRecovery(JV.ok() ? *JV : std::optional<Bytes>());
    });
  });
}

void CachedKvStore::finishRecovery(const std::optional<Bytes> &JournalImage) {
  obs::SpanStore &Spans = Env.metrics().spans();
  obs::SpanId Id = Spans.begin("storage.journal.replay");
  {
    obs::SpanStore::Scope Sc(Spans, Id);
    Journal::Recovery R =
        J.recover(JournalImage ? *JournalImage : Bytes(), Committed);
    ReplayedRecordsC->inc(R.RecordsApplied);
    ReplayedCommitsC->inc(R.Commits);
    TornBytesC->inc(R.TornTailBytes);
  }
  Spans.end(Id);

  Dir = Committed;
  // Invariant: every block a durable commit references was persisted
  // before that commit was sealed.
  for (const auto &[Key, M] : Committed.entries()) {
    (void)Key;
    for (const BlockId &B : M.Blocks)
      Persisted.insert(B);
  }
  JournalDepthG->set(static_cast<int64_t>(J.depthBytes()));

  Ready = true;
  std::vector<PendingOp> Ops;
  Ops.swap(PendingOps);
  for (PendingOp &Op : Ops)
    Op.Run();
}

void CachedKvStore::enqueueOrRun(std::function<void()> Fn) {
  if (Ready) {
    Fn();
    return;
  }
  PendingOps.push_back(PendingOp{std::move(Fn)});
}

//===----------------------------------------------------------------------===//
// Reads
//===----------------------------------------------------------------------===//

void CachedKvStore::get(const std::string &Key, GetCb Done) {
  enqueueOrRun([this, Key, Done = std::move(Done)]() mutable {
    doGet(Key, std::move(Done));
  });
}

void CachedKvStore::serveFromEntry(Entry &E, GetCb &Done) {
  if (E.Tombstone) {
    Done(std::optional<Bytes>());
    return;
  }
  if (E.Prefetched) {
    E.Prefetched = false;
    PrefetchHitsC->inc();
  }
  Env.chargeIo(100 + E.M.SizeBytes / 8);
  Done(std::optional<Bytes>(assemble(E.M)));
}

void CachedKvStore::doGet(const std::string &Key, GetCb Done) {
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    HitsC->inc();
    touchLru(Key, It->second);
    serveFromEntry(It->second, Done);
    return;
  }
  MissesC->inc();
  const Manifest *M = Dir.lookup(Key);
  if (!M) {
    // The directory is authoritative: a negative lookup never touches the
    // slow store.
    Env.chargeIo(100);
    Done(std::optional<Bytes>());
    return;
  }
  Manifest Copy = *M;
  maybePrefetch(Key);
  startFill(Key, Copy, /*Prefetch=*/false, std::move(Done));
}

void CachedKvStore::startFill(const std::string &Key, const Manifest &M,
                              bool Prefetch, GetCb Done) {
  auto It = Fills.find(Key);
  if (It != Fills.end()) {
    if (Done)
      It->second.Waiters.push_back(std::move(Done));
    return;
  }
  Fill &F = Fills[Key];
  F.M = M;
  F.Prefetch = Prefetch;
  if (Done)
    F.Waiters.push_back(std::move(Done));

  // Blocks already cached (shared with another entry) are copied up front:
  // their pool slots may be evicted while the rest are in flight.
  std::vector<BlockId> Missing;
  for (const BlockId &B : M.Blocks) {
    if (F.Blocks.count(B))
      continue; // Value-internal duplicate.
    auto PIt = Pool.find(B);
    if (PIt != Pool.end())
      F.Blocks[B] = PIt->second.Data;
    else
      Missing.push_back(B);
  }
  if (Missing.empty()) {
    finishFill(Key);
    return;
  }
  // Parallel fetches: on the virtual clock, N gets issued from the same
  // event overlap, so a multi-block miss costs one round trip, not N.
  F.Outstanding = Missing.size();
  for (const BlockId &B : Missing) {
    Slow->get(blockKey(B),
              [this, Key, B](ErrorOr<std::optional<Bytes>> V) {
                auto FIt = Fills.find(Key);
                if (FIt == Fills.end())
                  return;
                Fill &F = FIt->second;
                if (!V.ok() || !*V || (*V)->size() != B.Size)
                  F.Failed = true;
                else
                  F.Blocks[B] = std::move(**V);
                if (--F.Outstanding == 0)
                  finishFill(Key);
              });
  }
}

void CachedKvStore::finishFill(const std::string &Key) {
  auto It = Fills.find(Key);
  assert(It != Fills.end());
  Fill F = std::move(It->second);
  Fills.erase(It);

  // A put or del raced the fill: the entry is fresher than anything we
  // fetched — serve from it.
  auto EIt = Entries.find(Key);
  if (EIt != Entries.end()) {
    for (GetCb &W : F.Waiters)
      serveFromEntry(EIt->second, W);
    return;
  }
  if (F.Failed) {
    for (GetCb &W : F.Waiters)
      W(ApiError(Errno::Io, "storage: missing block for " + Key));
    return;
  }
  const Manifest *Cur = Dir.lookup(Key);
  if (!Cur) { // Deleted mid-fill.
    for (GetCb &W : F.Waiters)
      W(std::optional<Bytes>());
    return;
  }
  if (!(*Cur == F.M)) { // Rewritten mid-fill and already flushed+evicted.
    for (GetCb &W : F.Waiters)
      doGet(Key, std::move(W));
    return;
  }

  Bytes Value;
  Value.reserve(F.M.SizeBytes);
  for (const BlockId &B : F.M.Blocks) {
    const Bytes &D = F.Blocks[B];
    Value.insert(Value.end(), D.begin(), D.end());
  }
  insertBlocks(F.M, Value);
  Entry &E = Entries[Key];
  E.M = F.M;
  E.Dirty = false;
  E.Tombstone = false;
  E.Prefetched = F.Prefetch;
  LruList.push_front(Key);
  E.LruPos = LruList.begin();
  FillsC->inc();
  EntriesG->set(static_cast<int64_t>(Entries.size()));
  BytesG->set(static_cast<int64_t>(CachedBytes));
  evictIfNeeded();

  Env.chargeIo(100 + F.M.SizeBytes / 8);
  for (GetCb &W : F.Waiters)
    W(std::optional<Bytes>(Value));
}

void CachedKvStore::maybePrefetch(const std::string &MissKey) {
  bool Sequential = Dir.adjacent(LastMissKey, MissKey);
  LastMissKey = MissKey;
  if (!Sequential || Cfg.PrefetchDepth == 0)
    return;
  std::string Next = MissKey;
  for (unsigned I = 0; I != Cfg.PrefetchDepth; ++I) {
    Next = Dir.nextKey(Next);
    if (Next.empty())
      break;
    if (Entries.count(Next) || Fills.count(Next))
      continue;
    const Manifest *M = Dir.lookup(Next);
    if (!M)
      continue;
    PrefetchIssuedC->inc();
    startFill(Next, *M, /*Prefetch=*/true, GetCb());
  }
}

//===----------------------------------------------------------------------===//
// Writes
//===----------------------------------------------------------------------===//

void CachedKvStore::put(const std::string &Key, const Bytes &Value,
                        DoneCb Done) {
  enqueueOrRun([this, Key, Value, Done = std::move(Done)]() mutable {
    doPut(Key, std::move(Value), std::move(Done));
  });
}

uint64_t CachedKvStore::projectedPutCost(const Manifest &M, const Bytes &Value,
                                         const std::string &Key) const {
  uint64_t Cost = recordOverhead(Key, M);
  for (size_t I = 0; I != M.Blocks.size(); ++I) {
    const BlockId &B = M.Blocks[I];
    if (Persisted.count(B) || DirtyBlocks.count(B))
      continue; // Already durable or already billed.
    (void)Value;
    Cost += Slow->putCostBytes(blockKey(B), B.Size);
  }
  return Cost;
}

void CachedKvStore::doPut(const std::string &Key, Bytes Value, DoneCb Done) {
  Manifest M = makeManifest(Value, Cfg.BlockBytes);

  uint64_t Quota = Slow->quotaBytes();
  if (Quota) {
    uint64_t Need = projectedPutCost(M, Value, Key);
    if (Slow->usedBytes() + DirtyProjected + Need > Quota) {
      // Fast-fail with ENOSPC instead of acking a write that can never be
      // flushed, then reclaim in the background (checkpoint truncates the
      // journal; GC deletes dead blocks) so later puts may fit.
      QuotaRejectsC->inc();
      if (!FlushInFlight && anythingToFlush())
        runFlush();
      else if (!FlushInFlight)
        startCheckpoint(/*Rescue=*/true);
      Done(ApiError(Errno::NoSpace, Key));
      return;
    }
    DirtyProjected += Need;
  }

  Env.chargeIo(100 + Value.size() / 8);

  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    dropEntryBlocks(It->second);
  } else {
    It = Entries.emplace(Key, Entry()).first;
    LruList.push_front(Key);
    It->second.LruPos = LruList.begin();
  }
  Entry &E = It->second;
  insertBlocks(M, Value);
  E.M = M;
  E.Dirty = true;
  E.Tombstone = false;
  E.Prefetched = false;
  E.DirtyEpoch = ++Epoch;
  touchLru(Key, E);

  Dir.put(Key, M);
  J.stagePut(Key, M);

  EntriesG->set(static_cast<int64_t>(Entries.size()));
  BytesG->set(static_cast<int64_t>(CachedBytes));
  DirtyBytesG->set(static_cast<int64_t>(DirtyBytes));

  if (DirtyBytes > Cfg.DirtyHighWaterBytes)
    kickFlush(/*Backpressure=*/true);
  else
    armFlushTimer();
  evictIfNeeded();
  Done(std::nullopt);
}

void CachedKvStore::del(const std::string &Key, DoneCb Done) {
  enqueueOrRun([this, Key, Done = std::move(Done)]() mutable {
    doDel(Key, std::move(Done));
  });
}

void CachedKvStore::doDel(const std::string &Key, DoneCb Done) {
  bool Existed = Dir.lookup(Key) != nullptr;
  auto It = Entries.find(Key);
  if (!Existed && It == Entries.end()) {
    Done(std::nullopt); // Deleting the absent is a no-op, like the adapters.
    return;
  }
  Dir.remove(Key);
  if (It == Entries.end()) {
    It = Entries.emplace(Key, Entry()).first;
    LruList.push_front(Key);
    It->second.LruPos = LruList.begin();
    EntriesG->set(static_cast<int64_t>(Entries.size()));
  } else {
    dropEntryBlocks(It->second);
  }
  Entry &E = It->second;
  E.M = Manifest();
  E.Dirty = true;
  E.Tombstone = true;
  E.DirtyEpoch = ++Epoch;
  touchLru(Key, E);
  if (Existed)
    J.stageDel(Key);
  BytesG->set(static_cast<int64_t>(CachedBytes));
  armFlushTimer();
  Done(std::nullopt);
}

//===----------------------------------------------------------------------===//
// Cache bookkeeping
//===----------------------------------------------------------------------===//

CachedKvStore::Bytes CachedKvStore::assemble(const Manifest &M) const {
  Bytes Out;
  Out.reserve(M.SizeBytes);
  for (const BlockId &B : M.Blocks) {
    auto It = Pool.find(B);
    assert(It != Pool.end() && "cached entry references an evicted block");
    Out.insert(Out.end(), It->second.Data.begin(), It->second.Data.end());
  }
  return Out;
}

void CachedKvStore::touchLru(const std::string &Key, Entry &E) {
  if (E.LruPos != LruList.begin())
    LruList.splice(LruList.begin(), LruList, E.LruPos);
  E.LruPos = LruList.begin();
  (void)Key;
}

void CachedKvStore::insertBlocks(const Manifest &M, const Bytes &Value) {
  for (size_t I = 0; I != M.Blocks.size(); ++I) {
    const BlockId &B = M.Blocks[I];
    auto It = Pool.find(B);
    if (It != Pool.end()) {
      ++It->second.Refs;
      DedupHitsC->inc();
    } else {
      Block &Slot = Pool[B];
      Slot.Data = blockPayload(Value, Cfg.BlockBytes, I);
      Slot.Refs = 1;
      CachedBytes += B.Size;
    }
    if (!Persisted.count(B) && DirtyBlocks.insert(B).second)
      DirtyBytes += B.Size;
  }
}

void CachedKvStore::dropEntryBlocks(const Entry &E) {
  for (const BlockId &B : E.M.Blocks) {
    auto It = Pool.find(B);
    if (It == Pool.end())
      continue;
    if (--It->second.Refs != 0)
      continue;
    CachedBytes -= B.Size;
    // An unreferenced dirty block will never be read back: within a commit
    // group the last record for a key wins, so its payload need not reach
    // the slow store at all.
    if (DirtyBlocks.erase(B))
      DirtyBytes -= B.Size;
    Pool.erase(It);
  }
}

void CachedKvStore::evictIfNeeded() {
  if (CachedBytes <= Cfg.CapacityBytes)
    return;
  auto It = LruList.end();
  while (CachedBytes > Cfg.CapacityBytes && It != LruList.begin()) {
    --It;
    auto EIt = Entries.find(*It);
    assert(EIt != Entries.end());
    if (EIt->second.Dirty)
      continue; // Pinned until flushed.
    dropEntryBlocks(EIt->second);
    Entries.erase(EIt);
    It = LruList.erase(It);
    EvictionsC->inc();
  }
  EntriesG->set(static_cast<int64_t>(Entries.size()));
  BytesG->set(static_cast<int64_t>(CachedBytes));
  // Everything left is dirty: only a flush can unpin it.
  if (CachedBytes > Cfg.CapacityBytes)
    kickFlush(/*Backpressure=*/true);
}

//===----------------------------------------------------------------------===//
// Flush pipeline
//===----------------------------------------------------------------------===//

void CachedKvStore::armFlushTimer() {
  if (FlushInFlight || FlushTimer.armed())
    return;
  FlushTimer = Env.loop().postTimer(
      kernel::Lane::Background, [this] { kickFlush(false); },
      Cfg.FlushIntervalNs);
}

void CachedKvStore::kickFlush(bool Backpressure) {
  if (Backpressure)
    BackpressureC->inc();
  if (FlushInFlight) {
    FlushAgain = true;
    return;
  }
  if (!anythingToFlush()) {
    finishFlush(std::nullopt);
    return;
  }
  runFlush();
}

void CachedKvStore::runFlush() {
  FlushInFlight = true;
  FlushTimer.cancel();

  // Seal the open group: the staged records join the log image, and are
  // remembered so Committed can absorb them once the image is durable.
  if (J.stagedRecords()) {
    for (const Journal::Record &R : J.staged())
      SealedUnapplied.push_back(R);
    J.sealGroup();
    SealEpoch = Epoch;
  }

  // Phase 1: persist dirty blocks, in parallel. Content-addressed keys
  // make this safe before the commit: a crash here leaves unreferenced
  // garbage blocks, never a torn value.
  std::vector<BlockId> ToWrite(DirtyBlocks.begin(), DirtyBlocks.end());
  if (ToWrite.empty()) {
    persistCommit(std::move(ToWrite));
    return;
  }
  struct BatchState {
    std::vector<BlockId> Written;
    size_t Outstanding;
    std::optional<ApiError> Err;
  };
  auto State = std::make_shared<BatchState>();
  State->Written = std::move(ToWrite);
  State->Outstanding = State->Written.size();
  for (const BlockId &B : State->Written) {
    auto PIt = Pool.find(B);
    assert(PIt != Pool.end() && "dirty block evicted before flush");
    Slow->put(blockKey(B), PIt->second.Data,
              [this, State](std::optional<ApiError> E) {
                if (E && !State->Err)
                  State->Err = E;
                if (--State->Outstanding != 0)
                  return;
                flushBlocksDone(std::move(State->Written), State->Err);
              });
  }
}

void CachedKvStore::flushBlocksDone(std::vector<BlockId> Written,
                                    std::optional<ApiError> Err) {
  if (Err) {
    flushFailed(*Err);
    return;
  }
  FlushedBlocksC->inc(Written.size());
  persistCommit(std::move(Written));
}

void CachedKvStore::persistCommit(std::vector<BlockId> Written) {
  // Phase 2: the durability point — one atomic slow-store put. Journaled
  // stores persist the log image; unjournaled stores persist the full
  // directory snapshot (absorbing the sealed records first).
  if (Cfg.Journaled) {
    Slow->put(JournalKey, J.bytes(),
              [this, Written = std::move(Written)](
                  std::optional<ApiError> E) mutable {
                if (E) {
                  flushFailed(*E);
                  return;
                }
                for (const Journal::Record &R : SealedUnapplied) {
                  if (R.K == Journal::Record::Kind::Put)
                    Committed.put(R.Key, R.M);
                  else if (R.K == Journal::Record::Kind::Del)
                    Committed.remove(R.Key);
                }
                commitDurable(std::move(Written));
              });
    return;
  }
  // Reapplying on a retry is idempotent (records carry full manifests).
  for (const Journal::Record &R : SealedUnapplied) {
    if (R.K == Journal::Record::Kind::Put)
      Committed.put(R.Key, R.M);
    else if (R.K == Journal::Record::Kind::Del)
      Committed.remove(R.Key);
  }
  Slow->put(DirKey, Committed.serialize(),
            [this, Written = std::move(Written)](
                std::optional<ApiError> E) mutable {
              if (E) {
                flushFailed(*E);
                return;
              }
              J.truncate();
              commitDurable(std::move(Written));
            });
}

void CachedKvStore::commitDurable(std::vector<BlockId> Written) {
  for (const BlockId &B : Written) {
    Persisted.insert(B);
    if (DirtyBlocks.erase(B))
      DirtyBytes -= B.Size;
  }
  uint64_t Groups = SealedUnapplied.empty() ? 0 : 1;
  SealedUnapplied.clear();
  CommitsC->inc(Groups);
  FlushesC->inc();
  Sticky.reset();
  RescueTried = false;
  DirtyProjected = 0;
  for (const BlockId &B : DirtyBlocks)
    DirtyProjected += Slow->putCostBytes(blockKey(B), B.Size);

  // Entries dirtied before the group was sealed are clean now; later
  // writers (higher epoch) stay pinned for the next group.
  std::vector<std::string> DeadTombstones;
  for (auto &[Key, E] : Entries) {
    if (!E.Dirty || E.DirtyEpoch > SealEpoch)
      continue;
    E.Dirty = false;
    if (E.Tombstone)
      DeadTombstones.push_back(Key);
  }
  for (const std::string &Key : DeadTombstones) {
    auto It = Entries.find(Key);
    LruList.erase(It->second.LruPos);
    Entries.erase(It);
  }
  DirtyBytesG->set(static_cast<int64_t>(DirtyBytes));
  EntriesG->set(static_cast<int64_t>(Entries.size()));
  JournalDepthG->set(static_cast<int64_t>(J.depthBytes()));
  // Entries unpinned by this commit may now be evictable.
  if (CachedBytes > Cfg.CapacityBytes)
    evictIfNeeded();

  if (Cfg.Journaled && J.depthBytes() > Cfg.CheckpointJournalBytes) {
    startCheckpoint(/*Rescue=*/false);
    return;
  }
  finishFlush(std::nullopt);
}

void CachedKvStore::flushFailed(ApiError Err) {
  FlushErrorsC->inc();
  if (Err.Code == Errno::NoSpace && !RescueTried) {
    // Reclaim and retry once: a checkpoint truncates the journal and GC
    // deletes dead blocks, which is often enough to fit the group.
    RescueTried = true;
    startCheckpoint(/*Rescue=*/true);
    return;
  }
  finishFlush(Err);
}

void CachedKvStore::startCheckpoint(bool Rescue) {
  FlushInFlight = true;
  FlushTimer.cancel();
  assert(Rescue || SealedUnapplied.empty());
  // Committed is exactly the durable state (the snapshot never runs ahead
  // of what journal replay yields), so a crash between the two puts below
  // recovers consistently: new dir + old journal replays idempotently
  // back to Committed.
  Slow->put(DirKey, Committed.serialize(), [this, Rescue](
                                               std::optional<ApiError> E) {
    if (E) {
      // A failed checkpoint loses nothing: the journal still covers the
      // delta. Surface as a flush error only when we were rescuing.
      FlushErrorsC->inc();
      finishFlush(Rescue ? std::optional<ApiError>(*E) : std::nullopt);
      return;
    }
    // Shrink the in-memory log to the still-pending delta: any group
    // sealed but not yet durable must survive the truncation (a rescue
    // checkpoint runs exactly because persisting it failed).
    J.truncate();
    J.appendGroup(SealedUnapplied);
    CheckpointsC->inc();
    JournalDepthG->set(static_cast<int64_t>(J.depthBytes()));
    collectGarbage();
    if (Rescue && anythingToFlush()) {
      // Retry the failed group with the reclaimed space; the retried
      // flush persists the shrunk journal image after its blocks land.
      FlushInFlight = false;
      runFlush();
      return;
    }
    // Nothing pending: persist the shrunk image so recovery stops
    // replaying the checkpointed prefix.
    Slow->put(JournalKey, J.bytes(), [this, Rescue](
                                         std::optional<ApiError> E2) {
      if (E2) {
        FlushErrorsC->inc();
        finishFlush(Rescue ? std::optional<ApiError>(*E2) : std::nullopt);
        return;
      }
      finishFlush(std::nullopt);
    });
  });
}

void CachedKvStore::collectGarbage() {
  // Blocks referenced by no durable state and no pending group are dead.
  std::set<BlockId> Referenced;
  for (const auto &[Key, M] : Committed.entries()) {
    (void)Key;
    for (const BlockId &B : M.Blocks)
      Referenced.insert(B);
  }
  for (const Journal::Record &R : SealedUnapplied)
    for (const BlockId &B : R.M.Blocks)
      Referenced.insert(B);
  for (const Journal::Record &R : J.staged())
    for (const BlockId &B : R.M.Blocks)
      Referenced.insert(B);
  for (const BlockId &B : DirtyBlocks)
    Referenced.insert(B);

  std::vector<BlockId> Dead;
  for (const BlockId &B : Persisted)
    if (!Referenced.count(B))
      Dead.push_back(B);
  for (const BlockId &B : Dead) {
    Persisted.erase(B);
    GcBlocksC->inc();
    Slow->del(blockKey(B), [](std::optional<ApiError>) {});
  }
}

void CachedKvStore::finishFlush(std::optional<ApiError> Err) {
  FlushInFlight = false;
  if (Err) {
    Sticky = Err;
    std::vector<DoneCb> Waiters;
    Waiters.swap(SyncWaiters);
    for (DoneCb &W : Waiters)
      W(Err);
    return;
  }
  bool More = anythingToFlush();
  if (More && (FlushAgain || !SyncWaiters.empty())) {
    FlushAgain = false;
    runFlush();
    return;
  }
  FlushAgain = false;
  if (More) {
    armFlushTimer();
    return;
  }
  std::vector<DoneCb> Waiters;
  Waiters.swap(SyncWaiters);
  for (DoneCb &W : Waiters)
    W(std::nullopt);
}

void CachedKvStore::sync(DoneCb Done) {
  enqueueOrRun([this, Done = std::move(Done)]() mutable {
    if (!anythingToFlush() && !FlushInFlight) {
      Done(std::nullopt);
      return;
    }
    SyncWaiters.push_back(std::move(Done));
    if (!FlushInFlight)
      runFlush();
  });
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

CacheStats CachedKvStore::stats() const {
  CacheStats S;
  S.Hits = HitsC->value();
  S.Misses = MissesC->value();
  S.Fills = FillsC->value();
  S.Evictions = EvictionsC->value();
  S.DedupHits = DedupHitsC->value();
  S.PrefetchIssued = PrefetchIssuedC->value();
  S.PrefetchHits = PrefetchHitsC->value();
  S.QuotaRejects = QuotaRejectsC->value();
  S.Flushes = FlushesC->value();
  S.FlushedBlocks = FlushedBlocksC->value();
  S.FlushErrors = FlushErrorsC->value();
  S.BackpressureFlushes = BackpressureC->value();
  S.JournalCommits = CommitsC->value();
  S.Checkpoints = CheckpointsC->value();
  S.GcBlocks = GcBlocksC->value();
  S.ReplayedRecords = ReplayedRecordsC->value();
  S.ReplayedCommits = ReplayedCommitsC->value();
  S.TornTailBytes = TornBytesC->value();
  S.CachedBytes = CachedBytes;
  S.DirtyBytes = DirtyBytes;
  S.EntryCount = Entries.size();
  S.JournalDepthBytes = J.depthBytes();
  return S;
}
