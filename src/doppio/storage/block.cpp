//===- doppio/storage/block.cpp -------------------------------------------==//

#include "doppio/storage/block.h"

#include "doppio/cont/snapshot.h"

#include <cstddef>
#include <cstdio>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::storage;

uint64_t storage::hashBlock(const uint8_t *Data, size_t Size) {
  // FNV-1a over the contents...
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Data[I];
    H *= 1099511628211ull;
  }
  // ...then the murmur3 fmix64 finalizer: small sequential inputs (block
  // 0 of C0.class vs C1.class) must land far apart.
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ull;
  H ^= H >> 33;
  return H;
}

std::string storage::blockKey(const BlockId &Id) {
  char Buf[48];
  snprintf(Buf, sizeof(Buf), "b:%016llx.%u",
           static_cast<unsigned long long>(Id.Hash), Id.Size);
  return Buf;
}

Manifest storage::makeManifest(const std::vector<uint8_t> &Value,
                               size_t BlockBytes) {
  Manifest M;
  M.SizeBytes = Value.size();
  for (size_t Off = 0; Off < Value.size(); Off += BlockBytes) {
    size_t N = std::min(BlockBytes, Value.size() - Off);
    M.Blocks.push_back(
        {hashBlock(Value.data() + Off, N), static_cast<uint32_t>(N)});
  }
  return M;
}

std::vector<uint8_t> storage::blockPayload(const std::vector<uint8_t> &Value,
                                           size_t BlockBytes, size_t I) {
  size_t Off = I * BlockBytes;
  size_t N = std::min(BlockBytes, Value.size() - Off);
  return std::vector<uint8_t>(Value.begin() + static_cast<ptrdiff_t>(Off),
                              Value.begin() + static_cast<ptrdiff_t>(Off + N));
}

//===----------------------------------------------------------------------===//
// Directory
//===----------------------------------------------------------------------===//

namespace {
constexpr uint32_t DirMagic = 0x44444952; // 'DDIR'
constexpr uint32_t DirVersion = 1;
} // namespace

const Manifest *Directory::lookup(const std::string &Key) const {
  auto It = Entries.find(Key);
  return It == Entries.end() ? nullptr : &It->second;
}

void Directory::put(const std::string &Key, Manifest M) {
  Entries[Key] = std::move(M);
}

bool Directory::remove(const std::string &Key) {
  return Entries.erase(Key) != 0;
}

std::string Directory::nextKey(const std::string &Key) const {
  auto It = Entries.upper_bound(Key);
  return It == Entries.end() ? std::string() : It->first;
}

bool Directory::adjacent(const std::string &A, const std::string &B) const {
  if (A.empty() || !(A < B))
    return false;
  auto It = Entries.upper_bound(A);
  return It != Entries.end() && It->first == B;
}

std::vector<uint8_t> Directory::serialize() const {
  snap::Writer W(DirMagic, DirVersion);
  W.u32(static_cast<uint32_t>(Entries.size()));
  for (const auto &[Key, M] : Entries) {
    W.str(Key);
    W.u64(M.SizeBytes);
    W.u32(static_cast<uint32_t>(M.Blocks.size()));
    for (const BlockId &Id : M.Blocks) {
      W.u64(Id.Hash);
      W.u32(Id.Size);
    }
  }
  return W.take();
}

Directory Directory::deserialize(const std::vector<uint8_t> &Bytes,
                                 bool &Ok) {
  Directory D;
  snap::Reader R(Bytes, DirMagic, DirVersion);
  uint32_t N = R.u32();
  for (uint32_t I = 0; I != N && R.ok(); ++I) {
    std::string Key = R.str();
    Manifest M;
    M.SizeBytes = R.u64();
    uint32_t Blocks = R.u32();
    for (uint32_t B = 0; B != Blocks && R.ok(); ++B) {
      BlockId Id;
      Id.Hash = R.u64();
      Id.Size = R.u32();
      M.Blocks.push_back(Id);
    }
    if (R.ok())
      D.Entries[Key] = std::move(M);
  }
  Ok = R.ok() && R.atEnd();
  if (!Ok)
    D.Entries.clear();
  return D;
}
