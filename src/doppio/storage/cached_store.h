//===- doppio/storage/cached_store.h - Write-back block cache ----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md and DESIGN.md §19.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage hierarchy's front: a write-back, content-addressed block
/// cache implementing AsyncKvStore, layered between the generic
/// KeyValueBackend and a slow adapter (localstorage / indexeddb / cloud).
/// The fig6 cliff this exists to fix: the cloud backend replays the javac
/// trace at ~870x virtual slowdown because every logical operation pays a
/// WAN round trip; warm, the cache serves hits synchronously and lands
/// within ~2x of the inmemory backend.
///
///  - Reads: a hit is served from memory in the same event (plus a small
///    copy charge). A miss consults the Directory (authoritative, in
///    memory — a negative lookup is free), fetches the manifest's blocks
///    from the slow store *in parallel* on the virtual clock, and — when
///    the miss extends a sequential run — prefetches the next
///    PrefetchDepth directory neighbours.
///  - Writes: acknowledged after the value is split into content-addressed
///    blocks, cached dirty, and its intent record staged in the journal.
///    A kernel Background-lane timer flushes dirty state (group commit);
///    crossing the dirty high-water mark flushes immediately
///    (backpressure). Flush order is the crash-consistency contract:
///    blocks first (content-addressed, so a torn flush is garbage, never
///    corruption), then the sealed journal image in one put — the
///    durability point (journal.h).
///  - Eviction: LRU over clean entries when the per-profile capacity
///    (derived from MemoryPressureBytes) is exceeded; dirty entries are
///    pinned until flushed. Quota pressure on the slow store fast-fails
///    puts with ENOSPC and kicks checkpoint + garbage collection to
///    reclaim dead blocks and journal bytes.
///
/// The cached store owns its slow-store namespace ("b:<hash>.<size>"
/// blocks, "dir" checkpoint, "journal" log); mixing direct writes to the
/// same slow store with cached access is unsupported.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_STORAGE_CACHED_STORE_H
#define DOPPIO_DOPPIO_STORAGE_CACHED_STORE_H

#include "browser/env.h"
#include "doppio/backends/kv_store.h"
#include "doppio/obs/registry.h"
#include "doppio/storage/block.h"
#include "doppio/storage/journal.h"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace storage {

/// Cache tuning, derived per browser profile (forProfile). All sizes are
/// bytes, all durations virtual nanoseconds.
struct CacheConfig {
  /// Content-addressed block granularity.
  size_t BlockBytes = 16 * 1024;
  /// Cached-bytes ceiling; LRU eviction of clean entries beyond it.
  uint64_t CapacityBytes = 8ull << 20;
  /// Dirty bytes that force an immediate (backpressure) flush.
  uint64_t DirtyHighWaterBytes = 2ull << 20;
  /// Background flush timer period (group-commit cadence).
  uint64_t FlushIntervalNs = browser::msToNs(8);
  /// Journal size that triggers a checkpoint (directory snapshot +
  /// truncation + block GC) after the next flush.
  size_t CheckpointJournalBytes = 256 * 1024;
  /// Directory neighbours fetched ahead on a sequential miss run.
  unsigned PrefetchDepth = 8;
  /// False collapses the journal: each flush persists the directory
  /// snapshot directly (one atomic put = the commit). Loses group-commit
  /// batching of the log but keeps crash consistency; used for slow
  /// stores whose values are too small to amortize a log (localstorage).
  bool Journaled = true;

  static CacheConfig forProfile(const browser::Profile &P);
};

/// Registry-backed counter snapshot (see the storage.* cells).
struct CacheStats {
  uint64_t Hits = 0, Misses = 0, Fills = 0, Evictions = 0, DedupHits = 0;
  uint64_t PrefetchIssued = 0, PrefetchHits = 0, QuotaRejects = 0;
  uint64_t Flushes = 0, FlushedBlocks = 0, FlushErrors = 0;
  uint64_t BackpressureFlushes = 0;
  uint64_t JournalCommits = 0, Checkpoints = 0, GcBlocks = 0;
  uint64_t ReplayedRecords = 0, ReplayedCommits = 0, TornTailBytes = 0;
  uint64_t CachedBytes = 0, DirtyBytes = 0, EntryCount = 0;
  uint64_t JournalDepthBytes = 0;

  double hitRatio() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

/// Write-back block cache over a slow AsyncKvStore. Single-threaded like
/// everything on the event loop; the store must outlive any in-flight
/// slow-store completions (drain the loop before destroying it).
class CachedKvStore : public fs::AsyncKvStore {
public:
  CachedKvStore(browser::BrowserEnv &Env,
                std::unique_ptr<fs::AsyncKvStore> SlowStore,
                CacheConfig Config);
  CachedKvStore(browser::BrowserEnv &Env,
                std::unique_ptr<fs::AsyncKvStore> SlowStore);
  ~CachedKvStore() override;

  std::string storeName() const override {
    return "cached:" + Slow->storeName();
  }
  void get(const std::string &Key, GetCb Done) override;
  void put(const std::string &Key, const Bytes &Value, DoneCb Done) override;
  void del(const std::string &Key, DoneCb Done) override;

  uint64_t usedBytes() const override { return Slow->usedBytes(); }
  uint64_t quotaBytes() const override { return Slow->quotaBytes(); }
  uint64_t putCostBytes(const std::string &Key,
                        size_t ValueBytes) const override {
    return Slow->putCostBytes(Key, ValueBytes);
  }

  /// Flushes dirty entries and seals the journal group; \p Done fires once
  /// every previously acknowledged mutation is durable (or with the flush
  /// error).
  void sync(DoneCb Done) override;

  /// True once recovery (checkpoint load + journal replay) has finished;
  /// operations issued earlier are queued and drained in order.
  bool ready() const { return Ready; }

  /// Error from the most recent failed flush, if the failure persists
  /// (cleared by the next successful flush).
  std::optional<ApiError> lastFlushError() const { return Sticky; }

  CacheStats stats() const;
  fs::AsyncKvStore &slow() { return *Slow; }
  const Directory &directory() const { return Dir; }
  const Journal &journal() const { return J; }
  const CacheConfig &config() const { return Cfg; }

private:
  struct Block {
    std::vector<uint8_t> Data;
    uint32_t Refs = 0;
  };

  struct Entry {
    Manifest M;
    bool Dirty = false;
    bool Tombstone = false;
    bool Prefetched = false;
    uint64_t DirtyEpoch = 0;
    std::list<std::string>::iterator LruPos;
  };

  /// One queued pre-ready operation. (Wrapped in a struct: the cont
  /// invariant forbids raw containers of void() closures outside cont/.)
  struct PendingOp {
    std::function<void()> Run;
  };

  /// One in-flight miss fill; later gets for the same key join Waiters.
  struct Fill {
    std::vector<GetCb> Waiters;
    Manifest M;
    std::map<BlockId, std::vector<uint8_t>> Blocks;
    size_t Outstanding = 0;
    bool Prefetch = false;
    bool Failed = false;
  };

  void startRecovery();
  void finishRecovery(const std::optional<Bytes> &JournalImage);
  void enqueueOrRun(std::function<void()> Fn);

  void doGet(const std::string &Key, GetCb Done);
  void doPut(const std::string &Key, Bytes Value, DoneCb Done);
  void doDel(const std::string &Key, DoneCb Done);

  void serveFromEntry(Entry &E, GetCb &Done);
  void startFill(const std::string &Key, const Manifest &M, bool Prefetch,
                 GetCb Done);
  void finishFill(const std::string &Key);
  void maybePrefetch(const std::string &MissKey);

  Bytes assemble(const Manifest &M) const;
  void touchLru(const std::string &Key, Entry &E);
  void insertBlocks(const Manifest &M, const Bytes &Value);
  void dropEntryBlocks(const Entry &E);
  void evictIfNeeded();

  void armFlushTimer();
  void kickFlush(bool Backpressure);
  void runFlush();
  void flushBlocksDone(std::vector<BlockId> Written,
                       std::optional<ApiError> Err);
  void persistCommit(std::vector<BlockId> Written);
  void commitDurable(std::vector<BlockId> Written);
  void flushFailed(ApiError Err);
  void finishFlush(std::optional<ApiError> Err);
  void startCheckpoint(bool Rescue);
  void collectGarbage();
  bool anythingToFlush() const {
    return J.stagedRecords() != 0 || !SealedUnapplied.empty();
  }
  uint64_t projectedPutCost(const Manifest &M, const Bytes &Value,
                            const std::string &Key) const;

  browser::BrowserEnv &Env;
  std::unique_ptr<fs::AsyncKvStore> Slow;
  CacheConfig Cfg;

  /// Live logical view (reads and writes go through this).
  Directory Dir;
  /// State covered by durable commits (journal-persisted groups); what a
  /// checkpoint snapshots. Trails Dir by the staged/unflushed delta.
  Directory Committed;
  Journal J;
  /// Sealed-into-the-log but not yet durably persisted records; applied
  /// to Committed when the log image reaches the slow store.
  std::vector<Journal::Record> SealedUnapplied;

  std::map<std::string, Entry> Entries;
  std::map<BlockId, Block> Pool;
  /// Front = most recently used.
  std::list<std::string> LruList;
  /// Blocks known durable in the slow store.
  std::set<BlockId> Persisted;
  /// Blocks referenced by dirty entries, awaiting flush.
  std::set<BlockId> DirtyBlocks;
  uint64_t CachedBytes = 0;
  uint64_t DirtyBytes = 0;
  /// Projected slow-store quota consumption of everything dirty.
  uint64_t DirtyProjected = 0;
  uint64_t Epoch = 0;
  /// Epoch at the moment the in-flight group was sealed: entries dirtied
  /// at or before it become clean when that group commits.
  uint64_t SealEpoch = 0;

  bool Ready = false;
  std::vector<PendingOp> PendingOps;
  std::map<std::string, Fill> Fills;
  std::string LastMissKey;

  browser::TimerHandle FlushTimer;
  bool FlushInFlight = false;
  bool FlushAgain = false;
  bool RescueTried = false;
  std::optional<ApiError> Sticky;
  std::vector<DoneCb> SyncWaiters;

  obs::Counter *HitsC, *MissesC, *FillsC, *EvictionsC, *DedupHitsC;
  obs::Counter *PrefetchIssuedC, *PrefetchHitsC, *QuotaRejectsC;
  obs::Counter *FlushesC, *FlushedBlocksC, *FlushErrorsC, *BackpressureC;
  obs::Counter *CommitsC, *CheckpointsC, *GcBlocksC;
  obs::Counter *ReplayedRecordsC, *ReplayedCommitsC, *TornBytesC;
  obs::Gauge *BytesG, *DirtyBytesG, *EntriesG, *JournalDepthG;
};

} // namespace storage
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_STORAGE_CACHED_STORE_H
