//===- doppio/process.h - Node process module emulation ----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Doppio emulates the slice of Node's `process` module that programs rely
/// on for resolving relative paths: the current working directory (§5.1).
/// Standard-stream redirection hooks live here too, since the embedding API
/// of §6.8 lets a page capture a guest program's stdout/stderr.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_PROCESS_H
#define DOPPIO_DOPPIO_PROCESS_H

#include "doppio/path.h"

#include <functional>
#include <string>

namespace doppio {
namespace rt {

/// Per-program process state.
class Process {
public:
  const std::string &cwd() const { return Cwd; }

  /// Changes the working directory; \p NewCwd may be relative to the
  /// current one. Returns the normalized absolute result.
  const std::string &chdir(const std::string &NewCwd) {
    Cwd = path::resolve(Cwd, NewCwd);
    return Cwd;
  }

  /// Resolves \p P against the working directory.
  std::string resolve(const std::string &P) const {
    return path::resolve(Cwd, P);
  }

  /// Output sinks; default to accumulating into strings (§6.8's optional
  /// custom stdout/stderr redirection).
  void setStdout(std::function<void(const std::string &)> Sink) {
    StdoutSink = std::move(Sink);
  }
  void setStderr(std::function<void(const std::string &)> Sink) {
    StderrSink = std::move(Sink);
  }

  void writeStdout(const std::string &Text) {
    if (StdoutSink)
      StdoutSink(Text);
    else
      StdoutBuffer += Text;
  }
  void writeStderr(const std::string &Text) {
    if (StderrSink)
      StderrSink(Text);
    else
      StderrBuffer += Text;
  }

  const std::string &capturedStdout() const { return StdoutBuffer; }
  const std::string &capturedStderr() const { return StderrBuffer; }

  /// Supplies a line of standard input (the §6.8 stdin redirection).
  void pushStdin(const std::string &Line) { StdinLines.push_back(Line); }
  bool hasStdin() const { return !StdinLines.empty(); }
  std::string popStdin() {
    std::string Line = StdinLines.front();
    StdinLines.erase(StdinLines.begin());
    return Line;
  }

private:
  std::string Cwd = "/";
  std::function<void(const std::string &)> StdoutSink;
  std::function<void(const std::string &)> StderrSink;
  std::string StdoutBuffer;
  std::string StderrBuffer;
  std::vector<std::string> StdinLines;
};

} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_PROCESS_H
