//===- doppio/process.h - Node process module emulation ----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Doppio emulates the slice of Node's `process` module that programs rely
/// on for resolving relative paths: the current working directory (§5.1).
/// Standard-stream redirection hooks live here too, since the embedding API
/// of §6.8 lets a page capture a guest program's stdout/stderr.
///
/// Since the process subsystem (src/doppio/proc/) landed this object is the
/// per-process *state record*: every proc::Process owns one, and installs
/// the asynchronous stdio hooks below so guest-language I/O (DoppioJVM's
/// System.in/out/err, jcl.cpp) routes through the owning process's file
/// descriptor table instead of the legacy capture buffers. Standalone
/// embedders that never create a ProcessTable keep the old behavior: no
/// hooks installed, output accumulates in the capture buffers, stdin is the
/// pushStdin line queue.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_PROCESS_H
#define DOPPIO_DOPPIO_PROCESS_H

#include "doppio/errors.h"
#include "doppio/path.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace rt {

/// Per-program process state.
class Process {
public:
  /// Completion of a chdir: nullopt on success, ENOENT/ENOTDIR otherwise.
  using ChdirCb = std::function<void(std::optional<ApiError>)>;
  /// Validates an absolute candidate cwd against a file system; installed
  /// by fs::FileSystem (satisfying ENOENT for missing paths and ENOTDIR
  /// for files) so chdir no longer blindly normalizes.
  using ChdirValidator =
      std::function<void(const std::string &Abs, ChdirCb Done)>;
  /// Asynchronous stdout/stderr write: completion fires when the bytes
  /// reached their destination (a pipe may exert backpressure first).
  using WriteHook =
      std::function<void(const std::string &Text, std::function<void()>)>;
  /// Asynchronous stdin line read: delivers the next line, or nullopt at
  /// end of input.
  using StdinHook = std::function<void(
      std::function<void(std::optional<std::string>)> Deliver)>;

  const std::string &cwd() const { return Cwd; }

  /// Changes the working directory; \p NewCwd may be relative to the
  /// current one. When a validator is installed (any Process attached to
  /// an fs::FileSystem has one) the target is checked against the file
  /// system first and the cwd only changes on success; without a file
  /// system there is nothing to validate against and the path is just
  /// normalized. \p Done may be null.
  void chdir(const std::string &NewCwd, ChdirCb Done = nullptr) {
    std::string Abs = path::resolve(Cwd, NewCwd);
    if (!Validator) {
      Cwd = Abs;
      if (Done)
        Done(std::nullopt);
      return;
    }
    Validator(Abs, [this, Abs, Done = std::move(Done)](
                       std::optional<ApiError> Err) {
      if (!Err)
        Cwd = Abs;
      if (Done)
        Done(std::move(Err));
    });
  }

  void setChdirValidator(ChdirValidator V) { Validator = std::move(V); }
  void clearChdirValidator() { Validator = nullptr; }

  /// Resolves \p P against the working directory.
  std::string resolve(const std::string &P) const {
    return path::resolve(Cwd, P);
  }

  /// Output sinks; default to accumulating into strings (§6.8's optional
  /// custom stdout/stderr redirection).
  void setStdout(std::function<void(const std::string &)> Sink) {
    StdoutSink = std::move(Sink);
  }
  void setStderr(std::function<void(const std::string &)> Sink) {
    StderrSink = std::move(Sink);
  }

  void writeStdout(const std::string &Text) {
    if (StdoutSink)
      StdoutSink(Text);
    else
      StdoutBuffer += Text;
  }
  void writeStderr(const std::string &Text) {
    if (StderrSink)
      StderrSink(Text);
    else
      StderrBuffer += Text;
  }

  const std::string &capturedStdout() const { return StdoutBuffer; }
  const std::string &capturedStderr() const { return StderrBuffer; }

  /// Supplies a line of standard input (the §6.8 stdin redirection).
  void pushStdin(const std::string &Line) { StdinLines.push_back(Line); }
  bool hasStdin() const { return !StdinLines.empty(); }
  std::string popStdin() {
    std::string Line = StdinLines.front();
    StdinLines.erase(StdinLines.begin());
    return Line;
  }

  // Fd-table routing (src/doppio/proc/): when installed, guest-language
  // stdio goes through these instead of the sinks/queues above, so a
  // JVM's System.out lands in the owning process's fd 1 (which may be a
  // pipe into another process) and System.in drains fd 0 — with real
  // backpressure, since the write hook completes asynchronously.
  void setStdoutHook(WriteHook H) { StdoutHook = std::move(H); }
  void setStderrHook(WriteHook H) { StderrHook = std::move(H); }
  void setStdinHook(StdinHook H) { StdinReadHook = std::move(H); }
  const WriteHook &stdoutHook() const { return StdoutHook; }
  const WriteHook &stderrHook() const { return StderrHook; }
  const StdinHook &stdinHook() const { return StdinReadHook; }

private:
  std::string Cwd = "/";
  ChdirValidator Validator;
  std::function<void(const std::string &)> StdoutSink;
  std::function<void(const std::string &)> StderrSink;
  WriteHook StdoutHook;
  WriteHook StderrHook;
  StdinHook StdinReadHook;
  std::string StdoutBuffer;
  std::string StderrBuffer;
  std::vector<std::string> StdinLines;
};

} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_PROCESS_H
