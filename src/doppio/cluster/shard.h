//===- doppio/cluster/shard.h - One doppiod shard tab ------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One cluster shard (DESIGN.md §15): a complete BrowserEnv tab — its own
/// virtual clock, kernel, SimNet — running the existing doppiod stack
/// (Server + Router + stock handlers), the §5.1 file system seeded with the
/// bench corpus, and the process subsystem (ProcessTable + core programs,
/// so the spawn handler works and worker pipelines run inside the shard).
///
/// On top of the stock handlers the shard registers "work": body
/// "<spin_us> <path>" charges spin_us of JS-engine compute and then reads
/// the file — a CPU-bound request whose service time is serialized by the
/// shard's single virtual thread. That is the load fig7_cluster scales:
/// spreading "work" requests over N shard clocks is what buys the cluster
/// its near-linear throughput, exactly like adding cores to a real fleet.
///
/// The shard also snapshots its stats over the fabric control plane
/// (encodeStatsSnapshot / a wire.h-encoded record) so the balancer can
/// aggregate per-shard metrics under claimed "shard" prefixes in its own
/// registry.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CLUSTER_SHARD_H
#define DOPPIO_DOPPIO_CLUSTER_SHARD_H

#include "browser/env.h"
#include "doppio/cluster/fabric.h"
#include "doppio/fs.h"
#include "doppio/proc/checkpoint.h"
#include "doppio/proc/proc.h"
#include "doppio/proc/programs.h"
#include "doppio/server/server.h"

#include <memory>

namespace doppio {
namespace cluster {

/// A shard's stat record as shipped over the control plane. Field-for-
/// field what the balancer re-exposes under `shard<N>.*` gauges.
struct ShardSnapshot {
  uint32_t ShardId = 0;
  uint64_t Accepted = 0;
  uint64_t Refused = 0;
  uint64_t Active = 0;
  uint64_t RequestsServed = 0;
  uint64_t RequestErrors = 0;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t ServiceP50Ns = 0;
  uint64_t ServiceP99Ns = 0;
  uint64_t ProcsSpawned = 0;
  uint64_t Zombies = 0;
  uint64_t VirtualNowNs = 0;

  /// wire.h big-endian encoding (13 u64-sized fields after a u32 id).
  std::vector<uint8_t> encode() const;
  static std::optional<ShardSnapshot> decode(const std::vector<uint8_t> &B);
};

/// One shard tab: env + fs + procs + doppiod server.
class Shard {
public:
  struct Config {
    uint32_t Id = 0;
    /// doppiod port inside the shard's own SimNet port space.
    uint16_t Port = 7100;
    size_t Backlog = 64;
    size_t MaxConnections = 256;
    uint64_t IdleTimeoutNs = browser::msToNs(2000);
    /// Files seeded under /srv (f0.bin .. f<N-1>.bin, same corpus shape
    /// as fig7_server).
    size_t SeedFiles = 32;
    /// Worker pipelines (echo | wc over the proc subsystem) launched at
    /// startup, exercising pids/pipes inside every shard.
    size_t WorkerPipelines = 2;
    /// Runs on the shard at the end of construction. Benches use it to
    /// seed extra fs content (e.g. /classes) and bind restore factories
    /// in checkpoints() — keeping the cluster library guest-agnostic
    /// while its shards host migratable JVM programs (DESIGN.md §16).
    std::function<void(Shard &)> Setup;
  };

  Shard(const browser::Profile &P, Fabric &Fab, Config Cfg);
  ~Shard();

  Shard(const Shard &) = delete;
  Shard &operator=(const Shard &) = delete;

  uint32_t id() const { return Cfg.Id; }
  TabId tab() const { return Tab; }
  uint16_t port() const { return Cfg.Port; }
  const Config &config() const { return Cfg; }

  browser::BrowserEnv &env() { return Env; }
  rt::server::Server &server() { return *Srv; }
  rt::proc::ProcessTable &procs() { return *Procs; }
  rt::fs::FileSystem &fs() { return *Fs; }

  /// Current stat record (built on the shard's thread).
  ShardSnapshot snapshot();

  /// Ships a snapshot to \p Dst over the control plane.
  void pushStats(TabId Dst);

  /// Worker pipelines that have finished with exit 0 and matching output.
  size_t workersDone() const { return WorkersOk; }

  /// Restore factories for migrated-in checkpoint blobs; bound by the
  /// Config::Setup hook (the cluster library knows no guest languages).
  rt::proc::CheckpointRegistry &checkpoints() { return Checkpoints; }

  /// Freezes live process \p P (EAGAIN while it is not quiescent — the
  /// migration wiring retries on a shard timer). On this shard's thread.
  rt::ErrorOr<std::vector<uint8_t>> checkpointProcess(rt::proc::Pid P) {
    return rt::proc::checkpointProcess(*Procs, P);
  }

  /// Revives a migrated-in blob through checkpoints(). On this shard's
  /// thread.
  rt::ErrorOr<rt::proc::Pid>
  restoreProcess(const std::vector<uint8_t> &Blob) {
    return rt::proc::restoreProcess(*Procs, Blob, Checkpoints);
  }

private:
  void startWorkers();

  Fabric &Fab;
  Config Cfg;
  browser::BrowserEnv Env;
  rt::Process FsProc;
  std::unique_ptr<rt::fs::FileSystem> Fs;
  std::unique_ptr<rt::proc::ProcessTable> Procs;
  rt::proc::ProgramRegistry Progs;
  rt::proc::CheckpointRegistry Checkpoints;
  std::unique_ptr<rt::server::Server> Srv;
  TabId Tab = 0;
  size_t WorkersOk = 0;
};

} // namespace cluster
} // namespace doppio

#endif // DOPPIO_DOPPIO_CLUSTER_SHARD_H
