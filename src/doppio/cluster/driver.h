//===- doppio/cluster/driver.h - Multi-tab fabric drivers --------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two ways a Fabric's tabs get driven (DESIGN.md §15):
///
/// LockstepDriver — single host thread, deterministic. Rounds of
/// { pump every mailbox; T = min over tabs of next-eligible virtual time;
/// every tab dispatches all work reachable without idle-jumping its clock
/// past T }. The horizon gates clock *jumps*, not execution (see
/// kernel::Kernel::next), so no tab ever sleeps past mail another tab
/// already sent: the fabric's positive hop latency plus the global-minimum
/// horizon give a conservative, repeatable interleaving. Two identical runs
/// produce identical virtual timelines — the mode every cluster test and
/// virtual-clock figure uses.
///
/// ThreadedDriver — one host thread per tab, for the fig7_cluster bench's
/// real-parallelism rows. Classic conservative synchronization: each tab
/// publishes the virtual time of its earliest runnable work (its frontier)
/// in an atomic; a tab may dispatch work up to min(other frontiers) + hop,
/// because no peer can deliver mail below its own frontier plus one hop.
/// Idle tabs park in Fabric::waitForMail with a short timed wait, so a
/// missed wake costs microseconds, never a deadlock. Timelines are
/// causally consistent but not bit-identical across runs — throughput
/// hardware noise, exactly what a real multi-core bench row wants.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CLUSTER_DRIVER_H
#define DOPPIO_DOPPIO_CLUSTER_DRIVER_H

#include "doppio/cluster/fabric.h"

#include <atomic>
#include <thread>

namespace doppio {
namespace cluster {

/// Deterministic single-thread driver: runs all tabs in causal lockstep
/// until the whole cluster is quiescent (no runnable work in any tab, no
/// mail in flight anywhere).
class LockstepDriver {
public:
  explicit LockstepDriver(Fabric &Fab) : Fab(Fab) {}

  struct Report {
    uint64_t Rounds = 0;
    uint64_t EventsRun = 0;
    uint64_t MailPumped = 0;
  };

  /// Runs to global quiescence (bounded by \p MaxRounds as a runaway
  /// backstop). Returns what happened; Rounds == MaxRounds means the
  /// backstop tripped, which no healthy workload ever hits.
  Report run(uint64_t MaxRounds = UINT64_MAX);

  /// Runs until \p Done returns true (checked once per round) or global
  /// quiescence, whichever is first.
  Report runUntil(const std::function<bool()> &Done,
                  uint64_t MaxRounds = UINT64_MAX);

private:
  Fabric &Fab;
};

/// One host thread per tab; conservative frontier synchronization. Bench
/// mode only — tests use LockstepDriver.
class ThreadedDriver {
public:
  explicit ThreadedDriver(Fabric &Fab);
  ~ThreadedDriver();

  ThreadedDriver(const ThreadedDriver &) = delete;
  ThreadedDriver &operator=(const ThreadedDriver &) = delete;

  /// Spawns the per-tab threads. Call once.
  void start();

  /// Asks every thread to finish its current dispatch and exit. Safe from
  /// any thread (a workload-completion callback inside a tab calls this).
  void requestStop() {
    Stop.store(true);
    Fab.wakeAll();
  }

  /// Joins all tab threads. The cluster may still hold undelivered mail;
  /// finish with a LockstepDriver pass to reach quiescence.
  void join();

private:
  void tabMain(TabId T);
  /// min over other tabs' published frontiers, +hop, saturating.
  uint64_t safeHorizon(TabId T) const;

  static constexpr uint64_t kIdleFrontier = UINT64_MAX;

  Fabric &Fab;
  std::atomic<bool> Stop{false};
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> Frontiers;
  std::vector<std::thread> Threads;
};

} // namespace cluster
} // namespace doppio

#endif // DOPPIO_DOPPIO_CLUSTER_DRIVER_H
