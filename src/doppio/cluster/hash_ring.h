//===- doppio/cluster/hash_ring.h - Consistent-hash balancing ----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consistent-hash ring the cluster balancer routes client connections
/// with (DESIGN.md §15). Each shard owns a fixed number of virtual nodes
/// placed on a 64-bit ring; a key maps to the first virtual node clockwise
/// from its hash. Adding or removing one shard therefore remaps only the
/// keys that landed on that shard's virtual nodes — ~1/N of the key space —
/// instead of reshuffling everything the way `hash % N` would.
///
/// Hashing is FNV-1a over explicit bytes: deterministic across platforms,
/// compilers, and standard libraries (std::hash is none of those), so shard
/// placement — and every figure derived from it — is exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CLUSTER_HASH_RING_H
#define DOPPIO_DOPPIO_CLUSTER_HASH_RING_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace doppio {
namespace cluster {

/// FNV-1a 64-bit over \p Len bytes at \p Data. The one byte-stream hash in
/// the cluster subsystem.
uint64_t fnv1a64(const void *Data, size_t Len);

/// Murmur3-style 64-bit finalizer (fmix64). Ring positions need full
/// avalanche: raw FNV-1a is nearly affine for inputs that differ only in a
/// few low-entropy bytes (shard ids, replica indexes, connection counters),
/// which collapses the virtual nodes onto a degenerate lattice and ruins
/// the load split. Every ring position is therefore mix64(fnv1a64(...)).
uint64_t mix64(uint64_t H);

/// Ring position of a u64 key: mix64 of FNV-1a over its little-endian
/// bytes (platform-fixed).
uint64_t hashKey(uint64_t Key);

/// A consistent-hash ring over shard ids.
class HashRing {
public:
  /// \p VNodesPerShard virtual nodes per shard: more nodes smooth the
  /// load split (128 keeps max/min load under 2x across 8 shards, the
  /// balance budget the tests enforce) at O(VNodes log VNodes) join cost.
  explicit HashRing(size_t VNodesPerShard = 128)
      : VNodes(VNodesPerShard ? VNodesPerShard : 1) {}

  /// Adds \p Shard's virtual nodes. No-op if already present.
  void add(uint32_t Shard);

  /// Removes \p Shard's virtual nodes. No-op if absent.
  void remove(uint32_t Shard);

  bool contains(uint32_t Shard) const;

  /// Shards currently on the ring.
  size_t size() const { return Shards.size(); }
  bool empty() const { return Shards.empty(); }

  /// The shard owning \p Key: first virtual node clockwise from
  /// hashKey(Key). nullopt on an empty ring.
  std::optional<uint32_t> lookup(uint64_t Key) const;

  /// Up to \p N *distinct* shards in ring order starting at \p Key's
  /// position — the failover sequence the balancer walks when the owner
  /// refuses a connection (saturated backlog).
  std::vector<uint32_t> candidates(uint64_t Key, size_t N) const;

  /// The shard ids on the ring, ascending.
  std::vector<uint32_t> shards() const { return Shards; }

private:
  size_t VNodes;
  /// (point hash, shard) sorted by point; ties broken by shard id so
  /// insertion order never matters.
  std::vector<std::pair<uint64_t, uint32_t>> Points;
  std::vector<uint32_t> Shards; // Ascending.
};

} // namespace cluster
} // namespace doppio

#endif // DOPPIO_DOPPIO_CLUSTER_HASH_RING_H
