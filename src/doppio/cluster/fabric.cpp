//===- doppio/cluster/fabric.cpp ------------------------------------------==//

#include "doppio/cluster/fabric.h"

#include <cassert>
#include <chrono>

using namespace doppio;
using namespace doppio::cluster;
using browser::TcpConnection;

Fabric::~Fabric() = default;

TabId Fabric::attach(browser::BrowserEnv &Env) {
  auto T = std::make_unique<Tab>();
  T->Env = &Env;
  T->Id = static_cast<TabId>(Tabs.size());
  Tabs.push_back(std::move(T));
  return Tabs.back()->Id;
}

//===----------------------------------------------------------------------===//
// Endpoint
//===----------------------------------------------------------------------===//

void Fabric::Endpoint::send(std::vector<uint8_t> Data) {
  if (!Open)
    return;
  Mail M;
  M.K = Mail::Kind::Data;
  M.From = Tab;
  M.Link = Link;
  M.Data = std::move(Data);
  Fab.post(Peer, std::move(M));
}

void Fabric::Endpoint::setOnData(DataHandler H) {
  OnData = std::move(H);
  while (OnData && !Undelivered.empty()) {
    std::vector<uint8_t> D = std::move(Undelivered.front());
    Undelivered.pop_front();
    OnData(D);
  }
}

void Fabric::Endpoint::deliver(const std::vector<uint8_t> &Data) {
  if (!Open)
    return;
  if (OnData)
    OnData(Data);
  else
    Undelivered.push_back(Data);
}

void Fabric::Endpoint::close() {
  if (!Open)
    return;
  Open = false;
  Mail M;
  M.K = Mail::Kind::Close;
  M.From = Tab;
  M.Link = Link;
  Fab.post(Peer, std::move(M));
  Fab.reapEndpoint(Tab, Link);
}

//===----------------------------------------------------------------------===//
// Connect / control plane
//===----------------------------------------------------------------------===//

void Fabric::connect(TabId Src, TabId Dst, uint16_t Port,
                     std::function<void(Endpoint *)> Done) {
  assert(Src < Tabs.size() && Dst < Tabs.size());
  uint64_t Link = NextLink.fetch_add(1);
  Tabs[Src]->PendingConnects.emplace(Link, std::move(Done));
  Mail M;
  M.K = Mail::Kind::Connect;
  M.From = Src;
  M.Link = Link;
  M.Port = Port;
  post(Dst, std::move(M));
}

void Fabric::sendControl(TabId Src, TabId Dst, std::vector<uint8_t> Payload) {
  assert(Src < Tabs.size() && Dst < Tabs.size());
  Mail M;
  M.K = Mail::Kind::Control;
  M.From = Src;
  M.Data = std::move(Payload);
  post(Dst, std::move(M));
}

void Fabric::setControlHandler(
    TabId T, std::function<void(TabId, std::vector<uint8_t>)> H) {
  Tabs[T]->OnControl = std::move(H);
}

//===----------------------------------------------------------------------===//
// Mail transport
//===----------------------------------------------------------------------===//

void Fabric::post(TabId Dst, Mail M) {
  // Stamped with the *sender's* clock (post always runs on the sender's
  // thread): monotone per sender, so FIFO mailboxes preserve per-link byte
  // order and FIN-after-data across the crossing.
  M.StampNs =
      Tabs[M.From]->Env->clock().nowNs() + Cost.HopLatencyNs;
  Crossings.fetch_add(1);
  MailInFlight.fetch_add(1);
  Tab &D = *Tabs[Dst];
  {
    std::lock_guard<std::mutex> Lock(D.MailMu);
    D.Mailbox.push_back(std::move(M));
  }
  D.MailCv.notify_all();
}

size_t Fabric::pump(TabId T) {
  Tab &D = *Tabs[T];
  std::deque<Mail> Batch;
  {
    std::lock_guard<std::mutex> Lock(D.MailMu);
    Batch.swap(D.Mailbox);
  }
  uint64_t NowNs = D.Env->clock().nowNs();
  size_t N = Batch.size();
  while (!Batch.empty()) {
    Mail M = std::move(Batch.front());
    Batch.pop_front();
    // Deliver on this tab's IoCompletion lane no earlier than the stamp.
    // Stamps are monotone per sender and the kernel breaks due-time ties
    // by insertion order, so scheduling a batch preserves mailbox order.
    uint64_t DelayNs = M.StampNs > NowNs ? M.StampNs - NowNs : 0;
    D.Env->loop().postAfter(
        kernel::Lane::IoCompletion,
        [this, T, M = std::move(M)]() mutable {
          MailInFlight.fetch_sub(1);
          dispatch(T, std::move(M));
        },
        DelayNs);
  }
  return N;
}

bool Fabric::mailboxEmpty(TabId T) {
  Tab &D = *Tabs[T];
  std::lock_guard<std::mutex> Lock(D.MailMu);
  return D.Mailbox.empty();
}

bool Fabric::waitForMail(TabId T, uint64_t TimeoutUs) {
  Tab &D = *Tabs[T];
  std::unique_lock<std::mutex> Lock(D.MailMu);
  if (!D.Mailbox.empty())
    return true;
  D.MailCv.wait_for(Lock, std::chrono::microseconds(TimeoutUs));
  return !D.Mailbox.empty();
}

void Fabric::wakeAll() {
  for (auto &T : Tabs)
    T->MailCv.notify_all();
}

//===----------------------------------------------------------------------===//
// Dispatch (destination-tab side; runs on that tab's loop)
//===----------------------------------------------------------------------===//

void Fabric::dispatch(TabId T, Mail M) {
  Tab &D = *Tabs[T];
  switch (M.K) {
  case Mail::Kind::Connect:
    openGateway(T, M.From, M.Link, M.Port);
    break;

  case Mail::Kind::Accepted: {
    auto It = D.PendingConnects.find(M.Link);
    if (It == D.PendingConnects.end()) {
      // Connect abandoned meanwhile; tear the far side down again.
      Mail C;
      C.K = Mail::Kind::Close;
      C.From = T;
      C.Link = M.Link;
      post(M.From, std::move(C));
      break;
    }
    auto Done = std::move(It->second);
    D.PendingConnects.erase(It);
    auto Ep = std::unique_ptr<Endpoint>(new Endpoint(*this, T, M.From, M.Link));
    Endpoint *Raw = Ep.get();
    D.Links.emplace(M.Link, std::move(Ep));
    if (Done)
      Done(Raw);
    break;
  }

  case Mail::Kind::Refused: {
    auto It = D.PendingConnects.find(M.Link);
    if (It == D.PendingConnects.end())
      break;
    auto Done = std::move(It->second);
    D.PendingConnects.erase(It);
    if (Done)
      Done(nullptr);
    break;
  }

  case Mail::Kind::Data: {
    if (auto It = D.Links.find(M.Link); It != D.Links.end()) {
      It->second->deliver(M.Data);
      break;
    }
    if (auto It = D.Gateways.find(M.Link); It != D.Gateways.end()) {
      if (It->second.Tcp && It->second.Tcp->isOpen())
        It->second.Tcp->send(std::move(M.Data));
      break;
    }
    break; // Link died while the bytes were crossing: drop, like TCP.
  }

  case Mail::Kind::Close: {
    if (D.Gateways.count(M.Link)) {
      closeGateway(D, M.Link, /*FromPeer=*/true);
      break;
    }
    if (auto It = D.Links.find(M.Link); It != D.Links.end()) {
      Endpoint &Ep = *It->second;
      if (Ep.Open) {
        Ep.Open = false;
        if (Ep.OnClose)
          Ep.OnClose();
        reapEndpoint(T, M.Link);
      }
    }
    break;
  }

  case Mail::Kind::Control:
    if (D.OnControl)
      D.OnControl(M.From, std::move(M.Data));
    break;
  }
}

void Fabric::openGateway(TabId T, TabId From, uint64_t Link, uint16_t Port) {
  Tab &D = *Tabs[T];
  // The gateway rides a real SimNet connect into this tab, so listener
  // absence and backlog overflow inside the destination surface to the
  // originator as a refused cross-tab connect.
  D.Env->net().connect(Port, [this, T, From, Link](TcpConnection *Tcp) {
    Tab &D = *Tabs[T];
    if (!Tcp) {
      Mail M;
      M.K = Mail::Kind::Refused;
      M.From = T;
      M.Link = Link;
      post(From, std::move(M));
      return;
    }
    Gateway G;
    G.Tcp = Tcp;
    G.PeerTab = From;
    G.Link = Link;
    D.Gateways.emplace(Link, G);
    Tcp->setOnData([this, T, From, Link](const std::vector<uint8_t> &Data) {
      Mail M;
      M.K = Mail::Kind::Data;
      M.From = T;
      M.Link = Link;
      M.Data = Data;
      post(From, std::move(M));
    });
    Tcp->setOnClose([this, T, From, Link] {
      // Local server closed the connection: relay the FIN across.
      Tabs[T]->Gateways.erase(Link);
      Mail M;
      M.K = Mail::Kind::Close;
      M.From = T;
      M.Link = Link;
      post(From, std::move(M));
    });
    Mail M;
    M.K = Mail::Kind::Accepted;
    M.From = T;
    M.Link = Link;
    post(From, std::move(M));
  });
}

void Fabric::closeGateway(Tab &T, uint64_t Link, bool FromPeer) {
  auto It = T.Gateways.find(Link);
  if (It == T.Gateways.end())
    return;
  Gateway G = It->second;
  T.Gateways.erase(It);
  if (G.Tcp) {
    G.Tcp->setOnData(nullptr);
    G.Tcp->setOnClose(nullptr);
    G.Tcp->close(); // SimNet orders the FIN after in-flight data.
  }
  if (!FromPeer) {
    Mail M;
    M.K = Mail::Kind::Close;
    M.From = T.Id;
    M.Link = Link;
    post(G.PeerTab, std::move(M));
  }
}

void Fabric::reapEndpoint(TabId T, uint64_t Link) {
  // Deferred: the endpoint pointer may still be on the caller's stack
  // (close() from inside its own data handler).
  Tabs[T]->Env->loop().post(kernel::Lane::Background,
                            [this, T, Link] { Tabs[T]->Links.erase(Link); });
}
