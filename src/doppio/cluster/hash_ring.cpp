//===- doppio/cluster/hash_ring.cpp ---------------------------------------==//

#include "doppio/cluster/hash_ring.h"

#include <algorithm>

using namespace doppio;
using namespace doppio::cluster;

uint64_t cluster::fnv1a64(const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = 14695981039346656037ull; // FNV offset basis.
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull; // FNV prime.
  }
  return H;
}

uint64_t cluster::mix64(uint64_t H) {
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  H *= 0xc4ceb9fe1a85ec53ull;
  H ^= H >> 33;
  return H;
}

uint64_t cluster::hashKey(uint64_t Key) {
  uint8_t Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<uint8_t>(Key >> (8 * I));
  return mix64(fnv1a64(Bytes, sizeof(Bytes)));
}

/// The ring point of virtual node \p Replica of \p Shard: finalized FNV-1a
/// over the 8 fixed-layout bytes (shard LE32, replica LE32). Byte-explicit,
/// so the placement is identical on every platform.
static uint64_t vnodePoint(uint32_t Shard, uint32_t Replica) {
  uint8_t Bytes[8];
  for (int I = 0; I < 4; ++I)
    Bytes[I] = static_cast<uint8_t>(Shard >> (8 * I));
  for (int I = 0; I < 4; ++I)
    Bytes[4 + I] = static_cast<uint8_t>(Replica >> (8 * I));
  return mix64(fnv1a64(Bytes, sizeof(Bytes)));
}

void HashRing::add(uint32_t Shard) {
  if (contains(Shard))
    return;
  Shards.insert(std::upper_bound(Shards.begin(), Shards.end(), Shard),
                Shard);
  Points.reserve(Points.size() + VNodes);
  for (uint32_t R = 0; R < VNodes; ++R)
    Points.emplace_back(vnodePoint(Shard, R), Shard);
  std::sort(Points.begin(), Points.end());
}

void HashRing::remove(uint32_t Shard) {
  if (!contains(Shard))
    return;
  Shards.erase(std::find(Shards.begin(), Shards.end(), Shard));
  std::erase_if(Points, [Shard](const std::pair<uint64_t, uint32_t> &P) {
    return P.second == Shard;
  });
}

bool HashRing::contains(uint32_t Shard) const {
  return std::binary_search(Shards.begin(), Shards.end(), Shard);
}

std::optional<uint32_t> HashRing::lookup(uint64_t Key) const {
  if (Points.empty())
    return std::nullopt;
  uint64_t H = hashKey(Key);
  auto It = std::lower_bound(
      Points.begin(), Points.end(), H,
      [](const std::pair<uint64_t, uint32_t> &P, uint64_t V) {
        return P.first < V;
      });
  if (It == Points.end())
    It = Points.begin(); // Wrap around the ring.
  return It->second;
}

std::vector<uint32_t> HashRing::candidates(uint64_t Key, size_t N) const {
  std::vector<uint32_t> Out;
  if (Points.empty() || N == 0)
    return Out;
  uint64_t H = hashKey(Key);
  auto It = std::lower_bound(
      Points.begin(), Points.end(), H,
      [](const std::pair<uint64_t, uint32_t> &P, uint64_t V) {
        return P.first < V;
      });
  size_t Start = static_cast<size_t>(It - Points.begin()) % Points.size();
  size_t Want = std::min(N, Shards.size());
  for (size_t I = 0; I < Points.size() && Out.size() < Want; ++I) {
    uint32_t S = Points[(Start + I) % Points.size()].second;
    if (std::find(Out.begin(), Out.end(), S) == Out.end())
      Out.push_back(S);
  }
  return Out;
}
