//===- doppio/cluster/balancer.h - Front-end balancer tab --------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cluster's front-end tab (DESIGN.md §15): clients connect to one
/// SimNet port in the balancer tab; the balancer routes each connection to
/// a shard by consistent hash of the connection id (HashRing), opens a
/// cross-tab fabric link to that shard's doppiod port, and relays frames
/// both ways. Routing is connection-scoped, so the per-link FIFO guarantees
/// of SimNet and the fabric compose into end-to-end in-order responses.
///
/// The relay is frame-aware: the client-side stream is decoded so the
/// balancer can (a) count outstanding requests per connection — the basis
/// of clean draining, (b) serve "metrics" requests itself from its own
/// registry, where every shard's pushed ShardSnapshot is mirrored under a
/// claimed "shard" prefix (the aggregated cluster view), and (c) slot those
/// locally-answered responses into the connection's response order, so a
/// pipelined client still sees responses in request order.
///
/// Shard lifecycle, balancer-led:
///
///  - drain: the shard leaves the ring (new connections avoid it); each of
///    its connections stops forwarding, waits for outstanding responses,
///    closes its link (FIN after data), and re-routes to a surviving shard
///    with queued requests intact — zero lost requests. Once the last link
///    is gone the balancer sends Drain; the shard's doppiod then drains
///    only idle connections and reports DrainDone with its final stats.
///
///  - kill: abrupt. Outstanding requests on the dead shard get synthesized
///    Status::Error responses (the wire protocol has no request ids, so
///    errors must fill the response order's holes), links close, and
///    connections re-route immediately.
///
///  - saturation: a connection whose every ring candidate refuses (backlog
///    overflow in every shard tab) is refused at the front door and
///    counted (`balancer.refused_saturated`) — load the fleet visibly
///    cannot absorb, never a silent drop.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CLUSTER_BALANCER_H
#define DOPPIO_DOPPIO_CLUSTER_BALANCER_H

#include "browser/env.h"
#include "doppio/cluster/fabric.h"
#include "doppio/cluster/hash_ring.h"
#include "doppio/cluster/shard.h"
#include "doppio/server/frame.h"

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>

namespace doppio {
namespace cluster {

namespace frame = rt::server::frame;

/// The front-end balancer: one tab, one listen port, a consistent-hash
/// ring of shards.
class Balancer {
public:
  struct Config {
    uint16_t Port = 7000;
    /// Concurrent client connections; beyond this the front door refuses.
    size_t MaxConnections = 1024;
    /// Engine compute charged per routed frame (hash + header inspection
    /// + copy) — the balancer's own cost on its virtual clock.
    uint64_t RouteComputeNs = browser::usToNs(2);
    size_t VNodesPerShard = 128;
  };

  Balancer(const browser::Profile &P, Fabric &Fab)
      : Balancer(P, Fab, Config()) {}
  Balancer(const browser::Profile &P, Fabric &Fab, Config Cfg);
  ~Balancer();

  Balancer(const Balancer &) = delete;
  Balancer &operator=(const Balancer &) = delete;

  /// Starts listening on the balancer tab's SimNet. False if the port is
  /// taken.
  bool start();

  TabId tab() const { return Tab; }
  uint16_t port() const { return Cfg.Port; }
  browser::BrowserEnv &env() { return Env; }
  const HashRing &ring() const { return Ring; }

  /// Registers a shard with the ring and claims its metric mirror prefix
  /// ("shard", "shard2", ... in registration order).
  void addShard(uint32_t Id, TabId ShardTab, uint16_t ShardPort);

  /// Balancer-led graceful drain (see file comment). \p Done fires on the
  /// balancer loop with the shard's final snapshot once DrainDone arrives.
  /// False if the shard is unknown or already draining/dead.
  bool drainShard(uint32_t Id,
                  std::function<void(const ShardSnapshot &)> Done = nullptr);

  /// Abrupt removal (see file comment). False if unknown or already dead.
  bool killShard(uint32_t Id);

  /// Outcome of one live migration (DESIGN.md §16), as reported by the
  /// MigrateDone control frame.
  struct MigrationResult {
    uint32_t SrcShard = 0;
    uint32_t DstShard = 0;
    bool Ok = false;
    rt::proc::Pid NewPid = 0;
    /// Virtual-time cost components of the guest's downtime: freeze on
    /// the source clock, revive on the destination clock (the fabric hop
    /// between them is Fabric::Costs::HopLatencyNs).
    uint64_t CaptureUs = 0;
    uint64_t RestoreUs = 0;
    uint64_t BlobBytes = 0;
    std::string Error;
  };

  /// Live-migrates process \p P from \p SrcShard to \p DstShard: the
  /// source checkpoints it (retrying until quiescent), kills the local
  /// copy, ships the blob over the fabric, and the destination revives
  /// it. \p Done fires on the balancer loop with the outcome. False if
  /// either shard is unknown or dead.
  bool migrateProcess(uint32_t SrcShard, uint32_t DstShard, rt::proc::Pid P,
                      std::function<void(const MigrationResult &)> Done);

  /// Completed migrations (registry-backed: `balancer.migrations`).
  uint64_t migrationsDone() const;

  /// Mirrors \p S into this tab's registry under the shard's claimed
  /// prefix. Normally fed by the control plane; exposed for tests.
  void noteSnapshot(const ShardSnapshot &S);

  /// Shards currently routable (on the ring).
  size_t liveShards() const { return Ring.size(); }

  /// Last mirrored snapshot per shard id (drained/killed shards keep
  /// their final record).
  const std::map<uint32_t, ShardSnapshot> &snapshots() const {
    return Snapshots;
  }

  struct Stats {
    uint64_t ConnsAccepted = 0;
    uint64_t ConnsRefused = 0;       // Front-door cap.
    uint64_t RefusedSaturated = 0;   // Every shard candidate refused.
    uint64_t Routed = 0;             // Upstream links established.
    uint64_t Rerouted = 0;           // Links moved off a drained/killed shard.
    uint64_t RequestsForwarded = 0;
    uint64_t ResponsesReturned = 0;
    uint64_t ErrorsSynthesized = 0;  // Kill-path Status::Error fills.
    uint64_t MetricsServed = 0;      // Served from the aggregated registry.
    std::vector<uint64_t> UpstreamRttNs; // Forward -> response, per request.
    std::vector<uint64_t> RouteNs;       // Accept -> upstream established.
  };
  Stats stats() const;

private:
  struct ShardInfo {
    uint32_t Id = 0;
    TabId Tab = 0;
    uint16_t Port = 0;
    std::string Prefix; // Claimed registry prefix for the mirror gauges.
    bool Draining = false;
    bool DrainSent = false;
    bool Dead = false;
    std::set<uint64_t> Conns; // Client conn ids currently linked here.
    std::function<void(const ShardSnapshot &)> OnDrained;
  };

  /// One response slot in a connection's in-order response queue.
  struct Slot {
    bool Ready = false;
    /// Encoded response frame, set when Ready. Local slots (metrics) are
    /// born ready; remote slots fill when the shard's response arrives or
    /// the kill path synthesizes an error.
    std::vector<uint8_t> Frame;
    /// Virtual time the request was forwarded upstream (remote slots).
    uint64_t ForwardedNs = 0;
    bool Local = false;
  };

  struct Conn {
    uint64_t Id = 0;
    browser::TcpConnection *Client = nullptr;
    Fabric::Endpoint *Upstream = nullptr;
    uint32_t ShardId = 0;
    bool HasShard = false;
    frame::Decoder FromClient;
    frame::Decoder FromShard;
    std::deque<Slot> Slots;
    /// Request frames decoded but not yet forwardable (no upstream yet,
    /// or the shard is draining out from under us).
    std::deque<std::vector<uint8_t>> PendingOut;
    /// Remaining ring candidates for the initial/re-route connect walk.
    std::vector<uint32_t> Candidates;
    size_t NextCandidate = 0;
    bool Rerouting = false;
    bool ClientClosed = false;
    uint64_t AcceptedNs = 0;
  };

  uint64_t nowNs() const;
  void bindCells();
  void onAccept(browser::TcpConnection &T);
  void onClientData(uint64_t Id, const std::vector<uint8_t> &Data);
  void onClientClosed(uint64_t Id);
  void onUpstreamData(uint64_t Id, const std::vector<uint8_t> &Data);
  void onUpstreamClosed(uint64_t Id);
  /// Starts a fresh candidate walk for \p C from a new ring snapshot.
  void beginWalk(Conn &C);
  /// Continues the candidate walk; refuses the client once exhausted.
  void connectUpstream(Conn &C);
  void bindUpstream(Conn &C, Fabric::Endpoint *Ep);
  /// Decodes newly buffered client bytes into slots / forwards.
  void pumpClient(Conn &C);
  void forwardPending(Conn &C);
  /// Sends every ready slot at the queue head to the client.
  void flushSlots(Conn &C);
  /// Serves a metrics request locally into a born-ready slot.
  std::vector<uint8_t> localMetricsResponse(const frame::Request &Req);
  /// Begins moving \p C off its (draining/dead) shard.
  void beginReroute(Conn &C, bool Abrupt);
  /// Completes a reroute once the conn is idle: close old link, rejoin
  /// the candidate walk on the current ring.
  void rerouteNow(Conn &C);
  void detachFromShard(Conn &C);
  /// Drops \p C entirely (client + upstream).
  void closeConn(uint64_t Id, bool RefusedSaturatedPath = false);
  /// Last link left a draining shard: send the Drain command.
  void maybeFinishDrain(uint32_t ShardId);
  void synthesizeErrors(Conn &C, const char *Why);

  browser::BrowserEnv Env;
  Fabric &Fab;
  Config Cfg;
  TabId Tab = 0;
  HashRing Ring;
  bool Running = false;
  std::map<uint32_t, ShardInfo> Shards;
  std::map<uint32_t, ShardSnapshot> Snapshots;
  std::map<uint64_t, std::unique_ptr<Conn>> Conns;
  uint64_t NextConnId = 1;
  /// In-flight migrations, keyed by the request id echoed through the
  /// Migrate/MigrateBlob/MigrateDone frames.
  std::map<uint64_t, std::function<void(const MigrationResult &)>>
      MigrationsInFlight;
  uint64_t NextMigrationId = 1;

  obs::Counter *ConnsAcceptedC = nullptr;
  obs::Counter *ConnsRefusedC = nullptr;
  obs::Counter *RefusedSaturatedC = nullptr;
  obs::Counter *RoutedC = nullptr;
  obs::Counter *ReroutedC = nullptr;
  obs::Counter *RequestsForwardedC = nullptr;
  obs::Counter *ResponsesReturnedC = nullptr;
  obs::Counter *ErrorsSynthesizedC = nullptr;
  obs::Counter *MetricsServedC = nullptr;
  obs::Counter *DrainsC = nullptr;
  obs::Counter *KillsC = nullptr;
  obs::Counter *MigrationsC = nullptr;
  obs::Counter *MigrationFailuresC = nullptr;
  obs::Gauge *LiveShardsG = nullptr;
  obs::Histogram *UpstreamRttNsH = nullptr;
  obs::Histogram *RouteNsH = nullptr;
};

} // namespace cluster
} // namespace doppio

#endif // DOPPIO_DOPPIO_CLUSTER_BALANCER_H
