//===- doppio/cluster/driver.cpp ------------------------------------------==//

#include "doppio/cluster/driver.h"

#include <algorithm>

using namespace doppio;
using namespace doppio::cluster;

//===----------------------------------------------------------------------===//
// LockstepDriver
//===----------------------------------------------------------------------===//

LockstepDriver::Report LockstepDriver::run(uint64_t MaxRounds) {
  return runUntil([] { return false; }, MaxRounds);
}

LockstepDriver::Report
LockstepDriver::runUntil(const std::function<bool()> &Done,
                         uint64_t MaxRounds) {
  Report R;
  while (R.Rounds < MaxRounds) {
    if (Done())
      return R;
    ++R.Rounds;
    // Re-read per round: spawnShard() may attach tabs between rounds.
    size_t N = Fab.tabCount();
    // 1. Move every mailbox into its tab's loop (fixed tab order: the
    //    interleaving is part of the deterministic timeline).
    for (TabId T = 0; T < N; ++T)
      R.MailPumped += Fab.pump(T);
    // 2. Global causal horizon: the earliest runnable virtual time across
    //    the cluster. No tab may idle-jump its clock past it, because the
    //    tab that owns it may send mail stamped as early as horizon+hop.
    std::optional<uint64_t> Horizon;
    for (TabId T = 0; T < N; ++T)
      if (auto NE = Fab.env(T).loop().nextEligibleNs())
        Horizon = Horizon ? std::min(*Horizon, *NE) : *NE;
    if (!Horizon) {
      // Every loop idle. Finished only once no mail is pending anywhere.
      if (Fab.quiescent())
        return R;
      continue; // Mail arrived between pump and scan: next round gets it.
    }
    // 3. Each tab dispatches everything reachable at or before the
    //    horizon (execution may charge past it; only idle jumps are
    //    gated — kernel::Kernel::next).
    size_t Ran = 0;
    for (TabId T = 0; T < N; ++T)
      Ran += Fab.env(T).loop().runReadyUntil(*Horizon);
    R.EventsRun += Ran;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// ThreadedDriver
//===----------------------------------------------------------------------===//

ThreadedDriver::ThreadedDriver(Fabric &Fab) : Fab(Fab) {
  for (size_t I = 0; I < Fab.tabCount(); ++I)
    // Frontiers start at 0, not idle: until a tab's thread runs and
    // publishes its real frontier, peers must assume it still sits at
    // virtual 0 and may mail them at 0+hop. Starting at idle lets an
    // early-scheduled tab leap its clock to a far-future timer (e.g. the
    // shard idle sweep) before the balancer's first mail ever arrives,
    // and the sweep then reaps connections whose requests are still in
    // host-side flight.
    Frontiers.push_back(std::make_unique<std::atomic<uint64_t>>(0));
}

ThreadedDriver::~ThreadedDriver() {
  requestStop();
  join();
}

void ThreadedDriver::start() {
  for (TabId T = 0; T < Fab.tabCount(); ++T)
    Threads.emplace_back([this, T] { tabMain(T); });
}

void ThreadedDriver::join() {
  for (std::thread &Th : Threads)
    if (Th.joinable())
      Th.join();
  Threads.clear();
}

uint64_t ThreadedDriver::safeHorizon(TabId T) const {
  uint64_t Min = kIdleFrontier;
  for (size_t I = 0; I < Frontiers.size(); ++I)
    if (I != T)
      Min = std::min(Min, Frontiers[I]->load(std::memory_order_acquire));
  uint64_t Hop = Fab.costs().HopLatencyNs;
  return Min >= kIdleFrontier - Hop ? kIdleFrontier : Min + Hop;
}

void ThreadedDriver::tabMain(TabId T) {
  browser::EventLoop &Loop = Fab.env(T).loop();
  std::atomic<uint64_t> &Frontier = *Frontiers[T];
  while (!Stop.load(std::memory_order_relaxed)) {
    Fab.pump(T);
    size_t Ran = 0;
    // Dispatch in small slices so the published frontier stays fresh for
    // peers computing their own horizons.
    for (int Slice = 0; Slice < 64; ++Slice) {
      std::optional<uint64_t> NE = Loop.nextEligibleNs();
      Frontier.store(NE ? *NE : kIdleFrontier, std::memory_order_release);
      if (!NE)
        break;
      uint64_t H = safeHorizon(T);
      if (*NE > H)
        break; // A peer may still mail something earlier: wait for it.
      if (!Loop.runOne(H))
        break;
      ++Ran;
    }
    if (!Ran && Fab.mailboxEmpty(T)) {
      std::optional<uint64_t> NE = Loop.nextEligibleNs();
      Frontier.store(NE ? *NE : kIdleFrontier, std::memory_order_release);
      // Idle or blocked on a peer's frontier: park briefly. The timed
      // wait bounds the cost of any missed wake.
      Fab.waitForMail(T, /*TimeoutUs=*/200);
    }
  }
  // Exiting: publish idle so no peer waits on this tab's frontier.
  Frontier.store(kIdleFrontier, std::memory_order_release);
}
