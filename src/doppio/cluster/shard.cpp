//===- doppio/cluster/shard.cpp -------------------------------------------==//

#include "doppio/cluster/shard.h"

#include "browser/wire.h"
#include "doppio/backends/in_memory.h"
#include "doppio/cluster/control.h"
#include "doppio/server/handlers.h"

#include <cassert>
#include <charconv>

using namespace doppio;
using namespace doppio::cluster;
using namespace doppio::rt;
namespace wire = doppio::browser::wire;

//===----------------------------------------------------------------------===//
// ShardSnapshot codec
//===----------------------------------------------------------------------===//

std::vector<uint8_t> ShardSnapshot::encode() const {
  std::vector<uint8_t> Out;
  wire::putU32(Out, ShardId);
  wire::putU64(Out, Accepted);
  wire::putU64(Out, Refused);
  wire::putU64(Out, Active);
  wire::putU64(Out, RequestsServed);
  wire::putU64(Out, RequestErrors);
  wire::putU64(Out, BytesIn);
  wire::putU64(Out, BytesOut);
  wire::putU64(Out, ServiceP50Ns);
  wire::putU64(Out, ServiceP99Ns);
  wire::putU64(Out, ProcsSpawned);
  wire::putU64(Out, Zombies);
  wire::putU64(Out, VirtualNowNs);
  return Out;
}

std::optional<ShardSnapshot>
ShardSnapshot::decode(const std::vector<uint8_t> &B) {
  if (B.size() != 4 + 12 * 8)
    return std::nullopt;
  ShardSnapshot S;
  const uint8_t *P = B.data();
  S.ShardId = wire::getU32(P);
  P += 4;
  uint64_t *Fields[] = {&S.Accepted,       &S.Refused,      &S.Active,
                        &S.RequestsServed, &S.RequestErrors, &S.BytesIn,
                        &S.BytesOut,       &S.ServiceP50Ns, &S.ServiceP99Ns,
                        &S.ProcsSpawned,   &S.Zombies,      &S.VirtualNowNs};
  for (uint64_t *F : Fields) {
    *F = wire::getU64(P);
    P += 8;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Shard
//===----------------------------------------------------------------------===//

/// The CPU-bound cluster load: body "<spin_us> <path>" charges spin_us of
/// engine compute on this shard's clock, then serves the file. Service
/// time is dominated by the spin, so requests serialize on the shard's
/// single virtual thread — the contended resource N shards multiply.
static server::Router::Handler makeWorkHandler(browser::BrowserEnv &Env,
                                               fs::FileSystem &Fs) {
  return [&Env, &Fs](const server::frame::Request &Req,
                     server::Router::RespondFn Respond) {
    std::string Body(Req.Body.begin(), Req.Body.end());
    size_t Sp = Body.find(' ');
    uint64_t SpinUs = 0;
    if (Sp != std::string::npos) {
      auto [Ptr, Ec] =
          std::from_chars(Body.data(), Body.data() + Sp, SpinUs);
      if (Ec != std::errc() || Ptr != Body.data() + Sp)
        Sp = std::string::npos;
    }
    if (Sp == std::string::npos) {
      std::string E = "work: want '<spin_us> <path>'";
      Respond(server::frame::Status::BadRequest,
              std::vector<uint8_t>(E.begin(), E.end()));
      return;
    }
    Env.chargeCompute(browser::usToNs(SpinUs));
    Fs.readFile(Body.substr(Sp + 1),
                [Respond = std::move(Respond)](
                    ErrorOr<std::vector<uint8_t>> R) {
                  if (!R.ok()) {
                    std::string E = R.error().message();
                    Respond(server::frame::Status::Error,
                            std::vector<uint8_t>(E.begin(), E.end()));
                    return;
                  }
                  Respond(server::frame::Status::Ok, std::move(*R));
                });
  };
}

Shard::Shard(const browser::Profile &P, Fabric &Fab, Config Cfg)
    : Fab(Fab), Cfg(Cfg), Env(P) {
  Tab = Fab.attach(Env);

  // Same corpus shape as bench/fig7_server: /srv/f<i>.bin, 64 B..~8 KB,
  // deterministic contents, replicated on every shard (a content-
  // replicated fleet: any shard can serve any path).
  auto Root = std::make_unique<fs::InMemoryBackend>(Env);
  for (size_t I = 0; I < Cfg.SeedFiles; ++I) {
    bool Seeded = Root->seedFile(
        "/srv/f" + std::to_string(I) + ".bin",
        std::vector<uint8_t>(64 + 251 * I,
                             static_cast<uint8_t>('a' + I % 26)));
    assert(Seeded);
    (void)Seeded;
  }
  Fs = std::make_unique<fs::FileSystem>(Env, FsProc, std::move(Root));
  Procs = std::make_unique<proc::ProcessTable>(Env, *Fs);
  proc::installCorePrograms(Progs);

  server::Server::Config SCfg;
  SCfg.Port = Cfg.Port;
  SCfg.Backlog = Cfg.Backlog;
  SCfg.MaxConnections = Cfg.MaxConnections;
  SCfg.IdleTimeoutNs = Cfg.IdleTimeoutNs;
  Srv = std::make_unique<server::Server>(Env, SCfg);
  server::installDefaultHandlers(Srv->router(), *Fs, &Env.metrics(),
                                 Procs.get(), &Progs);
  Srv->router().handle("work", makeWorkHandler(Env, *Fs));
  bool Started = Srv->start();
  assert(Started && "shard port taken inside a fresh tab");
  (void)Started;

  startWorkers();

  if (Cfg.Setup)
    Cfg.Setup(*this);
}

Shard::~Shard() = default;

void Shard::startWorkers() {
  // Per-shard proc-subsystem workers: echo | wc pipelines whose known
  // output ("1 8\n" for "shard<id>\n"... length varies) is checked on
  // reap. They run interleaved with serving, exercising pids, pipes, and
  // waitpid inside every shard.
  for (size_t W = 0; W < Cfg.WorkerPipelines; ++W) {
    std::string Text = "shard" + std::to_string(Cfg.Id) + "w" +
                       std::to_string(W);
    std::string Expect =
        "1 " + std::to_string(Text.size() + 1) + "\n"; // echo adds '\n'.
    std::vector<proc::ProcessTable::SpawnSpec> Stages(2);
    Stages[0].Name = "echo";
    Stages[0].Prog = Progs.create({"echo", Text});
    Stages[1].Name = "wc";
    Stages[1].Prog = Progs.create({"wc"});
    std::vector<proc::Pid> Pids = Procs->spawnPipeline(std::move(Stages));
    proc::Pid Last = Pids.back();
    for (proc::Pid P : Pids)
      Procs->waitpid(1, P, [this, P, Last,
                            Expect](ErrorOr<proc::WaitResult> R) {
        if (!R.ok() || R->ExitCode != 0 || P != Last)
          return;
        proc::Process *Proc = Procs->find(Last);
        if (Proc && Proc->state().capturedStdout() == Expect)
          ++WorkersOk;
      });
  }
}

ShardSnapshot Shard::snapshot() {
  // Walking the metric cells and encoding the snapshot is work this tab
  // does; charging it also guarantees VirtualNowNs is strictly positive
  // in every published snapshot, even from an otherwise idle shard.
  Env.chargeCompute(browser::usToNs(2));
  ShardSnapshot S;
  S.ShardId = Cfg.Id;
  server::ServerStats St = Srv->stats();
  S.Accepted = St.Accepted;
  S.Refused = St.Refused;
  S.Active = St.Active;
  S.RequestsServed = St.RequestsServed;
  S.RequestErrors = St.RequestErrors;
  S.BytesIn = St.BytesIn;
  S.BytesOut = St.BytesOut;
  S.ServiceP50Ns = St.p50Ns();
  S.ServiceP99Ns = St.p99Ns();
  S.ProcsSpawned = Procs->spawned();
  S.Zombies = Procs->zombies();
  S.VirtualNowNs = Env.clock().nowNs();
  return S;
}

void Shard::pushStats(TabId Dst) {
  // Control mail is framed [kind][payload]; a raw snapshot would decode
  // as an unknown kind and be dropped at the balancer.
  Fab.sendControl(Tab, Dst,
                  control::encode(control::Kind::Snapshot,
                                  snapshot().encode()));
}
